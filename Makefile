# Tier-1 gate: `make check` must pass before any change lands.
GO ?= go

.PHONY: check vet build test race bench figures

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The guard layer's deadline goroutines and quarantine bookkeeping must be
# race-clean; -race over internal/ covers them plus the parallel matchers
# and builders.
race:
	$(GO) test -race ./internal/...

bench:
	$(GO) test -bench=. -benchmem ./...

figures:
	$(GO) run ./cmd/atune-figures
