# Tier-1 gate: `make check` must pass before any change lands.
GO ?= go

.PHONY: check lint vet build test race bench figures fuzz chaos

check: lint build test race

# gofmt emits the offending files on stdout and exits 0; turn any output
# into a failure so unformatted code can't land.
lint: vet
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The guard layer's deadline goroutines, the quarantine bookkeeping and
# the checkpoint I/O must be race-clean; -race runs the full module —
# commands and the top-level benchmark package included.
race:
	$(GO) test -race ./...

# Short chaos soak (CI-viable, well under a minute): the fault-injection
# layer's own tests, the partition/reconnect and loopback soak of the
# distributed service, and the A14 ablation — all under -race. The full
# tier-1 `race` target runs these too; this target is the quick loop for
# iterating on the failure semantics alone.
chaos:
	$(GO) test -race ./internal/chaos
	$(GO) test -race -run 'TestChaos|TestDegradedMode|TestDrain|TestAbsorb|TestSessionCap|TestGlobalCap' \
		./internal/tuned ./internal/exp

# Fuzz the two frame decoders — arbitrary bytes must never panic them or
# slip a payload past the checksum, neither from a snapshot file nor
# from the network — the drift detectors, which must stay finite and
# panic-free on any cost stream, and the context partitioner, whose
# routing must stay stable and replayable under arbitrary feature
# streams and hostile restore blobs.
fuzz:
	$(GO) test -fuzz=FuzzSnapshotDecode -fuzztime=10s ./internal/checkpoint
	$(GO) test -fuzz=FuzzWireDecode -fuzztime=10s ./internal/wire
	$(GO) test -fuzz=FuzzDriftUpdate -fuzztime=10s ./internal/stats
	$(GO) test -fuzz=FuzzPartitioner -fuzztime=10s ./internal/ctxtune

# Micro-benchmarks plus the trial-engine and wire throughput sweeps;
# the sweeps land in BENCH_*.json for trend tracking.
bench:
	$(GO) test -bench=. -benchmem ./...
	$(GO) run ./cmd/atune-bench -out BENCH_trial_engine.json
	$(GO) run ./cmd/atune-bench -wire -out BENCH_wire.json
	$(GO) run ./cmd/atune-bench -shards -out BENCH_shard.json
	$(GO) run ./cmd/atune-bench -tenants 4 -tenant-workers 4 -out BENCH_tenant.json
	$(GO) run ./cmd/atune-bench -contextual -out BENCH_context.json

figures:
	$(GO) run ./cmd/atune-figures
