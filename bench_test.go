// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the ablations of DESIGN.md and the micro-benchmarks
// underlying them. One benchmark iteration of a BenchmarkFigureN runs the
// complete (quick-scale) experiment behind that figure; the converged
// performance is reported as a custom metric so `go test -bench` output
// doubles as the experiment record.
package repro

import (
	"io"
	"math/rand"
	"testing"

	"repro/internal/bvh"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/exp"
	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/ray"
	"repro/internal/scenegen"
	"repro/internal/search"
	"repro/internal/stats"
	"repro/internal/strmatch"
)

// benchConfig is the scaled-down experiment configuration used by the
// figure benchmarks (the paper-scale run is cmd/atune-figures -paper).
func benchConfig() exp.Config {
	cfg := exp.TestConfig()
	cfg.Reps = 3
	cfg.Iters = 30
	cfg.Frames = 12
	return cfg
}

// tail reports the mean of the last quarter of a curve (converged level).
func tail(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return stats.Mean(xs[len(xs)*3/4:])
}

// --- Table I ---------------------------------------------------------

// BenchmarkTable1ParamOps exercises the parameter-model operations that
// Table I classifies: clamping and enumerating each parameter class.
func BenchmarkTable1ParamOps(b *testing.B) {
	space := param.NewSpace(
		param.NewNominal("algo", "a", "b", "c", "d"),
		param.NewOrdinal("size", "s", "m", "l"),
		param.NewInterval("pct", 0, 100),
		param.NewRatioInt("threads", 1, 8),
	)
	c := param.Config{1.4, 2.6, 150, 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = space.Clamp(c)
	}
}

// --- Case study 1: string matching -----------------------------------

// BenchmarkFigure1StringMatchers times each matcher on the benchmark
// corpus — the data behind Figure 1's boxplots.
func BenchmarkFigure1StringMatchers(b *testing.B) {
	text := corpus.Bible(1<<20, 1)
	pattern := []byte(corpus.QueryPhrase)
	for _, name := range strmatch.Names() {
		m, err := strmatch.New(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(text)))
			for i := 0; i < b.N; i++ {
				strmatch.Run(m, pattern, text, 4)
			}
		})
	}
}

// BenchmarkExtensionX1DNAMatchers times each matcher on the genome-like
// corpus (extension X1).
func BenchmarkExtensionX1DNAMatchers(b *testing.B) {
	text := corpus.DNA(1<<20, 1)
	pattern := append([]byte(nil), text[1000:1032]...)
	for _, name := range strmatch.Names() {
		m, err := strmatch.New(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(text)))
			for i := 0; i < b.N; i++ {
				strmatch.Run(m, pattern, text, 4)
			}
		})
	}
}

// BenchmarkExtensionX2PatternSweep runs the input-sensitivity sweep.
func BenchmarkExtensionX2PatternSweep(b *testing.B) {
	cfg := benchConfig()
	cfg.Iters = 15
	for i := 0; i < b.N; i++ {
		exp.RunPatternSweep(cfg, []int{8, 37, 64})
	}
}

// BenchmarkFigure2MedianConvergence runs the case study 1 tuning
// experiment and reports the converged median time.
func BenchmarkFigure2MedianConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := exp.RunTunedMatchers(benchConfig())
		med := res.Curves[1].MedianCurve(0) // e-Greedy (10%)
		b.ReportMetric(tail(med), "converged-ms")
	}
}

// BenchmarkFigure3MeanConvergence reports the converged mean time.
func BenchmarkFigure3MeanConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := exp.RunTunedMatchers(benchConfig())
		mean := res.Curves[1].MeanCurve(0)
		b.ReportMetric(tail(mean), "converged-ms")
	}
}

// BenchmarkFigure4ChoiceHistogram reports how strongly e-Greedy (10%)
// concentrates on its preferred matcher.
func BenchmarkFigure4ChoiceHistogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		res := exp.RunTunedMatchers(cfg)
		cm := res.Counts[1]
		best := 0.0
		for ai := range res.AlgorithmLabels {
			if m := cm.MeanOf(ai); m > best {
				best = m
			}
		}
		b.ReportMetric(100*best/float64(cfg.Iters), "top-algo-%")
	}
}

// --- Case study 2: raytracing ----------------------------------------

// BenchmarkFigure5KDTreeTuning runs the isolated per-builder Nelder-Mead
// tuning timelines.
func BenchmarkFigure5KDTreeTuning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := exp.RunKDTreeTimelines(benchConfig())
		b.ReportMetric(tail(res.Curves[3].MeanCurve(0)), "wald-havran-ms")
	}
}

// BenchmarkFigure6CombinedMedian runs the combined two-phase raytracing
// tuning and reports the converged median frame time.
func BenchmarkFigure6CombinedMedian(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := exp.RunTunedRaytracing(benchConfig())
		b.ReportMetric(tail(res.Curves[1].MedianCurve(0)), "converged-ms")
	}
}

// BenchmarkFigure7CombinedMean reports the converged mean frame time.
func BenchmarkFigure7CombinedMean(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := exp.RunTunedRaytracing(benchConfig())
		b.ReportMetric(tail(res.Curves[1].MeanCurve(0)), "converged-ms")
	}
}

// BenchmarkFigure8ChoiceHistogram reports e-Greedy (10%)'s concentration
// on its preferred construction algorithm.
func BenchmarkFigure8ChoiceHistogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		res := exp.RunTunedRaytracing(cfg)
		cm := res.Counts[1]
		best := 0.0
		for ai := range res.AlgorithmLabels {
			if m := cm.MeanOf(ai); m > best {
				best = m
			}
		}
		b.ReportMetric(100*best/float64(cfg.Frames), "top-algo-%")
	}
}

// --- Ablations --------------------------------------------------------

func BenchmarkAblationWindowSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.AblationWindowSize(io.Discard, 3, 200, 1)
	}
}

func BenchmarkAblationEpsilonSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.AblationEpsilonSweep(io.Discard, 3, 200, 1)
	}
}

func BenchmarkAblationCrossover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.AblationCrossover(io.Discard, 3, 200, 1)
	}
}

func BenchmarkAblationPhase1Strategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.AblationPhase1Strategies(io.Discard, 3, 200, 1)
	}
}

func BenchmarkAblationSoftmax(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.AblationSoftmax(io.Discard, 3, 200, 1)
	}
}

func BenchmarkAblationCombined(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.AblationCombined(io.Discard, 3, 200, 1)
	}
}

func BenchmarkAblationDrift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.AblationDrift(io.Discard, 3, 200, 1)
	}
}

func BenchmarkAblationNoise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.AblationNoise(io.Discard, 3, 200, 1)
	}
}

func BenchmarkAnalysisA9Regret(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.AblationRegret(io.Discard, 3, 200, 1)
	}
}

func BenchmarkAblationA10FaultInjection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.RunFaultInjection(benchConfig(), exp.DefaultFaultRates(), 500).RenderFigureA10(io.Discard)
	}
}

func BenchmarkAblationA11CheckpointCrash(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunCheckpointCrash(benchConfig(), 500, 10, 25)
		if err != nil {
			b.Fatal(err)
		}
		res.RenderFigureA11(io.Discard)
	}
}

func BenchmarkAblationA12ConcurrentTuning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.RunConcurrentTuning(benchConfig(), 500).RenderFigureA12(io.Discard)
	}
}

func BenchmarkExtensionX3MixedNominal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.AblationMixedNominal(io.Discard, 3, 300, 1)
	}
}

func BenchmarkExtensionX4Contextual(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		exp.RunContextualSweep(cfg)
	}
}

func BenchmarkExtensionX5StructureChoice(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		exp.RunStructureChoice(cfg)
	}
}

// BenchmarkBVHBuild times the BVH construction on the benchmark scene,
// the comparison point for BenchmarkKDTreeBuilders.
func BenchmarkBVHBuild(b *testing.B) {
	tris := scenegen.Cathedral(2).Triangles
	for i := 0; i < b.N; i++ {
		bvh.Build(tris, bvh.DefaultParams())
	}
}

// --- Micro-benchmarks underlying the experiments ----------------------

// BenchmarkKDTreeBuilders times one construction per builder on the
// benchmark scene — the stage-one cost Figure 5 tracks.
func BenchmarkKDTreeBuilders(b *testing.B) {
	tris := scenegen.Cathedral(2).Triangles
	for _, builder := range kdtree.AllBuilders() {
		b.Run(builder.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				builder.Build(tris, kdtree.DefaultParams())
			}
		})
	}
}

// BenchmarkRenderFrame times the complete two-stage pipeline.
func BenchmarkRenderFrame(b *testing.B) {
	scene := scenegen.Cathedral(1)
	pl := &ray.Pipeline{
		Tris:  scene.Triangles,
		Cam:   ray.Camera{Eye: scene.Eye, LookAt: scene.LookAt, FOV: 65},
		Light: scene.Light,
		Width: 96, Height: 72, Workers: 4,
	}
	for i := 0; i < b.N; i++ {
		pl.RenderFrame(kdtree.NestedBuilder{}, kdtree.DefaultParams())
	}
}

// BenchmarkSelectors measures per-iteration selector overhead — the cost
// the paper's strategies add to every tuning iteration.
func BenchmarkSelectors(b *testing.B) {
	mks := []func() nominal.Selector{
		func() nominal.Selector { return nominal.NewEpsilonGreedy(0.10) },
		func() nominal.Selector { return nominal.NewGradientWeighted() },
		func() nominal.Selector { return nominal.NewOptimumWeighted() },
		func() nominal.Selector { return nominal.NewSlidingWindowAUC() },
	}
	for _, mk := range mks {
		sel := mk()
		b.Run(sel.Name(), func(b *testing.B) {
			r := newBenchRand()
			sel.Init(8)
			for i := 0; i < b.N; i++ {
				a := sel.Select(r)
				sel.Report(a, float64(a+1))
			}
		})
	}
}

// BenchmarkNelderMeadStep measures the ask/tell overhead of the phase-one
// strategy used in both case studies.
func BenchmarkNelderMeadStep(b *testing.B) {
	space := param.NewSpace(
		param.NewInterval("x", 0, 10),
		param.NewInterval("y", 0, 10),
		param.NewRatioInt("z", 0, 100),
	)
	nm := search.NewNelderMead()
	if err := nm.Start(space, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := nm.Propose()
		nm.Report(c, c[0]*c[0]+c[1]+c[2])
	}
}

// newBenchRand returns a deterministic rand for the selector benchmark.
func newBenchRand() *rand.Rand { return rand.New(rand.NewSource(42)) }

// BenchmarkTrialEngineLeaseComplete measures the trial engine's per-trial
// bookkeeping (lease + complete + publish, no measurement cost) — the
// concurrent counterpart of BenchmarkNelderMeadStep, and the fixed
// overhead under the throughput numbers of cmd/atune-bench.
func BenchmarkTrialEngineLeaseComplete(b *testing.B) {
	algos := []core.Algorithm{
		{Name: "plain"},
		{Name: "tuned", Space: param.NewSpace(param.NewInterval("x", 0, 10))},
	}
	ct, err := core.NewConcurrentTuner(algos, nominal.NewEpsilonGreedy(0.10), nil, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := ct.Lease()
		if err != nil {
			b.Fatal(err)
		}
		if err := ct.Complete(tr.ID, float64(tr.Algo+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlatVsPointerTraversal contrasts the pointer-tree recursive
// traversal against the flat-array iterative one on identical rays — the
// memory-layout ablation behind kdtree.FlatTree.
func BenchmarkFlatVsPointerTraversal(b *testing.B) {
	scene := scenegen.Cathedral(2)
	tree := kdtree.NestedBuilder{}.Build(scene.Triangles, kdtree.DefaultParams())
	flat := tree.Flatten()
	cam := ray.Camera{Eye: scene.Eye, LookAt: scene.LookAt, FOV: 65}
	rays := make([]geom.Ray, 0, 64*48)
	for y := 0; y < 48; y++ {
		for x := 0; x < 64; x++ {
			rays = append(rays, cam.Ray(x, y, 64, 48))
		}
	}
	b.Run("pointer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, r := range rays {
				tree.Intersect(r, 1e-9, 1e18)
			}
		}
	})
	b.Run("flat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, r := range rays {
				flat.Intersect(r, 1e-9, 1e18)
			}
		}
	})
}
