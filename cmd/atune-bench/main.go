// Command atune-bench measures the trial engine's lease throughput and
// writes the result as a small JSON document, the shape CI trend
// dashboards ingest.
//
// Usage:
//
//	atune-bench [-out file] [-trials N] [-sleep d] [-workers list]
//
// The workload is synthetic: every trial costs a fixed -sleep of wall
// clock and nothing else, so the numbers isolate the engine's lease/
// complete overhead and its scaling across worker pools rather than any
// particular tuned operation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/exp"
)

type result struct {
	Name         string    `json:"name"`
	Workers      []int     `json:"workers"`
	LeasesPerSec []float64 `json:"leases_per_sec"`
	Speedup      []float64 `json:"speedup"`
	Trials       int       `json:"trials_per_run"`
	SleepMS      float64   `json:"sleep_ms_per_trial"`
	Timestamp    string    `json:"timestamp"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("atune-bench: ")
	var (
		out     = flag.String("out", "BENCH_trial_engine.json", "output file (- for stdout)")
		trials  = flag.Int("trials", 96, "trials completed per worker count")
		sleep   = flag.Duration("sleep", 2*time.Millisecond, "fixed wall-clock cost per trial")
		workers = flag.String("workers", "1,4,16", "comma-separated worker counts")
	)
	flag.Parse()

	var counts []int
	for _, f := range strings.Split(*workers, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			log.Fatalf("bad -workers entry %q", f)
		}
		counts = append(counts, n)
	}

	lps := exp.TrialEngineThroughput(counts, *trials, *sleep)
	res := result{
		Name:    "trial_engine_throughput",
		Workers: counts,
		Trials:  *trials,
		SleepMS: float64(sleep.Nanoseconds()) / 1e6,
		// RFC 3339 so the trend ingester sorts runs lexically.
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	for i, v := range lps {
		res.LeasesPerSec = append(res.LeasesPerSec, v)
		res.Speedup = append(res.Speedup, v/lps[0])
		fmt.Printf("workers=%-3d  %8.0f leases/sec  (%.1fx)\n", counts[i], v, v/lps[0])
	}

	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}
