// Command atune-bench measures the trial engine's lease throughput and
// writes the result as a small JSON document, the shape CI trend
// dashboards ingest.
//
// Usage:
//
//	atune-bench [-out file] [-trials N] [-sleep d] [-workers list]
//	atune-bench -wire [-pipeline] [-gate] [-out file] [-trials N] [-workers list] [-batches list]
//	atune-bench -shards [-out file] [-trials N] [-workers list] [-shard-counts list]
//	atune-bench -tenants N [-out file] [-trials N] [-tenant-workers M] [-batch B]
//	atune-bench -contextual [-out file] [-trials N] [-ctx-workers N] [-batch B]
//
// The default mode benchmarks the in-process engine: every trial costs
// a fixed -sleep of wall clock and nothing else, so the numbers isolate
// the engine's lease/complete overhead and its scaling across worker
// pools rather than any particular tuned operation.
//
// -wire benchmarks the distributed path instead: a tuning server on
// loopback TCP driven by remote worker clients, swept over worker
// counts and LeaseN/CompleteN batch sizes. Here the measurement is
// free, so leases/sec is purely protocol round-trip overhead — the
// batch-size columns show what wire batching buys. -pipeline (the
// default) runs the v3 hot path — packed trial frames multiplexed over
// one pipelined connection per client; -pipeline=false measures the
// lockstep pooled path for comparison. -gate reads the committed
// document at -out before overwriting it and fails the run when
// batch=16 throughput regressed more than 20% against it.
//
// -shards benchmarks sharded selection: the in-process engine swept
// over (workers × shards) with a free measurement, so leases/sec is
// pure decision overhead and the shard columns show what moving
// per-trial work off the global decision mutex buys.
//
// -tenants N benchmarks the multi-tenant server: N tenants × M workers
// each on one loopback server, all measurements free. The document
// records the aggregate leases/sec (how much tenancy itself costs over
// the single-tenant wire path at the same total worker count) and the
// max/min per-tenant throughput fairness ratio (1.0 = perfectly fair).
//
// -contextual benchmarks feature-routed leasing: the same loopback
// fleet runs once against a plain engine and once against a contextual
// engine with every lease carrying a feature vector (two workload
// classes, so the partitioner splits mid-run). The document records
// both rates and their ratio — the cost of per-context routing, which
// the bench gates at within 10% of the plain path.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/tuned"
)

// runMeta records the environment a benchmark ran in, so the trend
// ingester can separate a regression from a toolchain or machine swap.
type runMeta struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

func meta() runMeta {
	return runMeta{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

type result struct {
	Name         string    `json:"name"`
	Meta         runMeta   `json:"meta"`
	Workers      []int     `json:"workers"`
	LeasesPerSec []float64 `json:"leases_per_sec"`
	Speedup      []float64 `json:"speedup"`
	Trials       int       `json:"trials_per_run"`
	SleepMS      float64   `json:"sleep_ms_per_trial"`
	Timestamp    string    `json:"timestamp"`
}

// wireResult is the -wire document: one row per worker count, one
// leases/sec column per batch size, plus the headline ratio of the
// last batch column over the first, per row.
type wireResult struct {
	Name         string      `json:"name"`
	Meta         runMeta     `json:"meta"`
	Pipelined    bool        `json:"pipelined"`
	Workers      []int       `json:"workers"`
	Batches      []int       `json:"batch_sizes"`
	LeasesPerSec [][]float64 `json:"leases_per_sec"`
	BatchSpeedup []float64   `json:"batch_speedup"`
	Trials       int         `json:"trials_per_run"`
	Timestamp    string      `json:"timestamp"`
}

// tenantResult is the -tenants document: aggregate leases/sec over the
// whole multi-tenant run (comparable against the -wire document at the
// same total worker count) plus the per-tenant rates and their max/min
// fairness ratio.
type tenantResult struct {
	Name             string                   `json:"name"`
	Meta             runMeta                  `json:"meta"`
	Tenants          int                      `json:"tenants"`
	WorkersPerTenant int                      `json:"workers_per_tenant"`
	Batch            int                      `json:"batch_size"`
	LeasesPerSec     float64                  `json:"leases_per_sec"`
	PerTenant        []tuned.TenantThroughput `json:"per_tenant"`
	FairnessRatio    float64                  `json:"fairness_ratio"`
	Trials           int                      `json:"trials_per_tenant"`
	Timestamp        string                   `json:"timestamp"`
}

// contextResult is the -contextual document: feature-routed leases/sec
// against the plain-engine baseline at the same fleet size, their
// ratio, and how many contexts the partitioner discovered during the
// run.
type contextResult struct {
	Name         string  `json:"name"`
	Meta         runMeta `json:"meta"`
	Workers      int     `json:"workers"`
	Batch        int     `json:"batch_size"`
	LeasesPerSec float64 `json:"leases_per_sec"`
	BaselinePS   float64 `json:"baseline_leases_per_sec"`
	Overhead     float64 `json:"overhead_ratio"`
	Contexts     int     `json:"contexts_discovered"`
	Trials       int     `json:"trials_per_run"`
	Timestamp    string  `json:"timestamp"`
}

// shardResult is the -shards document: one row per worker count, one
// leases/sec column per shard count, plus the headline ratio of the
// last shard column over the first, per row.
type shardResult struct {
	Name         string      `json:"name"`
	Meta         runMeta     `json:"meta"`
	Workers      []int       `json:"workers"`
	Shards       []int       `json:"shard_counts"`
	LeasesPerSec [][]float64 `json:"leases_per_sec"`
	ShardSpeedup []float64   `json:"shard_speedup"`
	Trials       int         `json:"trials_per_run"`
	Timestamp    string      `json:"timestamp"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("atune-bench: ")
	var (
		out      = flag.String("out", "", "output file (- for stdout; default depends on mode)")
		trials   = flag.Int("trials", 0, "trials completed per run (default depends on mode)")
		sleep    = flag.Duration("sleep", 2*time.Millisecond, "fixed wall-clock cost per trial")
		workers  = flag.String("workers", "1,4,16", "comma-separated worker counts")
		wire     = flag.Bool("wire", false, "benchmark the loopback TCP wire path instead of the in-process engine")
		pipeline = flag.Bool("pipeline", true, "use the v3 hot path: packed frames over pipelined connections (with -wire)")
		gate     = flag.Bool("gate", false, "fail if batch=16 throughput regresses >20% vs the committed -out document")
		batches  = flag.String("batches", "1,16", "comma-separated LeaseN batch sizes (with -wire)")
		shards   = flag.Bool("shards", false, "benchmark sharded selection across shard counts")
		shardCs  = flag.String("shard-counts", "1,4,8", "comma-separated shard counts (with -shards)")
		tenants  = flag.Int("tenants", 0, "benchmark a multi-tenant server with this many tenants")
		tWorkers = flag.Int("tenant-workers", 4, "workers per tenant (with -tenants)")
		batch    = flag.Int("batch", 16, "LeaseN batch size (with -tenants or -contextual)")
		ctx      = flag.Bool("contextual", false, "benchmark feature-routed leasing against the plain wire path")
		ctxW     = flag.Int("ctx-workers", 16, "worker count (with -contextual)")
	)
	flag.Parse()

	if *shards && *workers == "1,4,16" {
		*workers = "1,4,16,64"
	}
	counts := parseInts("-workers", *workers)

	if *tenants > 0 {
		if *out == "" {
			*out = "BENCH_tenant.json"
		}
		if *trials <= 0 {
			*trials = 2000
		}
		if *tWorkers <= 0 || *batch <= 0 {
			log.Fatal("-tenant-workers and -batch must be positive")
		}
		runTenants(*out, *tenants, *tWorkers, *batch, *trials)
		return
	}
	if *ctx {
		if *out == "" {
			*out = "BENCH_context.json"
		}
		if *trials <= 0 {
			// Larger cells than the other wire modes: the overhead ratio
			// divides two independently-measured rates, so each cell must
			// run long enough (~150ms) that startup and convergence noise
			// don't dominate the quotient.
			*trials = 20000
		}
		if *ctxW <= 0 || *batch <= 0 {
			log.Fatal("-ctx-workers and -batch must be positive")
		}
		runContextual(*out, *ctxW, *batch, *trials)
		return
	}
	if *shards {
		if *out == "" {
			*out = "BENCH_shard.json"
		}
		if *trials <= 0 {
			// The free-measurement cells run past a million leases/sec;
			// anything much smaller measures scheduler noise.
			*trials = 100000
		}
		runShards(*out, *trials, counts, parseInts("-shard-counts", *shardCs))
		return
	}
	if *wire {
		if *out == "" {
			*out = "BENCH_wire.json"
		}
		if *trials <= 0 {
			*trials = 2000
		}
		runWire(*out, *trials, counts, parseInts("-batches", *batches), *pipeline, *gate)
		return
	}
	if *out == "" {
		*out = "BENCH_trial_engine.json"
	}
	if *trials <= 0 {
		*trials = 96
	}

	lps := exp.TrialEngineThroughput(counts, *trials, *sleep)
	res := result{
		Name:    "trial_engine_throughput",
		Meta:    meta(),
		Workers: counts,
		Trials:  *trials,
		SleepMS: float64(sleep.Nanoseconds()) / 1e6,
		// RFC 3339 so the trend ingester sorts runs lexically.
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	for i, v := range lps {
		res.LeasesPerSec = append(res.LeasesPerSec, v)
		res.Speedup = append(res.Speedup, v/lps[0])
		fmt.Printf("workers=%-3d  %8.0f leases/sec  (%.1fx)\n", counts[i], v, v/lps[0])
	}

	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	writeDoc(*out, append(buf, '\n'))
}

// runWire sweeps the loopback wire benchmark and writes BENCH_wire.json,
// optionally gating against the previously committed document.
func runWire(out string, trials int, counts, batches []int, pipelined, gate bool) {
	baseline := readWireBaseline(out, gate)
	sweep := tuned.LoopbackThroughput
	if pipelined {
		sweep = tuned.LoopbackThroughputPipelined
	}
	lps, err := sweep(counts, batches, trials)
	if err != nil {
		log.Fatal(err)
	}
	res := wireResult{
		Name:         "wire_loopback_throughput",
		Meta:         meta(),
		Pipelined:    pipelined,
		Workers:      counts,
		Batches:      batches,
		LeasesPerSec: lps,
		Trials:       trials,
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
	}
	for wi, w := range counts {
		speedup := lps[wi][len(batches)-1] / lps[wi][0]
		res.BatchSpeedup = append(res.BatchSpeedup, speedup)
		for bi, b := range batches {
			fmt.Printf("workers=%-3d batch=%-3d  %9.0f leases/sec\n", w, b, lps[wi][bi])
		}
		fmt.Printf("workers=%-3d batch=%d/%d speedup %.1fx\n", w, batches[len(batches)-1], batches[0], speedup)
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	writeDoc(out, append(buf, '\n'))
	gateWire(baseline, &res)
}

// gateBatch is the batch-size column the regression gate compares, and
// gateHeadroom the fraction of the committed baseline the new run must
// reach.
const (
	gateBatch    = 16
	gateHeadroom = 0.80
)

// readWireBaseline loads the committed document the gate compares
// against; missing or unreadable baselines disable the gate (a fresh
// checkout has nothing to regress from).
func readWireBaseline(path string, gate bool) *wireResult {
	if !gate || path == "-" {
		return nil
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		log.Printf("gate: no committed baseline at %s, skipping (%v)", path, err)
		return nil
	}
	var res wireResult
	if err := json.Unmarshal(buf, &res); err != nil {
		log.Printf("gate: unreadable baseline at %s, skipping (%v)", path, err)
		return nil
	}
	return &res
}

// bestAtBatch returns the best leases/sec a document records in the
// given batch-size column (0 when the column is absent).
func bestAtBatch(res *wireResult, batch int) float64 {
	best := 0.0
	for bi, b := range res.Batches {
		if b != batch {
			continue
		}
		for _, row := range res.LeasesPerSec {
			if bi < len(row) {
				best = math.Max(best, row[bi])
			}
		}
	}
	return best
}

// gateWire fails the run when the fresh sweep's batch=16 throughput
// fell below gateHeadroom of the committed baseline. The new document
// is already on disk at this point, so a failing run still leaves its
// evidence for the trend dashboard.
func gateWire(baseline, fresh *wireResult) {
	if baseline == nil {
		return
	}
	was, now := bestAtBatch(baseline, gateBatch), bestAtBatch(fresh, gateBatch)
	if was <= 0 || now <= 0 {
		log.Printf("gate: no batch=%d column on both sides, skipping", gateBatch)
		return
	}
	if now < gateHeadroom*was {
		log.Fatalf("gate: batch=%d throughput regressed %.0f%%: %.0f → %.0f leases/sec (floor %.0f)",
			gateBatch, 100*(1-now/was), was, now, gateHeadroom*was)
	}
	fmt.Printf("gate: batch=%d throughput %.0f vs committed %.0f leases/sec (%.2fx) — ok\n",
		gateBatch, now, was, now/was)
}

// runShards sweeps the sharded engine over (workers × shards) and
// writes BENCH_shard.json. The measurement is free, so the columns
// isolate decision-path overhead: 1 shard is the unsharded engine
// (every trial under the global mutex), N shards fold only every
// mergeEvery completions.
func runShards(out string, trials int, counts, shardCounts []int) {
	lps := exp.ShardedThroughput(counts, shardCounts, trials, 0)
	res := shardResult{
		Name:         "sharded_selection_throughput",
		Meta:         meta(),
		Workers:      counts,
		Shards:       shardCounts,
		LeasesPerSec: lps,
		Trials:       trials,
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
	}
	for wi, w := range counts {
		speedup := lps[wi][len(shardCounts)-1] / lps[wi][0]
		res.ShardSpeedup = append(res.ShardSpeedup, speedup)
		for si, s := range shardCounts {
			fmt.Printf("workers=%-3d shards=%-2d  %9.0f leases/sec\n", w, s, lps[wi][si])
		}
		fmt.Printf("workers=%-3d shards=%d/%d speedup %.1fx\n", w, shardCounts[len(shardCounts)-1], shardCounts[0], speedup)
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	writeDoc(out, append(buf, '\n'))
}

// runTenants drives tenants × workersPerTenant clients against one
// multi-tenant server and writes BENCH_tenant.json. Aggregate
// leases/sec compares against BENCH_wire.json at the same total worker
// count; the fairness ratio is max/min of the per-tenant rates.
func runTenants(out string, tenants, workersPerTenant, batch, trials int) {
	aggregate, perTenant, err := tuned.MultiTenantThroughput(tenants, workersPerTenant, batch, trials)
	if err != nil {
		log.Fatal(err)
	}
	minRate, maxRate := perTenant[0].PerSec, perTenant[0].PerSec
	for _, tt := range perTenant[1:] {
		minRate = math.Min(minRate, tt.PerSec)
		maxRate = math.Max(maxRate, tt.PerSec)
	}
	res := tenantResult{
		Name:             "tenant_loopback_throughput",
		Meta:             meta(),
		Tenants:          tenants,
		WorkersPerTenant: workersPerTenant,
		Batch:            batch,
		LeasesPerSec:     aggregate,
		PerTenant:        perTenant,
		FairnessRatio:    maxRate / minRate,
		Trials:           trials,
		Timestamp:        time.Now().UTC().Format(time.RFC3339),
	}
	for _, tt := range perTenant {
		fmt.Printf("tenant=%s  %9.0f leases/sec  (%d trials)\n", tt.Name, tt.PerSec, tt.Iterations)
	}
	fmt.Printf("tenants=%d workers/tenant=%d batch=%d  aggregate %9.0f leases/sec  fairness %.2fx\n",
		tenants, workersPerTenant, batch, aggregate, res.FairnessRatio)
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	writeDoc(out, append(buf, '\n'))
}

// runContextual compares feature-routed leasing against the plain wire
// path at the same fleet size and writes BENCH_context.json. The
// overhead ratio is contextual/baseline leases per second.
func runContextual(out string, workers, batch, trials int) {
	contextual, baseline, contexts, err := tuned.ContextualThroughput(workers, batch, trials)
	if err != nil {
		log.Fatal(err)
	}
	res := contextResult{
		Name:         "contextual_loopback_throughput",
		Meta:         meta(),
		Workers:      workers,
		Batch:        batch,
		LeasesPerSec: contextual,
		BaselinePS:   baseline,
		Overhead:     contextual / baseline,
		Contexts:     contexts,
		Trials:       trials,
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
	}
	fmt.Printf("workers=%-3d batch=%-3d  plain      %9.0f leases/sec\n", workers, batch, baseline)
	fmt.Printf("workers=%-3d batch=%-3d  contextual %9.0f leases/sec  (%.2fx, %d contexts)\n",
		workers, batch, contextual, res.Overhead, contexts)
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	writeDoc(out, append(buf, '\n'))
}

func parseInts(flagName, list string) []int {
	var out []int
	for _, f := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			log.Fatalf("bad %s entry %q", flagName, f)
		}
		out = append(out, n)
	}
	return out
}

func writeDoc(out string, buf []byte) {
	if out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}
