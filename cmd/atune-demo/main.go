// Command atune-demo is a minimal, fast demonstration of the two-phase
// online autotuner: three synthetic "algorithms" (one untunable and fast,
// one tunable that can beat it, one plainly bad) are tuned live, printing
// the tuner's choices and progress every few iterations.
//
// Usage:
//
//	atune-demo [-strategy name] [-iters N] [-seed S] [-faults] [-guard]
//	           [-checkpoint dir] [-snap-every N] [-resume] [-workers N]
//	           [-contextual]
//
// Strategy names: egreedy:5, egreedy:10, egreedy:20, gradient, optimum,
// auc, random, roundrobin, softmax:<temp>.
//
// -faults makes the plainly-bad algorithm fail three out of every four
// runs, cycling panic → NaN → hang → ok. Without -guard that crashes the
// loop on the very first visit to the bad arm — run with both flags to
// watch the fault-tolerant measurement layer (guard + quarantine +
// degradation watchdog) absorb the failures and still converge.
//
// -checkpoint makes the tuner durable: its state is snapshotted to dir
// every -snap-every iterations and journaled in between. Kill the demo at
// any point (Ctrl-C, kill -9) and run it again with -resume to watch the
// tuner pick up where it left off, losing at most one iteration:
//
//	atune-demo -checkpoint /tmp/demo-ckpt            # interrupt this...
//	atune-demo -checkpoint /tmp/demo-ckpt -resume    # ...then warm-restart
//
// -workers N > 1 switches from the sequential Step loop to the lease-based
// trial engine: N goroutines lease trials, measure them concurrently, and
// complete them out of order (per-iteration progress lines are then
// suppressed — completions have no single order to print them in). All
// other flags compose; -resume with -workers replays the journal through
// the concurrent path.
//
// -contextual demonstrates feature-vector routing: the same three
// algorithms, but the right answer now depends on the request. Two
// request classes alternate — "small" inputs (feature vector {1}) where
// the tunable algorithm wins, and "large" inputs ({100}) where every
// cost but the size-oblivious streaming algorithm's scales up and
// fast-but-fixed wins. The contextual engine's split tree must discover
// that the feature separates two cost regimes and elect each class's own
// winner in its own selector replica. Self-contained: composes only with
// -iters and -seed (every replica uses a windowed ε-greedy, so -strategy
// does not apply either).
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ctxtune"
	"repro/internal/guard"
	"repro/internal/nominal"
	"repro/internal/param"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("atune-demo: ")
	var (
		strategy = flag.String("strategy", "egreedy:10", "phase-two selection strategy")
		iters    = flag.Int("iters", 120, "tuning iterations")
		seed     = flag.Int64("seed", 1, "seed")
		faults   = flag.Bool("faults", false, "make the plainly-bad algorithm fail 3 of 4 runs (panic/NaN/hang cycle)")
		guarded  = flag.Bool("guard", false, "enable the fault-tolerant measurement layer (guard + quarantine)")
		ckptDir  = flag.String("checkpoint", "", "directory for crash-safe tuner snapshots + journal (empty = off)")
		snapEach = flag.Int("snap-every", 20, "snapshot cadence in iterations (with -checkpoint)")
		resume   = flag.Bool("resume", false, "warm-restart from the -checkpoint directory instead of starting fresh")
		workers  = flag.Int("workers", 1, "concurrent measurement workers (>1 uses the lease-based trial engine)")
		ctxFlg   = flag.Bool("contextual", false, "demo feature-vector routing: two request classes with different winners")
	)
	flag.Parse()

	if *ctxFlg {
		// Self-contained mode: reject any explicitly set flag it ignores
		// rather than silently dropping it.
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "contextual", "iters", "seed":
			default:
				log.Fatalf("-%s does not apply with -contextual (only -iters and -seed compose)", f.Name)
			}
		})
		runContextual(*iters, *seed)
		return
	}

	sel, err := nominal.NewByName(*strategy)
	if err != nil {
		log.Fatal(err)
	}

	algos := demoAlgos()
	measure := func(algo int, cfg param.Config) float64 {
		switch algo {
		case 0:
			return 10
		case 1:
			da := cfg[0] - 6.5
			db := (cfg[1] - 48) / 16
			return 4 + da*da + db*db
		default:
			return 35
		}
	}

	const faultyAlgo = 2
	if *faults {
		// The mutex matters under -guard: a hung measurement is abandoned
		// by the deadline and its goroutine would otherwise race the next
		// call on the visit counter.
		var mu sync.Mutex
		visits := 0
		inner := measure
		measure = func(algo int, cfg param.Config) float64 {
			if algo == faultyAlgo {
				mu.Lock()
				v := visits
				visits++
				mu.Unlock()
				switch v % 4 {
				case 0:
					panic("injected fault in plainly-bad")
				case 1:
					return math.NaN()
				case 2:
					time.Sleep(250 * time.Millisecond)
					return math.NaN()
				}
			}
			return inner(algo, cfg)
		}
		if !*guarded {
			fmt.Println("injecting faults WITHOUT -guard: expect a crash")
		}
	}

	var q *guard.Quarantine
	var opts []core.Option
	if *guarded {
		q = guard.NewQuarantine(sel)
		q.K = 2
		sel = q
		opts = append(opts, core.WithGuard(guard.WithTimeout(50*time.Millisecond)))
	}

	if *resume && *ckptDir == "" {
		log.Fatal("-resume requires -checkpoint <dir>")
	}

	// The trial engine exposes the tuner's whole read-side surface, so
	// the summary below works off either loop.
	var state interface {
		Best() (int, param.Config, float64)
		Counts() []int
		FailureStats() core.FailureStats
		Degraded() bool
		CheckpointErr() error
	}

	switch {
	case *workers > 1:
		var ct *core.ConcurrentTuner
		if *resume {
			// ResumeConcurrent enables checkpointing on the directory
			// itself and replays interleaved trial IDs; it also accepts a
			// journal written by the sequential loop.
			ct, err = core.ResumeConcurrent(*ckptDir, *snapEach, algos, sel, nil, *seed, opts...)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("resumed from %s at iteration %d\n", *ckptDir, ct.Iterations())
		} else {
			if *ckptDir != "" {
				opts = append(opts, core.WithCheckpoint(*ckptDir, *snapEach))
			}
			if ct, err = core.NewConcurrentTuner(algos, sel, nil, *seed, opts...); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("online-autotuning %d algorithms with %s across %d workers\n\n",
			len(algos), sel.Name(), *workers)
		ct.RunPool(*workers, *iters, measure)
		s := ct.Stats()
		fmt.Printf("leased %d trials: %d completed, %d failed, %d expired\n",
			s.Leased, s.Completed, s.Failed, s.Expired)
		state = ct

	case *resume:
		// Resume enables checkpointing on the directory itself; passing
		// WithCheckpoint again would snapshot before the restore.
		tuner, err := core.Resume(*ckptDir, *snapEach, algos, sel, nil, *seed, opts...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("resumed from %s at iteration %d\n", *ckptDir, tuner.Iterations())
		runSequential(tuner, algos, sel, measure, *iters)
		state = tuner

	default:
		if *ckptDir != "" {
			opts = append(opts, core.WithCheckpoint(*ckptDir, *snapEach))
		}
		tuner, err := core.NewTuner(algos, sel, nil, *seed, opts...)
		if err != nil {
			log.Fatal(err)
		}
		runSequential(tuner, algos, sel, measure, *iters)
		state = tuner
	}

	if *ckptDir != "" {
		if err := state.CheckpointErr(); err != nil {
			fmt.Fprintln(os.Stderr, "warning: checkpointing degraded:", err)
		}
	}

	best, cfg, val := state.Best()
	fmt.Printf("\nbest algorithm : %s\n", algos[best].Name)
	if algos[best].Space != nil {
		fmt.Printf("best config    : %s\n", algos[best].Space.Format(cfg))
	}
	fmt.Printf("best cost      : %.3f\n", val)
	fmt.Printf("selection count: ")
	for i, c := range state.Counts() {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s=%d", algos[i].Name, c)
	}
	fmt.Println()
	if *guarded {
		fs := state.FailureStats()
		fmt.Printf("failures       : %d total (%d panics, %d timeouts, %d invalid)\n",
			fs.Total, fs.Panics, fs.Timeouts, fs.Invalids)
		fmt.Printf("quarantine     : %s tripped %d times; degraded=%v, pinned iters=%d\n",
			algos[faultyAlgo].Name, q.Trips(faultyAlgo), state.Degraded(), fs.PinnedIterations)
	}
	if best != 1 {
		fmt.Fprintln(os.Stderr, "note: the tunable algorithm was not identified as best; try more iterations")
		os.Exit(1)
	}
}

// demoAlgos is the demo's synthetic roster, shared by the global and
// contextual modes.
func demoAlgos() []core.Algorithm {
	return []core.Algorithm{
		{Name: "fast-but-fixed"},
		{
			Name: "tunable-winner",
			Space: param.NewSpace(
				param.NewInterval("alpha", 0, 10),
				param.NewRatioInt("block", 1, 64),
			),
			// A hand-crafted starting configuration (as in the paper's
			// raytracing case study): competitive from the start, and the
			// Nelder-Mead phase tunes it to the clear winner.
			Init: param.Config{5, 32},
		},
		{Name: "plainly-bad"},
	}
}

// runContextual is the -contextual demo: two request classes alternate
// through one contextual engine, and each must converge on its own
// winner — the tunable algorithm on small inputs, the size-oblivious
// streaming one on large.
func runContextual(iters int, seed int64) {
	algos := demoAlgos()
	classes := []struct {
		name  string
		feats ctxtune.Features
	}{
		{"small", ctxtune.Features{1}},
		{"large", ctxtune.Features{100}},
	}
	winner := []int{1, 0}
	measure := func(class, algo int, cfg param.Config) float64 {
		switch algo {
		case 0:
			// Streaming and size-oblivious: barely cares about the class.
			return 10 + 2*float64(class)
		case 1:
			da := cfg[0] - 6.5
			db := (cfg[1] - 48) / 16
			v := 4 + da*da + db*db
			if class == 1 {
				v *= 8
			}
			return v
		default:
			return 35 * float64(1+7*class)
		}
	}
	eng, err := ctxtune.New(ctxtune.Config{
		Algos: algos,
		// Windowed min: each replica is warm-started from the global
		// fold, and the imported evidence — the other class's landscape —
		// must be able to age out.
		Selector: func() nominal.Selector {
			return &nominal.EpsilonGreedy{Eps: 0.10, RecencyWindow: 25}
		},
		Seed:        seed,
		Partitioner: ctxtune.NewTree(1, 24, 1.5),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	fmt.Printf("contextual-autotuning %d algorithms across %d request classes\n\n",
		len(algos), len(classes))
	tallies := make([][]int, len(classes))
	for c := range tallies {
		tallies[c] = make([]int, len(algos))
	}
	tail := iters / 2
	for i := 0; i < iters; i++ {
		class := i % len(classes)
		trials, err := eng.LeaseNFor(classes[class].feats, 1)
		if err != nil {
			log.Fatal(err)
		}
		tr := trials[0]
		v := measure(class, tr.Algo, tr.Config)
		if e := eng.CompleteN([]core.TrialResult{{ID: tr.ID, Value: v}})[0]; e != nil {
			log.Fatal(e)
		}
		if i >= tail {
			tallies[class][tr.Algo]++
		}
		if i < 10 || i%10 == 0 {
			fmt.Printf("iter %3d  %-5s ran %-15s cost %6.2f\n",
				i, classes[class].name, algos[tr.Algo].Name, v)
		}
	}

	fmt.Printf("\ncontexts discovered: %d\n", eng.ContextCount())
	ok := eng.ContextCount() >= 2
	for c, cl := range classes {
		best, bestN := 0, -1
		for a, n := range tallies[c] {
			if n > bestN {
				best, bestN = a, n
			}
		}
		fmt.Printf("%-5s class pick  : %s (%d of last %d)\n",
			cl.name, algos[best].Name, bestN, (iters-tail+1)/len(classes))
		if best != winner[c] {
			ok = false
		}
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "note: contextual routing did not separate the classes; try more iterations")
		os.Exit(1)
	}
}

// runSequential is the classic strictly alternating tuning loop with
// per-iteration progress lines.
func runSequential(tuner *core.Tuner, algos []core.Algorithm, sel nominal.Selector, measure core.Measure, iters int) {
	fmt.Printf("online-autotuning %d algorithms with %s\n\n", len(algos), sel.Name())
	for i := 0; i < iters; i++ {
		rec := tuner.Step(measure)
		if i < 10 || i%10 == 0 {
			status := ""
			if rec.Failed {
				status = "  [failed: penalized]"
			}
			fmt.Printf("iter %3d  ran %-15s cost %6.2f%s\n",
				rec.Iteration, algos[rec.Algo].Name, rec.Value, status)
		}
	}
}
