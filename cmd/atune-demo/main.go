// Command atune-demo is a minimal, fast demonstration of the two-phase
// online autotuner: three synthetic "algorithms" (one untunable and fast,
// one tunable that can beat it, one plainly bad) are tuned live, printing
// the tuner's choices and progress every few iterations.
//
// Usage:
//
//	atune-demo [-strategy name] [-iters N] [-seed S] [-faults] [-guard]
//	           [-checkpoint dir] [-snap-every N] [-resume] [-workers N]
//
// Strategy names: egreedy:5, egreedy:10, egreedy:20, gradient, optimum,
// auc, random, roundrobin, softmax:<temp>.
//
// -faults makes the plainly-bad algorithm fail three out of every four
// runs, cycling panic → NaN → hang → ok. Without -guard that crashes the
// loop on the very first visit to the bad arm — run with both flags to
// watch the fault-tolerant measurement layer (guard + quarantine +
// degradation watchdog) absorb the failures and still converge.
//
// -checkpoint makes the tuner durable: its state is snapshotted to dir
// every -snap-every iterations and journaled in between. Kill the demo at
// any point (Ctrl-C, kill -9) and run it again with -resume to watch the
// tuner pick up where it left off, losing at most one iteration:
//
//	atune-demo -checkpoint /tmp/demo-ckpt            # interrupt this...
//	atune-demo -checkpoint /tmp/demo-ckpt -resume    # ...then warm-restart
//
// -workers N > 1 switches from the sequential Step loop to the lease-based
// trial engine: N goroutines lease trials, measure them concurrently, and
// complete them out of order (per-iteration progress lines are then
// suppressed — completions have no single order to print them in). All
// other flags compose; -resume with -workers replays the journal through
// the concurrent path.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/nominal"
	"repro/internal/param"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("atune-demo: ")
	var (
		strategy = flag.String("strategy", "egreedy:10", "phase-two selection strategy")
		iters    = flag.Int("iters", 120, "tuning iterations")
		seed     = flag.Int64("seed", 1, "seed")
		faults   = flag.Bool("faults", false, "make the plainly-bad algorithm fail 3 of 4 runs (panic/NaN/hang cycle)")
		guarded  = flag.Bool("guard", false, "enable the fault-tolerant measurement layer (guard + quarantine)")
		ckptDir  = flag.String("checkpoint", "", "directory for crash-safe tuner snapshots + journal (empty = off)")
		snapEach = flag.Int("snap-every", 20, "snapshot cadence in iterations (with -checkpoint)")
		resume   = flag.Bool("resume", false, "warm-restart from the -checkpoint directory instead of starting fresh")
		workers  = flag.Int("workers", 1, "concurrent measurement workers (>1 uses the lease-based trial engine)")
	)
	flag.Parse()

	sel, err := nominal.NewByName(*strategy)
	if err != nil {
		log.Fatal(err)
	}

	algos := []core.Algorithm{
		{Name: "fast-but-fixed"},
		{
			Name: "tunable-winner",
			Space: param.NewSpace(
				param.NewInterval("alpha", 0, 10),
				param.NewRatioInt("block", 1, 64),
			),
			// A hand-crafted starting configuration (as in the paper's
			// raytracing case study): competitive from the start, and the
			// Nelder-Mead phase tunes it to the clear winner.
			Init: param.Config{5, 32},
		},
		{Name: "plainly-bad"},
	}
	measure := func(algo int, cfg param.Config) float64 {
		switch algo {
		case 0:
			return 10
		case 1:
			da := cfg[0] - 6.5
			db := (cfg[1] - 48) / 16
			return 4 + da*da + db*db
		default:
			return 35
		}
	}

	const faultyAlgo = 2
	if *faults {
		// The mutex matters under -guard: a hung measurement is abandoned
		// by the deadline and its goroutine would otherwise race the next
		// call on the visit counter.
		var mu sync.Mutex
		visits := 0
		inner := measure
		measure = func(algo int, cfg param.Config) float64 {
			if algo == faultyAlgo {
				mu.Lock()
				v := visits
				visits++
				mu.Unlock()
				switch v % 4 {
				case 0:
					panic("injected fault in plainly-bad")
				case 1:
					return math.NaN()
				case 2:
					time.Sleep(250 * time.Millisecond)
					return math.NaN()
				}
			}
			return inner(algo, cfg)
		}
		if !*guarded {
			fmt.Println("injecting faults WITHOUT -guard: expect a crash")
		}
	}

	var q *guard.Quarantine
	var opts []core.Option
	if *guarded {
		q = guard.NewQuarantine(sel)
		q.K = 2
		sel = q
		opts = append(opts, core.WithGuard(guard.WithTimeout(50*time.Millisecond)))
	}

	if *resume && *ckptDir == "" {
		log.Fatal("-resume requires -checkpoint <dir>")
	}

	// The trial engine exposes the tuner's whole read-side surface, so
	// the summary below works off either loop.
	var state interface {
		Best() (int, param.Config, float64)
		Counts() []int
		FailureStats() core.FailureStats
		Degraded() bool
		CheckpointErr() error
	}

	switch {
	case *workers > 1:
		var ct *core.ConcurrentTuner
		if *resume {
			// ResumeConcurrent enables checkpointing on the directory
			// itself and replays interleaved trial IDs; it also accepts a
			// journal written by the sequential loop.
			ct, err = core.ResumeConcurrent(*ckptDir, *snapEach, algos, sel, nil, *seed, opts...)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("resumed from %s at iteration %d\n", *ckptDir, ct.Iterations())
		} else {
			if *ckptDir != "" {
				opts = append(opts, core.WithCheckpoint(*ckptDir, *snapEach))
			}
			if ct, err = core.NewConcurrentTuner(algos, sel, nil, *seed, opts...); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("online-autotuning %d algorithms with %s across %d workers\n\n",
			len(algos), sel.Name(), *workers)
		ct.RunPool(*workers, *iters, measure)
		s := ct.Stats()
		fmt.Printf("leased %d trials: %d completed, %d failed, %d expired\n",
			s.Leased, s.Completed, s.Failed, s.Expired)
		state = ct

	case *resume:
		// Resume enables checkpointing on the directory itself; passing
		// WithCheckpoint again would snapshot before the restore.
		tuner, err := core.Resume(*ckptDir, *snapEach, algos, sel, nil, *seed, opts...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("resumed from %s at iteration %d\n", *ckptDir, tuner.Iterations())
		runSequential(tuner, algos, sel, measure, *iters)
		state = tuner

	default:
		if *ckptDir != "" {
			opts = append(opts, core.WithCheckpoint(*ckptDir, *snapEach))
		}
		tuner, err := core.NewTuner(algos, sel, nil, *seed, opts...)
		if err != nil {
			log.Fatal(err)
		}
		runSequential(tuner, algos, sel, measure, *iters)
		state = tuner
	}

	if *ckptDir != "" {
		if err := state.CheckpointErr(); err != nil {
			fmt.Fprintln(os.Stderr, "warning: checkpointing degraded:", err)
		}
	}

	best, cfg, val := state.Best()
	fmt.Printf("\nbest algorithm : %s\n", algos[best].Name)
	if algos[best].Space != nil {
		fmt.Printf("best config    : %s\n", algos[best].Space.Format(cfg))
	}
	fmt.Printf("best cost      : %.3f\n", val)
	fmt.Printf("selection count: ")
	for i, c := range state.Counts() {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s=%d", algos[i].Name, c)
	}
	fmt.Println()
	if *guarded {
		fs := state.FailureStats()
		fmt.Printf("failures       : %d total (%d panics, %d timeouts, %d invalid)\n",
			fs.Total, fs.Panics, fs.Timeouts, fs.Invalids)
		fmt.Printf("quarantine     : %s tripped %d times; degraded=%v, pinned iters=%d\n",
			algos[faultyAlgo].Name, q.Trips(faultyAlgo), state.Degraded(), fs.PinnedIterations)
	}
	if best != 1 {
		fmt.Fprintln(os.Stderr, "note: the tunable algorithm was not identified as best; try more iterations")
		os.Exit(1)
	}
}

// runSequential is the classic strictly alternating tuning loop with
// per-iteration progress lines.
func runSequential(tuner *core.Tuner, algos []core.Algorithm, sel nominal.Selector, measure core.Measure, iters int) {
	fmt.Printf("online-autotuning %d algorithms with %s\n\n", len(algos), sel.Name())
	for i := 0; i < iters; i++ {
		rec := tuner.Step(measure)
		if i < 10 || i%10 == 0 {
			status := ""
			if rec.Failed {
				status = "  [failed: penalized]"
			}
			fmt.Printf("iter %3d  ran %-15s cost %6.2f%s\n",
				rec.Iteration, algos[rec.Algo].Name, rec.Value, status)
		}
	}
}
