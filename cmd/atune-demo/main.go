// Command atune-demo is a minimal, fast demonstration of the two-phase
// online autotuner: three synthetic "algorithms" (one untunable and fast,
// one tunable that can beat it, one plainly bad) are tuned live, printing
// the tuner's choices and progress every few iterations.
//
// Usage:
//
//	atune-demo [-strategy name] [-iters N] [-seed S]
//
// Strategy names: egreedy:5, egreedy:10, egreedy:20, gradient, optimum,
// auc, random, roundrobin, softmax:<temp>.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/nominal"
	"repro/internal/param"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("atune-demo: ")
	var (
		strategy = flag.String("strategy", "egreedy:10", "phase-two selection strategy")
		iters    = flag.Int("iters", 120, "tuning iterations")
		seed     = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()

	sel, err := nominal.NewByName(*strategy)
	if err != nil {
		log.Fatal(err)
	}

	algos := []core.Algorithm{
		{Name: "fast-but-fixed"},
		{
			Name: "tunable-winner",
			Space: param.NewSpace(
				param.NewInterval("alpha", 0, 10),
				param.NewRatioInt("block", 1, 64),
			),
			// A hand-crafted starting configuration (as in the paper's
			// raytracing case study): competitive from the start, and the
			// Nelder-Mead phase tunes it to the clear winner.
			Init: param.Config{5, 32},
		},
		{Name: "plainly-bad"},
	}
	measure := func(algo int, cfg param.Config) float64 {
		switch algo {
		case 0:
			return 10
		case 1:
			da := cfg[0] - 6.5
			db := (cfg[1] - 48) / 16
			return 4 + da*da + db*db
		default:
			return 35
		}
	}

	tuner, err := core.New(algos, sel, nil, *seed)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("online-autotuning %d algorithms with %s\n\n", len(algos), sel.Name())
	for i := 0; i < *iters; i++ {
		rec := tuner.Step(measure)
		if i < 10 || i%10 == 0 {
			fmt.Printf("iter %3d  ran %-15s cost %6.2f\n",
				rec.Iteration, algos[rec.Algo].Name, rec.Value)
		}
	}

	best, cfg, val := tuner.Best()
	fmt.Printf("\nbest algorithm : %s\n", algos[best].Name)
	if algos[best].Space != nil {
		fmt.Printf("best config    : %s\n", algos[best].Space.Format(cfg))
	}
	fmt.Printf("best cost      : %.3f\n", val)
	fmt.Printf("selection count: ")
	for i, c := range tuner.Counts() {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s=%d", algos[i].Name, c)
	}
	fmt.Println()
	if best != 1 {
		fmt.Fprintln(os.Stderr, "note: the tunable algorithm was not identified as best; try more iterations")
		os.Exit(1)
	}
}
