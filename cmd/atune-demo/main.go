// Command atune-demo is a minimal, fast demonstration of the two-phase
// online autotuner: three synthetic "algorithms" (one untunable and fast,
// one tunable that can beat it, one plainly bad) are tuned live, printing
// the tuner's choices and progress every few iterations.
//
// Usage:
//
//	atune-demo [-strategy name] [-iters N] [-seed S] [-faults] [-guard]
//	           [-checkpoint dir] [-snap-every N] [-resume]
//
// Strategy names: egreedy:5, egreedy:10, egreedy:20, gradient, optimum,
// auc, random, roundrobin, softmax:<temp>.
//
// -faults makes the plainly-bad algorithm fail three out of every four
// runs, cycling panic → NaN → hang → ok. Without -guard that crashes the
// loop on the very first visit to the bad arm — run with both flags to
// watch the fault-tolerant measurement layer (guard + quarantine +
// degradation watchdog) absorb the failures and still converge.
//
// -checkpoint makes the tuner durable: its state is snapshotted to dir
// every -snap-every iterations and journaled in between. Kill the demo at
// any point (Ctrl-C, kill -9) and run it again with -resume to watch the
// tuner pick up where it left off, losing at most one iteration:
//
//	atune-demo -checkpoint /tmp/demo-ckpt            # interrupt this...
//	atune-demo -checkpoint /tmp/demo-ckpt -resume    # ...then warm-restart
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/nominal"
	"repro/internal/param"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("atune-demo: ")
	var (
		strategy = flag.String("strategy", "egreedy:10", "phase-two selection strategy")
		iters    = flag.Int("iters", 120, "tuning iterations")
		seed     = flag.Int64("seed", 1, "seed")
		faults   = flag.Bool("faults", false, "make the plainly-bad algorithm fail 3 of 4 runs (panic/NaN/hang cycle)")
		guarded  = flag.Bool("guard", false, "enable the fault-tolerant measurement layer (guard + quarantine)")
		ckptDir  = flag.String("checkpoint", "", "directory for crash-safe tuner snapshots + journal (empty = off)")
		snapEach = flag.Int("snap-every", 20, "snapshot cadence in iterations (with -checkpoint)")
		resume   = flag.Bool("resume", false, "warm-restart from the -checkpoint directory instead of starting fresh")
	)
	flag.Parse()

	sel, err := nominal.NewByName(*strategy)
	if err != nil {
		log.Fatal(err)
	}

	algos := []core.Algorithm{
		{Name: "fast-but-fixed"},
		{
			Name: "tunable-winner",
			Space: param.NewSpace(
				param.NewInterval("alpha", 0, 10),
				param.NewRatioInt("block", 1, 64),
			),
			// A hand-crafted starting configuration (as in the paper's
			// raytracing case study): competitive from the start, and the
			// Nelder-Mead phase tunes it to the clear winner.
			Init: param.Config{5, 32},
		},
		{Name: "plainly-bad"},
	}
	measure := func(algo int, cfg param.Config) float64 {
		switch algo {
		case 0:
			return 10
		case 1:
			da := cfg[0] - 6.5
			db := (cfg[1] - 48) / 16
			return 4 + da*da + db*db
		default:
			return 35
		}
	}

	const faultyAlgo = 2
	if *faults {
		// The mutex matters under -guard: a hung measurement is abandoned
		// by the deadline and its goroutine would otherwise race the next
		// call on the visit counter.
		var mu sync.Mutex
		visits := 0
		inner := measure
		measure = func(algo int, cfg param.Config) float64 {
			if algo == faultyAlgo {
				mu.Lock()
				v := visits
				visits++
				mu.Unlock()
				switch v % 4 {
				case 0:
					panic("injected fault in plainly-bad")
				case 1:
					return math.NaN()
				case 2:
					time.Sleep(250 * time.Millisecond)
					return math.NaN()
				}
			}
			return inner(algo, cfg)
		}
		if !*guarded {
			fmt.Println("injecting faults WITHOUT -guard: expect a crash")
		}
	}

	var q *guard.Quarantine
	var opts []core.Option
	if *guarded {
		q = guard.NewQuarantine(sel)
		q.K = 2
		sel = q
		opts = append(opts, core.WithGuard(guard.WithTimeout(50*time.Millisecond)))
	}

	var tuner *core.Tuner
	switch {
	case *resume:
		// Resume enables checkpointing on the directory itself; passing
		// WithCheckpoint again would snapshot before the restore.
		if *ckptDir == "" {
			log.Fatal("-resume requires -checkpoint <dir>")
		}
		tuner, err = core.Resume(*ckptDir, *snapEach, algos, sel, nil, *seed, opts...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("resumed from %s at iteration %d\n", *ckptDir, tuner.Iterations())
	default:
		if *ckptDir != "" {
			opts = append(opts, core.WithCheckpoint(*ckptDir, *snapEach))
		}
		tuner, err = core.New(algos, sel, nil, *seed, opts...)
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("online-autotuning %d algorithms with %s\n\n", len(algos), sel.Name())
	for i := 0; i < *iters; i++ {
		rec := tuner.Step(measure)
		if i < 10 || i%10 == 0 {
			status := ""
			if rec.Failed {
				status = "  [failed: penalized]"
			}
			fmt.Printf("iter %3d  ran %-15s cost %6.2f%s\n",
				rec.Iteration, algos[rec.Algo].Name, rec.Value, status)
		}
	}

	if *ckptDir != "" {
		if err := tuner.CheckpointErr(); err != nil {
			fmt.Fprintln(os.Stderr, "warning: checkpointing degraded:", err)
		}
	}

	best, cfg, val := tuner.Best()
	fmt.Printf("\nbest algorithm : %s\n", algos[best].Name)
	if algos[best].Space != nil {
		fmt.Printf("best config    : %s\n", algos[best].Space.Format(cfg))
	}
	fmt.Printf("best cost      : %.3f\n", val)
	fmt.Printf("selection count: ")
	for i, c := range tuner.Counts() {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s=%d", algos[i].Name, c)
	}
	fmt.Println()
	if *guarded {
		fs := tuner.FailureStats()
		fmt.Printf("failures       : %d total (%d panics, %d timeouts, %d invalid)\n",
			fs.Total, fs.Panics, fs.Timeouts, fs.Invalids)
		fmt.Printf("quarantine     : %s tripped %d times; degraded=%v, pinned iters=%d\n",
			algos[faultyAlgo].Name, q.Trips(faultyAlgo), tuner.Degraded(), fs.PinnedIterations)
	}
	if best != 1 {
		fmt.Fprintln(os.Stderr, "note: the tunable algorithm was not identified as best; try more iterations")
		os.Exit(1)
	}
}
