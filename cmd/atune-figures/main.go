// Command atune-figures regenerates every table and figure of the paper
// in one run, plus the ablations listed in DESIGN.md.
//
// Usage:
//
//	atune-figures [-only id[,id...]] [-paper] [-seed S]
//
// Ids: t1 t2 f1 f2 f3 f4 f5 f6 f7 f8 a1 a2 a3 a4 a5 a6 a7 a8 a9 a10 a11 a12 a13 a14 a15 a16 x1 x2 x3 x4 x5. The default runs
// everything at quick scale; -paper switches to the paper-scale
// configuration.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
)

func main() {
	var (
		only  = flag.String("only", "", "comma-separated artefact ids (t1..a16, x1..x5); empty = all")
		paper = flag.Bool("paper", false, "use the paper-scale configuration")
		seed  = flag.Int64("seed", 1, "master seed")
	)
	flag.Parse()

	cfg := exp.QuickConfig()
	if *paper {
		cfg = exp.PaperConfig()
	}
	cfg.Seed = *seed

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }
	out := os.Stdout

	if sel("t1") {
		exp.TableI().Render(out)
		fmt.Fprintln(out)
	}
	if sel("t2") {
		exp.TableII().Render(out)
		fmt.Fprintln(out)
	}
	if sel("f1") {
		exp.RunUntunedMatchers(cfg).RenderFigure1(out)
		fmt.Fprintln(out)
	}
	if sel("x1") {
		exp.RunUntunedMatchersDNA(cfg).RenderFigureX1(out)
		fmt.Fprintln(out)
	}
	if sel("x2") {
		exp.RunPatternSweep(cfg, nil).RenderFigureX2(out)
		fmt.Fprintln(out)
	}
	if sel("x4") {
		exp.RunContextualSweep(cfg).RenderFigureX4(out)
		fmt.Fprintln(out)
	}
	if sel("x5") {
		exp.RunStructureChoice(cfg).RenderFigureX5(out)
		fmt.Fprintln(out)
	}
	if sel("f2") || sel("f3") || sel("f4") {
		res := exp.RunTunedMatchers(cfg)
		if sel("f2") {
			res.RenderFigure2(out)
			fmt.Fprintln(out)
		}
		if sel("f3") {
			res.RenderFigure3(out)
			fmt.Fprintln(out)
		}
		if sel("f4") {
			res.RenderFigure4(out)
		}
	}
	if sel("f5") {
		exp.RunKDTreeTimelines(cfg).RenderFigure5(out)
		fmt.Fprintln(out)
	}
	if sel("f6") || sel("f7") || sel("f8") {
		res := exp.RunTunedRaytracing(cfg)
		if sel("f6") {
			res.RenderFigure6(out)
			fmt.Fprintln(out)
		}
		if sel("f7") {
			res.RenderFigure7(out)
			fmt.Fprintln(out)
		}
		if sel("f8") {
			res.RenderFigure8(out)
		}
	}

	// Ablations: deterministic synthetic-model studies.
	aReps, aIters := 10, 400
	if *paper {
		aReps = 100
	}
	if sel("a1") {
		exp.AblationWindowSize(out, aReps, aIters, cfg.Seed)
		fmt.Fprintln(out)
	}
	if sel("a2") {
		exp.AblationEpsilonSweep(out, aReps, aIters, cfg.Seed)
		fmt.Fprintln(out)
	}
	if sel("a3") {
		exp.AblationCrossover(out, aReps, aIters, cfg.Seed)
		fmt.Fprintln(out)
	}
	if sel("a4") {
		exp.AblationPhase1Strategies(out, aReps, aIters, cfg.Seed)
		fmt.Fprintln(out)
	}
	if sel("a5") {
		exp.AblationSoftmax(out, aReps, aIters, cfg.Seed)
		fmt.Fprintln(out)
	}
	if sel("a6") {
		exp.AblationCombined(out, aReps, aIters, cfg.Seed)
		fmt.Fprintln(out)
	}
	if sel("a7") {
		exp.AblationDrift(out, aReps, aIters, cfg.Seed)
		fmt.Fprintln(out)
	}
	if sel("a8") {
		exp.AblationNoise(out, aReps, aIters, cfg.Seed)
		fmt.Fprintln(out)
	}
	if sel("x3") {
		exp.AblationMixedNominal(out, aReps, aIters, cfg.Seed)
		fmt.Fprintln(out)
	}
	if sel("a9") {
		exp.AblationRegret(out, aReps, aIters, cfg.Seed)
		fmt.Fprintln(out)
	}
	if sel("a10") {
		exp.RunFaultInjection(cfg, exp.DefaultFaultRates(), 0).RenderFigureA10(out)
		fmt.Fprintln(out)
	}
	if sel("a11") {
		res, err := exp.RunCheckpointCrash(cfg, 0, 0, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "a11:", err)
			os.Exit(1)
		}
		res.RenderFigureA11(out)
		fmt.Fprintln(out)
	}
	if sel("a12") {
		exp.RunConcurrentTuning(cfg, 0).RenderFigureA12(out)
		fmt.Fprintln(out)
	}
	if sel("a13") {
		exp.RunShardedTuning(cfg, 0, 0).RenderFigureA13(out)
		fmt.Fprintln(out)
	}
	if sel("a14") {
		exp.RunChaosSoak(cfg, 0).RenderFigureA14(out)
		fmt.Fprintln(out)
	}
	if sel("a15") {
		exp.RunDriftResilience(cfg, 0).RenderFigureA15(out)
		fmt.Fprintln(out)
	}
	if sel("a16") {
		exp.RunContextualTuning(cfg, 0).RenderFigureA16(out)
		fmt.Fprintln(out)
	}
}
