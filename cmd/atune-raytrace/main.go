// Command atune-raytrace runs the paper's second case study — combined
// online autotuning of the kD-tree construction algorithm choice and each
// algorithm's own parameters inside a raytracer's render loop — and prints
// the requested figures (5–8).
//
// Usage:
//
//	atune-raytrace [-fig 0|5|6|7|8] [-reps N] [-frames N] [-detail D]
//	               [-width W] [-height H] [-seed S] [-paper] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/kdtree"
	"repro/internal/ray"
	"repro/internal/scenegen"
)

func main() {
	var (
		fig    = flag.Int("fig", 0, "figure to print (5-8), 0 for all")
		reps   = flag.Int("reps", 0, "experiment repetitions")
		frames = flag.Int("frames", 0, "rendered frames per repetition (tuning iterations)")
		detail = flag.Int("detail", 0, "procedural scene detail level")
		scene  = flag.String("scene", "cathedral", "procedural scene: cathedral, sphereflake, boxgrid")
		width  = flag.Int("width", 0, "render width")
		height = flag.Int("height", 0, "render height")
		seed   = flag.Int64("seed", 1, "master seed")
		paper  = flag.Bool("paper", false, "use the paper-scale configuration")
		csv    = flag.Bool("csv", false, "emit curves as CSV instead of ASCII")
		obj    = flag.String("obj", "", "render a Wavefront OBJ scene instead of the procedural cathedral (e.g. the original Sibenik mesh)")
	)
	flag.Parse()

	cfg := exp.QuickConfig()
	if *paper {
		cfg = exp.PaperConfig()
	}
	if *reps > 0 {
		cfg.Reps = *reps
	}
	if *frames > 0 {
		cfg.Frames = *frames
	}
	if *detail > 0 {
		cfg.SceneDetail = *detail
	}
	if *width > 0 {
		cfg.FrameW = *width
	}
	if *height > 0 {
		cfg.FrameH = *height
	}
	cfg.Seed = *seed
	cfg.SceneName = *scene

	out := os.Stdout
	want := func(f int) bool { return *fig == 0 || *fig == f }

	if *obj != "" {
		f, err := os.Open(*obj)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atune-raytrace:", err)
			os.Exit(1)
		}
		scene, err := scenegen.SceneFromOBJ(*obj, f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "atune-raytrace:", err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "scene: %s (%d triangles from OBJ)\n", scene.Name, len(scene.Triangles))
		// The experiment drivers use the procedural scene; an OBJ run
		// demonstrates the loader end to end by rendering one tuned frame
		// per builder.
		pl := &ray.Pipeline{
			Tris:    scene.Triangles,
			Cam:     ray.Camera{Eye: scene.Eye, LookAt: scene.LookAt, FOV: 65},
			Light:   scene.Light,
			Width:   cfg.FrameW,
			Height:  cfg.FrameH,
			Workers: cfg.RenderWorkers,
		}
		for _, b := range kdtree.AllBuilders() {
			_, timing := pl.RenderFrame(b, kdtree.DefaultParams())
			fmt.Fprintf(out, "  %-12s build %8.2fms render %8.2fms\n",
				b.Name(), float64(timing.Build.Microseconds())/1000, float64(timing.Render.Microseconds())/1000)
		}
		return
	}

	fmt.Fprintf(out, "Case study 2: raytracing (reps=%d frames=%d detail=%d res=%dx%d)\n\n",
		cfg.Reps, cfg.Frames, cfg.SceneDetail, cfg.FrameW, cfg.FrameH)

	if want(5) {
		res := exp.RunKDTreeTimelines(cfg)
		if *csv {
			res.Chart().WriteCSV(out)
		} else {
			res.RenderFigure5(out)
		}
		fmt.Fprintln(out)
	}
	if want(6) || want(7) || want(8) {
		res := exp.RunTunedRaytracing(cfg)
		if want(6) {
			res.RenderFigure6(out)
			fmt.Fprintln(out)
		}
		if want(7) {
			res.RenderFigure7(out)
			fmt.Fprintln(out)
		}
		if want(8) {
			res.RenderFigure8(out)
		}
	}
}
