// Command atune-serve runs the distributed tuning service: the
// sequential tuner wrapped in the lease-based trial engine, exposed
// over TCP to remote atune-worker processes. All tuning decisions stay
// here; workers only measure.
//
// Usage:
//
//	atune-serve [-addr host:port] [-workload strmatch|sleep] [-seed S]
//	            [-epsilon PCT] [-target N] [-checkpoint dir] [-every N]
//	            [-lease-timeout D] [-max-inflight N] [-shards N] [-stats D]
//	            [-session-cap N] [-global-cap N] [-drain D] [-chaos spec]
//	            [-drift] [-ref-algo N]
//
// The workload flag selects the algorithm roster the service tunes
// over; workers must be started with the same workload so their
// config hash matches the server's (a mismatched worker is rejected at
// the handshake). "strmatch" is the paper's eight parallel string
// matching algorithms; "sleep" is a small synthetic roster for smoke
// tests and benchmarks.
//
// With -checkpoint the session is durable: state is snapshotted every
// -every trials and journaled in between. Restarting atune-serve with
// the same -checkpoint directory resumes the session where it left
// off — workers reconnect on their own and keep going; reports for
// leases issued by the previous incarnation are acknowledged and
// dropped (see DESIGN.md, "distributed tuning").
//
// The server stops leasing once -target trials have been decided
// (0 = run forever). SIGTERM drains gracefully: leasing stops, workers
// get a Draining busy response, in-flight trials are waited out up to
// -drain, and a final checkpoint is written before the listener closes.
// SIGINT closes abruptly (outstanding leases die with the epoch).
// -session-cap and -global-cap bound lease hoarding per worker session
// and server-wide; over-cap requests get an empty busy response whose
// RetryMS hint grows with load. -chaos routes every connection through
// the fault-injection layer (see internal/chaos.ParseSpec) for soak
// testing the service against its own failure semantics.
//
// -drift arms the drift watchdog: per-algorithm change-point detectors
// watch the cost streams and, on a detected input change, soften the
// selector's record and schedule fresh probes so the incumbent is
// re-elected on post-change evidence (see DESIGN.md, "drift"). -ref-algo
// names the roster slot workers measure as their calibration reference
// (workers opt in with -calibrate); reported costs are divided by each
// worker's speed factor relative to the fleet's fastest member.
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/strmatch"
	"repro/internal/tuned"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("atune-serve: ")
	var (
		addr     = flag.String("addr", "127.0.0.1:7714", "listen address")
		workload = flag.String("workload", "strmatch", "algorithm roster: strmatch or sleep")
		seed     = flag.Int64("seed", 1, "tuner seed")
		epsilon  = flag.Float64("epsilon", 10, "epsilon-greedy exploration rate in percent")
		target   = flag.Int("target", 0, "stop leasing after this many trials (0 = run forever)")
		ckptDir  = flag.String("checkpoint", "", "directory for crash-safe snapshots + journal (empty = off)")
		every    = flag.Int("every", 100, "snapshot interval in trials (with -checkpoint)")
		leaseTTL = flag.Duration("lease-timeout", 30*time.Second, "lease TTL; a worker silent this long forfeits its trials")
		maxInFl  = flag.Int("max-inflight", 64, "maximum concurrently leased trials")
		shards   = flag.Int("shards", 1, "selector shards; each worker session is pinned to one (1 = unsharded)")
		statsIvl = flag.Duration("stats", 5*time.Second, "progress log interval (0 = quiet)")
		sessCap  = flag.Int("session-cap", 0, "max leases one worker session may hold (0 = unbounded)")
		globCap  = flag.Int("global-cap", 0, "max in-flight leases across all sessions (0 = unbounded)")
		drainTO  = flag.Duration("drain", 10*time.Second, "graceful drain deadline on SIGTERM")
		chaosFlg = flag.String("chaos", "", "fault-injection spec, e.g. latency=2ms,reset=0.01,blackhole=10s/1s (empty = off)")
		driftFlg = flag.Bool("drift", false, "arm the drift watchdog (change-point detection + adaptive selector reset)")
		refAlgo  = flag.Int("ref-algo", 0, "roster slot workers measure as their calibration reference")
	)
	flag.Parse()

	algos := roster(*workload)
	// Reject malformed flag values up front — a typo like -epsilon 1000
	// or -shards 0 should die at startup, not skew a week-long session.
	if *epsilon <= 0 || *epsilon > 100 {
		log.Fatalf("-epsilon %g out of range (0, 100]", *epsilon)
	}
	if *target < 0 {
		log.Fatalf("-target %d must be >= 0", *target)
	}
	if *every <= 0 {
		log.Fatalf("-every %d must be > 0", *every)
	}
	if *leaseTTL <= 0 {
		log.Fatalf("-lease-timeout %v must be > 0", *leaseTTL)
	}
	if *maxInFl <= 0 {
		log.Fatalf("-max-inflight %d must be > 0", *maxInFl)
	}
	if *shards <= 0 {
		log.Fatalf("-shards %d must be > 0", *shards)
	}
	if *sessCap < 0 || *globCap < 0 {
		log.Fatalf("-session-cap %d and -global-cap %d must be >= 0", *sessCap, *globCap)
	}
	if *drainTO <= 0 {
		log.Fatalf("-drain %v must be > 0", *drainTO)
	}
	if *refAlgo < 0 || *refAlgo >= len(algos) {
		log.Fatalf("-ref-algo %d out of range [0, %d) for workload %s", *refAlgo, len(algos), *workload)
	}
	selector := nominal.NewEpsilonGreedy(*epsilon / 100)
	opts := []core.Option{
		core.WithLeaseTimeout(*leaseTTL),
		core.WithMaxInFlight(*maxInFl),
		core.WithShards(*shards),
	}
	if *driftFlg {
		opts = append(opts, core.WithDriftWatchdog(core.DefaultDriftConfig()))
	}

	var (
		eng *core.ShardedEngine
		err error
	)
	if *ckptDir != "" && len(checkpoint.Generations(*ckptDir)) > 0 {
		// A previous incarnation left a session behind: resume it. The
		// new process gets a fresh epoch, so stale reports from leases
		// the old process issued are dropped, not misapplied.
		eng, err = core.ResumeSharded(*ckptDir, *every, algos, selector, nil, *seed, opts...)
		if err != nil {
			log.Fatalf("resume from %s: %v", *ckptDir, err)
		}
		log.Printf("resumed session from %s at trial %d", *ckptDir, eng.Iterations())
	} else {
		if *ckptDir != "" {
			opts = append(opts, core.WithCheckpoint(*ckptDir, *every))
		}
		eng, err = core.NewShardedEngine(algos, selector, nil, *seed, opts...)
		if err != nil {
			log.Fatalf("engine: %v", err)
		}
	}

	srv := tuned.NewServer(eng, tuned.WithTrialTarget(*target),
		tuned.WithSessionCap(*sessCap), tuned.WithGlobalCap(*globCap),
		tuned.WithRefAlgo(*refAlgo))
	log.Printf("workload %s (%d algorithms, hash %08x), listening on %s",
		*workload, len(algos), srv.Hash(), *addr)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		if s == syscall.SIGTERM {
			// Graceful: stop leasing, wait out in-flight trials, write a
			// final checkpoint, then close.
			log.Printf("draining (deadline %v)", *drainTO)
			if err := srv.Drain(*drainTO); err != nil {
				log.Printf("drain: %v", err)
			}
			return
		}
		log.Printf("shutting down")
		srv.Close()
	}()

	if *statsIvl > 0 {
		go func() {
			t := time.NewTicker(*statsIvl)
			defer t.Stop()
			for range t.C {
				eng.ReclaimExpired()
				st := eng.Stats()
				algo, _, val := eng.Best()
				name := "(none)"
				if algo >= 0 {
					name = algos[algo].Name
				}
				log.Printf("trials=%d inflight=%d completed=%d failed=%d expired=%d best=%s (%.4g)",
					eng.Iterations(), st.InFlight, st.Completed, st.Failed, st.Expired, name, val)
				if ds := eng.DriftStats(); ds.Events > 0 || ds.PendingProbes > 0 {
					log.Printf("drift: events=%d decays=%d reforks=%d probes=%d pending=%d stale=%d outliers=%d",
						ds.Events, ds.Decays, ds.Reforks, ds.ProbesScheduled, ds.PendingProbes,
						ds.StaleDropped, ds.Outliers)
				}
			}
		}()
	}

	var ln net.Listener
	if *chaosFlg != "" {
		ccfg, err := chaos.ParseSpec(*chaosFlg)
		if err != nil {
			log.Fatalf("chaos: %v", err)
		}
		if ln, _, err = chaos.Listen("tcp", *addr, ccfg); err != nil {
			log.Fatalf("listen %s: %v", *addr, err)
		}
		log.Printf("fault injection active: %s", *chaosFlg)
	} else {
		var err error
		if ln, err = net.Listen("tcp", *addr); err != nil {
			log.Fatalf("listen %s: %v", *addr, err)
		}
	}
	if err := srv.Serve(ln); err != nil {
		log.Fatalf("serve: %v", err)
	}

	// Closed (signal or caller): report the session's verdict.
	if ds := eng.DriftStats(); *driftFlg || ds.Events > 0 {
		log.Printf("drift summary: events=%d decays=%d reforks=%d probes=%d stale=%d outliers=%d reprobes=%d",
			ds.Events, ds.Decays, ds.Reforks, ds.ProbesScheduled, ds.StaleDropped,
			ds.Outliers, ds.QuarantineReprobes)
	}
	algo, cfg, val := eng.Best()
	if algo < 0 {
		log.Printf("no trials completed")
		return
	}
	counts := eng.Counts()
	type pick struct {
		name string
		n    int
	}
	picks := make([]pick, len(algos))
	for i, a := range algos {
		picks[i] = pick{a.Name, counts[i]}
	}
	sort.Slice(picks, func(i, j int) bool { return picks[i].n > picks[j].n })
	log.Printf("best after %d trials: %s cfg=%v value=%.4g", eng.Iterations(), algos[algo].Name, cfg, val)
	for _, p := range picks {
		log.Printf("  %-20s %6d trials", p.name, p.n)
	}
}

// roster builds the algorithm set for a named workload. atune-worker
// builds its measurement table from the same names, delivered in the
// handshake, so the two sides only have to agree on this flag.
func roster(workload string) []core.Algorithm {
	switch workload {
	case "strmatch":
		names := strmatch.Names()
		algos := make([]core.Algorithm, len(names))
		for i, n := range names {
			algos[i] = core.Algorithm{Name: n}
		}
		return algos
	case "sleep":
		return []core.Algorithm{
			{Name: "sleep-steady"},
			{Name: "sleep-tuned", Space: param.NewSpace(param.NewRatio("alpha", 1, 10))},
			{Name: "sleep-laggard"},
		}
	default:
		log.Fatalf("unknown workload %q (want strmatch or sleep)", workload)
		return nil
	}
}
