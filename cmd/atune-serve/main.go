// Command atune-serve runs the distributed tuning service: the
// sequential tuner wrapped in the lease-based trial engine, exposed
// over TCP to remote atune-worker processes. All tuning decisions stay
// here; workers only measure.
//
// Usage:
//
//	atune-serve [-addr host:port] [-workload strmatch|sleep] [-seed S]
//	            [-epsilon PCT] [-target N] [-checkpoint dir] [-every N]
//	            [-lease-timeout D] [-max-inflight N] [-shards N] [-stats D]
//	            [-session-cap N] [-global-cap N] [-drain D] [-chaos spec]
//	            [-drift] [-ref-algo N]
//	            [-contextual] [-buckets N] [-split-min N]
//	            [-tenants spec] [-max-resident N]
//
// The workload flag selects the algorithm roster the service tunes
// over; workers must be started with the same workload so their
// config hash matches the server's (a mismatched worker is rejected at
// the handshake). "strmatch" is the paper's eight parallel string
// matching algorithms; "sleep" is a small synthetic roster for smoke
// tests and benchmarks.
//
// With -checkpoint the session is durable: state is snapshotted every
// -every trials and journaled in between. Restarting atune-serve with
// the same -checkpoint directory resumes the session where it left
// off — workers reconnect on their own and keep going; reports for
// leases issued by the previous incarnation are acknowledged and
// dropped (see DESIGN.md, "distributed tuning").
//
// The server stops leasing once -target trials have been decided
// (0 = run forever). SIGTERM drains gracefully: leasing stops, workers
// get a Draining busy response, in-flight trials are waited out up to
// -drain, and a final checkpoint is written before the listener closes.
// SIGINT closes abruptly (outstanding leases die with the epoch).
// -session-cap and -global-cap bound lease hoarding per worker session
// and server-wide; over-cap requests get an empty busy response whose
// RetryMS hint grows with load. -chaos routes every connection through
// the fault-injection layer (see internal/chaos.ParseSpec) for soak
// testing the service against its own failure semantics.
//
// -drift arms the drift watchdog: per-algorithm change-point detectors
// watch the cost streams and, on a detected input change, soften the
// selector's record and schedule fresh probes so the incumbent is
// re-elected on post-change evidence (see DESIGN.md, "drift"). -ref-algo
// names the roster slot workers measure as their calibration reference
// (workers opt in with -calibrate); reported costs are divided by each
// worker's speed factor relative to the fleet's fastest member.
//
// -contextual serves a contextual engine instead of the flat one:
// leases carrying a feature vector (atune-worker -features) are routed
// to a per-context selector replica, contexts are discovered online by
// hashing quantized features into -buckets and splitting a bucket when
// its cost distribution turns bimodal across a feature threshold after
// -split-min samples (see DESIGN.md, "contextual routing"). Feature-less
// workers — v1 binaries included — keep tuning the global context
// unchanged. Under -checkpoint the partitioner's split journal and every
// context's selector ride along, so a restart rediscovers all contexts.
// -contextual is exclusive with -tenants and -shards > 1.
//
// -tenants switches the process into multi-tenant mode: one server,
// many independent tuning problems, each with its own engine, epoch,
// and (under -checkpoint) its own journal directory. The spec is either
// a comma-separated flag list
//
//	name=workload[/selector[/shards]]
//
// (e.g. -tenants 'teamA=strmatch,teamB=sleep/egreedy:5/4'), or
// @file.json holding a JSON array of tenant specs. Workers pick their
// tenant with atune-worker -tenant; workers that predate tenancy land
// on the "default" tenant, which is always registered from the base
// flags unless the spec names one explicitly. -max-resident bounds how
// many tenant engines stay live at once (requires -checkpoint): the
// least-recently-used idle tenant is checkpointed and released, and
// warm-restarts on its next lease.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/ctxtune"
	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/strmatch"
	"repro/internal/tenant"
	"repro/internal/tuned"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("atune-serve: ")
	var (
		addr     = flag.String("addr", "127.0.0.1:7714", "listen address")
		workload = flag.String("workload", "strmatch", "algorithm roster: strmatch or sleep")
		seed     = flag.Int64("seed", 1, "tuner seed")
		epsilon  = flag.Float64("epsilon", 10, "epsilon-greedy exploration rate in percent")
		target   = flag.Int("target", 0, "stop leasing after this many trials (0 = run forever)")
		ckptDir  = flag.String("checkpoint", "", "directory for crash-safe snapshots + journal (empty = off)")
		every    = flag.Int("every", 100, "snapshot interval in trials (with -checkpoint)")
		leaseTTL = flag.Duration("lease-timeout", 30*time.Second, "lease TTL; a worker silent this long forfeits its trials")
		maxInFl  = flag.Int("max-inflight", 64, "maximum concurrently leased trials")
		shards   = flag.Int("shards", 1, "selector shards; each worker session is pinned to one (1 = unsharded)")
		statsIvl = flag.Duration("stats", 5*time.Second, "progress log interval (0 = quiet)")
		sessCap  = flag.Int("session-cap", 0, "max leases one worker session may hold (0 = unbounded)")
		globCap  = flag.Int("global-cap", 0, "max in-flight leases across all sessions (0 = unbounded)")
		drainTO  = flag.Duration("drain", 10*time.Second, "graceful drain deadline on SIGTERM")
		chaosFlg = flag.String("chaos", "", "fault-injection spec, e.g. latency=2ms,reset=0.01,blackhole=10s/1s (empty = off)")
		driftFlg = flag.Bool("drift", false, "arm the drift watchdog (change-point detection + adaptive selector reset)")
		refAlgo  = flag.Int("ref-algo", 0, "roster slot workers measure as their calibration reference")
		tenFlg   = flag.String("tenants", "", "multi-tenant mode: name=workload[/selector[/shards]],... or @specs.json (empty = single-tenant)")
		maxRes   = flag.Int("max-resident", 0, "max live tenant engines, LRU spills the rest to checkpoint (0 = unbounded; needs -checkpoint)")
		ctxFlg   = flag.Bool("contextual", false, "route feature-bearing leases to per-context selector replicas")
		buckets  = flag.Int("buckets", ctxtune.DefaultBuckets, "initial feature-hash buckets (with -contextual)")
		splitMin = flag.Int("split-min", ctxtune.DefaultMinSamples, "samples a context needs before it may split (with -contextual)")
	)
	flag.Parse()

	algos := roster(*workload)
	// Reject malformed flag values up front — a typo like -epsilon 1000
	// or -shards 0 should die at startup, not skew a week-long session.
	if *epsilon <= 0 || *epsilon > 100 {
		log.Fatalf("-epsilon %g out of range (0, 100]", *epsilon)
	}
	if *target < 0 {
		log.Fatalf("-target %d must be >= 0", *target)
	}
	if *every <= 0 {
		log.Fatalf("-every %d must be > 0", *every)
	}
	if *leaseTTL <= 0 {
		log.Fatalf("-lease-timeout %v must be > 0", *leaseTTL)
	}
	if *maxInFl <= 0 {
		log.Fatalf("-max-inflight %d must be > 0", *maxInFl)
	}
	if *shards <= 0 {
		log.Fatalf("-shards %d must be > 0", *shards)
	}
	if *sessCap < 0 || *globCap < 0 {
		log.Fatalf("-session-cap %d and -global-cap %d must be >= 0", *sessCap, *globCap)
	}
	if *drainTO <= 0 {
		log.Fatalf("-drain %v must be > 0", *drainTO)
	}
	if *refAlgo < 0 || *refAlgo >= len(algos) {
		log.Fatalf("-ref-algo %d out of range [0, %d) for workload %s", *refAlgo, len(algos), *workload)
	}
	if *maxRes < 0 {
		log.Fatalf("-max-resident %d must be >= 0", *maxRes)
	}
	if *maxRes > 0 && *tenFlg == "" {
		log.Fatal("-max-resident only applies with -tenants")
	}
	if *maxRes > 0 && *ckptDir == "" {
		log.Fatal("-max-resident needs -checkpoint: spilling a tenant without a checkpoint root would lose its state")
	}
	if *buckets <= 0 {
		log.Fatalf("-buckets %d must be > 0", *buckets)
	}
	if *splitMin <= 0 {
		log.Fatalf("-split-min %d must be > 0", *splitMin)
	}
	if *ctxFlg && *tenFlg != "" {
		log.Fatal("-contextual is exclusive with -tenants: contexts partition one tuning problem, tenants are separate problems")
	}
	if *ctxFlg && *shards > 1 {
		log.Fatalf("-contextual is exclusive with -shards %d: each context already has its own selector replica", *shards)
	}
	if !*ctxFlg && (*buckets != ctxtune.DefaultBuckets || *splitMin != ctxtune.DefaultMinSamples) {
		log.Fatal("-buckets and -split-min only apply with -contextual")
	}

	if *tenFlg != "" {
		runTenants(tenantMode{
			addr: *addr, spec: *tenFlg, workload: *workload, ckptDir: *ckptDir,
			chaosSpec: *chaosFlg, selector: fmt.Sprintf("egreedy:%g", *epsilon),
			seed: *seed, target: *target, every: *every, maxInFl: *maxInFl,
			shards: *shards, sessCap: *sessCap, globCap: *globCap, refAlgo: *refAlgo,
			maxResident: *maxRes, leaseTTL: *leaseTTL, statsIvl: *statsIvl,
			drainTO: *drainTO, drift: *driftFlg,
		})
		return
	}

	var (
		eng  tuned.Engine
		ceng *ctxtune.Engine
	)
	if *ctxFlg {
		copts := []core.Option{
			core.WithLeaseTimeout(*leaseTTL),
			core.WithMaxInFlight(*maxInFl),
		}
		if *driftFlg {
			copts = append(copts, core.WithDriftWatchdog(core.DefaultDriftConfig()))
		}
		var err error
		ceng, err = ctxtune.New(ctxtune.Config{
			Algos: algos,
			// Windowed ε-greedy: a cold context is warm-started from the
			// global fold, and when the context disagrees with it the
			// imported evidence must be able to age out of the window.
			Selector: func() nominal.Selector {
				return &nominal.EpsilonGreedy{Eps: *epsilon / 100, RecencyWindow: 25}
			},
			Seed:        *seed,
			Partitioner: ctxtune.NewTree(*buckets, *splitMin, 0),
			Dir:         *ckptDir,
			Every:       *every,
			Opts:        copts,
		})
		if err != nil {
			log.Fatalf("contextual engine: %v", err)
		}
		defer ceng.Close()
		if n := ceng.ContextCount(); n > 0 {
			log.Printf("resumed %d context(s) from %s at trial %d", n, *ckptDir, ceng.Iterations())
		}
		eng = ceng
	} else {
		selector := nominal.NewEpsilonGreedy(*epsilon / 100)
		opts := []core.Option{
			core.WithLeaseTimeout(*leaseTTL),
			core.WithMaxInFlight(*maxInFl),
			core.WithShards(*shards),
		}
		if *driftFlg {
			opts = append(opts, core.WithDriftWatchdog(core.DefaultDriftConfig()))
		}
		var (
			seng *core.ShardedEngine
			err  error
		)
		if *ckptDir != "" && len(checkpoint.Generations(*ckptDir)) > 0 {
			// A previous incarnation left a session behind: resume it. The
			// new process gets a fresh epoch, so stale reports from leases
			// the old process issued are dropped, not misapplied.
			seng, err = core.ResumeSharded(*ckptDir, *every, algos, selector, nil, *seed, opts...)
			if err != nil {
				log.Fatalf("resume from %s: %v", *ckptDir, err)
			}
			log.Printf("resumed session from %s at trial %d", *ckptDir, seng.Iterations())
		} else {
			if *ckptDir != "" {
				opts = append(opts, core.WithCheckpoint(*ckptDir, *every))
			}
			seng, err = core.NewShardedEngine(algos, selector, nil, *seed, opts...)
			if err != nil {
				log.Fatalf("engine: %v", err)
			}
		}
		eng = seng
	}

	srv := tuned.NewServer(eng, tuned.WithTrialTarget(*target),
		tuned.WithSessionCap(*sessCap), tuned.WithGlobalCap(*globCap),
		tuned.WithRefAlgo(*refAlgo))
	log.Printf("workload %s (%d algorithms, hash %08x), listening on %s",
		*workload, len(algos), srv.Hash(), *addr)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		if s == syscall.SIGTERM {
			// Graceful: stop leasing, wait out in-flight trials, write a
			// final checkpoint, then close.
			log.Printf("draining (deadline %v)", *drainTO)
			if err := srv.Drain(*drainTO); err != nil {
				log.Printf("drain: %v", err)
			}
			return
		}
		log.Printf("shutting down")
		srv.Close()
	}()

	if *statsIvl > 0 {
		go func() {
			t := time.NewTicker(*statsIvl)
			defer t.Stop()
			for range t.C {
				eng.ReclaimExpired()
				st := eng.Stats()
				algo, _, val := eng.Best()
				name := "(none)"
				if algo >= 0 {
					name = algos[algo].Name
				}
				log.Printf("trials=%d inflight=%d completed=%d failed=%d expired=%d best=%s (%.4g)",
					eng.Iterations(), st.InFlight, st.Completed, st.Failed, st.Expired, name, val)
				if n := srv.Rebalanced(); n > 0 {
					log.Printf("rebalanced: %d lease grant(s) clamped to fair share", n)
				}
				if ceng != nil {
					log.Printf("contexts: %d live replica(s)", ceng.ContextCount())
				}
				if ds := eng.DriftStats(); ds.Events > 0 || ds.PendingProbes > 0 {
					log.Printf("drift: events=%d decays=%d reforks=%d probes=%d pending=%d stale=%d outliers=%d",
						ds.Events, ds.Decays, ds.Reforks, ds.ProbesScheduled, ds.PendingProbes,
						ds.StaleDropped, ds.Outliers)
				}
			}
		}()
	}

	if err := srv.Serve(listen(*addr, *chaosFlg)); err != nil {
		log.Fatalf("serve: %v", err)
	}

	// Closed (signal or caller): report the session's verdict.
	if ds := eng.DriftStats(); *driftFlg || ds.Events > 0 {
		log.Printf("drift summary: events=%d decays=%d reforks=%d probes=%d stale=%d outliers=%d reprobes=%d",
			ds.Events, ds.Decays, ds.Reforks, ds.ProbesScheduled, ds.StaleDropped,
			ds.Outliers, ds.QuarantineReprobes)
	}
	algo, cfg, val := eng.Best()
	if algo < 0 {
		log.Printf("no trials completed")
		return
	}
	counts := eng.Counts()
	type pick struct {
		name string
		n    int
	}
	picks := make([]pick, len(algos))
	for i, a := range algos {
		picks[i] = pick{a.Name, counts[i]}
	}
	sort.Slice(picks, func(i, j int) bool { return picks[i].n > picks[j].n })
	log.Printf("best after %d trials: %s cfg=%v value=%.4g", eng.Iterations(), algos[algo].Name, cfg, val)
	for _, p := range picks {
		log.Printf("  %-20s %6d trials", p.name, p.n)
	}
}

// listen opens the service listener, optionally behind the chaos
// fault-injection layer.
func listen(addr, chaosSpec string) net.Listener {
	if chaosSpec != "" {
		ccfg, err := chaos.ParseSpec(chaosSpec)
		if err != nil {
			log.Fatalf("chaos: %v", err)
		}
		ln, _, err := chaos.Listen("tcp", addr, ccfg)
		if err != nil {
			log.Fatalf("listen %s: %v", addr, err)
		}
		log.Printf("fault injection active: %s", chaosSpec)
		return ln
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("listen %s: %v", addr, err)
	}
	return ln
}

// tenantMode carries the resolved flag values into multi-tenant serving.
type tenantMode struct {
	addr, spec, workload, ckptDir, chaosSpec, selector string

	seed                                             int64
	target, every, maxInFl, shards, sessCap, globCap int
	refAlgo, maxResident                             int
	leaseTTL, statsIvl, drainTO                      time.Duration
	drift                                            bool
}

// runTenants is the -tenants serving path: a tenant registry instead of
// one engine, every tenant persisted under its own subdirectory of
// -checkpoint, and per-tenant lines in the stats log and the shutdown
// summary.
func runTenants(cfg tenantMode) {
	base := core.EngineSpec{
		Seed: cfg.seed, Shards: cfg.shards, LeaseTimeoutMS: cfg.leaseTTL.Milliseconds(),
		MaxInFlight: cfg.maxInFl, Drift: cfg.drift, SnapshotEvery: cfg.every,
	}
	specs := parseTenantSpecs(cfg.spec, cfg.selector, base)
	hasDefault := false
	for _, s := range specs {
		if s.Name == tenant.DefaultName {
			hasDefault = true
		}
	}
	if !hasDefault {
		// Workers that predate tenancy send no tenant name; they must
		// always find a "default" tenant, built from the base flags.
		specs = append(specs, tenant.Spec{
			Name: tenant.DefaultName, Workload: cfg.workload, Selector: cfg.selector, Engine: base,
		})
	}

	reg, err := tenant.NewRegistry(tenant.Config{
		Root: cfg.ckptDir, MaxResident: cfg.maxResident, Roster: tenant.BuiltinRoster,
	})
	if err != nil {
		log.Fatalf("registry: %v", err)
	}
	if resumed := reg.Names(); len(resumed) > 0 {
		log.Printf("rediscovered %d tenant(s) from %s: %v", len(resumed), cfg.ckptDir, resumed)
	}
	for _, s := range specs {
		// Re-registering a rediscovered tenant with an identical spec is
		// a no-op; a changed spec is a configuration error and dies here.
		if err := reg.Register(s); err != nil {
			log.Fatalf("tenant %s: %v", s.Name, err)
		}
	}

	srv := tuned.NewTenantServer(reg, tuned.WithTrialTarget(cfg.target),
		tuned.WithSessionCap(cfg.sessCap), tuned.WithGlobalCap(cfg.globCap),
		tuned.WithRefAlgo(cfg.refAlgo))
	log.Printf("%d tenants %v, listening on %s", len(reg.Names()), reg.Names(), cfg.addr)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		if s == syscall.SIGTERM {
			log.Printf("draining (deadline %v)", cfg.drainTO)
			if err := srv.Drain(cfg.drainTO); err != nil {
				log.Printf("drain: %v", err)
			}
			return
		}
		log.Printf("shutting down")
		srv.Close()
	}()

	if cfg.statsIvl > 0 {
		go func() {
			t := time.NewTicker(cfg.statsIvl)
			defer t.Stop()
			for range t.C {
				reg.ReclaimExpired()
				logTenantRows(reg)
			}
		}()
	}

	if err := srv.Serve(listen(cfg.addr, cfg.chaosSpec)); err != nil {
		log.Fatalf("serve: %v", err)
	}

	// Closed (signal or caller): the per-tenant verdicts.
	log.Printf("final state:")
	logTenantRows(reg)
}

// logTenantRows prints one line per tenant plus an aggregate line, the
// multi-tenant analogue of the single-engine stats log.
func logTenantRows(reg *tenant.Registry) {
	var sumIter, sumInFl, resident int
	for _, in := range reg.Snapshot() {
		state := "spilled"
		if in.Resident {
			state = "resident"
			resident++
		}
		best := "(none)"
		if in.BestAlgo >= 0 {
			best = fmt.Sprintf("%s (%.4g)", in.BestName, in.BestValue)
		}
		log.Printf("tenant %-16s %s trials=%d inflight=%d best=%s spills=%d restarts=%d",
			in.Name, state, in.Iterations, in.InFlight, best, in.Spills, in.Restarts)
		sumIter += in.Iterations
		sumInFl += in.InFlight
	}
	log.Printf("aggregate: tenants=%d resident=%d trials=%d inflight=%d",
		len(reg.Names()), resident, sumIter, sumInFl)
}

// parseTenantSpecs parses the -tenants value: @file.json holding a JSON
// array of tenant specs (authoritative as written), or a comma-separated
// name=workload[/selector[/shards]] list whose entries inherit the base
// flags for everything they do not override.
func parseTenantSpecs(arg, defaultSelector string, base core.EngineSpec) []tenant.Spec {
	if strings.HasPrefix(arg, "@") {
		buf, err := os.ReadFile(strings.TrimPrefix(arg, "@"))
		if err != nil {
			log.Fatalf("-tenants: %v", err)
		}
		var specs []tenant.Spec
		if err := json.Unmarshal(buf, &specs); err != nil {
			log.Fatalf("-tenants %s: %v", arg, err)
		}
		if len(specs) == 0 {
			log.Fatalf("-tenants %s: empty spec list", arg)
		}
		return specs
	}
	var specs []tenant.Spec
	seen := map[string]bool{}
	for _, entry := range strings.Split(arg, ",") {
		name, rest, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok || name == "" || rest == "" {
			log.Fatalf("-tenants entry %q: want name=workload[/selector[/shards]]", entry)
		}
		if seen[name] {
			log.Fatalf("-tenants names %q twice", name)
		}
		seen[name] = true
		s := tenant.Spec{Name: name, Selector: defaultSelector, Engine: base}
		parts := strings.Split(rest, "/")
		if len(parts) > 3 {
			log.Fatalf("-tenants entry %q: want name=workload[/selector[/shards]]", entry)
		}
		s.Workload = parts[0]
		if len(parts) > 1 && parts[1] != "" {
			s.Selector = parts[1]
		}
		if len(parts) > 2 {
			n, err := strconv.Atoi(parts[2])
			if err != nil || n <= 0 {
				log.Fatalf("-tenants entry %q: bad shard count %q", entry, parts[2])
			}
			s.Engine.Shards = n
		}
		specs = append(specs, s)
	}
	return specs
}

// roster builds the algorithm set for a named workload. atune-worker
// builds its measurement table from the same names, delivered in the
// handshake, so the two sides only have to agree on this flag.
func roster(workload string) []core.Algorithm {
	switch workload {
	case "strmatch":
		names := strmatch.Names()
		algos := make([]core.Algorithm, len(names))
		for i, n := range names {
			algos[i] = core.Algorithm{Name: n}
		}
		return algos
	case "sleep":
		return []core.Algorithm{
			{Name: "sleep-steady"},
			{Name: "sleep-tuned", Space: param.NewSpace(param.NewRatio("alpha", 1, 10))},
			{Name: "sleep-laggard"},
		}
	default:
		log.Fatalf("unknown workload %q (want strmatch or sleep)", workload)
		return nil
	}
}
