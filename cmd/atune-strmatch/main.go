// Command atune-strmatch runs the paper's first case study — online
// autotuning of algorithmic choice over eight parallel string matching
// algorithms — and prints the requested figures (1–4).
//
// Usage:
//
//	atune-strmatch [-fig 0|1|2|3|4] [-reps N] [-iters N] [-corpus BYTES]
//	               [-workers N] [-seed S] [-paper] [-csv]
//
// -fig 0 (the default) prints all four figures. -paper switches to the
// paper-scale configuration (100 repetitions, 200 iterations, 4 MiB
// corpus); expect a long run. -csv emits the convergence curves as CSV
// instead of ASCII charts.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exp"
)

func main() {
	var (
		fig     = flag.Int("fig", 0, "figure to print (1-4), 0 for all")
		reps    = flag.Int("reps", 0, "experiment repetitions (default quick config)")
		iters   = flag.Int("iters", 0, "tuning iterations per repetition")
		corpus  = flag.Int("corpus", 0, "corpus size in bytes")
		workers = flag.Int("workers", 0, "matcher worker goroutines")
		seed    = flag.Int64("seed", 1, "master seed")
		paper   = flag.Bool("paper", false, "use the paper-scale configuration")
		csv     = flag.Bool("csv", false, "emit curves as CSV instead of ASCII")
		dna     = flag.Bool("dna", false, "also run extension X1: the genome-like corpus")
	)
	flag.Parse()

	cfg := exp.QuickConfig()
	if *paper {
		cfg = exp.PaperConfig()
	}
	if *reps > 0 {
		cfg.Reps = *reps
	}
	if *iters > 0 {
		cfg.Iters = *iters
	}
	if *corpus > 0 {
		cfg.CorpusSize = *corpus
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	cfg.Seed = *seed

	out := os.Stdout
	want := func(f int) bool { return *fig == 0 || *fig == f }

	fmt.Fprintf(out, "Case study 1: parallel string matching (reps=%d iters=%d corpus=%d workers=%d)\n\n",
		cfg.Reps, cfg.Iters, cfg.CorpusSize, cfg.Workers)

	if want(1) {
		res := exp.RunUntunedMatchers(cfg)
		res.RenderFigure1(out)
		fmt.Fprintln(out)
	}
	if *dna {
		res := exp.RunUntunedMatchersDNA(cfg)
		res.RenderFigureX1(out)
		fmt.Fprintln(out)
	}
	if want(2) || want(3) || want(4) {
		res := exp.RunTunedMatchers(cfg)
		if want(2) {
			if *csv {
				res.CurvesChart(true, 25).WriteCSV(out)
			} else {
				res.RenderFigure2(out)
			}
			fmt.Fprintln(out)
		}
		if want(3) {
			if *csv {
				res.CurvesChart(false, 50).WriteCSV(out)
			} else {
				res.RenderFigure3(out)
			}
			fmt.Fprintln(out)
		}
		if want(4) {
			res.RenderFigure4(out)
			for i, label := range res.StrategyLabels {
				fmt.Fprintf(out, "most-chosen algorithm for %-22s: %s\n", label, res.BestAlgorithm(i))
			}
		}
	}
}
