// Command atune-wisdom inspects and merges wisdom files — the persisted
// tuning results written by applications using internal/wisdom (see
// examples/matmul) — and inspects tuner checkpoint state.
//
// Usage:
//
//	atune-wisdom show <file>
//	atune-wisdom merge <out> <in>...
//	atune-wisdom inspect <checkpoint-dir | snap-*.ckpt | wal-*.log>
//
// inspect validates a checkpoint directory (every snapshot's frame and
// checksum, every journal's records) or pretty-prints a single snapshot
// or journal file.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/checkpoint"
	"repro/internal/report"
	"repro/internal/wisdom"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("atune-wisdom: ")
	if len(os.Args) < 3 {
		usage()
	}
	switch os.Args[1] {
	case "show":
		show(os.Args[2])
	case "merge":
		if len(os.Args) < 4 {
			usage()
		}
		merge(os.Args[2], os.Args[3:])
	case "inspect":
		inspect(os.Args[2])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: atune-wisdom show <file> | atune-wisdom merge <out> <in>... | atune-wisdom inspect <path>")
	os.Exit(2)
}

func show(path string) {
	s, err := wisdom.LoadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	t := report.NewTable(fmt.Sprintf("wisdom: %s (%d entries)", path, s.Len()),
		"context", "algorithm", "value", "samples")
	for _, key := range s.Keys() {
		e, _ := s.Lookup(key)
		t.Addf(key, e.Algorithm, e.Value, e.Samples)
	}
	t.Render(os.Stdout)
}

func inspect(path string) {
	info, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	if info.IsDir() {
		inspectDir(path)
		return
	}
	base := filepath.Base(path)
	switch {
	case strings.HasPrefix(base, "snap-"):
		inspectSnapshot(path)
	case strings.HasPrefix(base, "wal-"):
		inspectJournal(path)
	default:
		log.Fatalf("inspect: %s is neither a checkpoint directory, a snap-*.ckpt, nor a wal-*.log", path)
	}
}

// inspectDir validates every snapshot and journal generation in a
// checkpoint directory and summarizes them.
func inspectDir(dir string) {
	snaps := checkpoint.Generations(dir)
	wals := checkpoint.JournalGenerations(dir)
	if len(snaps) == 0 && len(wals) == 0 {
		log.Fatalf("inspect: %s contains no checkpoint state", dir)
	}
	t := report.NewTable(fmt.Sprintf("checkpoint: %s", dir),
		"file", "kind", "iteration", "status")
	for _, g := range snaps {
		p := checkpoint.SnapPath(dir, g)
		status := "ok"
		data, err := os.ReadFile(p)
		if err != nil {
			status = err.Error()
		} else if _, err := checkpoint.DecodeSnapshot(data); err != nil {
			status = err.Error()
		}
		t.Addf(filepath.Base(p), "snapshot", g, status)
	}
	for _, g := range wals {
		p := checkpoint.WalPath(dir, g)
		recs, err := checkpoint.ReadJournal(p)
		status := fmt.Sprintf("%d records", len(recs))
		if n := len(recs); n > 0 {
			status = fmt.Sprintf("%d records, iterations %d..%d", n, recs[0].Iter, recs[n-1].Iter)
		}
		if err != nil {
			status += fmt.Sprintf(" (%v)", err)
		}
		t.Addf(filepath.Base(p), "journal", g, status)
	}
	t.Render(os.Stdout)

	payload, iter, err := checkpoint.LoadLatest(dir)
	if err != nil {
		log.Fatalf("inspect: no loadable snapshot: %v", err)
	}
	fmt.Printf("\nnewest valid snapshot (iteration %d):\n", iter)
	printJSON(payload)
}

// inspectSnapshot validates one snapshot file and pretty-prints its
// payload.
func inspectSnapshot(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	payload, err := checkpoint.DecodeSnapshot(data)
	if err != nil {
		log.Fatalf("inspect: %s: %v", path, err)
	}
	fmt.Printf("%s: valid (version %d, %d payload bytes)\n", path, checkpoint.Version, len(payload))
	printJSON(payload)
}

// inspectJournal prints every valid record of one journal file.
func inspectJournal(path string) {
	recs, rerr := checkpoint.ReadJournal(path)
	fmt.Printf("%s: %d valid records\n", path, len(recs))
	if rerr != nil {
		fmt.Printf("  (read stopped early: %v)\n", rerr)
	}
	for _, r := range recs {
		line, err := json.Marshal(r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", line)
	}
}

func printJSON(payload []byte) {
	var buf bytes.Buffer
	if err := json.Indent(&buf, payload, "", "  "); err != nil {
		log.Fatal(err)
	}
	fmt.Println(buf.String())
}

func merge(out string, ins []string) {
	merged := wisdom.NewStore()
	for _, in := range ins {
		s, err := wisdom.LoadFile(in)
		if err != nil {
			log.Fatal(err)
		}
		changed := merged.Merge(s)
		fmt.Printf("merged %s: %d entries folded in\n", in, changed)
	}
	if err := merged.SaveFile(out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d entries)\n", out, merged.Len())
}
