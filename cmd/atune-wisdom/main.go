// Command atune-wisdom inspects and merges wisdom files — the persisted
// tuning results written by applications using internal/wisdom (see
// examples/matmul).
//
// Usage:
//
//	atune-wisdom show <file>
//	atune-wisdom merge <out> <in>...
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/report"
	"repro/internal/wisdom"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("atune-wisdom: ")
	if len(os.Args) < 3 {
		usage()
	}
	switch os.Args[1] {
	case "show":
		show(os.Args[2])
	case "merge":
		if len(os.Args) < 4 {
			usage()
		}
		merge(os.Args[2], os.Args[3:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: atune-wisdom show <file> | atune-wisdom merge <out> <in>...")
	os.Exit(2)
}

func show(path string) {
	s, err := wisdom.LoadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	t := report.NewTable(fmt.Sprintf("wisdom: %s (%d entries)", path, s.Len()),
		"context", "algorithm", "value", "samples")
	for _, key := range s.Keys() {
		e, _ := s.Lookup(key)
		t.Addf(key, e.Algorithm, e.Value, e.Samples)
	}
	t.Render(os.Stdout)
}

func merge(out string, ins []string) {
	merged := wisdom.NewStore()
	for _, in := range ins {
		s, err := wisdom.LoadFile(in)
		if err != nil {
			log.Fatal(err)
		}
		changed := merged.Merge(s)
		fmt.Printf("merged %s: %d entries folded in\n", in, changed)
	}
	if err := merged.SaveFile(out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d entries)\n", out, merged.Len())
}
