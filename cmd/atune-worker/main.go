// Command atune-worker is the remote measurement half of the
// distributed tuning service: it connects to an atune-serve process,
// leases trial batches, measures them locally, and reports the
// results. Run as many as the machine park allows — the server's
// lease engine keeps them consistent, and a worker that dies simply
// forfeits its outstanding leases.
//
// Usage:
//
//	atune-worker [-addr host:port] [-workload strmatch|sleep]
//	             [-batch N] [-heartbeat D] [-max-trials N]
//	             [-corpus BYTES] [-pattern STR] [-threads N]
//	             [-sleep D] [-seed S] [-fallback] [-probe D]
//	             [-idle-retry D] [-chaos spec] [-calibrate N]
//	             [-features F1,F2,...]
//
// The workload must match the server's: the handshake carries a hash
// of the algorithm roster and a mismatch is rejected before any trial
// is leased. The roster names themselves also arrive in the
// handshake, so the worker builds its measurement table from what the
// server actually runs — ordering disagreements are impossible.
//
// -batch > 1 amortizes the network round trip over several trials per
// lease (see BENCH_wire.json for the effect); -heartbeat keeps long
// measurements alive past the server's lease TTL.
//
// With -fallback (the default) the worker survives partitions: when the
// client retry budget exhausts it degrades to a local tuner over the
// handshake roster, keeps measuring, probes the server every -probe,
// and on reconnect folds the locally learned selector state back into
// the server before resuming leased operation. -chaos routes the
// connection through the fault-injection layer for soak testing.
//
// -features attaches a feature vector describing this worker's workload
// to every lease and report — e.g. the corpus alphabet size, 27 for
// English text and 4 for DNA. Against a contextual server (atune-serve
// -contextual) the vector routes this worker's trials to the selector
// replica of its workload class; plain servers ignore it. Empty (the
// default) tunes the global context.
//
// -calibrate N makes the worker measure the server's reference
// algorithm before its first lease and again every N reported trials,
// so the server can normalize this machine's costs by its speed factor
// relative to the fleet's fastest member (see atune-serve -ref-algo).
// Periodic re-calibration tracks thermal and load changes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/strmatch"
	"repro/internal/tuned"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("atune-worker: ")
	var (
		addr      = flag.String("addr", "127.0.0.1:7714", "tuning server address")
		workload  = flag.String("workload", "strmatch", "measurement workload: strmatch or sleep")
		batch     = flag.Int("batch", 8, "trials leased and reported per round trip")
		heartbeat = flag.Duration("heartbeat", 5*time.Second, "lease-extension interval while measuring (0 = off)")
		maxTrials = flag.Int("max-trials", 0, "stop after this many trials (0 = until the server is done)")
		corpusSz  = flag.Int("corpus", 1<<20, "strmatch corpus size in bytes")
		pattern   = flag.String("pattern", "the spirit to a great and high mountain", "strmatch search pattern")
		threads   = flag.Int("threads", 2, "strmatch search goroutines")
		sleepFor  = flag.Duration("sleep", time.Millisecond, "sleep workload: simulated measurement time")
		seed      = flag.Int64("seed", 1, "corpus generation seed")
		fallback  = flag.Bool("fallback", true, "degrade to local tuning when the server is unreachable; merge back on reconnect")
		probe     = flag.Duration("probe", 250*time.Millisecond, "server probe interval while degraded")
		idleRetry = flag.Duration("idle-retry", 2*time.Millisecond, "wait ceiling when an empty lease response carries no retry hint")
		chaosFlg  = flag.String("chaos", "", "fault-injection spec for this worker's connections (empty = off)")
		calEvery  = flag.Int("calibrate", 0, "re-run the reference probe every N reported trials (0 = no calibration)")
		tenantFlg = flag.String("tenant", "", "tenant to tune for on a multi-tenant server (empty = the default tenant)")
		featFlg   = flag.String("features", "", "comma-separated feature vector attached to every lease, e.g. 4 for a DNA corpus (empty = global context)")
		pipeFlg   = flag.Bool("pipeline", false, "pipeline the connection and overlap wire round trips with measurement")
	)
	flag.Parse()

	// Fail malformed flag values at startup rather than measuring with them.
	if *batch < 1 {
		log.Fatalf("-batch %d must be >= 1", *batch)
	}
	if *maxTrials < 0 {
		log.Fatalf("-max-trials %d must be >= 0", *maxTrials)
	}
	if *corpusSz <= 0 {
		log.Fatalf("-corpus %d must be > 0", *corpusSz)
	}
	if *threads < 1 {
		log.Fatalf("-threads %d must be >= 1", *threads)
	}
	if *heartbeat < 0 || *sleepFor < 0 || *idleRetry < 0 {
		log.Fatalf("-heartbeat, -sleep and -idle-retry must be >= 0")
	}
	if *probe <= 0 {
		log.Fatalf("-probe %v must be > 0", *probe)
	}
	if *calEvery < 0 {
		log.Fatalf("-calibrate %d must be >= 0", *calEvery)
	}
	feats, err := parseFeatures(*featFlg)
	if err != nil {
		log.Fatalf("-features %q: %v", *featFlg, err)
	}

	copts := []tuned.ClientOption{tuned.WithClientName(hostname())}
	if *pipeFlg {
		copts = append(copts, tuned.WithPipeline(0))
	}
	if len(feats) > 0 {
		copts = append(copts, tuned.WithFeatures(feats))
		log.Printf("feature vector %v attached to every lease", feats)
	}
	if *tenantFlg != "" {
		copts = append(copts, tuned.WithTenant(*tenantFlg))
	}
	if *chaosFlg != "" {
		ccfg, err := chaos.ParseSpec(*chaosFlg)
		if err != nil {
			log.Fatalf("chaos: %v", err)
		}
		copts = append(copts, tuned.WithDialer(chaos.New(ccfg).DialTimeout))
		log.Printf("fault injection active: %s", *chaosFlg)
	}
	c, err := tuned.Dial(*addr, copts...)
	if err != nil {
		log.Fatalf("dial %s: %v", *addr, err)
	}
	defer c.Close()
	names := c.Algos()
	if *tenantFlg != "" {
		log.Printf("connected to %s tenant %s: %d algorithms, lease TTL %v", *addr, *tenantFlg, len(names), c.LeaseTTL())
	} else {
		log.Printf("connected to %s: %d algorithms, lease TTL %v", *addr, len(names), c.LeaseTTL())
	}

	measure, err := buildMeasure(*workload, names, measureConfig{
		corpusSize: *corpusSz,
		pattern:    []byte(*pattern),
		threads:    *threads,
		sleep:      *sleepFor,
		seed:       *seed,
	})
	if err != nil {
		log.Fatalf("workload: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		// Abrupt by design: outstanding leases are abandoned and expire
		// on the server — the same path a crashed worker takes.
		cancel()
	}()

	w := &tuned.Worker{
		Client:         c,
		Measure:        measure,
		Batch:          *batch,
		MaxTrials:      *maxTrials,
		HeartbeatEvery: *heartbeat,
		IdleRetry:      *idleRetry,
		CalibrateEvery: *calEvery,
		Pipeline:       *pipeFlg,
	}
	if *fallback {
		w.Fallback = &tuned.Fallback{
			Selector:   func() nominal.Selector { return nominal.NewEpsilonGreedy(0.10) },
			Seed:       *seed,
			ProbeEvery: *probe,
		}
	}
	start := time.Now()
	n, err := w.Run(ctx)
	if err != nil && ctx.Err() == nil {
		log.Fatalf("after %d trials: %v", n, err)
	}
	st := w.Stats()
	if st.Calibrations > 0 {
		log.Printf("calibrated %d times, speed factor %.2f", st.Calibrations, st.Factor)
	}
	if st.Partitions > 0 {
		log.Printf("degraded mode: %d partitions, %d local trials, %d observations merged back, %d dropped",
			st.Partitions, st.DegradedTrials, st.Absorbed, st.DroppedObs)
	}
	log.Printf("done: %d trials in %v", n, time.Since(start).Round(time.Millisecond))
}

type measureConfig struct {
	corpusSize int
	pattern    []byte
	threads    int
	sleep      time.Duration
	seed       int64
}

// buildMeasure maps the server's roster (by name, as delivered in the
// handshake) to a local measurement function.
func buildMeasure(workload string, names []string, mc measureConfig) (core.Measure, error) {
	switch workload {
	case "strmatch":
		// One matcher instance per roster slot; Precompute is re-run
		// inside the measured operation, as in the paper ("any
		// precomputation is part of the algorithm's runtime").
		matchers := make([]strmatch.Matcher, len(names))
		for i, n := range names {
			m, err := strmatch.New(n)
			if err != nil {
				return nil, err
			}
			matchers[i] = m
		}
		text := corpus.Bible(mc.corpusSize, mc.seed)
		return func(algo int, _ param.Config) float64 {
			start := time.Now()
			strmatch.Run(matchers[algo], mc.pattern, text, mc.threads)
			return float64(time.Since(start)) / float64(time.Millisecond)
		}, nil
	case "sleep":
		// Synthetic roster for smoke tests and the wire benchmark: the
		// value is a deterministic function of the arm (and, for the
		// tunable arm, its config), so every worker agrees on the
		// landscape and the server converges regardless of which worker
		// measures what.
		return func(algo int, cfg param.Config) float64 {
			if mc.sleep > 0 {
				time.Sleep(mc.sleep)
			}
			switch {
			case algo < len(names) && names[algo] == "sleep-tuned":
				alpha := 7.0
				if len(cfg) > 0 {
					alpha = cfg[0]
				}
				return 1 + math.Abs(alpha-7) // best arm, at alpha = 7
			case algo < len(names) && names[algo] == "sleep-laggard":
				return 9
			default:
				return 5
			}
		}, nil
	default:
		return nil, &unknownWorkload{workload}
	}
}

type unknownWorkload struct{ name string }

func (e *unknownWorkload) Error() string {
	return "unknown workload \"" + e.name + "\" (want strmatch or sleep)"
}

// parseFeatures decodes the -features value: a comma-separated list of
// finite floats, empty meaning no vector at all.
func parseFeatures(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, field := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil {
			return nil, fmt.Errorf("bad feature %q", field)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("feature %q must be finite", field)
		}
		out = append(out, v)
	}
	return out, nil
}

func hostname() string {
	h, err := os.Hostname()
	if err != nil {
		return "atune-worker"
	}
	return "atune-worker@" + h
}
