// Package repro is a from-scratch Go reproduction of Pfaffe, Tillmann,
// Walter and Tichy, "Online-Autotuning in the Presence of Algorithmic
// Choice" (IPDPSW 2017).
//
// The library lives under internal/: the two-phase online autotuner
// (internal/core), the four nominal selection strategies the paper
// proposes (internal/nominal), the classical numeric search strategies it
// reviews (internal/search), and the two complete case-study substrates —
// eight parallel string matching algorithms (internal/strmatch) and a
// raytracer with four parallel SAH kD-tree construction algorithms
// (internal/kdtree, internal/ray, internal/scenegen).
//
// The executables under cmd/ regenerate every table and figure of the
// paper's evaluation; bench_test.go in this directory holds one benchmark
// per experiment. See README.md, DESIGN.md and EXPERIMENTS.md.
package repro
