// Matmul: algorithmic choice over matrix-multiplication kernels — the
// other classic motivating workload of the algorithmic-choice literature —
// plus the wisdom store: tuning results persist across runs, FFTW-style,
// so a restarted application starts from what the last run learned.
//
// Four kernels solve C = A·B: the naive i-j-k loop, the cache-friendlier
// i-k-j reordering, a transposed-B variant, and a blocked kernel whose
// block size the tuner optimizes with Nelder-Mead while the ε-Greedy
// phase picks among the kernels.
//
// Run: go run ./examples/matmul [-n 192] [-iters 60] [-wisdom /tmp/wisdom.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/wisdom"
)

type matrix struct {
	n    int
	data []float64
}

func newMatrix(n int, r *rand.Rand) matrix {
	m := matrix{n: n, data: make([]float64, n*n)}
	for i := range m.data {
		m.data[i] = r.Float64()
	}
	return m
}

func (m matrix) at(i, j int) float64     { return m.data[i*m.n+j] }
func (m matrix) set(i, j int, v float64) { m.data[i*m.n+j] = v }

func mulNaive(a, b, c matrix) {
	n := a.n
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += a.at(i, k) * b.at(k, j)
			}
			c.set(i, j, sum)
		}
	}
}

func mulIKJ(a, b, c matrix) {
	n := a.n
	for i := range c.data {
		c.data[i] = 0
	}
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a.at(i, k)
			for j := 0; j < n; j++ {
				c.data[i*n+j] += aik * b.data[k*n+j]
			}
		}
	}
}

func mulTransposed(a, b, c matrix) {
	n := a.n
	bt := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			bt[j*n+i] = b.at(i, j)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for k := 0; k < n; k++ {
				sum += a.data[i*n+k] * bt[j*n+k]
			}
			c.set(i, j, sum)
		}
	}
}

func mulBlocked(a, b, c matrix, block int) {
	n := a.n
	for i := range c.data {
		c.data[i] = 0
	}
	for ii := 0; ii < n; ii += block {
		for kk := 0; kk < n; kk += block {
			for jj := 0; jj < n; jj += block {
				iMax, kMax, jMax := min(ii+block, n), min(kk+block, n), min(jj+block, n)
				for i := ii; i < iMax; i++ {
					for k := kk; k < kMax; k++ {
						aik := a.at(i, k)
						for j := jj; j < jMax; j++ {
							c.data[i*n+j] += aik * b.data[k*n+j]
						}
					}
				}
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func main() {
	log.SetFlags(0)
	var (
		n          = flag.Int("n", 192, "matrix dimension")
		iters      = flag.Int("iters", 60, "tuning iterations")
		wisdomPath = flag.String("wisdom", "", "wisdom file (optional; persists results across runs)")
	)
	flag.Parse()

	r := rand.New(rand.NewSource(7))
	a, b, c := newMatrix(*n, r), newMatrix(*n, r), newMatrix(*n, r)

	algos := []core.Algorithm{
		{Name: "naive-ijk"},
		{Name: "reordered-ikj"},
		{Name: "transposed"},
		{
			Name:  "blocked",
			Space: param.NewSpace(param.NewRatioInt("block", 8, 256)),
			Init:  param.Config{32},
		},
	}

	// Load wisdom: if a previous run already learned this context, seed
	// the blocked kernel's starting configuration from it.
	key := wisdom.Key("matmul", fmt.Sprintf("n=%d", *n))
	store := wisdom.NewStore()
	if *wisdomPath != "" {
		var err error
		store, err = wisdom.LoadFile(*wisdomPath)
		if err != nil {
			log.Fatal(err)
		}
		if e, ok := store.Lookup(key); ok {
			fmt.Printf("wisdom: previous best %s (%.2f ms)\n", e.Algorithm, e.Value)
			if e.Algorithm == "blocked" && len(e.Config) == 1 {
				algos[3].Init = param.Config{e.Config[0]}
			}
		}
	}

	tuner, err := core.NewTuner(algos, nominal.NewEpsilonGreedy(0.10), nil, 3)
	if err != nil {
		log.Fatal(err)
	}
	measure := func(algo int, cfg param.Config) float64 {
		start := time.Now()
		switch algo {
		case 0:
			mulNaive(a, b, c)
		case 1:
			mulIKJ(a, b, c)
		case 2:
			mulTransposed(a, b, c)
		case 3:
			mulBlocked(a, b, c, int(cfg[0]))
		}
		return float64(time.Since(start).Microseconds()) / 1000.0
	}
	for i := 0; i < *iters; i++ {
		rec := tuner.Step(measure)
		if i%10 == 0 {
			fmt.Printf("iter %3d  %-14s %7.2f ms\n", i, algos[rec.Algo].Name, rec.Value)
		}
	}

	best, cfg, val := tuner.Best()
	fmt.Printf("\nwinner: %s (%.2f ms)", algos[best].Name, val)
	if algos[best].Space != nil {
		fmt.Printf("  %s", algos[best].Space.Format(cfg))
	}
	fmt.Println()

	if *wisdomPath != "" {
		store.Record(key, algos[best].Name, cfg, val)
		if err := store.SaveFile(*wisdomPath); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wisdom saved to %s\n", *wisdomPath)
	}
}
