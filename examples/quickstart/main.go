// Quickstart: tune the choice between two algorithms — plus one
// algorithm's own numeric parameter — in under 40 lines of application
// code.
//
// The tunable operation here is a toy: "process a batch" either with a
// simple fixed routine or with a blocked routine whose block size matters.
// The tuner's ask/tell interface (Next/Observe) embeds directly into the
// application's own loop, which is the essence of online autotuning.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/nominal"
	"repro/internal/param"
)

// processSimple and processBlocked are the two algorithm alternatives.
func processSimple(data []int) int {
	sum := 0
	for _, x := range data {
		sum += x * x
	}
	return sum
}

func processBlocked(data []int, block int) int {
	sum := 0
	for lo := 0; lo < len(data); lo += block {
		hi := lo + block
		if hi > len(data) {
			hi = len(data)
		}
		// The block size changes cache behaviour in a real kernel; here a
		// deliberately suboptimal inner loop makes extreme block sizes
		// slower so there is something to tune.
		for i := lo; i < hi; i++ {
			sum += data[i] * data[i]
		}
		if block < 256 {
			// Tiny blocks pay loop overhead.
			for k := 0; k < (256-block)/8; k++ {
				sum += k & 1
			}
		}
	}
	return sum
}

func main() {
	log.SetFlags(0)
	data := make([]int, 1<<16)
	for i := range data {
		data[i] = i
	}

	algorithms := []core.Algorithm{
		{Name: "simple"}, // no tunable parameters
		{
			Name:  "blocked",
			Space: param.NewSpace(param.NewRatioInt("block", 16, 8192)),
			Init:  param.Config{64},
		},
	}

	// Phase two: ε-Greedy algorithm selection. Phase one (per-algorithm)
	// defaults to Nelder-Mead, the paper's choice.
	tuner, err := core.NewTuner(algorithms, nominal.NewEpsilonGreedy(0.10), nil, 42)
	if err != nil {
		log.Fatal(err)
	}

	// The application's own loop: ask, run, tell.
	for i := 0; i < 100; i++ {
		algo, cfg := tuner.Next()
		start := time.Now()
		switch algo {
		case 0:
			processSimple(data)
		case 1:
			processBlocked(data, int(cfg[0]))
		}
		tuner.Observe(float64(time.Since(start).Microseconds()))
	}

	best, cfg, val := tuner.Best()
	fmt.Printf("best algorithm: %s\n", algorithms[best].Name)
	if algorithms[best].Space != nil {
		fmt.Printf("best config:    %s\n", algorithms[best].Space.Format(cfg))
	}
	fmt.Printf("best time:      %.0f µs\n", val)
	fmt.Printf("selections:     simple=%d blocked=%d\n", tuner.Counts()[0], tuner.Counts()[1])
}
