// Raytrace: the paper's second case study as a runnable example.
//
// A raytracer renders a procedural cathedral frame by frame. Every frame
// first builds an SAH kD-tree — and there are four construction
// algorithms, each with its own tunable parameters (SAH costs, leaf size,
// parallelization depth; the Lazy builder adds an eager-construction
// cutoff). The online tuner picks the construction algorithm AND tunes the
// chosen algorithm's parameters with Nelder-Mead, using the live frame
// times as its measurement — the paper's combined two-phase tuning.
//
// Run: go run ./examples/raytrace [-frames 40] [-strategy egreedy:10]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/kdtree"
	"repro/internal/nominal"
	"repro/internal/ray"
	"repro/internal/scenegen"
)

func main() {
	log.SetFlags(0)
	var (
		frames   = flag.Int("frames", 40, "frames to render (tuning iterations)")
		detail   = flag.Int("detail", 2, "scene detail level")
		width    = flag.Int("width", 120, "render width")
		height   = flag.Int("height", 90, "render height")
		workers  = flag.Int("workers", 4, "render worker goroutines")
		strategy = flag.String("strategy", "egreedy:10", "phase-two strategy")
		ascii    = flag.Bool("ascii", true, "print the final frame as ASCII art")
	)
	flag.Parse()

	scene := scenegen.Cathedral(*detail)
	fmt.Printf("scene: %s, %d triangles\n", scene.Name, len(scene.Triangles))

	pl := &ray.Pipeline{
		Tris:    scene.Triangles,
		Cam:     ray.Camera{Eye: scene.Eye, LookAt: scene.LookAt, FOV: 65},
		Light:   scene.Light,
		Width:   *width,
		Height:  *height,
		Workers: *workers,
	}

	sel, err := nominal.NewByName(*strategy)
	if err != nil {
		log.Fatal(err)
	}
	names := kdtree.BuilderNames()
	builders := make([]kdtree.Builder, len(names))
	algos := make([]core.Algorithm, len(names))
	for i, n := range names {
		b, err := kdtree.NewBuilder(n)
		if err != nil {
			log.Fatal(err)
		}
		builders[i] = b
		space, init := exp.BuilderSpace(n)
		algos[i] = core.Algorithm{Name: n, Space: space, Init: init}
	}
	tuner, err := core.NewTuner(algos, sel, core.DefaultFactory, 11)
	if err != nil {
		log.Fatal(err)
	}

	var lastFrame ray.Frame
	for i := 0; i < *frames; i++ {
		algo, cfg := tuner.Next()
		start := time.Now()
		frame, timing := pl.RenderFrame(builders[algo], exp.ConfigToParams(names[algo], cfg))
		total := time.Since(start)
		tuner.Observe(float64(total.Microseconds()) / 1000.0)
		lastFrame = frame
		if i%5 == 0 {
			fmt.Printf("frame %3d  %-12s build %6.2fms render %6.2fms  cfg: %s\n",
				i, names[algo], ms(timing.Build), ms(timing.Render),
				algos[algo].Space.Format(cfg))
		}
	}

	best, cfg, val := tuner.Best()
	fmt.Printf("\nbest construction algorithm: %s (%.2f ms/frame)\n", names[best], val)
	fmt.Printf("best configuration:          %s\n", algos[best].Space.Format(cfg))

	if *ascii {
		fmt.Println("\nfinal frame:")
		printASCII(lastFrame)
	}
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000.0 }

// printASCII downsamples the frame onto a character ramp.
func printASCII(f ray.Frame) {
	const ramp = " .:-=+*#%@"
	stepY, stepX := 3, 2
	var sb strings.Builder
	for y := 0; y < f.Height; y += stepY {
		for x := 0; x < f.Width; x += stepX {
			v := f.At(x, y)
			idx := int(v * float64(len(ramp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			sb.WriteByte(ramp[idx])
		}
		sb.WriteByte('\n')
	}
	fmt.Print(sb.String())
}
