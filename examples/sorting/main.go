// Sorting: algorithmic choice over sort algorithms — the classic
// motivating workload of the algorithmic-choice literature (PetaBricks'
// introductory example). Which sort wins depends on the input size and
// shape: insertion sort on tiny or nearly-sorted slices, quicksort on
// random data, and a tuned-threshold hybrid in between.
//
// The example runs the online tuner across three input regimes and shows
// it picking a different winner per regime — the input sensitivity that
// makes offline, one-shot choices inadequate.
//
// Run: go run ./examples/sorting
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/nominal"
	"repro/internal/param"
)

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func quickSort(a []int) {
	if len(a) < 2 {
		return
	}
	pivot := a[len(a)/2]
	lo, hi := 0, len(a)-1
	for lo <= hi {
		for a[lo] < pivot {
			lo++
		}
		for a[hi] > pivot {
			hi--
		}
		if lo <= hi {
			a[lo], a[hi] = a[hi], a[lo]
			lo++
			hi--
		}
	}
	quickSort(a[:hi+1])
	quickSort(a[lo:])
}

// hybridSort is quicksort with a tunable insertion-sort cutoff.
func hybridSort(a []int, cutoff int) {
	if len(a) <= cutoff {
		insertionSort(a)
		return
	}
	pivot := a[len(a)/2]
	lo, hi := 0, len(a)-1
	for lo <= hi {
		for a[lo] < pivot {
			lo++
		}
		for a[hi] > pivot {
			hi--
		}
		if lo <= hi {
			a[lo], a[hi] = a[hi], a[lo]
			lo++
			hi--
		}
	}
	hybridSort(a[:hi+1], cutoff)
	hybridSort(a[lo:], cutoff)
}

// regimes produce the three input shapes.
type regime struct {
	name string
	gen  func(r *rand.Rand) []int
}

func regimes() []regime {
	return []regime{
		{"tiny-random (n=64)", func(r *rand.Rand) []int {
			a := make([]int, 64)
			for i := range a {
				a[i] = r.Int()
			}
			return a
		}},
		{"nearly-sorted (n=20000)", func(r *rand.Rand) []int {
			a := make([]int, 20000)
			for i := range a {
				a[i] = i
			}
			for k := 0; k < 40; k++ { // a few displaced elements
				i, j := r.Intn(len(a)), r.Intn(len(a))
				a[i], a[j] = a[j], a[i]
			}
			return a
		}},
		{"random (n=20000)", func(r *rand.Rand) []int {
			a := make([]int, 20000)
			for i := range a {
				a[i] = r.Int()
			}
			return a
		}},
	}
}

func main() {
	log.SetFlags(0)
	algos := []core.Algorithm{
		{Name: "insertion"},
		{Name: "quick"},
		{
			Name:  "hybrid",
			Space: param.NewSpace(param.NewRatioInt("cutoff", 4, 256)),
			Init:  param.Config{16},
		},
		{Name: "stdlib"},
	}

	for _, reg := range regimes() {
		r := rand.New(rand.NewSource(99))
		tuner, err := core.NewTuner(algos, nominal.NewEpsilonGreedy(0.10), nil, 5)
		if err != nil {
			log.Fatal(err)
		}
		measure := func(algo int, cfg param.Config) float64 {
			data := reg.gen(r)
			start := time.Now()
			switch algo {
			case 0:
				insertionSort(data)
			case 1:
				quickSort(data)
			case 2:
				hybridSort(data, int(cfg[0]))
			case 3:
				sort.Ints(data)
			}
			elapsed := float64(time.Since(start).Microseconds())
			if !sort.IntsAreSorted(data) {
				log.Fatalf("%s produced an unsorted result", algos[algo].Name)
			}
			return elapsed
		}
		tuner.Run(120, measure)
		best, cfg, val := tuner.Best()
		fmt.Printf("%-26s → %-9s (%6.0f µs", reg.name, algos[best].Name, val)
		if algos[best].Space != nil {
			fmt.Printf(", %s", algos[best].Space.Format(cfg))
		}
		fmt.Print(")  counts:")
		for i, c := range tuner.Counts() {
			fmt.Printf(" %s=%d", algos[i].Name, c)
		}
		fmt.Println()
	}
}
