// Streamgrep: online algorithm selection inside a streaming pipeline.
//
// A grep-like tool scans a large corpus in fixed-size chunks. Each chunk
// is one execution of the performance-central operation — precompute +
// search — which makes the chunk loop a textbook online tuning loop: the
// ε-Greedy selector picks the string matching algorithm per chunk, learns
// from the measured chunk times, and converges on the fastest matcher for
// this corpus and machine while the scan is doing its real work.
//
// Run: go run ./examples/streamgrep [-size 16777216] [-chunk 1048576]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/nominal"
	"repro/internal/strmatch"
)

func main() {
	log.SetFlags(0)
	var (
		size     = flag.Int("size", 16<<20, "corpus size in bytes")
		chunk    = flag.Int("chunk", 1<<20, "chunk size in bytes")
		phrase   = flag.String("phrase", corpus.QueryPhrase, "query phrase")
		strategy = flag.String("strategy", "egreedy:10", "phase-two strategy")
	)
	flag.Parse()

	pattern := []byte(*phrase)
	if *chunk < len(pattern)*2 {
		log.Fatal("chunk must be at least twice the pattern length")
	}
	text := corpus.Bible(*size, 11)
	fmt.Printf("scanning %d MiB in %d KiB chunks for %q\n",
		*size>>20, *chunk>>10, *phrase)

	sel, err := nominal.NewByName(*strategy)
	if err != nil {
		log.Fatal(err)
	}
	names := strmatch.Names()
	matchers := make([]strmatch.Matcher, len(names))
	algos := make([]core.Algorithm, len(names))
	for i, n := range names {
		m, err := strmatch.New(n)
		if err != nil {
			log.Fatal(err)
		}
		matchers[i] = m
		algos[i] = core.Algorithm{Name: n}
	}
	tuner, err := core.NewTuner(algos, sel, nil, 21)
	if err != nil {
		log.Fatal(err)
	}

	// Chunked scan with a len(pattern)−1 overlap, one tuning iteration per
	// chunk. Matches are attributed to the chunk in which they start.
	totalMatches := 0
	overlap := len(pattern) - 1
	start := time.Now()
	for off := 0; off < len(text); off += *chunk {
		end := off + *chunk
		if end > len(text) {
			end = len(text)
		}
		ext := end + overlap
		if ext > len(text) {
			ext = len(text)
		}
		window := text[off:ext]

		algo, _ := tuner.Next()
		t0 := time.Now()
		m := matchers[algo]
		m.Precompute(pattern)
		positions := m.Search(window)
		tuner.Observe(float64(time.Since(t0).Microseconds()) / 1000.0)

		for _, p := range positions {
			if off+p < end {
				totalMatches++
			}
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("matches: %d  (%.1f MiB/s)\n",
		totalMatches, float64(len(text))/(1<<20)/elapsed.Seconds())
	best, _, val := tuner.Best()
	fmt.Printf("converged matcher: %s (best chunk %.2f ms)\n", names[best], val)
	fmt.Println("chunk assignments:")
	for i, c := range tuner.Counts() {
		fmt.Printf("  %-20s %d\n", names[i], c)
	}
}
