// Stringmatch: the paper's first case study as a runnable example.
//
// An application repeatedly searches a corpus for a query phrase (think
// grep in a log pipeline). Eight string matching algorithms are available;
// which is fastest depends on the pattern, the corpus, and the machine —
// so the choice is left to the online autotuner, which learns it live
// while the application does real work.
//
// Run: go run ./examples/stringmatch [-strategy egreedy:10] [-iters 80]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/strmatch"
)

func main() {
	log.SetFlags(0)
	var (
		strategy = flag.String("strategy", "egreedy:10", "phase-two strategy")
		iters    = flag.Int("iters", 80, "search iterations")
		size     = flag.Int("size", 1<<20, "corpus size in bytes")
		workers  = flag.Int("workers", 4, "search worker goroutines")
	)
	flag.Parse()

	text := corpus.Bible(*size, 2024)
	pattern := []byte(corpus.QueryPhrase)
	fmt.Printf("corpus: %d bytes, query: %q\n", len(text), corpus.QueryPhrase)

	sel, err := nominal.NewByName(*strategy)
	if err != nil {
		log.Fatal(err)
	}

	// The eight matchers expose no numeric parameters — this case study
	// isolates pure algorithmic choice.
	names := strmatch.Names()
	matchers := make([]strmatch.Matcher, len(names))
	algos := make([]core.Algorithm, len(names))
	for i, n := range names {
		m, err := strmatch.New(n)
		if err != nil {
			log.Fatal(err)
		}
		matchers[i] = m
		algos[i] = core.Algorithm{Name: n}
	}

	tuner, err := core.NewTuner(algos, sel, nil, 7)
	if err != nil {
		log.Fatal(err)
	}

	var lastMatches int
	measure := func(algo int, _ param.Config) float64 {
		start := time.Now()
		// Precomputation is part of the measured operation, as in the
		// paper.
		positions := strmatch.Run(matchers[algo], pattern, text, *workers)
		lastMatches = len(positions)
		return float64(time.Since(start).Microseconds()) / 1000.0
	}

	for i := 0; i < *iters; i++ {
		rec := tuner.Step(measure)
		if i%10 == 0 {
			fmt.Printf("iter %3d  %-20s %7.3f ms  (%d matches)\n",
				i, names[rec.Algo], rec.Value, lastMatches)
		}
	}

	best, _, val := tuner.Best()
	fmt.Printf("\nwinner: %s (%.3f ms)\nselection counts:\n", names[best], val)
	for i, c := range tuner.Counts() {
		fmt.Printf("  %-20s %d\n", names[i], c)
	}
}
