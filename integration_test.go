package repro

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/exp"
	"repro/internal/kdtree"
	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/ray"
	"repro/internal/scenegen"
	"repro/internal/strmatch"
	"repro/internal/wisdom"
)

// TestEndToEndStringMatching drives the complete case study 1 stack —
// corpus generation, the eight matchers, parallel search, the two-phase
// tuner — and checks the tuner lands on one of the fast filter-based
// algorithms while producing correct search results throughout.
func TestEndToEndStringMatching(t *testing.T) {
	text := corpus.Bible(512<<10, 7)
	pattern := []byte(corpus.QueryPhrase)
	wantMatches := bytes.Count(text, pattern)
	if wantMatches == 0 {
		t.Fatal("corpus setup broken")
	}

	names := strmatch.Names()
	matchers := make([]strmatch.Matcher, len(names))
	algos := make([]core.Algorithm, len(names))
	for i, n := range names {
		m, err := strmatch.New(n)
		if err != nil {
			t.Fatal(err)
		}
		matchers[i] = m
		algos[i] = core.Algorithm{Name: n}
	}
	tuner, err := core.New(algos, nominal.NewEpsilonGreedy(0.10), nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	slowSet := map[string]bool{"Knuth-Morris-Pratt": true, "ShiftOr": true}
	measure := func(algo int, _ param.Config) float64 {
		start := nowNanos()
		positions := strmatch.Run(matchers[algo], pattern, text, 2)
		elapsed := nowNanos() - start
		// Every measured operation must also be a correct one.
		if len(positions) != wantMatches {
			t.Fatalf("%s found %d matches, want %d", names[algo], len(positions), wantMatches)
		}
		return float64(elapsed) / 1e6
	}
	tuner.Run(60, measure)
	best, _, _ := tuner.Best()
	if slowSet[names[best]] {
		t.Errorf("tuner picked a known-slow matcher: %s (counts %v)", names[best], tuner.Counts())
	}
}

// TestEndToEndRaytracing drives case study 2 end to end: procedural
// scene, combined two-phase tuning over the four builders, real frames.
func TestEndToEndRaytracing(t *testing.T) {
	scene := scenegen.Cathedral(1)
	pl := &ray.Pipeline{
		Tris:  scene.Triangles,
		Cam:   ray.Camera{Eye: scene.Eye, LookAt: scene.LookAt, FOV: 65},
		Light: scene.Light,
		Width: 48, Height: 36, Workers: 2,
	}
	names := kdtree.BuilderNames()
	builders := make([]kdtree.Builder, len(names))
	algos := make([]core.Algorithm, len(names))
	for i, n := range names {
		b, err := kdtree.NewBuilder(n)
		if err != nil {
			t.Fatal(err)
		}
		builders[i] = b
		space, init := exp.BuilderSpace(n)
		algos[i] = core.Algorithm{Name: n, Space: space, Init: init}
	}
	tuner, err := core.New(algos, nominal.NewSlidingWindowAUC(), core.DefaultFactory, 9)
	if err != nil {
		t.Fatal(err)
	}
	var lastMean float64
	measure := func(algo int, cfg param.Config) float64 {
		start := nowNanos()
		frame, _ := pl.RenderFrame(builders[algo], exp.ConfigToParams(names[algo], cfg))
		lastMean = frame.MeanIntensity()
		return float64(nowNanos()-start) / 1e6
	}
	tuner.Run(16, measure)
	if tuner.Iterations() != 16 {
		t.Fatal("tuning loop did not run")
	}
	if lastMean <= 0 {
		t.Error("rendered frames are black")
	}
	for i, c := range tuner.Counts() {
		if c == 0 {
			t.Errorf("builder %s never ran", names[i])
		}
	}
}

// TestEndToEndWisdomRoundTrip ties the tuner to the wisdom store the way
// a real application would across two runs.
func TestEndToEndWisdomRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wisdom.json")
	key := wisdom.Key("integration", "demo")

	runOnce := func(init param.Config) (string, param.Config, float64) {
		algos := []core.Algorithm{
			{Name: "flat"},
			{Name: "tunable", Space: param.NewSpace(param.NewInterval("x", 0, 10)), Init: init},
		}
		m := func(algo int, cfg param.Config) float64 {
			if algo == 0 {
				return 9
			}
			d := cfg[0] - 6
			return 3 + d*d
		}
		tuner, err := core.New(algos, nominal.NewEpsilonGreedy(0.15), nil, 2)
		if err != nil {
			t.Fatal(err)
		}
		tuner.Run(150, m)
		best, cfg, val := tuner.Best()
		return algos[best].Name, cfg, val
	}

	// First run: learn and persist.
	store, err := wisdom.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	name, cfg, val := runOnce(param.Config{0})
	store.Record(key, name, cfg, val)
	if err := store.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	// Second run: start from the persisted configuration.
	again, err := wisdom.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := again.Lookup(key)
	if !ok || e.Algorithm != "tunable" {
		t.Fatalf("wisdom lost the result: %+v ok=%v", e, ok)
	}
	name2, _, val2 := runOnce(param.Config(e.Config))
	if name2 != "tunable" || val2 > val+0.5 {
		t.Errorf("warm start regressed: %s %g vs cold %g", name2, val2, val)
	}
}

// nowNanos is a minimal monotonic-ish clock helper for the integration
// measurements.
func nowNanos() int64 { return time.Now().UnixNano() }
