// Package bvh implements a binned-SAH bounding volume hierarchy — the
// other mainstream ray-acceleration structure. It exists to pose the
// paper's question one level up: not only which kD-tree construction
// algorithm to use, but whether to use a kD-tree at all. Extension X5
// hands the online tuner the choice between the four kD-tree builders and
// this BVH, each with its own tunable parameters.
package bvh

import (
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/kdtree"
)

// Params are the tunable construction parameters of the BVH builder.
type Params struct {
	// LeafSize is the primitive count at or below which a node becomes a
	// leaf without attempting a split.
	LeafSize int
	// Bins is the binned-SAH bin count per axis.
	Bins int
	// MaxDepth caps the tree depth; 0 derives 2 + 1.2·log₂(n).
	MaxDepth int
	// TraversalCost and IntersectCost weigh the SAH, as in the kD-tree.
	TraversalCost, IntersectCost float64
}

// DefaultParams returns a reasonable baseline configuration.
func DefaultParams() Params {
	return Params{LeafSize: 4, Bins: 16, MaxDepth: 0, TraversalCost: 1, IntersectCost: 1}
}

func (p Params) sanitize(n int) Params {
	if p.LeafSize < 1 {
		p.LeafSize = 1
	}
	if p.Bins < 2 {
		p.Bins = 2
	}
	if p.Bins > 256 {
		p.Bins = 256
	}
	if p.MaxDepth <= 0 {
		d := 4
		if n > 0 {
			d = int(2 + 1.2*math.Log2(float64(n)+1))
		}
		if d < 4 {
			d = 4
		}
		p.MaxDepth = d
	}
	if p.TraversalCost <= 0 {
		p.TraversalCost = 1
	}
	if p.IntersectCost <= 0 {
		p.IntersectCost = 1
	}
	return p
}

// node is one BVH node; leaves hold a range of the reordered index slice.
type node struct {
	bounds       geom.AABB
	left, right  int32 // child indices; -1 for leaves
	start, count int32 // leaf payload in Tree.order
}

// Tree is an immutable BVH over a triangle slice. Unlike the kD-tree,
// every primitive appears in exactly one leaf (no duplication); the
// trade is overlapping sibling volumes instead of split clipping.
type Tree struct {
	Tris   []geom.Triangle
	Bounds geom.AABB

	nodes []node
	order []int32
}

// Build constructs a binned-SAH BVH.
func Build(tris []geom.Triangle, p Params) *Tree {
	p = p.sanitize(len(tris))
	t := &Tree{Tris: tris}
	t.order = make([]int32, len(tris))
	centroids := make([]geom.Vec3, len(tris))
	bounds := make([]geom.AABB, len(tris))
	world := geom.EmptyAABB()
	for i := range tris {
		t.order[i] = int32(i)
		bounds[i] = tris[i].Bounds()
		centroids[i] = tris[i].Centroid()
		world = world.Union(bounds[i])
	}
	t.Bounds = world
	if len(tris) == 0 {
		return t
	}
	t.build(0, int32(len(tris)), world, 0, p, centroids, bounds)
	return t
}

// build recursively constructs the subtree over order[start:start+count]
// and returns its node index.
func (t *Tree) build(start, count int32, nb geom.AABB, depth int, p Params, centroids []geom.Vec3, bounds []geom.AABB) int32 {
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{bounds: nb, left: -1, right: -1, start: start, count: count})
	if int(count) <= p.LeafSize || depth >= p.MaxDepth {
		return idx
	}

	// Bin centroids along the longest centroid-extent axis.
	cb := geom.EmptyAABB()
	for _, ti := range t.order[start : start+count] {
		cb = cb.Extend(centroids[ti])
	}
	axis := cb.LongestAxis()
	lo, hi := cb.Min.Axis(axis), cb.Max.Axis(axis)
	if hi-lo <= 0 {
		return idx // all centroids coincide: keep the leaf
	}
	type bin struct {
		count  int
		bounds geom.AABB
	}
	bins := make([]bin, p.Bins)
	for i := range bins {
		bins[i].bounds = geom.EmptyAABB()
	}
	inv := float64(p.Bins) / (hi - lo)
	binOf := func(ti int32) int {
		b := int((centroids[ti].Axis(axis) - lo) * inv)
		if b < 0 {
			b = 0
		}
		if b >= p.Bins {
			b = p.Bins - 1
		}
		return b
	}
	for _, ti := range t.order[start : start+count] {
		b := binOf(ti)
		bins[b].count++
		bins[b].bounds = bins[b].bounds.Union(bounds[ti])
	}

	// Sweep for the best SAH split between bins.
	leftB := make([]geom.AABB, p.Bins)
	leftN := make([]int, p.Bins)
	acc := geom.EmptyAABB()
	n := 0
	for i := 0; i < p.Bins; i++ {
		acc = acc.Union(bins[i].bounds)
		n += bins[i].count
		leftB[i] = acc
		leftN[i] = n
	}
	sa := nb.SurfaceArea()
	bestCost := math.Inf(1)
	bestSplit := -1
	rightB := geom.EmptyAABB()
	rightN := 0
	for i := p.Bins - 1; i >= 1; i-- {
		rightB = rightB.Union(bins[i].bounds)
		rightN += bins[i].count
		nl := leftN[i-1]
		if nl == 0 || rightN == 0 {
			continue
		}
		cost := p.TraversalCost + p.IntersectCost*
			(leftB[i-1].SurfaceArea()/sa*float64(nl)+rightB.SurfaceArea()/sa*float64(rightN))
		if cost < bestCost {
			bestCost = cost
			bestSplit = i
		}
	}
	if bestSplit < 0 || bestCost >= p.IntersectCost*float64(count) {
		return idx // leaf is cheaper
	}

	// Partition order[start:start+count] by bin.
	seg := t.order[start : start+count]
	sort.Slice(seg, func(a, b int) bool { return binOf(seg[a]) < binOf(seg[b]) })
	mid := start
	for _, ti := range seg {
		if binOf(ti) < bestSplit {
			mid++
		}
	}
	lb, rb := geom.EmptyAABB(), geom.EmptyAABB()
	for _, ti := range t.order[start:mid] {
		lb = lb.Union(bounds[ti])
	}
	for _, ti := range t.order[mid : start+count] {
		rb = rb.Union(bounds[ti])
	}
	left := t.build(start, mid-start, lb, depth+1, p, centroids, bounds)
	right := t.build(mid, start+count-mid, rb, depth+1, p, centroids, bounds)
	t.nodes[idx].left = left
	t.nodes[idx].right = right
	t.nodes[idx].count = 0
	return idx
}

// Intersect returns the nearest intersection in (tMin, tMax). The Hit
// type is shared with the kD-tree so both satisfy ray.Intersecter.
func (t *Tree) Intersect(r geom.Ray, tMin, tMax float64) (kdtree.Hit, bool) {
	return t.traverse(r, tMin, tMax, false)
}

// Occluded reports whether any triangle blocks the ray in (tMin, tMax).
func (t *Tree) Occluded(r geom.Ray, tMin, tMax float64) bool {
	_, hit := t.traverse(r, tMin, tMax, true)
	return hit
}

func (t *Tree) traverse(r geom.Ray, tMin, tMax float64, anyHit bool) (kdtree.Hit, bool) {
	if len(t.nodes) == 0 {
		return kdtree.Hit{}, false
	}
	best := kdtree.Hit{T: tMax}
	found := false
	var stack [64]int32
	sp := 0
	stack[sp] = 0
	sp++
	for sp > 0 {
		sp--
		n := &t.nodes[stack[sp]]
		if _, _, ok := n.bounds.IntersectRay(r, tMin, best.T); !ok {
			continue
		}
		if n.left < 0 {
			for _, ti := range t.order[n.start : n.start+n.count] {
				if ht, ok := t.Tris[ti].IntersectRay(r, tMin, best.T); ok {
					best.T = ht
					best.Tri = int(ti)
					found = true
					if anyHit {
						return best, true
					}
				}
			}
			continue
		}
		// Push children; visiting order matters less for a BVH because
		// the bounds test reclips against the shrinking best.T.
		if sp+2 <= len(stack) {
			stack[sp] = n.left
			sp++
			stack[sp] = n.right
			sp++
		} else {
			// Depth is bounded by MaxDepth (≤ ~40 for any realistic n);
			// degrade to direct recursion if a pathological tree exceeds
			// the stack.
			for _, child := range []int32{n.left, n.right} {
				if h, ok := t.traverseFrom(child, r, tMin, best.T, anyHit); ok {
					best = h
					found = true
					if anyHit {
						return best, true
					}
				}
			}
		}
	}
	if !found {
		return kdtree.Hit{T: math.Inf(1)}, false
	}
	return best, true
}

func (t *Tree) traverseFrom(idx int32, r geom.Ray, tMin, tMax float64, anyHit bool) (kdtree.Hit, bool) {
	n := &t.nodes[idx]
	if _, _, ok := n.bounds.IntersectRay(r, tMin, tMax); !ok {
		return kdtree.Hit{}, false
	}
	best := kdtree.Hit{T: tMax}
	found := false
	if n.left < 0 {
		for _, ti := range t.order[n.start : n.start+n.count] {
			if ht, ok := t.Tris[ti].IntersectRay(r, tMin, best.T); ok {
				best.T = ht
				best.Tri = int(ti)
				found = true
				if anyHit {
					return best, true
				}
			}
		}
		return best, found
	}
	for _, child := range []int32{n.left, n.right} {
		if h, ok := t.traverseFrom(child, r, tMin, best.T, anyHit); ok {
			best = h
			found = true
			if anyHit {
				return best, true
			}
		}
	}
	return best, found
}

// Stats summarizes the tree shape.
type Stats struct {
	Nodes, Leaves, MaxDepth, Tris int
}

// Stats walks the tree and reports its shape.
func (t *Tree) Stats() Stats {
	var s Stats
	var rec func(idx int32, depth int)
	rec = func(idx int32, depth int) {
		s.Nodes++
		if depth > s.MaxDepth {
			s.MaxDepth = depth
		}
		n := &t.nodes[idx]
		if n.left < 0 {
			s.Leaves++
			s.Tris += int(n.count)
			return
		}
		rec(n.left, depth+1)
		rec(n.right, depth+1)
	}
	if len(t.nodes) > 0 {
		rec(0, 0)
	}
	return s
}
