package bvh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/scenegen"
)

func bruteIntersect(tris []geom.Triangle, r geom.Ray, tMin, tMax float64) (kdtree.Hit, bool) {
	best := kdtree.Hit{T: tMax}
	found := false
	for i, tr := range tris {
		if t, ok := tr.IntersectRay(r, tMin, best.T); ok {
			best = kdtree.Hit{T: t, Tri: i}
			found = true
		}
	}
	return best, found
}

func randomRays(b geom.AABB, n int, seed int64) []geom.Ray {
	r := rand.New(rand.NewSource(seed))
	d := b.Diagonal()
	rays := make([]geom.Ray, n)
	for i := range rays {
		origin := geom.V(
			b.Min.X+d.X*(r.Float64()*3-1),
			b.Min.Y+d.Y*(r.Float64()*3-1),
			b.Min.Z+d.Z*(r.Float64()*3-1),
		)
		target := geom.V(
			b.Min.X+d.X*r.Float64(),
			b.Min.Y+d.Y*r.Float64(),
			b.Min.Z+d.Z*r.Float64(),
		)
		rays[i] = geom.Ray{Origin: origin, Dir: target.Sub(origin).Normalize()}
	}
	return rays
}

func TestBVHMatchesBruteForce(t *testing.T) {
	tris := scenegen.Cathedral(1).Triangles
	tree := Build(tris, DefaultParams())
	for _, ray := range randomRays(tree.Bounds, 400, 5) {
		want, wok := bruteIntersect(tris, ray, 1e-9, 1e9)
		got, gok := tree.Intersect(ray, 1e-9, 1e9)
		if wok != gok || (wok && math.Abs(want.T-got.T) > 1e-9) {
			t.Fatalf("mismatch: %v/%v vs %v/%v", want, wok, got, gok)
		}
		if tree.Occluded(ray, 1e-9, 1e9) != wok {
			t.Fatal("occlusion disagrees with intersection")
		}
	}
}

func TestBVHNoDuplication(t *testing.T) {
	tris := scenegen.Cathedral(1).Triangles
	tree := Build(tris, DefaultParams())
	s := tree.Stats()
	// Unlike the kD-tree, each primitive lives in exactly one leaf.
	if s.Tris != len(tris) {
		t.Errorf("leaves reference %d triangles, want exactly %d", s.Tris, len(tris))
	}
	if s.Nodes != 2*s.Leaves-1 {
		t.Errorf("binary-tree invariant violated: %d nodes, %d leaves", s.Nodes, s.Leaves)
	}
	// Every index appears exactly once in the reordered slice.
	seen := make([]bool, len(tris))
	for _, ti := range tree.order {
		if seen[ti] {
			t.Fatalf("triangle %d appears twice", ti)
		}
		seen[ti] = true
	}
}

func TestBVHParamsRespected(t *testing.T) {
	tris := scenegen.Cathedral(1).Triangles
	p := DefaultParams()
	p.MaxDepth = 3
	tree := Build(tris, p)
	if s := tree.Stats(); s.MaxDepth > 3 {
		t.Errorf("depth %d exceeds cap 3", s.MaxDepth)
	}
	p = DefaultParams()
	p.LeafSize = len(tris)
	if s := Build(tris, p).Stats(); s.Nodes != 1 {
		t.Errorf("leaf-size cap ignored: %+v", s)
	}
}

func TestBVHEmptyAndTiny(t *testing.T) {
	empty := Build(nil, DefaultParams())
	if _, hit := empty.Intersect(geom.Ray{Origin: geom.V(0, 0, -1), Dir: geom.V(0, 0, 1)}, 0, 10); hit {
		t.Error("hit in empty scene")
	}
	one := []geom.Triangle{{A: geom.V(0, 0, 0), B: geom.V(1, 0, 0), C: geom.V(0, 1, 0)}}
	tree := Build(one, DefaultParams())
	hit, ok := tree.Intersect(geom.Ray{Origin: geom.V(0.2, 0.2, -1), Dir: geom.V(0, 0, 1)}, 0, 10)
	if !ok || math.Abs(hit.T-1) > 1e-12 || hit.Tri != 0 {
		t.Errorf("single triangle: %+v %v", hit, ok)
	}
}

func TestBVHCoincidentCentroids(t *testing.T) {
	// All centroids equal: splitting is impossible; must stay a leaf and
	// still answer queries correctly.
	tris := make([]geom.Triangle, 16)
	for i := range tris {
		tris[i] = geom.Triangle{A: geom.V(-1, -1, 0), B: geom.V(1, -1, 0), C: geom.V(0, 2, 0)}
	}
	tree := Build(tris, DefaultParams())
	_, ok := tree.Intersect(geom.Ray{Origin: geom.V(0, 0, -5), Dir: geom.V(0, 0, 1)}, 0, 100)
	if !ok {
		t.Error("stacked triangles not hit")
	}
}

// Property: BVH agrees with the oracle on random scenes, rays and params.
func TestBVHOracleProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(150)
		tris := make([]geom.Triangle, n)
		for i := range tris {
			c := geom.V(r.Float64()*20-10, r.Float64()*20-10, r.Float64()*20-10)
			size := 0.05 + r.Float64()*3
			rv := func() geom.Vec3 {
				return c.Add(geom.V((r.Float64()-0.5)*size, (r.Float64()-0.5)*size, (r.Float64()-0.5)*size))
			}
			tris[i] = geom.Triangle{A: rv(), B: rv(), C: rv()}
		}
		p := Params{
			LeafSize: 1 + r.Intn(8),
			Bins:     2 + r.Intn(40),
			MaxDepth: 2 + r.Intn(20),
		}
		tree := Build(tris, p)
		for k := 0; k < 40; k++ {
			ray := geom.Ray{
				Origin: geom.V(r.Float64()*40-20, r.Float64()*40-20, r.Float64()*40-20),
				Dir:    geom.V(r.Float64()*2-1, r.Float64()*2-1, r.Float64()*2-1).Normalize(),
			}
			want, wok := bruteIntersect(tris, ray, 1e-9, 1e9)
			got, gok := tree.Intersect(ray, 1e-9, 1e9)
			if wok != gok || (wok && math.Abs(want.T-got.T) > 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
