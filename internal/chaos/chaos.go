// Package chaos is a deterministic network fault-injection layer for
// the distributed tuning service: net.Conn/net.Listener wrappers that
// inject latency, fragmented ("partial") writes, mid-frame connection
// resets, payload byte corruption, and timed blackhole partitions.
//
// Faults are drawn from a per-connection RNG derived from the network
// seed and the connection's accept/dial ordinal (via internal/xrand),
// so a given connection makes the same fault decisions at the same
// operations on every run — the wall-clock timing of those operations
// varies, but the decision stream does not. Corruption flips payload
// bytes after framing, which the wire layer's CRC32 must reject: a
// chaos run can stall or drop requests, but it can never feed a
// mis-decoded frame into the tuner.
//
// A blackhole partition stalls every Read and Write on the network's
// connections until the window ends or the operation's deadline fires
// — the same observable behaviour as a switch eating packets: dials
// still succeed (loopback TCP connects locally) and then the handshake
// times out. Partitions come from a recurring schedule
// (Config.BlackholeEvery/BlackholeFor) or on demand via PartitionFor,
// which tests use to force a partition at a chosen point in a run.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/xrand"
)

// ErrInjectedReset is returned by operations on a connection the chaos
// layer reset mid-frame. The underlying connection is closed, so the
// peer observes an unexpected EOF inside a frame.
var ErrInjectedReset = errors.New("chaos: injected connection reset")

// Config sets the fault rates of a Network. The zero value injects
// nothing and passes bytes through untouched.
type Config struct {
	// Seed derives every per-connection fault stream.
	Seed int64
	// LatencyMax adds a uniform [0, LatencyMax) delay to each Read and
	// Write (0 = none).
	LatencyMax time.Duration
	// FragmentProb is the per-Write probability of delivering the
	// buffer in several smaller writes with delays in between, forcing
	// the peer to reassemble frames across partial reads.
	FragmentProb float64
	// ResetProb is the per-Write probability of writing a random-length
	// prefix and then closing the connection: a mid-frame reset.
	ResetProb float64
	// CorruptProb is the per-Write probability of flipping one payload
	// byte. The receiver's CRC32 framing must reject the frame.
	CorruptProb float64
	// BlackholeEvery/BlackholeFor schedule recurring partitions: within
	// every BlackholeEvery cycle, the final BlackholeFor window stalls
	// all traffic. Zero disables the schedule (PartitionFor still works).
	BlackholeEvery time.Duration
	BlackholeFor   time.Duration
}

// Stats counts injected faults across a Network's connections.
type Stats struct {
	Conns       int64
	Resets      int64
	Corruptions int64
	Fragments   int64
	Blackholed  int64 // operations that hit a partition window
}

// Network owns the fault schedule and stats shared by a set of wrapped
// connections. It is safe for concurrent use.
type Network struct {
	cfg   Config
	start time.Time
	seq   atomic.Int64

	mu          sync.Mutex
	manualUntil time.Time

	conns       atomic.Int64
	resets      atomic.Int64
	corruptions atomic.Int64
	fragments   atomic.Int64
	blackholed  atomic.Int64
}

// New builds a Network with the given fault configuration.
func New(cfg Config) *Network {
	return &Network{cfg: cfg, start: time.Now()}
}

// Stats returns a snapshot of the injected-fault counters.
func (n *Network) Stats() Stats {
	return Stats{
		Conns:       n.conns.Load(),
		Resets:      n.resets.Load(),
		Corruptions: n.corruptions.Load(),
		Fragments:   n.fragments.Load(),
		Blackholed:  n.blackholed.Load(),
	}
}

// PartitionFor opens (or extends) a manual blackhole window covering
// the next d on the wall clock. All Reads and Writes on the network's
// connections stall until it closes or their deadlines fire.
func (n *Network) PartitionFor(d time.Duration) {
	until := time.Now().Add(d)
	n.mu.Lock()
	if until.After(n.manualUntil) {
		n.manualUntil = until
	}
	n.mu.Unlock()
}

// Partitioned reports whether a blackhole window (manual or scheduled)
// is currently open.
func (n *Network) Partitioned() bool {
	_, open := n.blackholeUntil()
	return open
}

// blackholeUntil returns the end of the currently open partition
// window, if any.
func (n *Network) blackholeUntil() (time.Time, bool) {
	now := time.Now()
	n.mu.Lock()
	manual := n.manualUntil
	n.mu.Unlock()
	if now.Before(manual) {
		return manual, true
	}
	if n.cfg.BlackholeEvery > 0 && n.cfg.BlackholeFor > 0 {
		elapsed := now.Sub(n.start) % n.cfg.BlackholeEvery
		if elapsed >= n.cfg.BlackholeEvery-n.cfg.BlackholeFor {
			return now.Add(n.cfg.BlackholeEvery - elapsed), true
		}
	}
	return time.Time{}, false
}

// Wrap returns c with this network's faults injected. Each wrapped
// connection draws from its own deterministic stream: connection i of a
// network always makes the same decisions at the same operations.
func (n *Network) Wrap(c net.Conn) net.Conn {
	i := n.seq.Add(1)
	n.conns.Add(1)
	// Golden-ratio stride decorrelates per-connection streams from the
	// shared seed and from each other.
	seed := n.cfg.Seed + i*-0x61c8864680b583eb
	return &Conn{inner: c, net: n, rng: xrand.New(seed).Rand()}
}

// Listener wraps ln so every accepted connection is chaos-wrapped.
func (n *Network) Listener(ln net.Listener) net.Listener {
	return &listener{inner: ln, net: n}
}

// Listen listens on the address and wraps the listener.
func (n *Network) Listen(network, addr string) (net.Listener, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return n.Listener(ln), nil
}

// Dial connects and wraps the connection.
func (n *Network) Dial(network, addr string) (net.Conn, error) {
	return n.DialTimeout(network, addr, 0)
}

// DialTimeout connects with a dial timeout and wraps the connection.
// Its signature matches the dialer hook of the tuned client.
func (n *Network) DialTimeout(network, addr string, timeout time.Duration) (net.Conn, error) {
	c, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, err
	}
	return n.Wrap(c), nil
}

// Listen builds a Network from cfg and returns a wrapped listener on
// the address, for tests that need a faulty server side in one call.
func Listen(network, addr string, cfg Config) (net.Listener, *Network, error) {
	n := New(cfg)
	ln, err := n.Listen(network, addr)
	if err != nil {
		return nil, nil, err
	}
	return ln, n, nil
}

// Dial builds a Network from cfg and returns a wrapped connection, for
// tests that need a faulty client side in one call.
func Dial(network, addr string, cfg Config) (net.Conn, *Network, error) {
	n := New(cfg)
	c, err := n.Dial(network, addr)
	if err != nil {
		return nil, nil, err
	}
	return c, n, nil
}

// listener wraps Accept.
type listener struct {
	inner net.Listener
	net   *Network
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	return l.net.Wrap(c), nil
}

func (l *listener) Close() error   { return l.inner.Close() }
func (l *listener) Addr() net.Addr { return l.inner.Addr() }

// Conn is one chaos-wrapped connection.
type Conn struct {
	inner net.Conn
	net   *Network

	mu  sync.Mutex // guards rng and the deadline mirrors
	rng *rand.Rand
	rdl time.Time
	wdl time.Time

	broken atomic.Bool
}

// Inner returns the wrapped connection (for tests).
func (c *Conn) Inner() net.Conn { return c.inner }

// stall blocks while a blackhole partition is open, waking when the
// window closes or the deadline fires — whichever comes first. The
// partition end is re-read after every sleep so manual extensions hold.
func (c *Conn) stall(deadline time.Time) error {
	hit := false
	for {
		end, open := c.net.blackholeUntil()
		if !open {
			return nil
		}
		if !hit {
			hit = true
			c.net.blackholed.Add(1)
		}
		wake := end
		if !deadline.IsZero() && deadline.Before(wake) {
			wake = deadline
		}
		if d := time.Until(wake); d > 0 {
			time.Sleep(d)
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return os.ErrDeadlineExceeded
		}
	}
}

// Read stalls through partitions, injects latency, and reads from the
// wrapped connection.
func (c *Conn) Read(p []byte) (int, error) {
	if c.broken.Load() {
		return 0, ErrInjectedReset
	}
	c.mu.Lock()
	deadline := c.rdl
	var lat time.Duration
	if c.net.cfg.LatencyMax > 0 {
		lat = time.Duration(c.rng.Int63n(int64(c.net.cfg.LatencyMax)))
	}
	c.mu.Unlock()
	if err := c.stall(deadline); err != nil {
		return 0, err
	}
	if lat > 0 {
		time.Sleep(lat)
	}
	return c.inner.Read(p)
}

// Write stalls through partitions, then draws this operation's faults:
// at most one of reset, corruption, or fragmentation, plus latency.
func (c *Conn) Write(p []byte) (int, error) {
	if c.broken.Load() {
		return 0, ErrInjectedReset
	}
	cfg := &c.net.cfg
	c.mu.Lock()
	deadline := c.wdl
	var lat time.Duration
	if cfg.LatencyMax > 0 {
		lat = time.Duration(c.rng.Int63n(int64(cfg.LatencyMax)))
	}
	reset := cfg.ResetProb > 0 && c.rng.Float64() < cfg.ResetProb
	corrupt := !reset && cfg.CorruptProb > 0 && c.rng.Float64() < cfg.CorruptProb
	fragment := !reset && cfg.FragmentProb > 0 && c.rng.Float64() < cfg.FragmentProb
	var cut, flip, pieces int
	if len(p) > 0 {
		if reset {
			cut = c.rng.Intn(len(p))
		}
		if corrupt {
			flip = c.rng.Intn(len(p))
		}
		if fragment {
			pieces = 2 + c.rng.Intn(3)
		}
	}
	c.mu.Unlock()
	if err := c.stall(deadline); err != nil {
		return 0, err
	}
	if lat > 0 {
		time.Sleep(lat)
	}
	if reset {
		n := 0
		if cut > 0 {
			n, _ = c.inner.Write(p[:cut])
		}
		c.broken.Store(true)
		c.inner.Close()
		c.net.resets.Add(1)
		return n, ErrInjectedReset
	}
	buf := p
	if corrupt && len(p) > 0 {
		buf = append([]byte(nil), p...)
		buf[flip] ^= 0xff
		c.net.corruptions.Add(1)
	}
	if fragment && len(buf) >= pieces && pieces > 1 {
		c.net.fragments.Add(1)
		chunk := len(buf) / pieces
		done := 0
		for done < len(buf) {
			end := done + chunk
			if end > len(buf) || len(buf)-end < chunk {
				end = len(buf)
			}
			k, err := c.inner.Write(buf[done:end])
			done += k
			if err != nil {
				return min(done, len(p)), err
			}
			if done < len(buf) {
				time.Sleep(50 * time.Microsecond)
			}
		}
		return len(p), nil
	}
	n, err := c.inner.Write(buf)
	if n > len(p) {
		n = len(p)
	}
	return n, err
}

// Close closes the wrapped connection.
func (c *Conn) Close() error { return c.inner.Close() }

// LocalAddr returns the wrapped connection's local address.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr returns the wrapped connection's remote address.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline mirrors the deadline for partition stalls and forwards it.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.rdl, c.wdl = t, t
	c.mu.Unlock()
	return c.inner.SetDeadline(t)
}

// SetReadDeadline mirrors and forwards the read deadline.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.rdl = t
	c.mu.Unlock()
	return c.inner.SetReadDeadline(t)
}

// SetWriteDeadline mirrors and forwards the write deadline.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.wdl = t
	c.mu.Unlock()
	return c.inner.SetWriteDeadline(t)
}

// ParseSpec parses the -chaos flag syntax: a comma-separated key=value
// list. Keys: seed (int), latency (duration), frag, reset, corrupt
// (probabilities in [0,1]), and blackhole=EVERY/FOR (two durations).
// An empty spec is the zero Config.
//
//	-chaos "latency=2ms,reset=0.01,corrupt=0.01,blackhole=10s/1s,seed=7"
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return cfg, fmt.Errorf("chaos: bad spec entry %q (want key=value)", kv)
		}
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(val, 10, 64)
		case "latency":
			cfg.LatencyMax, err = time.ParseDuration(val)
		case "frag":
			cfg.FragmentProb, err = parseProb(val)
		case "reset":
			cfg.ResetProb, err = parseProb(val)
		case "corrupt":
			cfg.CorruptProb, err = parseProb(val)
		case "blackhole":
			every, dur, ok := strings.Cut(val, "/")
			if !ok {
				return cfg, fmt.Errorf("chaos: blackhole wants EVERY/FOR, got %q", val)
			}
			if cfg.BlackholeEvery, err = time.ParseDuration(every); err == nil {
				cfg.BlackholeFor, err = time.ParseDuration(dur)
			}
			if err == nil && cfg.BlackholeFor > cfg.BlackholeEvery {
				err = fmt.Errorf("window %v exceeds cycle %v", cfg.BlackholeFor, cfg.BlackholeEvery)
			}
		default:
			return cfg, fmt.Errorf("chaos: unknown spec key %q", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("chaos: bad %s: %v", key, err)
		}
	}
	return cfg, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0,1]", p)
	}
	return p, nil
}
