package chaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"

	"repro/internal/wire"
)

// pipeServer runs a loopback listener that echoes every received frame
// back verbatim (raw bytes, not re-framed), returning its address.
func echoServer(t *testing.T, ln net.Listener) {
	t.Helper()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				io.Copy(conn, conn)
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
}

func TestPassthrough(t *testing.T) {
	ln, _, err := Listen("tcp", "127.0.0.1:0", Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	echoServer(t, ln)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := bytes.Repeat([]byte("chaos-free "), 100)
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("zero-config chaos network altered bytes")
	}
}

// TestCorruptionRejectedByFraming proves the tentpole contract: a
// corrupted frame is rejected by the CRC32 framing, never mis-decoded.
func TestCorruptionRejectedByFraming(t *testing.T) {
	ln, nw, err := Listen("tcp", "127.0.0.1:0", Config{Seed: 7, CorruptProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	echoServer(t, ln)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	frame, err := wire.Encode(wire.THello, &wire.Hello{Proto: wire.Version, Name: "victim"})
	if err != nil {
		t.Fatal(err)
	}
	// The echo passes through the server-side chaos wrapper, whose
	// Write flips one byte; our framing must refuse the result.
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	_, _, err = wire.ReadFrame(conn)
	if err == nil {
		t.Fatal("corrupted frame decoded without error")
	}
	if nw.Stats().Corruptions == 0 {
		t.Fatal("corruption counter not incremented")
	}
}

func TestInjectedReset(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	nw := New(Config{Seed: 3, ResetProb: 1})
	wrapped := nw.Wrap(a)
	go io.Copy(io.Discard, b) // drain whatever prefix the reset lets through
	_, err := wrapped.Write(bytes.Repeat([]byte{0xab}, 1024))
	if !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("Write error = %v, want ErrInjectedReset", err)
	}
	if _, err := wrapped.Write([]byte{1}); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("post-reset Write error = %v, want ErrInjectedReset", err)
	}
	if nw.Stats().Resets != 1 {
		t.Fatalf("resets = %d, want 1", nw.Stats().Resets)
	}
}

func TestFragmentedWritesReassemble(t *testing.T) {
	ln, nw, err := Listen("tcp", "127.0.0.1:0", Config{Seed: 11, FragmentProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	echoServer(t, ln)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	frame, err := wire.Encode(wire.TTrials, &wire.LeaseNResp{Epoch: 9, Trials: []wire.Trial{{ID: 1, Algo: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatalf("fragmented frame failed to reassemble: %v", err)
	}
	var resp wire.LeaseNResp
	if err := resp.DecodeFrom(payload); err != nil || typ != wire.TTrials || resp.Epoch != 9 {
		t.Fatalf("decoded %s %+v (err %v), want the original message", typ, resp, err)
	}
	if nw.Stats().Fragments == 0 {
		t.Fatal("fragment counter not incremented")
	}
}

func TestPartitionStallsUntilDeadline(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	nw := New(Config{Seed: 5})
	wrapped := nw.Wrap(a)
	nw.PartitionFor(5 * time.Second)
	if !nw.Partitioned() {
		t.Fatal("PartitionFor did not open a window")
	}
	wrapped.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	_, err := wrapped.Read(make([]byte, 1))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("Read during partition = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("Read returned after %v, before the deadline", elapsed)
	}
	if nw.Stats().Blackholed == 0 {
		t.Fatal("blackholed counter not incremented")
	}
}

func TestPartitionHeals(t *testing.T) {
	ln, nw, err := Listen("tcp", "127.0.0.1:0", Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	echoServer(t, ln)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	nw.PartitionFor(80 * time.Millisecond)
	start := time.Now()
	// No deadline: the echo stalls through the window, then completes.
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5)
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("echo completed after %v, inside the partition window", elapsed)
	}
}

// TestDeterministicDecisions replays the same operation sequence
// through two same-seed networks: connection i must make identical
// fault decisions in both.
func TestDeterministicDecisions(t *testing.T) {
	run := func() []bool {
		nw := New(Config{Seed: 42, ResetProb: 0.3})
		var decisions []bool
		for conn := 0; conn < 4; conn++ {
			a, b := net.Pipe()
			w := nw.Wrap(a)
			go io.Copy(io.Discard, b)
			for op := 0; op < 8; op++ {
				_, err := w.Write([]byte("operation-payload"))
				decisions = append(decisions, errors.Is(err, ErrInjectedReset))
				if err != nil {
					break // connection is dead; later ops add nothing
				}
			}
			a.Close()
			b.Close()
		}
		return decisions
	}
	first, second := run(), run()
	if len(first) != len(second) {
		t.Fatalf("decision streams differ in length: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("decision %d differs between same-seed runs", i)
		}
	}
	if !contains(first, true) {
		t.Fatal("no resets at probability 0.3 over 32 operations")
	}
}

func contains(s []bool, v bool) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("latency=2ms,reset=0.01,corrupt=0.05,frag=0.2,blackhole=10s/1s,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Seed: 7, LatencyMax: 2 * time.Millisecond,
		FragmentProb: 0.2, ResetProb: 0.01, CorruptProb: 0.05,
		BlackholeEvery: 10 * time.Second, BlackholeFor: time.Second,
	}
	if cfg != want {
		t.Fatalf("ParseSpec = %+v, want %+v", cfg, want)
	}
	if cfg, err := ParseSpec(""); err != nil || cfg != (Config{}) {
		t.Fatalf("empty spec = %+v, %v; want zero config", cfg, err)
	}
	for _, bad := range []string{"nope", "reset=2", "blackhole=10s", "blackhole=1s/2s", "latency=fast", "x=1"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}
