// Package checkpoint implements crash-safe persistence for tuner state:
// versioned, checksummed snapshots plus a write-ahead journal of the
// iterations completed since the last snapshot.
//
// The durability contract is the classical snapshot+WAL design. A
// snapshot captures everything needed to resume tuning — search-strategy
// state, selector state, quarantine circuits, incumbent, RNG stream
// position — and is written atomically (temp file in the same directory,
// fsync, rename), so a crash mid-write can never destroy the previous
// snapshot. Between snapshots every completed iteration is appended to a
// line-delimited journal and fsynced, so on restart the journal can be
// replayed through the tuner's normal Observe/ObserveFailure path and at
// most the in-flight iteration is lost.
//
// Corruption is expected, not exceptional: every snapshot carries a
// CRC32 over its payload and every journal line a CRC32 over its record,
// and the loader falls back — to the previous snapshot when the newest
// fails its checksum, and to a truncated replay when a journal line is
// damaged — instead of failing the resume.
package checkpoint

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
)

// F is a float64 whose JSON encoding round-trips the non-finite values
// that tuner state legitimately contains (NaN simplex vertices awaiting
// evaluation, +Inf "no best yet" sentinels), which encoding/json
// rejects. Finite values encode as ordinary JSON numbers; NaN and ±Inf
// encode as the strings "NaN", "+Inf", "-Inf".
type F float64

// MarshalJSON encodes non-finite values as strings.
func (f F) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON accepts numbers and the three non-finite strings.
func (f *F) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		switch s {
		case "NaN":
			*f = F(math.NaN())
		case "+Inf":
			*f = F(math.Inf(1))
		case "-Inf":
			*f = F(math.Inf(-1))
		default:
			return fmt.Errorf("checkpoint: bad float %q", s)
		}
		return nil
	}
	v, err := strconv.ParseFloat(string(data), 64)
	if err != nil {
		return fmt.Errorf("checkpoint: bad float %s: %v", data, err)
	}
	*f = F(v)
	return nil
}

// Floats converts a value slice to its JSON-safe form.
func Floats(xs []float64) []F {
	if xs == nil {
		return nil
	}
	out := make([]F, len(xs))
	for i, x := range xs {
		out[i] = F(x)
	}
	return out
}

// Unfloats converts a JSON-safe slice back to float64s.
func Unfloats(xs []F) []float64 {
	if xs == nil {
		return nil
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// WriteFileAtomic writes data to path so that a crash at any point
// leaves either the previous file contents or the new ones, never a
// truncated mix: the data goes to a temp file in the same directory
// (rename is only atomic within a filesystem), is fsynced, and is
// renamed over the target. The directory is fsynced afterwards so the
// rename itself survives a crash.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename

	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename is durable. Some
// platforms refuse to fsync directories; that is a durability hint lost,
// not an error worth failing the checkpoint over.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}
