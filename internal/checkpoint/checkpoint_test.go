package checkpoint

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestFNonFiniteRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1.5, -2.25, math.Inf(1), math.Inf(-1), math.NaN(), math.MaxFloat64} {
		data, err := F(v).MarshalJSON()
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var got F
		if err := got.UnmarshalJSON(data); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if math.IsNaN(v) {
			if !math.IsNaN(float64(got)) {
				t.Errorf("NaN round-tripped to %v", got)
			}
		} else if float64(got) != v {
			t.Errorf("%v round-tripped to %v", v, got)
		}
	}
	var f F
	if err := f.UnmarshalJSON([]byte(`"pancake"`)); err == nil {
		t.Error("unmarshal of an unknown string succeeded")
	}
}

func TestFloatsNilPreserved(t *testing.T) {
	if Floats(nil) != nil || Unfloats(nil) != nil {
		t.Error("nil slices should stay nil through conversion")
	}
	in := []float64{1, math.Inf(1)}
	out := Unfloats(Floats(in))
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip changed %v to %v", in, out)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("second"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "second" {
		t.Errorf("read back %q", data)
	}
	// No temp files may be left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory holds %d entries, want just the target", len(entries))
	}
}

func TestSnapshotEncodeDecode(t *testing.T) {
	payload := []byte(`{"hello":"world","n":3}`)
	data, err := EncodeSnapshot(payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Errorf("payload round-tripped to %s", got)
	}
	if _, err := EncodeSnapshot([]byte(`{"un终`)); err == nil {
		t.Error("encoding invalid JSON succeeded")
	}
}

func TestSnapshotDecodeRejectsDamage(t *testing.T) {
	payload := []byte(`{"counts":[1,2,3],"value":0.5}`)
	data, err := EncodeSnapshot(payload)
	if err != nil {
		t.Fatal(err)
	}
	// Truncation at any point must fail, never panic.
	for cut := 0; cut < len(data); cut++ {
		if _, err := DecodeSnapshot(data[:cut]); err == nil {
			t.Fatalf("decoding a snapshot truncated to %d bytes succeeded", cut)
		}
	}
	// A flipped byte anywhere must fail: either the frame breaks or the
	// checksum catches it.
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x01
		if got, err := DecodeSnapshot(mut); err == nil && string(got) != string(payload) {
			t.Fatalf("flip at byte %d yielded a different payload without error: %s", i, got)
		}
	}
	// A future version must be refused.
	future := []byte(fmt.Sprintf(`{"version":%d,"crc32":0,"payload":{}}`, Version+1))
	if _, err := DecodeSnapshot(future); err == nil {
		t.Error("decoding a future-version snapshot succeeded")
	}
}

func TestJournalAppendRead(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Iter: 0, Algo: "a", Config: []F{1, 2}, Value: 3.5},
		{Iter: 1, Algo: "b", Value: F(math.Inf(1)), FailKind: "timeout"},
		{Iter: 2, Algo: "a", Config: []F{F(math.NaN()), 0}, Value: 4},
	}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournal(WalPath(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Iter != want[i].Iter || got[i].Algo != want[i].Algo || got[i].FailKind != want[i].FailKind {
			t.Errorf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	if !math.IsNaN(float64(got[2].Config[0])) {
		t.Errorf("NaN config value read back as %v", got[2].Config[0])
	}
}

func TestJournalReadStopsAtDamage(t *testing.T) {
	dir := t.TempDir()
	path := WalPath(dir, 0)
	j, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(Record{Iter: i, Algo: "a", Value: F(i)}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	cases := []struct {
		name   string
		mangle func(data []byte) []byte
		want   int
	}{
		{"torn final line", func(d []byte) []byte { return d[:len(d)-7] }, 2},
		{"flipped byte in last body", func(d []byte) []byte {
			d = append([]byte(nil), d...)
			d[len(d)-3] ^= 0x01
			return d
		}, 2},
		{"empty line between records", func(d []byte) []byte {
			lines := strings.SplitAfter(string(d), "\n")
			return []byte(lines[0] + "\n" + strings.Join(lines[1:], ""))
		}, 3},
		{"garbage after records", func(d []byte) []byte { return append(d, []byte("not a journal line\n")...) }, 3},
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := os.WriteFile(path, c.mangle(orig), 0o644); err != nil {
				t.Fatal(err)
			}
			recs, err := ReadJournal(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != c.want {
				t.Errorf("read %d records, want %d", len(recs), c.want)
			}
			for i, r := range recs {
				if r.Iter != i {
					t.Errorf("record %d has iteration %d", i, r.Iter)
				}
			}
		})
	}
}

func TestReadJournalMissingFile(t *testing.T) {
	recs, err := ReadJournal(filepath.Join(t.TempDir(), "nope.log"))
	if err != nil || recs != nil {
		t.Errorf("missing journal: got %v, %v; want empty, nil", recs, err)
	}
}

// writeGen writes a snapshot and a journal covering [iter, iter+n).
func writeGen(t *testing.T, dir string, iter, n int) {
	t.Helper()
	payload := []byte(fmt.Sprintf(`{"iter":%d}`, iter))
	if err := WriteSnapshot(dir, iter, payload); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(dir, iter)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := iter; i < iter+n; i++ {
		if err := j.Append(Record{Iter: i, Algo: "a", Value: F(i)}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPruneKeepsTwoGenerations(t *testing.T) {
	dir := t.TempDir()
	writeGen(t, dir, 0, 10)
	writeGen(t, dir, 10, 10)
	writeGen(t, dir, 20, 10)
	if got := Generations(dir); !reflect.DeepEqual(got, []int{10, 20}) {
		t.Errorf("snapshot generations after prune: %v", got)
	}
	if got := JournalGenerations(dir); !reflect.DeepEqual(got, []int{10, 20}) {
		t.Errorf("journal generations after prune: %v", got)
	}
}

func TestLoadLatestFallsBack(t *testing.T) {
	dir := t.TempDir()
	writeGen(t, dir, 0, 5)
	writeGen(t, dir, 5, 5)

	// Healthy: newest wins.
	_, iter, err := LoadLatest(dir)
	if err != nil || iter != 5 {
		t.Fatalf("LoadLatest: iter %d, err %v", iter, err)
	}

	// Corrupt the newest: previous generation must load, and the chained
	// journals must still cover everything from it onward.
	data, err := os.ReadFile(SnapPath(dir, 5))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(SnapPath(dir, 5), data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, iter, err = LoadLatest(dir)
	if err != nil || iter != 0 {
		t.Fatalf("LoadLatest after corruption: iter %d, err %v", iter, err)
	}
	recs := ReadJournalsSince(dir, 0)
	if len(recs) != 10 {
		t.Fatalf("chained journals replay %d records, want 10", len(recs))
	}
	for i, r := range recs {
		if r.Iter != i {
			t.Errorf("replay record %d has iteration %d", i, r.Iter)
		}
	}

	// Corrupt both: ErrNoSnapshot.
	data, err = os.ReadFile(SnapPath(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(SnapPath(dir, 0), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadLatest(dir); err == nil {
		t.Error("LoadLatest with every snapshot damaged succeeded")
	}
}

func TestReadJournalsSinceSkipsOlderRecords(t *testing.T) {
	dir := t.TempDir()
	writeGen(t, dir, 0, 10)
	writeGen(t, dir, 10, 4)
	recs := ReadJournalsSince(dir, 10)
	if len(recs) != 4 {
		t.Fatalf("replay from 10 yields %d records, want 4", len(recs))
	}
	if recs[0].Iter != 10 || recs[3].Iter != 13 {
		t.Errorf("replay range %d..%d, want 10..13", recs[0].Iter, recs[3].Iter)
	}
}

// FuzzSnapshotDecode asserts the decoder never panics and never returns a
// payload that fails validation, no matter the input bytes.
func FuzzSnapshotDecode(f *testing.F) {
	valid, err := EncodeSnapshot([]byte(`{"counts":[1,2,3],"value":0.5}`))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(`{"version":1,"crc32":0,"payload":{}}`))
	f.Add([]byte(`{"version":99,"crc32":0,"payload":null}`))
	f.Add(valid[:len(valid)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		// Whatever decodes must be self-consistent: re-encoding and
		// re-decoding yields the same payload.
		again, err := EncodeSnapshot(payload)
		if err != nil {
			t.Fatalf("decoded payload does not re-encode: %v", err)
		}
		back, err := DecodeSnapshot(again)
		if err != nil {
			t.Fatalf("re-encoded snapshot does not decode: %v", err)
		}
		if string(back) != string(payload) {
			t.Fatalf("payload changed across re-encode: %s vs %s", payload, back)
		}
	})
}
