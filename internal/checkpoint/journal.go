package checkpoint

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"strings"
)

// Record is one completed tuning iteration in the write-ahead journal.
// Value carries the measurement for successes and the penalty value the
// tuner observed for failures; FailKind distinguishes the two (empty for
// success) so replay can route the record through ObserveFailure.
//
// Trial, Spec and Pinned were added for the concurrent trial engine
// (format version 2): Trial is the engine's lease ticket (0 for
// sequential tuners, whose journals have no ticket concept), Spec marks
// a speculative proposal that must not be replayed into the phase-one
// strategy, and Pinned marks a degradation-mode incumbent run that
// bypassed both phases. All three decode as zero values from version-1
// journals, which is exactly their sequential meaning.
// Drift sentinels (format version 3): a record with a non-empty Drift
// is not an observation but a journaled selector reset by core's drift
// watchdog — Algo and Config are empty, and Iter is the iteration count
// at the moment the reset fired. DriftSeq is the tuner's monotonic
// reset sequence number, which makes replay idempotent (a reset already
// inside the snapshot, or re-fired deterministically by the replayed
// stream, is skipped); DriftArm, DriftKeep, DriftProbes and DriftP1
// carry the reset parameters so replay re-applies it verbatim. Version
// ≤ 2 readers never see these fields; version-3 readers see them as
// zero values on old journals, i.e. "no drift".
type Record struct {
	Iter     int    `json:"iter"`
	Algo     string `json:"algo"`
	Config   []F    `json:"config"`
	Value    F      `json:"value"`
	FailKind string `json:"fail,omitempty"`
	Trial    uint64 `json:"trial,omitempty"`
	Spec     bool   `json:"spec,omitempty"`
	Pinned   bool   `json:"pinned,omitempty"`

	Drift       string `json:"drift,omitempty"`
	DriftSeq    uint64 `json:"dseq,omitempty"`
	DriftArm    int    `json:"darm,omitempty"`
	DriftKeep   F      `json:"dkeep,omitempty"`
	DriftProbes int    `json:"dprobes,omitempty"`
	DriftP1     bool   `json:"dp1,omitempty"`
}

// Drift sentinel kinds (Record.Drift).
const (
	DriftDecay  = "decay"
	DriftRefork = "refork"
)

// Journal is an append-only, fsync-per-append record of iterations
// completed since the last snapshot. Each line is
//
//	crc32hex <space> json-record <newline>
//
// so a torn final line (the common crash artifact) is detected and
// dropped by the reader rather than corrupting the replay.
type Journal struct {
	f *os.File
}

// OpenJournal opens (creating if absent) the journal for the generation
// starting at iteration iter, positioned for appending.
func OpenJournal(dir string, iter int) (*Journal, error) {
	f, err := os.OpenFile(WalPath(dir, iter), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{f: f}, nil
}

// Append writes one record and fsyncs, so an iteration acknowledged to
// the journal survives an immediate crash.
func (j *Journal) Append(rec Record) error {
	if err := j.AppendBuffered(rec); err != nil {
		return err
	}
	return j.f.Sync()
}

// AppendBuffered writes one record without fsyncing. Batch writers — the
// sharded engine folds a whole observation delta at once — append every
// record of the batch this way and then call Sync once, paying a single
// fsync per fold instead of one per trial. A crash between the write and
// the Sync loses at most the unsynced tail of the batch; the line CRC
// keeps a torn final record detectable either way.
func (j *Journal) AppendBuffered(rec Record) error {
	body, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line := fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(body), body)
	_, err = j.f.WriteString(line)
	return err
}

// Sync flushes previously buffered appends to stable storage.
func (j *Journal) Sync() error {
	if j == nil || j.f == nil {
		return nil
	}
	return j.f.Sync()
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	if j == nil || j.f == nil {
		return nil
	}
	return j.f.Close()
}

// ReadJournal returns the valid records of one journal file in order.
// Reading stops at the first damaged line — a bad checksum, unparsable
// JSON, or a missing CRC prefix — because everything after a torn write
// is untrustworthy. Blank lines are skipped (they can appear when an
// append was cut before the body). A missing file is an empty journal.
func ReadJournal(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()

	var recs []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var sum uint32
		sp := strings.IndexByte(line, ' ')
		if sp != 8 {
			break
		}
		if _, err := fmt.Sscanf(line[:sp], "%08x", &sum); err != nil {
			break
		}
		body := line[sp+1:]
		if crc32.ChecksumIEEE([]byte(body)) != sum {
			break
		}
		var rec Record
		if err := json.Unmarshal([]byte(body), &rec); err != nil {
			break
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// ReadJournalsSince collects the records of every journal generation
// starting at or after iter, in generation order, dropping records below
// iter. Chaining generations this way means a fallback to an older
// snapshot still replays the full tail: the journals between the old
// snapshot and the crash are all still on disk (pruning only removes
// journals older than the oldest kept snapshot).
func ReadJournalsSince(dir string, iter int) []Record {
	var recs []Record
	for _, g := range JournalGenerations(dir) {
		if g < iter {
			// An older generation can still contain records >= iter
			// when iter's own snapshot was corrupt and we fell back:
			// include its tail.
			rs, err := ReadJournal(WalPath(dir, g))
			if err != nil {
				continue
			}
			for _, r := range rs {
				if r.Iter >= iter {
					recs = append(recs, r)
				}
			}
			continue
		}
		rs, err := ReadJournal(WalPath(dir, g))
		if err != nil {
			continue
		}
		recs = append(recs, rs...)
	}
	// Defensive: records must be strictly increasing in Iter across the
	// chain; clip anything out of order (overlapping generations after
	// a partial prune). Drift sentinels are exempt — they share their
	// Iter with the observation that triggered them (and with the first
	// observation of a fresh generation), so the strict-monotonic rule
	// would silently drop them.
	out := recs[:0]
	last := iter - 1
	for _, r := range recs {
		if r.Drift != "" {
			out = append(out, r)
			continue
		}
		if r.Iter > last {
			out = append(out, r)
			last = r.Iter
		}
	}
	return out
}

// MaxJournalTrial scans every journal generation in dir for the highest
// trial ID ever journaled — including records already folded into a
// snapshot, which ReadJournalsSince filters out. Resume paths use it to
// keep fresh trial IDs disjoint from everything a previous incarnation
// issued.
func MaxJournalTrial(dir string) uint64 {
	var max uint64
	for _, g := range JournalGenerations(dir) {
		rs, err := ReadJournal(WalPath(dir, g))
		if err != nil {
			continue
		}
		for _, r := range rs {
			if r.Trial > max {
				max = r.Trial
			}
		}
	}
	return max
}
