package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// Version is the current snapshot format version. A loader refuses
// snapshots from a future version rather than misinterpreting them;
// older versions decode fine (every format change so far is additive).
// Version 2 added the trial-engine journal fields (Record.Trial/Spec/
// Pinned) and the quarantine failure-depth counter.
const Version = 2

// ErrNoSnapshot is returned by LoadLatest when the directory holds no
// readable snapshot at all.
var ErrNoSnapshot = errors.New("checkpoint: no valid snapshot")

// envelope is the on-disk frame around a snapshot payload. The CRC is
// computed over the raw payload bytes exactly as they appear in the
// file, so any torn write or bit flip inside the payload is detected.
type envelope struct {
	Version int             `json:"version"`
	CRC32   uint32          `json:"crc32"`
	Payload json.RawMessage `json:"payload"`
}

// EncodeSnapshot frames payload (already-marshaled JSON) in a versioned,
// checksummed envelope ready for WriteFileAtomic.
func EncodeSnapshot(payload []byte) ([]byte, error) {
	if !json.Valid(payload) {
		return nil, errors.New("checkpoint: snapshot payload is not valid JSON")
	}
	env := envelope{
		Version: Version,
		CRC32:   crc32.ChecksumIEEE(payload),
		Payload: json.RawMessage(payload),
	}
	return json.Marshal(env)
}

// DecodeSnapshot verifies the envelope and returns the payload bytes.
// It fails on malformed JSON, a version newer than this code, and any
// checksum mismatch.
func DecodeSnapshot(data []byte) ([]byte, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("checkpoint: snapshot frame: %v", err)
	}
	if env.Version <= 0 || env.Version > Version {
		return nil, fmt.Errorf("checkpoint: unsupported snapshot version %d", env.Version)
	}
	// An absent payload must not sneak through the checksum: the CRC of
	// zero bytes is zero, which a payload-less frame trivially "matches".
	if len(env.Payload) == 0 {
		return nil, errors.New("checkpoint: snapshot has no payload")
	}
	if got := crc32.ChecksumIEEE(env.Payload); got != env.CRC32 {
		return nil, fmt.Errorf("checkpoint: snapshot checksum mismatch (want %08x, got %08x)", env.CRC32, got)
	}
	return env.Payload, nil
}

// Snapshot and journal files are named by the iteration at which the
// snapshot was taken, zero-padded so lexical order is numeric order.
// wal-N.log records iterations completed at or after iteration N, i.e.
// since snap-N.ckpt was written.
const (
	snapPattern = "snap-%012d.ckpt"
	walPattern  = "wal-%012d.log"
	// keepSnapshots is how many snapshot generations survive pruning.
	// Two generations make the newest snapshot expendable: if it is
	// corrupt the loader falls back to the previous one and re-replays
	// the intervening journal.
	keepSnapshots = 2
)

// SnapPath returns the snapshot filename for a given iteration.
func SnapPath(dir string, iter int) string {
	return filepath.Join(dir, fmt.Sprintf(snapPattern, iter))
}

// WalPath returns the journal filename for the generation starting at
// the given iteration.
func WalPath(dir string, iter int) string {
	return filepath.Join(dir, fmt.Sprintf(walPattern, iter))
}

// WriteSnapshot frames payload and writes it atomically as the snapshot
// for iteration iter, then prunes generations beyond keepSnapshots. A
// journal for the new generation is NOT created here; the journal opens
// lazily on the first append.
func WriteSnapshot(dir string, iter int, payload []byte) error {
	data, err := EncodeSnapshot(payload)
	if err != nil {
		return err
	}
	if err := WriteFileAtomic(SnapPath(dir, iter), data, 0o644); err != nil {
		return err
	}
	prune(dir, iter)
	return nil
}

// listGenerations returns the snapshot iterations present in dir in
// ascending order. Files that do not match the naming pattern are
// ignored.
func listGenerations(dir string, pattern string) []int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var iters []int
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), pattern, &n); err == nil {
			iters = append(iters, n)
		}
	}
	sort.Ints(iters)
	return iters
}

// Generations returns the snapshot iterations present in dir, ascending.
func Generations(dir string) []int { return listGenerations(dir, snapPattern) }

// JournalGenerations returns the journal-file start iterations in dir,
// ascending.
func JournalGenerations(dir string) []int { return listGenerations(dir, walPattern) }

// prune removes snapshot generations older than the keepSnapshots most
// recent, along with journal files older than the oldest kept snapshot
// (their contents are fully covered by newer snapshots).
func prune(dir string, newest int) {
	snaps := Generations(dir)
	if len(snaps) <= keepSnapshots {
		return
	}
	cut := snaps[len(snaps)-keepSnapshots] // oldest kept generation
	for _, n := range snaps {
		if n < cut {
			os.Remove(SnapPath(dir, n))
		}
	}
	for _, n := range JournalGenerations(dir) {
		if n < cut {
			os.Remove(WalPath(dir, n))
		}
	}
}

// LoadLatest returns the payload and iteration of the newest snapshot in
// dir that passes validation, falling back through older generations
// when the newest is truncated or fails its checksum. The error is
// ErrNoSnapshot when nothing loads; otherwise the error from the newest
// failed candidate is folded into the message for diagnosis.
func LoadLatest(dir string) (payload []byte, iter int, err error) {
	snaps := Generations(dir)
	var firstErr error
	for i := len(snaps) - 1; i >= 0; i-- {
		data, rerr := os.ReadFile(SnapPath(dir, snaps[i]))
		if rerr != nil {
			if firstErr == nil {
				firstErr = rerr
			}
			continue
		}
		p, derr := DecodeSnapshot(data)
		if derr != nil {
			if firstErr == nil {
				firstErr = derr
			}
			continue
		}
		return p, snaps[i], nil
	}
	if firstErr != nil {
		return nil, 0, fmt.Errorf("%w (newest candidate: %v)", ErrNoSnapshot, firstErr)
	}
	return nil, 0, ErrNoSnapshot
}
