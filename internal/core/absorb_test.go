package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/nominal"
)

// TestAbsorbFeedsSelectorAndBest absorbs a one-sided observation stream
// and checks it reaches the selector (selection shifts to the absorbed
// arm), the global best, the counts, and the stats counter — while
// phase one stays untouched, exactly like speculative completions.
func TestAbsorbFeedsSelectorAndBest(t *testing.T) {
	ct := newEngine(t, 11)
	// Absorb a strongly winning stream for arm 2 and a failure for arm 0.
	obs := make([]nominal.Observation, 0, 41)
	for i := 0; i < 40; i++ {
		obs = append(obs, nominal.Observation{Arm: 2, Value: 0.5})
	}
	obs = append(obs, nominal.Observation{Arm: 0, Value: 99, Failed: true})
	// Out-of-range and non-finite observations must be skipped.
	obs = append(obs,
		nominal.Observation{Arm: -1, Value: 1},
		nominal.Observation{Arm: 99, Value: 1},
		nominal.Observation{Arm: 1, Value: math.NaN()},
	)
	if got := ct.Absorb(obs); got != 41 {
		t.Fatalf("Absorb applied %d, want 41", got)
	}
	if got := ct.Absorb(nil); got != 0 {
		t.Fatalf("Absorb(nil) = %d, want 0", got)
	}

	algo, _, val := ct.Best()
	if algo != 2 || val != 0.5 {
		t.Fatalf("Best = (%d, %g), want (2, 0.5)", algo, val)
	}
	if it := ct.Iterations(); it != 41 {
		t.Fatalf("Iterations = %d, want 41", it)
	}
	st := ct.Stats()
	if st.Absorbed != 41 || st.Leased != 0 || st.Completed != 0 {
		t.Fatalf("Stats = %+v, want Absorbed=41 and no leases", st)
	}
	fs := ct.FailureStats()
	if fs.Total != 1 || fs.Invalids != 1 {
		t.Fatalf("FailureStats = %+v, want one invalid failure", fs)
	}
	counts := ct.Counts()
	if counts[2] != 40 || counts[0] != 1 {
		t.Fatalf("Counts = %v, want 40 on arm 2 and 1 on arm 0", counts)
	}

	// The selector must have learned: with epsilon 0.1, arm 2 wins the
	// overwhelming majority of subsequent selections.
	picked := 0
	for i := 0; i < 200; i++ {
		tr, err := ct.Lease()
		if err != nil {
			t.Fatal(err)
		}
		if tr.Algo == 2 {
			picked++
		}
		ct.Complete(tr.ID, engineMeasure(tr.Algo, tr.Config))
	}
	if picked < 120 {
		t.Fatalf("absorbed stream did not steer selection: arm 2 picked %d/200", picked)
	}
}

// TestAbsorbJournaled checks absorbed observations are journaled under
// fresh unique trial IDs and replayed by ResumeConcurrent.
func TestAbsorbJournaled(t *testing.T) {
	dir := t.TempDir()
	ct := newEngine(t, 5, WithCheckpoint(dir, 0))
	for i := 0; i < 10; i++ {
		tr, err := ct.Lease()
		if err != nil {
			t.Fatal(err)
		}
		ct.Complete(tr.ID, engineMeasure(tr.Algo, tr.Config))
	}
	obs := []nominal.Observation{{Arm: 1, Value: 0.25}, {Arm: 3, Value: 7}, {Arm: 1, Value: 42, Failed: true}}
	if got := ct.Absorb(obs); got != 3 {
		t.Fatalf("Absorb applied %d, want 3", got)
	}
	if err := ct.CheckpointErr(); err != nil {
		t.Fatal(err)
	}

	// Journal audit: 13 records, unique trial IDs.
	var recs []checkpoint.Record
	for _, g := range checkpoint.JournalGenerations(dir) {
		rs, err := checkpoint.ReadJournal(checkpoint.WalPath(dir, g))
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rs...)
	}
	if len(recs) != 13 {
		t.Fatalf("journal holds %d records, want 13", len(recs))
	}
	seen := make(map[uint64]bool)
	for _, r := range recs {
		if seen[r.Trial] {
			t.Fatalf("trial ID %d journaled twice", r.Trial)
		}
		seen[r.Trial] = true
	}

	// Resume must replay the absorbed records (as speculative: selector
	// and best, not phase one) and issue fresh IDs above them.
	rt, err := ResumeConcurrent(dir, 0, engineAlgos(), nominal.NewEpsilonGreedy(0.10), nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rt.Iterations(), ct.Iterations(); got != want {
		t.Fatalf("resumed Iterations = %d, want %d", got, want)
	}
	algo, _, val := rt.Best()
	if algo != 1 || val != 0.25 {
		t.Fatalf("resumed Best = (%d, %g), want the absorbed (1, 0.25)", algo, val)
	}
	tr, err := rt.Lease()
	if err != nil {
		t.Fatal(err)
	}
	if seen[tr.ID] {
		t.Fatalf("resumed engine re-issued journaled trial ID %d", tr.ID)
	}
}

// TestAbsorbSharded checks the sharded path: absorbed observations
// reach the authoritative selector immediately and every shard replica
// at its next fold.
func TestAbsorbSharded(t *testing.T) {
	eng, err := NewShardedEngine(engineAlgos(), nominal.NewEpsilonGreedy(0.05), nil, 9,
		WithShards(4), WithMergeEvery(4))
	if err != nil {
		t.Fatal(err)
	}
	obs := make([]nominal.Observation, 0, 60)
	for i := 0; i < 60; i++ {
		obs = append(obs, nominal.Observation{Arm: 3, Value: 0.125})
	}
	if got := eng.Absorb(obs); got != 60 {
		t.Fatalf("Absorb applied %d, want 60", got)
	}
	if st := eng.Stats(); st.Absorbed != 60 {
		t.Fatalf("Stats.Absorbed = %d, want 60", st.Absorbed)
	}
	algo, _, val := eng.Best()
	if algo != 3 || val != 0.125 {
		t.Fatalf("Best = (%d, %g), want (3, 0.125)", algo, val)
	}
	// Drive every shard through folds; the replicas must have replayed
	// the absorbed stream, steering selection toward arm 3.
	eng.RunPool(8, 400, engineMeasure)
	counts := eng.Counts()
	if counts[3] < 250 {
		t.Fatalf("replicas did not absorb the stream: counts = %v", counts)
	}
}

// TestAliveDoesNotExtend checks Alive reports liveness without
// extending lease deadlines, on both engine variants.
func TestAliveDoesNotExtend(t *testing.T) {
	now := time.Now()
	clock := func() time.Time { return now }
	ct := newEngine(t, 3, WithLeaseTimeout(50*time.Millisecond))
	ct.now = clock

	tr, err := ct.Lease()
	if err != nil {
		t.Fatal(err)
	}
	if alive := ct.Alive([]uint64{tr.ID, tr.ID + 999}); !alive[0] || alive[1] {
		t.Fatalf("Alive = %v, want [true false]", alive)
	}
	// Advance past the original deadline: had Alive extended it (as
	// Heartbeat does), the lease would survive this sweep.
	now = now.Add(60 * time.Millisecond)
	if n := ct.ReclaimExpired(); n != 1 {
		t.Fatalf("reclaimed %d leases after Alive, want 1 (Alive must not extend)", n)
	}
	if alive := ct.Alive([]uint64{tr.ID}); alive[0] {
		t.Fatal("reclaimed lease still reported alive")
	}

	// Sharded: liveness routes to the owning shard.
	eng, err := NewShardedEngine(engineAlgos(), nominal.NewEpsilonGreedy(0.10), nil, 4, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	str, err := eng.Lease()
	if err != nil {
		t.Fatal(err)
	}
	if alive := eng.Alive([]uint64{str.ID, 1}); !alive[0] || alive[1] {
		t.Fatalf("sharded Alive = %v, want [true false]", alive)
	}
}

// TestEngineCheckpoint checks the forced snapshot path used by drain.
func TestEngineCheckpoint(t *testing.T) {
	if err := newEngine(t, 1).Checkpoint(); err != nil {
		t.Fatalf("Checkpoint without WithCheckpoint = %v, want nil", err)
	}
	dir := t.TempDir()
	ct := newEngine(t, 2, WithCheckpoint(dir, 0))
	for i := 0; i < 5; i++ {
		tr, err := ct.Lease()
		if err != nil {
			t.Fatal(err)
		}
		ct.Complete(tr.ID, engineMeasure(tr.Algo, tr.Config))
	}
	if err := ct.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The forced snapshot must cover all five iterations: a resume
	// without any journal tail lands exactly there.
	rt, err := ResumeConcurrent(dir, 0, engineAlgos(), nominal.NewEpsilonGreedy(0.10), nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Iterations() != 5 {
		t.Fatalf("resumed at iteration %d, want 5", rt.Iterations())
	}
}
