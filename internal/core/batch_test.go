package core

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/guard"
)

// TestBatchSequentialParity is the LeaseN/CompleteN/FailN contract: a
// batch call must be observationally identical to the same sequence of
// single calls. Two engines with equal seeds run the same schedule —
// lease k, complete/fail k — one through the slice APIs, one through
// repeated Lease/Complete/Fail, and every piece of decision state they
// expose must match.
func TestBatchSequentialParity(t *testing.T) {
	const rounds, batch = 40, 8
	single := newEngine(t, 11)
	batched := newEngine(t, 11)

	for r := 0; r < rounds; r++ {
		var sTrials []Trial
		for i := 0; i < batch; i++ {
			tr, err := single.Lease()
			if err != nil {
				t.Fatal(err)
			}
			sTrials = append(sTrials, tr)
		}
		bTrials, err := batched.LeaseN(batch)
		if err != nil {
			t.Fatal(err)
		}
		if len(bTrials) != batch {
			t.Fatalf("round %d: LeaseN leased %d trials, want %d", r, len(bTrials), batch)
		}
		for i := range bTrials {
			if bTrials[i].Algo != sTrials[i].Algo || !bTrials[i].Config.Equal(sTrials[i].Config) ||
				bTrials[i].Speculative != sTrials[i].Speculative {
				t.Fatalf("round %d slot %d: batch leased (%d, %v, spec=%v), single leased (%d, %v, spec=%v)",
					r, i, bTrials[i].Algo, bTrials[i].Config, bTrials[i].Speculative,
					sTrials[i].Algo, sTrials[i].Config, sTrials[i].Speculative)
			}
		}

		// Every 4th round fails the last slot; the rest complete.
		failLast := r%4 == 3
		var results []TrialResult
		var fails []TrialFailure
		for i, tr := range bTrials {
			if failLast && i == batch-1 {
				fails = append(fails, TrialFailure{ID: tr.ID, Failure: guard.Failure{Kind: guard.Panic, Err: errors.New("boom")}})
				continue
			}
			results = append(results, TrialResult{ID: tr.ID, Value: engineMeasure(tr.Algo, tr.Config)})
		}
		for i, tr := range sTrials {
			if failLast && i == batch-1 {
				if err := single.Fail(tr.ID, guard.Failure{Kind: guard.Panic, Err: errors.New("boom")}); err != nil {
					t.Fatal(err)
				}
				continue
			}
			if err := single.Complete(tr.ID, engineMeasure(tr.Algo, tr.Config)); err != nil {
				t.Fatal(err)
			}
		}
		for i, err := range batched.CompleteN(results) {
			if err != nil {
				t.Fatalf("round %d: CompleteN[%d]: %v", r, i, err)
			}
		}
		for i, err := range batched.FailN(fails) {
			if err != nil {
				t.Fatalf("round %d: FailN[%d]: %v", r, i, err)
			}
		}
	}

	if a, b := single.Iterations(), batched.Iterations(); a != b {
		t.Fatalf("iterations diverge: single %d, batched %d", a, b)
	}
	sc, bc := single.Counts(), batched.Counts()
	for i := range sc {
		if sc[i] != bc[i] {
			t.Fatalf("counts diverge at algo %d: single %v, batched %v", i, sc, bc)
		}
	}
	sa, scfg, sv := single.Best()
	ba, bcfg, bv := batched.Best()
	if sa != ba || sv != bv || !scfg.Equal(bcfg) {
		t.Fatalf("best diverges: single (%d, %v, %v), batched (%d, %v, %v)", sa, scfg, sv, ba, bcfg, bv)
	}
	ss, bs := single.Stats(), batched.Stats()
	if ss != bs {
		t.Fatalf("stats diverge: single %+v, batched %+v", ss, bs)
	}
	sh, bh := single.History(), batched.History()
	if len(sh) != len(bh) {
		t.Fatalf("history lengths diverge: %d vs %d", len(sh), len(bh))
	}
	for i := range sh {
		if sh[i].Algo != bh[i].Algo || sh[i].Value != bh[i].Value || sh[i].Failed != bh[i].Failed {
			t.Fatalf("history diverges at %d: %+v vs %+v", i, sh[i], bh[i])
		}
	}
}

// TestLeaseNPartialUnderMaxInFlight: the batch is cut at the in-flight
// cap, and an empty batch surfaces ErrTooManyInFlight.
func TestLeaseNPartialUnderMaxInFlight(t *testing.T) {
	ct := newEngine(t, 12, WithMaxInFlight(3))
	trials, err := ct.LeaseN(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 3 {
		t.Fatalf("LeaseN(8) leased %d under a cap of 3", len(trials))
	}
	if _, err := ct.LeaseN(2); !errors.Is(err, ErrTooManyInFlight) {
		t.Fatalf("LeaseN at the cap = %v, want ErrTooManyInFlight", err)
	}
	if trials, err := ct.LeaseN(0); trials != nil || err != nil {
		t.Fatalf("LeaseN(0) = (%v, %v), want (nil, nil)", trials, err)
	}
	if err := ct.Complete(trials[0].ID, 1); err != nil {
		t.Fatal(err)
	}
}

// TestHeartbeatExtendsLease: a heartbeat pushes the deadline out, so a
// slow-but-alive worker is never reclaimed; a trial that was already
// finished reports dead.
func TestHeartbeatExtendsLease(t *testing.T) {
	ct := newEngine(t, 13, WithLeaseTimeout(time.Second))
	now := time.Unix(5000, 0)
	ct.now = func() time.Time { return now }

	trials, err := ct.LeaseN(2)
	if err != nil {
		t.Fatal(err)
	}
	// 10 heartbeat periods of 0.6s each: without extension the 1s lease
	// would expire at the second period.
	for i := 0; i < 10; i++ {
		now = now.Add(600 * time.Millisecond)
		alive := ct.Heartbeat([]uint64{trials[0].ID, trials[1].ID, 999})
		if !alive[0] || !alive[1] {
			t.Fatalf("period %d: live leases reported dead: %v", i, alive)
		}
		if alive[2] {
			t.Fatal("unknown trial reported alive")
		}
	}
	if st := ct.Stats(); st.Expired != 0 {
		t.Fatalf("heartbeated leases expired: %+v", st)
	}
	// Stop heartbeating: the next sweep past deadline reclaims both.
	now = now.Add(2 * time.Second)
	if n := ct.ReclaimExpired(); n != 2 {
		t.Fatalf("reclaimed %d after heartbeats stopped, want 2", n)
	}
	alive := ct.Heartbeat([]uint64{trials[0].ID})
	if alive[0] {
		t.Fatal("reclaimed trial reported alive by Heartbeat")
	}
}

// TestLateBatchCompletionDropped is the reclaim/complete race contract:
// a CompleteN (or FailN) arriving after its trial's lease was reclaimed
// is acknowledged per entry as ErrUnknownTrial and dropped — the batch
// itself succeeds, live entries still apply, and the reclaimed trial is
// charged exactly once (as a timeout).
func TestLateBatchCompletionDropped(t *testing.T) {
	ct := newEngine(t, 14, WithLeaseTimeout(time.Second))
	now := time.Unix(9000, 0)
	ct.now = func() time.Time { return now }

	trials, err := ct.LeaseN(2)
	if err != nil {
		t.Fatal(err)
	}
	// Heartbeat only the second trial; the first expires.
	now = now.Add(700 * time.Millisecond)
	ct.Heartbeat([]uint64{trials[1].ID})
	now = now.Add(700 * time.Millisecond)

	errs := ct.CompleteN([]TrialResult{
		{ID: trials[0].ID, Value: 1.0},
		{ID: trials[1].ID, Value: 2.0},
	})
	if !errors.Is(errs[0], ErrUnknownTrial) {
		t.Fatalf("late completion of the expired trial = %v, want ErrUnknownTrial", errs[0])
	}
	if errs[1] != nil {
		t.Fatalf("live completion in the same batch = %v", errs[1])
	}
	st := ct.Stats()
	if st.Expired != 1 || st.Completed != 1 || st.Failed != 0 {
		t.Fatalf("stats after late batch: %+v, want 1 expired + 1 completed", st)
	}
	if ct.Iterations() != 2 {
		t.Fatalf("Iterations() = %d, want 2 (each trial charged exactly once)", ct.Iterations())
	}

	// FailN of an already-reclaimed trial is likewise a drop.
	if errs := ct.FailN([]TrialFailure{{ID: trials[0].ID, Failure: guard.Failure{Kind: guard.Panic}}}); !errors.Is(errs[0], ErrUnknownTrial) {
		t.Fatalf("late FailN = %v, want ErrUnknownTrial", errs[0])
	}
}

// TestReclaimCompleteRace races heartbeat-less expired leases against
// in-flight CompleteN batches from many goroutines. Whatever the
// interleaving, every trial must finish exactly once: completed when the
// batch won the race, expired when the reclaimer did, never both and
// never neither.
func TestReclaimCompleteRace(t *testing.T) {
	const rounds, batch = 60, 4
	ct := newEngine(t, 15, WithLeaseTimeout(time.Millisecond))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Aggressive reclaimer, sweeping concurrently with completions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				ct.ReclaimExpired()
			}
		}
	}()

	var dropped, applied int
	for r := 0; r < rounds; r++ {
		trials, err := ct.LeaseN(batch)
		if err != nil {
			t.Fatal(err)
		}
		// Half the rounds dawdle past the 1ms deadline so the reclaimer
		// wins some races; the other half complete immediately.
		if r%2 == 1 {
			time.Sleep(3 * time.Millisecond)
		}
		results := make([]TrialResult, len(trials))
		for i, tr := range trials {
			results[i] = TrialResult{ID: tr.ID, Value: engineMeasure(tr.Algo, tr.Config)}
		}
		for i, err := range ct.CompleteN(results) {
			switch {
			case err == nil:
				applied++
			case errors.Is(err, ErrUnknownTrial):
				dropped++
			default:
				t.Fatalf("round %d slot %d: CompleteN: %v", r, i, err)
			}
		}
	}
	close(stop)
	wg.Wait()

	// Drain any leases the reclaimer has not swept yet.
	deadline := time.Now().Add(5 * time.Second)
	for ct.InFlight() > 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
		ct.ReclaimExpired()
	}

	const total = rounds * batch
	st := ct.Stats()
	if st.Leased != total {
		t.Fatalf("leased %d, want %d", st.Leased, total)
	}
	if got := st.Completed + st.Expired; got != total {
		t.Fatalf("completed %d + expired %d = %d, want %d (every trial exactly once)",
			st.Completed, st.Expired, got, total)
	}
	if uint64(applied) != st.Completed {
		t.Fatalf("CompleteN applied %d, engine counted %d completions", applied, st.Completed)
	}
	if uint64(dropped) != st.Expired {
		t.Fatalf("CompleteN dropped %d, engine expired %d", dropped, st.Expired)
	}
	if ct.Iterations() != total {
		t.Fatalf("Iterations() = %d, want %d", ct.Iterations(), total)
	}
	if algo, _, val := ct.Best(); algo < 0 || math.IsInf(val, 1) {
		t.Fatalf("no best after %d trials", total)
	}
}
