package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"repro/internal/checkpoint"
	"repro/internal/guard"
	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/search"
	"repro/internal/xrand"
)

// WithCheckpoint enables crash-safe persistence: the tuner writes a
// snapshot of its complete state to dir every `every` completed
// iterations, and journals every iteration in between, so Resume can
// reconstruct the tuner losing at most the in-flight iteration. An
// `every` of 0 disables periodic snapshots (the journal alone still
// makes every completed iteration recoverable from the initial
// snapshot).
//
// Checkpoint I/O failures after construction never interrupt tuning;
// they are recorded and exposed through CheckpointErr.
func WithCheckpoint(dir string, every int) Option {
	return tunerOption("WithCheckpoint", func(t *Tuner) {
		t.ckptDir = dir
		t.ckptEvery = every
	})
}

// CheckpointErr returns the most recent checkpoint I/O error, or nil.
// A non-nil value means durability is degraded (tuning continues, but a
// crash may lose more than one iteration). The error is sticky: it is
// cleared only when a subsequent periodic snapshot completes, because a
// snapshot is the only operation that proves the directory is writable
// again (journal appends keep "succeeding" against an unlinked file).
func (t *Tuner) CheckpointErr() error { return t.ckptErr }

// CheckpointDir returns the checkpoint directory ("" when disabled).
func (t *Tuner) CheckpointDir() string { return t.ckptDir }

// tunerState is the snapshot payload: everything needed to resume the
// tuner mid-search. Full iteration history and per-algorithm timelines
// are intentionally not persisted (only a bounded tail is) — they are
// diagnostics, not decision state, and would make snapshots O(run
// length).
type tunerState struct {
	Algos    []string       `json:"algos"`
	RngSeed  int64          `json:"rng_seed"`
	RngDrawn uint64         `json:"rng_drawn"`
	Counts   []int          `json:"counts"`
	BestAlgo int            `json:"best_algo"`
	BestCfg  []checkpoint.F `json:"best_cfg,omitempty"`
	BestVal  checkpoint.F   `json:"best_val"`
	WorstVal checkpoint.F   `json:"worst_val"`

	Selector   json.RawMessage   `json:"selector"`
	Strategies []json.RawMessage `json:"strategies"`
	Guard      json.RawMessage   `json:"guard,omitempty"`

	FailTotal   int   `json:"fail_total"`
	FailPanics  int   `json:"fail_panics"`
	FailTimeout int   `json:"fail_timeout"`
	FailInvalid int   `json:"fail_invalid"`
	FailPerAlgo []int `json:"fail_per_algo"`

	LastValue  checkpoint.F `json:"last_value"`
	LastFailed bool         `json:"last_failed"`

	Recent      []bool `json:"recent,omitempty"`
	RecentIdx   int    `json:"recent_idx"`
	RecentFill  int    `json:"recent_fill"`
	RecentFails int    `json:"recent_fails"`
	Degraded    bool   `json:"degraded"`
	PinnedIters int    `json:"pinned_iters"`

	HistoryTail []recState `json:"history_tail,omitempty"`

	Drift *driftState `json:"drift,omitempty"`
}

// driftState is the drift watchdog's snapshot payload: the reset
// sequence number, the still-pending re-probe queue, and the counters.
// Detector internals (Page–Hinkley sums, ADWIN buckets) are advisory
// warm-up state and deliberately not persisted; a resumed watchdog
// starts its detectors cold and relies on journaled sentinels for any
// reset in the replayed tail.
type driftState struct {
	Seq             uint64 `json:"seq,omitempty"`
	ProbeQ          []int  `json:"probe_q,omitempty"`
	Cooldown        int    `json:"cooldown,omitempty"`
	Events          uint64 `json:"events,omitempty"`
	Decays          uint64 `json:"decays,omitempty"`
	Reforks         uint64 `json:"reforks,omitempty"`
	ProbesScheduled uint64 `json:"probes_scheduled,omitempty"`
	Outliers        uint64 `json:"outliers,omitempty"`
	Stale           uint64 `json:"stale,omitempty"`
}

type recState struct {
	Iteration int            `json:"iteration"`
	Algo      int            `json:"algo"`
	Config    []checkpoint.F `json:"config"`
	Value     checkpoint.F   `json:"value"`
	Failed    bool           `json:"failed"`
}

// stateHistoryTail bounds how many iteration records a snapshot keeps.
const stateHistoryTail = 64

// ExportState serializes the tuner's complete resumable state. It must
// be called at an iteration boundary (no observation pending).
func (t *Tuner) ExportState() ([]byte, error) {
	if t.pending {
		return nil, fmt.Errorf("core: ExportState with an observation pending")
	}
	seed, drawn := t.src.State()
	st := tunerState{
		Algos:       make([]string, len(t.algos)),
		RngSeed:     seed,
		RngDrawn:    drawn,
		Counts:      append([]int(nil), t.counts...),
		BestAlgo:    t.bestAlgo,
		BestCfg:     checkpoint.Floats(t.bestCfg),
		BestVal:     checkpoint.F(t.bestVal),
		WorstVal:    checkpoint.F(t.worstVal),
		Strategies:  make([]json.RawMessage, len(t.strategies)),
		FailTotal:   t.failTotal,
		FailPanics:  t.failPanics,
		FailTimeout: t.failTimeout,
		FailInvalid: t.failInvalid,
		FailPerAlgo: append([]int(nil), t.failPerAlgo...),
		LastValue:   checkpoint.F(t.lastValue),
		LastFailed:  t.lastFailed,
		Recent:      append([]bool(nil), t.recent...),
		RecentIdx:   t.recentIdx,
		RecentFill:  t.recentFill,
		RecentFails: t.recentFails,
		Degraded:    t.degraded,
		PinnedIters: t.pinnedIters,
	}
	for i, a := range t.algos {
		st.Algos[i] = a.Name
	}
	sel, ok := t.selector.(nominal.Stateful)
	if !ok {
		return nil, fmt.Errorf("core: selector %s is not checkpointable", t.selector.Name())
	}
	raw, err := sel.Export()
	if err != nil {
		return nil, fmt.Errorf("core: exporting selector: %w", err)
	}
	st.Selector = raw
	for i, s := range t.strategies {
		ss, ok := s.(search.Stateful)
		if !ok {
			return nil, fmt.Errorf("core: strategy %s is not checkpointable", s.Name())
		}
		raw, err := ss.Export()
		if err != nil {
			return nil, fmt.Errorf("core: exporting strategy for %q: %w", t.algos[i].Name, err)
		}
		st.Strategies[i] = raw
	}
	if t.guard != nil {
		raw, err := t.guard.Export()
		if err != nil {
			return nil, fmt.Errorf("core: exporting guard: %w", err)
		}
		st.Guard = raw
	}
	if t.driftSeq > 0 || t.drift != nil {
		ds := &driftState{Seq: t.driftSeq}
		if d := t.drift; d != nil {
			ds.ProbeQ = append([]int(nil), d.probeQ...)
			ds.Cooldown = d.cooldown
			ds.Events = d.events
			ds.Decays = d.decays
			ds.Reforks = d.reforks
			ds.ProbesScheduled = d.probesScheduled
			ds.Outliers = d.outliers
			ds.Stale = d.staleDrops
		}
		st.Drift = ds
	}
	tail := t.history
	if len(tail) > stateHistoryTail {
		tail = tail[len(tail)-stateHistoryTail:]
	}
	st.HistoryTail = make([]recState, len(tail))
	for i, r := range tail {
		st.HistoryTail[i] = recState{
			Iteration: r.Iteration, Algo: r.Algo,
			Config: checkpoint.Floats(r.Config),
			Value:  checkpoint.F(r.Value), Failed: r.Failed,
		}
	}
	return json.Marshal(st)
}

// RestoreState overwrites a freshly constructed tuner's state with a
// snapshot payload. The tuner must have been built by New with the same
// algorithms, selector type, strategy factory and options as the one
// that wrote the snapshot.
func (t *Tuner) RestoreState(payload []byte) error {
	if t.pending {
		return fmt.Errorf("core: RestoreState with an observation pending")
	}
	var st tunerState
	if err := json.Unmarshal(payload, &st); err != nil {
		return fmt.Errorf("core: snapshot payload: %v", err)
	}
	if len(st.Algos) != len(t.algos) {
		return fmt.Errorf("core: snapshot has %d algorithms, tuner has %d", len(st.Algos), len(t.algos))
	}
	for i, name := range st.Algos {
		if name != t.algos[i].Name {
			return fmt.Errorf("core: snapshot algorithm %d is %q, tuner has %q", i, name, t.algos[i].Name)
		}
	}
	if len(st.Counts) != len(t.algos) || len(st.FailPerAlgo) != len(t.algos) || len(st.Strategies) != len(t.algos) {
		return fmt.Errorf("core: snapshot per-algorithm state does not match %d algorithms", len(t.algos))
	}
	if st.BestAlgo < -1 || st.BestAlgo >= len(t.algos) {
		return fmt.Errorf("core: snapshot best algorithm %d out of range", st.BestAlgo)
	}
	sel, ok := t.selector.(nominal.Stateful)
	if !ok {
		return fmt.Errorf("core: selector %s is not checkpointable", t.selector.Name())
	}
	if err := sel.Restore(st.Selector); err != nil {
		return fmt.Errorf("core: restoring selector: %w", err)
	}
	for i, s := range t.strategies {
		ss, ok := s.(search.Stateful)
		if !ok {
			return fmt.Errorf("core: strategy %s is not checkpointable", s.Name())
		}
		if err := ss.Restore(st.Strategies[i]); err != nil {
			return fmt.Errorf("core: restoring strategy for %q: %w", t.algos[i].Name, err)
		}
	}
	if t.guard != nil && st.Guard != nil {
		if err := t.guard.Restore(st.Guard); err != nil {
			return fmt.Errorf("core: restoring guard: %w", err)
		}
	}
	t.src = xrand.Restore(st.RngSeed, st.RngDrawn)
	t.rng = t.src.Rand()
	t.seed = st.RngSeed
	copy(t.counts, st.Counts)
	t.bestAlgo = st.BestAlgo
	t.bestCfg = param.Config(checkpoint.Unfloats(st.BestCfg))
	t.bestVal = float64(st.BestVal)
	t.worstVal = float64(st.WorstVal)
	t.failTotal = st.FailTotal
	t.failPanics = st.FailPanics
	t.failTimeout = st.FailTimeout
	t.failInvalid = st.FailInvalid
	copy(t.failPerAlgo, st.FailPerAlgo)
	t.lastValue = float64(st.LastValue)
	t.lastFailed = st.LastFailed
	// The watchdog ring is only restored when its geometry matches the
	// tuner's configuration; a changed window starts the watchdog fresh.
	if t.watchWindow > 0 && len(st.Recent) == t.watchWindow {
		t.recent = append([]bool(nil), st.Recent...)
		t.recentIdx = st.RecentIdx
		t.recentFill = st.RecentFill
		t.recentFails = st.RecentFails
		t.degraded = st.Degraded
	} else {
		t.recent = nil
		t.recentIdx, t.recentFill, t.recentFails = 0, 0, 0
		t.degraded = st.Degraded && st.RecentFill > 0
	}
	t.pinnedIters = st.PinnedIters
	if ds := st.Drift; ds != nil {
		t.driftSeq = ds.Seq
		if d := t.drift; d != nil {
			d.probeQ = append(d.probeQ[:0], ds.ProbeQ...)
			d.cooldown = ds.Cooldown
			d.events = ds.Events
			d.decays = ds.Decays
			d.reforks = ds.Reforks
			d.probesScheduled = ds.ProbesScheduled
			d.outliers = ds.Outliers
			d.staleDrops = ds.Stale
		}
	}
	if t.keepHistory {
		t.history = t.history[:0]
		for _, r := range st.HistoryTail {
			t.history = append(t.history, Record{
				Iteration: r.Iteration, Algo: r.Algo,
				Config: param.Config(checkpoint.Unfloats(r.Config)),
				Value:  float64(r.Value), Failed: r.Failed,
			})
		}
	}
	return nil
}

// initCheckpoint creates the checkpoint directory and writes the
// initial snapshot; called from New when WithCheckpoint is set. Unlike
// later periodic snapshots, a failure here is fatal: a tuner that was
// asked to be durable but cannot write its directory should not start.
func (t *Tuner) initCheckpoint() error {
	if err := os.MkdirAll(t.ckptDir, 0o755); err != nil {
		return fmt.Errorf("core: checkpoint dir: %w", err)
	}
	return t.snapshotNow()
}

// snapshotNow writes a snapshot at the current iteration and starts a
// new journal generation.
func (t *Tuner) snapshotNow() error {
	payload, err := t.ExportState()
	if err != nil {
		return err
	}
	iter := t.Iterations()
	if err := checkpoint.WriteSnapshot(t.ckptDir, iter, payload); err != nil {
		return err
	}
	t.journal.Close()
	t.journal = nil // reopened lazily at the new generation
	t.ckptGen = iter
	return nil
}

// checkpointObserve is called from applyCompletion for every completed
// iteration: it journals the record and takes the periodic snapshot.
// Failures are absorbed into ckptErr — persistence must never take the
// tuning loop down with it.
func (t *Tuner) checkpointObserve(iter int, c completion) {
	if t.journal == nil {
		j, err := checkpoint.OpenJournal(t.ckptDir, t.ckptGen)
		if err != nil {
			t.ckptErr = err
			return
		}
		t.journal = j
	}
	rec := checkpoint.Record{
		Iter:   iter,
		Algo:   t.algos[c.algo].Name,
		Config: checkpoint.Floats(c.cfg),
		Value:  checkpoint.F(c.value),
		Trial:  c.trial,
		Spec:   c.spec,
		Pinned: c.pinned,
	}
	if c.fail != nil {
		rec.FailKind = c.fail.Kind.String()
	}
	var err error
	if t.journalBatch {
		// Batch writers (the sharded engine's fold) append the whole
		// delta unsynced and fsync once via journalSync.
		err = t.journal.AppendBuffered(rec)
	} else {
		err = t.journal.Append(rec)
	}
	if err != nil {
		t.ckptErr = err
		return
	}
	if t.ckptEvery > 0 && (iter+1)%t.ckptEvery == 0 {
		if err := t.snapshotNow(); err != nil {
			t.ckptErr = err
			return
		}
		// Only a fully written snapshot clears a degraded flag: journal
		// appends can "succeed" against an unlinked file long after the
		// checkpoint directory is gone.
		t.ckptErr = nil
	}
}

// journalSync flushes journal appends buffered while journalBatch was
// set. No-op without an open journal (including right after a snapshot
// rotated generations, which fsyncs through WriteSnapshot anyway).
func (t *Tuner) journalSync() {
	if t.journal == nil {
		return
	}
	if err := t.journal.Sync(); err != nil {
		t.ckptErr = err
	}
}

// Resume reconstructs a checkpointed tuner from dir: it builds a fresh
// tuner exactly as New would (same algorithms, selector, factory, seed
// and options), loads the newest valid snapshot — falling back to the
// previous generation when the newest is truncated or corrupt — and
// replays the write-ahead journal through the normal Next/Observe path,
// so the resumed tuner is in the exact state of the crashed one up to
// its last journaled iteration. At most the single in-flight iteration
// of the crashed process is lost.
//
// The returned tuner has checkpointing enabled on dir with the given
// cadence and has written a fresh snapshot, so a corrupted newest
// snapshot is healed by the resume itself.
func Resume(dir string, every int, algos []Algorithm, selector nominal.Selector, factory search.Factory, seed int64, opts ...Option) (*Tuner, error) {
	payload, snapIter, err := checkpoint.LoadLatest(dir)
	if err != nil {
		return nil, fmt.Errorf("core: resume from %s: %w", dir, err)
	}
	t, err := New(algos, selector, factory, seed, opts...)
	if err != nil {
		return nil, err
	}
	if err := t.RestoreState(payload); err != nil {
		return nil, err
	}
	records := checkpoint.ReadJournalsSince(dir, snapIter)
	for _, rec := range records {
		if rec.Trial != 0 {
			return nil, fmt.Errorf("core: resume from %s: journal holds trial-engine records (trial %d) — use ResumeConcurrent", dir, rec.Trial)
		}
	}
	t.replaying = true
	for _, rec := range records {
		if rec.Drift != "" {
			// A journaled selector reset. Detection never fires during
			// replay (snapshots do not persist detector state, so a
			// differently-warmed detector could diverge the replay);
			// the sentinel is the authoritative record of the reset,
			// and the sequence guard skips any reset already inside
			// the snapshot.
			t.applyDriftRecord(rec)
			continue
		}
		if rec.Iter < t.Iterations() {
			continue // already inside the snapshot
		}
		if rec.Iter > t.Iterations() {
			t.replaying = false
			return nil, fmt.Errorf("core: resume from %s: journal gap at iteration %d (tuner at %d)", dir, rec.Iter, t.Iterations())
		}
		algo, cfg := t.Next()
		if t.algos[algo].Name != rec.Algo || !cfg.Equal(param.Config(checkpoint.Unfloats(rec.Config))) {
			t.replaying = false
			return nil, fmt.Errorf("core: resume from %s: journal iteration %d proposes %s, tuner proposes %s — checkpoint was written by a different configuration",
				dir, rec.Iter, rec.Algo, t.algos[algo].Name)
		}
		if rec.FailKind != "" {
			kind, ok := guard.KindFromString(rec.FailKind)
			if !ok {
				kind = guard.Invalid
			}
			t.ObserveFailure(guard.Failure{
				Kind:    kind,
				Algo:    algo,
				Err:     errors.New("replayed failure"),
				Penalty: float64(rec.Value),
			})
		} else {
			t.Observe(float64(rec.Value))
		}
	}
	t.replaying = false
	t.ckptDir = dir
	t.ckptEvery = every
	if err := t.snapshotNow(); err != nil {
		return nil, err
	}
	return t, nil
}

// ResumeConcurrent reconstructs a checkpointed ConcurrentTuner from dir.
// It mirrors Resume — fresh tuner, newest valid snapshot, journal tail —
// but replays the tail the only way a concurrent journal can be
// replayed: by applying the journaled completions directly to the
// decision state. A concurrent run's interleaving of selector draws,
// speculative proposals and out-of-order completions is not reproducible
// from the seed, so unlike Resume there is no proposal-by-proposal
// verification; instead each record routes exactly as it did live —
// primary completions re-report to their algorithm's strategy in journal
// order (the order the strategy originally saw), speculative and pinned
// completions bypass phase one. Trials leased but never completed before
// the crash are lost by design: they were never journaled.
//
// opts mixes tuner-scope and engine-scope options, exactly as in
// NewConcurrentTuner. The returned engine has checkpointing enabled on
// dir with the given cadence, has written a fresh snapshot, and issues
// trial IDs above every journaled one.
func ResumeConcurrent(dir string, every int, algos []Algorithm, selector nominal.Selector, factory search.Factory, seed int64, opts ...Option) (*ConcurrentTuner, error) {
	tunerOpts, engineOpts, err := splitEngineOptions(opts)
	if err != nil {
		return nil, err
	}
	payload, snapIter, err := checkpoint.LoadLatest(dir)
	if err != nil {
		return nil, fmt.Errorf("core: resume from %s: %w", dir, err)
	}
	t, err := NewTuner(algos, selector, factory, seed, tunerOpts...)
	if err != nil {
		return nil, err
	}
	if err := t.RestoreState(payload); err != nil {
		return nil, err
	}
	records := checkpoint.ReadJournalsSince(dir, snapIter)
	var maxTrial uint64
	t.replaying = true
	for _, rec := range records {
		if rec.Drift != "" {
			// Journaled selector reset: re-apply it in stream position
			// (see Resume). The engine path never restarts strategies,
			// which rec.DriftP1 = false preserves on replay.
			t.applyDriftRecord(rec)
			continue
		}
		if rec.Trial > maxTrial {
			maxTrial = rec.Trial
		}
		if rec.Iter < t.Iterations() {
			continue // already inside the snapshot
		}
		if rec.Iter > t.Iterations() {
			t.replaying = false
			return nil, fmt.Errorf("core: resume from %s: journal gap at iteration %d (tuner at %d)", dir, rec.Iter, t.Iterations())
		}
		algo := t.algoIndex(rec.Algo)
		if algo < 0 {
			t.replaying = false
			return nil, fmt.Errorf("core: resume from %s: journal iteration %d names unknown algorithm %q", dir, rec.Iter, rec.Algo)
		}
		cfg := param.Config(checkpoint.Unfloats(rec.Config))
		value := float64(rec.Value)
		var fail *guard.Failure
		if rec.FailKind != "" {
			kind, ok := guard.KindFromString(rec.FailKind)
			if !ok {
				kind = guard.Invalid
			}
			fail = &guard.Failure{Kind: kind, Algo: algo, Err: errors.New("replayed failure"), Penalty: value}
		}
		var report func(param.Config, float64)
		if !rec.Pinned && !rec.Spec {
			s := t.strategies[algo]
			report = func(cf param.Config, v float64) { s.Report(cf, v) }
		}
		t.applyCompletion(completion{
			algo: algo, cfg: cfg, value: value, fail: fail,
			pinned: rec.Pinned, trial: rec.Trial, spec: rec.Spec,
		}, report)
	}
	t.replaying = false
	t.ckptDir = dir
	t.ckptEvery = every
	ct, err := wrapEngine(t, engineOpts)
	if err != nil {
		return nil, err
	}
	// maxTrial only covers the records replayed above; older generations
	// already folded into the snapshot may hold higher IDs (a sharded
	// incarnation snapshotted right before dying). Scan them all so fresh
	// IDs never collide with anything journaled.
	if all := checkpoint.MaxJournalTrial(dir); all > maxTrial {
		maxTrial = all
	}
	ct.nextID = maxTrial
	if err := t.snapshotNow(); err != nil {
		return nil, err
	}
	return ct, nil
}
