package core

import (
	"math"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/guard"
	"repro/internal/nominal"
	"repro/internal/param"
)

// runRef runs an uncheckpointed tuner to iters and returns it.
func runRef(t *testing.T, seed int64, iters int) *Tuner {
	t.Helper()
	algos, m := syntheticAlgos()
	tu := mustNew(t, algos, nominal.NewEpsilonGreedy(0.2), DefaultFactory, seed)
	tu.Run(iters, m)
	return tu
}

// resumeSynthetic is Resume with the syntheticAlgos setup.
func resumeSynthetic(t *testing.T, dir string, every int, seed int64) (*Tuner, error) {
	t.Helper()
	algos, _ := syntheticAlgos()
	return Resume(dir, every, algos, nominal.NewEpsilonGreedy(0.2), DefaultFactory, seed)
}

// TestCheckpointResumeMatchesUninterrupted is the core acceptance
// property: kill the tuner mid-iteration at several points, resume each
// time, and the stitched run must match an uninterrupted run decision for
// decision.
func TestCheckpointResumeMatchesUninterrupted(t *testing.T) {
	const iters, seed, every = 300, 3, 20
	ref := runRef(t, seed, iters)
	refBest, refCfg, refVal := ref.Best()

	dir := t.TempDir()
	algos, m := syntheticAlgos()
	tu := mustNew(t, algos, nominal.NewEpsilonGreedy(0.2), DefaultFactory, seed,
		WithCheckpoint(dir, every))
	for _, kill := range []int{1, 17, 20, 59, 155, 156, 299} {
		for tu.Iterations() < kill {
			tu.Step(m)
		}
		if err := tu.CheckpointErr(); err != nil {
			t.Fatalf("checkpointing degraded before kill at %d: %v", kill, err)
		}
		tu.Next() // in-flight proposal dies with the process
		tu = nil

		var err error
		tu, err = resumeSynthetic(t, dir, every, seed)
		if err != nil {
			t.Fatalf("resume after kill at %d: %v", kill, err)
		}
		if got := tu.Iterations(); got != kill {
			t.Fatalf("resume after kill at %d recovered %d iterations", kill, got)
		}
	}
	for tu.Iterations() < iters {
		tu.Step(m)
	}
	best, cfg, val := tu.Best()
	if best != refBest || !cfg.Equal(refCfg) || val != refVal {
		t.Errorf("resumed run diverged: best %d %v %g, want %d %v %g",
			best, cfg, val, refBest, refCfg, refVal)
	}
	if c, rc := tu.Counts(), ref.Counts(); len(c) == len(rc) {
		for i := range c {
			if c[i] != rc[i] {
				t.Errorf("algorithm %d selected %d times, reference %d", i, c[i], rc[i])
			}
		}
	}
}

// TestResumeAfterCleanStop: no in-flight proposal, nothing lost.
func TestResumeAfterCleanStop(t *testing.T) {
	const seed, every = 5, 10
	dir := t.TempDir()
	algos, m := syntheticAlgos()
	tu := mustNew(t, algos, nominal.NewEpsilonGreedy(0.2), DefaultFactory, seed,
		WithCheckpoint(dir, every))
	tu.Run(47, m)
	tu = nil

	re, err := resumeSynthetic(t, dir, every, seed)
	if err != nil {
		t.Fatal(err)
	}
	if re.Iterations() != 47 {
		t.Errorf("recovered %d iterations, want 47", re.Iterations())
	}
	re.Run(53, m)
	ref := runRef(t, seed, 100)
	b1, _, v1 := re.Best()
	b2, _, v2 := ref.Best()
	if b1 != b2 || v1 != v2 {
		t.Errorf("resumed best (%d, %g) differs from reference (%d, %g)", b1, v1, b2, v2)
	}
}

// TestResumeCorruptNewestSnapshot: flipping a byte in the newest snapshot
// must silently fall back to the previous generation plus chained
// journals — same state, no error.
func TestResumeCorruptNewestSnapshot(t *testing.T) {
	const seed, every = 7, 10
	dir := t.TempDir()
	algos, m := syntheticAlgos()
	tu := mustNew(t, algos, nominal.NewEpsilonGreedy(0.2), DefaultFactory, seed,
		WithCheckpoint(dir, every))
	tu.Run(35, m)
	tu = nil

	gens := checkpoint.Generations(dir)
	if len(gens) < 2 {
		t.Fatalf("want ≥ 2 snapshot generations, have %v", gens)
	}
	path := checkpoint.SnapPath(dir, gens[len(gens)-1])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := resumeSynthetic(t, dir, every, seed)
	if err != nil {
		t.Fatalf("resume with corrupt newest snapshot: %v", err)
	}
	if re.Iterations() != 35 {
		t.Errorf("recovered %d iterations, want 35", re.Iterations())
	}
	// Resume writes a fresh snapshot, healing the directory: a second
	// resume must load it directly.
	re = nil
	re2, err := resumeSynthetic(t, dir, every, seed)
	if err != nil {
		t.Fatalf("second resume: %v", err)
	}
	if re2.Iterations() != 35 {
		t.Errorf("second resume recovered %d iterations, want 35", re2.Iterations())
	}
}

// TestResumeTornJournalLine: a torn final journal line (the classic
// crash artifact) costs exactly that iteration, nothing more.
func TestResumeTornJournalLine(t *testing.T) {
	const seed, every = 11, 100 // no periodic snapshot: everything in one journal
	dir := t.TempDir()
	algos, m := syntheticAlgos()
	tu := mustNew(t, algos, nominal.NewEpsilonGreedy(0.2), DefaultFactory, seed,
		WithCheckpoint(dir, every))
	tu.Run(20, m)
	tu = nil

	wal := checkpoint.WalPath(dir, 0)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wal, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := resumeSynthetic(t, dir, every, seed)
	if err != nil {
		t.Fatal(err)
	}
	if re.Iterations() != 19 {
		t.Errorf("recovered %d iterations after torn line, want 19", re.Iterations())
	}
}

// TestResumeRejectsDifferentConfiguration: a checkpoint written by one
// algorithm set must not silently resume into another.
func TestResumeRejectsDifferentConfiguration(t *testing.T) {
	const seed, every = 13, 10
	dir := t.TempDir()
	algos, m := syntheticAlgos()
	tu := mustNew(t, algos, nominal.NewEpsilonGreedy(0.2), DefaultFactory, seed,
		WithCheckpoint(dir, every))
	tu.Run(15, m)
	tu = nil

	other := []Algorithm{{Name: "impostor-a"}, {Name: "impostor-b"}, {Name: "impostor-c"}}
	if _, err := Resume(dir, every, other, nominal.NewEpsilonGreedy(0.2), DefaultFactory, seed); err == nil {
		t.Error("resuming with renamed algorithms succeeded")
	}
	if _, err := Resume(dir, every, algos[:2], nominal.NewEpsilonGreedy(0.2), DefaultFactory, seed); err == nil {
		t.Error("resuming with fewer algorithms succeeded")
	}
}

// TestResumeEmptyDir: nothing to resume from is an error, not a fresh
// start — silently losing a run's history would defeat the feature.
func TestResumeEmptyDir(t *testing.T) {
	_, err := resumeSynthetic(t, t.TempDir(), 10, 1)
	if err == nil {
		t.Fatal("resuming from an empty directory succeeded")
	}
	if !strings.Contains(err.Error(), "no valid snapshot") {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestCheckpointWithGuardAndFailures: failed iterations journal their
// kind and penalty and replay through ObserveFailure, reconstructing the
// guard's counters and the quarantine's circuit state.
func TestCheckpointWithGuardAndFailures(t *testing.T) {
	const seed, every, iters = 17, 25, 120
	algos, m := syntheticAlgos()
	const faulty = 2
	inject := func(algo int, cfg param.Config) float64 {
		if algo == faulty {
			return math.NaN() // always invalid
		}
		return m(algo, cfg)
	}
	mkSel := func() *guard.Quarantine {
		q := guard.NewQuarantine(nominal.NewEpsilonGreedy(0.2))
		q.K = 2
		return q
	}
	opts := func() []Option {
		return []Option{WithGuard(guard.WithTimeout(time.Second))}
	}

	ref := mustNew(t, algos, mkSel(), DefaultFactory, seed, opts()...)
	ref.Run(iters, inject)

	dir := t.TempDir()
	tu := mustNew(t, algos, mkSel(), DefaultFactory, seed,
		append(opts(), WithCheckpoint(dir, every))...)
	for tu.Iterations() < 60 {
		tu.Step(inject)
	}
	tu.Next()
	tu = nil

	re, err := Resume(dir, every, algos, mkSel(), DefaultFactory, seed, opts()...)
	if err != nil {
		t.Fatal(err)
	}
	if re.Iterations() != 60 {
		t.Fatalf("recovered %d iterations, want 60", re.Iterations())
	}
	for re.Iterations() < iters {
		re.Step(inject)
	}

	fs, rfs := re.FailureStats(), ref.FailureStats()
	if fs.Total != rfs.Total || fs.Invalids != rfs.Invalids {
		t.Errorf("failure stats diverged: %+v vs %+v", fs, rfs)
	}
	b1, _, v1 := re.Best()
	b2, _, v2 := ref.Best()
	if b1 != b2 || v1 != v2 {
		t.Errorf("resumed best (%d, %g) differs from reference (%d, %g)", b1, v1, b2, v2)
	}
	if c, rc := re.Counts(), ref.Counts(); c[faulty] != rc[faulty] {
		t.Errorf("faulty arm selected %d times, reference %d", c[faulty], rc[faulty])
	}
}

// TestExportStateWithPendingObservationFails: snapshots only happen at
// iteration boundaries.
func TestExportStateWithPendingObservationFails(t *testing.T) {
	algos, _ := syntheticAlgos()
	tu := mustNew(t, algos, nominal.NewEpsilonGreedy(0.2), DefaultFactory, 1)
	tu.Next()
	if _, err := tu.ExportState(); err == nil {
		t.Error("ExportState with a pending observation succeeded")
	}
}

// TestCheckpointErrAbsorbed: post-construction I/O failure degrades
// durability but never the tuning loop.
func TestCheckpointErrAbsorbed(t *testing.T) {
	dir := t.TempDir()
	algos, m := syntheticAlgos()
	tu := mustNew(t, algos, nominal.NewEpsilonGreedy(0.2), DefaultFactory, 1,
		WithCheckpoint(dir, 5))
	tu.Run(7, m)
	if err := tu.CheckpointErr(); err != nil {
		t.Fatalf("healthy run has checkpoint error: %v", err)
	}
	// Yank the directory out from under the tuner.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	tu.Run(20, m) // must not panic or stop
	if tu.Iterations() != 27 {
		t.Errorf("tuning stopped at %d iterations", tu.Iterations())
	}
	if tu.CheckpointErr() == nil {
		t.Error("expected a checkpoint error after losing the directory")
	}
}
