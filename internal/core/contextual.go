package core

import (
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/nominal"
	"repro/internal/search"
)

// Contextual maintains one independent two-phase tuner per application
// context (an input-size bucket, a data-shape class, a query category…).
//
// The paper's formulation fixes the context K = (K_A, K_S) for the
// duration of tuning; the related work it builds on (PetaBricks' decision
// trees, Nitro's feature models) exists precisely because real inputs
// vary and the best algorithm varies with them (extension X2 measures
// this for pattern length). Contextual is the online answer: the
// application labels each iteration with its context key and gets a tuner
// that has only ever seen that context — no offline training, no feature
// model, at the cost of learning each context separately.
type Contextual struct {
	algos    []Algorithm
	selector func() nominal.Selector
	factory  search.Factory
	seed     int64
	opts     []Option

	mu     sync.Mutex
	tuners map[string]*Tuner
}

// NewContextual prepares a per-context tuner family. The selector
// function builds a fresh phase-two strategy per context (selectors are
// stateful); factory and opts are as in New. Each context's random stream
// is derived from the seed and the context key, so runs are reproducible
// regardless of context arrival order.
func NewContextual(algos []Algorithm, selector func() nominal.Selector, factory search.Factory, seed int64, opts ...Option) *Contextual {
	return &Contextual{
		algos:    algos,
		selector: selector,
		factory:  factory,
		seed:     seed,
		opts:     opts,
		tuners:   make(map[string]*Tuner),
	}
}

// For returns the tuner for a context, creating it on first use.
func (c *Contextual) For(context string) (*Tuner, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.tuners[context]; ok {
		return t, nil
	}
	h := fnv.New64a()
	h.Write([]byte(context))
	t, err := New(c.algos, c.selector(), c.factory, c.seed^int64(h.Sum64()), c.opts...)
	if err != nil {
		return nil, err
	}
	c.tuners[context] = t
	return t, nil
}

// Contexts returns the context keys seen so far, sorted.
func (c *Contextual) Contexts() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.tuners))
	for k := range c.tuners {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Step runs one tuning iteration in the given context.
func (c *Contextual) Step(context string, m Measure) (Record, error) {
	t, err := c.For(context)
	if err != nil {
		return Record{}, err
	}
	return t.Step(m), nil
}
