package core

import (
	"math"

	"repro/internal/checkpoint"
	"repro/internal/nominal"
	"repro/internal/search"
	"repro/internal/stats"
)

// Drift resilience. Online tuning assumes the cost landscape is
// stationary enough for accumulated evidence to stay meaningful; in
// production it is not — input corpora swap, machines warm up or get
// noisy neighbours, libraries are hot-patched. The drift watchdog runs
// online change-point detection over every algorithm's cost stream and,
// on a detected shift, resets the decision state so the tuner re-learns
// the new regime instead of defending a stale incumbent:
//
//   - soft reset (DriftDecay): the selector keeps a recent fraction of
//     its evidence (nominal.Decayable), enough to stay decisive if the
//     shift was small, little enough that a dethroned incumbent loses
//     its stale record;
//   - hard reset (DriftRefork): the selector forgets everything and the
//     init probe round restarts, for regimes assumed unrelated.
//
// Either way every algorithm is scheduled for a fixed number of forced
// re-probes, so arms starved by the old regime's winner get fresh
// samples under the new one, and — on sequential tuners — each
// algorithm's search.Restarting strategy is restarted, because the
// converged numeric configuration of the old context is a local optimum
// of a landscape that no longer exists.
//
// Detection is per-arm, on the log of the cost (so thresholds are
// relative, scale-free): a Page–Hinkley test catches abrupt mean shifts
// in either direction, an ADWIN-style adaptive window catches slower
// ones, and a MAD-based robust screen keeps isolated outliers (one
// straggling measurement) from reaching the detectors at all — only a
// run of consecutive outliers, which is a level shift and not noise, is
// let through.
//
// Resets are journaled as sentinel records alongside the observations
// (see checkpoint.Record.Drift), so a checkpointed run resumes with the
// same post-reset selector state, and sharded replicas re-fork at their
// next fold.

// DriftPolicy selects how the watchdog resets the selector on a
// detected change-point.
type DriftPolicy int

const (
	// DriftDecay soft-discounts the selector's evidence, keeping
	// KeepFraction of each arm's recent samples (nominal.Decayable).
	DriftDecay DriftPolicy = iota
	// DriftRefork hard-resets the selector to its initial state: all
	// evidence is dropped and the init probe round restarts.
	DriftRefork
)

// Drift watchdog defaults (see DefaultDriftConfig).
const (
	// DefaultPHDelta is the Page–Hinkley indifference margin on the
	// log-cost stream: shifts smaller than ~5% are tolerated.
	DefaultPHDelta = 0.05
	// DefaultPHLambda is the Page–Hinkley decision threshold. Under
	// stationary noise of standard deviation σ the PH statistic's
	// excursion scales like σ²/(2δ); 2.0 is ~8× that floor at σ = 0.2
	// (20% relative cost noise), so false alarms need a genuine shift.
	DefaultPHLambda = 2.0
	// DefaultADWINDelta is the adaptive window's Hoeffding confidence.
	DefaultADWINDelta = 0.002
	// DefaultMADWindow and DefaultMADK size the robust outlier screen:
	// an observation more than K·MAD from the recent median is screened.
	DefaultMADWindow = 16
	DefaultMADK      = 6.0
	// DefaultMADOutlierRun is the consecutive-outlier run length at
	// which the screen stops suppressing: that many outliers in a row
	// is a level shift the detectors must see, not noise.
	DefaultMADOutlierRun = 3
	// DefaultDriftMinObs is the per-arm warmup before the Page–Hinkley
	// test may fire.
	DefaultDriftMinObs = 8
	// DefaultDriftCooldown is the number of observations after a reset
	// during which detection is suppressed, letting the re-probe round
	// complete before the (intentionally perturbed) stream is judged.
	DefaultDriftCooldown = 16
	// DefaultKeepFraction is the evidence fraction DriftDecay retains.
	DefaultKeepFraction = 0.25
	// DefaultProbesPerArm is how many forced re-probes of every arm a
	// reset schedules.
	DefaultProbesPerArm = 2
)

// DriftConfig tunes the drift watchdog (see WithDriftWatchdog). The
// zero value of any field selects its default.
type DriftConfig struct {
	// PHDelta and PHLambda parameterize the Page–Hinkley test on the
	// per-arm log-cost stream (see stats.PageHinkley).
	PHDelta  float64
	PHLambda float64
	// ADWINDelta is the adaptive window's cut confidence (see
	// stats.AdaptiveWindow).
	ADWINDelta float64
	// MADWindow / MADK / MADOutlierRun configure the robust outlier
	// screen: observations beyond K·MAD of the recent median are kept
	// from the detectors unless MADOutlierRun arrive consecutively.
	MADWindow     int
	MADK          float64
	MADOutlierRun int
	// MinObs is the per-arm warmup before Page–Hinkley may fire.
	MinObs int
	// Cooldown suppresses detection for that many observations after a
	// reset.
	Cooldown int
	// Policy picks soft decay or hard refork; KeepFraction is the
	// evidence fraction DriftDecay retains.
	Policy       DriftPolicy
	KeepFraction float64
	// ProbesPerArm is how many forced re-probes of every arm each reset
	// schedules (0 disables re-probing; the selector's own init round
	// still covers arms whose evidence decayed away entirely).
	ProbesPerArm int
}

// DefaultDriftConfig returns the watchdog defaults.
func DefaultDriftConfig() DriftConfig {
	return DriftConfig{
		PHDelta:       DefaultPHDelta,
		PHLambda:      DefaultPHLambda,
		ADWINDelta:    DefaultADWINDelta,
		MADWindow:     DefaultMADWindow,
		MADK:          DefaultMADK,
		MADOutlierRun: DefaultMADOutlierRun,
		MinObs:        DefaultDriftMinObs,
		Cooldown:      DefaultDriftCooldown,
		Policy:        DriftDecay,
		KeepFraction:  DefaultKeepFraction,
		ProbesPerArm:  DefaultProbesPerArm,
	}
}

// withDefaults fills zero fields with the package defaults.
func (c DriftConfig) withDefaults() DriftConfig {
	d := DefaultDriftConfig()
	if c.PHDelta > 0 {
		d.PHDelta = c.PHDelta
	}
	if c.PHLambda > 0 {
		d.PHLambda = c.PHLambda
	}
	if c.ADWINDelta > 0 {
		d.ADWINDelta = c.ADWINDelta
	}
	if c.MADWindow > 0 {
		d.MADWindow = c.MADWindow
	}
	if c.MADK > 0 {
		d.MADK = c.MADK
	}
	if c.MADOutlierRun > 0 {
		d.MADOutlierRun = c.MADOutlierRun
	}
	if c.MinObs > 0 {
		d.MinObs = c.MinObs
	}
	if c.Cooldown > 0 {
		d.Cooldown = c.Cooldown
	}
	d.Policy = c.Policy
	if c.KeepFraction > 0 {
		d.KeepFraction = c.KeepFraction
	}
	if c.ProbesPerArm > 0 {
		d.ProbesPerArm = c.ProbesPerArm
	}
	return d
}

// WithDriftWatchdog enables the drift watchdog: online change-point
// detection over every algorithm's cost stream, with the configured
// reset policy on detection. Use DefaultDriftConfig() (or the zero
// DriftConfig) for the defaults. Scope: every constructor (it
// configures the underlying Tuner).
func WithDriftWatchdog(cfg DriftConfig) Option {
	return tunerOption("WithDriftWatchdog", func(t *Tuner) {
		t.drift = &driftWatchdog{cfg: cfg.withDefaults()}
	})
}

// DriftStats counts drift-watchdog events since construction.
type DriftStats struct {
	// Events counts detected change-points (= selector resets); Decays
	// and Reforks split them by the reset that was applied.
	Events, Decays, Reforks uint64
	// ProbesScheduled counts forced re-probe leases scheduled by
	// resets; PendingProbes is how many are still queued.
	ProbesScheduled uint64
	PendingProbes   int
	// Outliers counts observations the MAD screen kept from the
	// detectors.
	Outliers uint64
	// StaleDropped counts completions discarded because their trial was
	// leased before a drift reset: stale-regime evidence that would
	// re-poison the freshly decayed selector.
	StaleDropped uint64
	// Seq is the monotonic reset sequence number (journaled with each
	// sentinel so resume and replicas apply every reset exactly once).
	Seq uint64
	// QuarantineReprobes is guard.Quarantine's cumulative forced
	// re-probe count when the selector is quarantined (0 otherwise) —
	// surfaced here so one stats read covers both recovery mechanisms.
	QuarantineReprobes int
}

// driftWatchdog is the per-tuner detection state behind
// WithDriftWatchdog.
type driftWatchdog struct {
	cfg  DriftConfig
	arms []armDetector

	cooldown int   // observations until detection may fire again
	probeQ   []int // scheduled forced re-probes (arm indices)

	events, decays, reforks uint64
	probesScheduled         uint64
	outliers                uint64
	staleDrops              uint64
}

// armDetector is one algorithm's change-point detection state.
type armDetector struct {
	ph         *stats.PageHinkley
	aw         *stats.AdaptiveWindow
	mad        *stats.MADWindow
	outlierRun int
}

// init sizes the per-arm detectors; called from NewTuner after the
// option loop (the arm count is not known when the option runs).
func (d *driftWatchdog) init(n int) {
	d.arms = make([]armDetector, n)
	for i := range d.arms {
		d.arms[i] = armDetector{
			ph:  stats.NewPageHinkley(d.cfg.PHDelta, d.cfg.PHLambda, d.cfg.MinObs),
			aw:  stats.NewAdaptiveWindow(d.cfg.ADWINDelta),
			mad: stats.NewMADWindow(d.cfg.MADWindow, d.cfg.MADK),
		}
	}
}

// resetDetectors restarts every arm's detectors and the cooldown; the
// post-reset stream (re-probes included) is a fresh baseline.
func (d *driftWatchdog) resetDetectors() {
	for i := range d.arms {
		a := &d.arms[i]
		a.ph.Reset()
		a.aw.Reset()
		a.mad.Reset()
		a.outlierRun = 0
	}
	d.cooldown = d.cfg.Cooldown
}

// schedule enqueues per re-probes of every arm.
func (d *driftWatchdog) schedule(n, per int) {
	if per <= 0 {
		return
	}
	for p := 0; p < per; p++ {
		for a := 0; a < n; a++ {
			d.probeQ = append(d.probeQ, a)
		}
	}
	d.probesScheduled += uint64(per * n)
}

// takeProbes removes and returns up to k queued probes (the sharded
// engine distributes them across shards at fold time).
func (d *driftWatchdog) takeProbes(k int) []int {
	if k <= 0 || len(d.probeQ) == 0 {
		return nil
	}
	if k > len(d.probeQ) {
		k = len(d.probeQ)
	}
	out := append([]int(nil), d.probeQ[:k]...)
	d.probeQ = d.probeQ[:copy(d.probeQ, d.probeQ[k:])]
	return out
}

// driftObserve feeds one completed observation to the watchdog and
// fires the reset on a detected change-point. Pinned runs (degradation
// mode repeats the incumbent, not a fresh draw) and failures (their
// penalty is synthetic, and the failure path has its own machinery —
// guard.Quarantine, the failure-rate watchdog) never reach the
// detectors. During journal replay detection never fires: resets are
// re-applied from their journal sentinels (or deterministically by the
// replayed stream once warm), never invented — a detector warmed
// differently than the live run's (snapshots do not persist detector
// state) must not diverge the replay.
func (t *Tuner) driftObserve(c completion) {
	d := t.drift
	if c.pinned || c.fail != nil {
		return
	}
	x := c.value
	if x > 0 {
		x = math.Log(x)
	}
	a := &d.arms[c.algo]
	if d.cooldown > 0 {
		d.cooldown--
	}
	if a.mad.Outlier(x) {
		a.outlierRun++
		if a.outlierRun < d.cfg.MADOutlierRun {
			a.mad.Add(x)
			d.outliers++
			return
		}
	} else {
		a.outlierRun = 0
	}
	a.mad.Add(x)
	preLen := a.aw.Len()
	fired := a.ph.Add(x)
	post, total := 0, 0
	if fired {
		post, total = a.ph.PostShiftLen(), a.ph.N()
	}
	if a.aw.Add(x) {
		if !fired {
			// The adaptive window already cut to the post-change
			// suffix: its surviving length is the post-shift count.
			post, total = a.aw.Len(), preLen+1
		}
		fired = true
	}
	if fired && d.cooldown <= 0 && !t.replaying {
		// Adapt the keep fraction to the detector's change-point
		// estimate: retaining at most the post-shift fraction of each
		// arm's tail keeps the surviving evidence from spanning the
		// shift (a stale pre-shift best record would keep a dethroned
		// incumbent enthroned). KeepFraction is the cap for slow,
		// late-detected drifts.
		keep := d.cfg.KeepFraction
		if total > 0 {
			if adapt := float64(post) / float64(total); adapt < keep {
				keep = adapt
			}
		}
		t.driftReset(c.algo, keep)
	}
}

// driftReset applies the configured reset after a change-point on arm:
// discount (or drop) the selector's evidence, restart the numeric
// strategies (sequential tuners only — under a trial engine the
// proposers hold outstanding proposals the strategies must not be
// restarted beneath), schedule the re-probe round, and journal the
// sentinel so resume and sharded replicas replay the reset exactly
// once. keep is the (already change-point-adapted) evidence fraction
// for the decay policy; refork ignores it.
func (t *Tuner) driftReset(arm int, keep float64) {
	d := t.drift
	d.events++
	t.driftSeq++

	refork := d.cfg.Policy == DriftRefork
	if refork {
		keep = 0
	}
	t.applySelectorReset(refork, keep)
	if refork {
		d.reforks++
	} else {
		d.decays++
	}

	restartP1 := false
	if !t.engineOwned {
		for _, s := range t.strategies {
			if r, ok := s.(*search.Restarting); ok {
				r.Restart()
				restartP1 = true
			}
		}
	}

	d.schedule(len(t.algos), d.cfg.ProbesPerArm)
	d.resetDetectors()

	if t.ckptDir != "" && !t.replaying {
		t.journalDrift(arm, refork, keep, restartP1)
	}
}

// applySelectorReset discounts or drops the selector's evidence. A
// selector that is not Decayable (no package selector; only exotic
// user-provided ones) is re-initialized on refork and left untouched on
// decay — there is nothing gentler available.
func (t *Tuner) applySelectorReset(refork bool, keep float64) {
	if dec, ok := t.selector.(nominal.Decayable); ok {
		if refork {
			dec.Decay(0)
		} else {
			dec.Decay(keep)
		}
		return
	}
	if refork {
		t.selector.Init(len(t.algos))
	}
}

// journalDrift appends the reset's sentinel record to the write-ahead
// journal. The sentinel carries everything replay needs to re-apply the
// reset verbatim — kind, keep fraction, probe count, whether phase one
// was restarted — plus the sequence number that makes re-application
// idempotent.
func (t *Tuner) journalDrift(arm int, refork bool, keep float64, restartP1 bool) {
	if t.journal == nil {
		j, err := checkpoint.OpenJournal(t.ckptDir, t.ckptGen)
		if err != nil {
			t.ckptErr = err
			return
		}
		t.journal = j
	}
	kind := checkpoint.DriftDecay
	if refork {
		kind = checkpoint.DriftRefork
	}
	rec := checkpoint.Record{
		Iter:        t.Iterations(),
		Drift:       kind,
		DriftSeq:    t.driftSeq,
		DriftArm:    arm,
		DriftKeep:   checkpoint.F(keep),
		DriftProbes: t.drift.cfg.ProbesPerArm,
		DriftP1:     restartP1,
	}
	var err error
	if t.journalBatch {
		err = t.journal.AppendBuffered(rec)
	} else {
		err = t.journal.Append(rec)
	}
	if err != nil {
		t.ckptErr = err
	}
}

// applyDriftRecord re-applies a journaled drift sentinel during resume.
// The sequence guard makes it idempotent: a reset the replayed
// observation stream already re-fired (the sequential Resume path
// replays through the live code, which bumps driftSeq itself) is
// skipped, and so is a reset already inside the snapshot.
func (t *Tuner) applyDriftRecord(rec checkpoint.Record) {
	if rec.DriftSeq <= t.driftSeq {
		return
	}
	t.driftSeq = rec.DriftSeq
	refork := rec.Drift == checkpoint.DriftRefork
	t.applySelectorReset(refork, float64(rec.DriftKeep))
	if rec.DriftP1 && !t.engineOwned {
		for _, s := range t.strategies {
			if r, ok := s.(*search.Restarting); ok {
				r.Restart()
			}
		}
	}
	if d := t.drift; d != nil {
		d.events++
		if refork {
			d.reforks++
		} else {
			d.decays++
		}
		d.schedule(len(t.algos), rec.DriftProbes)
		d.resetDetectors()
	}
}

// takeProbe pops the next scheduled forced re-probe, if any.
func (t *Tuner) takeProbe() (int, bool) {
	d := t.drift
	if d == nil || len(d.probeQ) == 0 {
		return 0, false
	}
	a := d.probeQ[0]
	d.probeQ = d.probeQ[:copy(d.probeQ, d.probeQ[1:])]
	return a, true
}

// DriftStats returns the drift-watchdog counters (zero without
// WithDriftWatchdog, except Seq and QuarantineReprobes, which are
// maintained regardless).
func (t *Tuner) DriftStats() DriftStats {
	s := DriftStats{Seq: t.driftSeq}
	if q, ok := t.selector.(interface{ Reprobes() int }); ok {
		s.QuarantineReprobes = q.Reprobes()
	}
	if d := t.drift; d != nil {
		s.Events = d.events
		s.Decays = d.decays
		s.Reforks = d.reforks
		s.ProbesScheduled = d.probesScheduled
		s.PendingProbes = len(d.probeQ)
		s.Outliers = d.outliers
		s.StaleDropped = d.staleDrops
	}
	return s
}

// DriftStats returns the drift-watchdog counters under the engine lock.
func (c *ConcurrentTuner) DriftStats() DriftStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.DriftStats()
}

// DriftStats folds every shard delta and returns the drift-watchdog
// counters, including probes still queued on shards.
func (e *ShardedEngine) DriftStats() DriftStats {
	e.Flush()
	ds := e.inner.DriftStats()
	if e.n > 1 {
		for _, s := range e.shards {
			s.mu.Lock()
			ds.PendingProbes += len(s.probeQ)
			s.mu.Unlock()
		}
	}
	return ds
}
