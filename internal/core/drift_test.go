package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/nominal"
	"repro/internal/param"
)

// driftAlgos are two untunable algorithms; the measure below flips their
// ranking mid-run (arm 0 is the pre-drift winner, arm 1 the post-drift
// one).
func driftAlgos() []Algorithm {
	return []Algorithm{{Name: "alpha"}, {Name: "beta"}}
}

// driftMeasure ranks arm 0 best (1.0 vs 2.0) until iters() reaches
// flipAt, then degrades it to 4.0 — the classic corpus-swap shape: the
// incumbent's cost jumps, the runner-up's does not.
func driftMeasure(iters func() int, flipAt int) Measure {
	return func(algo int, _ param.Config) float64 {
		if algo == 0 {
			if iters() >= flipAt {
				return 4.0
			}
			return 1.0
		}
		return 2.0
	}
}

// tailCounts runs tu to total iterations and returns per-arm selection
// counts over the final tail iterations.
func tailCounts(tu *Tuner, m Measure, total, tail int) []int {
	counts := make([]int, 2)
	for tu.Iterations() < total {
		algo, cfg := tu.Next()
		v := m(algo, cfg)
		tu.Observe(v)
		if tu.Iterations() > total-tail {
			counts[algo]++
		}
	}
	return counts
}

// TestDriftReElection is the headline property: after a mid-run cost
// flip the drift-aware tuner dethrones the stale incumbent and
// re-elects the new winner, while an oblivious ε-greedy — whose
// all-time-best record for arm 0 survives the flip — stays stuck.
func TestDriftReElection(t *testing.T) {
	const total, flipAt, tail = 400, 200, 100
	algos := driftAlgos()

	aware := mustNew(t, algos, nominal.NewEpsilonGreedy(0.1), nil, 3,
		WithDriftWatchdog(DefaultDriftConfig()))
	awareTail := tailCounts(aware, driftMeasure(aware.Iterations, flipAt), total, tail)
	ds := aware.DriftStats()
	if ds.Events < 1 {
		t.Fatalf("drift watchdog detected no change-point: %+v", ds)
	}
	if ds.Decays < 1 {
		t.Errorf("default policy is decay, but Decays = %d (%+v)", ds.Decays, ds)
	}
	if ds.ProbesScheduled == 0 {
		t.Errorf("reset scheduled no re-probes: %+v", ds)
	}
	if awareTail[1] <= tail*6/10 {
		t.Errorf("drift-aware tail selections %v: post-flip winner (arm 1) not re-elected", awareTail)
	}

	obliv := mustNew(t, algos, nominal.NewEpsilonGreedy(0.1), nil, 3)
	oblivTail := tailCounts(obliv, driftMeasure(obliv.Iterations, flipAt), total, tail)
	if got := obliv.DriftStats(); got.Events != 0 || got.Seq != 0 {
		t.Errorf("oblivious tuner reports drift activity: %+v", got)
	}
	if oblivTail[0] <= tail*6/10 {
		t.Errorf("oblivious tail selections %v: expected the stale incumbent to stay stuck (the control leg is broken)", oblivTail)
	}
}

// TestDriftReforkPolicy: the hard policy drops all evidence and re-runs
// the init probe round; the post-flip winner must still be elected.
func TestDriftReforkPolicy(t *testing.T) {
	const total, flipAt, tail = 400, 200, 100
	cfg := DefaultDriftConfig()
	cfg.Policy = DriftRefork
	tu := mustNew(t, driftAlgos(), nominal.NewEpsilonGreedy(0.1), nil, 5,
		WithDriftWatchdog(cfg))
	tc := tailCounts(tu, driftMeasure(tu.Iterations, flipAt), total, tail)
	ds := tu.DriftStats()
	if ds.Reforks < 1 {
		t.Fatalf("refork policy fired no reforks: %+v", ds)
	}
	if ds.Decays != 0 {
		t.Errorf("refork policy recorded decays: %+v", ds)
	}
	if tc[1] <= tail*6/10 {
		t.Errorf("refork tail selections %v: post-flip winner not re-elected", tc)
	}
}

// TestDriftProbeScheduling: a reset schedules ProbesPerArm forced
// re-probes of every arm, and Next consumes them round-robin before
// consulting the selector again.
func TestDriftProbeScheduling(t *testing.T) {
	algos := driftAlgos()
	tu := mustNew(t, algos, nominal.NewEpsilonGreedy(0.1), nil, 7,
		WithDriftWatchdog(DefaultDriftConfig()))
	m := driftMeasure(tu.Iterations, 1<<30)
	tu.Run(20, m)

	tu.driftReset(0, 0.25)
	ds := tu.DriftStats()
	if ds.Seq != 1 || ds.Events != 1 {
		t.Fatalf("after one reset: %+v", ds)
	}
	if want := uint64(DefaultProbesPerArm * len(algos)); ds.ProbesScheduled != want {
		t.Fatalf("ProbesScheduled = %d, want %d", ds.ProbesScheduled, want)
	}
	if ds.PendingProbes != DefaultProbesPerArm*len(algos) {
		t.Fatalf("PendingProbes = %d, want %d", ds.PendingProbes, DefaultProbesPerArm*len(algos))
	}

	want := []int{0, 1, 0, 1}
	for i, w := range want {
		algo, cfg := tu.Next()
		if algo != w {
			t.Fatalf("probe %d leased arm %d, want %d", i, algo, w)
		}
		tu.Observe(m(algo, cfg))
	}
	if ds := tu.DriftStats(); ds.PendingProbes != 0 {
		t.Errorf("PendingProbes = %d after consuming the round, want 0", ds.PendingProbes)
	}
}

// TestDriftEngineProbeOverride: under a trial engine the reset's forced
// re-probes override shard selection on the next leases.
func TestDriftEngineProbeOverride(t *testing.T) {
	eng, err := NewConcurrentTuner(driftAlgos(), nominal.NewEpsilonGreedy(0.1), nil, 9,
		WithDriftWatchdog(DefaultDriftConfig()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		tr, err := eng.Lease()
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Complete(tr.ID, 1.0+float64(tr.Algo)); err != nil {
			t.Fatal(err)
		}
	}

	eng.mu.Lock()
	if !eng.t.engineOwned {
		eng.mu.Unlock()
		t.Fatal("engine-wrapped tuner not marked engineOwned")
	}
	eng.t.driftReset(0, 0.25)
	eng.mu.Unlock()

	got := make([]int, 0, 4)
	for i := 0; i < 4; i++ {
		tr, err := eng.Lease()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, tr.Algo)
		if err := eng.Complete(tr.ID, 2.0); err != nil {
			t.Fatal(err)
		}
	}
	want := []int{0, 1, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-reset leases %v, want %v", got, want)
		}
	}
	if ds := eng.DriftStats(); ds.PendingProbes != 0 {
		t.Errorf("PendingProbes = %d after the probe round, want 0", ds.PendingProbes)
	}
}

// TestDriftCheckpointResume kills a checkpointed run right after the
// drift reset (mid probe round) and again later, resuming each time;
// the stitched run must match an uninterrupted reference decision for
// decision — the journal's drift sentinel replays the reset exactly.
func TestDriftCheckpointResume(t *testing.T) {
	const total, flipAt, every, seed = 400, 150, 20, 11
	algos := driftAlgos()
	mk := func() nominal.Selector { return nominal.NewEpsilonGreedy(0.1) }
	wd := func() Option { return WithDriftWatchdog(DefaultDriftConfig()) }

	ref := mustNew(t, algos, mk(), nil, seed, wd())
	ref.Run(total, driftMeasure(ref.Iterations, flipAt))
	refStats := ref.DriftStats()
	if refStats.Events < 1 {
		t.Fatalf("reference run detected no drift: %+v", refStats)
	}
	refBest, _, refVal := ref.Best()

	dir := t.TempDir()
	var cur *Tuner
	m := driftMeasure(func() int { return cur.Iterations() }, flipAt)
	cur = mustNew(t, algos, mk(), nil, seed, wd(), WithCheckpoint(dir, every))
	// 160 lands inside the post-reset probe round / cooldown window; 300
	// is deep into the re-learned regime.
	for _, kill := range []int{160, 300} {
		for cur.Iterations() < kill {
			cur.Step(m)
		}
		if err := cur.CheckpointErr(); err != nil {
			t.Fatalf("checkpointing degraded before kill at %d: %v", kill, err)
		}
		cur.Next() // in-flight proposal dies with the process
		re, err := Resume(dir, every, algos, mk(), nil, seed, wd())
		if err != nil {
			t.Fatalf("resume after kill at %d: %v", kill, err)
		}
		cur = re
		if got := cur.Iterations(); got != kill {
			t.Fatalf("resume after kill at %d recovered %d iterations", kill, got)
		}
	}
	for cur.Iterations() < total {
		cur.Step(m)
	}

	if got := cur.DriftStats(); got.Seq != refStats.Seq || got.Events != refStats.Events {
		t.Errorf("resumed drift stats %+v, reference %+v", got, refStats)
	}
	b, _, v := cur.Best()
	if b != refBest || v != refVal {
		t.Errorf("resumed best (%d, %g) differs from reference (%d, %g)", b, v, refBest, refVal)
	}
	if c, rc := cur.Counts(), ref.Counts(); len(c) == len(rc) {
		for i := range c {
			if c[i] != rc[i] {
				t.Errorf("arm %d selected %d times, reference %d", i, c[i], rc[i])
			}
		}
	}
}

// TestDriftShardedResume: drift detection, probe distribution and
// sentinel replay across the sharded engine — a mid-run flip is
// detected, the checkpoint resumes with the reset intact, and the
// resumed engine keeps favouring the post-flip winner.
func TestDriftShardedResume(t *testing.T) {
	const seed, every = 13, 50
	dir := t.TempDir()
	algos := driftAlgos()
	var done atomic.Int64
	m := func(algo int, _ param.Config) float64 {
		n := done.Add(1)
		if algo == 0 {
			if n >= 150 {
				return 10.0
			}
			return 1.0
		}
		return 2.0
	}

	eng, err := NewShardedEngine(algos, nominal.NewEpsilonGreedy(0.1), nil, seed,
		WithShards(2), WithMergeEvery(8),
		WithDriftWatchdog(DefaultDriftConfig()), WithCheckpoint(dir, every))
	if err != nil {
		t.Fatal(err)
	}
	eng.RunPool(4, 500, m)
	eng.Flush()
	if err := eng.CheckpointErr(); err != nil {
		t.Fatal(err)
	}
	ds := eng.DriftStats()
	if ds.Events < 1 {
		t.Fatalf("sharded run detected no drift: %+v", ds)
	}
	iters := eng.Iterations()

	rs, err := ResumeSharded(dir, every, algos, nominal.NewEpsilonGreedy(0.1), nil, seed,
		WithShards(2), WithMergeEvery(8), WithDriftWatchdog(DefaultDriftConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.Iterations(); got != iters {
		t.Fatalf("resumed %d iterations, want %d", got, iters)
	}
	rds := rs.DriftStats()
	if rds.Seq != ds.Seq || rds.Events != ds.Events {
		t.Fatalf("resumed drift stats %+v, original %+v", rds, ds)
	}

	// The resumed engine must keep favouring the post-flip winner: the
	// reset (evidence decay) survived the round trip, so arm 0's stale
	// 1.0 record cannot regain the throne.
	before := rs.Counts()
	rs.RunPool(4, 200, m)
	rs.Flush()
	after := rs.Counts()
	d0, d1 := after[0]-before[0], after[1]-before[1]
	if d1 <= d0 {
		t.Errorf("post-resume selections: arm0 %+d, arm1 %+d — stale incumbent re-elected", d0, d1)
	}
}
