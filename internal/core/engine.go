package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/guard"
	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/search"
)

// Trial engine errors.
var (
	// ErrUnknownTrial is returned by Complete/Fail for a trial ID that
	// was never leased, already completed, or reclaimed after its lease
	// expired (a late completion of an expired trial is dropped: the
	// engine already charged the trial as a timeout).
	ErrUnknownTrial = errors.New("core: unknown, completed, or expired trial")
	// ErrTooManyInFlight is returned by Lease when WithMaxInFlight's
	// limit is reached; the caller should complete or wait, not spin.
	ErrTooManyInFlight = errors.New("core: in-flight trial limit reached")
)

// DefaultLeaseTimeout is the lease deadline applied by NewConcurrentTuner
// unless WithLeaseTimeout overrides it.
const DefaultLeaseTimeout = time.Minute

// A Trial is one leased tuning iteration: a ticket the engine hands to a
// worker, to be completed out of order via Complete or Fail.
type Trial struct {
	// ID is the engine-unique ticket; it completes exactly once.
	ID uint64
	// Algo and Config are what the worker should run, as in Tuner.Next.
	Algo   int
	Config param.Config
	// Deadline is when the lease expires and the engine reclaims the
	// trial as a timeout failure (zero with WithLeaseTimeout(0)).
	Deadline time.Time
	// Speculative marks a configuration fabricated by the proposal layer
	// while the strategy's genuine proposal was already leased out; its
	// result feeds the selector and the global best, not phase one.
	Speculative bool
	// Pinned marks a degradation-mode incumbent run that bypasses both
	// tuning phases (see WithWatchdog).
	Pinned bool
}

// TrialResult is one entry of a CompleteN batch: the measured value of a
// leased trial.
type TrialResult struct {
	ID    uint64
	Value float64
}

// TrialFailure is one entry of a FailN batch: a leased trial that failed
// to measure.
type TrialFailure struct {
	ID      uint64
	Failure guard.Failure
}

// lease is the engine's record of an outstanding trial. trial.Config is
// the engine's private copy (the caller got its own clone). epoch is the
// tuner's drift sequence number at lease time: a completion arriving
// after a drift reset is evidence about the regime whose records the
// reset just dropped, and is discarded instead of applied (see
// finishLocked).
type lease struct {
	trial Trial
	prop  search.Proposal
	epoch uint64
}

// bestSnap is the copy-on-write snapshot behind the lock-free Best.
type bestSnap struct {
	algo int
	cfg  param.Config
	val  float64
}

// EngineStats counts trial-engine events since construction.
type EngineStats struct {
	// Leased counts tickets handed out; Completed, Failed and Expired
	// count how they ended (Leased − the others = currently in flight).
	Leased, Completed, Failed, Expired uint64
	// Absorbed counts external observations folded in via Absorb —
	// degraded-mode worker measurements, never leased as trials.
	Absorbed uint64
	// InFlight is the number of currently outstanding leases.
	InFlight int
}

// ConcurrentTuner is the lease-based trial engine over a Tuner: it turns
// the strict Next/Observe alternation into a ticketed, multi-in-flight
// service safe for concurrent use. Workers call Lease to draw a Trial
// and Complete/Fail (in any order, from any goroutine) to report it;
// leases outliving their deadline are reclaimed as timeout failures, so
// a worker that dies never wedges the tuner.
//
// Internally one mutex guards the decision state (selector, strategies,
// counters, checkpoint journal); Best, Counts and Iterations are
// lock-free reads of copy-on-write snapshots refreshed at every
// completion. Phase one is served through a per-algorithm
// search.Proposer, which hands the strategy's genuine proposal to the
// first taker and incumbent-perturbed speculative configurations to
// every concurrent one; phase two goes through
// nominal.InFlightAware.SelectInFlight when the selector supports it, so
// concurrent leases spread across arms instead of piling onto one.
//
// The engine owns the wrapped Tuner: using the Tuner directly after
// NewConcurrentTuner is a data race. For single-threaded callers the
// engine itself offers the classic Next/Observe/Step/Run surface as a
// thin single-lease adapter.
type ConcurrentTuner struct {
	mu        sync.Mutex
	t         *Tuner
	proposers []*search.Proposer
	leases    map[uint64]*lease
	inFlight  []int // per-algorithm outstanding leases
	nextID    uint64
	adapterID uint64 // outstanding single-lease-adapter trial, 0 = none

	leaseTTL    time.Duration
	maxInFlight int
	sweepAt     time.Time        // earliest outstanding deadline; no sweep can reclaim before it
	now         func() time.Time // injectable clock for expiry tests

	nLeased, nCompleted, nFailed, nExpired, nAbsorbed uint64

	best   atomic.Pointer[bestSnap]
	counts atomic.Pointer[[]int]
	iters  atomic.Uint64
}

// NewConcurrentTuner builds a two-phase tuner over the given algorithms
// and wraps it in the trial engine, in one step. It accepts both
// tuner-scope options (WithGuard, WithCheckpoint, ...) and engine-scope
// options (WithLeaseTimeout, WithMaxInFlight); sharded-scope options are
// rejected with ErrOptionScope.
func NewConcurrentTuner(algos []Algorithm, selector nominal.Selector, factory search.Factory, seed int64, opts ...Option) (*ConcurrentTuner, error) {
	tunerOpts, engineOpts, err := splitEngineOptions(opts)
	if err != nil {
		return nil, err
	}
	t, err := NewTuner(algos, selector, factory, seed, tunerOpts...)
	if err != nil {
		return nil, err
	}
	return wrapEngine(t, engineOpts)
}

// wrapEngine wraps a freshly built (or resumed) Tuner in the trial
// engine. The tuner must be at an iteration boundary — no Next/Observe
// pending — and must not be used directly afterwards. opts must already
// be filtered to engine scope.
func wrapEngine(t *Tuner, opts []Option) (*ConcurrentTuner, error) {
	if t == nil {
		return nil, errors.New("core: NewConcurrentTuner with nil tuner")
	}
	if t.pending {
		return nil, errors.New("core: NewConcurrentTuner with an observation pending")
	}
	// The engine owns the tuner from here: drift resets must not restart
	// the strategies beneath the proposers' outstanding proposals.
	t.engineOwned = true
	c := &ConcurrentTuner{
		t:         t,
		proposers: make([]*search.Proposer, len(t.strategies)),
		leases:    make(map[uint64]*lease),
		inFlight:  make([]int, len(t.algos)),
		leaseTTL:  DefaultLeaseTimeout,
		now:       time.Now,
	}
	for i, s := range t.strategies {
		// Each proposer gets its own speculation stream, decorrelated
		// from the tuner's RNG (which concurrency already makes
		// non-replayable) and from the other proposers'.
		c.proposers[i] = search.NewProposer(s, t.algos[i].space(), t.seed^(0x9e3779b9*int64(i+1)))
	}
	for _, o := range opts {
		o.engine(c)
	}
	c.publishLocked()
	return c, nil
}

// Lease draws the next trial: phase two picks the algorithm (in-flight
// aware when the selector supports it), phase one's proposal layer picks
// the configuration without ever blocking. The returned Trial must be
// finished with Complete or Fail before its Deadline, or the engine
// reclaims it as a timeout.
func (c *ConcurrentTuner) Lease() (Trial, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.leaseLocked()
}

func (c *ConcurrentTuner) leaseLocked() (Trial, error) {
	c.reclaimLocked()
	return c.leaseOneLocked()
}

// leaseOneLocked draws one trial without sweeping expired leases; batch
// callers sweep once and then call this per slot.
func (c *ConcurrentTuner) leaseOneLocked() (Trial, error) {
	if c.maxInFlight > 0 && len(c.leases) >= c.maxInFlight {
		return Trial{}, ErrTooManyInFlight
	}
	t := c.t
	c.nextID++
	tr := Trial{ID: c.nextID}
	var prop search.Proposal
	if t.degraded && t.bestAlgo >= 0 {
		tr.Algo = t.bestAlgo
		tr.Config = t.bestCfg.Clone()
		tr.Pinned = true
	} else {
		if p, ok := t.takeProbe(); ok {
			// Drift-reset re-probe: the arm is forced, phase one
			// proposes normally.
			tr.Algo = p
		} else {
			tr.Algo = c.selectLocked()
		}
		prop = c.proposers[tr.Algo].Propose()
		tr.Config = prop.Config.Clone()
		tr.Speculative = !prop.Primary
	}
	if c.leaseTTL > 0 {
		tr.Deadline = c.now().Add(c.leaseTTL)
		if c.sweepAt.IsZero() || tr.Deadline.Before(c.sweepAt) {
			c.sweepAt = tr.Deadline
		}
	}
	stored := tr
	stored.Config = tr.Config.Clone() // callers may mutate their copy
	c.leases[tr.ID] = &lease{trial: stored, prop: prop, epoch: t.driftSeq}
	c.inFlight[tr.Algo]++
	c.nLeased++
	return tr, nil
}

// selectLocked runs phase two under the engine lock.
func (c *ConcurrentTuner) selectLocked() int {
	if ia, ok := c.t.selector.(nominal.InFlightAware); ok {
		return ia.SelectInFlight(c.t.rng, c.inFlight)
	}
	return c.t.selector.Select(c.t.rng)
}

// Complete finishes a leased trial with its measured value, feeding both
// tuning phases exactly as Tuner.Observe would. Non-finite values are
// converted to Invalid failures with the tuner's penalty. Completions
// arrive in any order; a trial already completed, failed, or reclaimed
// returns ErrUnknownTrial.
func (c *ConcurrentTuner) Complete(id uint64, value float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimLocked()
	return c.completeLocked(id, value)
}

func (c *ConcurrentTuner) completeLocked(id uint64, value float64) error {
	l, ok := c.takeLocked(id)
	if !ok {
		return ErrUnknownTrial
	}
	c.nCompleted++
	if math.IsNaN(value) || math.IsInf(value, 0) {
		f := &guard.Failure{
			Kind:    guard.Invalid,
			Algo:    l.trial.Algo,
			Err:     fmt.Errorf("core: non-finite measurement %v", value),
			Penalty: c.t.penalty(),
		}
		c.finishLocked(l, f.Penalty, f)
		return nil
	}
	c.finishLocked(l, value, nil)
	return nil
}

// Fail finishes a leased trial as a measurement failure (panic, timeout,
// invalid sample), feeding the failure's penalty — or the tuner's, when
// unset — to both phases, as Tuner.ObserveFailure would.
func (c *ConcurrentTuner) Fail(id uint64, f guard.Failure) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimLocked()
	return c.failLocked(id, f)
}

func (c *ConcurrentTuner) failLocked(id uint64, f guard.Failure) error {
	l, ok := c.takeLocked(id)
	if !ok {
		return ErrUnknownTrial
	}
	c.nFailed++
	f.Algo = l.trial.Algo
	if f.Penalty <= 0 || math.IsNaN(f.Penalty) || math.IsInf(f.Penalty, 0) {
		f.Penalty = c.t.penalty()
	}
	c.finishLocked(l, f.Penalty, &f)
	return nil
}

// LeaseN draws up to n trials under a single acquisition of the decision
// mutex — the batch amortization of Lease's per-trial lock round-trip
// (and, through the wire layer, of a remote worker's network round-trip).
// It returns fewer than n trials when WithMaxInFlight caps the batch; it
// returns ErrTooManyInFlight only when not even one trial could be
// leased. Batch contents are exactly what n repeated Lease calls would
// have drawn.
func (c *ConcurrentTuner) LeaseN(n int) ([]Trial, error) {
	if n <= 0 {
		return nil, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimLocked()
	out := make([]Trial, 0, n)
	for i := 0; i < n; i++ {
		tr, err := c.leaseOneLocked()
		if err != nil {
			if len(out) > 0 && errors.Is(err, ErrTooManyInFlight) {
				return out, nil
			}
			return nil, err
		}
		out = append(out, tr)
	}
	return out, nil
}

// CompleteN finishes a batch of leased trials under a single acquisition
// of the decision mutex, in slice order. The returned slice is aligned
// with results: a nil entry means the completion was applied, and
// ErrUnknownTrial means it was acknowledged but dropped — the trial was
// already completed, failed, or reclaimed after its lease expired. A
// dropped late completion is not an error condition for distributed
// callers: retrying a batch whose first attempt was applied is safe,
// which is what makes Complete idempotent per trial ID.
func (c *ConcurrentTuner) CompleteN(results []TrialResult) []error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimLocked()
	errs := make([]error, len(results))
	for i, r := range results {
		errs[i] = c.completeLocked(r.ID, r.Value)
	}
	return errs
}

// FailN fails a batch of leased trials under a single acquisition of the
// decision mutex, with the same alignment and idempotency semantics as
// CompleteN.
func (c *ConcurrentTuner) FailN(fails []TrialFailure) []error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimLocked()
	errs := make([]error, len(fails))
	for i, f := range fails {
		errs[i] = c.failLocked(f.ID, f.Failure)
	}
	return errs
}

// Heartbeat extends the lease deadline of each still-outstanding trial
// to now + the lease timeout and reports, aligned with ids, which ones
// are still alive. A false entry means the trial is no longer leased —
// completed, failed, or already reclaimed — and the worker holding it
// should abandon the measurement rather than complete it. With
// WithLeaseTimeout(0) heartbeats only report liveness; there is no
// deadline to extend.
func (c *ConcurrentTuner) Heartbeat(ids []uint64) []bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimLocked()
	alive := make([]bool, len(ids))
	var deadline time.Time
	if c.leaseTTL > 0 {
		deadline = c.now().Add(c.leaseTTL)
	}
	for i, id := range ids {
		l, ok := c.leases[id]
		if !ok {
			continue
		}
		alive[i] = true
		if c.leaseTTL > 0 {
			l.trial.Deadline = deadline
		}
	}
	return alive
}

// Alive reports, aligned with ids, which trials are still leased —
// like Heartbeat, but without extending any deadline. Overload control
// uses it to prune a session's lease ledger without keeping abandoned
// leases alive.
func (c *ConcurrentTuner) Alive(ids []uint64) []bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimLocked()
	alive := make([]bool, len(ids))
	for i, id := range ids {
		_, alive[i] = c.leases[id]
	}
	return alive
}

// Absorb folds externally-measured observations into phase two and the
// global best, journaling each under a fresh trial ID. This is the
// merge half of the nominal.Mergeable algebra applied across a process
// boundary: a partitioned worker keeps measuring against a local
// selector and, on reconnect, ships its (arm, value) stream here, where
// replaying it through Report is indistinguishable from having observed
// it live (see nominal.Mergeable). Phase one is deliberately untouched
// — the configurations were proposed by the worker's local tuner, not
// by this engine's strategies, exactly like speculative completions.
//
// Observations with an out-of-range arm or a non-finite value are
// skipped; failed observations carry the worker's penalty as Value and
// are charged to the failure counters. Returns the number applied.
func (c *ConcurrentTuner) Absorb(obs []nominal.Observation) int {
	if len(obs) == 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.absorbLocked(obs)
}

// absorbLocked applies Absorb under the decision mutex (shared with the
// sharded engine, which adds replica propagation around it).
func (c *ConcurrentTuner) absorbLocked(obs []nominal.Observation) int {
	t := c.t
	if t.ckptDir != "" {
		t.journalBatch = true
	}
	applied := 0
	for _, o := range obs {
		if o.Arm < 0 || o.Arm >= len(t.algos) || math.IsNaN(o.Value) || math.IsInf(o.Value, 0) {
			continue
		}
		c.nextID++
		var fail *guard.Failure
		if o.Failed {
			fail = &guard.Failure{
				Kind:    guard.Invalid,
				Algo:    o.Arm,
				Err:     errors.New("core: absorbed degraded-mode failure"),
				Penalty: o.Value,
			}
		}
		t.applyCompletion(completion{
			algo: o.Arm, value: o.Value, fail: fail, trial: c.nextID, spec: true,
		}, nil)
		applied++
	}
	if t.journalBatch {
		t.journalBatch = false
		t.journalSync()
	}
	c.nAbsorbed += uint64(applied)
	c.publishLocked()
	return applied
}

// ExportSelectorState serializes the phase-two selector's state under
// the engine mutex — the fold contextual replicas warm-start from. It
// fails when the selector does not implement nominal.Stateful (all
// built-in selectors do).
func (c *ConcurrentTuner) ExportSelectorState() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sel, ok := c.t.selector.(nominal.Stateful)
	if !ok {
		return nil, fmt.Errorf("core: selector %T does not export state", c.t.selector)
	}
	return sel.Export()
}

// RestoreSelectorState replaces the phase-two selector's state with a
// previously exported one, under the engine mutex. The selector must be
// the same type the state was exported from (the caller pairs factories,
// as contextual replicas do with the global engine's selector).
func (c *ConcurrentTuner) RestoreSelectorState(data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	sel, ok := c.t.selector.(nominal.Stateful)
	if !ok {
		return fmt.Errorf("core: selector %T does not restore state", c.t.selector)
	}
	if err := sel.Restore(data); err != nil {
		return err
	}
	c.publishLocked()
	return nil
}

// DecaySelector discounts the phase-two selector's accumulated history
// (see nominal.Decayable), keeping roughly a keep-fraction of each arm's
// evidence. Contextual replicas use it to soften a warm start imported
// from another engine's fold: the imported record biases early choices
// but weakly-evidenced arms return to the unvisited state and are
// re-probed against local, honestly-scaled measurements. No-op for
// selectors that do not implement Decayable.
func (c *ConcurrentTuner) DecaySelector(keep float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d, ok := c.t.selector.(nominal.Decayable); ok {
		d.Decay(keep)
	}
	c.publishLocked()
}

// Checkpoint forces a snapshot of the current state, rotating the
// journal generation — the final durability step of a graceful drain.
// No-op without WithCheckpoint.
func (c *ConcurrentTuner) Checkpoint() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.t.ckptDir == "" {
		return nil
	}
	if err := c.t.snapshotNow(); err != nil {
		c.t.ckptErr = err
		return err
	}
	c.t.ckptErr = nil
	return nil
}

// LeaseTimeout returns the engine's lease deadline duration (zero when
// expiry is disabled).
func (c *ConcurrentTuner) LeaseTimeout() time.Duration {
	return c.leaseTTL
}

// takeLocked removes an outstanding lease, maintaining in-flight counts.
func (c *ConcurrentTuner) takeLocked(id uint64) (*lease, bool) {
	l, ok := c.leases[id]
	if !ok {
		return nil, false
	}
	delete(c.leases, id)
	c.inFlight[l.trial.Algo]--
	return l, true
}

// reclaimLocked sweeps expired leases, completing each as a timeout
// failure: the penalty reaches the selector, the proposer (releasing a
// wedged primary proposal back to its strategy), and the failure
// counters, so a crashed worker costs one penalized iteration instead of
// a stuck engine. Called at the top of every engine entry point.
func (c *ConcurrentTuner) reclaimLocked() {
	if c.leaseTTL <= 0 || len(c.leases) == 0 {
		return
	}
	now := c.now()
	if !c.sweepAt.IsZero() && now.Before(c.sweepAt) {
		return // nothing can have expired yet; skip the map scan
	}
	for id, l := range c.leases {
		if !l.trial.Deadline.IsZero() && now.After(l.trial.Deadline) {
			delete(c.leases, id)
			c.inFlight[l.trial.Algo]--
			c.nExpired++
			f := &guard.Failure{
				Kind:    guard.Timeout,
				Algo:    l.trial.Algo,
				Err:     fmt.Errorf("core: trial %d lease expired", id),
				Penalty: c.t.penalty(),
			}
			c.finishLocked(l, f.Penalty, f)
		}
	}
	// Recompute the watermark from the survivors so the next scan waits
	// for the new earliest deadline. Completions may leave it stale
	// (pointing at a reported lease), which costs at most one extra
	// scan per TTL window, never a missed expiry.
	c.sweepAt = time.Time{}
	for _, l := range c.leases {
		d := l.trial.Deadline
		if !d.IsZero() && (c.sweepAt.IsZero() || d.Before(c.sweepAt)) {
			c.sweepAt = d
		}
	}
}

// ReclaimExpired sweeps expired leases immediately (the sweep otherwise
// piggybacks on Lease/Complete/Fail calls) and returns how many trials
// it reclaimed as timeouts.
func (c *ConcurrentTuner) ReclaimExpired() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	before := c.nExpired
	c.sweepAt = time.Time{} // explicit call: force the scan past the watermark
	c.reclaimLocked()
	return int(c.nExpired - before)
}

// finishLocked routes one taken lease through the shared completion
// path and refreshes the lock-free snapshots. A lease older than the
// current drift epoch is discarded instead: its measurement belongs to
// the regime whose evidence the reset dropped, and folding it in would
// re-poison the decayed selector (a single stale best-value record
// re-enthrones the dethroned incumbent). Phase one is still unblocked —
// the proposer's ask/tell alternation must not wedge on a dropped
// result.
func (c *ConcurrentTuner) finishLocked(l *lease, value float64, fail *guard.Failure) {
	if l.epoch != c.t.driftSeq {
		if !l.trial.Pinned {
			c.proposers[l.trial.Algo].Report(l.prop, value)
		}
		if d := c.t.drift; d != nil {
			d.staleDrops++
		}
		return
	}
	var report func(param.Config, float64)
	if !l.trial.Pinned {
		algo, prop := l.trial.Algo, l.prop
		// The proposer routes: primary reports reach the strategy,
		// speculative ones only the proposer-local incumbent.
		report = func(param.Config, float64) { c.proposers[algo].Report(prop, value) }
	}
	c.t.applyCompletion(completion{
		algo:   l.trial.Algo,
		cfg:    l.trial.Config,
		value:  value,
		fail:   fail,
		pinned: l.trial.Pinned,
		trial:  l.trial.ID,
		spec:   l.trial.Speculative,
	}, report)
	c.publishLocked()
}

// publishLocked refreshes the copy-on-write snapshots read lock-free by
// Best, Counts and Iterations.
func (c *ConcurrentTuner) publishLocked() {
	t := c.t
	if t.bestAlgo >= 0 {
		c.best.Store(&bestSnap{algo: t.bestAlgo, cfg: t.bestCfg.Clone(), val: t.bestVal})
	}
	counts := make([]int, len(t.counts))
	copy(counts, t.counts)
	c.counts.Store(&counts)
	c.iters.Store(uint64(t.Iterations()))
}

// Best returns the globally best observation so far — (-1, nil, +Inf)
// before any — without taking the engine lock.
func (c *ConcurrentTuner) Best() (algo int, cfg param.Config, value float64) {
	b := c.best.Load()
	if b == nil {
		return -1, nil, math.Inf(1)
	}
	return b.algo, b.cfg.Clone(), b.val
}

// Counts returns a copy of the per-algorithm completion counts without
// taking the engine lock.
func (c *ConcurrentTuner) Counts() []int {
	p := c.counts.Load()
	if p == nil {
		return nil
	}
	out := make([]int, len(*p))
	copy(out, *p)
	return out
}

// Iterations returns the number of completed trials without taking the
// engine lock.
func (c *ConcurrentTuner) Iterations() int { return int(c.iters.Load()) }

// Stats returns the trial-engine event counters.
func (c *ConcurrentTuner) Stats() EngineStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return EngineStats{
		Leased:    c.nLeased,
		Completed: c.nCompleted,
		Failed:    c.nFailed,
		Expired:   c.nExpired,
		Absorbed:  c.nAbsorbed,
		InFlight:  len(c.leases),
	}
}

// InFlight returns the number of currently outstanding leases.
func (c *ConcurrentTuner) InFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.leases)
}

// NumAlgorithms returns the number of algorithm alternatives.
func (c *ConcurrentTuner) NumAlgorithms() int { return len(c.t.algos) }

// AlgorithmName returns the name of algorithm i.
func (c *ConcurrentTuner) AlgorithmName(i int) string { return c.t.algos[i].Name }

// Guard exposes the guard installed by WithGuard (nil without it); the
// guard is internally synchronized, so workers may Invoke it directly.
func (c *ConcurrentTuner) Guard() *guard.Guard { return c.t.guard }

// FailureStats returns the failure counters (see Tuner.FailureStats).
func (c *ConcurrentTuner) FailureStats() FailureStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.FailureStats()
}

// Degraded reports whether the watchdog currently pins the incumbent.
func (c *ConcurrentTuner) Degraded() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.degraded
}

// History returns the per-iteration records, in completion order.
func (c *ConcurrentTuner) History() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.History()
}

// ValuesOf returns the completed values of one algorithm in completion
// order (see Tuner.ValuesOf for the WithoutHistory bound).
func (c *ConcurrentTuner) ValuesOf(algo int) []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.ValuesOf(algo)
}

// BestConfigOf returns phase one's incumbent for one algorithm.
func (c *ConcurrentTuner) BestConfigOf(algo int) (param.Config, float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.proposers[algo].Best()
}

// CheckpointErr returns the most recent checkpoint I/O error, or nil.
func (c *ConcurrentTuner) CheckpointErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t.ckptErr
}

// Next is the single-lease adapter for Tuner.Next: it leases one trial
// and remembers it for the following Observe/ObserveFailure. Like
// Tuner.Next it panics on a pending observation; unlike raw leases the
// adapter's trial is what Observe completes, so sequential callers can
// switch a *Tuner for a *ConcurrentTuner without other changes.
func (c *ConcurrentTuner) Next() (algo int, cfg param.Config) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.adapterID != 0 {
		panic("core: Next called with an observation pending")
	}
	tr, err := c.leaseLocked()
	if err != nil {
		panic(err)
	}
	c.adapterID = tr.ID
	return tr.Algo, tr.Config
}

// Observe completes the adapter trial leased by the preceding Next.
func (c *ConcurrentTuner) Observe(value float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.adapterID
	if id == 0 {
		panic("core: Observe called without a pending Next")
	}
	c.adapterID = 0
	if err := c.completeLocked(id, value); err != nil {
		panic(err)
	}
}

// ObserveFailure fails the adapter trial leased by the preceding Next.
func (c *ConcurrentTuner) ObserveFailure(f guard.Failure) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.adapterID
	if id == 0 {
		panic("core: ObserveFailure called without a pending Next")
	}
	c.adapterID = 0
	if err := c.failLocked(id, f); err != nil {
		panic(err)
	}
}

// Step runs one complete trial with the given measurement function,
// releasing the engine lock while m runs so concurrent workers proceed.
// With WithGuard installed the measurement runs under the guard.
func (c *ConcurrentTuner) Step(m Measure) Record {
	tr, err := c.Lease()
	if err != nil {
		panic(err)
	}
	if g := c.t.guard; g != nil {
		v, fail := g.Invoke(m, tr.Algo, tr.Config)
		if fail != nil {
			c.Fail(tr.ID, *fail)
		} else {
			c.Complete(tr.ID, v)
		}
	} else {
		c.Complete(tr.ID, m(tr.Algo, tr.Config))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Record{
		Iteration: c.t.Iterations() - 1,
		Algo:      tr.Algo,
		Config:    tr.Config.Clone(),
		Value:     c.t.lastValue,
		Failed:    c.t.lastFailed,
	}
}

// Run executes iters trials sequentially (see RunPool for the
// multi-worker driver).
func (c *ConcurrentTuner) Run(iters int, m Measure) {
	for i := 0; i < iters; i++ {
		c.Step(m)
	}
}

// RunPool drives the engine with a pool of worker goroutines until total
// trials have been leased, blocking until all complete. Each worker
// loops lease → measure → complete; with WithGuard installed every
// measurement runs under the guard. When WithMaxInFlight is below the
// worker count, workers briefly back off on ErrTooManyInFlight.
func (c *ConcurrentTuner) RunPool(workers, total int, m Measure) {
	if workers < 1 {
		workers = 1
	}
	g := c.t.guard
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= int64(total) {
				var tr Trial
				for {
					var err error
					tr, err = c.Lease()
					if err == nil {
						break
					}
					if !errors.Is(err, ErrTooManyInFlight) {
						panic(err)
					}
					time.Sleep(200 * time.Microsecond)
				}
				if g != nil {
					v, fail := g.Invoke(m, tr.Algo, tr.Config)
					if fail != nil {
						c.Fail(tr.ID, *fail)
					} else {
						c.Complete(tr.ID, v)
					}
				} else {
					c.Complete(tr.ID, m(tr.Algo, tr.Config))
				}
			}
		}()
	}
	wg.Wait()
}
