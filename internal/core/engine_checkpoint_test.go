package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/guard"
	"repro/internal/nominal"
)

// TestConcurrentCrashResume drives the trial engine with several leases
// in flight, completing them out of order (interleaved trial IDs,
// speculative records, failures), kills it with leases outstanding, and
// checks that ResumeConcurrent reconstructs the decision state from the
// journal and the engine keeps working.
func TestConcurrentCrashResume(t *testing.T) {
	dir := t.TempDir()
	algos := engineAlgos()
	mk := func() nominal.Selector { return nominal.NewEpsilonGreedy(0.10) }

	ct, err := NewConcurrentTuner(algos, mk(), nil, 11, WithCheckpoint(dir, 10), WithMaxInFlight(8))
	if err != nil {
		t.Fatal(err)
	}

	// 12 batches of 3 leases completed in reverse order: completion
	// order never matches lease order, so the journal's trial IDs are
	// interleaved; one completion in three is a failure.
	completed := 0
	for batch := 0; batch < 12; batch++ {
		var trs []Trial
		for i := 0; i < 3; i++ {
			tr, err := ct.Lease()
			if err != nil {
				t.Fatal(err)
			}
			trs = append(trs, tr)
		}
		for i := len(trs) - 1; i >= 0; i-- {
			if completed%3 == 2 {
				err = ct.Fail(trs[i].ID, guard.Failure{Kind: guard.Panic, Err: errors.New("boom")})
			} else {
				err = ct.Complete(trs[i].ID, engineMeasure(trs[i].Algo, trs[i].Config))
			}
			if err != nil {
				t.Fatal(err)
			}
			completed++
		}
	}
	// Two leases left dangling at the "crash": lost by design.
	if _, err := ct.Lease(); err != nil {
		t.Fatal(err)
	}
	if _, err := ct.Lease(); err != nil {
		t.Fatal(err)
	}
	if ct.Iterations() != completed {
		t.Fatalf("pre-crash iterations = %d, want %d", ct.Iterations(), completed)
	}
	preCounts := ct.Counts()
	preBestA, preBestC, preBestV := ct.Best()
	preFS := ct.FailureStats()
	maxID := ct.nextID

	// Sequential Resume must refuse a trial-engine journal.
	if _, err := Resume(dir, 10, algos, mk(), nil, 11); err == nil || !strings.Contains(err.Error(), "ResumeConcurrent") {
		t.Fatalf("sequential Resume on a concurrent journal: err = %v, want a pointer to ResumeConcurrent", err)
	}

	res, err := ResumeConcurrent(dir, 10, algos, mk(), nil, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations() != completed {
		t.Fatalf("resumed iterations = %d, want %d (every journaled completion, no dangling leases)", res.Iterations(), completed)
	}
	for i, c := range res.Counts() {
		if c != preCounts[i] {
			t.Fatalf("resumed counts[%d] = %d, want %d", i, c, preCounts[i])
		}
	}
	rA, rC, rV := res.Best()
	if rA != preBestA || rV != preBestV || !rC.Equal(preBestC) {
		t.Fatalf("resumed best (%d,%v,%v), want (%d,%v,%v)", rA, rC, rV, preBestA, preBestC, preBestV)
	}
	rFS := res.FailureStats()
	if rFS.Total != preFS.Total || rFS.Panics != preFS.Panics {
		t.Fatalf("resumed failure stats %+v, want %+v", rFS, preFS)
	}

	// Fresh trial IDs must not collide with journaled ones.
	tr, err := res.Lease()
	if err != nil {
		t.Fatal(err)
	}
	if tr.ID <= maxID-2 { // the two dangling IDs were never journaled
		t.Fatalf("resumed trial ID %d collides with journaled IDs (max leased %d)", tr.ID, maxID)
	}
	if err := res.Complete(tr.ID, 1.0); err != nil {
		t.Fatal(err)
	}
	// And the resumed engine keeps tuning and checkpointing.
	res.RunPool(4, 40, engineMeasure)
	if res.Iterations() != completed+41 {
		t.Fatalf("post-resume iterations = %d, want %d", res.Iterations(), completed+41)
	}
	if err := res.CheckpointErr(); err != nil {
		t.Fatalf("checkpointing degraded after resume: %v", err)
	}
}

// TestConcurrentResumeOfSequentialJournal checks ResumeConcurrent also
// accepts a plain sequential journal (trial IDs all zero): the engine is
// the superset.
func TestConcurrentResumeOfSequentialJournal(t *testing.T) {
	dir := t.TempDir()
	algos := engineAlgos()
	tn, err := New(algos, nominal.NewEpsilonGreedy(0.10), nil, 13, WithCheckpoint(dir, 8))
	if err != nil {
		t.Fatal(err)
	}
	tn.Run(27, engineMeasure)
	want := tn.Counts()

	res, err := ResumeConcurrent(dir, 8, algos, nominal.NewEpsilonGreedy(0.10), nil, 13)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations() != 27 {
		t.Fatalf("resumed iterations = %d, want 27", res.Iterations())
	}
	for i, c := range res.Counts() {
		if c != want[i] {
			t.Fatalf("resumed counts[%d] = %d, want %d", i, c, want[i])
		}
	}
	res.RunPool(2, 10, engineMeasure)
	if res.Iterations() != 37 {
		t.Fatalf("post-resume iterations = %d, want 37", res.Iterations())
	}
}
