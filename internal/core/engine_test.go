package core

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/guard"
	"repro/internal/nominal"
	"repro/internal/param"
)

// engineAlgos is a mixed set for engine tests: tunable and
// parameterless algorithms.
func engineAlgos() []Algorithm {
	return []Algorithm{
		{Name: "plain"},
		{Name: "tuned", Space: param.NewSpace(param.NewRatio("alpha", 1, 10), param.NewRatioInt("block", 8, 512))},
		{Name: "other", Space: param.NewSpace(param.NewRatio("beta", 0, 1))},
		{Name: "spare"},
	}
}

// engineMeasure is a deterministic synthetic measurement.
func engineMeasure(algo int, cfg param.Config) float64 {
	v := float64(4 + 3*algo)
	for _, x := range cfg {
		v += 0.01 * math.Abs(x-5)
	}
	return v
}

func newEngine(t *testing.T, seed int64, opts ...Option) *ConcurrentTuner {
	t.Helper()
	ct, err := NewConcurrentTuner(engineAlgos(), nominal.NewEpsilonGreedy(0.10), nil, seed, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

// TestConcurrentTunerStress hammers the engine from 32 goroutines with
// interleaved lease/complete/fail/expire and asserts that no iteration
// is lost or double-counted. Run under -race this is the engine's
// synchronization proof.
func TestConcurrentTunerStress(t *testing.T) {
	const (
		workers   = 32
		perWorker = 100
		total     = workers * perWorker
	)
	ct := newEngine(t, 1, WithLeaseTimeout(40*time.Millisecond))

	var wg sync.WaitGroup
	var abandoned atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr, err := ct.Lease()
				if err != nil {
					t.Errorf("worker %d: Lease: %v", w, err)
					return
				}
				switch i % 5 {
				case 3:
					// Failure path; the lease may have expired first.
					err := ct.Fail(tr.ID, guard.Failure{Kind: guard.Panic, Err: errors.New("boom")})
					if err != nil && !errors.Is(err, ErrUnknownTrial) {
						t.Errorf("worker %d: Fail: %v", w, err)
					}
				case 4:
					// Abandon: the engine must reclaim it as a timeout.
					abandoned.Add(1)
				default:
					err := ct.Complete(tr.ID, engineMeasure(tr.Algo, tr.Config))
					if err != nil && !errors.Is(err, ErrUnknownTrial) {
						t.Errorf("worker %d: Complete: %v", w, err)
					}
				}
				if i%7 == 0 {
					// Lock-free fast paths, read concurrently with writes.
					ct.Best()
					ct.Counts()
					ct.Iterations()
				}
			}
		}(w)
	}
	wg.Wait()

	// Drain: every abandoned lease must expire and be reclaimed.
	deadline := time.Now().Add(5 * time.Second)
	for ct.InFlight() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d leases still in flight after drain deadline", ct.InFlight())
		}
		time.Sleep(10 * time.Millisecond)
		ct.ReclaimExpired()
	}

	st := ct.Stats()
	if st.Leased != total {
		t.Fatalf("leased %d trials, want %d", st.Leased, total)
	}
	if got := st.Completed + st.Failed + st.Expired; got != total {
		t.Fatalf("completed %d + failed %d + expired %d = %d, want %d (no lost or double-counted trials)",
			st.Completed, st.Failed, st.Expired, got, total)
	}
	if st.Expired < uint64(abandoned.Load()) {
		t.Fatalf("expired %d < abandoned %d", st.Expired, abandoned.Load())
	}
	if ct.Iterations() != total {
		t.Fatalf("Iterations() = %d, want %d", ct.Iterations(), total)
	}
	sum := 0
	for _, c := range ct.Counts() {
		sum += c
	}
	if sum != total {
		t.Fatalf("sum of Counts() = %d, want %d", sum, total)
	}
	fs := ct.FailureStats()
	if got := uint64(fs.Total); got != st.Failed+st.Expired {
		t.Fatalf("FailureStats.Total = %d, want failed %d + expired %d", got, st.Failed, st.Expired)
	}
	if algo, cfg, val := ct.Best(); algo < 0 || cfg == nil || math.IsInf(val, 1) {
		t.Fatalf("no best after %d trials: (%d, %v, %v)", total, algo, cfg, val)
	}
}

// TestLeaseExpiryReclaimedAsTimeout drives expiry with an injected
// clock: an unreported lease must complete as a Timeout failure exactly
// once, and its late Complete must be rejected.
func TestLeaseExpiryReclaimedAsTimeout(t *testing.T) {
	ct := newEngine(t, 2, WithLeaseTimeout(time.Second))
	now := time.Unix(1000, 0)
	ct.now = func() time.Time { return now }

	tr, err := ct.Lease()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Deadline != now.Add(time.Second) {
		t.Fatalf("deadline = %v, want %v", tr.Deadline, now.Add(time.Second))
	}
	if n := ct.ReclaimExpired(); n != 0 {
		t.Fatalf("reclaimed %d before the deadline", n)
	}
	now = now.Add(2 * time.Second)
	if n := ct.ReclaimExpired(); n != 1 {
		t.Fatalf("reclaimed %d at the deadline, want 1", n)
	}
	if err := ct.Complete(tr.ID, 1.0); !errors.Is(err, ErrUnknownTrial) {
		t.Fatalf("late Complete after expiry: err = %v, want ErrUnknownTrial", err)
	}
	fs := ct.FailureStats()
	if fs.Timeouts != 1 || fs.Total != 1 {
		t.Fatalf("failure stats after expiry: %+v, want exactly one timeout", fs)
	}
	if ct.Iterations() != 1 {
		t.Fatalf("Iterations() = %d, want 1 (the reclaimed trial)", ct.Iterations())
	}
}

// TestUnknownTrialRejected covers the remaining ticket-misuse paths.
func TestUnknownTrialRejected(t *testing.T) {
	ct := newEngine(t, 3)
	if err := ct.Complete(999, 1.0); !errors.Is(err, ErrUnknownTrial) {
		t.Fatalf("Complete(unknown) = %v", err)
	}
	tr, _ := ct.Lease()
	if err := ct.Complete(tr.ID, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := ct.Complete(tr.ID, 1.0); !errors.Is(err, ErrUnknownTrial) {
		t.Fatalf("double Complete = %v", err)
	}
	if err := ct.Fail(tr.ID, guard.Failure{Kind: guard.Panic}); !errors.Is(err, ErrUnknownTrial) {
		t.Fatalf("Fail after Complete = %v", err)
	}
}

// TestMaxInFlight checks the lease bound.
func TestMaxInFlight(t *testing.T) {
	ct := newEngine(t, 4, WithMaxInFlight(2))
	a, err := ct.Lease()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ct.Lease(); err != nil {
		t.Fatal(err)
	}
	if _, err := ct.Lease(); !errors.Is(err, ErrTooManyInFlight) {
		t.Fatalf("third lease = %v, want ErrTooManyInFlight", err)
	}
	if err := ct.Complete(a.ID, 1.0); err != nil {
		t.Fatal(err)
	}
	if _, err := ct.Lease(); err != nil {
		t.Fatalf("lease after completion = %v", err)
	}
}

// TestAdapterMatchesSequentialTuner checks the acceptance criterion that
// the classic API is a drop-in: a single-threaded caller driving the
// engine through Next/Observe sees the exact decision sequence of a bare
// Tuner with the same seed.
func TestAdapterMatchesSequentialTuner(t *testing.T) {
	seq, err := New(engineAlgos(), nominal.NewEpsilonGreedy(0.10), nil, 42)
	if err != nil {
		t.Fatal(err)
	}
	ct := newEngine(t, 42)

	const iters = 300
	for i := 0; i < iters; i++ {
		sa, sc := seq.Next()
		ca, cc := ct.Next()
		if sa != ca || !sc.Equal(cc) {
			t.Fatalf("iteration %d: sequential proposes (%d, %v), adapter (%d, %v)", i, sa, sc, ca, cc)
		}
		v := engineMeasure(sa, sc)
		seq.Observe(v)
		ct.Observe(v)
	}
	if sHist, cHist := seq.History(), ct.History(); len(sHist) != len(cHist) {
		t.Fatalf("history lengths: %d vs %d", len(sHist), len(cHist))
	}
	sA, sC, sV := seq.Best()
	cA, cC, cV := ct.Best()
	if sA != cA || sV != cV || !sC.Equal(cC) {
		t.Fatalf("best diverged: (%d,%v,%v) vs (%d,%v,%v)", sA, sC, sV, cA, cC, cV)
	}
	for i := range engineAlgos() {
		if sq, eg := seq.Counts()[i], ct.Counts()[i]; sq != eg {
			t.Fatalf("counts[%d]: %d vs %d", i, sq, eg)
		}
	}
}

// TestAdapterPanicsMirrorTuner checks the adapter keeps the Tuner's
// misuse contract.
func TestAdapterPanicsMirrorTuner(t *testing.T) {
	ct := newEngine(t, 5)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Observe without Next", func() { ct.Observe(1.0) })
	ct.Next()
	mustPanic("double Next", func() { ct.Next() })
	ct.Observe(1.0)
	mustPanic("ObserveFailure without Next", func() { ct.ObserveFailure(guard.Failure{Kind: guard.Panic}) })
}

// TestEngineStepRunAndGuard exercises Step/Run/RunPool with a guard
// installed: panicking measurements become failures, never crashes.
func TestEngineStepRunAndGuard(t *testing.T) {
	ct, err := NewConcurrentTuner(engineAlgos(), guard.NewQuarantine(nominal.NewEpsilonGreedy(0.10)), nil, 6, WithGuard())
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	m := func(algo int, cfg param.Config) float64 {
		if calls.Add(1)%9 == 0 {
			panic("synthetic measurement crash")
		}
		return engineMeasure(algo, cfg)
	}
	rec := ct.Step(m)
	if rec.Iteration != 0 {
		t.Fatalf("first Step iteration = %d", rec.Iteration)
	}
	ct.Run(19, m)
	ct.RunPool(8, 80, m)
	if got := ct.Iterations(); got != 100 {
		t.Fatalf("Iterations() = %d, want 100", got)
	}
	fs := ct.FailureStats()
	if fs.Panics == 0 {
		t.Fatal("guard saw no panics")
	}
	if fs.Total != fs.Panics {
		t.Fatalf("unexpected non-panic failures: %+v", fs)
	}
}

// TestSpeculativeLeasesMarked checks that holding several leases on one
// algorithm yields speculative trials, and that speculative completions
// still reach the global best.
func TestSpeculativeLeasesMarked(t *testing.T) {
	// Round-robin across 1 tunable algorithm forces same-algo leases.
	ct, err := NewConcurrentTuner([]Algorithm{{Name: "only", Space: param.NewSpace(param.NewRatio("x", 0, 10))}},
		nominal.NewEpsilonGreedy(0), nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	trials := make([]Trial, 4)
	spec := 0
	for i := range trials {
		tr, err := ct.Lease()
		if err != nil {
			t.Fatal(err)
		}
		if tr.Speculative {
			spec++
		}
		trials[i] = tr
	}
	if spec != 3 {
		t.Fatalf("4 concurrent leases on one algorithm: %d speculative, want 3", spec)
	}
	// Complete the speculative ones with a great value: the engine's
	// global best must capture it even though phase one never sees it.
	for _, tr := range trials[1:] {
		if err := ct.Complete(tr.ID, 0.25); err != nil {
			t.Fatal(err)
		}
	}
	if err := ct.Complete(trials[0].ID, 5.0); err != nil {
		t.Fatal(err)
	}
	if _, _, v := ct.Best(); v != 0.25 {
		t.Fatalf("global best = %v, want the speculative 0.25", v)
	}
}
