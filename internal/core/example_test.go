package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/nominal"
	"repro/internal/param"
)

// Example demonstrates the complete two-phase online tuning loop: two
// algorithms, one of which has a tunable parameter, measured by a
// deterministic cost model.
func Example() {
	algorithms := []core.Algorithm{
		{Name: "fixed"}, // no parameters, always costs 10
		{
			Name:  "tunable",
			Space: param.NewSpace(param.NewInterval("x", 0, 10)),
			Init:  param.Config{5},
		},
	}
	cost := func(algo int, cfg param.Config) float64 {
		if algo == 0 {
			return 10
		}
		d := cfg[0] - 8
		return 4 + d*d // optimum 4 at x = 8
	}

	tuner, err := core.New(algorithms, nominal.NewEpsilonGreedy(0.10), nil, 1)
	if err != nil {
		panic(err)
	}
	tuner.Run(200, cost)

	best, cfg, val := tuner.Best()
	fmt.Printf("best: %s at %s = %.1f\n",
		algorithms[best].Name, algorithms[best].Space.Format(cfg), val)
	// Output:
	// best: tunable at x=8 = 4.0
}

// ExampleTuner_Next shows the ask/tell form for applications that own
// their loop.
func ExampleTuner_Next() {
	algorithms := []core.Algorithm{{Name: "a"}, {Name: "b"}}
	tuner, err := core.New(algorithms, nominal.NewRoundRobin(), nil, 1)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 4; i++ {
		algo, _ := tuner.Next()
		// … the application runs algorithm algo and times it …
		tuner.Observe(float64(algo + 1))
	}
	fmt.Println(tuner.Counts())
	// Output:
	// [2 2]
}

// ExampleExpandNominal shows the future-work generalization: an algorithm
// whose own space contains a nominal parameter is expanded so the bandit
// handles every nominal decision.
func ExampleExpandNominal() {
	algos := []core.Algorithm{{
		Name: "store",
		Space: param.NewSpace(
			param.NewNominal("layout", "row", "col"),
			param.NewRatioInt("block", 1, 64),
		),
	}}
	e, err := core.ExpandNominal(algos)
	if err != nil {
		panic(err)
	}
	for _, a := range e.Algos {
		fmt.Println(a.Name, a.Space.Dim())
	}
	// Output:
	// store[layout=row] 1
	// store[layout=col] 1
}

// ExampleMedianOfK shows a noise-suppressing measurement decorator.
func ExampleMedianOfK() {
	samples := []float64{10, 500, 10} // one outlier
	i := 0
	raw := func(int, param.Config) float64 {
		v := samples[i%len(samples)]
		i++
		return v
	}
	robust := core.MedianOfK(raw, 3)
	fmt.Println(robust(0, nil))
	// Output:
	// 10
}
