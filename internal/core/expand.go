package core

import (
	"fmt"
	"strings"

	"repro/internal/param"
)

// Expansion generalizes the two-phase tuner from algorithmic choice to
// arbitrary nominal parameters — the paper's stated future work (§VI) —
// by reduction: an algorithm whose own space contains nominal parameters
// is expanded into one derived algorithm per combination of nominal
// values, each with the purely metric residual space. The phase-two
// selector then governs every nominal decision at once (the algorithm
// choice and each nominal parameter value), and phase one only ever sees
// spaces that Nelder-Mead can search.
type Expansion struct {
	// Algos are the derived algorithms to hand to New.
	Algos []Algorithm

	original []int          // derived index → original algorithm index
	fixed    []param.Config // derived index → full-width config with nominal values set, NaN elsewhere
	keep     [][]int        // derived index → indices of the metric dims in the original space
	sources  []Algorithm
}

// MaxExpansion bounds the number of derived algorithms one original
// algorithm may expand into; beyond it the nominal cross-product is
// unmanageable for a bandit and ExpandNominal returns an error.
const MaxExpansion = 512

// ExpandNominal builds the expansion of the given algorithm set.
// Algorithms without nominal parameters pass through unchanged (one
// derived algorithm, identity mapping).
func ExpandNominal(algos []Algorithm) (*Expansion, error) {
	e := &Expansion{sources: algos}
	for ai, a := range algos {
		sp := a.space()
		var nominalDims, metricDims []int
		for d := 0; d < sp.Dim(); d++ {
			if sp.Param(d).Class() == param.Nominal {
				nominalDims = append(nominalDims, d)
			} else {
				metricDims = append(metricDims, d)
			}
		}
		if len(nominalDims) == 0 {
			e.Algos = append(e.Algos, a)
			e.original = append(e.original, ai)
			e.fixed = append(e.fixed, nil)
			e.keep = append(e.keep, metricDims)
			continue
		}

		combos := 1
		for _, d := range nominalDims {
			combos *= sp.Param(d).Cardinality()
			if combos > MaxExpansion {
				return nil, fmt.Errorf("core: algorithm %q expands into more than %d variants", a.Name, MaxExpansion)
			}
		}

		// Residual metric space and the projected initial configuration.
		var residualParams []param.Parameter
		for _, d := range metricDims {
			residualParams = append(residualParams, sp.Param(d))
		}
		residual := param.NewSpace(residualParams...)
		var residualInit param.Config
		if a.Init != nil {
			residualInit = make(param.Config, len(metricDims))
			for i, d := range metricDims {
				residualInit[i] = a.Init[d]
			}
			residualInit = residual.Clamp(residualInit)
		}

		// Enumerate the nominal cross-product with an odometer.
		counters := make([]int, len(nominalDims))
		for {
			full := make(param.Config, sp.Dim())
			var label strings.Builder
			label.WriteString(a.Name)
			label.WriteString("[")
			for i, d := range nominalDims {
				p := sp.Param(d).(*param.NominalParam)
				full[d] = float64(counters[i])
				if i > 0 {
					label.WriteString(",")
				}
				fmt.Fprintf(&label, "%s=%s", p.Name(), p.Labels()[counters[i]])
			}
			label.WriteString("]")

			e.Algos = append(e.Algos, Algorithm{
				Name:  label.String(),
				Space: residual,
				Init:  residualInit,
			})
			e.original = append(e.original, ai)
			e.fixed = append(e.fixed, full)
			e.keep = append(e.keep, metricDims)

			// Increment the odometer.
			i := len(counters) - 1
			for i >= 0 {
				counters[i]++
				if counters[i] < sp.Param(nominalDims[i]).Cardinality() {
					break
				}
				counters[i] = 0
				i--
			}
			if i < 0 {
				break
			}
		}
	}
	return e, nil
}

// Original returns the index of the original algorithm behind derived
// algorithm i.
func (e *Expansion) Original(i int) int { return e.original[i] }

// FullConfig reconstructs the original algorithm's full configuration
// from derived algorithm i's reduced (metric-only) configuration.
func (e *Expansion) FullConfig(i int, reduced param.Config) param.Config {
	if e.fixed[i] == nil {
		return reduced.Clone()
	}
	full := e.fixed[i].Clone()
	for j, d := range e.keep[i] {
		full[d] = reduced[j]
	}
	return full
}

// Measure wraps a measurement function defined over the ORIGINAL
// algorithms and configurations so it can drive a tuner built over the
// expanded set.
func (e *Expansion) Measure(m Measure) Measure {
	return func(algo int, cfg param.Config) float64 {
		return m(e.original[algo], e.FullConfig(algo, cfg))
	}
}

// BestOriginal interprets a tuner built over this expansion: it returns
// the original algorithm index, the full original-space configuration,
// and the best observed value.
func (e *Expansion) BestOriginal(t *Tuner) (algo int, cfg param.Config, value float64) {
	derived, reduced, value := t.Best()
	if derived < 0 {
		return -1, nil, value
	}
	return e.original[derived], e.FullConfig(derived, reduced), value
}
