package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/nominal"
	"repro/internal/param"
)

// nominalAlgos is an algorithm set where one algorithm carries a nominal
// parameter of its own (a storage "layout") alongside a numeric one.
func nominalAlgos() []Algorithm {
	return []Algorithm{
		{Name: "plain"},
		{
			Name: "layouts",
			Space: param.NewSpace(
				param.NewNominal("layout", "rowmajor", "colmajor", "tiled"),
				param.NewInterval("x", 0, 10),
			),
			Init: param.Config{0, 0},
		},
	}
}

// nominalMeasure: "plain" is constant 10; "layouts" depends on the layout
// (tiled is the best branch) and on x (optimum at 8).
func nominalMeasure(algo int, cfg param.Config) float64 {
	if algo == 0 {
		return 10
	}
	base := []float64{9, 7, 3}[int(cfg[0])]
	d := cfg[1] - 8
	return base + d*d/8
}

func TestExpandNominalStructure(t *testing.T) {
	e, err := ExpandNominal(nominalAlgos())
	if err != nil {
		t.Fatal(err)
	}
	// 1 passthrough + 3 layout variants.
	if len(e.Algos) != 4 {
		t.Fatalf("expanded into %d algorithms, want 4", len(e.Algos))
	}
	if e.Algos[0].Name != "plain" || e.Original(0) != 0 {
		t.Errorf("passthrough algorithm mangled: %+v", e.Algos[0])
	}
	wantNames := []string{"layouts[layout=rowmajor]", "layouts[layout=colmajor]", "layouts[layout=tiled]"}
	for i, want := range wantNames {
		got := e.Algos[i+1]
		if got.Name != want {
			t.Errorf("derived algorithm %d name %q, want %q", i, got.Name, want)
		}
		if e.Original(i+1) != 1 {
			t.Errorf("derived algorithm %d original = %d", i, e.Original(i+1))
		}
		if got.Space.Dim() != 1 || got.Space.HasNominal() {
			t.Errorf("residual space wrong: dim=%d nominal=%v", got.Space.Dim(), got.Space.HasNominal())
		}
		if len(got.Init) != 1 || got.Init[0] != 0 {
			t.Errorf("residual init wrong: %v", got.Init)
		}
	}
}

func TestExpandNominalFullConfig(t *testing.T) {
	e, err := ExpandNominal(nominalAlgos())
	if err != nil {
		t.Fatal(err)
	}
	full := e.FullConfig(3, param.Config{5.5}) // layouts[layout=tiled]
	if len(full) != 2 || full[0] != 2 || full[1] != 5.5 {
		t.Errorf("FullConfig = %v, want [2 5.5]", full)
	}
	// Passthrough keeps the reduced config as is (copy, not alias).
	reduced := param.Config{}
	if got := e.FullConfig(0, reduced); len(got) != 0 {
		t.Errorf("passthrough FullConfig = %v", got)
	}
}

func TestExpandedTunerFindsNominalBranch(t *testing.T) {
	e, err := ExpandNominal(nominalAlgos())
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := New(e.Algos, nominal.NewEpsilonGreedy(0.2), DefaultFactory, 3)
	if err != nil {
		t.Fatal(err)
	}
	tuner.Run(600, e.Measure(nominalMeasure))
	algo, cfg, val := e.BestOriginal(tuner)
	if algo != 1 {
		t.Fatalf("best original algorithm %d, want 1 (layouts)", algo)
	}
	if int(cfg[0]) != 2 {
		t.Errorf("best layout index %v, want 2 (tiled)", cfg[0])
	}
	if val > 3.6 {
		t.Errorf("best value %g, want ≤ 3.6 (optimum 3)", val)
	}
	if math.Abs(cfg[1]-8) > 1.5 {
		t.Errorf("numeric parameter %g, want near 8", cfg[1])
	}
}

func TestExpandNominalMultipleNominals(t *testing.T) {
	algos := []Algorithm{{
		Name: "multi",
		Space: param.NewSpace(
			param.NewNominal("a", "x", "y"),
			param.NewNominal("b", "p", "q", "r"),
			param.NewRatioInt("n", 1, 4),
		),
	}}
	e, err := ExpandNominal(algos)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Algos) != 6 {
		t.Fatalf("2×3 nominal cross-product expanded into %d, want 6", len(e.Algos))
	}
	seen := map[string]bool{}
	for i, a := range e.Algos {
		if seen[a.Name] {
			t.Errorf("duplicate derived name %q", a.Name)
		}
		seen[a.Name] = true
		full := e.FullConfig(i, param.Config{2})
		if full[2] != 2 {
			t.Errorf("metric dim lost: %v", full)
		}
		if !strings.Contains(a.Name, "a=") || !strings.Contains(a.Name, "b=") {
			t.Errorf("derived name %q missing nominal assignments", a.Name)
		}
	}
}

func TestExpandNominalTooLarge(t *testing.T) {
	labels := make([]string, 30)
	for i := range labels {
		labels[i] = strings.Repeat("x", i+1)
	}
	algos := []Algorithm{{
		Name: "huge",
		Space: param.NewSpace(
			param.NewNominal("a", labels...),
			param.NewNominal("b", labels...),
		),
	}}
	if _, err := ExpandNominal(algos); err == nil {
		t.Error("900-way expansion did not error")
	}
}

func TestExpandNominalBestBeforeRun(t *testing.T) {
	e, err := ExpandNominal(nominalAlgos())
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := New(e.Algos, nominal.NewRoundRobin(), DefaultFactory, 1)
	if err != nil {
		t.Fatal(err)
	}
	algo, cfg, val := e.BestOriginal(tuner)
	if algo != -1 || cfg != nil || !math.IsInf(val, 1) {
		t.Errorf("BestOriginal before run = (%d, %v, %g)", algo, cfg, val)
	}
}
