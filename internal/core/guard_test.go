package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/guard"
	"repro/internal/nominal"
	"repro/internal/param"
)

// Satellite: Observe must treat non-finite samples as penalized failures
// — never as the incumbent — even without WithGuard.
func TestObserveNaNNeverBecomesIncumbent(t *testing.T) {
	algos, _ := syntheticAlgos()
	tu := mustNew(t, algos, nominal.NewRoundRobin(), DefaultFactory, 1)

	tu.Next()
	tu.Observe(5)
	tu.Next()
	tu.Observe(math.NaN())
	tu.Next()
	tu.Observe(math.Inf(1))

	_, _, best := tu.Best()
	if best != 5 || math.IsNaN(best) {
		t.Fatalf("Best() = %g after NaN/Inf observations, want the finite 5", best)
	}
	fs := tu.FailureStats()
	if fs.Total != 2 || fs.Invalids != 2 {
		t.Errorf("FailureStats = %+v, want 2 invalids", fs)
	}
	// The recorded penalty must exceed the worst valid observation so the
	// strategies steer away.
	h := tu.History()
	if !h[1].Failed || h[1].Value <= 5 || math.IsNaN(h[1].Value) {
		t.Errorf("NaN iteration recorded as %+v, want finite penalty > 5", h[1])
	}
}

func TestObserveAllNaNKeepsBestEmpty(t *testing.T) {
	algos, _ := syntheticAlgos()
	tu := mustNew(t, algos, nominal.NewRoundRobin(), DefaultFactory, 1)
	for i := 0; i < 10; i++ {
		tu.Next()
		tu.Observe(math.NaN())
	}
	algo, cfg, val := tu.Best()
	if algo != -1 || cfg != nil || !math.IsInf(val, 1) {
		t.Errorf("Best after all-failed run = (%d, %v, %g), want (-1, nil, +Inf)", algo, cfg, val)
	}
	if fs := tu.FailureStats(); fs.Total != 10 {
		t.Errorf("failures = %d, want 10", fs.Total)
	}
}

// Satellite: Settled must never report convergence while no finite best
// exists (regression: a run where every iteration fails used to "settle"
// after window iterations because +Inf never improved on +Inf).
func TestSettledNeverTrueWithoutFiniteBest(t *testing.T) {
	algos, _ := syntheticAlgos()
	tu := mustNew(t, algos, nominal.NewRoundRobin(), DefaultFactory, 1)
	nan := func(int, param.Config) float64 { return math.NaN() }
	stop := Settled(5, 0.01)
	n := tu.RunUntil(nan, stop, 60)
	if n != 60 {
		t.Fatalf("Settled reported convergence after %d all-failed iterations", n)
	}
	// Once successes arrive, Settled works from the first finite best.
	_, m := syntheticAlgos()
	n = tu.RunUntil(m, stop, 3000)
	if n == 3000 {
		t.Error("Settled never triggered after recovery")
	}
}

func TestStepWithGuardRecoversPanics(t *testing.T) {
	algos, m := syntheticAlgos()
	crashing := func(algo int, cfg param.Config) float64 {
		if algo == 2 {
			panic("algorithm 2 is broken")
		}
		return m(algo, cfg)
	}
	tu := mustNew(t, algos, nominal.NewEpsilonGreedy(0.2), DefaultFactory, 1, WithGuard())
	tu.Run(300, crashing)

	if tu.Iterations() != 300 {
		t.Fatalf("guarded run completed %d iterations, want 300", tu.Iterations())
	}
	best, _, val := tu.Best()
	if best == 2 {
		t.Error("crashing algorithm became the incumbent")
	}
	if val > 10 {
		t.Errorf("best %g, want ≤ 10 despite the crashing arm", val)
	}
	fs := tu.FailureStats()
	if fs.Panics == 0 || fs.PerAlgo[2] != fs.Total {
		t.Errorf("FailureStats = %+v, want all failures on algorithm 2 as panics", fs)
	}
	if g := tu.Guard(); g == nil || g.Stats().Panics != fs.Panics {
		t.Error("Guard() accessor or guard stats inconsistent")
	}
}

func TestStepWithGuardTimeout(t *testing.T) {
	// Race-target test: the deadline goroutine must be race-clean while
	// the loop keeps measuring past abandoned calls.
	algos, m := syntheticAlgos()
	slow := func(algo int, cfg param.Config) float64 {
		if algo == 2 {
			time.Sleep(80 * time.Millisecond)
			return 1 // would win, but never arrives in time
		}
		return m(algo, cfg)
	}
	tu := mustNew(t, algos, nominal.NewRoundRobin(), DefaultFactory, 1,
		WithGuard(guard.WithTimeout(10*time.Millisecond)))
	tu.Run(12, slow)
	fs := tu.FailureStats()
	if fs.Timeouts != 4 {
		t.Errorf("timeouts = %d, want 4 (round-robin visits algo 2 four times)", fs.Timeouts)
	}
	if best, _, _ := tu.Best(); best == 2 {
		t.Error("timed-out algorithm became the incumbent")
	}
}

func TestGuardedRecordMarksFailures(t *testing.T) {
	algos, _ := syntheticAlgos()
	tu := mustNew(t, algos, nominal.NewRoundRobin(), DefaultFactory, 1, WithGuard())
	rec := tu.Step(func(int, param.Config) float64 { panic("x") })
	if !rec.Failed || rec.Value != guard.DefaultFallbackPenalty {
		t.Errorf("record = %+v, want Failed with fallback penalty", rec)
	}
	rec = tu.Step(func(int, param.Config) float64 { return 3 })
	if rec.Failed || rec.Value != 3 {
		t.Errorf("record = %+v, want clean 3", rec)
	}
}

func TestObserveFailureAskTell(t *testing.T) {
	algos, _ := syntheticAlgos()
	tu := mustNew(t, algos, nominal.NewRoundRobin(), DefaultFactory, 1)
	tu.Next()
	tu.Observe(8)
	algo, _ := tu.Next()
	tu.ObserveFailure(guard.Failure{Kind: guard.Panic, Algo: algo})
	fs := tu.FailureStats()
	if fs.Panics != 1 {
		t.Errorf("FailureStats = %+v, want 1 panic", fs)
	}
	// The penalty derives from the worst valid observation (8 × factor).
	h := tu.History()
	if h[1].Value != 8*guard.DefaultPenaltyFactor {
		t.Errorf("penalty = %g, want %g", h[1].Value, 8*guard.DefaultPenaltyFactor)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("ObserveFailure without a pending Next did not panic")
			}
		}()
		tu.ObserveFailure(guard.Failure{})
	}()
}

// failAfter returns a measurement that behaves until iteration from, then
// fails every call (NaN) until iteration to.
func failWindowMeasure(m Measure, calls *int, from, to int) Measure {
	return func(algo int, cfg param.Config) float64 {
		n := *calls
		*calls = n + 1
		if n >= from && n < to {
			return math.NaN()
		}
		return m(algo, cfg)
	}
}

func TestDegradationPinsIncumbentAndRecovers(t *testing.T) {
	algos, m := syntheticAlgos()
	calls := 0
	// 60 healthy iterations, then 80 where everything fails, then healthy
	// again.
	meas := failWindowMeasure(m, &calls, 60, 140)
	tu := mustNew(t, algos, nominal.NewEpsilonGreedy(0.1), DefaultFactory, 3,
		WithWatchdog(8, 0.5))

	tu.Run(60, meas)
	if tu.Degraded() {
		t.Fatal("degraded during the healthy phase")
	}
	bestBefore, _, valBefore := tu.Best()

	tu.Run(80, meas)
	if !tu.Degraded() {
		t.Fatal("watchdog did not trigger degradation under a 100% failure rate")
	}
	fs := tu.FailureStats()
	if fs.PinnedIterations == 0 {
		t.Error("degradation mode never pinned the incumbent")
	}
	if fs.RecentRate < 0.5 {
		t.Errorf("recent failure rate %g, want ≥ 0.5", fs.RecentRate)
	}
	best, _, val := tu.Best()
	if best != bestBefore || val != valBefore {
		t.Errorf("incumbent moved during the outage: (%d, %g) → (%d, %g)",
			bestBefore, valBefore, best, val)
	}

	tu.Run(40, meas)
	if tu.Degraded() {
		t.Error("tuner did not recover once failures stopped")
	}
}

func TestDegradationRequiresIncumbent(t *testing.T) {
	// With no success ever, there is nothing to pin: the tuner must keep
	// exploring (and failing) rather than pinning a nonexistent best.
	algos, _ := syntheticAlgos()
	tu := mustNew(t, algos, nominal.NewRoundRobin(), DefaultFactory, 1, WithWatchdog(4, 0.5))
	tu.Run(40, func(int, param.Config) float64 { return math.NaN() })
	if tu.Degraded() {
		t.Error("degraded with no incumbent to pin")
	}
	counts := tu.Counts()
	for i, c := range counts {
		if c == 0 {
			t.Errorf("algorithm %d starved during an all-failure run", i)
		}
	}
}

func TestWatchdogDisabled(t *testing.T) {
	algos, m := syntheticAlgos()
	calls := 0
	tu := mustNew(t, algos, nominal.NewEpsilonGreedy(0.1), DefaultFactory, 3,
		WithWatchdog(0, 0.5))
	tu.Run(40, failWindowMeasure(m, &calls, 10, 200))
	if tu.Degraded() {
		t.Error("watchdog fired despite window 0 (disabled)")
	}
	if fs := tu.FailureStats(); fs.RecentRate != 0 {
		t.Errorf("recent rate %g with watchdog disabled, want 0", fs.RecentRate)
	}
}

func TestGuardWithQuarantineSuspendsCrashingArm(t *testing.T) {
	// End-to-end: guard converts crashes into failures, the quarantine
	// selector suspends the arm, and the tuner still finds the optimum.
	algos, m := syntheticAlgos()
	crashing := func(algo int, cfg param.Config) float64 {
		if algo == 2 {
			panic("broken")
		}
		return m(algo, cfg)
	}
	q := guard.NewQuarantine(nominal.NewEpsilonGreedy(0.1))
	q.K = 2
	tu := mustNew(t, algos, q, DefaultFactory, 5, WithGuard())
	tu.Run(400, crashing)

	if tu.Iterations() != 400 {
		t.Fatal("guarded+quarantined run did not complete")
	}
	if q.Trips(2) == 0 {
		t.Error("crashing arm never quarantined")
	}
	counts := tu.Counts()
	if counts[2] > 400/4 {
		t.Errorf("crashing arm still ran %d of 400 iterations", counts[2])
	}
	if counts[2] == 0 {
		t.Error("quarantine permanently excluded the crashing arm")
	}
	best, _, val := tu.Best()
	if best == 2 || val > 10 {
		t.Errorf("best = (%d, %g), want a healthy arm ≤ 10", best, val)
	}
}

func TestTunerDeterminismWithGuard(t *testing.T) {
	// The guard must not perturb the tuner's random streams: a guarded
	// run over a deterministic failing measure is reproducible.
	run := func() []Record {
		algos, m := syntheticAlgos()
		calls := 0
		tu := mustNew(t, algos, nominal.NewEpsilonGreedy(0.1), DefaultFactory, 42, WithGuard())
		tu.Run(100, failWindowMeasure(m, &calls, 20, 40))
		return tu.History()
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Algo != b[i].Algo || a[i].Value != b[i].Value || a[i].Failed != b[i].Failed {
			t.Fatalf("iteration %d differs between identical guarded runs", i)
		}
	}
}
