package core

import (
	"sort"

	"repro/internal/param"
)

// The paper's §II-A requirements on the tuned operation include that "its
// performance should only depend on the current configuration, as
// approximative search techniques tend to be vulnerable to measurement
// noise". Real measurements rarely oblige; the decorators here trade
// extra evaluations for noise suppression before samples reach the two
// tuning phases.

// MedianOfK wraps a measurement function so each observation is the
// median of k runs: the true middle sample for odd k, the mean of the two
// middle samples for even k. The decorator multiplies the cost of every
// tuning iteration by k, so it only pays off when the noise is comparable
// to the differences the tuner must resolve (ablation A8 quantifies the
// trade).
func MedianOfK(m Measure, k int) Measure {
	if k < 1 {
		k = 1
	}
	if k == 1 {
		return m
	}
	return func(algo int, cfg param.Config) float64 {
		vals := make([]float64, k)
		for i := range vals {
			vals[i] = m(algo, cfg)
		}
		sort.Float64s(vals)
		if k%2 == 0 {
			return (vals[k/2-1] + vals[k/2]) / 2
		}
		return vals[k/2]
	}
}

// MinOfK wraps a measurement function so each observation is the minimum
// of k runs — the standard discipline for wall-clock micro-measurements,
// where the minimum is the least-disturbed sample.
func MinOfK(m Measure, k int) Measure {
	if k < 1 {
		k = 1
	}
	if k == 1 {
		return m
	}
	return func(algo int, cfg param.Config) float64 {
		best := m(algo, cfg)
		for i := 1; i < k; i++ {
			if v := m(algo, cfg); v < best {
				best = v
			}
		}
		return best
	}
}

// EMA wraps a measurement function with a per-(algorithm, configuration
// independent) exponential moving average: the reported sample is
// alpha·raw + (1−alpha)·previous, smoothing spikes without multiplying
// the measurement cost. State is per algorithm, matching the tuner's
// per-algorithm phase-one strategies. alpha in (0, 1]; alpha = 1 is the
// identity.
func EMA(m Measure, alpha float64) Measure {
	if alpha <= 0 || alpha > 1 {
		alpha = 1
	}
	if alpha == 1 {
		return m
	}
	state := map[int]float64{}
	return func(algo int, cfg param.Config) float64 {
		raw := m(algo, cfg)
		prev, ok := state[algo]
		if !ok {
			state[algo] = raw
			return raw
		}
		v := alpha*raw + (1-alpha)*prev
		state[algo] = v
		return v
	}
}
