package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nominal"
	"repro/internal/param"
)

func TestMedianOfK(t *testing.T) {
	seq := []float64{10, 1000, 10, 10, 9} // one huge outlier
	i := 0
	m := func(int, param.Config) float64 {
		v := seq[i%len(seq)]
		i++
		return v
	}
	med := MedianOfK(m, 5)
	if got := med(0, nil); got != 10 {
		t.Errorf("median of %v = %g, want 10", seq, got)
	}
	if i != 5 {
		t.Errorf("k=5 should consume 5 measurements, consumed %d", i)
	}
	// Even k averages the two middle samples instead of returning the
	// upper one.
	evens := []float64{1, 2, 10, 100}
	i = 0
	mEven := func(int, param.Config) float64 {
		v := evens[i%len(evens)]
		i++
		return v
	}
	if got := MedianOfK(mEven, 4)(0, nil); got != 6 {
		t.Errorf("median of %v = %g, want (2+10)/2 = 6", evens, got)
	}
	if i != 4 {
		t.Errorf("k=4 should consume 4 measurements, consumed %d", i)
	}
	i = 0
	if got := MedianOfK(mEven, 2)(0, nil); got != 1.5 {
		t.Errorf("median of first two = %g, want 1.5", got)
	}
	// k ≤ 1 is the identity (no extra evaluations).
	i = 0
	id := MedianOfK(m, 1)
	id(0, nil)
	if i != 1 {
		t.Errorf("k=1 consumed %d measurements", i)
	}
	i = 0
	MedianOfK(m, 0)(0, nil)
	if i != 1 {
		t.Errorf("k=0 should clamp to identity")
	}
}

func TestMinOfK(t *testing.T) {
	seq := []float64{12, 11, 10, 14}
	i := 0
	m := func(int, param.Config) float64 {
		v := seq[i%len(seq)]
		i++
		return v
	}
	if got := MinOfK(m, 4)(0, nil); got != 10 {
		t.Errorf("min of %v = %g", seq, got)
	}
}

func TestEMA(t *testing.T) {
	seq := []float64{10, 20, 20}
	i := 0
	m := func(algo int, _ param.Config) float64 {
		v := seq[i%len(seq)]
		i++
		return v
	}
	e := EMA(m, 0.5)
	if got := e(0, nil); got != 10 {
		t.Errorf("first sample should pass through, got %g", got)
	}
	if got := e(0, nil); got != 15 {
		t.Errorf("EMA after 10,20 = %g, want 15", got)
	}
	if got := e(0, nil); got != 17.5 {
		t.Errorf("EMA after 10,20,20 = %g, want 17.5", got)
	}
	// Per-algorithm state: a different algo starts fresh.
	i = 0
	if got := e(1, nil); got != 10 {
		t.Errorf("other algorithm's first sample = %g, want 10", got)
	}
	// Bad alpha degrades to identity.
	i = 0
	if got := EMA(m, 0)(0, nil); got != 10 {
		t.Errorf("alpha=0 identity broken: %g", got)
	}
}

func TestMedianOfKImprovesTuningUnderNoise(t *testing.T) {
	// A noisy quadratic: Nelder-Mead inside the tuner should land closer
	// to the optimum when each observation is a median-of-5.
	run := func(m Measure, seed int64) float64 {
		algos := []Algorithm{{
			Name:  "noisy",
			Space: param.NewSpace(param.NewInterval("x", 0, 10)),
			Init:  param.Config{0},
		}}
		tu, err := New(algos, nominal.NewRoundRobin(), DefaultFactory, seed)
		if err != nil {
			t.Fatal(err)
		}
		tu.Run(120, m)
		// Judge by the TRUE cost of the final incumbent configuration,
		// not the (noisy) observed best value.
		_, cfg, _ := tu.Best()
		d := cfg[0] - 7
		return 3 + d*d
	}
	sumRaw, sumMed := 0.0, 0.0
	const trials = 6
	for seed := int64(0); seed < trials; seed++ {
		r1 := rand.New(rand.NewSource(seed*2 + 1))
		noisy1 := func(_ int, cfg param.Config) float64 {
			d := cfg[0] - 7
			v := 3 + d*d
			return v * (1 + 0.4*r1.NormFloat64())
		}
		r2 := rand.New(rand.NewSource(seed*2 + 1))
		noisy2 := func(_ int, cfg param.Config) float64 {
			d := cfg[0] - 7
			v := 3 + d*d
			return v * (1 + 0.4*r2.NormFloat64())
		}
		sumRaw += run(noisy1, seed)
		sumMed += run(MedianOfK(noisy2, 5), seed)
	}
	if !(sumMed < sumRaw) {
		t.Errorf("median-of-5 true cost %.3f not better than raw %.3f under 40%% noise",
			sumMed/trials, sumRaw/trials)
	}
	if math.IsNaN(sumMed) || math.IsNaN(sumRaw) {
		t.Fatal("NaN costs")
	}
}
