package core

import (
	"fmt"
	"io"
	"math"
	"strconv"

	"repro/internal/param"
	"repro/internal/search"
)

// OfflineTune applies the paper's two-phase formulation literally, in its
// original order, for offline scenarios (e.g. an installation-time tuning
// step): phase one first determines C_opt,A = argmin m_A(C) for every
// algorithm with its own search-strategy instance and a fixed evaluation
// budget, then phase two picks the global optimum among the per-algorithm
// optima. The paper observes the online/offline difference is "mostly a
// technical one" — offline tuning has no real-time constraint, so it can
// afford a fixed per-algorithm budget instead of a selection strategy.
//
// Algorithms with fully discrete spaces small enough to enumerate within
// the budget are searched exhaustively (optimal, as §II-B notes, when
// exploration cost is irrelevant); the others use the factory's strategy.
func OfflineTune(algos []Algorithm, budgetPerAlgo int, factory search.Factory, m Measure, seed int64) (algo int, cfg param.Config, value float64, err error) {
	if len(algos) == 0 {
		return -1, nil, math.Inf(1), fmt.Errorf("core: no algorithms to tune")
	}
	if budgetPerAlgo < 1 {
		budgetPerAlgo = 1
	}
	if factory == nil {
		factory = DefaultFactory
	}
	bestAlgo, bestVal := -1, math.Inf(1)
	var bestCfg param.Config
	for ai, a := range algos {
		sp := a.space()
		var s search.Strategy
		if card := sp.Cardinality(); card > 0 && card <= budgetPerAlgo {
			s = search.NewExhaustive()
		} else {
			s = factory()
			if !s.Supports(sp) {
				s = DefaultStrategyFor(sp, seed+int64(ai))
			}
		}
		if err := s.Start(sp, a.Init); err != nil {
			return -1, nil, math.Inf(1), fmt.Errorf("core: algorithm %q: %w", a.Name, err)
		}
		for i := 0; i < budgetPerAlgo && !(i > 0 && s.Converged()); i++ {
			c := s.Propose()
			s.Report(c, m(ai, c))
		}
		if c, v := s.Best(); v < bestVal {
			bestAlgo, bestCfg, bestVal = ai, c, v
		}
	}
	return bestAlgo, bestCfg, bestVal, nil
}

// WriteHistoryCSV emits the tuner's per-iteration records as CSV:
// iteration, algorithm name, measured value, formatted configuration.
// It is the raw-data export behind the figures.
func (t *Tuner) WriteHistoryCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "iteration,algorithm,value,config"); err != nil {
		return err
	}
	for _, r := range t.history {
		cfgStr := t.algos[r.Algo].space().Format(r.Config)
		if _, err := fmt.Fprintf(w, "%d,%s,%s,%q\n",
			r.Iteration, t.algos[r.Algo].Name,
			strconv.FormatFloat(r.Value, 'g', -1, 64), cfgStr); err != nil {
			return err
		}
	}
	return nil
}
