package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/search"
)

func TestOfflineTuneFindsGlobalOptimum(t *testing.T) {
	algos, m := syntheticAlgos()
	algo, cfg, val, err := OfflineTune(algos, 120, search.NewByNameMust("nelder-mead"), m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if algo != 1 {
		t.Fatalf("offline best algorithm %d, want 1", algo)
	}
	if val > 5.2 {
		t.Errorf("offline best value %g (config %v), want near 5", val, cfg)
	}
}

func TestOfflineTuneExhaustiveOnSmallDiscrete(t *testing.T) {
	algos := []Algorithm{
		{Name: "flat"},
		{
			Name:  "grid",
			Space: param.NewSpace(param.NewRatioInt("k", 0, 9)),
		},
	}
	m := func(algo int, cfg param.Config) float64 {
		if algo == 0 {
			return 5
		}
		d := cfg[0] - 7
		return 1 + d*d
	}
	// Budget 10 covers the 10-point grid: exhaustive search must find the
	// exact optimum k = 7.
	algo, cfg, val, err := OfflineTune(algos, 10, nil, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if algo != 1 || cfg[0] != 7 || val != 1 {
		t.Errorf("offline exhaustive: algo=%d cfg=%v val=%g, want (1, [7], 1)", algo, cfg, val)
	}
}

func TestOfflineTuneValidation(t *testing.T) {
	if _, _, _, err := OfflineTune(nil, 10, nil, nil, 1); err == nil {
		t.Error("no algorithms did not error")
	}
	// Budget < 1 clamps rather than failing.
	algos := []Algorithm{{Name: "a"}}
	m := func(int, param.Config) float64 { return 1 }
	algo, _, val, err := OfflineTune(algos, 0, nil, m, 1)
	if err != nil || algo != 0 || val != 1 {
		t.Errorf("clamped budget run: %d %g %v", algo, val, err)
	}
}

func TestOfflineTuneFallbackStrategy(t *testing.T) {
	// An ordinal space is unsupported by Nelder-Mead; OfflineTune must
	// fall back (hill climbing) rather than fail.
	algos := []Algorithm{{
		Name:  "ordinal",
		Space: param.NewSpace(param.NewOrdinal("s", "a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l")),
	}}
	m := func(_ int, cfg param.Config) float64 { return math.Abs(cfg[0] - 7) }
	algo, cfg, val, err := OfflineTune(algos, 200, DefaultFactory, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if algo != 0 || val != 0 || cfg[0] != 7 {
		t.Errorf("ordinal fallback: %d %v %g", algo, cfg, val)
	}
}

func TestWriteHistoryCSV(t *testing.T) {
	algos, m := syntheticAlgos()
	tu := mustNew(t, algos, nominal.NewRoundRobin(), DefaultFactory, 1)
	tu.Run(6, m)
	var sb strings.Builder
	if err := tu.WriteHistoryCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 7 {
		t.Fatalf("CSV has %d lines, want header + 6", len(lines))
	}
	if lines[0] != "iteration,algorithm,value,config" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,fast-fixed,10,") {
		t.Errorf("first record = %q", lines[1])
	}
	if !strings.Contains(lines[2], "tunable") || !strings.Contains(lines[2], "x=") {
		t.Errorf("config cell missing: %q", lines[2])
	}
}
