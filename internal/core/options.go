package core

import (
	"errors"
	"time"

	"repro/internal/guard"
)

// ErrOptionScope is returned (wrapped) by a constructor handed an Option
// that does not apply to what it builds — for example WithMaxInFlight on
// the sequential NewTuner, or WithShards on NewConcurrentTuner. The old
// split between Option (tuner) and EngineOption (engine) made such
// mismatches unrepresentable but forced every caller to juggle two
// slices; the unified type makes them representable and loud instead of
// silently no-oping.
var ErrOptionScope = errors.New("option does not apply to this constructor")

// An Option configures any of the core constructors. One option type
// serves NewTuner, NewConcurrentTuner, NewShardedEngine and the Resume
// functions; each option documents its scope, and a constructor outside
// that scope rejects it with an error wrapping ErrOptionScope.
type Option struct {
	name    string
	tuner   func(*Tuner)
	engine  func(*ConcurrentTuner)
	sharded func(*shardConfig)
}

// EngineOption is the former engine-only option type.
//
// Deprecated: Option now covers every constructor; EngineOption is an
// alias kept so existing []EngineOption call sites compile unchanged.
type EngineOption = Option

func tunerOption(name string, f func(*Tuner)) Option {
	return Option{name: name, tuner: f}
}

func engineOption(name string, f func(*ConcurrentTuner)) Option {
	return Option{name: name, engine: f}
}

func shardedOption(name string, f func(*shardConfig)) Option {
	return Option{name: name, sharded: f}
}

// splitEngineOptions partitions options for a constructor that builds a
// Tuner wrapped in a ConcurrentTuner; sharded-only options are out of
// scope there.
func splitEngineOptions(opts []Option) (tunerOpts, engineOpts []Option, err error) {
	for _, o := range opts {
		switch {
		case o.tuner != nil:
			tunerOpts = append(tunerOpts, o)
		case o.engine != nil:
			engineOpts = append(engineOpts, o)
		default:
			return nil, nil, scopeErr(o)
		}
	}
	return tunerOpts, engineOpts, nil
}

// splitShardedOptions peels off the sharded-scope options into cfg and
// returns the rest (tuner + engine scope) for the inner constructors.
func splitShardedOptions(opts []Option, cfg *shardConfig) (rest []Option) {
	for _, o := range opts {
		if o.sharded != nil {
			o.sharded(cfg)
			continue
		}
		rest = append(rest, o)
	}
	return rest
}

func scopeErr(o Option) error {
	name := o.name
	if name == "" {
		name = "(unnamed option)"
	}
	return &optionScopeError{name: name}
}

type optionScopeError struct{ name string }

func (e *optionScopeError) Error() string {
	return "core: option " + e.name + ": " + ErrOptionScope.Error()
}

func (e *optionScopeError) Unwrap() error { return ErrOptionScope }

// WithoutHistory disables per-iteration record keeping (the counts and
// incumbent are still maintained). Long-running production loops use this
// to keep memory constant. Scope: every constructor (it configures the
// underlying Tuner).
func WithoutHistory() Option {
	return tunerOption("WithoutHistory", func(t *Tuner) { t.keepHistory = false })
}

// WithGuard installs a fault-tolerance guard built from the given
// options (see package guard): Step/Run route every measurement through
// it, so panics are recovered, deadlines enforced (guard.WithTimeout),
// and invalid samples rejected — each failure feeding a penalty to both
// tuning phases instead of crashing or poisoning the loop. Ask/tell
// callers wrap their measurement with Tuner.Guard().SafeMeasure (or call
// ObserveFailure directly). Combine with a guard.Quarantine selector to
// also suspend persistently failing algorithms. Scope: every
// constructor.
func WithGuard(opts ...guard.Option) Option {
	return tunerOption("WithGuard", func(t *Tuner) { t.guard = guard.New(opts...) })
}

// WithWatchdog tunes the failure-rate watchdog behind the degradation
// mode: when the failure rate over the last window completed iterations
// reaches threshold (in (0, 1]), the tuner stops exploring and pins the
// known-good incumbent until the rate falls back below threshold/2.
// The default is window 32, threshold 0.5. A window of 0 disables the
// watchdog entirely. Scope: every constructor.
func WithWatchdog(window int, threshold float64) Option {
	return tunerOption("WithWatchdog", func(t *Tuner) {
		t.watchWindow = window
		if threshold > 0 && threshold <= 1 {
			t.degradeAt = threshold
			t.recoverAt = threshold / 2
		}
	})
}

// WithLeaseTimeout sets the lease deadline (default DefaultLeaseTimeout).
// A d ≤ 0 disables expiry entirely: a lost worker then wedges its trial
// forever, so only disable it when completions are guaranteed. Scope:
// concurrent and sharded constructors.
func WithLeaseTimeout(d time.Duration) Option {
	return engineOption("WithLeaseTimeout", func(c *ConcurrentTuner) { c.leaseTTL = d })
}

// WithMaxInFlight bounds the number of simultaneously outstanding
// leases; Lease returns ErrTooManyInFlight beyond it. Zero (the default)
// means unlimited. Scope: concurrent and sharded constructors (a sharded
// engine divides the cap evenly across shards).
func WithMaxInFlight(n int) Option {
	return engineOption("WithMaxInFlight", func(c *ConcurrentTuner) { c.maxInFlight = n })
}

// WithShards sets the number of selector shards of a ShardedEngine.
// One shard (the default) disables sharding: the engine delegates
// directly to the wrapped ConcurrentTuner. Scope: NewShardedEngine /
// ResumeSharded only.
func WithShards(n int) Option {
	return shardedOption("WithShards", func(sc *shardConfig) {
		if n > 0 {
			sc.shards = n
		}
	})
}

// WithMergeEvery sets K, the per-shard observation count that triggers a
// merge of the shard's delta into the authoritative selector (the
// staleness bound: a replica lags the global state by at most K·shards
// observations between folds). Best() reads always force a merge first.
// Scope: NewShardedEngine / ResumeSharded only.
func WithMergeEvery(k int) Option {
	return shardedOption("WithMergeEvery", func(sc *shardConfig) {
		if k > 0 {
			sc.mergeEvery = k
		}
	})
}
