package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/guard"
	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/search"
)

// DefaultMergeEvery is the per-shard observation count between merges of
// a shard's delta into the authoritative selector (see WithMergeEvery).
const DefaultMergeEvery = 16

// shardIDBase offsets sharded trial IDs: the inner engine issues IDs
// monotonically from 0 (and journal resume continues above the highest
// journaled one), so starting shard tickets at a 2³² multiple above both
// keeps the two ID spaces disjoint forever.
const shardIDBase = uint64(1) << 32

// ErrNotMergeable is returned by NewShardedEngine/ResumeSharded when
// more than one shard is requested but the selector does not implement
// nominal.Mergeable (for example a guard.Quarantine wrapper). Sharding
// replicates selector state per shard; a selector that cannot fork and
// merge cannot be replicated.
var ErrNotMergeable = errors.New("core: selector does not implement nominal.Mergeable")

// shardConfig collects the sharded-scope options before construction.
type shardConfig struct {
	shards     int
	mergeEvery int
}

// ShardedEngine partitions workers across N selector shards, each
// owning a private fork of the phase-two selector plus a local lease
// table under its own mutex. Trials lease and complete entirely within
// one shard — no global lock, no per-trial snapshot publication — and
// each shard accumulates its completions as an observation delta. Every
// K completions (WithMergeEvery), and on every Best/Counts read, the
// shard folds its delta into the authoritative ConcurrentTuner under the
// existing decision mutex: the observations replay through the exact
// applyCompletion path a live trial takes (so counters, watchdog,
// incumbent, and the write-ahead journal all see them identically — a
// journal written by a sharded engine resumes through ResumeConcurrent
// or ResumeSharded alike), the whole batch is journaled under a single
// fsync, and the shard catches its replica up by replaying the other
// shards' folded observations from the engine's observation log (its own
// it already saw live), then adopts the authoritative incumbents for its
// speculators. Per-trial contention on the decision mutex becomes
// per-epoch contention, and the replica catch-up costs O(lag) reports
// instead of a deep selector copy per fold.
//
// Phase one: the authoritative strategies advance only at fold time.
// Between folds each algorithm's single genuine ("primary") proposal is
// parked in a one-slot channel any shard may claim; every other trial of
// that algorithm runs a shard-local speculative configuration
// (search.Speculator), whose result reaches the strategy's incumbent
// tracking at the next fold — the same primary/speculative split the
// ConcurrentTuner uses, relaxed across shards.
//
// With one shard (the default) sharding is disabled: every call
// delegates directly to the inner ConcurrentTuner, which preserves the
// sequential tuner's exact decision sequence for single-flight callers.
//
// The replication cost is staleness, not correctness: a shard's replica
// lags the authoritative selector by at most K·N observations, and the
// merge algebra (nominal.Mergeable) makes a folded observation
// indistinguishable from a live one.
type ShardedEngine struct {
	inner      *ConcurrentTuner
	n          int
	mergeEvery int
	base       uint64
	shardMax   int // per-shard in-flight cap (0 = unlimited)
	shards     []*shard

	// primaries holds, per algorithm, the strategy's one genuine
	// outstanding proposal, claimable by any shard without the decision
	// mutex; refilled under it at every fold.
	primaries []chan search.Proposal

	// log is the append-only stream of non-pinned observations folded
	// into the authoritative selector, in fold order. A shard catches its
	// replica up by replaying the entries past its synced mark (skipping
	// its own, which it reported live), which makes the replica's report
	// stream a reordering of the authoritative one without deep-copying
	// the selector every fold. Guarded by the inner decision mutex;
	// entries are immutable once appended. logBase is the absolute index
	// of log[0]: the prefix every shard has replayed is compacted away,
	// so the log's steady-state length is bounded by the largest replica
	// lag, not the run length.
	log     []logObs
	logBase int

	rr      atomic.Uint64 // round-robin router for shardless Lease calls
	pending atomic.Int64  // completions recorded in shard deltas, not yet folded

	nLeased, nCompleted, nFailed, nExpired, nAbsorbed atomic.Uint64
}

// shard is one selector partition. foldMu serializes folds of this
// shard (so delta batches reach the journal in recording order); mu
// guards everything else and is never held while taking the inner
// engine's mutex.
type shard struct {
	idx    int
	foldMu sync.Mutex

	mu       sync.Mutex
	replica  nominal.Selector
	rng      *rand.Rand
	spec     []*search.Speculator
	inFlight []int
	leases   map[uint64]*shardLease
	seq      uint64
	delta    []shardObs
	spare    []shardObs // folded batch's backing array, recycled at the next swap

	// synced is the absolute engine-log index this shard's replica has
	// replayed through; guarded by the inner decision mutex (it is read
	// and advanced only while folding, under that mutex).
	synced int
	// lagBuf is the fold-private scratch the catch-up slice is copied
	// into before the decision mutex drops (log compaction may shift the
	// live view); guarded by foldMu.
	lagBuf []logObs

	// Authoritative state cached at the last fold.
	pinnedAlgo int // degradation-mode incumbent to pin; -1 when healthy
	pinnedCfg  param.Config
	penalty    float64

	// Drift propagation: driftSeen is the authoritative drift sequence
	// number this shard's replica reflects (advanced only while folding
	// under both foldMu and mu; leases read it under mu to epoch-stamp
	// themselves); a fold observing a newer sequence re-forks the
	// replica — the authoritative selector was reset, so replaying the
	// lag into the stale replica would resurrect exactly the evidence
	// the reset dropped. probeQ (guarded by mu) holds this shard's
	// share of the reset's forced re-probes.
	driftSeen uint64
	probeQ    []int
}

// logObs is one folded observation in the engine's catch-up log.
type logObs struct {
	arm   int32
	shard int32
	value float64
}

// logCompactAt is the replayed-prefix length past which the log is
// compacted in place (no allocation: entries shift down the same
// backing array).
const logCompactAt = 1024

// replicaReforkAt is the catch-up lag past which replaying the log into
// a replica costs more than deep-copying the authoritative selector
// (whose per-arm tail is bounded): a shard that far behind — typically
// one whose workers starved for a long stretch — re-forks instead.
const replicaReforkAt = 512

// shardLease records an outstanding trial. epoch is the shard's drift
// sequence at lease time; a completion folding in after a drift reset
// is discarded (see flushShard).
type shardLease struct {
	trial   Trial
	prop    search.Proposal
	primary bool
	epoch   uint64
}

// shardObs is one completed trial awaiting its fold: everything
// applyCompletion needs, plus the proposal handle for phase-one routing.
type shardObs struct {
	id       uint64
	algo     int
	cfg      param.Config
	value    float64 // measurement, or the penalty when failed
	failKind guard.Kind
	failed   bool
	pinned   bool
	prop     search.Proposal
	primary  bool
	epoch    uint64 // lease-time drift sequence (see shardLease)
}

// NewShardedEngine builds a tuner, wraps it in the trial engine, and
// partitions selection across WithShards(n) shards. It accepts every
// option scope. With more than one shard the selector must implement
// nominal.Mergeable (ErrNotMergeable otherwise); with one shard (the
// default) the engine is a transparent wrapper over NewConcurrentTuner.
func NewShardedEngine(algos []Algorithm, selector nominal.Selector, factory search.Factory, seed int64, opts ...Option) (*ShardedEngine, error) {
	cfg := shardConfig{shards: 1, mergeEvery: DefaultMergeEvery}
	rest := splitShardedOptions(opts, &cfg)
	inner, err := NewConcurrentTuner(algos, selector, factory, seed, rest...)
	if err != nil {
		return nil, err
	}
	return newShardedOver(inner, cfg)
}

// ResumeSharded reconstructs a checkpointed sharded engine from dir: the
// snapshot and journal replay exactly as in ResumeConcurrent (shard
// deltas were journaled through the same write-ahead path), and fresh
// shards fork off the recovered selector.
func ResumeSharded(dir string, every int, algos []Algorithm, selector nominal.Selector, factory search.Factory, seed int64, opts ...Option) (*ShardedEngine, error) {
	cfg := shardConfig{shards: 1, mergeEvery: DefaultMergeEvery}
	rest := splitShardedOptions(opts, &cfg)
	inner, err := ResumeConcurrent(dir, every, algos, selector, factory, seed, rest...)
	if err != nil {
		return nil, err
	}
	return newShardedOver(inner, cfg)
}

// newShardedOver partitions an existing engine into cfg.shards shards.
func newShardedOver(c *ConcurrentTuner, cfg shardConfig) (*ShardedEngine, error) {
	e := &ShardedEngine{inner: c, n: cfg.shards, mergeEvery: cfg.mergeEvery}
	if e.n <= 1 {
		e.n = 1
		return e, nil
	}
	t := c.t
	m, ok := t.selector.(nominal.Mergeable)
	if !ok {
		return nil, fmt.Errorf("core: %d shards over selector %s: %w", e.n, t.selector.Name(), ErrNotMergeable)
	}
	e.base = shardIDBase
	for e.base <= c.nextID {
		e.base += shardIDBase
	}
	if c.maxInFlight > 0 {
		e.shardMax = (c.maxInFlight + e.n - 1) / e.n
	}
	e.primaries = make([]chan search.Proposal, len(t.algos))
	for i := range e.primaries {
		e.primaries[i] = make(chan search.Proposal, 1)
	}

	c.mu.Lock()
	e.refillPrimariesLocked()
	pen := t.penalty()
	pinAlgo, pinCfg := degradedPinLocked(t)
	bases, baseVals := proposerBestsLocked(c)
	driftSeq := t.driftSeq
	c.mu.Unlock()

	e.shards = make([]*shard, e.n)
	for i := range e.shards {
		s := &shard{
			idx:        i,
			replica:    m.Fork(),
			rng:        rand.New(rand.NewSource(t.seed ^ (0x6a09e667bb67ae85 * int64(i+1)))),
			spec:       make([]*search.Speculator, len(t.algos)),
			inFlight:   make([]int, len(t.algos)),
			leases:     make(map[uint64]*shardLease),
			delta:      make([]shardObs, 0, cfg.mergeEvery+8),
			spare:      make([]shardObs, 0, cfg.mergeEvery+8),
			pinnedAlgo: pinAlgo,
			penalty:    pen,
			driftSeen:  driftSeq,
		}
		if pinCfg != nil {
			s.pinnedCfg = pinCfg.Clone()
		}
		for a := range t.algos {
			s.spec[a] = search.NewSpeculator(t.algos[a].space(),
				t.seed^(0x9e3779b9*int64(i*len(t.algos)+a+1)))
			if bases[a] != nil {
				s.spec[a].SetBase(bases[a], baseVals[a])
			}
		}
		e.shards[i] = s
	}
	return e, nil
}

// refillPrimariesLocked tops up each algorithm's one-slot primary
// channel with the strategy's next genuine proposal, under the decision
// mutex. An algorithm whose primary is leased out (or still parked) is
// skipped; the proposer guarantees one genuine proposal outstanding at a
// time.
func (e *ShardedEngine) refillPrimariesLocked() {
	for i, p := range e.inner.proposers {
		if p.PrimaryOutstanding() {
			continue
		}
		select {
		case e.primaries[i] <- p.Propose():
		default:
		}
	}
}

// degradedPinLocked returns the incumbent shards must pin while the
// watchdog has the tuner degraded, or (-1, nil).
func degradedPinLocked(t *Tuner) (int, param.Config) {
	if t.degraded && t.bestAlgo >= 0 {
		return t.bestAlgo, t.bestCfg.Clone()
	}
	return -1, nil
}

// proposerBestsLocked snapshots each algorithm's incumbent for the
// speculator rebroadcast.
func proposerBestsLocked(c *ConcurrentTuner) ([]param.Config, []float64) {
	bases := make([]param.Config, len(c.proposers))
	vals := make([]float64, len(c.proposers))
	for i, p := range c.proposers {
		if cfg, val := p.Best(); cfg != nil {
			bases[i] = cfg.Clone()
			vals[i] = val
		}
	}
	return bases, vals
}

// Shards returns the shard count (1 when sharding is disabled).
func (e *ShardedEngine) Shards() int { return e.n }

// shardOf maps a trial ID back to its shard, or nil for IDs the sharded
// path never issued.
func (e *ShardedEngine) shardOf(id uint64) *shard {
	if id < e.base {
		return nil
	}
	return e.shards[(id-e.base)%uint64(e.n)]
}

// Lease draws one trial from the next shard in round-robin order.
// Workers with a stable identity get better locality from LeaseNOn.
func (e *ShardedEngine) Lease() (Trial, error) {
	if e.n == 1 {
		return e.inner.Lease()
	}
	trs, err := e.LeaseNOn(int(e.rr.Add(1)-1), 1)
	if err != nil {
		return Trial{}, err
	}
	return trs[0], nil
}

// LeaseN draws up to n trials from the next shard in round-robin order.
func (e *ShardedEngine) LeaseN(n int) ([]Trial, error) {
	if e.n == 1 {
		return e.inner.LeaseN(n)
	}
	return e.LeaseNOn(int(e.rr.Add(1)-1), n)
}

// LeaseNOn draws up to n trials from shard shardIdx (taken modulo the
// shard count): phase two runs on the shard's selector replica, phase
// one hands out the algorithm's parked primary proposal to the first
// taker and shard-local speculative configurations otherwise. Pinning a
// worker to a shard (the tuned server assigns one per session, RunPool
// one per worker) keeps its trials on one lease table and one replica.
func (e *ShardedEngine) LeaseNOn(shardIdx, n int) ([]Trial, error) {
	if n <= 0 {
		return nil, nil
	}
	if e.n == 1 {
		return e.inner.LeaseN(n)
	}
	s := e.shards[((shardIdx%e.n)+e.n)%e.n]
	s.mu.Lock()
	expired := s.sweepLocked(e)
	out := make([]Trial, 0, n)
	for i := 0; i < n; i++ {
		if e.shardMax > 0 && len(s.leases) >= e.shardMax {
			break
		}
		out = append(out, s.leaseOneLocked(e))
	}
	flush := len(s.delta) >= e.mergeEvery
	s.mu.Unlock()
	e.nExpired.Add(uint64(expired))
	e.nLeased.Add(uint64(len(out)))
	if flush {
		e.flushShard(s)
	}
	if len(out) == 0 {
		return nil, ErrTooManyInFlight
	}
	return out, nil
}

// leaseOn is LeaseNOn for a single trial without the batch slice — the
// in-process worker pool's hot path.
func (e *ShardedEngine) leaseOn(shardIdx int) (Trial, error) {
	s := e.shards[((shardIdx%e.n)+e.n)%e.n]
	s.mu.Lock()
	expired := s.sweepLocked(e)
	var tr Trial
	leased := false
	if e.shardMax <= 0 || len(s.leases) < e.shardMax {
		tr = s.leaseOneLocked(e)
		leased = true
	}
	flush := len(s.delta) >= e.mergeEvery
	s.mu.Unlock()
	e.nExpired.Add(uint64(expired))
	if leased {
		e.nLeased.Add(1)
	}
	if flush {
		e.flushShard(s)
	}
	if !leased {
		return Trial{}, ErrTooManyInFlight
	}
	return tr, nil
}

// leaseOneLocked draws one trial entirely within the shard.
func (s *shard) leaseOneLocked(e *ShardedEngine) Trial {
	id := e.base + s.seq*uint64(e.n) + uint64(s.idx)
	s.seq++
	tr := Trial{ID: id}
	var prop search.Proposal
	var stored param.Config // the engine's private copy of the config
	primary := false
	if s.pinnedAlgo >= 0 {
		tr.Algo = s.pinnedAlgo
		tr.Config = s.pinnedCfg.Clone()
		tr.Pinned = true
		// pinnedCfg is replaced wholesale at rebroadcasts, never mutated
		// in place, so the lease can share it.
		stored = s.pinnedCfg
	} else {
		if len(s.probeQ) > 0 {
			// Drift-reset re-probe handed to this shard at its last
			// fold: the arm is forced, phase one proposes normally.
			tr.Algo = s.probeQ[0]
			s.probeQ = s.probeQ[:copy(s.probeQ, s.probeQ[1:])]
		} else if ia, ok := s.replica.(nominal.InFlightAware); ok {
			tr.Algo = ia.SelectInFlight(s.rng, s.inFlight)
		} else {
			tr.Algo = s.replica.Select(s.rng)
		}
		select {
		case prop = <-e.primaries[tr.Algo]:
			primary = true
			stored = prop.Config.Clone()
		default:
			// The speculator's draw is a fresh allocation nobody else
			// holds: keep it as the private copy and clone for the caller.
			prop = search.Proposal{Config: s.spec[tr.Algo].Next()}
			stored = prop.Config
		}
		tr.Config = prop.Config.Clone()
		tr.Speculative = !primary
	}
	if ttl := e.inner.leaseTTL; ttl > 0 {
		tr.Deadline = e.inner.now().Add(ttl)
	}
	st := tr
	st.Config = stored
	s.leases[id] = &shardLease{trial: st, prop: prop, primary: primary, epoch: s.driftSeen}
	s.inFlight[tr.Algo]++
	return tr
}

// Complete finishes a leased trial: the shard's replica and speculator
// learn immediately (so the very next local lease benefits), and the
// observation joins the shard's delta for the next fold. Non-finite
// values become Invalid failures with the shard's cached penalty.
func (e *ShardedEngine) Complete(id uint64, value float64) error {
	if e.n == 1 {
		return e.inner.Complete(id, value)
	}
	s := e.shardOf(id)
	if s == nil {
		return ErrUnknownTrial
	}
	s.mu.Lock()
	l, ok := s.leases[id]
	if !ok {
		s.mu.Unlock()
		return ErrUnknownTrial
	}
	delete(s.leases, id)
	s.inFlight[l.trial.Algo]--
	obs := shardObs{
		id: id, algo: l.trial.Algo, cfg: l.trial.Config,
		prop: l.prop, primary: l.primary, pinned: l.trial.Pinned,
		epoch: l.epoch,
	}
	if math.IsNaN(value) || math.IsInf(value, 0) {
		obs.failed = true
		obs.failKind = guard.Invalid
		obs.value = s.penalty
	} else {
		obs.value = value
	}
	s.recordLocked(e, obs)
	flush := len(s.delta) >= e.mergeEvery
	s.mu.Unlock()
	e.nCompleted.Add(1)
	if flush {
		e.flushShard(s)
	}
	return nil
}

// Fail finishes a leased trial as a measurement failure; the failure's
// penalty (or the shard's cached one) feeds the replica now and both
// authoritative phases at the fold.
func (e *ShardedEngine) Fail(id uint64, f guard.Failure) error {
	if e.n == 1 {
		return e.inner.Fail(id, f)
	}
	s := e.shardOf(id)
	if s == nil {
		return ErrUnknownTrial
	}
	s.mu.Lock()
	l, ok := s.leases[id]
	if !ok {
		s.mu.Unlock()
		return ErrUnknownTrial
	}
	delete(s.leases, id)
	s.inFlight[l.trial.Algo]--
	p := f.Penalty
	if p <= 0 || math.IsNaN(p) || math.IsInf(p, 0) {
		p = s.penalty
	}
	s.recordLocked(e, shardObs{
		id: id, algo: l.trial.Algo, cfg: l.trial.Config, value: p,
		failed: true, failKind: f.Kind,
		prop: l.prop, primary: l.primary, pinned: l.trial.Pinned,
		epoch: l.epoch,
	})
	flush := len(s.delta) >= e.mergeEvery
	s.mu.Unlock()
	e.nFailed.Add(1)
	if flush {
		e.flushShard(s)
	}
	return nil
}

// CompleteN finishes a batch, routing each completion to its shard.
func (e *ShardedEngine) CompleteN(results []TrialResult) []error {
	if e.n == 1 {
		return e.inner.CompleteN(results)
	}
	errs := make([]error, len(results))
	for i, r := range results {
		errs[i] = e.Complete(r.ID, r.Value)
	}
	return errs
}

// FailN fails a batch, routing each failure to its shard.
func (e *ShardedEngine) FailN(fails []TrialFailure) []error {
	if e.n == 1 {
		return e.inner.FailN(fails)
	}
	errs := make([]error, len(fails))
	for i, f := range fails {
		errs[i] = e.Fail(f.ID, f.Failure)
	}
	return errs
}

// Heartbeat extends still-outstanding leases and reports liveness,
// exactly as ConcurrentTuner.Heartbeat, per shard.
func (e *ShardedEngine) Heartbeat(ids []uint64) []bool {
	if e.n == 1 {
		return e.inner.Heartbeat(ids)
	}
	alive := make([]bool, len(ids))
	ttl := e.inner.leaseTTL
	var deadline time.Time
	if ttl > 0 {
		deadline = e.inner.now().Add(ttl)
	}
	for i, id := range ids {
		s := e.shardOf(id)
		if s == nil {
			continue
		}
		s.mu.Lock()
		if l, ok := s.leases[id]; ok {
			alive[i] = true
			if ttl > 0 {
				l.trial.Deadline = deadline
			}
		}
		s.mu.Unlock()
	}
	return alive
}

// Alive reports, aligned with ids, which trials are still leased,
// without extending any deadline (compare Heartbeat).
func (e *ShardedEngine) Alive(ids []uint64) []bool {
	if e.n == 1 {
		return e.inner.Alive(ids)
	}
	alive := make([]bool, len(ids))
	for i, id := range ids {
		s := e.shardOf(id)
		if s == nil {
			continue
		}
		s.mu.Lock()
		_, alive[i] = s.leases[id]
		s.mu.Unlock()
	}
	return alive
}

// Absorb folds externally-measured observations into the authoritative
// selector (see ConcurrentTuner.Absorb) and appends them to the engine
// log under a sentinel shard index, so every shard replica replays them
// at its next fold — absorbed observations reach the shards exactly
// like another shard's folded delta.
func (e *ShardedEngine) Absorb(obs []nominal.Observation) int {
	if e.n == 1 {
		return e.inner.Absorb(obs)
	}
	c := e.inner
	c.mu.Lock()
	applied := c.absorbLocked(obs)
	for _, o := range obs {
		if o.Arm < 0 || o.Arm >= len(c.t.algos) || math.IsNaN(o.Value) || math.IsInf(o.Value, 0) {
			continue
		}
		e.log = append(e.log, logObs{arm: int32(o.Arm), shard: -1, value: o.Value})
	}
	c.mu.Unlock()
	e.nAbsorbed.Add(uint64(applied))
	return applied
}

// Checkpoint folds every shard delta and forces a snapshot (see
// ConcurrentTuner.Checkpoint).
func (e *ShardedEngine) Checkpoint() error {
	e.Flush()
	return e.inner.Checkpoint()
}

// recordLocked feeds one completed observation into the shard's local
// state and delta. Pinned runs bypass the replica, mirroring
// applyCompletion's handling at fold time.
func (s *shard) recordLocked(e *ShardedEngine, o shardObs) {
	if !o.pinned {
		s.replica.Report(o.algo, o.value)
		if !o.failed {
			s.spec[o.algo].Observe(o.cfg, o.value)
		}
	}
	s.delta = append(s.delta, o)
	e.pending.Add(1)
}

// sweepLocked reclaims the shard's expired leases as Timeout failures
// into the delta, returning how many it reclaimed.
func (s *shard) sweepLocked(e *ShardedEngine) int {
	ttl := e.inner.leaseTTL
	if ttl <= 0 || len(s.leases) == 0 {
		return 0
	}
	now := e.inner.now()
	n := 0
	for id, l := range s.leases {
		if !l.trial.Deadline.IsZero() && now.After(l.trial.Deadline) {
			delete(s.leases, id)
			s.inFlight[l.trial.Algo]--
			s.recordLocked(e, shardObs{
				id: id, algo: l.trial.Algo, cfg: l.trial.Config, value: s.penalty,
				failed: true, failKind: guard.Timeout,
				prop: l.prop, primary: l.primary, pinned: l.trial.Pinned,
				epoch: l.epoch,
			})
			n++
		}
	}
	return n
}

// flushShard folds the shard's accumulated delta into the authoritative
// tuner and rebroadcasts the merged state back to the shard. Lock
// discipline: foldMu serializes this shard's folds; the shard mutex and
// the decision mutex are each taken and released in turn, never nested.
func (e *ShardedEngine) flushShard(s *shard) {
	s.foldMu.Lock()
	defer s.foldMu.Unlock()

	s.mu.Lock()
	expired := s.sweepLocked(e)
	batch := s.delta
	if len(batch) == 0 {
		s.mu.Unlock()
		e.nExpired.Add(uint64(expired))
		return
	}
	// Swap in the previously folded batch's backing array: deltas
	// alternate between two arrays in steady state, allocation-free.
	s.delta = s.spare[:0]
	s.spare = nil
	s.mu.Unlock()
	e.nExpired.Add(uint64(expired))

	c := e.inner
	t := c.t
	c.mu.Lock()
	if t.ckptDir != "" {
		t.journalBatch = true
	}
	for i := range batch {
		o := &batch[i]
		if o.epoch != t.driftSeq {
			// Leased before a drift reset (possibly one fired earlier in
			// this very batch): the measurement is stale-regime evidence,
			// and folding it in would resurrect exactly the records the
			// reset dropped — one stale best value re-enthrones the
			// dethroned incumbent. Unblock phase one and discard; the
			// observation is never journaled, so resume replays the same
			// stream the selector actually saw.
			if o.primary {
				c.proposers[o.algo].Report(o.prop, o.value)
			}
			if t.drift != nil {
				t.drift.staleDrops++
			}
			continue
		}
		var fail *guard.Failure
		if o.failed {
			fail = &guard.Failure{
				Kind: o.failKind, Algo: o.algo,
				Err:     fmt.Errorf("core: sharded trial %d failed", o.id),
				Penalty: o.value,
			}
		}
		if !o.pinned {
			if o.primary {
				c.proposers[o.algo].Report(o.prop, o.value)
			} else {
				// Speculative results route through the proposer with a
				// non-primary proposal so its incumbent advances without
				// touching the strategy's ask/tell alternation.
				c.proposers[o.algo].Report(search.Proposal{Config: o.cfg}, o.value)
			}
		}
		t.applyCompletion(completion{
			algo: o.algo, cfg: o.cfg, value: o.value, fail: fail,
			pinned: o.pinned, trial: o.id, spec: !o.primary && !o.pinned,
		}, nil)
		if !o.pinned {
			e.log = append(e.log, logObs{arm: int32(o.algo), shard: int32(s.idx), value: o.value})
		}
	}
	if t.journalBatch {
		t.journalBatch = false
		t.journalSync()
	}
	e.refillPrimariesLocked()
	c.publishLocked()

	// Snapshot the merged state for the rebroadcast: copy the catch-up
	// slice out (compaction may shift the live log), advance the synced
	// mark, and compact the fully replayed prefix away. A shard too far
	// behind re-forks the whole selector instead of replaying the lag,
	// and so does a shard whose replica predates a drift reset — the
	// authoritative selector dropped evidence the lag replay would
	// resurrect.
	driftSeq := t.driftSeq
	driftReset := s.driftSeen != driftSeq
	var probeShare []int
	if t.drift != nil && len(t.drift.probeQ) > 0 {
		// Forced re-probes drain on every fold, not just the re-forking
		// one: the ceil division leaves a remainder behind once each
		// shard has taken its share, and any shard can run it.
		probeShare = t.drift.takeProbes((len(t.drift.probeQ) + e.n - 1) / e.n)
	}
	s.lagBuf = s.lagBuf[:0]
	var fork nominal.Selector
	if driftReset || len(e.log)-(s.synced-e.logBase) > replicaReforkAt {
		fork = t.selector.(nominal.Mergeable).Fork()
	} else {
		for _, o := range e.log[s.synced-e.logBase:] {
			if int(o.shard) != s.idx {
				s.lagBuf = append(s.lagBuf, o)
			}
		}
	}
	s.synced = e.logBase + len(e.log)
	e.compactLogLocked()
	pen := t.penalty()
	pinAlgo, pinCfg := degradedPinLocked(t)
	bases, baseVals := proposerBestsLocked(c)
	c.mu.Unlock()
	e.pending.Add(-int64(len(batch)))

	// Rebroadcast: replay the other shards' folded observations into the
	// replica (its own completions it reported live), adopt the
	// authoritative penalty, pin and incumbents, and re-apply the
	// speculator observations recorded since the delta swap above (their
	// replica reports are untouched; only SetBase rewound the bases).
	s.mu.Lock()
	if fork != nil {
		// The fork holds everything folded so far; completions recorded
		// since the delta swap were live-reported to the old replica
		// only, so catch the fork up before it takes over.
		for i := range s.delta {
			if o := &s.delta[i]; !o.pinned {
				fork.Report(o.algo, o.value)
			}
		}
		s.replica = fork
	}
	for _, o := range s.lagBuf {
		s.replica.Report(int(o.arm), o.value)
	}
	s.driftSeen = driftSeq
	if len(probeShare) > 0 {
		s.probeQ = append(s.probeQ, probeShare...)
	}
	s.penalty = pen
	s.pinnedAlgo = pinAlgo
	s.pinnedCfg = nil
	if pinCfg != nil {
		s.pinnedCfg = pinCfg.Clone()
	}
	for a, sp := range s.spec {
		if bases[a] != nil {
			sp.SetBase(bases[a], baseVals[a])
		}
	}
	for i := range s.delta {
		o := &s.delta[i]
		if !o.failed && !o.pinned {
			s.spec[o.algo].Observe(o.cfg, o.value)
		}
	}
	s.spare = batch[:0]
	s.mu.Unlock()
}

// compactLogLocked drops the log prefix every shard has replayed, in
// place, once it is long enough to matter. Caller holds the decision
// mutex.
func (e *ShardedEngine) compactLogLocked() {
	min := e.shards[0].synced
	for _, s := range e.shards[1:] {
		if s.synced < min {
			min = s.synced
		}
	}
	if k := min - e.logBase; k >= logCompactAt {
		n := copy(e.log, e.log[k:])
		e.log = e.log[:n]
		e.logBase = min
	}
}

// Flush folds every shard's outstanding delta into the authoritative
// selector. Best, Counts and the stats readers call it implicitly.
func (e *ShardedEngine) Flush() {
	if e.n == 1 {
		return
	}
	for _, s := range e.shards {
		e.flushShard(s)
	}
}

// ReclaimExpired sweeps expired leases on every shard (and the inner
// engine), returning how many trials were reclaimed as timeouts.
func (e *ShardedEngine) ReclaimExpired() int {
	if e.n == 1 {
		return e.inner.ReclaimExpired()
	}
	total := 0
	for _, s := range e.shards {
		s.mu.Lock()
		k := s.sweepLocked(e)
		flush := len(s.delta) >= e.mergeEvery
		s.mu.Unlock()
		e.nExpired.Add(uint64(k))
		total += k
		if flush {
			e.flushShard(s)
		}
	}
	return total
}

// Best merges all shard deltas and returns the authoritative best
// observation — the "merge on Best() reads" half of the staleness bound.
func (e *ShardedEngine) Best() (algo int, cfg param.Config, value float64) {
	e.Flush()
	return e.inner.Best()
}

// Counts merges all shard deltas and returns the per-algorithm
// completion counts.
func (e *ShardedEngine) Counts() []int {
	e.Flush()
	return e.inner.Counts()
}

// Iterations returns the number of completed trials, folded or not,
// without forcing a merge.
func (e *ShardedEngine) Iterations() int {
	return e.inner.Iterations() + int(e.pending.Load())
}

// Stats returns the engine event counters across all shards.
func (e *ShardedEngine) Stats() EngineStats {
	if e.n == 1 {
		return e.inner.Stats()
	}
	inFlight := 0
	for _, s := range e.shards {
		s.mu.Lock()
		inFlight += len(s.leases)
		s.mu.Unlock()
	}
	return EngineStats{
		Leased:    e.nLeased.Load(),
		Completed: e.nCompleted.Load(),
		Failed:    e.nFailed.Load(),
		Expired:   e.nExpired.Load(),
		Absorbed:  e.nAbsorbed.Load(),
		InFlight:  inFlight,
	}
}

// InFlight returns the number of currently outstanding leases.
func (e *ShardedEngine) InFlight() int { return e.Stats().InFlight }

// NumAlgorithms returns the number of algorithm alternatives.
func (e *ShardedEngine) NumAlgorithms() int { return e.inner.NumAlgorithms() }

// AlgorithmName returns the name of algorithm i.
func (e *ShardedEngine) AlgorithmName(i int) string { return e.inner.AlgorithmName(i) }

// LeaseTimeout returns the lease deadline duration.
func (e *ShardedEngine) LeaseTimeout() time.Duration { return e.inner.LeaseTimeout() }

// Guard exposes the guard installed by WithGuard (nil without it).
func (e *ShardedEngine) Guard() *guard.Guard { return e.inner.Guard() }

// Degraded reports whether the watchdog currently pins the incumbent
// (as of the last fold).
func (e *ShardedEngine) Degraded() bool { return e.inner.Degraded() }

// FailureStats merges all shard deltas and returns the failure counters.
func (e *ShardedEngine) FailureStats() FailureStats {
	e.Flush()
	return e.inner.FailureStats()
}

// BestConfigOf merges and returns phase one's incumbent for one
// algorithm.
func (e *ShardedEngine) BestConfigOf(algo int) (param.Config, float64) {
	e.Flush()
	return e.inner.BestConfigOf(algo)
}

// History merges and returns the per-iteration records, in fold order.
func (e *ShardedEngine) History() []Record {
	e.Flush()
	return e.inner.History()
}

// CheckpointErr merges and returns the most recent checkpoint I/O error.
func (e *ShardedEngine) CheckpointErr() error {
	e.Flush()
	return e.inner.CheckpointErr()
}

// Engine exposes the wrapped ConcurrentTuner. With more than one shard
// it must only be used for reads; leasing from it directly would bypass
// the shard partition.
func (e *ShardedEngine) Engine() *ConcurrentTuner { return e.inner }

// RunPool drives the engine with a pool of worker goroutines until total
// trials have been leased, each worker pinned to the shard w mod N,
// blocking until all complete and every delta is folded. Semantics match
// ConcurrentTuner.RunPool.
func (e *ShardedEngine) RunPool(workers, total int, m Measure) {
	if e.n == 1 {
		e.inner.RunPool(workers, total, m)
		return
	}
	if workers < 1 {
		workers = 1
	}
	g := e.inner.t.guard
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shardIdx int) {
			defer wg.Done()
			for next.Add(1) <= int64(total) {
				var tr Trial
				for {
					var err error
					tr, err = e.leaseOn(shardIdx)
					if err == nil {
						break
					}
					if !errors.Is(err, ErrTooManyInFlight) {
						panic(err)
					}
					time.Sleep(200 * time.Microsecond)
				}
				if g != nil {
					v, fail := g.Invoke(m, tr.Algo, tr.Config)
					if fail != nil {
						e.Fail(tr.ID, *fail)
					} else {
						e.Complete(tr.ID, v)
					}
				} else {
					e.Complete(tr.ID, m(tr.Algo, tr.Config))
				}
			}
		}(w % e.n)
	}
	wg.Wait()
	e.Flush()
}
