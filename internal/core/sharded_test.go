package core

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/guard"
	"repro/internal/nominal"
	"repro/internal/param"
)

func shardedAlgos() []Algorithm {
	return []Algorithm{
		{Name: "plain"},
		{Name: "tuned", Space: param.NewSpace(param.NewInterval("x", 0, 10))},
		{Name: "other", Space: param.NewSpace(param.NewRatio("r", 1, 4))},
	}
}

func shardedMeasure(algo int, cfg param.Config) float64 {
	v := float64(5 + 2*algo)
	for _, x := range cfg {
		v += 0.01 * math.Abs(x-3)
	}
	return v
}

// TestShardedSingleShardParity pins the sharding boundary: with one
// shard (the default) the ShardedEngine is a transparent wrapper, so a
// single-flight lease/complete loop must reproduce the sequential
// tuner's decision sequence exactly — same algorithm, same
// configuration, every iteration.
func TestShardedSingleShardParity(t *testing.T) {
	const iters = 300
	seq, err := NewTuner(shardedAlgos(), nominal.NewEpsilonGreedy(0.10), nil, 77)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewShardedEngine(shardedAlgos(), nominal.NewEpsilonGreedy(0.10), nil, 77)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Shards() != 1 {
		t.Fatalf("default Shards() = %d, want 1", eng.Shards())
	}
	for i := 0; i < iters; i++ {
		wantAlgo, wantCfg := seq.Next()
		tr, err := eng.Lease()
		if err != nil {
			t.Fatal(err)
		}
		if tr.Algo != wantAlgo || !tr.Config.Equal(wantCfg) {
			t.Fatalf("iter %d: sharded (%d, %v), sequential (%d, %v)",
				i, tr.Algo, tr.Config, wantAlgo, wantCfg)
		}
		v := shardedMeasure(tr.Algo, tr.Config)
		seq.Observe(v)
		if err := eng.Complete(tr.ID, v); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := eng.Counts(), seq.Counts(); len(got) != len(want) {
		t.Fatalf("counts length %d vs %d", len(got), len(want))
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("counts[%d] = %d, sequential %d", i, got[i], want[i])
			}
		}
	}
}

// TestOptionScope checks that the unified Option type is checked, not
// silently ignored: an option outside a constructor's scope must error
// with ErrOptionScope.
func TestOptionScope(t *testing.T) {
	algos := shardedAlgos()
	sel := func() nominal.Selector { return nominal.NewEpsilonGreedy(0.10) }

	if _, err := NewTuner(algos, sel(), nil, 1, WithMaxInFlight(4)); !errors.Is(err, ErrOptionScope) {
		t.Fatalf("NewTuner(WithMaxInFlight): err = %v, want ErrOptionScope", err)
	}
	if _, err := NewTuner(algos, sel(), nil, 1, WithShards(2)); !errors.Is(err, ErrOptionScope) {
		t.Fatalf("NewTuner(WithShards): err = %v, want ErrOptionScope", err)
	}
	if _, err := NewConcurrentTuner(algos, sel(), nil, 1, WithShards(2)); !errors.Is(err, ErrOptionScope) {
		t.Fatalf("NewConcurrentTuner(WithShards): err = %v, want ErrOptionScope", err)
	}
	// Every scope at once is exactly what NewShardedEngine accepts.
	if _, err := NewShardedEngine(algos, sel(), nil, 1,
		WithoutHistory(), WithMaxInFlight(64), WithShards(2), WithMergeEvery(8)); err != nil {
		t.Fatalf("NewShardedEngine with all scopes: %v", err)
	}
	// A quarantine wrapper cannot fork; more than one shard must refuse.
	if _, err := NewShardedEngine(algos, guard.NewQuarantine(sel()), nil, 1, WithShards(2)); !errors.Is(err, ErrNotMergeable) {
		t.Fatalf("sharding a quarantine selector: err = %v, want ErrNotMergeable", err)
	}
}

// TestShardedStress hammers an 8-shard engine from 32 goroutines with
// concurrent readers and asserts no completion is lost or
// double-counted. Under -race this is the fold/rebroadcast
// synchronization proof.
func TestShardedStress(t *testing.T) {
	const (
		workers = 32
		shards  = 8
		total   = 4000
	)
	eng, err := NewShardedEngine(shardedAlgos(), nominal.NewEpsilonGreedy(0.10), nil, 9,
		WithShards(shards), WithMergeEvery(16))
	if err != nil {
		t.Fatal(err)
	}
	var done atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers race Best/Counts/Stats/Iterations against the folds.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				eng.Best()
				eng.Counts()
				eng.Stats()
				eng.Iterations()
			}
		}()
	}
	var ww sync.WaitGroup
	for w := 0; w < workers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for done.Add(1) <= total {
				trs, err := eng.LeaseNOn(w, 1)
				if err != nil {
					t.Error(err)
					return
				}
				tr := trs[0]
				if done.Load()%97 == 0 {
					err = eng.Fail(tr.ID, guard.Failure{Kind: guard.Panic, Err: errors.New("boom")})
				} else {
					err = eng.Complete(tr.ID, shardedMeasure(tr.Algo, tr.Config))
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	eng.Flush()
	if got := eng.Iterations(); got != total {
		t.Fatalf("Iterations() = %d, want %d", got, total)
	}
	st := eng.Stats()
	if st.Completed+st.Failed != total || st.InFlight != 0 || st.Expired != 0 {
		t.Fatalf("stats %+v do not conserve %d trials", st, total)
	}
	if algo, _, val := eng.Best(); algo != 0 || val != 5 {
		t.Fatalf("best = (%d, %v), want algorithm 0 at 5", algo, val)
	}
}

// TestShardedUnknownAndDuplicate checks the report idempotency contract
// across the shard ID space.
func TestShardedUnknownAndDuplicate(t *testing.T) {
	eng, err := NewShardedEngine(shardedAlgos(), nominal.NewEpsilonGreedy(0.10), nil, 2, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := eng.Lease()
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Complete(tr.ID, 1); err != nil {
		t.Fatal(err)
	}
	if err := eng.Complete(tr.ID, 1); !errors.Is(err, ErrUnknownTrial) {
		t.Fatalf("duplicate completion: err = %v, want ErrUnknownTrial", err)
	}
	if err := eng.Complete(12345, 1); !errors.Is(err, ErrUnknownTrial) {
		t.Fatalf("foreign trial ID: err = %v, want ErrUnknownTrial", err)
	}
	alive := eng.Heartbeat([]uint64{tr.ID, 7})
	if alive[0] || alive[1] {
		t.Fatalf("heartbeat on settled + foreign IDs = %v, want all false", alive)
	}
}

// TestShardedCheckpointResume runs a sharded session against a
// checkpoint directory and verifies both resume paths reconstruct it:
// ResumeSharded (same topology) and plain ResumeConcurrent (the journal
// is engine-agnostic).
func TestShardedCheckpointResume(t *testing.T) {
	const total = 600
	dir := t.TempDir()
	algos := shardedAlgos()
	eng, err := NewShardedEngine(algos, nominal.NewEpsilonGreedy(0.10), nil, 21,
		WithShards(4), WithMergeEvery(8), WithCheckpoint(dir, 50))
	if err != nil {
		t.Fatal(err)
	}
	eng.RunPool(8, total, shardedMeasure)
	if err := eng.CheckpointErr(); err != nil {
		t.Fatal(err)
	}
	if got := eng.Iterations(); got != total {
		t.Fatalf("Iterations() = %d, want %d", got, total)
	}
	wantCounts := eng.Counts()
	wantAlgo, wantCfg, wantVal := eng.Best()

	check := func(name string, iters int, counts []int, algo int, cfg param.Config, val float64) {
		t.Helper()
		if iters != total {
			t.Fatalf("%s: iterations = %d, want %d", name, iters, total)
		}
		for i := range counts {
			if counts[i] != wantCounts[i] {
				t.Fatalf("%s: counts[%d] = %d, want %d", name, i, counts[i], wantCounts[i])
			}
		}
		if algo != wantAlgo || val != wantVal || !cfg.Equal(wantCfg) {
			t.Fatalf("%s: best (%d, %v, %v), want (%d, %v, %v)", name, algo, cfg, val, wantAlgo, wantCfg, wantVal)
		}
	}

	rs, err := ResumeSharded(dir, 50, algos, nominal.NewEpsilonGreedy(0.10), nil, 21, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	a, c, v := rs.Best()
	check("ResumeSharded", rs.Iterations(), rs.Counts(), a, c, v)

	rc, err := ResumeConcurrent(dir, 50, algos, nominal.NewEpsilonGreedy(0.10), nil, 21)
	if err != nil {
		t.Fatal(err)
	}
	a, c, v = rc.Best()
	check("ResumeConcurrent", rc.Iterations(), rc.Counts(), a, c, v)

	// The resumed sharded engine keeps going, with trial IDs disjoint
	// from everything journaled.
	tr, err := rs.Lease()
	if err != nil {
		t.Fatal(err)
	}
	if tr.ID < shardIDBase*2 {
		t.Fatalf("post-resume trial ID %d not above the previous incarnation's ID space", tr.ID)
	}
	rs.RunPool(4, 100, shardedMeasure)
	rs.Flush()
	if got := rs.Iterations(); got < total+100 {
		t.Fatalf("post-resume iterations = %d, want >= %d", got, total+100)
	}
}

// TestShardedWinnerAgreement is the in-package slice of ablation A13:
// every shard count must elect the same winner as the sequential tuner
// on a deterministic workload.
func TestShardedWinnerAgreement(t *testing.T) {
	const iters = 1200
	seq, err := NewTuner(shardedAlgos(), nominal.NewEpsilonGreedy(0.10), nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	seq.Run(iters, shardedMeasure)
	want := argmaxCount(seq.Counts())
	for _, shards := range []int{2, 4, 8} {
		eng, err := NewShardedEngine(shardedAlgos(), nominal.NewEpsilonGreedy(0.10), nil, 5,
			WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		eng.RunPool(2*shards, iters, shardedMeasure)
		if got := argmaxCount(eng.Counts()); got != want {
			t.Fatalf("%d shards: winner %d, sequential %d (counts %v)", shards, got, want, eng.Counts())
		}
	}
}

func argmaxCount(counts []int) int {
	best := 0
	for i, n := range counts {
		if n > counts[best] {
			best = i
		}
	}
	return best
}
