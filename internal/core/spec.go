package core

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/nominal"
	"repro/internal/search"
)

// EngineSpec is the serialized form of an engine's option set: everything
// NewShardedEngine takes through []Option that a service must be able to
// store, compare and reconstruct per tuning problem. A multi-tenant
// server keeps one EngineSpec per tenant on disk next to the tenant's
// checkpoints; Build and Resume turn it back into a live engine, and
// Hash pins the configuration so a resumed tenant cannot silently come
// back with different tuning semantics.
//
// The spec covers the engine-scope and sharded-scope knobs. What it
// deliberately does not serialize: the algorithm roster (a []Algorithm
// with live measurement spaces — callers pass it to Build/Resume, and
// Hash folds the names in), the selector (an interface value — callers
// construct it, typically via nominal.NewByName), and the search
// factory. Those are code, not configuration.
type EngineSpec struct {
	// Seed seeds the tuner's RNG.
	Seed int64 `json:"seed"`
	// Shards is the selector shard count (see WithShards); 0 and 1 both
	// mean unsharded.
	Shards int `json:"shards,omitempty"`
	// MergeEvery is the per-shard fold cadence (see WithMergeEvery);
	// 0 means DefaultMergeEvery.
	MergeEvery int `json:"merge_every,omitempty"`
	// LeaseTimeoutMS is the lease TTL in milliseconds; 0 means
	// DefaultLeaseTimeout. Negative disables expiry (WithLeaseTimeout
	// of a non-positive duration).
	LeaseTimeoutMS int64 `json:"lease_timeout_ms,omitempty"`
	// MaxInFlight bounds outstanding leases (see WithMaxInFlight);
	// 0 means unlimited.
	MaxInFlight int `json:"max_inflight,omitempty"`
	// Drift arms the drift watchdog with DefaultDriftConfig.
	Drift bool `json:"drift,omitempty"`
	// SnapshotEvery is the checkpoint cadence in completed trials when
	// Build/Resume are given a checkpoint directory; 0 means 100.
	SnapshotEvery int `json:"snapshot_every,omitempty"`
}

// withDefaults returns the spec with zero fields resolved to their
// effective values, so Hash treats an explicit default and an omitted
// field identically.
func (s EngineSpec) withDefaults() EngineSpec {
	if s.Shards <= 0 {
		s.Shards = 1
	}
	if s.MergeEvery <= 0 {
		s.MergeEvery = DefaultMergeEvery
	}
	if s.LeaseTimeoutMS == 0 {
		s.LeaseTimeoutMS = DefaultLeaseTimeout.Milliseconds()
	}
	if s.LeaseTimeoutMS < 0 {
		s.LeaseTimeoutMS = -1
	}
	if s.MaxInFlight < 0 {
		s.MaxInFlight = 0
	}
	if s.SnapshotEvery <= 0 {
		s.SnapshotEvery = 100
	}
	return s
}

// Options expands the spec into the option slice the constructors take.
// ckptDir, when non-empty, adds WithCheckpoint at the spec's cadence
// (Resume paths pass "" — resuming re-enables checkpointing itself).
func (s EngineSpec) Options(ckptDir string) []Option {
	s = s.withDefaults()
	ttl := time.Duration(s.LeaseTimeoutMS) * time.Millisecond
	if s.LeaseTimeoutMS < 0 {
		ttl = 0
	}
	opts := []Option{
		WithLeaseTimeout(ttl),
		WithShards(s.Shards),
		WithMergeEvery(s.MergeEvery),
	}
	if s.MaxInFlight > 0 {
		opts = append(opts, WithMaxInFlight(s.MaxInFlight))
	}
	if s.Drift {
		opts = append(opts, WithDriftWatchdog(DefaultDriftConfig()))
	}
	if ckptDir != "" {
		opts = append(opts, WithCheckpoint(ckptDir, s.SnapshotEvery))
	}
	return opts
}

// Hash fingerprints the spec together with an algorithm roster and a
// selector name: two engines agree on it exactly when they would make
// the same tuning decisions over the same trial stream. It is the
// persistence-side sibling of the wire handshake's roster hash — a
// tenant directory whose stored hash differs was written by a different
// configuration and must not be resumed into this one.
func (s EngineSpec) Hash(algos []string, selector string) uint32 {
	canon, _ := json.Marshal(s.withDefaults()) // struct of scalars: cannot fail
	h := crc32.NewIEEE()
	h.Write(canon)
	h.Write([]byte{0})
	h.Write([]byte(selector))
	for _, a := range algos {
		h.Write([]byte{0})
		h.Write([]byte(a))
	}
	return h.Sum32()
}

// Build constructs a fresh sharded engine from the spec. A non-empty
// ckptDir makes the engine durable there at the spec's snapshot cadence.
func (s EngineSpec) Build(algos []Algorithm, selector nominal.Selector, factory search.Factory, ckptDir string) (*ShardedEngine, error) {
	eng, err := NewShardedEngine(algos, selector, factory, s.Seed, s.Options(ckptDir)...)
	if err != nil {
		return nil, fmt.Errorf("core: build from spec: %w", err)
	}
	return eng, nil
}

// Resume reconstructs a checkpointed engine from the spec and its
// directory (see ResumeSharded). It is an error to Resume a directory
// without generations; use HasCheckpoint to pick between Build and
// Resume.
func (s EngineSpec) Resume(algos []Algorithm, selector nominal.Selector, factory search.Factory, ckptDir string) (*ShardedEngine, error) {
	d := s.withDefaults()
	eng, err := ResumeSharded(ckptDir, d.SnapshotEvery, algos, selector, factory, s.Seed, s.Options("")...)
	if err != nil {
		return nil, fmt.Errorf("core: resume from spec: %w", err)
	}
	return eng, nil
}

// HasCheckpoint reports whether dir holds at least one snapshot
// generation a Resume could start from.
func HasCheckpoint(dir string) bool {
	return len(checkpoint.Generations(dir)) > 0
}
