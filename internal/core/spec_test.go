package core

import (
	"encoding/json"
	"testing"

	"repro/internal/nominal"
	"repro/internal/param"
)

func specAlgos() []Algorithm {
	return []Algorithm{
		{Name: "a"},
		{Name: "b", Space: param.NewSpace(param.NewRatio("x", 1, 2))},
	}
}

func TestEngineSpecRoundTrip(t *testing.T) {
	in := EngineSpec{Seed: 7, Shards: 4, MergeEvery: 8, LeaseTimeoutMS: 250, MaxInFlight: 32, Drift: true, SnapshotEvery: 10}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out EngineSpec
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v want %+v", out, in)
	}
}

func TestEngineSpecHash(t *testing.T) {
	base := EngineSpec{Seed: 1}
	algos := []string{"a", "b"}
	h := base.Hash(algos, "egreedy:10")

	// Defaults and explicit defaults hash identically.
	explicit := EngineSpec{Seed: 1, Shards: 1, MergeEvery: DefaultMergeEvery,
		LeaseTimeoutMS: DefaultLeaseTimeout.Milliseconds(), SnapshotEvery: 100}
	if got := explicit.Hash(algos, "egreedy:10"); got != h {
		t.Fatalf("explicit defaults hash %08x != zero-value hash %08x", got, h)
	}

	// Any semantic change moves the hash.
	for name, other := range map[string]uint32{
		"shards":   EngineSpec{Seed: 1, Shards: 4}.Hash(algos, "egreedy:10"),
		"seed":     EngineSpec{Seed: 2}.Hash(algos, "egreedy:10"),
		"drift":    EngineSpec{Seed: 1, Drift: true}.Hash(algos, "egreedy:10"),
		"selector": base.Hash(algos, "ucb1"),
		"roster":   base.Hash([]string{"a", "c"}, "egreedy:10"),
		// Roster boundaries must not be ambiguous: {"ab"} vs {"a","b"}.
		"boundary": base.Hash([]string{"ab"}, "egreedy:10"),
	} {
		if other == h {
			t.Fatalf("%s change did not move the hash", name)
		}
	}
}

func TestEngineSpecBuildAndResume(t *testing.T) {
	dir := t.TempDir()
	spec := EngineSpec{Seed: 11, Shards: 2, MergeEvery: 2, SnapshotEvery: 3}

	eng, err := spec.Build(specAlgos(), nominal.NewEpsilonGreedy(0.1), nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		leases, err := eng.LeaseN(1)
		if err != nil || len(leases) != 1 {
			t.Fatalf("lease %d: %v (%d leases)", i, err, len(leases))
		}
		for _, cerr := range eng.CompleteN([]TrialResult{{ID: leases[0].ID, Value: float64(1 + leases[0].Algo)}}) {
			if cerr != nil {
				t.Fatal(cerr)
			}
		}
	}
	wantIter := eng.Iterations()
	wantCounts := eng.Counts()
	if err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	if !HasCheckpoint(dir) {
		t.Fatal("HasCheckpoint false after Checkpoint")
	}
	resumed, err := spec.Resume(specAlgos(), nominal.NewEpsilonGreedy(0.1), nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := resumed.Iterations(); got != wantIter {
		t.Fatalf("resumed iterations %d != %d", got, wantIter)
	}
	gotCounts := resumed.Counts()
	for i := range wantCounts {
		if gotCounts[i] != wantCounts[i] {
			t.Fatalf("resumed counts %v != %v", gotCounts, wantCounts)
		}
	}
}
