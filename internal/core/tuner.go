// Package core implements the paper's primary contribution: a two-phase
// online autotuner for search spaces containing algorithmic choice.
//
// The tuning problem (Section III of Pfaffe et al.) is
//
//	C_opt = argmin_{A ∈ 𝒜, C ∈ T_A} m_A(C)
//
// where 𝒜 is a set of algorithms and T_A the (per-algorithm) numeric
// parameter space. Each tuning iteration applies the two phases in reverse
// order: a phase-two nominal strategy (package nominal) selects an
// algorithm A, then that algorithm's own phase-one strategy (package
// search; the paper uses Nelder-Mead) proposes a configuration C_i. The
// application runs A with C_i, measures it, and reports the sample
// m_{A,i} back through the tuner, which feeds both levels.
//
// Every algorithm owns an independent phase-one strategy instance, so
// tuning progress accumulates on all algorithms simultaneously as the
// selector switches between them — the behaviour visible in the paper's
// Figure 6.
package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/search"
)

// An Algorithm is one alternative implementation of the tuned operation,
// together with its numeric tuning-parameter space and an optional
// hand-crafted initial configuration (the raytracing case study starts
// every construction algorithm from a best-practices configuration).
type Algorithm struct {
	// Name identifies the algorithm, e.g. "wald-havran".
	Name string
	// Space is the algorithm's own tuning-parameter space T_A. A nil Space
	// is treated as the empty space (no tunable parameters), which is the
	// string matching case study's situation.
	Space *param.Space
	// Init is the starting configuration; nil means the space's center.
	Init param.Config
}

func (a Algorithm) space() *param.Space {
	if a.Space == nil {
		return param.NewSpace()
	}
	return a.Space
}

// A Record is one completed tuning iteration.
type Record struct {
	// Iteration is the zero-based global iteration number.
	Iteration int
	// Algo is the index of the selected algorithm.
	Algo int
	// Config is the configuration that was run.
	Config param.Config
	// Value is the measured value (lower is better; time in the paper).
	Value float64
}

// Measure is the measurement function m: it runs algorithm algo with
// configuration cfg and returns the observed value (for example the
// wall-clock time of the operation, in milliseconds).
type Measure func(algo int, cfg param.Config) float64

// Tuner is the two-phase online autotuner. It is driven either through the
// ask/tell pair Next/Observe — which embeds naturally into an existing
// application loop, the paper's online-tuning setting — or through Run,
// which owns the loop. A Tuner is not safe for concurrent use: online
// tuning wraps one repeatedly executed operation of the application.
type Tuner struct {
	algos      []Algorithm
	selector   nominal.Selector
	strategies []search.Strategy
	rng        *rand.Rand

	history []Record
	counts  []int

	pending        bool
	pendingAlgo    int
	pendingCfg     param.Config
	bestAlgo       int
	bestCfg        param.Config
	bestVal        float64
	keepHistory    bool
	perAlgoHistory [][]float64
}

// Option configures a Tuner.
type Option func(*Tuner)

// WithoutHistory disables per-iteration record keeping (the counts and
// incumbent are still maintained). Long-running production loops use this
// to keep memory constant.
func WithoutHistory() Option {
	return func(t *Tuner) { t.keepHistory = false }
}

// New creates a two-phase tuner over the given algorithms.
//
// The selector is the phase-two strategy choosing among algorithms; the
// factory builds one independent phase-one strategy per algorithm. New
// fails when an algorithm's space is not supported by the strategy the
// factory builds (for example Nelder-Mead on a space with ordinal
// parameters). The seed determines all stochastic choices; runs with equal
// seeds and deterministic measurement functions are identical.
func New(algos []Algorithm, selector nominal.Selector, factory search.Factory, seed int64, opts ...Option) (*Tuner, error) {
	if len(algos) == 0 {
		return nil, fmt.Errorf("core: no algorithms to tune")
	}
	if selector == nil {
		return nil, fmt.Errorf("core: nil selector")
	}
	if factory == nil {
		factory = DefaultFactory
	}
	t := &Tuner{
		algos:       algos,
		selector:    selector,
		strategies:  make([]search.Strategy, len(algos)),
		rng:         rand.New(rand.NewSource(seed)),
		counts:      make([]int, len(algos)),
		bestAlgo:    -1,
		bestVal:     math.Inf(1),
		keepHistory: true,
	}
	for _, o := range opts {
		o(t)
	}
	for i, a := range algos {
		s := factory()
		sp := a.space()
		if !s.Supports(sp) {
			// Fall back to a strategy that can handle the space rather
			// than failing: the pragmatic choice matches the paper's
			// architecture, where phase one is pluggable per algorithm.
			s = DefaultStrategyFor(sp, seed+int64(i))
		}
		if err := s.Start(sp, a.Init); err != nil {
			return nil, fmt.Errorf("core: algorithm %q: %w", a.Name, err)
		}
		t.strategies[i] = s
	}
	selector.Init(len(algos))
	t.perAlgoHistory = make([][]float64, len(algos))
	return t, nil
}

// DefaultFactory builds the paper's phase-one strategy, Nelder-Mead.
func DefaultFactory() search.Strategy { return search.NewNelderMead() }

// DefaultStrategyFor picks a phase-one strategy that can search the given
// space: Fixed for empty spaces, Nelder-Mead for metric spaces, hill
// climbing for discrete ordered spaces, and a genetic algorithm otherwise
// (the one classical method defined on nominal dimensions).
func DefaultStrategyFor(space *param.Space, seed int64) search.Strategy {
	switch {
	case space.Dim() == 0:
		return search.NewFixed()
	case space.MetricOnly():
		return search.NewNelderMead()
	case !space.HasNominal():
		return search.NewHillClimb()
	default:
		return search.NewGenetic(search.DefaultPopulation, seed)
	}
}

// NumAlgorithms returns the number of algorithm alternatives.
func (t *Tuner) NumAlgorithms() int { return len(t.algos) }

// AlgorithmName returns the name of algorithm i.
func (t *Tuner) AlgorithmName(i int) string { return t.algos[i].Name }

// Next performs phase two (algorithm selection) and phase one
// (configuration proposal) and returns what the application should run
// this iteration. Every Next must be matched by exactly one Observe.
func (t *Tuner) Next() (algo int, cfg param.Config) {
	if t.pending {
		panic("core: Next called with an observation pending")
	}
	algo = t.selector.Select(t.rng)
	cfg = t.strategies[algo].Propose()
	t.pending = true
	t.pendingAlgo = algo
	t.pendingCfg = cfg.Clone()
	return algo, cfg
}

// Observe reports the measured value of the configuration returned by the
// preceding Next, feeding both tuning phases.
func (t *Tuner) Observe(value float64) {
	if !t.pending {
		panic("core: Observe called without a pending Next")
	}
	t.pending = false
	algo, cfg := t.pendingAlgo, t.pendingCfg
	t.strategies[algo].Report(cfg, value)
	t.selector.Report(algo, value)
	t.counts[algo]++
	if t.keepHistory {
		t.history = append(t.history, Record{
			Iteration: len(t.history),
			Algo:      algo,
			Config:    cfg,
			Value:     value,
		})
	}
	t.perAlgoHistory[algo] = append(t.perAlgoHistory[algo], value)
	if value < t.bestVal {
		t.bestVal = value
		t.bestAlgo = algo
		t.bestCfg = cfg.Clone()
	}
}

// Step runs one complete tuning iteration with the given measurement
// function and returns its record.
func (t *Tuner) Step(m Measure) Record {
	algo, cfg := t.Next()
	v := m(algo, cfg)
	t.Observe(v)
	return Record{Iteration: t.Iterations() - 1, Algo: algo, Config: cfg, Value: v}
}

// Run executes iters tuning iterations. This is the whole online tuning
// loop for applications that let the tuner drive.
func (t *Tuner) Run(iters int, m Measure) {
	for i := 0; i < iters; i++ {
		t.Step(m)
	}
}

// RunUntil steps the tuner until stop returns true or maxIters iterations
// have run, returning the number of iterations executed.
func (t *Tuner) RunUntil(m Measure, stop func(*Tuner) bool, maxIters int) int {
	n := 0
	for n < maxIters && !stop(t) {
		t.Step(m)
		n++
	}
	return n
}

// Iterations returns the number of completed tuning iterations.
func (t *Tuner) Iterations() int {
	total := 0
	for _, c := range t.counts {
		total += c
	}
	return total
}

// Best returns the globally best observation so far: the optimal algorithm
// with its configuration and value. Before any iteration it returns
// (-1, nil, +Inf).
func (t *Tuner) Best() (algo int, cfg param.Config, value float64) {
	if t.bestAlgo < 0 {
		return -1, nil, math.Inf(1)
	}
	return t.bestAlgo, t.bestCfg.Clone(), t.bestVal
}

// BestConfigOf returns the best observed configuration and value for one
// specific algorithm (phase one's incumbent).
func (t *Tuner) BestConfigOf(algo int) (param.Config, float64) {
	return t.strategies[algo].Best()
}

// Counts returns a copy of the per-algorithm selection counts — the data
// behind the paper's Figures 4 and 8.
func (t *Tuner) Counts() []int {
	c := make([]int, len(t.counts))
	copy(c, t.counts)
	return c
}

// History returns the per-iteration records (empty with WithoutHistory).
func (t *Tuner) History() []Record {
	h := make([]Record, len(t.history))
	copy(h, t.history)
	return h
}

// ValuesOf returns the measured values of one algorithm in observation
// order — the per-algorithm timeline behind the paper's Figure 5.
func (t *Tuner) ValuesOf(algo int) []float64 {
	v := make([]float64, len(t.perAlgoHistory[algo]))
	copy(v, t.perAlgoHistory[algo])
	return v
}

// Strategy exposes algorithm i's phase-one strategy (for inspection).
func (t *Tuner) Strategy(i int) search.Strategy { return t.strategies[i] }

// Selector exposes the phase-two selector (for inspection).
func (t *Tuner) Selector() nominal.Selector { return t.selector }

// ConvergedAll reports whether every algorithm's phase-one strategy has
// converged. Note that phase two never "converges" in the bandit sense;
// the paper runs a fixed iteration budget chosen to guarantee convergence.
func (t *Tuner) ConvergedAll() bool {
	for _, s := range t.strategies {
		if !s.Converged() {
			return false
		}
	}
	return true
}

// Settled returns a RunUntil predicate that is true once the tuner's best
// value has not improved by more than tol (relative) for window
// consecutive iterations. The paper picks its loop lengths offline "to
// ensure tuning convergence"; Settled lets an application detect that
// point online instead. The returned predicate is stateful: use one per
// tuning run.
func Settled(window int, tol float64) func(*Tuner) bool {
	if window < 1 {
		window = 1
	}
	if tol < 0 {
		tol = 0
	}
	lastImproved := 0
	refBest := math.Inf(1)
	return func(t *Tuner) bool {
		_, _, best := t.Best()
		iter := t.Iterations()
		if best < refBest*(1-tol) || math.IsInf(refBest, 1) && !math.IsInf(best, 1) {
			refBest = best
			lastImproved = iter
			return false
		}
		return iter-lastImproved >= window
	}
}
