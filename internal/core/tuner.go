// Package core implements the paper's primary contribution: a two-phase
// online autotuner for search spaces containing algorithmic choice.
//
// The tuning problem (Section III of Pfaffe et al.) is
//
//	C_opt = argmin_{A ∈ 𝒜, C ∈ T_A} m_A(C)
//
// where 𝒜 is a set of algorithms and T_A the (per-algorithm) numeric
// parameter space. Each tuning iteration applies the two phases in reverse
// order: a phase-two nominal strategy (package nominal) selects an
// algorithm A, then that algorithm's own phase-one strategy (package
// search; the paper uses Nelder-Mead) proposes a configuration C_i. The
// application runs A with C_i, measures it, and reports the sample
// m_{A,i} back through the tuner, which feeds both levels.
//
// Every algorithm owns an independent phase-one strategy instance, so
// tuning progress accumulates on all algorithms simultaneously as the
// selector switches between them — the behaviour visible in the paper's
// Figure 6.
package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/checkpoint"
	"repro/internal/guard"
	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/search"
	"repro/internal/xrand"
)

// An Algorithm is one alternative implementation of the tuned operation,
// together with its numeric tuning-parameter space and an optional
// hand-crafted initial configuration (the raytracing case study starts
// every construction algorithm from a best-practices configuration).
type Algorithm struct {
	// Name identifies the algorithm, e.g. "wald-havran".
	Name string
	// Space is the algorithm's own tuning-parameter space T_A. A nil Space
	// is treated as the empty space (no tunable parameters), which is the
	// string matching case study's situation.
	Space *param.Space
	// Init is the starting configuration; nil means the space's center.
	Init param.Config
}

func (a Algorithm) space() *param.Space {
	if a.Space == nil {
		return param.NewSpace()
	}
	return a.Space
}

// A Record is one completed tuning iteration.
type Record struct {
	// Iteration is the zero-based global iteration number.
	Iteration int
	// Algo is the index of the selected algorithm.
	Algo int
	// Config is the configuration that was run.
	Config param.Config
	// Value is the measured value (lower is better; time in the paper).
	// For failed iterations it is the substituted penalty.
	Value float64
	// Failed reports that the measurement failed (panic, timeout, or
	// invalid sample) and Value is a penalty, not an observation.
	Failed bool
}

// Measure is the measurement function m: it runs algorithm algo with
// configuration cfg and returns the observed value (for example the
// wall-clock time of the operation, in milliseconds).
type Measure func(algo int, cfg param.Config) float64

// Tuner is the two-phase online autotuner. It is driven either through the
// ask/tell pair Next/Observe — which embeds naturally into an existing
// application loop, the paper's online-tuning setting — or through Run,
// which owns the loop. A Tuner is not safe for concurrent use: online
// tuning wraps one repeatedly executed operation of the application.
// Applications measuring from many goroutines wrap it in a
// ConcurrentTuner, whose lease-based trial engine serves multiple trials
// in flight.
type Tuner struct {
	algos      []Algorithm
	selector   nominal.Selector
	strategies []search.Strategy
	rng        *rand.Rand
	src        *xrand.Source
	seed       int64

	history []Record
	counts  []int

	pending        bool
	pendingAlgo    int
	pendingCfg     param.Config
	bestAlgo       int
	bestCfg        param.Config
	bestVal        float64
	keepHistory    bool
	perAlgoHistory [][]float64

	// Fault tolerance (see WithGuard / WithWatchdog and FailureStats).
	guard       *guard.Guard
	worstVal    float64 // worst valid observation, for the no-guard penalty
	failTotal   int
	failPanics  int
	failTimeout int
	failInvalid int
	failPerAlgo []int
	lastValue   float64 // value recorded by the most recent observation
	lastFailed  bool

	// Failure-rate watchdog ring buffer and degradation state.
	watchWindow int
	degradeAt   float64
	recoverAt   float64
	recent      []bool
	recentIdx   int
	recentFill  int
	recentFails int
	degraded    bool
	pinned      bool // the pending observation is a pinned (degraded) run
	pinnedIters int

	// Drift resilience (see WithDriftWatchdog). driftSeq is maintained
	// even without the watchdog so journaled sentinels replay
	// idempotently; engineOwned marks a tuner wrapped by a trial engine,
	// whose strategies must never be restarted beneath the proposers.
	drift       *driftWatchdog
	driftSeq    uint64
	engineOwned bool

	// Crash-safe persistence (see WithCheckpoint / Resume).
	ckptDir      string
	ckptEvery    int
	ckptGen      int // iteration of the current snapshot generation
	journal      *checkpoint.Journal
	ckptErr      error
	replaying    bool
	journalBatch bool // buffer journal appends; owner calls journalSync per batch
}

// NewTuner creates a two-phase tuner over the given algorithms.
//
// The selector is the phase-two strategy choosing among algorithms; the
// factory builds one independent phase-one strategy per algorithm.
// NewTuner fails when an algorithm's space is not supported by the
// strategy the factory builds (for example Nelder-Mead on a space with
// ordinal parameters), and when an option outside the sequential tuner's
// scope is passed (ErrOptionScope). The seed determines all stochastic
// choices; runs with equal seeds and deterministic measurement functions
// are identical.
func NewTuner(algos []Algorithm, selector nominal.Selector, factory search.Factory, seed int64, opts ...Option) (*Tuner, error) {
	if len(algos) == 0 {
		return nil, fmt.Errorf("core: no algorithms to tune")
	}
	if selector == nil {
		return nil, fmt.Errorf("core: nil selector")
	}
	if factory == nil {
		factory = DefaultFactory
	}
	src := xrand.New(seed)
	t := &Tuner{
		algos:       algos,
		selector:    selector,
		strategies:  make([]search.Strategy, len(algos)),
		rng:         src.Rand(),
		src:         src,
		seed:        seed,
		counts:      make([]int, len(algos)),
		bestAlgo:    -1,
		bestVal:     math.Inf(1),
		keepHistory: true,
		failPerAlgo: make([]int, len(algos)),
		watchWindow: DefaultWatchWindow,
		degradeAt:   DefaultDegradeThreshold,
		recoverAt:   DefaultDegradeThreshold / 2,
	}
	for _, o := range opts {
		if o.tuner == nil {
			return nil, scopeErr(o)
		}
		o.tuner(t)
	}
	for i, a := range algos {
		s := factory()
		sp := a.space()
		if !s.Supports(sp) {
			// Fall back to a strategy that can handle the space rather
			// than failing: the pragmatic choice matches the paper's
			// architecture, where phase one is pluggable per algorithm.
			s = DefaultStrategyFor(sp, seed+int64(i))
		}
		if err := s.Start(sp, a.Init); err != nil {
			return nil, fmt.Errorf("core: algorithm %q: %w", a.Name, err)
		}
		t.strategies[i] = s
	}
	selector.Init(len(algos))
	if t.drift != nil {
		t.drift.init(len(algos))
	}
	t.perAlgoHistory = make([][]float64, len(algos))
	if t.ckptDir != "" {
		if err := t.initCheckpoint(); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// New creates a two-phase tuner.
//
// Deprecated: New is the original name of NewTuner, kept as an alias for
// existing callers; use NewTuner for symmetry with NewConcurrentTuner
// and NewShardedEngine.
func New(algos []Algorithm, selector nominal.Selector, factory search.Factory, seed int64, opts ...Option) (*Tuner, error) {
	return NewTuner(algos, selector, factory, seed, opts...)
}

// Watchdog defaults (see WithWatchdog).
const (
	// DefaultWatchWindow is the number of recent iterations over which
	// the failure rate is computed.
	DefaultWatchWindow = 32
	// DefaultDegradeThreshold is the recent failure rate at which the
	// tuner enters degradation mode; it exits at half this rate.
	DefaultDegradeThreshold = 0.5
)

// DefaultFactory builds the paper's phase-one strategy, Nelder-Mead.
func DefaultFactory() search.Strategy { return search.NewNelderMead() }

// DefaultStrategyFor picks a phase-one strategy that can search the given
// space: Fixed for empty spaces, Nelder-Mead for metric spaces, hill
// climbing for discrete ordered spaces, and a genetic algorithm otherwise
// (the one classical method defined on nominal dimensions).
func DefaultStrategyFor(space *param.Space, seed int64) search.Strategy {
	switch {
	case space.Dim() == 0:
		return search.NewFixed()
	case space.MetricOnly():
		return search.NewNelderMead()
	case !space.HasNominal():
		return search.NewHillClimb()
	default:
		return search.NewGenetic(search.DefaultPopulation, seed)
	}
}

// NumAlgorithms returns the number of algorithm alternatives.
func (t *Tuner) NumAlgorithms() int { return len(t.algos) }

// AlgorithmName returns the name of algorithm i.
func (t *Tuner) AlgorithmName(i int) string { return t.algos[i].Name }

// Next performs phase two (algorithm selection) and phase one
// (configuration proposal) and returns what the application should run
// this iteration. Every Next must be matched by exactly one Observe (or
// ObserveFailure). In degradation mode — the recent failure rate crossed
// the watchdog threshold — Next stops exploring and returns the pinned
// known-good incumbent instead.
func (t *Tuner) Next() (algo int, cfg param.Config) {
	if t.pending {
		panic("core: Next called with an observation pending")
	}
	if t.degraded && t.bestAlgo >= 0 {
		t.pending = true
		t.pinned = true
		t.pendingAlgo = t.bestAlgo
		t.pendingCfg = t.bestCfg.Clone()
		return t.bestAlgo, t.bestCfg.Clone()
	}
	if p, ok := t.takeProbe(); ok {
		// A drift reset scheduled this arm for a forced re-probe: the
		// dethroned regime's evidence is being rebuilt, so the probe
		// overrides phase two (phase one proposes normally).
		algo = p
	} else {
		algo = t.selector.Select(t.rng)
	}
	cfg = t.strategies[algo].Propose()
	t.pending = true
	t.pendingAlgo = algo
	t.pendingCfg = cfg.Clone()
	return algo, cfg
}

// Observe reports the measured value of the configuration returned by the
// preceding Next, feeding both tuning phases.
//
// Non-finite values (NaN, ±Inf) are never accepted as observations, even
// without WithGuard: a NaN sample would silently poison every comparison
// in both phases. The policy is penalty, never incumbent — the iteration
// is recorded as an Invalid failure whose value is the penalty (the worst
// valid observation × guard.DefaultPenaltyFactor, or
// guard.DefaultFallbackPenalty before any), so the strategies steer away,
// and Best() is never contaminated.
func (t *Tuner) Observe(value float64) {
	if !t.pending {
		panic("core: Observe called without a pending Next")
	}
	if math.IsNaN(value) || math.IsInf(value, 0) {
		t.observe(t.penalty(), &guard.Failure{
			Kind: guard.Invalid,
			Algo: t.pendingAlgo,
			Err:  fmt.Errorf("core: non-finite measurement %v", value),
		})
		return
	}
	t.observe(value, nil)
}

// ObserveFailure reports that the pending measurement failed. Ask/tell
// loops running their measurement through guard.(*Guard).Invoke use this
// to complete the iteration: the failure's penalty (or the tuner's, when
// unset) is fed to both phases, the incumbent is left untouched, and the
// failure is counted in FailureStats.
func (t *Tuner) ObserveFailure(f guard.Failure) {
	if !t.pending {
		panic("core: ObserveFailure called without a pending Next")
	}
	p := f.Penalty
	if p <= 0 || math.IsNaN(p) || math.IsInf(p, 0) {
		p = t.penalty()
		f.Penalty = p
	}
	t.observe(p, &f)
}

// observe completes the pending iteration with the recorded value and an
// optional failure. Pinned (degradation-mode) iterations bypass both
// tuning phases: the incumbent configuration was not proposed by its
// strategy, so reporting it would corrupt the ask/tell state machines.
func (t *Tuner) observe(value float64, fail *guard.Failure) {
	t.pending = false
	pinned := t.pinned
	t.pinned = false
	algo, cfg := t.pendingAlgo, t.pendingCfg
	t.applyCompletion(completion{algo: algo, cfg: cfg, value: value, fail: fail, pinned: pinned},
		func(cf param.Config, v float64) { t.strategies[algo].Report(cf, v) })
}

// completion describes one finished trial, however it was driven:
// sequential Observe, the trial engine's Complete/Fail/expiry, or
// journal replay on resume.
type completion struct {
	algo   int
	cfg    param.Config
	value  float64
	fail   *guard.Failure
	pinned bool
	trial  uint64 // engine trial ID; 0 for sequential completions
	spec   bool   // speculative proposal: phase one must not learn it
}

// applyCompletion feeds one finished trial into both tuning phases and
// every counter the tuner maintains, returning the iteration index it
// completed. reportPhase1 routes the phase-one report — the sequential
// path reports straight to the strategy, the trial engine through the
// algorithm's Proposer — and is skipped entirely for pinned completions
// (and nil callbacks), whose configuration was never proposed by any
// strategy.
func (t *Tuner) applyCompletion(c completion, reportPhase1 func(param.Config, float64)) int {
	failed := c.fail != nil
	iter := t.Iterations() // zero-based index of the completing iteration

	if c.pinned {
		t.pinnedIters++
	} else {
		if failed {
			if fa, ok := t.selector.(guard.FailureAware); ok {
				fa.ReportFailure(c.algo, *c.fail)
			}
		}
		if reportPhase1 != nil {
			reportPhase1(c.cfg, c.value)
		}
		t.selector.Report(c.algo, c.value)
	}
	t.counts[c.algo]++
	if t.keepHistory {
		t.history = append(t.history, Record{
			Iteration: iter,
			Algo:      c.algo,
			Config:    c.cfg,
			Value:     c.value,
			Failed:    failed,
		})
	}
	t.appendValue(c.algo, c.value)
	if failed {
		t.failTotal++
		t.failPerAlgo[c.algo]++
		switch c.fail.Kind {
		case guard.Panic:
			t.failPanics++
		case guard.Timeout:
			t.failTimeout++
		default:
			t.failInvalid++
		}
	} else {
		if c.value > t.worstVal {
			t.worstVal = c.value
		}
		if c.value < t.bestVal {
			t.bestVal = c.value
			t.bestAlgo = c.algo
			t.bestCfg = c.cfg.Clone()
		}
	}
	t.lastValue, t.lastFailed = c.value, failed
	t.watch(failed)
	if t.ckptDir != "" && !t.replaying {
		t.checkpointObserve(iter, c)
	}
	if t.drift != nil {
		// After checkpointObserve: a reset's journal sentinel must
		// follow the observation that triggered it.
		t.driftObserve(c)
	}
	return iter
}

// DefaultValuesTail bounds each per-algorithm value timeline of a tuner
// running WithoutHistory. Timelines are compacted amortizedly: a
// timeline grows to at most 2×DefaultValuesTail values before its oldest
// half is dropped, so memory stays constant over unbounded runs while
// appends remain O(1) amortized.
const DefaultValuesTail = 1024

// appendValue records a value on an algorithm's timeline, bounding the
// timeline when history keeping is off (with history on, the timeline is
// already O(run length) by request).
func (t *Tuner) appendValue(algo int, v float64) {
	h := append(t.perAlgoHistory[algo], v)
	if !t.keepHistory && len(h) > 2*DefaultValuesTail {
		copy(h, h[len(h)-DefaultValuesTail:])
		h = h[:DefaultValuesTail]
	}
	t.perAlgoHistory[algo] = h
}

// algoIndex returns the index of the named algorithm, or -1.
func (t *Tuner) algoIndex(name string) int {
	for i, a := range t.algos {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// penalty returns the value substituted for a failed observation.
func (t *Tuner) penalty() float64 {
	if t.guard != nil {
		return t.guard.Penalty()
	}
	if t.worstVal > 0 {
		return t.worstVal * guard.DefaultPenaltyFactor
	}
	return guard.DefaultFallbackPenalty
}

// watch feeds the failure-rate watchdog and toggles degradation mode.
func (t *Tuner) watch(failed bool) {
	if t.watchWindow <= 0 {
		return
	}
	if t.recent == nil {
		t.recent = make([]bool, t.watchWindow)
	}
	if t.recentFill == t.watchWindow {
		if t.recent[t.recentIdx] {
			t.recentFails--
		}
	} else {
		t.recentFill++
	}
	t.recent[t.recentIdx] = failed
	if failed {
		t.recentFails++
	}
	t.recentIdx = (t.recentIdx + 1) % t.watchWindow
	rate := float64(t.recentFails) / float64(t.recentFill)
	if !t.degraded {
		// Enter only with a half-full window (one early failure is not a
		// trend) and a known-good incumbent to pin.
		if t.recentFill >= (t.watchWindow+1)/2 && rate >= t.degradeAt && t.bestAlgo >= 0 {
			t.degraded = true
		}
	} else if rate <= t.recoverAt {
		t.degraded = false
	}
}

// Step runs one complete tuning iteration with the given measurement
// function and returns its record. With WithGuard installed the
// measurement runs under the guard: panics, deadline overruns, and
// invalid samples become penalized failures instead of crashes.
func (t *Tuner) Step(m Measure) Record {
	algo, cfg := t.Next()
	if t.guard != nil {
		v, fail := t.guard.Invoke(m, algo, cfg)
		if fail != nil {
			t.ObserveFailure(*fail)
		} else {
			t.Observe(v)
		}
	} else {
		t.Observe(m(algo, cfg))
	}
	return Record{Iteration: t.Iterations() - 1, Algo: algo, Config: cfg.Clone(), Value: t.lastValue, Failed: t.lastFailed}
}

// Run executes iters tuning iterations. This is the whole online tuning
// loop for applications that let the tuner drive.
func (t *Tuner) Run(iters int, m Measure) {
	for i := 0; i < iters; i++ {
		t.Step(m)
	}
}

// RunUntil steps the tuner until stop returns true or maxIters iterations
// have run, returning the number of iterations executed.
func (t *Tuner) RunUntil(m Measure, stop func(*Tuner) bool, maxIters int) int {
	n := 0
	for n < maxIters && !stop(t) {
		t.Step(m)
		n++
	}
	return n
}

// Iterations returns the number of completed tuning iterations.
func (t *Tuner) Iterations() int {
	total := 0
	for _, c := range t.counts {
		total += c
	}
	return total
}

// Best returns the globally best observation so far: the optimal algorithm
// with its configuration and value. Before any iteration it returns
// (-1, nil, +Inf).
func (t *Tuner) Best() (algo int, cfg param.Config, value float64) {
	if t.bestAlgo < 0 {
		return -1, nil, math.Inf(1)
	}
	return t.bestAlgo, t.bestCfg.Clone(), t.bestVal
}

// BestConfigOf returns the best observed configuration and value for one
// specific algorithm (phase one's incumbent).
func (t *Tuner) BestConfigOf(algo int) (param.Config, float64) {
	return t.strategies[algo].Best()
}

// FailureStats summarizes the failures seen by a tuner (see
// Tuner.FailureStats).
type FailureStats struct {
	// Total counts failed iterations; Panics, Timeouts and Invalids break
	// them down by guard.Kind.
	Total, Panics, Timeouts, Invalids int
	// PerAlgo counts failed iterations per algorithm.
	PerAlgo []int
	// RecentRate is the failure fraction over the watchdog window
	// (0 before any iteration).
	RecentRate float64
	// Degraded reports that the tuner is currently pinning the incumbent
	// instead of exploring; PinnedIterations counts iterations spent so.
	Degraded         bool
	PinnedIterations int
}

// FailureStats returns the failure counters maintained alongside
// Counts(). Failures are counted whether they arrive through a guard
// (Step with WithGuard), through ObserveFailure, or through Observe's
// non-finite-sample sanitizing.
func (t *Tuner) FailureStats() FailureStats {
	s := FailureStats{
		Total:            t.failTotal,
		Panics:           t.failPanics,
		Timeouts:         t.failTimeout,
		Invalids:         t.failInvalid,
		PerAlgo:          make([]int, len(t.failPerAlgo)),
		Degraded:         t.degraded,
		PinnedIterations: t.pinnedIters,
	}
	copy(s.PerAlgo, t.failPerAlgo)
	if t.recentFill > 0 {
		s.RecentRate = float64(t.recentFails) / float64(t.recentFill)
	}
	return s
}

// Guard exposes the guard installed by WithGuard (nil without it), e.g.
// so ask/tell loops can wrap their measurement with SafeMeasure or
// Invoke.
func (t *Tuner) Guard() *guard.Guard { return t.guard }

// Degraded reports whether the tuner is currently in degradation mode,
// pinning the known-good incumbent instead of exploring.
func (t *Tuner) Degraded() bool { return t.degraded }

// Counts returns a copy of the per-algorithm selection counts — the data
// behind the paper's Figures 4 and 8.
func (t *Tuner) Counts() []int {
	c := make([]int, len(t.counts))
	copy(c, t.counts)
	return c
}

// History returns the per-iteration records (empty with WithoutHistory).
// The records are deep copies: mutating a returned Record's Config does
// not touch the tuner's log.
func (t *Tuner) History() []Record {
	h := make([]Record, len(t.history))
	copy(h, t.history)
	for i := range h {
		h[i].Config = h[i].Config.Clone()
	}
	return h
}

// ValuesOf returns the measured values of one algorithm in observation
// order — the per-algorithm timeline behind the paper's Figure 5. With
// WithoutHistory the timeline is bounded: only the most recent values
// (between DefaultValuesTail and 2×DefaultValuesTail of them) are
// retained.
func (t *Tuner) ValuesOf(algo int) []float64 {
	v := make([]float64, len(t.perAlgoHistory[algo]))
	copy(v, t.perAlgoHistory[algo])
	return v
}

// Strategy exposes algorithm i's phase-one strategy (for inspection).
func (t *Tuner) Strategy(i int) search.Strategy { return t.strategies[i] }

// Selector exposes the phase-two selector (for inspection).
func (t *Tuner) Selector() nominal.Selector { return t.selector }

// ConvergedAll reports whether every algorithm's phase-one strategy has
// converged. Note that phase two never "converges" in the bandit sense;
// the paper runs a fixed iteration budget chosen to guarantee convergence.
func (t *Tuner) ConvergedAll() bool {
	for _, s := range t.strategies {
		if !s.Converged() {
			return false
		}
	}
	return true
}

// Settled returns a RunUntil predicate that is true once the tuner's best
// value has not improved by more than tol (relative) for window
// consecutive iterations. The paper picks its loop lengths offline "to
// ensure tuning convergence"; Settled lets an application detect that
// point online instead. The returned predicate is stateful: use one per
// tuning run.
func Settled(window int, tol float64) func(*Tuner) bool {
	if window < 1 {
		window = 1
	}
	if tol < 0 {
		tol = 0
	}
	lastImproved := 0
	refBest := math.Inf(1)
	return func(t *Tuner) bool {
		_, _, best := t.Best()
		iter := t.Iterations()
		if math.IsInf(best, 1) {
			// No finite best exists (every iteration failed so far): the
			// tuner cannot have converged on anything, however long the
			// plateau. The window starts counting from the first success.
			lastImproved = iter
			return false
		}
		if math.IsInf(refBest, 1) || best < refBest*(1-tol) {
			refBest = best
			lastImproved = iter
			return false
		}
		return iter-lastImproved >= window
	}
}
