package core

import (
	"math"
	"testing"

	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/search"
)

// syntheticAlgos models three algorithms: one untunable and fast, one
// tunable that starts slow but can tune below the fast one, one untunable
// and slow. The measurement is deterministic.
func syntheticAlgos() ([]Algorithm, Measure) {
	algos := []Algorithm{
		{Name: "fast-fixed"}, // no parameters, constant 10
		{
			Name: "tunable",
			Space: param.NewSpace(
				param.NewInterval("x", 0, 10),
				param.NewInterval("y", 0, 10),
			),
			Init: param.Config{0, 0},
		}, // min 5 at (7, 3)
		{Name: "slow-fixed"}, // no parameters, constant 40
	}
	m := func(algo int, cfg param.Config) float64 {
		switch algo {
		case 0:
			return 10
		case 1:
			dx, dy := cfg[0]-7, cfg[1]-3
			return 5 + dx*dx + dy*dy
		default:
			return 40
		}
	}
	return algos, m
}

func mustNew(t *testing.T, algos []Algorithm, sel nominal.Selector, f search.Factory, seed int64, opts ...Option) *Tuner {
	t.Helper()
	tu, err := New(algos, sel, f, seed, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return tu
}

func TestTunerFindsGlobalOptimum(t *testing.T) {
	algos, m := syntheticAlgos()
	tu := mustNew(t, algos, nominal.NewEpsilonGreedy(0.2), DefaultFactory, 1)
	tu.Run(400, m)
	algo, cfg, val := tu.Best()
	if algo != 1 {
		t.Fatalf("best algorithm %d (%s), want 1 (tunable)", algo, tu.AlgorithmName(algo))
	}
	if val > 5.6 {
		t.Errorf("best value %g, want ≤ 5.6 (optimum 5 at (7,3)), config %v", val, cfg)
	}
}

func TestTunerWithEveryPaperSelector(t *testing.T) {
	for _, sel := range nominal.PaperSet() {
		sel := sel
		t.Run(sel.Name(), func(t *testing.T) {
			algos, m := syntheticAlgos()
			tu := mustNew(t, algos, sel, DefaultFactory, 7)
			tu.Run(600, m)
			_, _, val := tu.Best()
			// Every strategy must at least locate a configuration no worse
			// than the untuned fast algorithm.
			if val > 10 {
				t.Errorf("%s best %g, want ≤ 10", sel.Name(), val)
			}
			// All algorithms must have been tried (no starvation).
			for i, c := range tu.Counts() {
				if c == 0 {
					t.Errorf("%s never selected algorithm %d", sel.Name(), i)
				}
			}
		})
	}
}

func TestTunerPerAlgorithmTuningProgress(t *testing.T) {
	// The tunable algorithm's own strategy must improve its incumbent even
	// while the selector switches around — the "tuning progress on all
	// algorithms more or less simultaneously" property.
	algos, m := syntheticAlgos()
	tu := mustNew(t, algos, nominal.NewUniformRandom(), DefaultFactory, 3)
	tu.Run(300, m)
	cfg, val := tu.BestConfigOf(1)
	if cfg == nil || val > 6 {
		t.Errorf("tunable algorithm incumbent %v = %g, want ≤ 6", cfg, val)
	}
	vals := tu.ValuesOf(1)
	if len(vals) < 50 {
		t.Fatalf("tunable algorithm only ran %d times under uniform selection", len(vals))
	}
	if vals[0] <= val {
		t.Errorf("no tuning progress: first %g, best %g", vals[0], val)
	}
}

func TestTunerHistoryAndCounts(t *testing.T) {
	algos, m := syntheticAlgos()
	tu := mustNew(t, algos, nominal.NewRoundRobin(), DefaultFactory, 1)
	tu.Run(9, m)
	h := tu.History()
	if len(h) != 9 {
		t.Fatalf("history has %d records, want 9", len(h))
	}
	for i, r := range h {
		if r.Iteration != i {
			t.Errorf("record %d has iteration %d", i, r.Iteration)
		}
		if r.Algo != i%3 {
			t.Errorf("round-robin record %d ran algo %d, want %d", i, r.Algo, i%3)
		}
		if r.Value != m(r.Algo, r.Config) {
			t.Errorf("record %d value mismatch", i)
		}
	}
	counts := tu.Counts()
	for i, c := range counts {
		if c != 3 {
			t.Errorf("algo %d count %d, want 3", i, c)
		}
	}
	if tu.Iterations() != 9 {
		t.Errorf("Iterations = %d, want 9", tu.Iterations())
	}
}

func TestTunerWithoutHistory(t *testing.T) {
	algos, m := syntheticAlgos()
	tu := mustNew(t, algos, nominal.NewRoundRobin(), DefaultFactory, 1, WithoutHistory())
	tu.Run(30, m)
	if len(tu.History()) != 0 {
		t.Errorf("WithoutHistory still recorded %d records", len(tu.History()))
	}
	if tu.Iterations() != 30 {
		t.Errorf("Iterations = %d, want 30", tu.Iterations())
	}
	if _, _, val := tu.Best(); math.IsInf(val, 1) {
		t.Error("incumbent not tracked without history")
	}
}

func TestTunerAskTellMisusePanics(t *testing.T) {
	algos, _ := syntheticAlgos()
	tu := mustNew(t, algos, nominal.NewRoundRobin(), DefaultFactory, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Observe without Next did not panic")
			}
		}()
		tu.Observe(1)
	}()
	tu.Next()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double Next did not panic")
			}
		}()
		tu.Next()
	}()
}

func TestTunerValidation(t *testing.T) {
	if _, err := New(nil, nominal.NewRoundRobin(), DefaultFactory, 1); err == nil {
		t.Error("New with no algorithms did not fail")
	}
	if _, err := New([]Algorithm{{Name: "a"}}, nil, DefaultFactory, 1); err == nil {
		t.Error("New with nil selector did not fail")
	}
}

func TestTunerNilFactoryUsesDefault(t *testing.T) {
	algos, m := syntheticAlgos()
	tu, err := New(algos, nominal.NewEpsilonGreedy(0.1), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	tu.Run(50, m)
	if tu.Iterations() != 50 {
		t.Error("tuner with nil factory did not run")
	}
}

func TestTunerBestBeforeRun(t *testing.T) {
	algos, _ := syntheticAlgos()
	tu := mustNew(t, algos, nominal.NewRoundRobin(), DefaultFactory, 1)
	algo, cfg, val := tu.Best()
	if algo != -1 || cfg != nil || !math.IsInf(val, 1) {
		t.Errorf("Best before run = (%d, %v, %g)", algo, cfg, val)
	}
}

func TestTunerDeterminism(t *testing.T) {
	run := func() []Record {
		algos, m := syntheticAlgos()
		tu := mustNew(t, algos, nominal.NewEpsilonGreedy(0.1), DefaultFactory, 99)
		tu.Run(100, m)
		return tu.History()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i].Algo != b[i].Algo || a[i].Value != b[i].Value || !a[i].Config.Equal(b[i].Config) {
			t.Fatalf("iteration %d differs between identical runs", i)
		}
	}
}

func TestTunerRunUntil(t *testing.T) {
	algos, m := syntheticAlgos()
	tu := mustNew(t, algos, nominal.NewEpsilonGreedy(0.1), DefaultFactory, 5)
	n := tu.RunUntil(m, func(t *Tuner) bool {
		_, _, v := t.Best()
		return v <= 5.5
	}, 2000)
	if n == 2000 {
		t.Error("RunUntil hit the iteration cap")
	}
	_, _, v := tu.Best()
	if v > 5.5 {
		t.Errorf("stopped at %g, want ≤ 5.5", v)
	}
	// Already-true predicate runs zero iterations.
	n = tu.RunUntil(m, func(*Tuner) bool { return true }, 10)
	if n != 0 {
		t.Errorf("RunUntil with true predicate ran %d iterations", n)
	}
}

func TestDefaultStrategyFor(t *testing.T) {
	cases := []struct {
		space *param.Space
		want  string
	}{
		{param.NewSpace(), "fixed"},
		{param.NewSpace(param.NewInterval("x", 0, 1)), "nelder-mead"},
		{param.NewSpace(param.NewOrdinal("s", "a", "b")), "hillclimb"},
		{param.NewSpace(param.NewNominal("n", "a", "b")), "genetic"},
	}
	for _, c := range cases {
		s := DefaultStrategyFor(c.space, 1)
		if s.Name() != c.want {
			t.Errorf("DefaultStrategyFor(%d dims) = %q, want %q", c.space.Dim(), s.Name(), c.want)
		}
		if !s.Supports(c.space) {
			t.Errorf("chosen strategy %q does not support its space", s.Name())
		}
	}
}

func TestTunerFallbackForUnsupportedSpace(t *testing.T) {
	// An ordinal space is unsupported by Nelder-Mead; New must fall back
	// rather than fail.
	algos := []Algorithm{{
		Name:  "ordinal-algo",
		Space: param.NewSpace(param.NewOrdinal("size", "s", "m", "l")),
	}}
	tu, err := New(algos, nominal.NewEpsilonGreedy(0.1), DefaultFactory, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := tu.Strategy(0).Name(); got != "hillclimb" {
		t.Errorf("fallback strategy %q, want hillclimb", got)
	}
	m := func(_ int, cfg param.Config) float64 { return math.Abs(cfg[0] - 1) }
	tu.Run(20, m)
	_, _, v := tu.Best()
	if v != 0 {
		t.Errorf("best %g, want 0 at the middle ordinal", v)
	}
}

func TestTunerHandCraftedInit(t *testing.T) {
	// The first proposal for an algorithm must be its Init configuration
	// (the raytracing case study's hand-crafted start).
	algos := []Algorithm{{
		Name:  "a",
		Space: param.NewSpace(param.NewInterval("x", 0, 10)),
		Init:  param.Config{4},
	}}
	tu := mustNew(t, algos, nominal.NewRoundRobin(), DefaultFactory, 1)
	_, cfg := tu.Next()
	if cfg[0] != 4 {
		t.Errorf("first proposal %v, want the hand-crafted init (4)", cfg)
	}
	tu.Observe(1)
}

func TestTunerStepRecord(t *testing.T) {
	algos, m := syntheticAlgos()
	tu := mustNew(t, algos, nominal.NewRoundRobin(), DefaultFactory, 1)
	r := tu.Step(m)
	if r.Iteration != 0 || r.Algo != 0 || r.Value != 10 {
		t.Errorf("first step record = %+v", r)
	}
}

func TestTunerConvergedAll(t *testing.T) {
	// All algorithms untunable: each Fixed strategy converges after one
	// report, so after one full round ConvergedAll must hold.
	algos := []Algorithm{{Name: "a"}, {Name: "b"}}
	m := func(algo int, _ param.Config) float64 { return float64(algo + 1) }
	tu := mustNew(t, algos, nominal.NewRoundRobin(), DefaultFactory, 1)
	if tu.ConvergedAll() {
		t.Error("converged before any iteration")
	}
	tu.Run(2, m)
	if !tu.ConvergedAll() {
		t.Error("not converged after all fixed algorithms ran")
	}
}

func TestTunerAccessors(t *testing.T) {
	algos, _ := syntheticAlgos()
	tu := mustNew(t, algos, nominal.NewEpsilonGreedy(0.1), DefaultFactory, 1)
	if tu.NumAlgorithms() != 3 {
		t.Errorf("NumAlgorithms = %d", tu.NumAlgorithms())
	}
	if tu.AlgorithmName(1) != "tunable" {
		t.Errorf("AlgorithmName(1) = %q", tu.AlgorithmName(1))
	}
	if tu.Selector().Name() != "egreedy(10%)" {
		t.Errorf("Selector().Name() = %q", tu.Selector().Name())
	}
	// Nelder-Mead itself supports the empty space, so no fallback happens.
	if tu.Strategy(0).Name() != "nelder-mead" {
		t.Errorf("Strategy(0) = %q, want nelder-mead", tu.Strategy(0).Name())
	}
}

// Crossover scenario (the paper's Section IV-C threat to validity): an
// algorithm that starts slower but tunes to a better optimum. The
// Gradient-Weighted strategy is designed to keep selecting the improving
// algorithm; verify it reaches the better post-tuning optimum.
func TestCrossoverScenarioGradientWeighted(t *testing.T) {
	algos := []Algorithm{
		{Name: "static"}, // constant 8
		{
			Name:  "improves-past",
			Space: param.NewSpace(param.NewInterval("x", 0, 10)),
			Init:  param.Config{0},
		}, // starts at 20, optimum 4 at x=8 — crosses below static
	}
	m := func(algo int, cfg param.Config) float64 {
		if algo == 0 {
			return 8
		}
		d := cfg[0] - 8
		return 4 + d*d/4
	}
	tu := mustNew(t, algos, nominal.NewGradientWeighted(), DefaultFactory, 11)
	tu.Run(500, m)
	best, _, val := tu.Best()
	if best != 1 || val > 4.5 {
		t.Errorf("crossover: best algo %d value %g, want algo 1 near 4", best, val)
	}
}

func TestSettledDetectsConvergence(t *testing.T) {
	// A single tunable algorithm under round-robin: every iteration is a
	// Nelder-Mead step, so the best value improves steadily and then
	// plateaus — exactly the signal Settled watches for.
	algos := []Algorithm{{
		Name: "tunable",
		Space: param.NewSpace(
			param.NewInterval("x", 0, 10),
			param.NewInterval("y", 0, 10),
		),
		Init: param.Config{0, 0},
	}}
	m := func(_ int, cfg param.Config) float64 {
		dx, dy := cfg[0]-7, cfg[1]-3
		return 5 + dx*dx + dy*dy
	}
	tu := mustNew(t, algos, nominal.NewRoundRobin(), DefaultFactory, 5)
	stop := Settled(40, 0.01)
	n := tu.RunUntil(m, stop, 3000)
	if n == 3000 {
		t.Fatal("Settled never triggered")
	}
	if n < 40 {
		t.Fatalf("settled after only %d iterations", n)
	}
	// After settling, the best must be near the optimum (5).
	_, _, val := tu.Best()
	if val > 5.5 {
		t.Errorf("settled at %g, want near 5", val)
	}
}

func TestSettledImmediatelyFalse(t *testing.T) {
	algos, _ := syntheticAlgos()
	tu := mustNew(t, algos, nominal.NewRoundRobin(), DefaultFactory, 1)
	stop := Settled(10, 0.01)
	if stop(tu) {
		t.Error("Settled true before any iteration")
	}
}

func TestSettledClampsArgs(t *testing.T) {
	algos, m := syntheticAlgos()
	tu := mustNew(t, algos, nominal.NewRoundRobin(), DefaultFactory, 1)
	stop := Settled(0, -1) // clamps to window 1, tol 0
	n := tu.RunUntil(m, stop, 100)
	if n == 100 {
		t.Error("clamped Settled never triggered")
	}
}
