// Package corpus generates deterministic synthetic text corpora for the
// string matching case study.
//
// The paper benchmarks on the English King James Bible and the human
// genome. Neither is shipped here; instead this package synthesizes
// corpora with the statistical properties the matchers are sensitive to —
// alphabet size, letter/word distribution, and match density — so the
// relative performance of the algorithms is preserved. The substitution is
// documented in DESIGN.md.
package corpus

import (
	"bytes"
	"math/rand"
)

// QueryPhrase is the paper's benchmark query: a 37-character phrase from
// the King James Bible (Revelation 21:10).
const QueryPhrase = "the spirit to a great and high mountain"

// englishWords is a small vocabulary with King-James-flavoured frequency
// weights. It deliberately contains every word of QueryPhrase so that the
// phrase's constituent words (though rarely the full phrase) occur
// naturally, giving the matchers realistic partial-match work.
var englishWords = []struct {
	word   string
	weight int
}{
	{"the", 70}, {"and", 50}, {"of", 40}, {"to", 28}, {"that", 20},
	{"in", 19}, {"he", 18}, {"shall", 17}, {"unto", 16}, {"for", 15},
	{"i", 14}, {"his", 13}, {"a", 13}, {"lord", 12}, {"they", 11},
	{"be", 11}, {"is", 10}, {"him", 10}, {"not", 10}, {"them", 9},
	{"it", 9}, {"with", 8}, {"all", 8}, {"thou", 8}, {"thy", 7},
	{"was", 7}, {"god", 7}, {"which", 6}, {"my", 6}, {"me", 6},
	{"said", 6}, {"but", 6}, {"ye", 5}, {"their", 5}, {"have", 5},
	{"will", 5}, {"thee", 5}, {"from", 4}, {"as", 4}, {"are", 4},
	{"when", 4}, {"this", 4}, {"out", 3}, {"were", 3}, {"upon", 3},
	{"man", 3}, {"you", 3}, {"by", 3}, {"great", 3}, {"come", 3},
	{"spirit", 2}, {"mountain", 2}, {"high", 2}, {"house", 2},
	{"day", 2}, {"land", 2}, {"people", 2}, {"king", 2}, {"son", 2},
	{"children", 2}, {"israel", 2}, {"came", 2}, {"went", 2},
	{"earth", 1}, {"heaven", 1}, {"water", 1}, {"holy", 1},
	{"city", 1}, {"behold", 1}, {"saying", 1}, {"father", 1},
	{"hand", 1}, {"before", 1}, {"against", 1}, {"brought", 1},
}

// English returns a deterministic English-like corpus of (at least) size
// bytes: weighted words separated by spaces, with sentence punctuation and
// line breaks. Equal seeds produce equal corpora.
func English(size int, seed int64) []byte {
	r := rand.New(rand.NewSource(seed))
	totalWeight := 0
	for _, w := range englishWords {
		totalWeight += w.weight
	}
	var b bytes.Buffer
	b.Grow(size + 64)
	wordsInSentence := 0
	lineLen := 0
	for b.Len() < size {
		t := r.Intn(totalWeight)
		var word string
		for _, w := range englishWords {
			t -= w.weight
			if t < 0 {
				word = w.word
				break
			}
		}
		b.WriteString(word)
		wordsInSentence++
		lineLen += len(word) + 1
		switch {
		case wordsInSentence >= 8+r.Intn(10):
			b.WriteString(".")
			wordsInSentence = 0
			if lineLen > 60 {
				b.WriteString("\n")
				lineLen = 0
			} else {
				b.WriteString(" ")
			}
		default:
			b.WriteString(" ")
		}
	}
	return b.Bytes()[:size]
}

// DNA returns a deterministic 4-letter (acgt) corpus of size bytes with a
// mildly skewed base distribution, standing in for the human genome
// benchmark.
func DNA(size int, seed int64) []byte {
	r := rand.New(rand.NewSource(seed))
	// Roughly human-like GC content (~41%).
	bases := []byte("aaaccgggtt")
	out := make([]byte, size)
	for i := range out {
		out[i] = bases[r.Intn(len(bases))]
	}
	return out
}

// Plant overwrites the text with count non-overlapping occurrences of
// pattern at deterministic pseudo-random positions, returning the sorted
// positions used. It ensures planted occurrences do not create accidental
// overlaps with each other. Plant panics when the pattern does not fit
// count times.
func Plant(text, pattern []byte, count int, seed int64) []int {
	if len(pattern) == 0 || count <= 0 {
		return nil
	}
	if count*len(pattern) > len(text) {
		panic("corpus: pattern does not fit the requested number of times")
	}
	r := rand.New(rand.NewSource(seed))
	var positions []int
	occupied := make([]bool, len(text))
	for len(positions) < count {
		pos := r.Intn(len(text) - len(pattern) + 1)
		clear := true
		for i := pos; i < pos+len(pattern); i++ {
			if occupied[i] {
				clear = false
				break
			}
		}
		if !clear {
			continue
		}
		copy(text[pos:], pattern)
		for i := pos; i < pos+len(pattern); i++ {
			occupied[i] = true
		}
		positions = append(positions, pos)
	}
	sortInts(positions)
	return positions
}

func sortInts(xs []int) {
	// Insertion sort: position lists here are short.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Bible returns the standard benchmark corpus used throughout the
// experiments: an English-like text of the given size with the paper's
// query phrase planted a realistic number of times (about one occurrence
// per 512 KiB, mirroring the rarity of a full verse phrase).
func Bible(size int, seed int64) []byte {
	text := English(size, seed)
	count := size / (512 << 10)
	if count < 1 {
		count = 1
	}
	Plant(text, []byte(QueryPhrase), count, seed+1)
	return text
}
