package corpus

import (
	"bytes"
	"testing"
)

func TestEnglishDeterministicAndSized(t *testing.T) {
	a := English(10000, 42)
	b := English(10000, 42)
	if !bytes.Equal(a, b) {
		t.Fatal("equal seeds produced different corpora")
	}
	if len(a) != 10000 {
		t.Fatalf("size %d, want 10000", len(a))
	}
	c := English(10000, 43)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestEnglishLooksLikeText(t *testing.T) {
	text := English(100000, 1)
	spaces := bytes.Count(text, []byte(" "))
	if spaces < 10000 {
		t.Errorf("only %d spaces in 100k chars; not word-like", spaces)
	}
	if n := bytes.Count(text, []byte("the ")); n < 500 {
		t.Errorf("only %d occurrences of 'the '; distribution off", n)
	}
	for _, c := range text {
		if !(c >= 'a' && c <= 'z') && c != ' ' && c != '.' && c != '\n' {
			t.Fatalf("unexpected byte %q in corpus", c)
		}
	}
}

func TestDNA(t *testing.T) {
	d := DNA(50000, 7)
	if len(d) != 50000 {
		t.Fatalf("size %d", len(d))
	}
	counts := map[byte]int{}
	for _, c := range d {
		counts[c]++
	}
	for _, c := range []byte("acgt") {
		if counts[c] == 0 {
			t.Errorf("base %q never occurs", c)
		}
	}
	if len(counts) != 4 {
		t.Errorf("alphabet size %d, want 4", len(counts))
	}
	if !bytes.Equal(d, DNA(50000, 7)) {
		t.Error("DNA not deterministic")
	}
}

func TestPlant(t *testing.T) {
	text := English(100000, 3)
	pat := []byte(QueryPhrase)
	positions := Plant(text, pat, 5, 11)
	if len(positions) != 5 {
		t.Fatalf("planted %d, want 5", len(positions))
	}
	for i, p := range positions {
		if !bytes.Equal(text[p:p+len(pat)], pat) {
			t.Errorf("position %d does not hold the pattern", p)
		}
		if i > 0 && positions[i-1] > p {
			t.Error("positions not sorted")
		}
		if i > 0 && positions[i-1]+len(pat) > p {
			t.Error("planted occurrences overlap")
		}
	}
}

func TestPlantEdgeCases(t *testing.T) {
	if got := Plant(make([]byte, 10), nil, 3, 1); got != nil {
		t.Error("empty pattern should plant nothing")
	}
	if got := Plant(make([]byte, 10), []byte("ab"), 0, 1); got != nil {
		t.Error("zero count should plant nothing")
	}
	defer func() {
		if recover() == nil {
			t.Error("overfull plant did not panic")
		}
	}()
	Plant(make([]byte, 10), []byte("abcdef"), 2, 1)
}

func TestBibleContainsQuery(t *testing.T) {
	text := Bible(1<<20, 9)
	if n := bytes.Count(text, []byte(QueryPhrase)); n < 2 {
		t.Errorf("query phrase occurs %d times in 1 MiB, want ≥ 2", n)
	}
	if len(text) != 1<<20 {
		t.Errorf("size %d", len(text))
	}
}

func TestQueryPhraseLength(t *testing.T) {
	// The paper's query phrase: matchers assume it is long enough for the
	// filter-based algorithms (≥ 15 bytes) and short enough for the
	// bit-parallel ones (≤ 63).
	if n := len(QueryPhrase); n < 15 || n > 63 {
		t.Fatalf("query phrase length %d outside [15, 63]", n)
	}
}
