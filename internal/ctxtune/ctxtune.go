// Package ctxtune is the contextual tuning subsystem: it conditions the
// two-phase autotuner's algorithm choice on a per-request feature vector
// instead of forcing one global winner onto every input.
//
// The paper's Hybrid string matcher already picks by a single input
// feature (pattern length), and extension X4 showed a per-context tuner
// family halving total time on alternating traffic. This package
// promotes that idea to a first-class routing layer over the concurrent
// trial engine:
//
//   - Requests carry a Features vector — input size, alphabet/corpus
//     class, scene depth, whatever the workload can describe about the
//     input it is about to process. Features are plain float64s so they
//     cross the wire as an additive JSON field.
//   - A Partitioner maps features to a context ID. The Tree partitioner
//     starts from quantized hash buckets and refines online: when a
//     bucket's observed cost distribution is bimodal across a feature
//     threshold (min-samples and min-lift gated), the bucket splits into
//     two child contexts. Splits are journaled and replayed on resume,
//     so a restarted server rediscovers every context it had learned.
//   - An Engine maintains one selector replica per context over the
//     nominal.Mergeable fork/merge machinery: each context gets its own
//     lease-based trial engine whose selector is warm-started from the
//     global fold and from per-context wisdom entries, so a newly
//     discovered context does not relearn from scratch, and every
//     contextual completion folds back into the global selector.
//
// The tuned server routes feature-bearing LeaseN requests through this
// engine; requests without features land on the global context, which
// keeps v1 clients working unchanged.
package ctxtune

// Features is a per-request feature vector. Nil or empty means "no
// features" and routes to the global context. It is a type alias so wire
// payloads ([]float64) pass through without conversion.
type Features = []float64

// GlobalContext is the context ID of feature-less traffic: the global
// engine itself, not a partitioned replica.
const GlobalContext = "g"
