package ctxtune

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/search"
	"repro/internal/wisdom"
)

// extIDBase is where contextual trial IDs start: IDs at or above it were
// leased from a per-context replica (and carry a route entry back to
// it); IDs below it pass through to the global engine untouched. 2^32 is
// the stripe core.ShardedEngine uses for the same trick, and it keeps
// the IDs at ten JSON digits — every trial's ID crosses the wire three
// times (lease, completion, ack), so digit count is throughput. The
// global counter would need 4.3 billion completions to reach the stripe,
// and even then a colliding completion degrades to ErrUnknownTrial — the
// route table, not the ID range, is what actually resolves a trial.
const extIDBase uint64 = 1 << 32

// warmStartBoost is how many synthetic observations of a wisdom entry's
// winning algorithm a cold replica absorbs: enough to bias the selector
// toward the recorded winner, few enough that live evidence overturns a
// stale entry quickly.
const warmStartBoost = 3

// warmStartKeep is the Decay fraction applied to a selector state
// imported from the global fold. Cross-context costs can live on
// different scales, and a min-exploiting selector would enthrone an
// imported record forever; decaying the import turns it into a weak
// prior — thinly-evidenced arms return to unvisited and are re-probed
// at the context's own scale. (Contexts whose winner may disagree with
// the global fold should additionally use a windowed or decaying
// selector, e.g. EpsilonGreedy.RecencyWindow — the same advice the
// drift watchdog gives, because an imported fold that mismatches local
// costs is exactly a drifted record.)
const warmStartKeep = 0.5

// Config assembles a contextual Engine. Algos, Selector and Seed are
// required; everything else has a working zero value.
type Config struct {
	// Algos is the algorithm roster, shared by the global engine and
	// every context replica.
	Algos []core.Algorithm
	// Selector builds one phase-two selector instance per engine (global
	// and each replica). All instances must be the same type: replicas
	// warm-start by restoring the global selector's exported state.
	Selector func() nominal.Selector
	// Factory is the phase-one search strategy factory (nil = default).
	Factory search.Factory
	// Seed derives every engine's seed; replicas fold their context ID
	// in, so two contexts never share an RNG stream.
	Seed int64
	// Partitioner maps features to contexts (nil = NewTree defaults).
	Partitioner Partitioner
	// Dir is the persistence root: the global engine checkpoints under
	// Dir/global, the partitioner journals splits to Dir/splits.jsonl,
	// and Checkpoint snapshots partitioner + per-context selector state
	// to Dir/contexts.json. Empty = in-memory only.
	Dir string
	// Every is the global engine's snapshot interval (with Dir).
	Every int
	// Wisdom, when set, warm-starts cold replicas from recorded
	// per-context winners and records each context's best at Checkpoint.
	Wisdom *wisdom.Store
	// Scope prefixes wisdom keys (defaults to "ctxtune"); use the
	// workload name so different rosters never share entries.
	Scope string
	// Opts are engine/tuner options applied to the global engine and to
	// every replica (lease timeout, max in-flight, drift watchdog, ...).
	// Do not pass core.WithCheckpoint here — Dir owns persistence.
	Opts []core.Option
}

// route records where a contextual trial ID came from, so completions
// and heartbeats find their replica and the feature vector reaches the
// partitioner when the measurement lands.
type route struct {
	ctx    string
	local  uint64
	algo   int
	feats  Features
	expiry time.Time
}

// replica is one per-context engine. boost counts the synthetic wisdom
// warm-start observations absorbed at creation, so aggregate statistics
// can report real measurements only.
type replica struct {
	id       string
	eng      *core.ConcurrentTuner
	boost    int
	boostArm int
}

// Engine is the contextual tuning engine: a global core.ConcurrentTuner
// for feature-less traffic plus one lazily created replica per
// partitioner context, with all replica completions folded back into the
// global selector via Absorb. It implements the tuned.Engine surface, so
// the wire server can serve it directly; LeaseNFor is the contextual
// entry point.
type Engine struct {
	cfg    Config
	part   Partitioner
	global *core.ConcurrentTuner

	mu       sync.Mutex
	replicas map[string]*replica
	saved    map[string][]byte // snapshotted selector states awaiting their replica
	routes   map[uint64]route
	nextExt  uint64
	journal  *splitJournal
	now      func() time.Time

	// reps mirrors the replicas map as an immutable slice (replicas are
	// never removed), so the read-side aggregates — Iterations above
	// all, which the server consults on every lease for its trial
	// target — never contend with the routing mutex.
	reps atomic.Pointer[[]*replica]

	// Fold-back accounting: contextual completions absorbed into the
	// global selector count as global iterations, but they are copies of
	// measurements the replicas already counted — aggregates subtract
	// them so one measurement is one iteration. nFolds is atomic for the
	// same lock-free Iterations; the per-algorithm counts stay behind mu
	// (Counts is not on the hot path).
	nFolds atomic.Int64
	folds  []int // per algorithm
}

// engineState is the contexts.json payload: the partitioner snapshot and
// every replica's selector state.
type engineState struct {
	Partitioner json.RawMessage   `json:"partitioner,omitempty"`
	Contexts    map[string][]byte `json:"contexts,omitempty"`
}

const contextsFileName = "contexts.json"

// New builds a contextual engine. When cfg.Dir holds state from a
// previous incarnation (a global checkpoint, a contexts snapshot, a
// split journal), the engine resumes from it: the global engine replays
// its journal, the partitioner restores its snapshot and replays the
// split journal on top, and every snapshotted context replica is
// re-created with its saved selector state — a restarted server
// rediscovers every context it had learned.
func New(cfg Config) (*Engine, error) {
	if len(cfg.Algos) == 0 {
		return nil, errors.New("ctxtune: no algorithms")
	}
	if cfg.Selector == nil {
		return nil, errors.New("ctxtune: nil selector factory")
	}
	if cfg.Scope == "" {
		cfg.Scope = "ctxtune"
	}
	if cfg.Every <= 0 {
		cfg.Every = 100
	}
	e := &Engine{
		cfg:      cfg,
		part:     cfg.Partitioner,
		replicas: make(map[string]*replica),
		saved:    make(map[string][]byte),
		routes:   make(map[uint64]route),
		now:      time.Now,
		folds:    make([]int, len(cfg.Algos)),
	}
	if e.part == nil {
		e.part = NewTree(0, 0, 0)
	}

	var err error
	if cfg.Dir == "" {
		e.global, err = core.NewConcurrentTuner(cfg.Algos, cfg.Selector(), cfg.Factory, cfg.Seed, cfg.Opts...)
		if err != nil {
			return nil, err
		}
		e.hookJournal()
		return e, nil
	}

	globalDir := filepath.Join(cfg.Dir, "global")
	if err := os.MkdirAll(globalDir, 0o755); err != nil {
		return nil, fmt.Errorf("ctxtune: %w", err)
	}
	if len(checkpoint.Generations(globalDir)) > 0 {
		e.global, err = core.ResumeConcurrent(globalDir, cfg.Every, cfg.Algos, cfg.Selector(), cfg.Factory, cfg.Seed, cfg.Opts...)
	} else {
		opts := append(append([]core.Option(nil), cfg.Opts...), core.WithCheckpoint(globalDir, cfg.Every))
		e.global, err = core.NewConcurrentTuner(cfg.Algos, cfg.Selector(), cfg.Factory, cfg.Seed, opts...)
	}
	if err != nil {
		return nil, err
	}
	if err := e.restoreContexts(); err != nil {
		return nil, err
	}
	// Journal splits learned before the partitioner's last snapshot are
	// already in the tree; Replay is idempotent, so applying the full
	// journal closes the gap between snapshot and crash.
	if r, ok := e.part.(interface{ Replay([]Split) }); ok {
		r.Replay(readSplits(cfg.Dir))
	}
	e.journal, err = openSplitJournal(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("ctxtune: split journal: %w", err)
	}
	e.hookJournal()
	return e, nil
}

// hookJournal routes new partitioner splits into the journal (when
// persistent) — the Tree invokes it under its own lock, before the split
// becomes visible to Context, so a journaled split is never skipped.
func (e *Engine) hookJournal() {
	t, ok := e.part.(*Tree)
	if !ok {
		return
	}
	t.onSplit = func(s Split) {
		if e.journal != nil {
			e.journal.append(s)
		}
	}
}

// restoreContexts loads Dir/contexts.json, restoring the partitioner and
// re-creating every snapshotted replica. A missing file is a fresh
// start; a corrupt one fails the resume loudly.
func (e *Engine) restoreContexts() error {
	buf, err := os.ReadFile(filepath.Join(e.cfg.Dir, contextsFileName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("ctxtune: %w", err)
	}
	var st engineState
	if err := json.Unmarshal(buf, &st); err != nil {
		return fmt.Errorf("ctxtune: contexts snapshot: %w", err)
	}
	if len(st.Partitioner) > 0 {
		if err := e.part.Restore(st.Partitioner); err != nil {
			return err
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for id, sel := range st.Contexts {
		e.saved[id] = sel
		if _, err := e.replicaForLocked(id); err != nil {
			return err
		}
	}
	return nil
}

// Close releases the split journal (the engines need no closing).
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.journal == nil {
		return nil
	}
	err := e.journal.close()
	e.journal = nil
	return err
}

// seedFor derives a replica's seed from the engine seed and its context
// ID, the same way core.Contextual derived per-context tuner seeds.
func (e *Engine) seedFor(id string) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return e.cfg.Seed ^ int64(h.Sum64())
}

func (e *Engine) wisdomKey(id string) string {
	return wisdom.Key(e.cfg.Scope, "ctx", id)
}

// replicaForLocked returns (creating and warm-starting on demand) the
// replica for a context. A cold replica's selector starts from the
// snapshotted state of a previous incarnation when there is one, else
// from the global selector's current fold — a new context begins with
// everything global traffic has learned — and a wisdom entry for the
// context boosts its recorded winner on top.
func (e *Engine) replicaForLocked(id string) (*replica, error) {
	if r, ok := e.replicas[id]; ok {
		return r, nil
	}
	eng, err := core.NewConcurrentTuner(e.cfg.Algos, e.cfg.Selector(), e.cfg.Factory, e.seedFor(id), e.cfg.Opts...)
	if err != nil {
		return nil, fmt.Errorf("ctxtune: context %s: %w", id, err)
	}
	if saved, ok := e.saved[id]; ok {
		// A snapshot of this very context: honest values, restore as-is.
		if err := eng.RestoreSelectorState(saved); err != nil {
			return nil, fmt.Errorf("ctxtune: context %s selector: %w", id, err)
		}
		delete(e.saved, id)
	} else if state, err := e.global.ExportSelectorState(); err == nil {
		// The global fold's values may live on another cost scale:
		// import them softened to a weak prior (see warmStartKeep).
		// Best effort — a selector that cannot round-trip its state
		// just starts cold.
		if eng.RestoreSelectorState(state) == nil {
			eng.DecaySelector(warmStartKeep)
		}
	}
	boost, boostArm := 0, 0
	if w := e.cfg.Wisdom; w != nil {
		if entry, ok := w.Lookup(e.wisdomKey(id)); ok {
			if arm := e.armByName(entry.Algorithm); arm >= 0 {
				obs := make([]nominal.Observation, warmStartBoost)
				for i := range obs {
					obs[i] = nominal.Observation{Arm: arm, Value: entry.Value}
				}
				boost, boostArm = eng.Absorb(obs), arm
			}
		}
	}
	r := &replica{id: id, eng: eng, boost: boost, boostArm: boostArm}
	e.replicas[id] = r
	reps := make([]*replica, 0, len(e.replicas))
	for _, rr := range e.replicas {
		reps = append(reps, rr)
	}
	e.reps.Store(&reps)
	return r, nil
}

func (e *Engine) armByName(name string) int {
	for i, a := range e.cfg.Algos {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// LeaseNFor leases up to n trials for a feature vector: feature-less
// requests go to the global engine; everything else routes through the
// partitioner to its context replica, and the returned trial IDs are
// re-stamped into the contextual ID range so completions find their way
// back.
func (e *Engine) LeaseNFor(f Features, n int) ([]core.Trial, error) {
	if len(f) == 0 {
		return e.global.LeaseN(n)
	}
	id := e.part.Context(f)
	if id == GlobalContext {
		return e.global.LeaseN(n)
	}
	e.mu.Lock()
	r, err := e.replicaForLocked(id)
	e.mu.Unlock()
	if err != nil {
		return nil, err
	}
	trials, err := r.eng.LeaseN(n)
	if err != nil {
		return nil, err
	}
	feats := append(Features(nil), f...)
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range trials {
		e.nextExt++
		ext := extIDBase + e.nextExt
		e.routes[ext] = route{ctx: id, local: trials[i].ID, algo: trials[i].Algo, feats: feats, expiry: trials[i].Deadline}
		trials[i].ID = ext
	}
	return trials, nil
}

// LeaseN implements the feature-less leg of the engine surface.
func (e *Engine) LeaseN(n int) ([]core.Trial, error) { return e.global.LeaseN(n) }

// takeRoute removes and returns the route of a contextual trial ID.
func (e *Engine) takeRoute(id uint64) (route, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	rt, ok := e.routes[id]
	if ok {
		delete(e.routes, id)
	}
	return rt, ok
}

func (e *Engine) replicaOf(ctx string) *replica {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.replicas[ctx]
}

// CompleteN finishes a batch of trials, global and contextual mixed. A
// successful contextual completion additionally feeds the partitioner
// (features, cost) for split refinement and folds the observation into
// the global selector, so global knowledge keeps improving even when all
// traffic carries features.
func (e *Engine) CompleteN(results []core.TrialResult) []error {
	errs := make([]error, len(results))
	var globalIdx []int
	var globalRes []core.TrialResult
	type item struct {
		idx int
		rt  route
		rep *replica
	}
	items := make([]item, 0, len(results))
	e.mu.Lock()
	for i, res := range results {
		if res.ID < extIDBase {
			globalIdx = append(globalIdx, i)
			globalRes = append(globalRes, res)
			continue
		}
		rt, ok := e.routes[res.ID]
		if !ok {
			errs[i] = core.ErrUnknownTrial
			continue
		}
		delete(e.routes, res.ID)
		r := e.replicas[rt.ctx]
		if r == nil {
			errs[i] = core.ErrUnknownTrial
			continue
		}
		items = append(items, item{i, rt, r})
	}
	e.mu.Unlock()
	// One replica CompleteN per context and one global Absorb per call:
	// the wire path hands us whole batches, and per-result round trips
	// through three mutexes were the routing layer's dominant cost. The
	// grouping scans instead of building a map — a worker's batch is
	// nearly always single-context, and at wire batch sizes the scan is
	// cheaper than map churn.
	obs := make([]nominal.Observation, 0, len(items))
	batch := make([]core.TrialResult, 0, len(items))
	group := make([]int, 0, len(items))
	for g := range items {
		rep := items[g].rep
		if rep == nil {
			continue // completed with an earlier group
		}
		batch, group = batch[:0], group[:0]
		for j := g; j < len(items); j++ {
			if items[j].rep == rep {
				items[j].rep = nil
				group = append(group, j)
				batch = append(batch, core.TrialResult{ID: items[j].rt.local, Value: results[items[j].idx].Value})
			}
		}
		for k, err := range rep.eng.CompleteN(batch) {
			it := items[group[k]]
			errs[it.idx] = err
			if err != nil {
				continue
			}
			v := results[it.idx].Value
			e.part.Observe(it.rt.feats, v)
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				obs = append(obs, nominal.Observation{Arm: it.rt.algo, Value: v})
			}
		}
	}
	if len(obs) > 0 {
		// Absorb only skips out-of-range arms and non-finite values;
		// arms come from our own routes and values are filtered above,
		// so the applied count equals len(obs) and per-arm fold counters
		// stay exact.
		n := e.global.Absorb(obs)
		e.nFolds.Add(int64(n))
		if n == len(obs) {
			e.mu.Lock()
			for _, o := range obs {
				if o.Arm < len(e.folds) {
					e.folds[o.Arm]++
				}
			}
			e.mu.Unlock()
		}
	}
	if len(globalRes) > 0 {
		for j, err := range e.global.CompleteN(globalRes) {
			errs[globalIdx[j]] = err
		}
	}
	return errs
}

// FailN fails a batch of trials, global and contextual mixed. Failures
// do not reach the partitioner (a penalty value says nothing about the
// input's cost regime) or the global fold.
func (e *Engine) FailN(fails []core.TrialFailure) []error {
	errs := make([]error, len(fails))
	var globalIdx []int
	var globalFails []core.TrialFailure
	for i, f := range fails {
		if f.ID < extIDBase {
			globalIdx = append(globalIdx, i)
			globalFails = append(globalFails, f)
			continue
		}
		rt, ok := e.takeRoute(f.ID)
		if !ok {
			errs[i] = core.ErrUnknownTrial
			continue
		}
		r := e.replicaOf(rt.ctx)
		if r == nil {
			errs[i] = core.ErrUnknownTrial
			continue
		}
		errs[i] = r.eng.FailN([]core.TrialFailure{{ID: rt.local, Failure: f.Failure}})[0]
	}
	if len(globalFails) > 0 {
		for j, err := range e.global.FailN(globalFails) {
			errs[globalIdx[j]] = err
		}
	}
	return errs
}

// liveness answers Heartbeat/Alive for a mixed ID batch.
func (e *Engine) liveness(ids []uint64, probe func(r *replica, local []uint64) []bool, global func([]uint64) []bool) []bool {
	out := make([]bool, len(ids))
	var globalIdx []int
	var globalIDs []uint64
	byCtx := make(map[string][]int)
	e.mu.Lock()
	for i, id := range ids {
		if id < extIDBase {
			globalIdx = append(globalIdx, i)
			globalIDs = append(globalIDs, id)
			continue
		}
		if _, ok := e.routes[id]; ok {
			byCtx[e.routes[id].ctx] = append(byCtx[e.routes[id].ctx], i)
		}
	}
	e.mu.Unlock()
	for ctx, idxs := range byCtx {
		r := e.replicaOf(ctx)
		if r == nil {
			continue
		}
		local := make([]uint64, len(idxs))
		e.mu.Lock()
		for j, i := range idxs {
			local[j] = e.routes[ids[i]].local
		}
		e.mu.Unlock()
		for j, alive := range probe(r, local) {
			out[idxs[j]] = alive
			if !alive {
				e.takeRoute(ids[idxs[j]])
			}
		}
	}
	if len(globalIDs) > 0 {
		for j, alive := range global(globalIDs) {
			out[globalIdx[j]] = alive
		}
	}
	return out
}

// Heartbeat extends leases and reports liveness for a mixed ID batch.
func (e *Engine) Heartbeat(ids []uint64) []bool {
	return e.liveness(ids,
		func(r *replica, local []uint64) []bool { return r.eng.Heartbeat(local) },
		e.global.Heartbeat)
}

// Alive reports liveness for a mixed ID batch without extending leases.
func (e *Engine) Alive(ids []uint64) []bool {
	return e.liveness(ids,
		func(r *replica, local []uint64) []bool { return r.eng.Alive(local) },
		e.global.Alive)
}

// Absorb folds external observations into the global engine.
func (e *Engine) Absorb(obs []nominal.Observation) int { return e.global.Absorb(obs) }

// ReclaimExpired sweeps expired leases across the global engine and
// every replica, and drops routes whose trial expired long enough ago
// that no late completion can still be applied.
func (e *Engine) ReclaimExpired() int {
	n := e.global.ReclaimExpired()
	e.mu.Lock()
	reps := make([]*replica, 0, len(e.replicas))
	for _, r := range e.replicas {
		reps = append(reps, r)
	}
	e.mu.Unlock()
	for _, r := range reps {
		n += r.eng.ReclaimExpired()
	}
	grace := e.global.LeaseTimeout()
	now := e.now()
	e.mu.Lock()
	for id, rt := range e.routes {
		if !rt.expiry.IsZero() && now.After(rt.expiry.Add(grace)) {
			delete(e.routes, id)
		}
	}
	e.mu.Unlock()
	return n
}

// Checkpoint snapshots the global engine, the partitioner, and every
// replica's selector state, and records each context's best result into
// the wisdom store. With no Dir only the wisdom recording happens.
func (e *Engine) Checkpoint() error {
	if err := e.global.Checkpoint(); err != nil {
		return err
	}
	e.mu.Lock()
	reps := make([]*replica, 0, len(e.replicas))
	for _, r := range e.replicas {
		reps = append(reps, r)
	}
	saved := make(map[string][]byte, len(e.saved))
	for id, sel := range e.saved {
		saved[id] = sel
	}
	e.mu.Unlock()

	if w := e.cfg.Wisdom; w != nil {
		for _, r := range reps {
			if algo, cfg, val := r.eng.Best(); algo >= 0 {
				w.Record(e.wisdomKey(r.id), e.cfg.Algos[algo].Name, cfg, val)
			}
		}
	}
	if e.cfg.Dir == "" {
		return nil
	}
	st := engineState{Contexts: saved}
	part, err := e.part.Export()
	if err != nil {
		return err
	}
	st.Partitioner = part
	for _, r := range reps {
		sel, err := r.eng.ExportSelectorState()
		if err != nil {
			continue
		}
		st.Contexts[r.id] = sel
	}
	buf, err := json.Marshal(st)
	if err != nil {
		return err
	}
	return checkpoint.WriteFileAtomic(filepath.Join(e.cfg.Dir, contextsFileName), buf, 0o644)
}

// snapshotReplicas returns a stable view of the replica set without
// touching the routing mutex (see the reps field).
func (e *Engine) snapshotReplicas() []*replica {
	if p := e.reps.Load(); p != nil {
		return *p
	}
	return nil
}

// Best returns the best observation across the global engine and every
// replica.
func (e *Engine) Best() (int, param.Config, float64) {
	algo, cfg, val := e.global.Best()
	for _, r := range e.snapshotReplicas() {
		if a, c, v := r.eng.Best(); a >= 0 && v < val {
			algo, cfg, val = a, c, v
		}
	}
	return algo, cfg, val
}

// Iterations returns completed trials summed across all engines, each
// real measurement counted once: the fold-back copies in the global
// engine and the synthetic wisdom boosts are subtracted back out.
func (e *Engine) Iterations() int {
	n := e.global.Iterations() - int(e.nFolds.Load())
	for _, r := range e.snapshotReplicas() {
		n += r.eng.Iterations() - r.boost
	}
	return n
}

// Counts returns per-algorithm completion counts summed across all
// engines, net of fold-back copies and wisdom boosts (see Iterations).
func (e *Engine) Counts() []int {
	counts := e.global.Counts()
	if counts == nil {
		counts = make([]int, len(e.cfg.Algos))
	}
	e.mu.Lock()
	for i, n := range e.folds {
		if i < len(counts) {
			counts[i] -= n
		}
	}
	e.mu.Unlock()
	for _, r := range e.snapshotReplicas() {
		for i, n := range r.eng.Counts() {
			if i < len(counts) {
				counts[i] += n
			}
		}
		if r.boost > 0 && r.boostArm < len(counts) {
			counts[r.boostArm] -= r.boost
		}
	}
	return counts
}

// Stats returns engine event counters summed across all engines. The
// global Absorbed counter includes the per-context completions folded
// back in.
func (e *Engine) Stats() core.EngineStats {
	st := e.global.Stats()
	for _, r := range e.snapshotReplicas() {
		rs := r.eng.Stats()
		st.Leased += rs.Leased
		st.Completed += rs.Completed
		st.Failed += rs.Failed
		st.Expired += rs.Expired
		st.InFlight += rs.InFlight
	}
	return st
}

// FailureStats returns failure counters summed across all engines
// (rate/degradation fields come from the global engine).
func (e *Engine) FailureStats() core.FailureStats {
	fs := e.global.FailureStats()
	for _, r := range e.snapshotReplicas() {
		rf := r.eng.FailureStats()
		fs.Total += rf.Total
		fs.Panics += rf.Panics
		fs.Timeouts += rf.Timeouts
		fs.Invalids += rf.Invalids
		for i, n := range rf.PerAlgo {
			if i < len(fs.PerAlgo) {
				fs.PerAlgo[i] += n
			}
		}
	}
	return fs
}

// DriftStats reports the global engine's drift counters.
func (e *Engine) DriftStats() core.DriftStats { return e.global.DriftStats() }

// Degraded reports the global engine's degradation state.
func (e *Engine) Degraded() bool { return e.global.Degraded() }

// NumAlgorithms returns the roster size.
func (e *Engine) NumAlgorithms() int { return e.global.NumAlgorithms() }

// AlgorithmName returns the name of algorithm i.
func (e *Engine) AlgorithmName(i int) string { return e.global.AlgorithmName(i) }

// LeaseTimeout returns the lease TTL (shared by all engines).
func (e *Engine) LeaseTimeout() time.Duration { return e.global.LeaseTimeout() }

// ContextCount returns the number of live context replicas.
func (e *Engine) ContextCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.replicas)
}

// Contexts returns every context ID the partitioner has created.
func (e *Engine) Contexts() []string { return e.part.Contexts() }

// BestFor returns the best observation of the replica a feature vector
// routes to (falling back to the global engine for feature-less input or
// a context that has not leased yet).
func (e *Engine) BestFor(f Features) (int, param.Config, float64) {
	if len(f) == 0 {
		return e.global.Best()
	}
	id := e.part.Context(f)
	e.mu.Lock()
	r := e.replicas[id]
	e.mu.Unlock()
	if r == nil {
		return e.global.Best()
	}
	return r.eng.Best()
}
