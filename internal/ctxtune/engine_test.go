package ctxtune

import (
	"testing"

	"repro/internal/core"
	"repro/internal/nominal"
	"repro/internal/wisdom"
)

// Two-regime model for engine tests: features [1] are the "cheap" class
// where algorithm 0 wins (cost 1 vs 3), features [100] the "expensive"
// class where algorithm 1 wins (cost 9 vs 30). The class means differ by
// far more than the split tree's lift gate, and the per-class winners
// are opposite, so a correct engine must both split the shared bucket
// and learn a different incumbent on each side.
var (
	cheapF = Features{1}
	dearF  = Features{100}
)

func classCost(f Features, algo int) float64 {
	if f[0] < 50 {
		if algo == 0 {
			return 1
		}
		return 3
	}
	if algo == 1 {
		return 9
	}
	return 30
}

func testConfig(t *testing.T, dir string) Config {
	t.Helper()
	return Config{
		Algos: []core.Algorithm{{Name: "a"}, {Name: "b"}},
		// Windowed ε-greedy: contexts here disagree with the global
		// fold's winner, so the imported warm start must age out (see
		// warmStartKeep).
		Selector: func() nominal.Selector {
			return &nominal.EpsilonGreedy{Eps: 0.10, RecencyWindow: 25}
		},
		Seed:        7,
		Partitioner: NewTree(1, 32, 1.5),
		Dir:         dir,
		Every:       50,
	}
}

// drive runs n lease/complete rounds of the two-class stream.
func drive(t *testing.T, e *Engine, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		f := cheapF
		if i%2 == 1 {
			f = dearF
		}
		trials, err := e.LeaseNFor(f, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range trials {
			errs := e.CompleteN([]core.TrialResult{{ID: tr.ID, Value: classCost(f, tr.Algo)}})
			if errs[0] != nil {
				t.Fatalf("complete trial %d: %v", tr.ID, errs[0])
			}
		}
	}
}

func TestEngineSplitsAndLearnsPerContext(t *testing.T) {
	e, err := New(testConfig(t, ""))
	if err != nil {
		t.Fatal(err)
	}
	drive(t, e, 600)

	if cheap, dear := e.part.Context(cheapF), e.part.Context(dearF); cheap == dear {
		t.Fatalf("engine never split the shared bucket: both classes in %q", cheap)
	}
	if a, _, _ := e.BestFor(cheapF); a != 0 {
		t.Errorf("cheap-class winner %d, want 0", a)
	}
	if a, _, _ := e.BestFor(dearF); a != 1 {
		t.Errorf("dear-class winner %d, want 1", a)
	}
	if n := e.ContextCount(); n < 2 {
		t.Errorf("ContextCount = %d, want >= 2", n)
	}
	if it := e.Iterations(); it != 600 {
		t.Errorf("Iterations = %d, want 600", it)
	}
	// Contextual completions fold into the global selector.
	if st := e.global.Stats(); st.Absorbed == 0 {
		t.Error("no contextual completions absorbed into the global engine")
	}
}

func TestEngineGlobalPassthrough(t *testing.T) {
	e, err := New(testConfig(t, ""))
	if err != nil {
		t.Fatal(err)
	}
	trials, err := e.LeaseNFor(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trials {
		if tr.ID >= extIDBase {
			t.Errorf("feature-less trial got contextual ID %d", tr.ID)
		}
	}
	results := make([]core.TrialResult, len(trials))
	for i, tr := range trials {
		results[i] = core.TrialResult{ID: tr.ID, Value: 2}
	}
	for i, err := range e.CompleteN(results) {
		if err != nil {
			t.Errorf("global completion %d: %v", i, err)
		}
	}
	if it := e.global.Iterations(); it != len(trials) {
		t.Errorf("global iterations = %d, want %d", it, len(trials))
	}
}

func TestEngineMixedBatchAndUnknownIDs(t *testing.T) {
	e, err := New(testConfig(t, ""))
	if err != nil {
		t.Fatal(err)
	}
	g, err := e.LeaseNFor(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := e.LeaseNFor(cheapF, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c[0].ID < extIDBase {
		t.Fatalf("contextual trial got global ID %d", c[0].ID)
	}
	errs := e.CompleteN([]core.TrialResult{
		{ID: g[0].ID, Value: 1},
		{ID: c[0].ID, Value: 1},
		{ID: extIDBase + 999999, Value: 1}, // never leased
	})
	if errs[0] != nil || errs[1] != nil {
		t.Errorf("valid completions errored: %v %v", errs[0], errs[1])
	}
	if errs[2] == nil {
		t.Error("unknown contextual ID accepted")
	}
	// Idempotency: re-completing is acknowledged as unknown, not applied.
	errs = e.CompleteN([]core.TrialResult{{ID: c[0].ID, Value: 1}})
	if errs[0] == nil {
		t.Error("duplicate contextual completion accepted")
	}
}

func TestEngineHeartbeatAliveRouting(t *testing.T) {
	e, err := New(testConfig(t, ""))
	if err != nil {
		t.Fatal(err)
	}
	g, _ := e.LeaseNFor(nil, 1)
	c, _ := e.LeaseNFor(cheapF, 1)
	ids := []uint64{g[0].ID, c[0].ID, extIDBase + 424242}
	for i, want := range []bool{true, true, false} {
		if got := e.Heartbeat(ids)[i]; got != want {
			t.Errorf("Heartbeat[%d] = %v, want %v", i, got, want)
		}
		if got := e.Alive(ids)[i]; got != want {
			t.Errorf("Alive[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestEngineCheckpointRestartRediscoversContexts(t *testing.T) {
	dir := t.TempDir()
	e, err := New(testConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	drive(t, e, 600)
	wantContexts := e.Contexts()
	wantCheap, _, _ := e.BestFor(cheapF)
	wantDear, _, _ := e.BestFor(dearF)
	if wantCheap == wantDear {
		t.Fatalf("setup failed: same winner %d for both classes", wantCheap)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := New(testConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Contexts(); len(got) != len(wantContexts) {
		t.Fatalf("restart contexts %v, want %v", got, wantContexts)
	}
	if r.ContextCount() < 2 {
		t.Errorf("restart replicas = %d, want >= 2", r.ContextCount())
	}
	// The restored selectors must still route each class to its winner:
	// lease a handful per class and check the majority pick.
	for _, tc := range []struct {
		f    Features
		want int
	}{{cheapF, wantCheap}, {dearF, wantDear}} {
		picks := make(map[int]int)
		for i := 0; i < 20; i++ {
			trials, err := r.LeaseNFor(tc.f, 1)
			if err != nil {
				t.Fatal(err)
			}
			picks[trials[0].Algo]++
			r.CompleteN([]core.TrialResult{{ID: trials[0].ID, Value: classCost(tc.f, trials[0].Algo)}})
		}
		if picks[tc.want] <= picks[1-tc.want] {
			t.Errorf("class %v picks after restart = %v, want majority on %d", tc.f, picks, tc.want)
		}
	}
}

func TestEngineSplitJournalSurvivesKill(t *testing.T) {
	// Kill case: the process dies after a split but before any
	// Checkpoint — contexts.json was never written, only splits.jsonl.
	dir := t.TempDir()
	e, err := New(testConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	drive(t, e, 600)
	cheap, dear := e.part.Context(cheapF), e.part.Context(dearF)
	if cheap == dear {
		t.Fatal("setup failed: no split happened")
	}
	// No Checkpoint, no Close: simulate a hard kill.

	r, err := New(testConfig(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.part.Context(cheapF); got != cheap {
		t.Errorf("cheap class routes to %q after kill, want %q", got, cheap)
	}
	if got := r.part.Context(dearF); got != dear {
		t.Errorf("dear class routes to %q after kill, want %q", got, dear)
	}
}

func TestEngineWisdomWarmStart(t *testing.T) {
	w := wisdom.NewStore()
	cfg := testConfig(t, "")
	cfg.Wisdom = w
	cfg.Scope = "test"

	// Learn, checkpoint (records wisdom), throw the engine away.
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, e, 600)
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if w.Len() == 0 {
		t.Fatal("checkpoint recorded no wisdom")
	}

	// A brand-new engine (no Dir, no snapshot) with the same wisdom
	// store must bias each rediscovered context toward its recorded
	// winner. Replay the stream far shorter than learning would need.
	cfg2 := testConfig(t, "")
	cfg2.Wisdom = w
	cfg2.Scope = "test"
	f, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, f, 200) // enough to re-split; wisdom then primes the children
	if a, _, _ := f.BestFor(cheapF); a != 0 {
		t.Errorf("warm-started cheap winner %d, want 0", a)
	}
	if a, _, _ := f.BestFor(dearF); a != 1 {
		t.Errorf("warm-started dear winner %d, want 1", a)
	}
}

func TestEngineChecksConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := New(Config{Algos: []core.Algorithm{{Name: "a"}}}); err == nil {
		t.Error("nil selector factory accepted")
	}
}

func TestEngineAggregatesAcrossContexts(t *testing.T) {
	e, err := New(testConfig(t, ""))
	if err != nil {
		t.Fatal(err)
	}
	drive(t, e, 100)
	g, _ := e.LeaseNFor(nil, 2)
	for _, tr := range g {
		e.CompleteN([]core.TrialResult{{ID: tr.ID, Value: 5}})
	}
	if it := e.Iterations(); it != 102 {
		t.Errorf("Iterations = %d, want 102", it)
	}
	sum := 0
	for _, n := range e.Counts() {
		sum += n
	}
	if sum != 102 {
		t.Errorf("Counts sum = %d, want 102", sum)
	}
	st := e.Stats()
	if st.Completed != 102 || st.InFlight != 0 {
		t.Errorf("Stats = %+v, want 102 completed, 0 in flight", st)
	}
}
