package ctxtune

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzPartitioner drives the split tree with an arbitrary observation
// stream and checks the invariants that the routing layer depends on:
// Context never panics and never returns empty for non-empty features,
// routing is stable between observations of the same vector (absent a
// split), Export/Restore reproduces the routing exactly, Replay of the
// split journal alone reproduces the topology, and Restore of arbitrary
// bytes errors instead of panicking.
func FuzzPartitioner(f *testing.F) {
	// Seed: the canonical bimodal stream — features [1] cheap, [100]
	// dear — that must provoke a split, encoded as (feature, cost)
	// float64 pairs.
	seed := make([]byte, 0, 200*32)
	for i := 0; i < 100; i++ {
		for _, pair := range [][2]float64{{1, 1}, {100, 10}} {
			var b [16]byte
			binary.LittleEndian.PutUint64(b[:8], math.Float64bits(pair[0]))
			binary.LittleEndian.PutUint64(b[8:], math.Float64bits(pair[1]))
			seed = append(seed, b[:]...)
		}
	}
	f.Add(uint8(1), uint8(16), seed)
	f.Add(uint8(4), uint8(64), []byte{})
	f.Add(uint8(0), uint8(0), []byte("not floats at all, just garbage bytes"))

	f.Fuzz(func(t *testing.T, buckets, minSamples uint8, data []byte) {
		tr := NewTree(int(buckets), int(minSamples), 1.2)

		// Arbitrary bytes must never panic Restore. Start the streaming
		// checks from a fresh tree either way, so its config is known.
		_ = tr.Restore(data)
		tr = NewTree(int(buckets), int(minSamples), 1.2)

		// Decode the data as a stream of float64s: the first byte picks
		// the feature dimensionality, then each group of dim+1 floats is
		// one (features, cost) observation — raw bits, so NaN and ±Inf
		// flow through routinely.
		dim := 1
		if len(data) > 0 {
			dim = 1 + int(data[0])%3
		}
		floats := make([]float64, 0, len(data)/8)
		for off := 1; off+8 <= len(data); off += 8 {
			floats = append(floats, math.Float64frombits(binary.LittleEndian.Uint64(data[off:])))
		}
		var vecs []Features
		for i := 0; i+dim+1 <= len(floats); i += dim + 1 {
			fv := Features(floats[i : i+dim])
			before := tr.Context(fv)
			if before == "" || before == GlobalContext {
				t.Fatalf("Context(%v) = %q for non-empty features", fv, before)
			}
			splits := len(tr.Splits())
			tr.Observe(fv, floats[i+dim])
			if got := tr.Context(fv); got != before && len(tr.Splits()) == splits {
				t.Fatalf("Context(%v) moved %q -> %q without a split", fv, before, got)
			}
			vecs = append(vecs, fv)
		}

		// Export/Restore must reproduce the routing of every vector seen.
		blob, err := tr.Export()
		if err != nil {
			t.Fatalf("Export: %v", err)
		}
		restored := NewTree(0, 0, 0)
		if err := restored.Restore(blob); err != nil {
			t.Fatalf("Restore of own Export: %v", err)
		}
		// Replay of the journal alone must reproduce the topology.
		replayed := NewTree(int(buckets), int(minSamples), 1.2)
		replayed.Replay(tr.Splits())
		for _, fv := range vecs {
			want := tr.Context(fv)
			if got := restored.Context(fv); got != want {
				t.Fatalf("restored tree routes %v to %q, original to %q", fv, got, want)
			}
			if got := replayed.Context(fv); got != want {
				t.Fatalf("replayed tree routes %v to %q, original to %q", fv, got, want)
			}
		}
	})
}
