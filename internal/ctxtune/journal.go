package ctxtune

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
)

// The split journal is an append-only JSON-lines file of Split records.
// Splits are rare (each one needs MinSamples observations and a bimodal
// distribution), so every append is fsynced — the journal is always
// complete up to the last split the process committed to, and replaying
// it on resume reconstructs the exact tree topology even when the
// process died between two partitioner snapshots.

const splitJournalName = "splits.jsonl"

// splitJournal appends Split records durably to dir/splits.jsonl.
type splitJournal struct {
	f *os.File
}

// openSplitJournal opens (creating if needed) the split journal for
// appending.
func openSplitJournal(dir string) (*splitJournal, error) {
	f, err := os.OpenFile(filepath.Join(dir, splitJournalName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &splitJournal{f: f}, nil
}

// append writes one split record and fsyncs.
func (j *splitJournal) append(s Split) error {
	buf, err := json.Marshal(s)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(append(buf, '\n')); err != nil {
		return err
	}
	return j.f.Sync()
}

func (j *splitJournal) close() error { return j.f.Close() }

// readSplits loads the journaled splits from dir, in append order. A
// missing file yields nil; a torn or corrupt trailing line (the crash
// case) ends the read at the last intact record instead of failing the
// resume.
func readSplits(dir string) []Split {
	f, err := os.Open(filepath.Join(dir, splitJournalName))
	if err != nil {
		return nil
	}
	defer f.Close()
	var out []Split
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var s Split
		if json.Unmarshal(sc.Bytes(), &s) != nil || s.Node == "" {
			break
		}
		out = append(out, s)
	}
	return out
}
