package ctxtune

import (
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/nominal"
	"repro/internal/search"
)

// Keyed maintains one independent two-phase tuner per application
// context named by an explicit string key (an input-size bucket, a
// data-shape class, a query category…). It is the simple, sequential
// ancestor of Engine — the application labels each iteration itself
// instead of describing the input with a feature vector — kept for
// callers that already know their contexts (extension X4 uses it for
// the alternating pattern-length sweep).
//
// The paper's formulation fixes the context K = (K_A, K_S) for the
// duration of tuning; the related work it builds on (PetaBricks'
// decision trees, Nitro's feature models) exists precisely because real
// inputs vary and the best algorithm varies with them. Keyed is the
// string-labelled online answer; Engine adds feature routing, adaptive
// partitioning, warm starts, and the concurrent lease surface on top.
type Keyed struct {
	algos    []core.Algorithm
	selector func() nominal.Selector
	factory  search.Factory
	seed     int64
	opts     []core.Option

	mu     sync.Mutex
	tuners map[string]*core.Tuner
}

// NewKeyed prepares a per-context tuner family. The selector function
// builds a fresh phase-two strategy per context (selectors are
// stateful); factory and opts are as in core.New. Each context's random
// stream is derived from the seed and the context key, so runs are
// reproducible regardless of context arrival order.
func NewKeyed(algos []core.Algorithm, selector func() nominal.Selector, factory search.Factory, seed int64, opts ...core.Option) *Keyed {
	return &Keyed{
		algos:    algos,
		selector: selector,
		factory:  factory,
		seed:     seed,
		opts:     opts,
		tuners:   make(map[string]*core.Tuner),
	}
}

// For returns the tuner for a context, creating it on first use.
func (c *Keyed) For(context string) (*core.Tuner, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.tuners[context]; ok {
		return t, nil
	}
	h := fnv.New64a()
	h.Write([]byte(context))
	t, err := core.New(c.algos, c.selector(), c.factory, c.seed^int64(h.Sum64()), c.opts...)
	if err != nil {
		return nil, err
	}
	c.tuners[context] = t
	return t, nil
}

// Contexts returns the context keys seen so far, sorted.
func (c *Keyed) Contexts() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.tuners))
	for k := range c.tuners {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Step runs one tuning iteration in the given context.
func (c *Keyed) Step(context string, m core.Measure) (core.Record, error) {
	t, err := c.For(context)
	if err != nil {
		return core.Record{}, err
	}
	return t.Step(m), nil
}
