package ctxtune

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/nominal"
	"repro/internal/param"
)

// keyedModel: two contexts with opposite winners. Algorithm 0 costs 5 in
// context "small" but 20 in "large"; algorithm 1 the reverse.
func keyedModel() ([]core.Algorithm, func(context string) core.Measure) {
	algos := []core.Algorithm{{Name: "a"}, {Name: "b"}}
	m := func(context string) core.Measure {
		return func(algo int, _ param.Config) float64 {
			if (context == "small") == (algo == 0) {
				return 5
			}
			return 20
		}
	}
	return algos, m
}

func TestKeyedLearnsPerContext(t *testing.T) {
	algos, model := keyedModel()
	c := NewKeyed(algos, func() nominal.Selector { return nominal.NewEpsilonGreedy(0.1) }, nil, 1)
	// Interleave contexts, as a real input stream would.
	for i := 0; i < 200; i++ {
		ctx := "small"
		if i%2 == 1 {
			ctx = "large"
		}
		if _, err := c.Step(ctx, model(ctx)); err != nil {
			t.Fatal(err)
		}
	}
	small, err := c.For("small")
	if err != nil {
		t.Fatal(err)
	}
	large, err := c.For("large")
	if err != nil {
		t.Fatal(err)
	}
	if best, _, _ := small.Best(); best != 0 {
		t.Errorf("small-context winner %d, want 0", best)
	}
	if best, _, _ := large.Best(); best != 1 {
		t.Errorf("large-context winner %d, want 1", best)
	}
	// Each context's counts concentrate on its own winner.
	if counts := small.Counts(); counts[0] <= counts[1] {
		t.Errorf("small-context counts %v not concentrated on algorithm 0", counts)
	}
	if counts := large.Counts(); counts[1] <= counts[0] {
		t.Errorf("large-context counts %v not concentrated on algorithm 1", counts)
	}
	if got := c.Contexts(); len(got) != 2 || got[0] != "large" || got[1] != "small" {
		t.Errorf("Contexts = %v", got)
	}
}

func TestKeyedBeatsGlobalUnderAlternation(t *testing.T) {
	// A single global tuner on an alternating stream can at best commit
	// to one algorithm (mean cost ≥ 12.5 = (5+20)/2); the keyed family
	// converges to ~5 in each context.
	algos, model := keyedModel()

	global, err := core.New(algos, nominal.NewEpsilonGreedy(0.1), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctxOf := func(i int) string {
		if i%2 == 1 {
			return "large"
		}
		return "small"
	}
	globalTotal := 0.0
	for i := 0; i < 300; i++ {
		globalTotal += global.Step(model(ctxOf(i))).Value
	}

	c := NewKeyed(algos, func() nominal.Selector { return nominal.NewEpsilonGreedy(0.1) }, nil, 1)
	ctxTotal := 0.0
	for i := 0; i < 300; i++ {
		rec, err := c.Step(ctxOf(i), model(ctxOf(i)))
		if err != nil {
			t.Fatal(err)
		}
		ctxTotal += rec.Value
	}
	if !(ctxTotal < globalTotal*0.75) {
		t.Errorf("keyed total %g not clearly below global %g", ctxTotal, globalTotal)
	}
}

func TestKeyedDeterministicAcrossArrivalOrder(t *testing.T) {
	algos, model := keyedModel()
	run := func(order []string) []int {
		c := NewKeyed(algos, func() nominal.Selector { return nominal.NewEpsilonGreedy(0.1) }, nil, 9)
		for _, ctx := range order {
			for i := 0; i < 30; i++ {
				if _, err := c.Step(ctx, model(ctx)); err != nil {
					t.Fatal(err)
				}
			}
		}
		small, _ := c.For("small")
		return small.Counts()
	}
	a := run([]string{"small", "large"})
	b := run([]string{"large", "small"})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("context arrival order changed results: %v vs %v", a, b)
		}
	}
}

func TestKeyedConcurrentFor(t *testing.T) {
	algos, _ := keyedModel()
	c := NewKeyed(algos, func() nominal.Selector { return nominal.NewRoundRobin() }, nil, 4)
	var wg sync.WaitGroup
	tuners := make([]*core.Tuner, 16)
	for g := range tuners {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			t, err := c.For("shared")
			if err == nil {
				tuners[g] = t
			}
		}(g)
	}
	wg.Wait()
	for _, tu := range tuners {
		if tu == nil || tu != tuners[0] {
			t.Fatal("concurrent For returned distinct tuners for one context")
		}
	}
}

func TestKeyedPropagatesConstructionError(t *testing.T) {
	c := NewKeyed(nil, func() nominal.Selector { return nominal.NewRoundRobin() }, nil, 1)
	if _, err := c.For("x"); err == nil {
		t.Error("empty algorithm set did not error")
	}
}
