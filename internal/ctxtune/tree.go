package ctxtune

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"sync"
)

// Partitioner maps feature vectors to context IDs and refines its
// partition from observed (features, cost) pairs. Implementations must
// be deterministic: the same feature vector always yields the same
// context ID between refinements, and refinements only ever subdivide —
// a context ID, once issued, keeps routing to that subtree.
type Partitioner interface {
	// Context returns the context ID for a feature vector. Empty
	// features return GlobalContext.
	Context(f Features) string
	// Observe feeds one measured cost for refinement. Implementations
	// may split a context as a result; the new routing applies to
	// subsequent Context calls only.
	Observe(f Features, cost float64)
	// Contexts returns the IDs of every context created so far, sorted.
	Contexts() []string
	// Export serializes the partitioner (topology and refinement
	// statistics); Restore replaces the receiver's state with it.
	Export() ([]byte, error)
	Restore(data []byte) error
}

// Tree partitioner defaults.
const (
	DefaultBuckets    = 4
	DefaultMinSamples = 64
	DefaultMinLift    = 1.5
	DefaultMaxDepth   = 4
)

// Split is one recorded refinement: node's cost distribution was bimodal
// across feature dimension Dim at quantized bin Bin, so the node was
// subdivided — features whose Dim'th quantized value is <= Bin route to
// the ".lo" child, the rest to ".hi". Splits are journaled in the order
// they happen and replaying them in order reconstructs the tree exactly.
type Split struct {
	Node string `json:"node"`
	Dim  int    `json:"dim"`
	Bin  int    `json:"bin"`
}

// binStat accumulates the cost mass of one quantized feature bin inside
// one leaf: enough to compare mean costs on either side of any candidate
// threshold without keeping raw samples.
type binStat struct {
	N   int     `json:"n"`
	Sum float64 `json:"sum"`
}

// node is one tree node: a hash bucket at the root, a leaf accumulating
// refinement statistics, or an interior node with a recorded split.
type node struct {
	id    string
	depth int

	split  *Split
	lo, hi *node

	// Leaf refinement statistics: per feature dimension, per quantized
	// bin, the count and sum of observed costs.
	count int
	dims  []map[int]*binStat
}

// Tree is the Partitioner implementation: quantized hash buckets first,
// refined online into a split tree. It is safe for concurrent use.
//
// Bucketing quantizes each feature to a log2 bin and hashes the bin
// vector into one of Buckets root contexts; distinct input regimes that
// collide into one bucket are then separated by splits once their cost
// distributions prove bimodal. Split decisions depend only on the
// accumulated per-bin statistics and a data-independent candidate set
// (the quantization boundaries), so clearly separated regimes produce
// the same splits regardless of observation arrival order.
type Tree struct {
	mu sync.Mutex

	buckets    int
	minSamples int
	minLift    float64
	maxDepth   int

	roots  map[int]*node
	nodes  map[string]*node
	splits []Split

	// onSplit, when set, is invoked (under the tree lock) for every new
	// split — the engine hooks the split journal here.
	onSplit func(Split)
}

// NewTree builds a Tree partitioner. Non-positive arguments take the
// package defaults.
func NewTree(buckets, minSamples int, minLift float64) *Tree {
	if buckets <= 0 {
		buckets = DefaultBuckets
	}
	if minSamples <= 0 {
		minSamples = DefaultMinSamples
	}
	if minLift <= 1 {
		minLift = DefaultMinLift
	}
	return &Tree{
		buckets:    buckets,
		minSamples: minSamples,
		minLift:    minLift,
		maxDepth:   DefaultMaxDepth,
		roots:      make(map[int]*node),
		nodes:      make(map[string]*node),
	}
}

// qbin quantizes one feature value to its log2 bin: 0 stays 0, and the
// bin grows with the magnitude's doubling count, signed. Non-finite
// values collapse into bin 0 — hostile input must route somewhere
// deterministic, not panic.
func qbin(v float64) int {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	b := int(math.Floor(math.Log2(1 + math.Abs(v))))
	if v < 0 {
		return -b
	}
	return b
}

// bucketOf hashes the quantized feature vector into a root bucket.
func (t *Tree) bucketOf(f Features) int {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range f {
		b := uint64(int64(qbin(v)))
		for i := 0; i < 8; i++ {
			buf[i] = byte(b >> (8 * i))
		}
		h.Write(buf[:])
	}
	return int(h.Sum64() % uint64(t.buckets))
}

// rootFor returns (creating on demand) the root node of a bucket.
func (t *Tree) rootFor(bucket int) *node {
	if n, ok := t.roots[bucket]; ok {
		return n
	}
	n := &node{id: "b" + strconv.Itoa(bucket)}
	t.roots[bucket] = n
	t.nodes[n.id] = n
	return n
}

// leafFor walks a feature vector from its bucket through the recorded
// splits to its leaf.
func (t *Tree) leafFor(f Features) *node {
	n := t.rootFor(t.bucketOf(f))
	for n.split != nil {
		s := n.split
		bin := 0
		if s.Dim < len(f) {
			bin = qbin(f[s.Dim])
		}
		if bin <= s.Bin {
			n = n.lo
		} else {
			n = n.hi
		}
	}
	return n
}

// Context implements Partitioner.
func (t *Tree) Context(f Features) string {
	if len(f) == 0 {
		return GlobalContext
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.leafFor(f).id
}

// Observe implements Partitioner: it accumulates the cost into the
// feature vector's leaf and splits the leaf when its distribution has
// proven bimodal across some feature threshold.
func (t *Tree) Observe(f Features, cost float64) {
	if len(f) == 0 || math.IsNaN(cost) || math.IsInf(cost, 0) {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.leafFor(f)
	n.count++
	for d, v := range f {
		for len(n.dims) <= d {
			n.dims = append(n.dims, make(map[int]*binStat))
		}
		b := qbin(v)
		st := n.dims[d][b]
		if st == nil {
			st = &binStat{}
			n.dims[d][b] = st
		}
		st.N++
		st.Sum += cost
	}
	// Evaluating the split gates scans every candidate threshold, which
	// is wasted work on a mature leaf that will never split again. Check
	// at the minSamples gate and every splitStride observations after:
	// a split lands at most splitStride observations later than it
	// would under per-observation evaluation, and the elected (dim, bin)
	// is unchanged — determinism across arrival order is preserved
	// because the journal records the split, not the count it fired at.
	if n.count >= t.minSamples && (n.count == t.minSamples || (n.count-t.minSamples)%splitStride == 0) {
		t.maybeSplit(n)
	}
}

// splitStride is how often a mature leaf re-evaluates its split gates.
const splitStride = 8

// maybeSplit evaluates the split gates on a leaf: enough samples, a
// candidate threshold with enough mass on both sides, and a mean-cost
// lift of at least minLift across it. Candidates are the quantization
// bin boundaries — a finite, data-independent set — and the winner is
// the highest lift with (dim, bin) as the deterministic tie-break, so
// any sufficiently large sample of a clearly bimodal stream elects the
// same split.
func (t *Tree) maybeSplit(n *node) {
	if n.count < t.minSamples || n.depth >= t.maxDepth {
		return
	}
	minSide := t.minSamples / 4
	if minSide < 1 {
		minSide = 1
	}
	bestLift := 0.0
	bestDim, bestBin := -1, 0
	for d, bins := range n.dims {
		if len(bins) < 2 {
			continue
		}
		order := make([]int, 0, len(bins))
		for b := range bins {
			order = append(order, b)
		}
		sort.Ints(order)
		// Prefix over the sorted bins: each boundary between consecutive
		// bins is one candidate threshold.
		loN, loSum := 0, 0.0
		totN, totSum := 0, 0.0
		for _, b := range order {
			totN += bins[b].N
			totSum += bins[b].Sum
		}
		for i := 0; i < len(order)-1; i++ {
			loN += bins[order[i]].N
			loSum += bins[order[i]].Sum
			hiN, hiSum := totN-loN, totSum-loSum
			if loN < minSide || hiN < minSide {
				continue
			}
			loMean, hiMean := loSum/float64(loN), hiSum/float64(hiN)
			if loMean <= 0 || hiMean <= 0 {
				continue
			}
			lift := loMean / hiMean
			if lift < 1 {
				lift = 1 / lift
			}
			if lift > bestLift {
				bestLift, bestDim, bestBin = lift, d, order[i]
			}
		}
	}
	if bestDim < 0 || bestLift < t.minLift {
		return
	}
	s := Split{Node: n.id, Dim: bestDim, Bin: bestBin}
	t.applySplit(s)
	if t.onSplit != nil {
		t.onSplit(s)
	}
}

// applySplit subdivides a node per the split record. It is idempotent —
// replaying a journaled split that already happened is a no-op — which
// is what makes snapshot + journal replay safe to combine.
func (t *Tree) applySplit(s Split) {
	n := t.nodes[s.Node]
	if n == nil || n.split != nil {
		return
	}
	n.split = &Split{Node: s.Node, Dim: s.Dim, Bin: s.Bin}
	n.lo = &node{id: n.id + ".lo", depth: n.depth + 1}
	n.hi = &node{id: n.id + ".hi", depth: n.depth + 1}
	t.nodes[n.lo.id] = n.lo
	t.nodes[n.hi.id] = n.hi
	// The parent's statistics describe the mixed distribution the split
	// just separated; the children start their refinement clean.
	n.count, n.dims = 0, nil
	t.splits = append(t.splits, n.split.clone())
}

func (s *Split) clone() Split { return Split{Node: s.Node, Dim: s.Dim, Bin: s.Bin} }

// Replay applies journaled splits in order (idempotently), rebuilding
// the tree topology a previous process had learned.
func (t *Tree) Replay(splits []Split) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range splits {
		// Root buckets referenced by the journal may not exist yet in a
		// fresh tree; create them so the split has a parent to land on.
		if _, ok := t.nodes[s.Node]; !ok {
			if b, err := strconv.Atoi(trimBucket(s.Node)); err == nil && trimBucket(s.Node) != "" {
				t.rootFor(b)
			}
		}
		t.applySplit(s)
	}
}

// trimBucket extracts the bucket number from a root node ID ("b3" →
// "3"); interior IDs ("b3.lo") return "".
func trimBucket(id string) string {
	if len(id) < 2 || id[0] != 'b' {
		return ""
	}
	for _, c := range id[1:] {
		if c < '0' || c > '9' {
			return ""
		}
	}
	return id[1:]
}

// Contexts implements Partitioner: every node ID created so far, leaves
// and interior nodes alike, sorted.
func (t *Tree) Contexts() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.nodes))
	for id := range t.nodes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Splits returns the splits recorded so far, in order.
func (t *Tree) Splits() []Split {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Split(nil), t.splits...)
}

// treeState is the Export payload: configuration, topology, and the
// per-leaf refinement statistics, so a restored tree keeps maturing
// toward its next split instead of restarting its counts.
type treeState struct {
	Buckets    int         `json:"buckets"`
	MinSamples int         `json:"min_samples"`
	MinLift    float64     `json:"min_lift"`
	MaxDepth   int         `json:"max_depth"`
	Splits     []Split     `json:"splits,omitempty"`
	Leaves     []leafState `json:"leaves,omitempty"`
}

type leafState struct {
	ID    string               `json:"id"`
	Count int                  `json:"count"`
	Dims  []map[string]binStat `json:"dims,omitempty"`
}

// Export implements Partitioner.
func (t *Tree) Export() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := treeState{
		Buckets:    t.buckets,
		MinSamples: t.minSamples,
		MinLift:    t.minLift,
		MaxDepth:   t.maxDepth,
		Splits:     append([]Split(nil), t.splits...),
	}
	ids := make([]string, 0, len(t.nodes))
	for id := range t.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		n := t.nodes[id]
		if n.split != nil || n.count == 0 {
			continue
		}
		ls := leafState{ID: id, Count: n.count}
		for _, bins := range n.dims {
			m := make(map[string]binStat, len(bins))
			for b, st := range bins {
				m[strconv.Itoa(b)] = *st
			}
			ls.Dims = append(ls.Dims, m)
		}
		st.Leaves = append(st.Leaves, ls)
	}
	return json.Marshal(st)
}

// Restore implements Partitioner, replacing the tree with an exported
// snapshot.
func (t *Tree) Restore(data []byte) error {
	var st treeState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("ctxtune: partitioner snapshot: %w", err)
	}
	if st.Buckets <= 0 || st.MinSamples <= 0 || st.MinLift < 1 || st.MaxDepth <= 0 {
		return fmt.Errorf("ctxtune: partitioner snapshot has invalid configuration")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buckets = st.Buckets
	t.minSamples = st.MinSamples
	t.minLift = st.MinLift
	t.maxDepth = st.MaxDepth
	t.roots = make(map[int]*node)
	t.nodes = make(map[string]*node)
	t.splits = nil
	for _, s := range st.Splits {
		if b := trimBucket(s.Node); b != "" {
			if bn, err := strconv.Atoi(b); err == nil {
				t.rootFor(bn)
			}
		}
		t.applySplit(s)
	}
	for _, ls := range st.Leaves {
		if b := trimBucket(ls.ID); b != "" {
			if bn, err := strconv.Atoi(b); err == nil {
				t.rootFor(bn)
			}
		}
		n := t.nodes[ls.ID]
		if n == nil || n.split != nil || ls.Count < 0 {
			continue
		}
		n.count = ls.Count
		n.dims = nil
		for _, m := range ls.Dims {
			bins := make(map[int]*binStat, len(m))
			for k, v := range m {
				b, err := strconv.Atoi(k)
				if err != nil || v.N < 0 || math.IsNaN(v.Sum) || math.IsInf(v.Sum, 0) {
					continue
				}
				bins[b] = &binStat{N: v.N, Sum: v.Sum}
			}
			n.dims = append(n.dims, bins)
		}
	}
	return nil
}
