package ctxtune

import (
	"math"
	"reflect"
	"testing"
)

func TestTreeEmptyFeaturesRouteGlobal(t *testing.T) {
	tr := NewTree(0, 0, 0)
	if got := tr.Context(nil); got != GlobalContext {
		t.Errorf("Context(nil) = %q, want %q", got, GlobalContext)
	}
	if got := tr.Context(Features{}); got != GlobalContext {
		t.Errorf("Context(empty) = %q, want %q", got, GlobalContext)
	}
}

func TestTreeRoutingIsDeterministic(t *testing.T) {
	tr := NewTree(4, 0, 0)
	vecs := []Features{{1}, {100}, {1, 2}, {-5, 0.5}, {math.NaN()}, {math.Inf(1), 3}}
	for _, f := range vecs {
		a, b := tr.Context(f), tr.Context(f)
		if a != b {
			t.Errorf("Context(%v) unstable: %q then %q", f, a, b)
		}
		if a == GlobalContext {
			t.Errorf("Context(%v) = global, want a bucket", f)
		}
	}
}

// driveBimodal feeds a two-regime stream: features [1] cost cheap,
// features [100] cost expensive — the canonical case the split tree must
// separate.
func driveBimodal(tr *Tree, n int, interleaved bool) {
	feed := func(f Features, cost float64, k int) {
		for i := 0; i < k; i++ {
			tr.Observe(f, cost)
		}
	}
	if interleaved {
		for i := 0; i < n; i++ {
			tr.Observe(Features{1}, 1.0)
			tr.Observe(Features{100}, 10.0)
		}
		return
	}
	feed(Features{1}, 1.0, n)
	feed(Features{100}, 10.0, n)
}

func TestTreeSplitsBimodalBucket(t *testing.T) {
	tr := NewTree(1, 64, 1.5) // one bucket: both regimes collide
	if a, b := tr.Context(Features{1}), tr.Context(Features{100}); a != b {
		t.Fatalf("single bucket routed %q and %q", a, b)
	}
	driveBimodal(tr, 100, true)
	splits := tr.Splits()
	if len(splits) != 1 {
		t.Fatalf("splits = %v, want exactly one", splits)
	}
	if splits[0].Dim != 0 {
		t.Errorf("split on dim %d, want 0", splits[0].Dim)
	}
	lo, hi := tr.Context(Features{1}), tr.Context(Features{100})
	if lo == hi {
		t.Errorf("post-split routing did not separate the regimes: both %q", lo)
	}
}

func TestTreeDeterministicAcrossArrivalOrder(t *testing.T) {
	mk := func() *Tree { return NewTree(1, 64, 1.5) }
	a, b := mk(), mk()
	driveBimodal(a, 100, true)
	driveBimodal(b, 100, false)
	if !reflect.DeepEqual(a.Splits(), b.Splits()) {
		t.Errorf("arrival order changed splits: %v vs %v", a.Splits(), b.Splits())
	}
	if !reflect.DeepEqual(a.Contexts(), b.Contexts()) {
		t.Errorf("arrival order changed contexts: %v vs %v", a.Contexts(), b.Contexts())
	}
}

func TestTreeUnimodalNeverSplits(t *testing.T) {
	tr := NewTree(1, 16, 1.5)
	for i := 0; i < 500; i++ {
		// Two feature bins, same cost regime: no lift, no split.
		tr.Observe(Features{1}, 5.0)
		tr.Observe(Features{100}, 5.0)
	}
	if s := tr.Splits(); len(s) != 0 {
		t.Errorf("unimodal stream split anyway: %v", s)
	}
}

func TestTreeReplayRebuildsTopology(t *testing.T) {
	tr := NewTree(1, 64, 1.5)
	driveBimodal(tr, 100, true)
	if len(tr.Splits()) == 0 {
		t.Fatal("no split to replay")
	}
	fresh := NewTree(1, 64, 1.5)
	fresh.Replay(tr.Splits())
	if !reflect.DeepEqual(fresh.Contexts(), tr.Contexts()) {
		t.Errorf("replay contexts %v, want %v", fresh.Contexts(), tr.Contexts())
	}
	for _, f := range []Features{{1}, {100}} {
		if got, want := fresh.Context(f), tr.Context(f); got != want {
			t.Errorf("replayed tree routes %v to %q, original to %q", f, got, want)
		}
	}
	// Replay is idempotent: applying the same journal twice is a no-op.
	fresh.Replay(tr.Splits())
	if !reflect.DeepEqual(fresh.Contexts(), tr.Contexts()) {
		t.Errorf("double replay diverged: %v", fresh.Contexts())
	}
}

func TestTreeExportRestoreRoundTrip(t *testing.T) {
	tr := NewTree(2, 64, 1.5)
	driveBimodal(tr, 100, true)
	tr.Observe(Features{3, 4}, 2.0) // some un-split leaf statistics too
	blob, err := tr.Export()
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewTree(0, 0, 0)
	if err := fresh.Restore(blob); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.Contexts(), tr.Contexts()) {
		t.Errorf("restored contexts %v, want %v", fresh.Contexts(), tr.Contexts())
	}
	for _, f := range []Features{{1}, {100}, {3, 4}, {7}} {
		if got, want := fresh.Context(f), tr.Context(f); got != want {
			t.Errorf("restored tree routes %v to %q, original to %q", f, got, want)
		}
	}
	blob2, err := fresh.Export()
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Error("export/restore/export not stable")
	}
}

func TestTreeRestoreRejectsGarbage(t *testing.T) {
	tr := NewTree(0, 0, 0)
	for _, bad := range []string{"", "{", `{"buckets":0}`, `{"buckets":4,"min_samples":-1}`} {
		if err := tr.Restore([]byte(bad)); err == nil {
			t.Errorf("Restore(%q) accepted", bad)
		}
	}
}

func TestTreeHostileInputs(t *testing.T) {
	tr := NewTree(2, 4, 1.2)
	hostile := []Features{
		{math.NaN()}, {math.Inf(1)}, {math.Inf(-1)},
		{math.NaN(), math.Inf(1), -0.0},
		{1e308, -1e308},
	}
	for _, f := range hostile {
		id := tr.Context(f)
		if id == "" {
			t.Errorf("Context(%v) empty", f)
		}
		tr.Observe(f, 1.0)
		tr.Observe(f, math.NaN()) // ignored, must not poison stats
		if got := tr.Context(f); got != id {
			t.Errorf("Context(%v) moved from %q to %q without a split", f, id, got)
		}
	}
}

func TestQbin(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {1, 1}, {3, 2}, {100, 6}, {-3, -2},
		{math.NaN(), 0}, {math.Inf(1), 0}, {math.Inf(-1), 0},
	}
	for _, c := range cases {
		if got := qbin(c.v); got != c.want {
			t.Errorf("qbin(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}
