package exp

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/report"
	"repro/internal/search"
	"repro/internal/stats"
)

// The ablations probe the design choices the paper fixes by fiat (window
// size 16, ε ∈ {5,10,20}%, Nelder-Mead as the phase-one strategy) and the
// threats to validity it discusses (§IV-C: crossover profiles, soft-max
// starvation). They run on a deterministic synthetic cost model rather
// than wall-clock measurements so they are exact, fast, and reproducible:
// the selector dynamics under study do not depend on where the numbers
// come from.

// synthAlgo is one synthetic tunable algorithm: a paraboloid cost surface
// over a 2-D space with a per-algorithm floor and optimum location.
type synthAlgo struct {
	name  string
	floor float64 // best achievable cost
	optX  float64 // optimum location (both dimensions)
	curve float64 // curvature (how hard the optimum is to reach)
}

func (a synthAlgo) cost(c param.Config) float64 {
	dx, dy := c[0]-a.optX, c[1]-a.optX
	return a.floor + a.curve*(dx*dx+dy*dy)
}

func synthSpace() *param.Space {
	return param.NewSpace(
		param.NewInterval("x", 0, 10),
		param.NewInterval("y", 0, 10),
	)
}

// synthSet is a bandit with distinct floors and tuning difficulty:
// algorithm "tunable-best" must be tuned to win over "static-good".
var synthSet = []synthAlgo{
	{name: "static-good", floor: 8, optX: 5, curve: 0},    // flat: always 8
	{name: "tunable-best", floor: 4, optX: 7, curve: 0.4}, // starts ~23.6, tunes to 4
	{name: "tunable-mid", floor: 7, optX: 3, curve: 0.25}, // tunes to 7
	{name: "static-bad", floor: 30, optX: 5, curve: 0},    // flat: always 30
}

func synthAlgorithms() []core.Algorithm {
	algos := make([]core.Algorithm, len(synthSet))
	for i, a := range synthSet {
		algos[i] = core.Algorithm{Name: a.name, Space: synthSpace(), Init: param.Config{0, 0}}
	}
	return algos
}

// synthMeasure builds a Measure over synthSet with multiplicative Gaussian
// noise of the given relative magnitude.
func synthMeasure(noise float64, r *rand.Rand) core.Measure {
	return func(algo int, c param.Config) float64 {
		v := synthSet[algo].cost(c)
		if noise > 0 {
			v *= 1 + noise*r.NormFloat64()
			if v < 0.01 {
				v = 0.01
			}
		}
		return v
	}
}

// runSynth runs one tuner over the synthetic bandit and returns the mean
// cost over the final quarter of the run (converged performance) plus the
// per-algorithm counts.
func runSynth(sel nominal.Selector, factory search.Factory, iters int, seed int64, noise float64) (tail float64, counts []int) {
	tuner, err := core.New(synthAlgorithms(), sel, factory, seed)
	if err != nil {
		panic(err)
	}
	r := rand.New(rand.NewSource(seed + 7))
	m := synthMeasure(noise, r)
	var vals []float64
	for i := 0; i < iters; i++ {
		vals = append(vals, tuner.Step(m).Value)
	}
	return stats.Mean(vals[len(vals)*3/4:]), tuner.Counts()
}

// AblationWindowSize probes the window-size sensitivity of the Gradient
// Weighted and Sliding-Window AUC strategies (the paper fixes 16).
func AblationWindowSize(w io.Writer, reps, iters int, seed int64) *report.Table {
	t := report.NewTable("Ablation A1: iteration window size (paper fixes 16)",
		"strategy", "window", "tail mean [cost]")
	for _, win := range []int{4, 8, 16, 32, 64} {
		for _, mk := range []func() nominal.Selector{
			func() nominal.Selector { g := nominal.NewGradientWeighted(); g.Window = win; return g },
			func() nominal.Selector { a := nominal.NewSlidingWindowAUC(); a.Window = win; return a },
		} {
			var tails []float64
			var name string
			for rep := 0; rep < reps; rep++ {
				sel := mk()
				name = sel.Name()
				tail, _ := runSynth(sel, nil, iters, seed+int64(rep), 0.02)
				tails = append(tails, tail)
			}
			t.Addf(name, win, stats.Mean(tails))
		}
	}
	if w != nil {
		t.Render(w)
	}
	return t
}

// AblationEpsilonSweep extends the paper's ε ∈ {5,10,20}% to a full sweep.
func AblationEpsilonSweep(w io.Writer, reps, iters int, seed int64) *report.Table {
	t := report.NewTable("Ablation A2: ε sweep for ε-Greedy",
		"epsilon", "tail mean [cost]", "best-algo share")
	for _, eps := range []float64{0.01, 0.02, 0.05, 0.10, 0.20, 0.40} {
		var tails, shares []float64
		for rep := 0; rep < reps; rep++ {
			tail, counts := runSynth(nominal.NewEpsilonGreedy(eps), nil, iters, seed+int64(rep), 0.02)
			tails = append(tails, tail)
			total := 0
			for _, c := range counts {
				total += c
			}
			shares = append(shares, float64(counts[1])/float64(total)) // tunable-best
		}
		t.Addf(fmt.Sprintf("%g%%", eps*100), stats.Mean(tails), stats.Mean(shares))
	}
	if w != nil {
		t.Render(w)
	}
	return t
}

// AblationCrossover reproduces the paper's §IV-C threat to validity: an
// algorithm that starts slower but tunes past the static best. It reports,
// per strategy, how often the crossing algorithm ends up the incumbent.
func AblationCrossover(w io.Writer, reps, iters int, seed int64) *report.Table {
	t := report.NewTable("Ablation A3: crossover scenario (tunable algorithm overtakes static best)",
		"strategy", "found crossover [%]", "tail mean [cost]")
	for _, sname := range StrategyNames() {
		found := 0
		var tails []float64
		for rep := 0; rep < reps; rep++ {
			sel, err := nominal.NewByName(sname)
			if err != nil {
				panic(err)
			}
			tuner, err := core.New(synthAlgorithms(), sel, nil, seed+int64(rep))
			if err != nil {
				panic(err)
			}
			r := rand.New(rand.NewSource(seed + int64(rep) + 7))
			m := synthMeasure(0.02, r)
			var vals []float64
			for i := 0; i < iters; i++ {
				vals = append(vals, tuner.Step(m).Value)
			}
			if best, _, _ := tuner.Best(); best == 1 {
				found++
			}
			tails = append(tails, stats.Mean(vals[len(vals)*3/4:]))
		}
		t.Addf(sname, 100*float64(found)/float64(reps), stats.Mean(tails))
	}
	if w != nil {
		t.Render(w)
	}
	return t
}

// AblationPhase1Strategies swaps the phase-one optimizer inside the
// two-phase tuner (the paper always uses Nelder-Mead).
func AblationPhase1Strategies(w io.Writer, reps, iters int, seed int64) *report.Table {
	t := report.NewTable("Ablation A4: phase-one strategy inside the two-phase tuner (selector: e-Greedy 10%)",
		"phase-1 strategy", "tail mean [cost]")
	for _, name := range []string{"nelder-mead", "hooke-jeeves", "hillclimb", "anneal", "pso", "diffevo", "genetic", "random"} {
		var tails []float64
		for rep := 0; rep < reps; rep++ {
			factory, err := search.NewByName(name, seed+int64(rep))
			if err != nil {
				panic(err)
			}
			tail, _ := runSynth(nominal.NewEpsilonGreedy(0.10), factory, iters, seed+int64(rep), 0.02)
			tails = append(tails, tail)
		}
		t.Addf(name, stats.Mean(tails))
	}
	if w != nil {
		t.Render(w)
	}
	return t
}

// AblationSoftmax contrasts the soft-max (Gibbs) policy the paper rejects
// with ε-Greedy: soft-max suppresses initially bad algorithms, starving
// the one that needs tuning to win.
func AblationSoftmax(w io.Writer, reps, iters int, seed int64) *report.Table {
	t := report.NewTable("Ablation A5: soft-max policy (rejected in §III-A) vs e-Greedy",
		"selector", "tail mean [cost]", "tunable-best share")
	selectors := []func() nominal.Selector{
		func() nominal.Selector { return nominal.NewEpsilonGreedy(0.10) },
		func() nominal.Selector { return nominal.NewSoftmax(0.05) },
		func() nominal.Selector { return nominal.NewSoftmax(0.5) },
	}
	for _, mk := range selectors {
		var tails, shares []float64
		var name string
		for rep := 0; rep < reps; rep++ {
			sel := mk()
			name = sel.Name()
			tail, counts := runSynth(sel, nil, iters, seed+int64(rep), 0.02)
			tails = append(tails, tail)
			total := 0
			for _, c := range counts {
				total += c
			}
			shares = append(shares, float64(counts[1])/float64(total))
		}
		t.Addf(name, stats.Mean(tails), stats.Mean(shares))
	}
	if w != nil {
		t.Render(w)
	}
	return t
}

// AblationCombined evaluates the strategy combination the paper's
// conclusion proposes as future work: ε-Greedy exploitation with
// Gradient-Weighted exploration (nominal.GreedyGradient). It runs the
// crossover scenario of A3, where plain ε-Greedy starves the improving
// algorithm and plain Gradient Weighted never settles.
func AblationCombined(w io.Writer, reps, iters int, seed int64) *report.Table {
	t := report.NewTable("Ablation A6: combined strategy (ε-Greedy exploitation + gradient-weighted exploration)",
		"strategy", "found crossover [%]", "tail mean [cost]")
	for _, sname := range []string{"egreedy:10", "egreedy:20", "gradient", "greedygradient:10", "greedygradient:20"} {
		found := 0
		var tails []float64
		for rep := 0; rep < reps; rep++ {
			sel, err := nominal.NewByName(sname)
			if err != nil {
				panic(err)
			}
			tuner, err := core.New(synthAlgorithms(), sel, nil, seed+int64(rep))
			if err != nil {
				panic(err)
			}
			r := rand.New(rand.NewSource(seed + int64(rep) + 7))
			m := synthMeasure(0.02, r)
			var vals []float64
			for i := 0; i < iters; i++ {
				vals = append(vals, tuner.Step(m).Value)
			}
			if best, _, _ := tuner.Best(); best == 1 {
				found++
			}
			tails = append(tails, stats.Mean(vals[len(vals)*3/4:]))
		}
		t.Addf(sname, 100*float64(found)/float64(reps), stats.Mean(tails))
	}
	if w != nil {
		t.Render(w)
	}
	return t
}

// AblationDrift probes context drift, the motivation the paper opens with
// ("this variation can occur during application runtime"): halfway through
// the run the cost landscape flips — the previously fastest algorithm
// becomes slow and a previously mediocre one becomes fast. Strategies that
// judge algorithms by all-time-best records (plain ε-Greedy, Optimum
// Weighted) stay loyal to the stale winner; window-based strategies
// (Sliding-Window AUC, recency-windowed ε-Greedy) adapt.
func AblationDrift(w io.Writer, reps, iters int, seed int64) *report.Table {
	t := report.NewTable("Ablation A7: context drift at the half-way point",
		"selector", "post-drift tail mean [cost]")
	// Two untunable algorithms whose costs swap at iters/2.
	algos := []core.Algorithm{{Name: "early-fast"}, {Name: "late-fast"}}
	selectors := []func() nominal.Selector{
		func() nominal.Selector { return nominal.NewEpsilonGreedy(0.10) },
		func() nominal.Selector {
			e := nominal.NewEpsilonGreedy(0.10)
			e.RecencyWindow = DefaultDriftWindow
			return e
		},
		func() nominal.Selector { return nominal.NewOptimumWeighted() },
		func() nominal.Selector { return nominal.NewSlidingWindowAUC() },
		func() nominal.Selector { return nominal.NewUniformRandom() },
	}
	for _, mk := range selectors {
		var tails []float64
		var name string
		for rep := 0; rep < reps; rep++ {
			sel := mk()
			name = sel.Name()
			if mk2IsWindowed(sel) {
				name += " windowed"
			}
			tuner, err := core.New(algos, sel, nil, seed+int64(rep))
			if err != nil {
				panic(err)
			}
			r := rand.New(rand.NewSource(seed + int64(rep) + 3))
			iter := 0
			m := func(algo int, _ param.Config) float64 {
				var v float64
				if iter < iters/2 {
					v = []float64{5, 20}[algo]
				} else {
					v = []float64{20, 5}[algo]
				}
				iter++
				return v * (1 + 0.02*r.NormFloat64())
			}
			var vals []float64
			for i := 0; i < iters; i++ {
				vals = append(vals, tuner.Step(m).Value)
			}
			tails = append(tails, stats.Mean(vals[len(vals)*3/4:]))
		}
		t.Addf(name, stats.Mean(tails))
	}
	if w != nil {
		t.Render(w)
	}
	return t
}

// DefaultDriftWindow is the recency window used by the windowed ε-Greedy
// variant in the drift ablation.
const DefaultDriftWindow = 16

// mk2IsWindowed reports whether the selector is a windowed ε-Greedy.
func mk2IsWindowed(s nominal.Selector) bool {
	e, ok := s.(*nominal.EpsilonGreedy)
	return ok && e.RecencyWindow > 0
}

// AblationNoise probes measurement-noise sensitivity, the §II-A caveat
// ("approximative search techniques tend to be vulnerable to measurement
// noise"): the two-phase tuner runs under increasing multiplicative noise,
// with and without the median-of-3 measurement decorator. The reported
// cost is the TRUE cost of the final incumbent configuration, so the
// table measures how badly noise misleads the tuner, not how noisy the
// numbers look. The decorator triples the cost of each iteration, so its
// rows run iters/3 iterations for a fair total-budget comparison.
func AblationNoise(w io.Writer, reps, iters int, seed int64) *report.Table {
	t := report.NewTable("Ablation A8: measurement noise vs the median-of-k decorator (equal total budget)",
		"noise", "raw [true cost]", "median-of-3 [true cost]")
	trueCost := func(algo int, c param.Config) float64 { return synthSet[algo].cost(c) }
	run := func(noise float64, k, budget int, seed int64) float64 {
		sel := nominal.NewEpsilonGreedy(0.10)
		tuner, err := core.New(synthAlgorithms(), sel, nil, seed)
		if err != nil {
			panic(err)
		}
		r := rand.New(rand.NewSource(seed + 7))
		m := core.MedianOfK(synthMeasure(noise, r), k)
		for i := 0; i < budget/k; i++ {
			tuner.Step(m)
		}
		algo, cfg, _ := tuner.Best()
		return trueCost(algo, cfg)
	}
	for _, noise := range []float64{0, 0.05, 0.15, 0.30, 0.60} {
		var raw, med []float64
		for rep := 0; rep < reps; rep++ {
			raw = append(raw, run(noise, 1, iters, seed+int64(rep)))
			med = append(med, run(noise, 3, iters, seed+int64(rep)))
		}
		t.Addf(fmt.Sprintf("%g%%", noise*100), stats.Mean(raw), stats.Mean(med))
	}
	if w != nil {
		t.Render(w)
	}
	return t
}

// AblationMixedNominal is extension X3: the benchmark the paper's
// conclusion calls for — tuning parameter spaces that COMBINE nominal
// with non-nominal parameters. One synthetic algorithm carries a nominal
// "layout" parameter (three branches with different floors) plus a
// numeric parameter (per-branch optimum). Two treatments compete under
// the same ε-Greedy selector and iteration budget:
//
//   - genetic-phase1: the plain two-phase tuner; its phase one falls back
//     to a genetic algorithm because Nelder-Mead refuses the mixed space
//     (the paper's §II-B analysis in action);
//   - expansion: core.ExpandNominal lifts the nominal parameter into the
//     bandit, leaving a metric residual space that Nelder-Mead handles.
//
// Reported: how often the run ends on the best branch, and the true cost
// of the final incumbent.
func AblationMixedNominal(w io.Writer, reps, iters int, seed int64) *report.Table {
	t := report.NewTable("Extension X3: mixed nominal+numeric spaces — GA phase-1 vs nominal expansion",
		"treatment", "best branch found [%]", "true cost of incumbent")

	mixedSpace := param.NewSpace(
		param.NewNominal("layout", "row", "col", "tiled"),
		param.NewInterval("x", 0, 10),
	)
	// Branch floors 9 / 7 / 3 with optima at x = 2 / 5 / 8.
	floors := []float64{9, 7, 3}
	opts := []float64{2, 5, 8}
	trueCost := func(c param.Config) float64 {
		b := int(c[0])
		d := c[1] - opts[b]
		return floors[b] + d*d/4
	}
	baseAlgos := []core.Algorithm{
		{Name: "static"}, // constant 8: the mixed algorithm must be tuned to win
		{Name: "mixed", Space: mixedSpace, Init: param.Config{0, 0}},
	}
	measureFor := func(r *rand.Rand) core.Measure {
		return func(algo int, c param.Config) float64 {
			v := 8.0
			if algo == 1 {
				v = trueCost(c)
			}
			return v * (1 + 0.02*r.NormFloat64())
		}
	}

	type outcome struct {
		foundPct, cost float64
	}
	runTreatment := func(expand bool) outcome {
		found := 0
		var costs []float64
		for rep := 0; rep < reps; rep++ {
			s := seed + int64(rep)
			r := rand.New(rand.NewSource(s + 13))
			m := measureFor(r)
			var bestCfgCost float64
			var onBestBranch bool
			if expand {
				e, err := core.ExpandNominal(baseAlgos)
				if err != nil {
					panic(err)
				}
				tuner, err := core.New(e.Algos, nominal.NewEpsilonGreedy(0.10), nil, s)
				if err != nil {
					panic(err)
				}
				tuner.Run(iters, e.Measure(m))
				algo, cfg, _ := e.BestOriginal(tuner)
				if algo == 1 {
					bestCfgCost = trueCost(cfg)
					onBestBranch = int(cfg[0]) == 2
				} else {
					bestCfgCost = 8
				}
			} else {
				tuner, err := core.New(baseAlgos, nominal.NewEpsilonGreedy(0.10), nil, s)
				if err != nil {
					panic(err)
				}
				tuner.Run(iters, m)
				algo, cfg, _ := tuner.Best()
				if algo == 1 {
					bestCfgCost = trueCost(cfg)
					onBestBranch = int(cfg[0]) == 2
				} else {
					bestCfgCost = 8
				}
			}
			if onBestBranch {
				found++
			}
			costs = append(costs, bestCfgCost)
		}
		return outcome{100 * float64(found) / float64(reps), stats.Mean(costs)}
	}

	ga := runTreatment(false)
	ex := runTreatment(true)
	t.Addf("genetic-phase1", ga.foundPct, ga.cost)
	t.Addf("expansion", ex.foundPct, ex.cost)
	if w != nil {
		t.Render(w)
	}
	return t
}

// AblationRegret reports cumulative regret — the standard bandit metric
// the paper does not use but its strategies invite: Σᵢ (true cost of the
// iteration's choice − global floor). Unlike converged tail cost, regret
// also charges for the exploration spent getting there, so fast-converging
// strategies with cheap exploration score best. Runs on the synthetic
// model with the paper's six strategies plus the UCB1 and uniform-random
// baselines and the §VI combination.
func AblationRegret(w io.Writer, reps, iters int, seed int64) *report.Table {
	t := report.NewTable("Analysis A9: cumulative regret over the synthetic model",
		"strategy", "cumulative regret", "per-iteration")
	const floor = 4.0 // tunable-best's optimum
	names := append(append([]string{}, StrategyNames()...),
		"greedygradient:10", "ucb1", "random")
	for _, sname := range names {
		var regrets []float64
		for rep := 0; rep < reps; rep++ {
			sel, err := nominal.NewByName(sname)
			if err != nil {
				panic(err)
			}
			tuner, err := core.New(synthAlgorithms(), sel, nil, seed+int64(rep))
			if err != nil {
				panic(err)
			}
			r := rand.New(rand.NewSource(seed + int64(rep) + 7))
			m := synthMeasure(0.02, r)
			regret := 0.0
			for i := 0; i < iters; i++ {
				rec := tuner.Step(m)
				regret += synthSet[rec.Algo].cost(rec.Config) - floor
			}
			regrets = append(regrets, regret)
		}
		mean := stats.Mean(regrets)
		t.Addf(sname, mean, mean/float64(iters))
	}
	if w != nil {
		t.Render(w)
	}
	return t
}
