package exp

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/report"
	"repro/internal/tuned"
)

// Ablation A14 — chaos soak of the distributed tuning service. The
// loopback E2E topology (one server, several workers over TCP) is run
// three times over the same replayed matcher banks: once sequentially
// as the reference, once distributed over a clean network, and once
// distributed with sustained fault injection — latency, fragmentation,
// connection resets, frame corruption, and one blackhole partition long
// enough to exhaust every client retry budget and force the workers
// into degraded mode. The run must still elect the sequential winner,
// the journal must account for every observation exactly once (none
// lost, none duplicated), the partitioned workers' locally-learned
// state must be visibly merged back (Absorbed > 0), and the wall-clock
// cost of chaos must stay within a bounded factor of the clean run.

// chaosSoakFaults is the sustained fault configuration of the A14 run.
var chaosSoakFaults = chaos.Config{
	Seed:         1,
	LatencyMax:   300 * time.Microsecond,
	FragmentProb: 0.15,
	ResetProb:    0.02,
	CorruptProb:  0.02,
}

// ChaosSoak is the A14 result.
type ChaosSoak struct {
	Iters   int
	Workers int
	// Winners of the three runs over the same banks.
	SequentialWinner string
	CleanWinner      string
	ChaosWinner      string
	// Wall-clock seconds of the two distributed runs and their ratio.
	CleanSecs   float64
	ChaosSecs   float64
	Slowdown    float64
	MaxSlowdown float64
	// Degraded-mode evidence from the chaos run.
	Partitions     int
	DegradedTrials int
	Absorbed       uint64
	// Journal audit of the chaos run: record count across all
	// generations, engine iterations, and trial-ID uniqueness.
	JournalRecords int
	Iterations     int
	JournalUnique  bool
	// Injected fault counts, for the table.
	Faults chaos.Stats
}

// Pass reports the A14 acceptance criteria: winner agreement of both
// distributed runs with the sequential reference, a forced degraded-
// mode excursion whose state was merged back, a lossless and
// duplication-free journal, and bounded slowdown.
func (c *ChaosSoak) Pass() bool {
	return c.ChaosWinner == c.SequentialWinner &&
		c.CleanWinner == c.SequentialWinner &&
		c.Partitions > 0 && c.Absorbed > 0 &&
		c.JournalUnique && c.JournalRecords == c.Iterations && c.JournalRecords > 0 &&
		c.Slowdown <= c.MaxSlowdown
}

// chaosSoakRun drives one distributed session: a server over the given
// engine and workers that lease, measure against the replayed bank, and
// report — through the chaos network when cnet is non-nil, over the
// plain loopback otherwise. When partition > 0, the network is
// partitioned for that long once a quarter of the trials completed.
func chaosSoakRun(eng *core.ConcurrentTuner, bank [][]float64, iters, workers int,
	cnet *chaos.Network, partition time.Duration) (secs float64, stats []tuned.WorkerStats, err error) {
	srv := tuned.NewServer(eng,
		tuned.WithTrialTarget(iters), tuned.WithSessionCap(16), tuned.WithGlobalCap(64))
	var ln net.Listener
	if cnet != nil {
		ln, err = cnet.Listen("tcp", "127.0.0.1:0")
	} else {
		ln, err = net.Listen("tcp", "127.0.0.1:0")
	}
	if err != nil {
		return 0, nil, err
	}
	go srv.Serve(ln)
	defer srv.Close()

	measure := replayMeasure(bank)
	slowed := func(algo int, cfg param.Config) float64 {
		time.Sleep(300 * time.Microsecond) // give the run wall-clock extent
		return measure(algo, cfg)
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	ws := make([]*tuned.Worker, workers)
	for i := 0; i < workers; i++ {
		opts := []tuned.ClientOption{
			tuned.WithRetry(2, 2*time.Millisecond, 20*time.Millisecond),
			tuned.WithRequestTimeout(150 * time.Millisecond),
		}
		if cnet != nil {
			opts = append(opts, tuned.WithDialer(cnet.DialTimeout))
		}
		c, derr := tuned.Dial(ln.Addr().String(), opts...)
		if derr != nil {
			return 0, nil, derr
		}
		defer c.Close()
		w := &tuned.Worker{
			Client:         c,
			Measure:        slowed,
			Batch:          2 + i,
			HeartbeatEvery: 60 * time.Millisecond,
			Fallback: &tuned.Fallback{
				Selector:   func() nominal.Selector { return nominal.NewEpsilonGreedy(0.10) },
				Seed:       int64(100 + i),
				ProbeEvery: 25 * time.Millisecond,
			},
			ID: uint64(1 + i),
		}
		ws[i] = w
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = w.Run(context.Background())
		}(i)
	}
	start := time.Now()
	if cnet != nil && partition > 0 {
		go func() {
			for eng.Stats().Completed < uint64(iters/4) {
				time.Sleep(5 * time.Millisecond)
			}
			cnet.PartitionFor(partition)
		}()
	}
	wg.Wait()
	secs = time.Since(start).Seconds()
	for _, e := range errs {
		if e != nil {
			return secs, nil, e
		}
	}
	stats = make([]tuned.WorkerStats, workers)
	for i, w := range ws {
		stats[i] = w.Stats()
	}
	return secs, stats, nil
}

// RunChaosSoak executes the A14 experiment. iters <= 0 uses 500.
func RunChaosSoak(cfg Config, iters int) *ChaosSoak {
	cfg = cfg.sanitize()
	if iters <= 0 {
		iters = 500
	}
	const workers = 3
	names, bank := recordBank(cfg)
	res := &ChaosSoak{Iters: iters, Workers: workers, MaxSlowdown: 50}

	// Reference: the paper's sequential tuner over the same bank.
	seq, err := core.NewTuner(matcherAlgorithms(), nominal.NewEpsilonGreedy(0.10), nil, cfg.Seed)
	if err != nil {
		panic(err)
	}
	seq.Run(iters, replayMeasure(bank))
	res.SequentialWinner = names[mostSelected(seq.Counts())]

	// Clean distributed run.
	cleanEng, err := core.NewConcurrentTuner(matcherAlgorithms(), nominal.NewEpsilonGreedy(0.10), nil, cfg.Seed,
		core.WithLeaseTimeout(250*time.Millisecond))
	if err != nil {
		panic(err)
	}
	if res.CleanSecs, _, err = chaosSoakRun(cleanEng, bank, iters, workers, nil, 0); err != nil {
		panic(err)
	}
	res.CleanWinner = names[mostSelected(cleanEng.Counts())]

	// Chaos distributed run, journaled for the audit.
	dir, err := os.MkdirTemp("", "a14-journal-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	chaosEng, err := core.NewConcurrentTuner(matcherAlgorithms(), nominal.NewEpsilonGreedy(0.10), nil, cfg.Seed,
		core.WithLeaseTimeout(250*time.Millisecond), core.WithCheckpoint(dir, 0))
	if err != nil {
		panic(err)
	}
	cnet := chaos.New(chaosSoakFaults)
	secs, wstats, err := chaosSoakRun(chaosEng, bank, iters, workers, cnet, 1500*time.Millisecond)
	if err != nil {
		panic(err)
	}
	res.ChaosSecs = secs
	res.Slowdown = res.ChaosSecs / res.CleanSecs
	res.ChaosWinner = names[mostSelected(chaosEng.Counts())]
	res.Faults = cnet.Stats()
	for _, s := range wstats {
		res.Partitions += s.Partitions
		res.DegradedTrials += s.DegradedTrials
	}
	res.Absorbed = chaosEng.Stats().Absorbed

	// Journal audit. Wait out straggler leases (responses eaten by a
	// reset) so the ledger settles, then require every journaled record
	// to carry a unique trial ID and the record count to equal the
	// engine's iteration count: nothing lost, nothing applied twice.
	deadline := time.Now().Add(3 * time.Second)
	for chaosEng.Stats().InFlight > 0 && time.Now().Before(deadline) {
		chaosEng.ReclaimExpired()
		time.Sleep(10 * time.Millisecond)
	}
	if err := chaosEng.Checkpoint(); err != nil {
		panic(err)
	}
	res.Iterations = chaosEng.Iterations()
	seen := make(map[uint64]bool)
	res.JournalUnique = true
	for _, g := range checkpoint.JournalGenerations(dir) {
		recs, err := checkpoint.ReadJournal(checkpoint.WalPath(dir, g))
		if err != nil {
			panic(err)
		}
		res.JournalRecords += len(recs)
		for _, r := range recs {
			if seen[r.Trial] {
				res.JournalUnique = false
			}
			seen[r.Trial] = true
		}
	}
	return res
}

// RenderFigureA14 writes the chaos-soak summary table.
func (c *ChaosSoak) RenderFigureA14(w io.Writer) *report.Table {
	t := report.NewTable("Ablation A14: chaos soak of the distributed tuning service",
		"property", "value")
	t.Addf("iterations / workers", fmt.Sprintf("%d / %d", c.Iters, c.Workers))
	t.Addf("sequential winner", c.SequentialWinner)
	t.Addf("clean distributed winner", c.CleanWinner)
	t.Addf("chaos distributed winner", c.ChaosWinner)
	t.Addf("injected faults (resets/corruptions/fragments)",
		fmt.Sprintf("%d/%d/%d", c.Faults.Resets, c.Faults.Corruptions, c.Faults.Fragments))
	t.Addf("degraded-mode excursions / local trials", fmt.Sprintf("%d / %d", c.Partitions, c.DegradedTrials))
	t.Addf("observations merged back on reconnect", c.Absorbed)
	t.Addf("journal records / iterations / unique IDs",
		fmt.Sprintf("%d / %d / %v", c.JournalRecords, c.Iterations, c.JournalUnique))
	t.Addf("slowdown vs clean run", fmt.Sprintf("%.1fx (bound %.0fx)", c.Slowdown, c.MaxSlowdown))
	t.Addf("passes", c.Pass())
	if w != nil {
		t.Render(w)
	}
	return t
}
