package exp

import "testing"

// TestChaosSoak runs A14 at test scale: the chaos run must elect the
// sequential winner, force degraded mode, merge the local state back,
// and keep a lossless duplication-free journal.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak in -short mode")
	}
	res := RunChaosSoak(TestConfig(), 400)
	if !res.Pass() {
		t.Fatalf("A14 failed: %+v", res)
	}
	if res.Faults.Resets+res.Faults.Corruptions == 0 {
		t.Fatalf("soak injected no resets or corruptions: %+v", res.Faults)
	}
}
