package exp

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/report"
)

// Ablation A11 — crash/resume. The online tuner is meant to live inside a
// long-running application, which means it inherits the application's
// failure model: the process can be killed at any instant. This experiment
// runs the string matching case study under core.WithCheckpoint, hard-kills
// the tuner at several random iterations (the tuner object is discarded
// with a proposal in flight, exactly what SIGKILL leaves behind), resumes
// each time with core.Resume, and requires that the stitched-together run
// reach the same winner as an uninterrupted run with the same seed, losing
// at most the single in-flight iteration per crash. A final check corrupts
// the newest snapshot on disk and resumes once more: recovery must fall
// back to the previous snapshot generation and replay the chained journals
// without error.
//
// As in A10, both runs replay pre-recorded per-matcher sample banks so the
// winner comparison is exact: the k-th visit of an algorithm costs the
// same in the reference and the crashed run, so the winners can only
// differ if checkpoint/restore perturbed the decision sequence — which is
// precisely the question A11 asks. The resumed process seeds its bank
// cursors from the tuner's own per-arm visit counts, the same way a real
// application's measurement context is reconstructed from application
// state rather than from tuner memory.

// CheckpointCrash is the A11 result.
type CheckpointCrash struct {
	Labels  []string
	Iters   int
	Every   int
	Crashes int
	// KillPoints are the iterations at which the tuner was discarded
	// mid-proposal.
	KillPoints []int
	// ReferenceWinner and ResumedWinner are the Best() algorithms of the
	// uninterrupted and the crashed-and-resumed runs.
	ReferenceWinner, ResumedWinner string
	WinnersAgree                   bool
	ReferenceBest, ResumedBest     float64
	// MaxLossPerCrash is the worst per-crash iteration loss, counting the
	// in-flight proposal: (iterations started before the kill) −
	// (iterations recovered by Resume). The journal makes this 1.
	MaxLossPerCrash int
	// ReplayedIterations counts journal records replayed across all
	// resumes (iterations recovered beyond the loaded snapshots).
	ReplayedIterations int
	// FallbackOK reports whether resuming after the newest snapshot was
	// corrupted succeeded, recovered the full run, and agreed on the
	// winner.
	FallbackOK     bool
	FallbackWinner string
}

// replayMeasureFrom is replayMeasure with pre-seeded bank cursors: a
// resumed process must continue the replay where the killed one left off,
// and the tuner's restored per-arm visit counts are exactly that position
// (the in-flight proposal was never measured). A nil visits starts at
// zero.
func replayMeasureFrom(bank [][]float64, visits []int) core.Measure {
	var mu sync.Mutex
	v := make([]int, len(bank))
	copy(v, visits)
	return func(algo int, _ param.Config) float64 {
		mu.Lock()
		defer mu.Unlock()
		x := bank[algo][v[algo]%len(bank[algo])]
		v[algo]++
		return x
	}
}

// RunCheckpointCrash executes the A11 experiment. iters ≤ 0 uses 2000,
// crashes ≤ 0 uses 10 hard kills, every ≤ 0 snapshots every 50
// iterations. The checkpoint directory is a temp dir, removed afterwards.
func RunCheckpointCrash(cfg Config, iters, crashes, every int) (*CheckpointCrash, error) {
	cfg = cfg.sanitize()
	if iters <= 0 {
		iters = 2000
	}
	if crashes <= 0 {
		crashes = 10
	}
	if crashes > iters/2 {
		crashes = iters / 2
	}
	if every <= 0 {
		every = 50
	}
	names, bank := recordBank(cfg)

	algos := matcherAlgorithms()
	newSelector := func() nominal.Selector { return nominal.NewEpsilonGreedy(0.20) }

	// Reference: one uninterrupted run, no persistence.
	ref, err := core.New(algos, newSelector(), nil, cfg.Seed)
	if err != nil {
		return nil, err
	}
	ref.Run(iters, replayMeasureFrom(bank, nil))
	refBest, _, refVal := ref.Best()

	dir, err := os.MkdirTemp("", "atune-a11-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Distinct random kill points, strictly inside the run.
	rng := rand.New(rand.NewSource(cfg.Seed + 211))
	pts := make(map[int]bool, crashes)
	for len(pts) < crashes {
		pts[1+rng.Intn(iters-1)] = true
	}
	points := make([]int, 0, len(pts))
	for p := range pts {
		points = append(points, p)
	}
	sort.Ints(points)

	res := &CheckpointCrash{
		Labels: names, Iters: iters, Every: every, Crashes: crashes,
		KillPoints:      points,
		ReferenceWinner: names[refBest],
		ReferenceBest:   refVal,
	}

	t, err := core.New(algos, newSelector(), nil, cfg.Seed, core.WithCheckpoint(dir, every))
	if err != nil {
		return nil, err
	}
	for _, p := range points {
		m := replayMeasureFrom(bank, t.Counts())
		for t.Iterations() < p {
			t.Step(m)
		}
		// Hard kill: a proposal goes in flight and the process dies before
		// observing it. Discarding the tuner is all a SIGKILL leaves.
		t.Next()
		t = nil

		gens := checkpoint.Generations(dir)
		snap := gens[len(gens)-1]
		t, err = core.Resume(dir, every, algos, newSelector(), nil, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("exp: resume after kill at iteration %d: %w", p, err)
		}
		if loss := (p + 1) - t.Iterations(); loss > res.MaxLossPerCrash {
			res.MaxLossPerCrash = loss
		}
		res.ReplayedIterations += t.Iterations() - snap
	}
	m := replayMeasureFrom(bank, t.Counts())
	for t.Iterations() < iters {
		t.Step(m)
	}
	best, _, bestVal := t.Best()
	res.ResumedWinner = names[best]
	res.ResumedBest = bestVal
	res.WinnersAgree = best == refBest
	t = nil

	// Fallback: flip a byte in the newest snapshot; Resume must recover
	// from the previous generation plus the chained journals.
	gens := checkpoint.Generations(dir)
	path := checkpoint.SnapPath(dir, gens[len(gens)-1])
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, err
	}
	fb, err := core.Resume(dir, every, algos, newSelector(), nil, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("exp: resume with corrupt newest snapshot: %w", err)
	}
	fbBest, _, _ := fb.Best()
	res.FallbackWinner = names[fbBest]
	res.FallbackOK = fb.Iterations() == iters && fbBest == best
	return res, nil
}

// RenderFigureA11 writes the crash/resume summary table.
func (c *CheckpointCrash) RenderFigureA11(w io.Writer) *report.Table {
	t := report.NewTable("Ablation A11: crash/resume on the string matching case study",
		"property", "value")
	t.Addf("iterations", c.Iters)
	t.Addf("snapshot cadence", c.Every)
	t.Addf("hard kills", c.Crashes)
	t.Addf("kill points", fmt.Sprint(c.KillPoints))
	t.Addf("reference winner", c.ReferenceWinner)
	t.Addf("resumed winner", c.ResumedWinner)
	t.Addf("winners agree", c.WinnersAgree)
	t.Addf("max iterations lost per crash", c.MaxLossPerCrash)
	t.Addf("journal iterations replayed", c.ReplayedIterations)
	t.Addf("corrupt-snapshot fallback ok", c.FallbackOK)
	t.Addf("fallback winner", c.FallbackWinner)
	if w != nil {
		t.Render(w)
	}
	return t
}
