package exp

import (
	"strings"
	"testing"
)

// Acceptance: hard-kill the checkpointed tuner at 10 random iterations,
// resume each time, and the stitched run must reach the same winning
// algorithm as the uninterrupted reference, losing at most one iteration
// per crash; a corrupted newest snapshot must fall back to the previous
// generation without error.
func TestCheckpointCrashRecoversExactly(t *testing.T) {
	cfg := TestConfig()
	res, err := RunCheckpointCrash(cfg, 800, 10, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !res.WinnersAgree {
		t.Errorf("resumed winner %q differs from reference winner %q",
			res.ResumedWinner, res.ReferenceWinner)
	}
	if res.ResumedBest != res.ReferenceBest {
		t.Errorf("resumed best value %g differs from reference %g",
			res.ResumedBest, res.ReferenceBest)
	}
	if len(res.KillPoints) != 10 {
		t.Errorf("%d kill points, want 10", len(res.KillPoints))
	}
	if res.MaxLossPerCrash > 1 {
		t.Errorf("a crash lost %d iterations, bound is 1", res.MaxLossPerCrash)
	}
	if !res.FallbackOK {
		t.Errorf("corrupt-newest-snapshot fallback failed (winner %q)", res.FallbackWinner)
	}
	if res.ReplayedIterations == 0 {
		t.Error("no journal records were replayed — the kill points never exercised the WAL")
	}

	var sb strings.Builder
	res.RenderFigureA11(&sb)
	for _, want := range []string{"crash/resume", res.ReferenceWinner, "fallback"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("A11 table missing %q", want)
		}
	}
}
