package exp

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/report"
)

// Ablation A12 — concurrent trial engine. The paper's tuning loop is
// strictly sequential: one proposal, one measurement, one report. The
// lease-based engine (core.ConcurrentTuner) relaxes that to many trials
// in flight, which raises two questions this experiment answers:
//
//  1. Fidelity — does the tuner still find the same winner when 4 or 16
//     workers complete trials out of order? As in A10/A11, every run
//     replays the same pre-recorded per-matcher sample banks, so the
//     winners can only differ through the concurrency itself
//     (speculative proposals, in-flight-aware selection, interleaved
//     completions), not through measurement noise.
//  2. Throughput — do concurrent leases actually buy wall-clock speed
//     when the measured operation has real latency? A sleep-based
//     synthetic workload isolates the engine overhead: with a fixed
//     per-trial cost, leases/sec must scale with the worker count until
//     the engine's lock becomes the bottleneck.

// concurrentWorkerCounts are the pool sizes of the A12 runs.
var concurrentWorkerCounts = []int{1, 4, 16}

// ConcurrentTuning is the A12 result.
type ConcurrentTuning struct {
	Labels  []string
	Iters   int
	Workers []int
	// SequentialWinner is the most-selected arm of a plain core.Tuner run
	// over the same banks with the same seed; Winners are the
	// most-selected arms of the engine runs, indexed like Workers.
	SequentialWinner string
	Winners          []string
	WinnersAgree     bool
	// Stats are the engine counters of each run (leased = completed when
	// every worker drains its leases).
	Stats []core.EngineStats
	// LeasesPerSec is the sleep-based throughput of each worker count and
	// Speedup its ratio to the single-worker baseline.
	LeasesPerSec []float64
	Speedup      []float64
	// SleepPerTrial and ThroughputIters scale the throughput runs.
	SleepPerTrial   time.Duration
	ThroughputIters int
}

// Pass reports the acceptance criterion: every worker count agrees with
// the sequential winner, and 16 workers sustain at least 4x the
// single-worker lease throughput.
func (c *ConcurrentTuning) Pass() bool {
	if !c.WinnersAgree {
		return false
	}
	return c.Speedup[len(c.Speedup)-1] >= 4
}

// mostSelected returns the index of the largest count, the behavioural
// winner of a run: under replayed banks near-tied arms expose identical
// samples, so the arm the selector commits to is the decisive outcome.
func mostSelected(counts []int) int {
	best := 0
	for i, n := range counts {
		if n > counts[best] {
			best = i
		}
	}
	return best
}

// RunConcurrentTuning executes the A12 experiment: a sequential
// reference run over the eight matchers' replayed sample banks, then one
// engine run per worker count with the same seed, then the sleep-based
// throughput sweep. iters <= 0 uses 2000, the acceptance scale.
func RunConcurrentTuning(cfg Config, iters int) *ConcurrentTuning {
	cfg = cfg.sanitize()
	if iters <= 0 {
		iters = 2000
	}
	names, bank := recordBank(cfg)

	res := &ConcurrentTuning{
		Labels:          names,
		Iters:           iters,
		Workers:         concurrentWorkerCounts,
		SleepPerTrial:   2 * time.Millisecond,
		ThroughputIters: 96,
	}

	seq, err := core.New(matcherAlgorithms(), nominal.NewEpsilonGreedy(0.10), nil, cfg.Seed)
	if err != nil {
		panic(err)
	}
	seq.Run(iters, replayMeasure(bank))
	res.SequentialWinner = names[mostSelected(seq.Counts())]

	res.WinnersAgree = true
	for _, w := range res.Workers {
		ct, err := core.NewConcurrentTuner(matcherAlgorithms(), nominal.NewEpsilonGreedy(0.10), nil, cfg.Seed,
			core.WithMaxInFlight(2*w))
		if err != nil {
			panic(err)
		}
		ct.RunPool(w, iters, replayMeasure(bank))
		winner := names[mostSelected(ct.Counts())]
		res.Winners = append(res.Winners, winner)
		res.Stats = append(res.Stats, ct.Stats())
		if winner != res.SequentialWinner {
			res.WinnersAgree = false
		}
	}

	res.LeasesPerSec = TrialEngineThroughput(res.Workers, res.ThroughputIters, res.SleepPerTrial)
	for _, lps := range res.LeasesPerSec {
		res.Speedup = append(res.Speedup, lps/res.LeasesPerSec[0])
	}
	return res
}

// TrialEngineThroughput measures leases/sec of the trial engine for each
// worker count over a synthetic workload whose only cost is a fixed
// sleep per trial — the shape of a tuned operation with real latency and
// negligible CPU, where concurrency pays off most directly. The same
// total number of trials is completed at every worker count.
func TrialEngineThroughput(workers []int, total int, sleep time.Duration) []float64 {
	algos := []core.Algorithm{
		{Name: "a"},
		{Name: "b", Space: param.NewSpace(param.NewInterval("x", 0, 1))},
	}
	m := func(algo int, cfg param.Config) float64 {
		time.Sleep(sleep)
		if algo == 0 {
			return 2
		}
		return 1 + cfg[0]
	}
	out := make([]float64, len(workers))
	for i, w := range workers {
		ct, err := core.NewConcurrentTuner(algos, nominal.NewEpsilonGreedy(0.10), nil, 1,
			core.WithMaxInFlight(2*w))
		if err != nil {
			panic(err)
		}
		start := time.Now()
		ct.RunPool(w, total, m)
		out[i] = float64(total) / time.Since(start).Seconds()
	}
	return out
}

// RenderFigureA12 writes the concurrent-engine summary table.
func (c *ConcurrentTuning) RenderFigureA12(w io.Writer) *report.Table {
	t := report.NewTable("Ablation A12: lease-based concurrent tuning on the string matching case study",
		"property", "value")
	t.Addf("iterations per run", c.Iters)
	t.Addf("sequential winner", c.SequentialWinner)
	for i, n := range c.Workers {
		t.Addf(fmt.Sprintf("winner @ %d workers", n), c.Winners[i])
	}
	t.Addf("winners agree", c.WinnersAgree)
	for i, n := range c.Workers {
		s := c.Stats[i]
		t.Addf(fmt.Sprintf("trials @ %d workers (leased/completed/failed/expired)", n),
			fmt.Sprintf("%d/%d/%d/%d", s.Leased, s.Completed, s.Failed, s.Expired))
	}
	t.Addf("throughput trials x sleep", fmt.Sprintf("%d x %s", c.ThroughputIters, c.SleepPerTrial))
	for i, n := range c.Workers {
		t.Addf(fmt.Sprintf("leases/sec @ %d workers", n),
			fmt.Sprintf("%.0f (%.1fx)", c.LeasesPerSec[i], c.Speedup[i]))
	}
	t.Addf("passes (winners agree, 16-worker speedup >= 4x)", c.Pass())
	if w != nil {
		t.Render(w)
	}
	return t
}
