package exp

import (
	"strings"
	"testing"
	"time"
)

// TestConcurrentTuningAgreesWithSequential runs A12 at test scale: every
// worker count must converge to the sequential reference winner over the
// replayed banks, and the sleep-based throughput must scale with the
// pool (the 4x acceptance bound is asserted at full scale by the figure
// run; the test uses a conservative 2x against CI scheduling noise).
func TestConcurrentTuningAgreesWithSequential(t *testing.T) {
	res := RunConcurrentTuning(TestConfig(), 800)
	if !res.WinnersAgree {
		t.Fatalf("winners diverge: sequential %s, concurrent %v", res.SequentialWinner, res.Winners)
	}
	for i, s := range res.Stats {
		total := s.Completed + s.Failed + s.Expired
		if total != uint64(res.Iters) || s.Leased != total {
			t.Fatalf("workers=%d: stats %+v do not conserve %d trials", res.Workers[i], s, res.Iters)
		}
	}
	for i, lps := range res.LeasesPerSec {
		if lps <= 0 {
			t.Fatalf("workers=%d: leases/sec = %v", res.Workers[i], lps)
		}
	}
	if last := res.Speedup[len(res.Speedup)-1]; last < 2 {
		t.Fatalf("16-worker speedup = %.2fx, want >= 2x even under CI noise (leases/sec: %v)",
			last, res.LeasesPerSec)
	}

	tbl := res.RenderFigureA12(nil)
	var sb strings.Builder
	tbl.Render(&sb)
	if !strings.Contains(sb.String(), "winners agree") {
		t.Fatal("A12 table is missing the agreement row")
	}
}

// TestTrialEngineThroughputScales checks the throughput helper in
// isolation with a coarse sleep so the ordering is unambiguous.
func TestTrialEngineThroughputScales(t *testing.T) {
	lps := TrialEngineThroughput([]int{1, 8}, 32, 2*time.Millisecond)
	if lps[1] <= lps[0] {
		t.Fatalf("8 workers not faster than 1: %v", lps)
	}
}
