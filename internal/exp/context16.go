package exp

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/ctxtune"
	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/report"
)

// Ablation A16 — contextual tuning on mixed bible+DNA traffic. The
// paper's context K = (K_A, K_S) says the right algorithm depends on
// the request, not just the machine: the matcher that wins on English
// text loses on DNA. A16 interleaves both request classes in one
// stream, each request tagged with a cheap feature (its alphabet size),
// and compares two tuners over the same recorded banks:
//
//   - the contextual engine, whose split tree must discover that the
//     feature separates two cost regimes, split the shared bucket, and
//     learn each class's own winner in its own selector replica;
//   - a single global tuner, whose one incumbent is necessarily wrong
//     for at least one class (the banks force different winners).
//
// The gate: the contextual engine's tail-window majority pick is the
// correct winner for BOTH halves, and its tail-window regret against
// the per-class oracle is strictly below the global control's.

// Feature vectors attached to each request class: the alphabet size of
// the haystack — 27 for English text, 4 for DNA — a workload descriptor
// the caller knows without measuring anything. The quantized bins of 27
// and 4 differ, which is all the partitioner needs.
var (
	bibleFeatures = ctxtune.Features{27}
	dnaFeatures   = ctxtune.Features{4}
)

// ContextualTuning is the A16 result.
type ContextualTuning struct {
	Iters int
	// Per-class bank winners (by bank minimum) — forced distinct by the
	// bank shaping.
	BibleWinner, DNAWinner string

	// Contextual leg.
	Contexts                   int // live selector replicas at the end
	CtxBibleArm, CtxDNAArm     string
	CtxBibleShare, CtxDNAShare float64 // tail share of each class's majority
	CtxRegret, CtxTailRegret   float64

	// Global control over the identical stream.
	GlobalArm                      string // overall tail majority
	GlobalRegret, GlobalTailRegret float64

	Err string
}

// Pass reports the A16 acceptance criteria: the bucket split happened,
// both halves converged on their own winner, and contextual routing
// beat the global compromise on tail-window regret.
func (c *ContextualTuning) Pass() bool {
	return c.Err == "" &&
		c.BibleWinner != c.DNAWinner &&
		c.Contexts >= 2 &&
		c.CtxBibleArm == c.BibleWinner &&
		c.CtxDNAArm == c.DNAWinner &&
		c.CtxTailRegret < c.GlobalTailRegret
}

// classBank replays one recorded bank per request class and tracks
// per-class tail selections and regret against each class's own oracle.
// Both legs drive it single-threaded in the same class order, so the
// two runs see identical measurement streams per (class, arm, visit).
type classBank struct {
	banks              [2][][]float64
	visits             [2][]int
	oracle             [2]float64
	tailSel            [2][]int
	tailFrom, n        int
	regret, tailRegret float64
}

func newClassBank(bible, dna [][]float64, tailFrom int) *classBank {
	b := &classBank{tailFrom: tailFrom}
	b.banks[0], b.banks[1] = bible, dna
	b.oracle[0], b.oracle[1] = bankFloor(bible, -1), bankFloor(dna, -1)
	for c := range b.visits {
		b.visits[c] = make([]int, len(bible))
		b.tailSel[c] = make([]int, len(bible))
	}
	return b
}

func (b *classBank) measure(class, algo int) float64 {
	b.n++
	samples := b.banks[class][algo]
	v := samples[b.visits[class][algo]%len(samples)]
	b.visits[class][algo]++
	b.regret += v - b.oracle[class]
	if b.n > b.tailFrom {
		b.tailSel[class][algo]++
		b.tailRegret += v - b.oracle[class]
	}
	return v
}

// tailMajority returns the most-selected arm in the tail window, for
// one class or (class < 0) across both.
func (b *classBank) tailMajority(class int) int {
	best, bestN := 0, -1
	for a := range b.tailSel[0] {
		n := 0
		for c := range b.tailSel {
			if class < 0 || c == class {
				n += b.tailSel[c][a]
			}
		}
		if n > bestN {
			best, bestN = a, n
		}
	}
	return best
}

// tailShare returns arm's fraction of one class's tail selections.
func (b *classBank) tailShare(class, arm int) float64 {
	total := 0
	for _, n := range b.tailSel[class] {
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(b.tailSel[class][arm]) / float64(total)
}

// RunContextualTuning executes the A16 experiment. iters <= 0 uses 800.
// The banks come from recordDriftBanks: real matcher timings on both
// corpora, shaped so the per-class winners differ and the DNA bank sits
// a driftLiftFactor above the bible bank — the cost-scale gap the split
// tree's lift gate keys on.
func RunContextualTuning(cfg Config, iters int) *ContextualTuning {
	cfg = cfg.sanitize()
	if iters <= 0 {
		iters = 800
	}
	tailFrom := iters * 3 / 4
	names, bible, dna, w1, w2 := recordDriftBanks(cfg)
	res := &ContextualTuning{
		Iters:       iters,
		BibleWinner: names[w1],
		DNAWinner:   names[w2],
	}
	fail := func(err error) *ContextualTuning {
		res.Err = err.Error()
		return res
	}
	// Windowed ε-greedy on both legs: each context disagrees with the
	// global fold it is warm-started from, so imported evidence must be
	// able to age out (the same reasoning as drift recovery).
	sel := func() nominal.Selector {
		return &nominal.EpsilonGreedy{Eps: 0.10, RecencyWindow: 25}
	}
	feats := []ctxtune.Features{bibleFeatures, dnaFeatures}

	// Contextual leg.
	eng, err := ctxtune.New(ctxtune.Config{
		Algos:       matcherAlgorithms(),
		Selector:    sel,
		Seed:        cfg.Seed,
		Partitioner: ctxtune.NewTree(1, 32, 1.5),
	})
	if err != nil {
		return fail(err)
	}
	cb := newClassBank(bible, dna, tailFrom)
	for i := 0; i < iters; i++ {
		class := i % 2
		trials, err := eng.LeaseNFor(feats[class], 1)
		if err != nil {
			return fail(err)
		}
		for _, tr := range trials {
			v := cb.measure(class, tr.Algo)
			if e := eng.CompleteN([]core.TrialResult{{ID: tr.ID, Value: v}})[0]; e != nil {
				return fail(e)
			}
		}
	}
	res.Contexts = eng.ContextCount()
	res.CtxBibleArm = names[cb.tailMajority(0)]
	res.CtxDNAArm = names[cb.tailMajority(1)]
	res.CtxBibleShare = cb.tailShare(0, cb.tailMajority(0))
	res.CtxDNAShare = cb.tailShare(1, cb.tailMajority(1))
	res.CtxRegret, res.CtxTailRegret = cb.regret, cb.tailRegret

	// Global control: the identical class-alternating stream through one
	// tuner that never sees the features.
	gb := newClassBank(bible, dna, tailFrom)
	tu, err := core.New(matcherAlgorithms(), sel(), nil, cfg.Seed)
	if err != nil {
		return fail(err)
	}
	n := 0
	tu.Run(iters, func(algo int, _ param.Config) float64 {
		class := n % 2
		n++
		return gb.measure(class, algo)
	})
	res.GlobalArm = names[gb.tailMajority(-1)]
	res.GlobalRegret, res.GlobalTailRegret = gb.regret, gb.tailRegret
	return res
}

// RenderFigureA16 writes the contextual-tuning summary table.
func (c *ContextualTuning) RenderFigureA16(w io.Writer) *report.Table {
	t := report.NewTable("Ablation A16: contextual tuning on mixed bible+DNA traffic",
		"property", "value")
	t.Addf("iterations (interleaved classes)", c.Iters)
	t.Addf("bible-class winner (bank)", c.BibleWinner)
	t.Addf("dna-class winner (bank)", c.DNAWinner)
	t.Addf("contexts discovered", c.Contexts)
	t.Addf("contextual tail pick: bible class",
		fmt.Sprintf("%s (share %.2f)", c.CtxBibleArm, c.CtxBibleShare))
	t.Addf("contextual tail pick: dna class",
		fmt.Sprintf("%s (share %.2f)", c.CtxDNAArm, c.CtxDNAShare))
	t.Addf("global control tail pick", c.GlobalArm)
	t.Addf("regret vs per-class oracle (contextual vs global)",
		fmt.Sprintf("%.1f vs %.1f ms", c.CtxRegret, c.GlobalRegret))
	t.Addf("tail-window regret (contextual vs global)",
		fmt.Sprintf("%.1f vs %.1f ms", c.CtxTailRegret, c.GlobalTailRegret))
	if c.Err != "" {
		t.Addf("error", c.Err)
	}
	t.Addf("passes", c.Pass())
	if w != nil {
		t.Render(w)
	}
	return t
}
