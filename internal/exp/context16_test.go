package exp

import "testing"

// TestContextualTuning runs A16 at test scale: mixed bible+DNA traffic
// where the two classes have different winners — the contextual engine
// must split on the alphabet-size feature, elect each class's own
// winner, and beat the global compromise on tail-window regret.
func TestContextualTuning(t *testing.T) {
	if testing.Short() {
		t.Skip("contextual tuning ablation in -short mode")
	}
	// 800 iterations, not fewer: the banks are recorded from real matcher
	// timings, and under parallel-package test load a short tail window
	// lets measurement noise close the contextual-vs-global regret gap.
	res := RunContextualTuning(TestConfig(), 800)
	if !res.Pass() {
		t.Fatalf("A16 failed: %+v", res)
	}
	if res.CtxBibleShare < 0.5 || res.CtxDNAShare < 0.5 {
		t.Errorf("weak per-class convergence: bible %.2f dna %.2f", res.CtxBibleShare, res.CtxDNAShare)
	}
}
