package exp

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/report"
	"repro/internal/strmatch"
	"repro/internal/tuned"
)

// Ablation A15 — drift resilience under a mid-run corpus swap, alone and
// on a heterogeneous fleet. The input distribution the paper's case
// study 1 tunes against is swapped halfway through the run (English
// bible text → DNA, the two corpora of its matcher evaluation): the
// matcher that won on the old corpus keeps its all-time-best record, so
// a drift-oblivious ε-greedy stays stuck on it forever, while the drift
// watchdog must detect the change-point, decay the stale evidence,
// re-probe, and re-elect the new winner with bounded post-swap regret.
//
// The same swap is then replayed over the distributed loopback topology
// three ways — a homogeneous fleet, a fleet with one 4×-slowed worker
// without calibration, and the same skewed fleet with worker-bias
// calibration — plus a drift-oblivious control fleet that must stay
// stuck. Calibration must register the slow machine's speed factor and
// the calibrated fleet must converge exactly like the homogeneous one.

// Bank-shaping factors. Real matcher banks put several matchers within
// timing noise of each other, which makes "the phase winner" a coin
// flip between runs; the experiment is about drift response, not about
// which matcher happens to win, so the recorded banks are shaped into a
// deterministic regime structure: each phase's fastest matcher keeps a
// driftMarginFactor lead over the rest (a stable incumbent), the post
// bank floor is lifted to driftLiftFactor × the pre bank's global best
// (a drift-oblivious incumbent record can never be beaten after the
// swap, and every arm's cost stream visibly jumps), and the two phase
// winners are forced to differ (the swap always flips the ranking, as
// the paper's bible-vs-DNA matcher orderings do).
const (
	driftLiftFactor      = 3.0
	driftMarginFactor    = 1.5
	driftOldWinnerFactor = 3.0 // the dethroned winner's post-swap floor, vs the new winner's
)

// DriftResilience is the A15 result.
type DriftResilience struct {
	Iters, SwapAt, Workers int
	// Phase winners by bank minimum (what a min-based selector should
	// elect in each regime).
	Phase1Winner, Phase2Winner string

	// Sequential leg: drift-aware vs drift-oblivious tuner.
	SeqEvents, SeqDecays uint64
	SeqProbes            uint64
	SeqAwareTailShare    float64 // tail selection share of the post-swap winner
	SeqOblivTailShare    float64
	SeqAwareRegret       float64 // cumulative regret vs the per-phase oracle
	SeqOblivRegret       float64
	SeqAwareTailRegret   float64 // regret over the tail window (post-convergence)
	SeqOblivTailRegret   float64

	// Fleet leg: post-swap-winner tail shares of the four runs.
	FleetAwareShare float64 // homogeneous, drift-aware
	FleetUncalShare float64 // one 4×-slowed worker, uncalibrated
	FleetCalShare   float64 // one 4×-slowed worker, calibrated
	FleetOblivShare float64 // heterogeneous, drift-oblivious control

	// Evidence from the calibrated heterogeneous run.
	FleetEvents  uint64
	FleetStale   uint64 // completions dropped as pre-reset stale evidence
	SlowFactor   float64
	Calibrations int
	UncalEvents  uint64 // uncalibrated run's (possibly spurious) detections
	FleetErr     string
}

// Pass reports the A15 acceptance criteria. The uncalibrated
// heterogeneous run is reported but not gated: with a min-based
// selector a uniform per-worker slowdown mostly cancels, and the
// interesting failure it *can* produce (spurious detections from
// mixed-unit cost streams) is visible in UncalEvents.
func (d *DriftResilience) Pass() bool {
	return d.FleetErr == "" &&
		d.Phase1Winner != d.Phase2Winner &&
		d.SeqEvents >= 1 && d.SeqDecays >= 1 && d.SeqProbes > 0 &&
		d.SeqAwareTailShare >= 0.6 && d.SeqOblivTailShare <= 0.4 &&
		d.SeqAwareTailRegret < d.SeqOblivTailRegret &&
		d.FleetAwareShare >= 0.5 && d.FleetCalShare >= 0.5 &&
		d.FleetOblivShare <= 0.4 &&
		d.FleetEvents >= 1 &&
		d.SlowFactor >= 1.5 && d.Calibrations >= 1
}

// phasedBank replays one recorded bank per regime, swapping after
// swapAt measurements, and counts tail-window selections per arm. It is
// shared by every worker of a fleet run, so the swap is a property of
// the run, not of any one worker.
type phasedBank struct {
	mu         sync.Mutex
	pre, post  [][]float64
	visits     []int
	n          int
	swapAt     int
	tailFrom   int
	tailSel    []int
	oraclePre  float64
	oraclePost float64
	regret     float64
	tailRegret float64
}

func newPhasedBank(pre, post [][]float64, swapAt, tailFrom int) *phasedBank {
	return &phasedBank{
		pre: pre, post: post,
		visits: make([]int, len(pre)), tailSel: make([]int, len(pre)),
		swapAt: swapAt, tailFrom: tailFrom,
		oraclePre: bankFloor(pre, -1), oraclePost: bankFloor(post, -1),
	}
}

func (p *phasedBank) measure(algo int, _ param.Config) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.n++
	bank, oracle := p.pre, p.oraclePre
	if p.n > p.swapAt {
		bank, oracle = p.post, p.oraclePost
	}
	v := bank[algo][p.visits[algo]%len(bank[algo])]
	p.visits[algo]++
	p.regret += v - oracle
	if p.n > p.tailFrom {
		p.tailSel[algo]++
		p.tailRegret += v - oracle
	}
	return v
}

// tailShare returns arm's fraction of tail-window selections.
func (p *phasedBank) tailShare(arm int) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for _, n := range p.tailSel {
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(p.tailSel[arm]) / float64(total)
}

func (p *phasedBank) regrets() (total, tail float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.regret, p.tailRegret
}

// bankFloor returns the bank's minimum sample, over all arms (skip < 0)
// or one arm.
func bankFloor(bank [][]float64, arm int) float64 {
	floor := 0.0
	for a, samples := range bank {
		if arm >= 0 && a != arm {
			continue
		}
		for _, v := range samples {
			if floor == 0 || v < floor {
				floor = v
			}
		}
	}
	return floor
}

// bankWinner returns the arm with the smallest bank sample, excluding
// arm `not` (pass -1 to exclude none).
func bankWinner(bank [][]float64, not int) int {
	best := -1
	for a := range bank {
		if a == not {
			continue
		}
		if best < 0 || bankFloor(bank, a) < bankFloor(bank, best) {
			best = a
		}
	}
	return best
}

// recordDriftBanks records the matcher banks on both corpora and shapes
// them per driftLiftFactor/driftDemoteFactor, returning the names and
// the two phase winners.
func recordDriftBanks(cfg Config) (names []string, pre, post [][]float64, w1, w2 int) {
	names, pre = recordBank(cfg)
	text := corpus.DNA(cfg.CorpusSize, cfg.Seed+1)
	pattern := []byte(cfg.Pattern)
	post = make([][]float64, len(names))
	for i, n := range names {
		m, err := strmatch.New(n)
		if err != nil {
			panic(err)
		}
		strmatch.Run(m, pattern, text, cfg.Workers) // warmup
		post[i] = make([]float64, faultBankSize)
		for k := range post[i] {
			post[i][k] = timeIt(func() {
				strmatch.Run(m, pattern, text, cfg.Workers)
			})
		}
	}

	// Give the pre-phase winner a stable margin over every other arm.
	w1 = bankWinner(pre, -1)
	spreadBank(pre, w1)
	// Lift the post bank above the pre bank's global best.
	if lift := driftLiftFactor * bankFloor(pre, -1) / bankFloor(post, -1); lift > 1 {
		for _, samples := range post {
			for k := range samples {
				samples[k] *= lift
			}
		}
	}
	// The post-phase winner is the post bank's best arm other than w1,
	// with the same margin over the field (which demotes w1 too, so the
	// ranking provably flips at the swap). The dethroned winner degrades
	// further — the corpus swap hits the matcher tuned to the old
	// alphabet hardest, which is what makes staying stuck on it costly.
	w2 = bankWinner(post, w1)
	spreadBank(post, w2)
	if up := driftOldWinnerFactor * bankFloor(post, w2) / bankFloor(post, w1); up > 1 {
		for k := range post[w1] {
			post[w1][k] *= up
		}
	}
	return names, pre, post, w1, w2
}

// spreadBank scales every arm but the winner so its floor sits at least
// driftMarginFactor above the winner's floor: close races between
// matchers are decided once at recording time instead of flickering
// with timing noise during the run.
func spreadBank(bank [][]float64, winner int) {
	floor := bankFloor(bank, winner)
	for a, samples := range bank {
		if a == winner {
			continue
		}
		if up := driftMarginFactor * floor / bankFloor(bank, a); up > 1 {
			for k := range samples {
				samples[k] *= up
			}
		}
	}
}

// driftFleetRun drives one loopback fleet over the phased bank:
// len(slowdowns) workers, worker i's measurements scaled by
// slowdowns[i]. calibrateEvery > 0 enables the workers' reference
// probes; watchdog toggles the engine's drift detection.
func driftFleetRun(cfg Config, pre, post [][]float64, iters, swapAt int,
	slowdowns []float64, calibrateEvery int, watchdog bool) (*phasedBank, []tuned.WorkerStats, core.DriftStats, error) {
	pb := newPhasedBank(pre, post, swapAt, iters*3/4)
	opts := []core.EngineOption{core.WithLeaseTimeout(250 * time.Millisecond)}
	if watchdog {
		opts = append(opts, core.WithDriftWatchdog(core.DefaultDriftConfig()))
	}
	eng, err := core.NewConcurrentTuner(matcherAlgorithms(), nominal.NewEpsilonGreedy(0.10), nil, cfg.Seed, opts...)
	if err != nil {
		return nil, nil, core.DriftStats{}, err
	}
	srv := tuned.NewServer(eng,
		tuned.WithTrialTarget(iters), tuned.WithSessionCap(16), tuned.WithGlobalCap(64))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, core.DriftStats{}, err
	}
	go srv.Serve(ln)
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make([]error, len(slowdowns))
	ws := make([]*tuned.Worker, len(slowdowns))
	for i, slow := range slowdowns {
		c, derr := tuned.Dial(ln.Addr().String(),
			tuned.WithRetry(3, 2*time.Millisecond, 20*time.Millisecond),
			tuned.WithRequestTimeout(250*time.Millisecond))
		if derr != nil {
			return nil, nil, core.DriftStats{}, derr
		}
		defer c.Close()
		ws[i] = &tuned.Worker{
			Client: c,
			Measure: func(algo int, cfg param.Config) float64 {
				return slow * pb.measure(algo, cfg)
			},
			Batch:          2,
			HeartbeatEvery: 60 * time.Millisecond,
			ID:             uint64(1 + i),
			CalibrateEvery: calibrateEvery,
			// The reference probe is a fixed workload, deliberately
			// independent of the drifting corpus: only the machine's
			// slowdown shows through, so factors stay exact across the
			// swap instead of absorbing the post-swap cost lift.
			RefMeasure: func() float64 { return slow },
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = ws[i].Run(context.Background())
		}(i)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, nil, core.DriftStats{}, e
		}
	}
	stats := make([]tuned.WorkerStats, len(ws))
	for i, w := range ws {
		stats[i] = w.Stats()
	}
	return pb, stats, eng.DriftStats(), nil
}

// RunDriftResilience executes the A15 experiment. iters <= 0 uses 600.
func RunDriftResilience(cfg Config, iters int) *DriftResilience {
	cfg = cfg.sanitize()
	if iters <= 0 {
		iters = 600
	}
	swapAt, tailFrom := iters/2, iters*3/4
	names, pre, post, _, w2 := recordDriftBanks(cfg)
	res := &DriftResilience{
		Iters: iters, SwapAt: swapAt, Workers: 3,
		Phase1Winner: names[bankWinner(pre, -1)],
		Phase2Winner: names[w2],
	}

	// Sequential leg: the same swap against the drift-aware tuner and
	// the oblivious control.
	seqRun := func(aware bool) (*phasedBank, core.DriftStats) {
		pb := newPhasedBank(pre, post, swapAt, tailFrom)
		var opts []core.Option
		if aware {
			opts = append(opts, core.WithDriftWatchdog(core.DefaultDriftConfig()))
		}
		tu, err := core.NewTuner(matcherAlgorithms(), nominal.NewEpsilonGreedy(0.10), nil, cfg.Seed, opts...)
		if err != nil {
			panic(err)
		}
		tu.Run(iters, pb.measure)
		return pb, tu.DriftStats()
	}
	awarePB, awareDS := seqRun(true)
	res.SeqEvents, res.SeqDecays, res.SeqProbes = awareDS.Events, awareDS.Decays, awareDS.ProbesScheduled
	res.SeqAwareTailShare = awarePB.tailShare(w2)
	res.SeqAwareRegret, res.SeqAwareTailRegret = awarePB.regrets()
	oblivPB, _ := seqRun(false)
	res.SeqOblivTailShare = oblivPB.tailShare(w2)
	res.SeqOblivRegret, res.SeqOblivTailRegret = oblivPB.regrets()

	// Fleet leg. The skewed fleets run one machine 4× slower than the
	// other two; calibration is the only difference between them.
	homog := []float64{1, 1, 1}
	skewed := []float64{1, 1, 4}
	fail := func(err error) *DriftResilience {
		res.FleetErr = err.Error()
		return res
	}
	pb, _, _, err := driftFleetRun(cfg, pre, post, iters, swapAt, homog, 0, true)
	if err != nil {
		return fail(err)
	}
	res.FleetAwareShare = pb.tailShare(w2)

	pb, _, uncalDS, err := driftFleetRun(cfg, pre, post, iters, swapAt, skewed, 0, true)
	if err != nil {
		return fail(err)
	}
	res.FleetUncalShare = pb.tailShare(w2)
	res.UncalEvents = uncalDS.Events

	pb, wstats, calDS, err := driftFleetRun(cfg, pre, post, iters, swapAt, skewed, 40, true)
	if err != nil {
		return fail(err)
	}
	res.FleetCalShare = pb.tailShare(w2)
	res.FleetEvents = calDS.Events
	res.FleetStale = calDS.StaleDropped
	res.Calibrations = wstats[0].Calibrations
	for _, s := range wstats {
		if s.Calibrations < res.Calibrations {
			res.Calibrations = s.Calibrations
		}
	}
	res.SlowFactor = wstats[len(wstats)-1].Factor

	pb, _, _, err = driftFleetRun(cfg, pre, post, iters, swapAt, skewed, 0, false)
	if err != nil {
		return fail(err)
	}
	res.FleetOblivShare = pb.tailShare(w2)
	return res
}

// RenderFigureA15 writes the drift-resilience summary table.
func (d *DriftResilience) RenderFigureA15(w io.Writer) *report.Table {
	t := report.NewTable("Ablation A15: drift resilience under a mid-run corpus swap",
		"property", "value")
	t.Addf("iterations / swap at / fleet size", fmt.Sprintf("%d / %d / %d", d.Iters, d.SwapAt, d.Workers))
	t.Addf("phase-1 winner (bible)", d.Phase1Winner)
	t.Addf("phase-2 winner (dna)", d.Phase2Winner)
	t.Addf("sequential drift events / decays / probes",
		fmt.Sprintf("%d / %d / %d", d.SeqEvents, d.SeqDecays, d.SeqProbes))
	t.Addf("sequential tail share of new winner (aware vs oblivious)",
		fmt.Sprintf("%.2f vs %.2f", d.SeqAwareTailShare, d.SeqOblivTailShare))
	t.Addf("sequential regret vs per-phase oracle (aware vs oblivious)",
		fmt.Sprintf("%.1f vs %.1f ms", d.SeqAwareRegret, d.SeqOblivRegret))
	t.Addf("sequential tail-window regret (aware vs oblivious)",
		fmt.Sprintf("%.1f vs %.1f ms", d.SeqAwareTailRegret, d.SeqOblivTailRegret))
	t.Addf("fleet tail share: homogeneous", fmt.Sprintf("%.2f", d.FleetAwareShare))
	t.Addf("fleet tail share: 4x worker, uncalibrated", fmt.Sprintf("%.2f", d.FleetUncalShare))
	t.Addf("fleet tail share: 4x worker, calibrated", fmt.Sprintf("%.2f", d.FleetCalShare))
	t.Addf("fleet tail share: drift-oblivious control", fmt.Sprintf("%.2f", d.FleetOblivShare))
	t.Addf("calibrated run: drift events / stale drops",
		fmt.Sprintf("%d / %d", d.FleetEvents, d.FleetStale))
	t.Addf("calibrated run: detections in uncalibrated twin", d.UncalEvents)
	t.Addf("slow worker's speed factor / min calibrations",
		fmt.Sprintf("%.2f / %d", d.SlowFactor, d.Calibrations))
	if d.FleetErr != "" {
		t.Addf("fleet error", d.FleetErr)
	}
	t.Addf("passes", d.Pass())
	if w != nil {
		t.Render(w)
	}
	return t
}
