package exp

import "testing"

// TestChaosDriftRecovery runs A15 at test scale: a mid-run corpus swap
// must be detected and survived — the drift-aware tuner re-elects the
// post-swap winner with less regret than the oblivious control, both
// sequentially and across a heterogeneous loopback fleet whose 4×-slowed
// worker is bias-calibrated.
func TestChaosDriftRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("drift recovery soak in -short mode")
	}
	res := RunDriftResilience(TestConfig(), 400)
	if !res.Pass() {
		t.Fatalf("A15 failed: %+v", res)
	}
	if res.SlowFactor < 2.5 || res.SlowFactor > 6 {
		t.Errorf("slow worker's calibrated factor = %g, want ≈ 4", res.SlowFactor)
	}
}
