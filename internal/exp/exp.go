// Package exp contains the experiment drivers that regenerate every table
// and figure of the paper's evaluation (Section IV): the per-algorithm
// string matching boxplots (Figure 1), the string matching tuning curves
// and choice histograms (Figures 2–4), the kD-tree tuning timelines and
// combined-tuning curves and histograms (Figures 5–8), plus the ablations
// DESIGN.md calls out.
//
// Every experiment is deterministic given its Config seed, except for the
// wall-clock measurement noise that is the whole point of measuring.
package exp

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/report"
)

// Config scales an experiment run. The paper's settings (100 repetitions,
// 200 tuning iterations, the full Bible corpus, 100 frames) are
// PaperConfig; QuickConfig shrinks everything to seconds for tests and CI.
type Config struct {
	// Reps is the number of experiment repetitions (the paper uses 100).
	Reps int
	// Seed derives every repetition's random streams.
	Seed int64

	// Case study 1 — string matching.
	// Iters is the tuning loop length (the paper uses 200).
	Iters int
	// CorpusSize is the synthetic Bible corpus size in bytes.
	CorpusSize int
	// Pattern is the query phrase.
	Pattern string
	// Workers is the matcher thread count (the paper's machine runs 8).
	Workers int

	// Case study 2 — raytracing.
	// Frames is the number of rendered frames per repetition (paper: 100).
	Frames int
	// SceneDetail scales the procedural scene.
	SceneDetail int
	// SceneName picks the procedural generator: "cathedral" (default,
	// the Sibenik stand-in), "sphereflake", or "boxgrid".
	SceneName string
	// FrameW, FrameH set the render resolution.
	FrameW, FrameH int
	// RenderWorkers is the goroutine count of the render stage.
	RenderWorkers int
}

// PaperConfig returns the paper-scale configuration. A full run takes
// hours of wall-clock measurement, exactly like the original evaluation.
func PaperConfig() Config {
	return Config{
		Reps: 100, Seed: 1,
		Iters: 200, CorpusSize: 4 << 20, Pattern: defaultPattern(), Workers: runtime.GOMAXPROCS(0),
		Frames: 100, SceneDetail: 6, FrameW: 320, FrameH: 240, RenderWorkers: runtime.GOMAXPROCS(0),
	}
}

// QuickConfig returns a configuration that preserves the experiments'
// shape at a fraction of the cost (seconds instead of hours).
func QuickConfig() Config {
	return Config{
		Reps: 8, Seed: 1,
		Iters: 60, CorpusSize: 1 << 20, Pattern: defaultPattern(), Workers: runtime.GOMAXPROCS(0),
		Frames: 30, SceneDetail: 2, FrameW: 96, FrameH: 72, RenderWorkers: runtime.GOMAXPROCS(0),
	}
}

// TestConfig returns the smallest meaningful configuration, for unit
// tests.
func TestConfig() Config {
	return Config{
		Reps: 3, Seed: 1,
		Iters: 25, CorpusSize: 256 << 10, Pattern: defaultPattern(), Workers: 2,
		Frames: 10, SceneDetail: 1, FrameW: 48, FrameH: 36, RenderWorkers: 2,
	}
}

func defaultPattern() string {
	return "the spirit to a great and high mountain"
}

// sanitize fills zero fields from QuickConfig.
func (c Config) sanitize() Config {
	q := QuickConfig()
	if c.Reps <= 0 {
		c.Reps = q.Reps
	}
	if c.Iters <= 0 {
		c.Iters = q.Iters
	}
	if c.CorpusSize <= 0 {
		c.CorpusSize = q.CorpusSize
	}
	if c.Pattern == "" {
		c.Pattern = q.Pattern
	}
	if c.Workers <= 0 {
		c.Workers = q.Workers
	}
	if c.Frames <= 0 {
		c.Frames = q.Frames
	}
	if c.SceneDetail <= 0 {
		c.SceneDetail = q.SceneDetail
	}
	if c.FrameW <= 0 {
		c.FrameW = q.FrameW
	}
	if c.FrameH <= 0 {
		c.FrameH = q.FrameH
	}
	if c.RenderWorkers <= 0 {
		c.RenderWorkers = q.RenderWorkers
	}
	return c
}

// ms converts a duration to milliseconds, the paper's time unit.
func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// timeIt measures fn in milliseconds.
func timeIt(fn func()) float64 {
	start := time.Now()
	fn()
	return ms(time.Since(start))
}

// StrategyNames are the six phase-two strategies of the paper's figures,
// as accepted by nominal.NewByName, in legend order.
func StrategyNames() []string {
	return []string{"egreedy:5", "egreedy:10", "egreedy:20", "gradient", "optimum", "auc"}
}

// StrategyLabels returns the paper's legend labels for StrategyNames.
func StrategyLabels() []string {
	return []string{
		"e-Greedy (5%)", "e-Greedy (10%)", "e-Greedy (20%)",
		"Gradient Weighted", "Optimum Weighted", "Sliding-Window AUC",
	}
}

// TableII reproduces Table II: the benchmark system specification —
// necessarily of the machine this reproduction runs on rather than the
// paper's Xeon E5-1620v2.
func TableII() *report.Table {
	t := report.NewTable("Table II: specifications of the benchmark system", "Property", "Value")
	t.Add("OS/Arch", runtime.GOOS+"/"+runtime.GOARCH)
	t.Add("Logical CPUs", fmt.Sprint(runtime.NumCPU()))
	t.Add("GOMAXPROCS", fmt.Sprint(runtime.GOMAXPROCS(0)))
	t.Add("Go version", runtime.Version())
	t.Add("Paper's system", "Intel Xeon E5-1620v2, 3.70GHz, 8 threads, 64GB RAM")
	return t
}

// TableI reproduces Table I: the parameter classes with their
// distinguishing properties and examples.
func TableI() *report.Table {
	t := report.NewTable("Table I: parameter classes", "Class", "Distinguishing property", "Example")
	t.Add("Nominal", "Labels", "Choice of algorithm")
	t.Add("Ordinal", "Order", "Buffer size from {small, medium, large}")
	t.Add("Interval", "Distance", "Percentage of a maximum buffer size")
	t.Add("Ratio", "Natural zero, equality of ratios", "Number of threads")
	return t
}
