package exp

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/kdtree"
	"repro/internal/param"
)

func TestConfigSanitize(t *testing.T) {
	c := (Config{}).sanitize()
	q := QuickConfig()
	if c.Reps != q.Reps || c.Iters != q.Iters || c.CorpusSize != q.CorpusSize {
		t.Errorf("sanitize did not fill defaults: %+v", c)
	}
	// Explicit values survive.
	c = (Config{Reps: 42}).sanitize()
	if c.Reps != 42 {
		t.Error("sanitize clobbered explicit value")
	}
}

func TestTableIAndII(t *testing.T) {
	var sb strings.Builder
	TableI().Render(&sb)
	if !strings.Contains(sb.String(), "Nominal") || !strings.Contains(sb.String(), "Choice of algorithm") {
		t.Error("Table I content missing")
	}
	sb.Reset()
	TableII().Render(&sb)
	if !strings.Contains(sb.String(), "GOMAXPROCS") {
		t.Error("Table II content missing")
	}
}

func TestStrategyNamesAndLabelsAgree(t *testing.T) {
	if len(StrategyNames()) != len(StrategyLabels()) {
		t.Fatal("names/labels length mismatch")
	}
	if len(StrategyNames()) != 6 {
		t.Fatal("paper evaluates six strategies")
	}
}

func TestUntunedMatchersExperiment(t *testing.T) {
	cfg := TestConfig()
	res := RunUntunedMatchers(cfg)
	if len(res.Labels) != 8 || len(res.Samples) != 8 {
		t.Fatalf("expected 8 algorithms, got %d", len(res.Labels))
	}
	for i, s := range res.Samples {
		if len(s) != cfg.Reps {
			t.Errorf("algorithm %s has %d samples, want %d", res.Labels[i], len(s), cfg.Reps)
		}
		for _, v := range s {
			if v <= 0 {
				t.Errorf("non-positive timing for %s", res.Labels[i])
			}
		}
	}
	var sb strings.Builder
	res.RenderFigure1(&sb)
	if !strings.Contains(sb.String(), "Figure 1") || !strings.Contains(sb.String(), "SSEF") {
		t.Error("figure 1 rendering incomplete")
	}
}

func TestTunedMatchersExperiment(t *testing.T) {
	cfg := TestConfig()
	cfg.Reps = 2
	cfg.Iters = 15
	res := RunTunedMatchers(cfg)
	if len(res.Curves) != 6 || len(res.Counts) != 6 {
		t.Fatalf("expected 6 strategies, got %d", len(res.Curves))
	}
	for i, s := range res.Curves {
		if s.Runs() != cfg.Reps {
			t.Errorf("strategy %s has %d runs", res.StrategyLabels[i], s.Runs())
		}
		if s.MaxLen() != cfg.Iters {
			t.Errorf("strategy %s run length %d, want %d", res.StrategyLabels[i], s.MaxLen(), cfg.Iters)
		}
	}
	var sb strings.Builder
	res.RenderFigure2(&sb)
	res.RenderFigure3(&sb)
	res.RenderFigure4(&sb)
	out := sb.String()
	for _, want := range []string{"Figure 2", "Figure 3", "Figure 4", "e-Greedy (10%)", "Boyer-Moore"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q", want)
		}
	}
	if got := res.BestAlgorithm(0); got == "" {
		t.Error("BestAlgorithm empty")
	}
	if c := res.CurvesChart(true, 10); len(c.Series) != 6 {
		t.Error("CurvesChart wrong series count")
	}
}

func TestBuilderSpaces(t *testing.T) {
	dims := map[string]int{
		"Inplace": 4, "Nested": 4, "Wald-Havran": 3, "Lazy": 5,
	}
	for name, want := range dims {
		space, init := BuilderSpace(name)
		if space.Dim() != want {
			t.Errorf("%s space has %d dims, want %d", name, space.Dim(), want)
		}
		if !space.Valid(init) {
			t.Errorf("%s init config invalid", name)
		}
		if space.HasNominal() {
			t.Errorf("%s space must be metric for Nelder-Mead", name)
		}
		p := ConfigToParams(name, init)
		if p.TraversalCost <= 0 || p.LeafSize < 1 {
			t.Errorf("%s params from init invalid: %+v", name, p)
		}
	}
	// Round trip: a random valid config maps to in-range params.
	space, _ := BuilderSpace("Lazy")
	c := space.Clamp(param.Config{2.5, 16, 4, 32, 1000})
	p := ConfigToParams("Lazy", c)
	if p.TraversalCost != 2.5 || p.LeafSize != 16 || p.ParallelDepth != 4 || p.Bins != 32 || p.EagerCutoff != 1000 {
		t.Errorf("round trip lost values: %+v", p)
	}
	if def := kdtree.DefaultParams(); def.IntersectCost <= 0 {
		t.Error("default params broken")
	}
}

func TestKDTreeTimelinesExperiment(t *testing.T) {
	cfg := TestConfig()
	cfg.Reps = 2
	cfg.Frames = 6
	res := RunKDTreeTimelines(cfg)
	if len(res.Labels) != 4 {
		t.Fatalf("expected 4 builders")
	}
	for i, s := range res.Curves {
		if s.Runs() != cfg.Reps || s.MaxLen() != cfg.Frames {
			t.Errorf("builder %s: runs=%d len=%d", res.Labels[i], s.Runs(), s.MaxLen())
		}
	}
	var sb strings.Builder
	res.RenderFigure5(&sb)
	if !strings.Contains(sb.String(), "Figure 5") || !strings.Contains(sb.String(), "Wald-Havran") {
		t.Error("figure 5 rendering incomplete")
	}
}

func TestTunedRaytracingExperiment(t *testing.T) {
	cfg := TestConfig()
	cfg.Reps = 1
	cfg.Frames = 8
	res := RunTunedRaytracing(cfg)
	if len(res.Curves) != 6 {
		t.Fatalf("expected 6 strategies")
	}
	var sb strings.Builder
	res.RenderFigure6(&sb)
	res.RenderFigure7(&sb)
	res.RenderFigure8(&sb)
	out := sb.String()
	for _, want := range []string{"Figure 6", "Figure 7", "Figure 8", "Inplace", "Lazy"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q", want)
		}
	}
}

func TestAblations(t *testing.T) {
	var sb strings.Builder
	if tb := AblationWindowSize(&sb, 2, 120, 1); len(tb.Rows) != 10 {
		t.Errorf("A1 rows = %d, want 10", len(tb.Rows))
	}
	if tb := AblationEpsilonSweep(&sb, 2, 120, 1); len(tb.Rows) != 6 {
		t.Errorf("A2 rows = %d", len(tb.Rows))
	}
	if tb := AblationCrossover(&sb, 2, 200, 1); len(tb.Rows) != 6 {
		t.Errorf("A3 rows = %d", len(tb.Rows))
	}
	if tb := AblationPhase1Strategies(&sb, 2, 120, 1); len(tb.Rows) != 8 {
		t.Errorf("A4 rows = %d", len(tb.Rows))
	}
	if tb := AblationSoftmax(&sb, 2, 120, 1); len(tb.Rows) != 3 {
		t.Errorf("A5 rows = %d", len(tb.Rows))
	}
	out := sb.String()
	for _, want := range []string{"Ablation A1", "Ablation A2", "Ablation A3", "Ablation A4", "Ablation A5"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}

func TestCrossoverFoundByGradientWeighted(t *testing.T) {
	// The crossover ablation reproduces the paper's §IV-C threat to
	// validity: ε-Greedy starves the improving algorithm (it may or may
	// not find the crossover), while Gradient Weighted — proposed as the
	// mitigation — keeps sampling all algorithms and must find it.
	tb := AblationCrossover(nil, 3, 400, 5)
	rows := map[string]string{}
	for _, row := range tb.Rows {
		rows[row[0]] = row[1] // found-crossover percentage
	}
	if rows["gradient"] != "100" {
		t.Errorf("gradient found the crossover in %s%% of runs, want 100", rows["gradient"])
	}
	if rows["optimum"] == "0" {
		t.Errorf("optimum-weighted never found the crossover")
	}
}

func TestSynthModelShape(t *testing.T) {
	// The synthetic model must embody its design: static-good constant at
	// 8, tunable-best reaching ~4 at its optimum, static-bad worst.
	if v := synthSet[0].cost(param.Config{0, 0}); v != 8 {
		t.Errorf("static-good at init = %g", v)
	}
	if v := synthSet[1].cost(param.Config{7, 7}); v != 4 {
		t.Errorf("tunable-best at optimum = %g", v)
	}
	if v := synthSet[1].cost(param.Config{0, 0}); v <= 8 {
		t.Errorf("tunable-best must start worse than static-good, got %g", v)
	}
	if v := synthSet[3].cost(param.Config{5, 5}); v != 30 {
		t.Errorf("static-bad = %g", v)
	}
}

func TestAblationCombined(t *testing.T) {
	var sb strings.Builder
	tb := AblationCombined(&sb, 3, 400, 5)
	if len(tb.Rows) != 5 {
		t.Fatalf("A6 rows = %d, want 5", len(tb.Rows))
	}
	if !strings.Contains(sb.String(), "Ablation A6") {
		t.Error("A6 title missing")
	}
	rows := map[string]float64{}
	for _, row := range tb.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("unparseable found-crossover cell %q", row[1])
		}
		rows[row[0]] = v
	}
	// The combined strategy must find the crossover at least as reliably
	// as its ε-Greedy parent at the same ε.
	if rows["greedygradient:10"] < rows["egreedy:10"] {
		t.Errorf("combined (%g%%) worse than ε-Greedy (%g%%) at finding the crossover",
			rows["greedygradient:10"], rows["egreedy:10"])
	}
}

func TestAblationDrift(t *testing.T) {
	tb := AblationDrift(nil, 4, 200, 9)
	if len(tb.Rows) != 5 {
		t.Fatalf("A7 rows = %d, want 5", len(tb.Rows))
	}
	vals := map[string]float64{}
	for _, row := range tb.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("unparseable tail cell %q", row[1])
		}
		vals[row[0]] = v
	}
	// The windowed ε-Greedy must adapt to the drift; the plain one must
	// not (it stays loyal to the stale all-time best).
	if !(vals["egreedy(10%) windowed"] < vals["egreedy(10%)"]) {
		t.Errorf("windowed ε-Greedy (%g) not better than plain (%g) under drift",
			vals["egreedy(10%) windowed"], vals["egreedy(10%)"])
	}
	// The sliding-window AUC, judging by recent samples, must also beat
	// the stale plain ε-Greedy.
	if !(vals["sliding-window-auc"] < vals["egreedy(10%)"]) {
		t.Errorf("AUC (%g) not better than stale ε-Greedy (%g) under drift",
			vals["sliding-window-auc"], vals["egreedy(10%)"])
	}
}

func TestUntunedMatchersDNA(t *testing.T) {
	cfg := TestConfig()
	res := RunUntunedMatchersDNA(cfg)
	if len(res.Samples) != 8 {
		t.Fatalf("expected 8 algorithms")
	}
	for i, s := range res.Samples {
		if len(s) != cfg.Reps {
			t.Errorf("algorithm %s: %d samples", res.Labels[i], len(s))
		}
	}
	var sb strings.Builder
	res.RenderFigureX1(&sb)
	if !strings.Contains(sb.String(), "X1") || !strings.Contains(sb.String(), "genome") {
		t.Error("X1 rendering incomplete")
	}
}

func TestAblationNoise(t *testing.T) {
	var sb strings.Builder
	tb := AblationNoise(&sb, 3, 300, 1)
	if len(tb.Rows) != 5 {
		t.Fatalf("A8 rows = %d, want 5", len(tb.Rows))
	}
	if !strings.Contains(sb.String(), "Ablation A8") {
		t.Error("A8 title missing")
	}
	for _, row := range tb.Rows {
		for _, cell := range row[1:] {
			if _, err := strconv.ParseFloat(cell, 64); err != nil {
				t.Errorf("unparseable cell %q", cell)
			}
		}
	}
}

func TestPatternSweep(t *testing.T) {
	cfg := TestConfig()
	cfg.Iters = 20
	res := RunPatternSweep(cfg, []int{4, 37})
	if len(res.Winner) != 2 || len(res.TunerChoice) != 2 || len(res.MedianMS) != 2 {
		t.Fatalf("sweep shape wrong: %+v", res)
	}
	for i := range res.MedianMS {
		if len(res.MedianMS[i]) != 8 {
			t.Errorf("length %d has %d medians", res.Lengths[i], len(res.MedianMS[i]))
		}
	}
	var sb strings.Builder
	tb := res.RenderFigureX2(&sb)
	if len(tb.Rows) != 2 || !strings.Contains(sb.String(), "X2") {
		t.Error("X2 rendering incomplete")
	}
	// Default lengths kick in when none given.
	if got := RunPatternSweep(Config{Reps: 1, Iters: 1, CorpusSize: 64 << 10, Workers: 1, Seed: 1, Frames: 1, SceneDetail: 1, FrameW: 8, FrameH: 8, RenderWorkers: 1}, nil); len(got.Lengths) != 6 {
		t.Errorf("default lengths = %v", got.Lengths)
	}
}

func TestAblationMixedNominal(t *testing.T) {
	var sb strings.Builder
	tb := AblationMixedNominal(&sb, 4, 600, 3)
	if len(tb.Rows) != 2 {
		t.Fatalf("X3 rows = %d", len(tb.Rows))
	}
	if !strings.Contains(sb.String(), "Extension X3") {
		t.Error("X3 title missing")
	}
	// At a generous budget both treatments must find the best branch in
	// every run.
	for _, row := range tb.Rows {
		if row[1] != "100" {
			t.Errorf("%s found the best branch in %s%% of runs at generous budget, want 100", row[0], row[1])
		}
	}
}

func TestAblationRegret(t *testing.T) {
	var sb strings.Builder
	tb := AblationRegret(&sb, 4, 300, 3)
	if len(tb.Rows) != 9 {
		t.Fatalf("A9 rows = %d, want 9", len(tb.Rows))
	}
	vals := map[string]float64{}
	for _, row := range tb.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("unparseable regret %q", row[1])
		}
		if v < 0 {
			t.Errorf("%s has negative regret %g", row[0], v)
		}
		vals[row[0]] = v
	}
	// Every informed strategy must beat uniform random.
	for _, s := range []string{"egreedy:10", "egreedy:20", "optimum", "auc", "greedygradient:10", "ucb1"} {
		if vals[s] >= vals["random"] {
			t.Errorf("%s regret %g not below random's %g", s, vals[s], vals["random"])
		}
	}
}

func TestContextualSweep(t *testing.T) {
	cfg := TestConfig()
	cfg.Iters = 30
	res := RunContextualSweep(cfg)
	if res.GlobalTotalMS <= 0 || res.ContextualTotalMS <= 0 {
		t.Fatal("totals not measured")
	}
	if res.GlobalChoice == "" || res.ContextChoice["short"] == "" || res.ContextChoice["long"] == "" {
		t.Fatal("choices missing")
	}
	var sb strings.Builder
	tb := res.RenderFigureX4(&sb)
	if len(tb.Rows) != 2 || !strings.Contains(sb.String(), "Extension X4") {
		t.Error("X4 rendering incomplete")
	}
}

func TestSceneNameSelection(t *testing.T) {
	cfg := TestConfig()
	cfg.Frames = 2
	cfg.Reps = 1
	for _, name := range []string{"cathedral", "sphereflake", "boxgrid", ""} {
		cfg.SceneName = name
		res := RunKDTreeTimelines(cfg)
		if len(res.Curves) != 4 || res.Curves[0].MaxLen() != 2 {
			t.Errorf("scene %q: experiment did not run", name)
		}
	}
}

func TestStructureChoice(t *testing.T) {
	cfg := TestConfig()
	cfg.Reps = 1
	cfg.Frames = 10
	res := RunStructureChoice(cfg)
	if len(res.SelectorLabels) != 2 || len(res.ArmLabels) != 5 {
		t.Fatalf("X5 shape wrong: %v %v", res.SelectorLabels, res.ArmLabels)
	}
	for i := range res.SelectorLabels {
		total := 0.0
		for _, c := range res.Counts[i] {
			total += c
		}
		if int(total+0.5) != cfg.Frames {
			t.Errorf("%s counts sum to %g, want %d", res.SelectorLabels[i], total, cfg.Frames)
		}
		if res.TailMS[i] <= 0 {
			t.Errorf("%s tail not measured", res.SelectorLabels[i])
		}
	}
	var sb strings.Builder
	tb := res.RenderFigureX5(&sb)
	if len(tb.Rows) != 2 || !strings.Contains(sb.String(), "BVH") {
		t.Error("X5 rendering incomplete")
	}
}
