package exp

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/guard"
	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/report"
	"repro/internal/strmatch"
)

// Ablation A10 — fault injection. The paper's §II-A requires that the
// tuned operation always return a valid measurement; this experiment
// breaks that requirement on purpose: one arm of the string matching case
// study is made to panic, hang, or emit NaN on a fraction of its runs,
// and the guarded tuner (core.WithGuard + guard.Quarantine + the
// degradation watchdog) must survive the full loop, quarantine the
// faulty arm, and still converge to the same winner as a clean run with
// the same seed — while the unguarded loop simply crashes on the first
// injected panic (demonstrated in the test suite, where the panic is
// recovered).
//
// To make the winner comparison exact, the experiment first records a
// bank of real wall-clock samples per matcher and then replays the banks
// in both tuning loops: the k-th run of an algorithm costs the same in
// the clean and the injected run, so the two winners can only differ
// through the faults themselves — which is precisely the question A10
// asks. (Comparing two live-measured runs instead would mostly compare
// measurement noise between near-tied matchers.)

// FaultRates are the per-measurement injection probabilities applied to
// the faulty arm. Their sum must be ≤ 1.
type FaultRates struct {
	Panic, Timeout, NaN float64
}

// Total returns the combined injection probability.
func (f FaultRates) Total() float64 { return f.Panic + f.Timeout + f.NaN }

// DefaultFaultRates injects ~20% combined failures, evenly split across
// the three kinds — the scenario of the acceptance test.
func DefaultFaultRates() FaultRates {
	return FaultRates{Panic: 0.0667, Timeout: 0.0667, NaN: 0.0667}
}

// FaultInjection is the A10 result.
type FaultInjection struct {
	Labels    []string
	FaultyArm int
	Rates     FaultRates
	Iters     int
	// CleanWinner and GuardedWinner are the Best() algorithms of the 0%
	// and injected runs under the same seed.
	CleanWinner, GuardedWinner string
	WinnersAgree               bool
	// Failures are the guarded tuner's failure counters; Trips is the
	// number of times the faulty arm's circuit opened; FaultySelections
	// its selection count over Iters iterations.
	Failures         core.FailureStats
	Trips            int
	FaultySelections int
}

// InjectFaults wraps a measurement so the given arm fails with the given
// rates: panic, timeout (sleeping past the guard's deadline), or NaN.
// The injection draws from its own deterministic stream, independent of
// the tuner's, behind a mutex: a guarded measurement that times out runs
// on in an abandoned goroutine, so un-synchronized state would race with
// the next call. An injected hang returns NaN after sleeping — never a
// plausible sample — so that even a lost timer race cannot fabricate a
// winning observation.
func InjectFaults(m core.Measure, arm int, rates FaultRates, sleep time.Duration, seed int64) core.Measure {
	var mu sync.Mutex
	r := rand.New(rand.NewSource(seed))
	return func(algo int, cfg param.Config) float64 {
		if algo == arm {
			mu.Lock()
			x := r.Float64()
			mu.Unlock()
			switch {
			case x < rates.Panic:
				panic("exp: injected fault")
			case x < rates.Panic+rates.Timeout:
				// No state is touched after the sleep: the loop has long
				// moved on.
				time.Sleep(sleep)
				return math.NaN()
			case x < rates.Total():
				return math.NaN()
			}
		}
		return m(algo, cfg)
	}
}

// faultBankSize is the number of real samples recorded per matcher; the
// k-th tuning run of an algorithm replays sample k mod faultBankSize, so
// any arm visited at least faultBankSize times exposes its exact bank
// minimum to the tuner.
const faultBankSize = 8

// faultTimeout is the guard deadline of the A10 runs; injected hangs
// sleep for faultSleep > faultTimeout so they always trip it, while
// replayed samples return instantly.
const (
	faultTimeout = 150 * time.Millisecond
	faultSleep   = 400 * time.Millisecond
)

// recordBank measures every matcher faultBankSize times for real.
func recordBank(cfg Config) ([]string, [][]float64) {
	text := corpus.Bible(cfg.CorpusSize, cfg.Seed)
	pattern := []byte(cfg.Pattern)
	names := strmatch.Names()
	bank := make([][]float64, len(names))
	for i, n := range names {
		m, err := strmatch.New(n)
		if err != nil {
			panic(err)
		}
		strmatch.Run(m, pattern, text, cfg.Workers) // warmup
		bank[i] = make([]float64, faultBankSize)
		for k := range bank[i] {
			bank[i][k] = timeIt(func() {
				strmatch.Run(m, pattern, text, cfg.Workers)
			})
		}
	}
	return names, bank
}

// replayMeasure cycles deterministically through an arm's recorded
// samples. Mutex-protected for the same abandoned-goroutine reason as
// InjectFaults.
func replayMeasure(bank [][]float64) core.Measure {
	var mu sync.Mutex
	visits := make([]int, len(bank))
	return func(algo int, _ param.Config) float64 {
		mu.Lock()
		defer mu.Unlock()
		v := bank[algo][visits[algo]%len(bank[algo])]
		visits[algo]++
		return v
	}
}

// RunFaultInjection executes the A10 experiment: a clean (0% faults) run
// over the eight matchers' replayed sample banks, then an injected run
// with the same seed against the slowest arm, both under the full guard
// stack (core.WithGuard with a deadline, quarantine with fail-fast K=1,
// watchdog defaults). iters ≤ 0 uses 2000, the acceptance scale.
func RunFaultInjection(cfg Config, rates FaultRates, iters int) *FaultInjection {
	cfg = cfg.sanitize()
	if iters <= 0 {
		iters = 2000
	}
	names, bank := recordBank(cfg)

	// The faulty arm is the slowest by recorded minimum: decisively not
	// the winner, so the winner comparison isolates collateral damage of
	// the faults rather than the faulty arm's own ranking.
	faulty := 0
	minOf := func(s []float64) float64 {
		m := s[0]
		for _, v := range s[1:] {
			if v < m {
				m = v
			}
		}
		return m
	}
	for i := range bank {
		if minOf(bank[i]) > minOf(bank[faulty]) {
			faulty = i
		}
	}

	run := func(m core.Measure) (*core.Tuner, *guard.Quarantine) {
		q := guard.NewQuarantine(nominal.NewEpsilonGreedy(0.20))
		q.K = 1 // fail fast: random 20% failures rarely form K=3 streaks
		tuner, err := core.New(matcherAlgorithms(), q, nil, cfg.Seed,
			core.WithGuard(guard.WithTimeout(faultTimeout)))
		if err != nil {
			panic(err)
		}
		tuner.Run(iters, m)
		return tuner, q
	}

	clean, _ := run(replayMeasure(bank))
	cleanBest, _, _ := clean.Best()

	res := &FaultInjection{
		Labels:      names,
		Rates:       rates,
		Iters:       iters,
		FaultyArm:   faulty,
		CleanWinner: names[cleanBest],
	}
	injected := InjectFaults(replayMeasure(bank), faulty, rates, faultSleep, cfg.Seed+101)
	guarded, q := run(injected)
	guardedBest, _, _ := guarded.Best()
	res.GuardedWinner = names[guardedBest]
	res.WinnersAgree = guardedBest == cleanBest
	res.Failures = guarded.FailureStats()
	res.Trips = q.Trips(faulty)
	res.FaultySelections = guarded.Counts()[faulty]
	return res
}

// RenderFigureA10 writes the fault-injection summary table.
func (f *FaultInjection) RenderFigureA10(w io.Writer) *report.Table {
	t := report.NewTable("Ablation A10: fault injection on the string matching case study",
		"property", "value")
	t.Addf("iterations", f.Iters)
	t.Addf("injected failure rate", f.Rates.Total())
	t.Addf("faulty arm", f.Labels[f.FaultyArm])
	t.Addf("clean winner", f.CleanWinner)
	t.Addf("guarded winner", f.GuardedWinner)
	t.Addf("winners agree", f.WinnersAgree)
	t.Addf("failures (panic/timeout/invalid)", f.failureBreakdown())
	t.Addf("quarantine trips of faulty arm", f.Trips)
	t.Addf("faulty-arm selections", f.FaultySelections)
	t.Addf("iterations pinned (degraded)", f.Failures.PinnedIterations)
	if w != nil {
		t.Render(w)
	}
	return t
}

func (f *FaultInjection) failureBreakdown() string {
	return fmt.Sprintf("%d/%d/%d", f.Failures.Panics, f.Failures.Timeouts, f.Failures.Invalids)
}
