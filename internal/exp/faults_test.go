package exp

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/strmatch"
)

// Acceptance: with ~20% injected panic+timeout+NaN failures on one arm of
// the string matching case study, the guarded tuner completes 2000
// iterations without crashing, quarantines the faulty arm, and converges
// to the same winner as the clean (0% fault) run under the same seed.
func TestFaultInjectionGuardedSurvivesAndConverges(t *testing.T) {
	cfg := TestConfig()
	res := RunFaultInjection(cfg, DefaultFaultRates(), 2000)

	if !res.WinnersAgree {
		t.Errorf("guarded winner %q differs from clean winner %q",
			res.GuardedWinner, res.CleanWinner)
	}
	if res.Failures.Total < 3 {
		t.Fatalf("only %d failures recorded — injection not effective", res.Failures.Total)
	}
	if got := res.Failures.Panics + res.Failures.Timeouts + res.Failures.Invalids; got != res.Failures.Total {
		t.Errorf("failure kinds %+v do not sum to total %d", res.Failures, res.Failures.Total)
	}
	if res.Trips == 0 {
		t.Error("faulty arm never quarantined")
	}
	if res.FaultySelections == 0 {
		t.Error("faulty arm permanently excluded")
	}
	if res.FaultySelections > 2000/4 {
		t.Errorf("faulty arm still selected %d/2000 times — quarantine ineffective", res.FaultySelections)
	}
	// The rendered table must mention the essentials.
	var sb strings.Builder
	res.RenderFigureA10(&sb)
	for _, want := range []string{"fault injection", res.CleanWinner, "quarantine"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("A10 table missing %q", want)
		}
	}
}

// Acceptance: the same scenario without the guard kills the loop — the
// injected panic propagates out of Tuner.Run.
func TestFaultInjectionUnguardedPanics(t *testing.T) {
	cfg := TestConfig()
	text := corpus.Bible(cfg.CorpusSize, cfg.Seed)
	pattern := []byte(cfg.Pattern)
	names := strmatch.Names()
	matchers := make([]strmatch.Matcher, len(names))
	for i, n := range names {
		m, err := strmatch.New(n)
		if err != nil {
			t.Fatal(err)
		}
		matchers[i] = m
	}
	measure := func(algo int, _ param.Config) float64 {
		return timeIt(func() {
			strmatch.Run(matchers[algo], pattern, text, cfg.Workers)
		})
	}
	// Inject only panics (no timeouts: without a guard a sleeping arm
	// would just slow the test down, and NaN would poison rather than
	// crash) at the same combined 20% rate on arm 0, which ε-Greedy's
	// deterministic initialization visits first.
	faulty := InjectFaults(measure, 0, FaultRates{Panic: 0.2}, 0, cfg.Seed+101)

	defer func() {
		if r := recover(); r == nil {
			t.Fatal("unguarded tuning loop survived injected panics")
		}
	}()
	tuner, err := core.New(matcherAlgorithms(), nominal.NewEpsilonGreedy(0.10), nil, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	tuner.Run(2000, faulty) // must panic long before completing
}
