package exp

import (
	"fmt"
	"io"

	"repro/internal/bvh"
	"repro/internal/core"
	"repro/internal/kdtree"
	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/ray"
	"repro/internal/report"
	"repro/internal/scenegen"
	"repro/internal/search"
	"repro/internal/stats"
)

// BuilderSpace returns the tuning-parameter space and the hand-crafted
// initial configuration for one kD-tree construction algorithm, following
// Tillmann et al.: the SAH parameters and the parallelization depth are
// tunable in all algorithms, the binned builders add the bin count, and
// Lazy adds the eager-construction cutoff.
func BuilderSpace(name string) (*param.Space, param.Config) {
	params := []param.Parameter{
		param.NewInterval("ctrav", 0.1, 4.0), // SAH traversal/intersection cost ratio
		param.NewRatioInt("leaf", 1, 32),     // SAH leaf-size threshold
		param.NewRatioInt("pdepth", 0, 6),    // parallelization depth
	}
	d := kdtree.DefaultParams()
	init := param.Config{
		d.TraversalCost / d.IntersectCost,
		float64(d.LeafSize),
		float64(d.ParallelDepth),
	}
	if name != "Wald-Havran" {
		params = append(params, param.NewRatioInt("bins", 8, 64))
		init = append(init, float64(d.Bins))
	}
	if name == "Lazy" {
		params = append(params, param.NewRatioInt("cutoff", 0, 8192))
		init = append(init, float64(d.EagerCutoff))
	}
	space := param.NewSpace(params...)
	return space, space.Clamp(init)
}

// ConfigToParams maps a configuration from BuilderSpace(name) onto
// concrete construction parameters.
func ConfigToParams(name string, c param.Config) kdtree.Params {
	p := kdtree.DefaultParams()
	p.IntersectCost = 1.0
	p.TraversalCost = c[0]
	p.LeafSize = int(c[1])
	p.ParallelDepth = int(c[2])
	if name != "Wald-Havran" {
		p.Bins = int(c[3])
	}
	if name == "Lazy" {
		p.EagerCutoff = int(c[4])
	}
	return p
}

// newPipeline builds the rendering pipeline for the configured scene.
func newPipeline(cfg Config) *ray.Pipeline {
	var scene scenegen.Scene
	switch cfg.SceneName {
	case "sphereflake":
		scene = scenegen.SphereFlake(cfg.SceneDetail, 8)
	case "boxgrid":
		scene = scenegen.BoxGrid(3 * cfg.SceneDetail)
	default:
		scene = scenegen.Cathedral(cfg.SceneDetail)
	}
	return &ray.Pipeline{
		Tris:    scene.Triangles,
		Cam:     ray.Camera{Eye: scene.Eye, LookAt: scene.LookAt, FOV: 65},
		Light:   scene.Light,
		Width:   cfg.FrameW,
		Height:  cfg.FrameH,
		Workers: cfg.RenderWorkers,
	}
}

// KDTreeTimelines is the Figure 5 experiment: each construction algorithm
// is tuned in isolation by the Nelder-Mead online autotuner, frame by
// frame; the curves are the per-iteration frame times averaged over the
// repetitions.
type KDTreeTimelines struct {
	Labels []string
	Curves []*stats.Series
}

// RunKDTreeTimelines executes the Figure 5 experiment.
func RunKDTreeTimelines(cfg Config) *KDTreeTimelines {
	cfg = cfg.sanitize()
	pl := newPipeline(cfg)
	res := &KDTreeTimelines{Labels: kdtree.BuilderNames()}
	for _, name := range res.Labels {
		builder, err := kdtree.NewBuilder(name)
		if err != nil {
			panic(err)
		}
		space, init := BuilderSpace(name)
		series := stats.NewSeries()
		for rep := 0; rep < cfg.Reps; rep++ {
			nm := search.NewNelderMead()
			if err := nm.Start(space, init); err != nil {
				panic(err)
			}
			run := make([]float64, cfg.Frames)
			for i := 0; i < cfg.Frames; i++ {
				c := nm.Propose()
				t := timeIt(func() {
					pl.RenderFrame(builder, ConfigToParams(name, c))
				})
				nm.Report(c, t)
				run[i] = t
			}
			series.Add(run)
		}
		res.Curves = append(res.Curves, series)
	}
	return res
}

// RenderFigure5 writes the per-algorithm tuning timelines (average frame
// time per iteration).
func (k *KDTreeTimelines) RenderFigure5(w io.Writer) {
	c := k.Chart()
	c.WriteASCII(w, 72, 16)
}

// Chart returns the Figure 5 chart (for CSV export).
func (k *KDTreeTimelines) Chart() *report.Chart {
	c := report.NewChart("Figure 5: tuning timeline of all four kD-tree construction algorithms (mean ms/frame)", "iteration", "ms")
	for i, label := range k.Labels {
		c.Add(label, k.Curves[i].MeanCurve(0))
	}
	return c
}

// TunedRaytracing is the shared run behind Figures 6, 7 and 8: the
// two-phase tuner combines algorithm selection with Nelder-Mead tuning of
// each construction algorithm's own parameters, frame by frame.
type TunedRaytracing struct {
	StrategyLabels  []string
	AlgorithmLabels []string
	Curves          []*stats.Series
	Counts          []*stats.CountMatrix
}

// builderAlgorithms builds the tuner's algorithm set for case study 2.
func builderAlgorithms() []core.Algorithm {
	names := kdtree.BuilderNames()
	algos := make([]core.Algorithm, len(names))
	for i, n := range names {
		space, init := BuilderSpace(n)
		algos[i] = core.Algorithm{Name: n, Space: space, Init: init}
	}
	return algos
}

// RunTunedRaytracing executes the case study 2 combined tuning experiment.
func RunTunedRaytracing(cfg Config) *TunedRaytracing {
	cfg = cfg.sanitize()
	pl := newPipeline(cfg)
	names := kdtree.BuilderNames()
	builders := make([]kdtree.Builder, len(names))
	for i, n := range names {
		b, err := kdtree.NewBuilder(n)
		if err != nil {
			panic(err)
		}
		builders[i] = b
	}
	measure := func(algo int, c param.Config) float64 {
		return timeIt(func() {
			pl.RenderFrame(builders[algo], ConfigToParams(names[algo], c))
		})
	}

	res := &TunedRaytracing{
		StrategyLabels:  StrategyLabels(),
		AlgorithmLabels: names,
	}
	for si, sname := range StrategyNames() {
		series := stats.NewSeries()
		counts := stats.NewCountMatrix(names)
		for rep := 0; rep < cfg.Reps; rep++ {
			sel, err := nominal.NewByName(sname)
			if err != nil {
				panic(err)
			}
			seed := cfg.Seed + int64(rep)*1000 + int64(si)
			tuner, err := core.New(builderAlgorithms(), sel, core.DefaultFactory, seed)
			if err != nil {
				panic(err)
			}
			run := make([]float64, cfg.Frames)
			for i := 0; i < cfg.Frames; i++ {
				run[i] = tuner.Step(measure).Value
			}
			series.Add(run)
			counts.AddRun(tuner.Counts())
		}
		res.Curves = append(res.Curves, series)
		res.Counts = append(res.Counts, counts)
	}
	return res
}

// RenderFigure6 writes the median per-iteration frame time of every
// strategy.
func (t *TunedRaytracing) RenderFigure6(w io.Writer) {
	c := report.NewChart("Figure 6: median performance per iteration (raytracing, combined tuning)", "iteration", "ms")
	for i, label := range t.StrategyLabels {
		c.Add(label, t.Curves[i].MedianCurve(0))
	}
	c.WriteASCII(w, 72, 16)
}

// RenderFigure7 writes the mean per-iteration frame time.
func (t *TunedRaytracing) RenderFigure7(w io.Writer) {
	c := report.NewChart("Figure 7: mean performance per iteration (raytracing, combined tuning)", "iteration", "ms")
	for i, label := range t.StrategyLabels {
		c.Add(label, t.Curves[i].MeanCurve(0))
	}
	c.WriteASCII(w, 72, 16)
}

// RenderFigure8 writes the per-strategy construction-algorithm choice
// histograms.
func (t *TunedRaytracing) RenderFigure8(w io.Writer) {
	fmt.Fprintln(w, "Figure 8: frequency of construction algorithms chosen by the strategies")
	for si, label := range t.StrategyLabels {
		cm := t.Counts[si]
		boxes := make([]stats.BoxPlot, len(t.AlgorithmLabels))
		for ai := range t.AlgorithmLabels {
			boxes[ai] = cm.Box(ai)
		}
		report.BoxTable(w, "  strategy: "+label, t.AlgorithmLabels, boxes, "selections")
		fmt.Fprintln(w)
	}
}

// StructureChoice is extension experiment X5: the paper's question one
// level up — the online tuner chooses among five acceleration-structure
// alternatives (the four kD-tree construction algorithms plus a
// binned-SAH BVH), each with its own tunable parameters, frame by frame.
type StructureChoice struct {
	SelectorLabels []string
	ArmLabels      []string
	// Counts[s][a] is the mean selection count of arm a under selector s.
	Counts [][]float64
	// TailMS[s] is the converged (last-quarter) mean frame time.
	TailMS []float64
}

// bvhSpace is the BVH arm's tuning space.
func bvhSpace() (*param.Space, param.Config) {
	space := param.NewSpace(
		param.NewInterval("ctrav", 0.1, 4.0),
		param.NewRatioInt("leaf", 1, 32),
		param.NewRatioInt("bins", 8, 64),
	)
	d := bvh.DefaultParams()
	return space, space.Clamp(param.Config{
		d.TraversalCost / d.IntersectCost, float64(d.LeafSize), float64(d.Bins),
	})
}

// RunStructureChoice executes the X5 experiment with ε-Greedy (10%) and
// Sliding-Window AUC.
func RunStructureChoice(cfg Config) *StructureChoice {
	cfg = cfg.sanitize()
	pl := newPipeline(cfg)
	kdNames := kdtree.BuilderNames()
	arms := append(append([]string{}, kdNames...), "BVH")

	algos := builderAlgorithms()
	bSpace, bInit := bvhSpace()
	algos = append(algos, core.Algorithm{Name: "BVH", Space: bSpace, Init: bInit})

	builders := make([]kdtree.Builder, len(kdNames))
	for i, n := range kdNames {
		b, err := kdtree.NewBuilder(n)
		if err != nil {
			panic(err)
		}
		builders[i] = b
	}
	measure := func(algo int, c param.Config) float64 {
		return timeIt(func() {
			if algo < len(kdNames) {
				pl.RenderFrame(builders[algo], ConfigToParams(kdNames[algo], c))
				return
			}
			p := bvh.DefaultParams()
			p.TraversalCost = c[0]
			p.IntersectCost = 1
			p.LeafSize = int(c[1])
			p.Bins = int(c[2])
			tree := bvh.Build(pl.Tris, p)
			ray.RenderWith(tree, pl.Tris, pl.Cam, pl.Light, pl.Width, pl.Height, pl.Workers)
		})
	}

	res := &StructureChoice{ArmLabels: arms}
	for _, sname := range []string{"egreedy:10", "auc"} {
		counts := make([]float64, len(arms))
		var tails []float64
		for rep := 0; rep < cfg.Reps; rep++ {
			sel, err := nominal.NewByName(sname)
			if err != nil {
				panic(err)
			}
			tuner, err := core.New(algos, sel, core.DefaultFactory, cfg.Seed+int64(rep))
			if err != nil {
				panic(err)
			}
			var vals []float64
			for i := 0; i < cfg.Frames; i++ {
				vals = append(vals, tuner.Step(measure).Value)
			}
			for a, c := range tuner.Counts() {
				counts[a] += float64(c) / float64(cfg.Reps)
			}
			tails = append(tails, stats.Mean(vals[len(vals)*3/4:]))
		}
		res.SelectorLabels = append(res.SelectorLabels, sname)
		res.Counts = append(res.Counts, counts)
		res.TailMS = append(res.TailMS, stats.Mean(tails))
	}
	return res
}

// RenderFigureX5 writes the acceleration-structure choice table.
func (s *StructureChoice) RenderFigureX5(w io.Writer) *report.Table {
	t := report.NewTable("Extension X5: acceleration-structure choice (4 kD-tree builders + BVH)",
		append([]string{"selector", "tail ms"}, s.ArmLabels...)...)
	for i, sel := range s.SelectorLabels {
		row := []interface{}{sel, s.TailMS[i]}
		for _, c := range s.Counts[i] {
			row = append(row, c)
		}
		t.Addf(row...)
	}
	if w != nil {
		t.Render(w)
	}
	return t
}
