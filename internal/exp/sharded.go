package exp

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/report"
)

// Ablation A13 — sharded nominal selection. Sharding (core.ShardedEngine)
// trades selector freshness for lock-free leasing: each shard decides on
// a replica that lags the authoritative state by at most
// mergeEvery × shards observations. The experiment asks whether that
// staleness changes the outcome: over the replayed string-matching
// banks, does a sharded pool still elect the winner the sequential tuner
// elects, across shard counts?

// shardedShardCounts are the shard counts of the A13 fidelity runs.
var shardedShardCounts = []int{1, 2, 4, 8}

// ShardedTuning is the A13 result.
type ShardedTuning struct {
	Labels []string
	Iters  int
	Reps   int
	Shards []int
	// SequentialWinners[r] is the most-selected arm of the sequential
	// reference of repetition r; Agreement[s] is the fraction of
	// repetitions whose sharded run with Shards[s] shards elected the
	// same arm as its sequential reference.
	SequentialWinner string
	Winners          [][]string // [shard count][rep]
	Agreement        []float64
	// MinAgreement is the acceptance floor applied by Pass.
	MinAgreement float64
}

// Pass reports the acceptance criterion: at every shard count, at least
// MinAgreement of the repetitions agree with the sequential winner.
func (s *ShardedTuning) Pass() bool {
	for _, a := range s.Agreement {
		if a < s.MinAgreement {
			return false
		}
	}
	return true
}

// RunShardedTuning executes the A13 experiment: for each repetition a
// sequential reference run over the matchers' replayed sample banks,
// then one sharded pool per shard count with the same seed, counting
// winner agreement. iters <= 0 uses 600; reps <= 0 uses 10.
func RunShardedTuning(cfg Config, iters, reps int) *ShardedTuning {
	cfg = cfg.sanitize()
	if iters <= 0 {
		iters = 600
	}
	if reps <= 0 {
		reps = 10
	}
	names, _ := recordBank(cfg)
	res := &ShardedTuning{
		Labels:       names,
		Iters:        iters,
		Reps:         reps,
		Shards:       shardedShardCounts,
		Winners:      make([][]string, len(shardedShardCounts)),
		Agreement:    make([]float64, len(shardedShardCounts)),
		MinAgreement: 0.9,
	}

	agree := make([]int, len(res.Shards))
	for r := 0; r < reps; r++ {
		rcfg := cfg
		rcfg.Seed = cfg.Seed + int64(101*r)
		_, bank := recordBank(rcfg)

		seq, err := core.NewTuner(matcherAlgorithms(), nominal.NewEpsilonGreedy(0.10), nil, rcfg.Seed)
		if err != nil {
			panic(err)
		}
		seq.Run(iters, replayMeasure(bank))
		seqWinner := names[mostSelected(seq.Counts())]
		if r == 0 {
			res.SequentialWinner = seqWinner
		}

		for si, shards := range res.Shards {
			eng, err := core.NewShardedEngine(matcherAlgorithms(), nominal.NewEpsilonGreedy(0.10), nil, rcfg.Seed,
				core.WithShards(shards), core.WithMaxInFlight(16))
			if err != nil {
				panic(err)
			}
			eng.RunPool(8, iters, replayMeasure(bank))
			w := names[mostSelected(eng.Counts())]
			res.Winners[si] = append(res.Winners[si], w)
			if w == seqWinner {
				agree[si]++
			}
		}
	}
	for si := range res.Shards {
		res.Agreement[si] = float64(agree[si]) / float64(reps)
	}
	return res
}

// ShardedThroughput measures leases/sec of the sharded engine for each
// (workers × shards) cell over a synthetic workload with a fixed sleep
// per trial (zero isolates pure engine overhead). Every cell completes
// the same total; rows are workers, columns shards. All cells run
// WithoutHistory — the long-lived production-loop configuration — so the
// columns compare decision-path overhead, not the shared per-record
// history appends.
func ShardedThroughput(workerCounts, shardCounts []int, total int, sleep time.Duration) [][]float64 {
	algos := []core.Algorithm{
		{Name: "a"},
		{Name: "b", Space: param.NewSpace(param.NewInterval("x", 0, 1))},
	}
	m := func(algo int, cfg param.Config) float64 {
		if sleep > 0 {
			time.Sleep(sleep)
		}
		if algo == 0 {
			return 2
		}
		return 1 + cfg[0]
	}
	out := make([][]float64, len(workerCounts))
	for wi, w := range workerCounts {
		out[wi] = make([]float64, len(shardCounts))
		for si, shards := range shardCounts {
			// Best of three, fresh engine each rep: the minimum-time rep
			// is the least scheduler- and GC-disturbed measurement.
			for rep := 0; rep < 3; rep++ {
				eng, err := core.NewShardedEngine(algos, nominal.NewEpsilonGreedy(0.10), nil, 1,
					core.WithShards(shards), core.WithMaxInFlight(2*w), core.WithoutHistory())
				if err != nil {
					panic(err)
				}
				start := time.Now()
				eng.RunPool(w, total, m)
				if lps := float64(total) / time.Since(start).Seconds(); lps > out[wi][si] {
					out[wi][si] = lps
				}
			}
		}
	}
	return out
}

// RenderFigureA13 writes the sharded-selection summary table.
func (s *ShardedTuning) RenderFigureA13(w io.Writer) *report.Table {
	t := report.NewTable("Ablation A13: sharded selection fidelity on the string matching case study",
		"property", "value")
	t.Addf("iterations per run", s.Iters)
	t.Addf("repetitions", s.Reps)
	t.Addf("sequential winner (rep 0)", s.SequentialWinner)
	for i, n := range s.Shards {
		t.Addf(fmt.Sprintf("winner agreement @ %d shards", n),
			fmt.Sprintf("%.0f%%", 100*s.Agreement[i]))
	}
	t.Addf(fmt.Sprintf("passes (agreement >= %.0f%% at every shard count)", 100*s.MinAgreement), s.Pass())
	if w != nil {
		t.Render(w)
	}
	return t
}
