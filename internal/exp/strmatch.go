package exp

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/ctxtune"
	"repro/internal/nominal"
	"repro/internal/param"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/strmatch"
)

// UntunedMatchers is the Figure 1 experiment: every string matching
// algorithm runs the benchmark query Reps times without any tuning; the
// result is one timing sample set per algorithm.
type UntunedMatchers struct {
	Labels  []string
	Samples [][]float64 // [algorithm][rep] in ms
}

// RunUntunedMatchers executes the Figure 1 experiment.
func RunUntunedMatchers(cfg Config) *UntunedMatchers {
	cfg = cfg.sanitize()
	text := corpus.Bible(cfg.CorpusSize, cfg.Seed)
	pattern := []byte(cfg.Pattern)
	res := &UntunedMatchers{Labels: strmatch.Names()}
	res.Samples = make([][]float64, len(res.Labels))
	for ai, name := range res.Labels {
		m, err := strmatch.New(name)
		if err != nil {
			panic(err) // unreachable: Names and New agree
		}
		// One warmup run keeps first-touch allocations out of the samples.
		strmatch.Run(m, pattern, text, cfg.Workers)
		samples := make([]float64, cfg.Reps)
		for r := 0; r < cfg.Reps; r++ {
			samples[r] = timeIt(func() {
				strmatch.Run(m, pattern, text, cfg.Workers)
			})
		}
		res.Samples[ai] = samples
	}
	return res
}

// Boxes summarizes the samples per algorithm.
func (u *UntunedMatchers) Boxes() []stats.BoxPlot {
	bs := make([]stats.BoxPlot, len(u.Samples))
	for i, s := range u.Samples {
		bs[i] = stats.NewBoxPlot(s)
	}
	return bs
}

// RenderFigure1 writes the Figure 1 boxplot table.
func (u *UntunedMatchers) RenderFigure1(w io.Writer) {
	report.BoxTable(w,
		"Figure 1: performance of the parallel string matching algorithms (no tuning)",
		u.Labels, u.Boxes(), "ms")
}

// TunedMatchers is the shared run behind Figures 2, 3 and 4: the online
// tuner selects among the eight matchers each iteration, for every
// phase-two strategy, repeated Reps times.
type TunedMatchers struct {
	// StrategyLabels and AlgorithmLabels index the result matrices.
	StrategyLabels  []string
	AlgorithmLabels []string
	// Curves[s] collects each repetition's per-iteration times.
	Curves []*stats.Series
	// Counts[s] collects each repetition's per-algorithm selection counts.
	Counts []*stats.CountMatrix
}

// matcherAlgorithms builds the tuner's algorithm set: the eight matchers,
// none of which exposes tunable parameters (empty spaces).
func matcherAlgorithms() []core.Algorithm {
	names := strmatch.Names()
	algos := make([]core.Algorithm, len(names))
	for i, n := range names {
		algos[i] = core.Algorithm{Name: n}
	}
	return algos
}

// RunTunedMatchers executes the case study 1 tuning experiment.
func RunTunedMatchers(cfg Config) *TunedMatchers {
	cfg = cfg.sanitize()
	text := corpus.Bible(cfg.CorpusSize, cfg.Seed)
	pattern := []byte(cfg.Pattern)
	names := strmatch.Names()

	// One prepared matcher instance per algorithm; Precompute is re-run
	// inside the measured operation, matching the paper ("any
	// precomputation is part of the algorithm's runtime").
	matchers := make([]strmatch.Matcher, len(names))
	for i, n := range names {
		m, err := strmatch.New(n)
		if err != nil {
			panic(err)
		}
		matchers[i] = m
	}
	measure := func(algo int, _ param.Config) float64 {
		return timeIt(func() {
			strmatch.Run(matchers[algo], pattern, text, cfg.Workers)
		})
	}

	res := &TunedMatchers{
		StrategyLabels:  StrategyLabels(),
		AlgorithmLabels: names,
	}
	for si, sname := range StrategyNames() {
		series := stats.NewSeries()
		counts := stats.NewCountMatrix(names)
		for rep := 0; rep < cfg.Reps; rep++ {
			sel, err := nominal.NewByName(sname)
			if err != nil {
				panic(err)
			}
			seed := cfg.Seed + int64(rep)*1000 + int64(si)
			tuner, err := core.New(matcherAlgorithms(), sel, nil, seed)
			if err != nil {
				panic(err)
			}
			run := make([]float64, cfg.Iters)
			for i := 0; i < cfg.Iters; i++ {
				run[i] = tuner.Step(measure).Value
			}
			series.Add(run)
			counts.AddRun(tuner.Counts())
		}
		res.Curves = append(res.Curves, series)
		res.Counts = append(res.Counts, counts)
	}
	return res
}

// RenderFigure2 writes the median per-iteration performance of every
// strategy (the paper caps the plot at 25 iterations, after which all
// strategies are converged).
func (t *TunedMatchers) RenderFigure2(w io.Writer) {
	c := report.NewChart("Figure 2: median performance per iteration (string matching)", "iteration", "ms")
	for i, label := range t.StrategyLabels {
		c.Add(label, t.Curves[i].MedianCurve(25))
	}
	c.WriteASCII(w, 72, 16)
}

// RenderFigure3 writes the mean per-iteration performance (capped at 50
// iterations as in the paper).
func (t *TunedMatchers) RenderFigure3(w io.Writer) {
	c := report.NewChart("Figure 3: mean performance per iteration (string matching)", "iteration", "ms")
	for i, label := range t.StrategyLabels {
		c.Add(label, t.Curves[i].MeanCurve(50))
	}
	c.WriteASCII(w, 72, 16)
}

// RenderFigure4 writes the per-strategy algorithm choice histograms as
// boxplots over the repetitions.
func (t *TunedMatchers) RenderFigure4(w io.Writer) {
	fmt.Fprintln(w, "Figure 4: frequency of algorithms chosen by the strategies")
	for si, label := range t.StrategyLabels {
		cm := t.Counts[si]
		boxes := make([]stats.BoxPlot, len(t.AlgorithmLabels))
		for ai := range t.AlgorithmLabels {
			boxes[ai] = cm.Box(ai)
		}
		report.BoxTable(w, "  strategy: "+label, t.AlgorithmLabels, boxes, "selections")
		fmt.Fprintln(w)
	}
}

// CurvesChart exposes the median curves as a chart for CSV export.
func (t *TunedMatchers) CurvesChart(median bool, limit int) *report.Chart {
	title := "mean"
	if median {
		title = "median"
	}
	c := report.NewChart("string matching "+title+" per iteration", "iteration", "ms")
	for i, label := range t.StrategyLabels {
		if median {
			c.Add(label, t.Curves[i].MedianCurve(limit))
		} else {
			c.Add(label, t.Curves[i].MeanCurve(limit))
		}
	}
	return c
}

// BestAlgorithm returns, for strategy s, the algorithm selected most often
// on average — the headline result the histograms support.
func (t *TunedMatchers) BestAlgorithm(s int) string {
	cm := t.Counts[s]
	best, bestMean := 0, -1.0
	for ai := range t.AlgorithmLabels {
		if m := cm.MeanOf(ai); m > bestMean {
			bestMean = m
			best = ai
		}
	}
	return t.AlgorithmLabels[best]
}

// RunUntunedMatchersDNA is extension experiment X1: the matchers on a
// genome-like 4-letter corpus — the second corpus family of the source
// string matching paper [11]. Small alphabets invert parts of the Figure 1
// ranking (skip distances shrink for heuristic matchers, favouring the
// bit-parallel and hashed ones), which is precisely why the optimal
// algorithm cannot be fixed a priori and must be tuned online.
func RunUntunedMatchersDNA(cfg Config) *UntunedMatchers {
	cfg = cfg.sanitize()
	text := corpus.DNA(cfg.CorpusSize, cfg.Seed)
	// Sample the query from the corpus so matches exist, then plant a few
	// more for a realistic hit count.
	patLen := len(cfg.Pattern)
	if patLen > len(text)/2 {
		patLen = 32
	}
	pattern := append([]byte(nil), text[len(text)/3:len(text)/3+patLen]...)
	corpus.Plant(text, pattern, 4, cfg.Seed+2)
	res := &UntunedMatchers{Labels: strmatch.Names()}
	res.Samples = make([][]float64, len(res.Labels))
	for ai, name := range res.Labels {
		m, err := strmatch.New(name)
		if err != nil {
			panic(err)
		}
		strmatch.Run(m, pattern, text, cfg.Workers)
		samples := make([]float64, cfg.Reps)
		for r := 0; r < cfg.Reps; r++ {
			samples[r] = timeIt(func() {
				strmatch.Run(m, pattern, text, cfg.Workers)
			})
		}
		res.Samples[ai] = samples
	}
	return res
}

// RenderFigureX1 writes the DNA-corpus boxplot table.
func (u *UntunedMatchers) RenderFigureX1(w io.Writer) {
	report.BoxTable(w,
		"Extension X1: the string matching algorithms on a genome-like corpus (no tuning)",
		u.Labels, u.Boxes(), "ms")
}

// PatternSweep is extension experiment X2: input sensitivity. The related
// work the paper builds on (PetaBricks' input-sensitive decision trees,
// Nitro's feature-trained models) exists because the best algorithm
// changes with the input; here the input feature is the pattern length.
// For each length the experiment measures every matcher directly AND runs
// a short online-tuning session, recording which algorithm the tuner
// converged on — showing the tuner rediscovering the length-dependent
// winner that the Hybrid matcher hard-codes.
type PatternSweep struct {
	Lengths []int
	// Winner[i] is the measured-fastest matcher at Lengths[i];
	// TunerChoice[i] the algorithm the online tuner selected most.
	Winner, TunerChoice []string
	// MedianMS[i][a] is the median time of matcher a at Lengths[i].
	MedianMS [][]float64
	Labels   []string
}

// RunPatternSweep executes the X2 experiment.
func RunPatternSweep(cfg Config, lengths []int) *PatternSweep {
	cfg = cfg.sanitize()
	if len(lengths) == 0 {
		lengths = []int{4, 8, 16, 37, 64, 128}
	}
	text := corpus.English(cfg.CorpusSize, cfg.Seed)
	names := strmatch.Names()
	res := &PatternSweep{Lengths: lengths, Labels: names}
	for _, plen := range lengths {
		// Sample the pattern from the text so the match density is
		// realistic for every length.
		start := len(text) / 4
		pattern := append([]byte(nil), text[start:start+plen]...)

		medians := make([]float64, len(names))
		winner, winnerVal := "", 0.0
		for ai, name := range names {
			m, err := strmatch.New(name)
			if err != nil {
				panic(err)
			}
			strmatch.Run(m, pattern, text, cfg.Workers) // warmup
			samples := make([]float64, cfg.Reps)
			for r := range samples {
				samples[r] = timeIt(func() {
					strmatch.Run(m, pattern, text, cfg.Workers)
				})
			}
			medians[ai] = stats.Median(samples)
			if winner == "" || medians[ai] < winnerVal {
				winner, winnerVal = name, medians[ai]
			}
		}
		res.MedianMS = append(res.MedianMS, medians)
		res.Winner = append(res.Winner, winner)

		// Short online-tuning session on this input.
		matchers := make([]strmatch.Matcher, len(names))
		for i, n := range names {
			m, err := strmatch.New(n)
			if err != nil {
				panic(err)
			}
			matchers[i] = m
		}
		measure := func(algo int, _ param.Config) float64 {
			return timeIt(func() {
				strmatch.Run(matchers[algo], pattern, text, cfg.Workers)
			})
		}
		tuner, err := core.New(matcherAlgorithms(), nominal.NewEpsilonGreedy(0.10), nil, cfg.Seed+int64(plen))
		if err != nil {
			panic(err)
		}
		tuner.Run(cfg.Iters, measure)
		counts := tuner.Counts()
		best := 0
		for i, c := range counts {
			if c > counts[best] {
				best = i
			}
		}
		res.TunerChoice = append(res.TunerChoice, names[best])
	}
	return res
}

// RenderFigureX2 writes the input-sensitivity table.
func (p *PatternSweep) RenderFigureX2(w io.Writer) *report.Table {
	t := report.NewTable("Extension X2: input sensitivity — winner by pattern length",
		"pattern length", "measured fastest", "tuner's choice", "fastest median [ms]")
	for i, plen := range p.Lengths {
		best := 0
		for a := range p.MedianMS[i] {
			if p.MedianMS[i][a] < p.MedianMS[i][best] {
				best = a
			}
		}
		t.Addf(plen, p.Winner[i], p.TunerChoice[i], p.MedianMS[i][best])
	}
	if w != nil {
		t.Render(w)
	}
	return t
}

// ContextualSweep is extension experiment X4: online contextual tuning.
// The input stream alternates between a short and a long query pattern —
// X2 showed their winners differ — and two treatments compete: a single
// global tuner (which can only commit to one algorithm) and a
// ctxtune.Keyed family keyed by the pattern class. Reported per
// treatment: total time spent and the most-chosen matcher per context.
type ContextualSweep struct {
	GlobalTotalMS, ContextualTotalMS float64
	GlobalChoice                     string
	ContextChoice                    map[string]string
}

// RunContextualSweep executes the X4 experiment.
func RunContextualSweep(cfg Config) *ContextualSweep {
	cfg = cfg.sanitize()
	text := corpus.English(cfg.CorpusSize, cfg.Seed)
	patterns := map[string][]byte{
		"short": []byte("the "),
		"long":  append([]byte(nil), text[len(text)/4:len(text)/4+64]...),
	}
	contexts := []string{"short", "long"}
	names := strmatch.Names()
	matchers := make([]strmatch.Matcher, len(names))
	for i, n := range names {
		m, err := strmatch.New(n)
		if err != nil {
			panic(err)
		}
		matchers[i] = m
	}
	measure := func(ctx string) core.Measure {
		return func(algo int, _ param.Config) float64 {
			return timeIt(func() {
				strmatch.Run(matchers[algo], patterns[ctx], text, cfg.Workers)
			})
		}
	}

	res := &ContextualSweep{ContextChoice: map[string]string{}}
	iters := cfg.Iters * 2 // both treatments see every context cfg.Iters times

	global, err := core.New(matcherAlgorithms(), nominal.NewEpsilonGreedy(0.10), nil, cfg.Seed)
	if err != nil {
		panic(err)
	}
	for i := 0; i < iters; i++ {
		ctx := contexts[i%2]
		res.GlobalTotalMS += global.Step(measure(ctx)).Value
	}
	gBest := 0
	gCounts := global.Counts()
	for i, c := range gCounts {
		if c > gCounts[gBest] {
			gBest = i
		}
	}
	res.GlobalChoice = names[gBest]

	ctxFamily := ctxtune.NewKeyed(matcherAlgorithms(),
		func() nominal.Selector { return nominal.NewEpsilonGreedy(0.10) }, nil, cfg.Seed)
	for i := 0; i < iters; i++ {
		ctx := contexts[i%2]
		rec, err := ctxFamily.Step(ctx, measure(ctx))
		if err != nil {
			panic(err)
		}
		res.ContextualTotalMS += rec.Value
	}
	for _, ctx := range contexts {
		t, err := ctxFamily.For(ctx)
		if err != nil {
			panic(err)
		}
		counts := t.Counts()
		best := 0
		for i, c := range counts {
			if c > counts[best] {
				best = i
			}
		}
		res.ContextChoice[ctx] = names[best]
	}
	return res
}

// RenderFigureX4 writes the contextual-tuning comparison.
func (c *ContextualSweep) RenderFigureX4(w io.Writer) *report.Table {
	t := report.NewTable("Extension X4: contextual tuning under an alternating input stream",
		"treatment", "total time [ms]", "choices")
	t.Addf("global tuner", c.GlobalTotalMS, "always "+c.GlobalChoice)
	t.Addf("contextual tuners", c.ContextualTotalMS,
		fmt.Sprintf("short→%s, long→%s", c.ContextChoice["short"], c.ContextChoice["long"]))
	if w != nil {
		t.Render(w)
	}
	return t
}
