// Package geom provides the vector, ray, bounding-box and triangle
// primitives underlying the raytracing case study: a right-handed 3-D
// space with float64 coordinates, slab-method ray/box tests and
// Möller–Trumbore ray/triangle intersection.
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a 3-D vector (also used for points and RGB colors).
type Vec3 struct {
	X, Y, Z float64
}

// V constructs a Vec3.
func V(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v − w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s·v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Len returns |v|.
func (v Vec3) Len() float64 { return math.Sqrt(v.Dot(v)) }

// Normalize returns v/|v|; the zero vector normalizes to itself.
func (v Vec3) Normalize() Vec3 {
	l := v.Len()
	if l == 0 {
		return v
	}
	return v.Scale(1 / l)
}

// Axis returns component i (0 = X, 1 = Y, 2 = Z).
func (v Vec3) Axis(i int) float64 {
	switch i {
	case 0:
		return v.X
	case 1:
		return v.Y
	case 2:
		return v.Z
	default:
		panic(fmt.Sprintf("geom: axis %d", i))
	}
}

// SetAxis returns a copy of v with component i replaced.
func (v Vec3) SetAxis(i int, x float64) Vec3 {
	switch i {
	case 0:
		v.X = x
	case 1:
		v.Y = x
	case 2:
		v.Z = x
	default:
		panic(fmt.Sprintf("geom: axis %d", i))
	}
	return v
}

// MinV returns the componentwise minimum.
func MinV(a, b Vec3) Vec3 {
	return Vec3{math.Min(a.X, b.X), math.Min(a.Y, b.Y), math.Min(a.Z, b.Z)}
}

// MaxV returns the componentwise maximum.
func MaxV(a, b Vec3) Vec3 {
	return Vec3{math.Max(a.X, b.X), math.Max(a.Y, b.Y), math.Max(a.Z, b.Z)}
}

// A Ray is an origin with a direction. Directions need not be normalized
// for intersection tests; t parameters are in units of the direction.
type Ray struct {
	Origin, Dir Vec3
}

// At returns the point Origin + t·Dir.
func (r Ray) At(t float64) Vec3 { return r.Origin.Add(r.Dir.Scale(t)) }

// An AABB is an axis-aligned bounding box.
type AABB struct {
	Min, Max Vec3
}

// EmptyAABB returns the identity for Union: an inverted box.
func EmptyAABB() AABB {
	inf := math.Inf(1)
	return AABB{Min: Vec3{inf, inf, inf}, Max: Vec3{-inf, -inf, -inf}}
}

// Empty reports whether the box contains no points.
func (b AABB) Empty() bool {
	return b.Min.X > b.Max.X || b.Min.Y > b.Max.Y || b.Min.Z > b.Max.Z
}

// Union returns the smallest box containing both.
func (b AABB) Union(o AABB) AABB {
	return AABB{Min: MinV(b.Min, o.Min), Max: MaxV(b.Max, o.Max)}
}

// Extend returns the smallest box containing b and point p.
func (b AABB) Extend(p Vec3) AABB {
	return AABB{Min: MinV(b.Min, p), Max: MaxV(b.Max, p)}
}

// SurfaceArea returns the box's surface area (0 for empty boxes); it is
// the quantity the SAH cost model weighs child nodes by.
func (b AABB) SurfaceArea() float64 {
	if b.Empty() {
		return 0
	}
	d := b.Max.Sub(b.Min)
	return 2 * (d.X*d.Y + d.Y*d.Z + d.Z*d.X)
}

// Diagonal returns Max − Min.
func (b AABB) Diagonal() Vec3 { return b.Max.Sub(b.Min) }

// LongestAxis returns the axis index of the largest extent.
func (b AABB) LongestAxis() int {
	d := b.Diagonal()
	if d.X >= d.Y && d.X >= d.Z {
		return 0
	}
	if d.Y >= d.Z {
		return 1
	}
	return 2
}

// Contains reports whether p lies inside the (closed) box.
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// IntersectRay returns the parametric interval in which the ray overlaps
// the box, clipped to [tMin, tMax], and whether that interval is nonempty
// (the slab method).
func (b AABB) IntersectRay(r Ray, tMin, tMax float64) (t0, t1 float64, hit bool) {
	t0, t1 = tMin, tMax
	for axis := 0; axis < 3; axis++ {
		o, d := r.Origin.Axis(axis), r.Dir.Axis(axis)
		lo, hi := b.Min.Axis(axis), b.Max.Axis(axis)
		if d == 0 {
			if o < lo || o > hi {
				return 0, 0, false
			}
			continue
		}
		inv := 1 / d
		tn, tf := (lo-o)*inv, (hi-o)*inv
		if tn > tf {
			tn, tf = tf, tn
		}
		if tn > t0 {
			t0 = tn
		}
		if tf < t1 {
			t1 = tf
		}
		if t0 > t1 {
			return 0, 0, false
		}
	}
	return t0, t1, true
}

// A Triangle is the scene primitive of the raytracer.
type Triangle struct {
	A, B, C Vec3
}

// Bounds returns the triangle's bounding box.
func (t Triangle) Bounds() AABB {
	return AABB{
		Min: MinV(t.A, MinV(t.B, t.C)),
		Max: MaxV(t.A, MaxV(t.B, t.C)),
	}
}

// Centroid returns the triangle's centroid.
func (t Triangle) Centroid() Vec3 {
	return t.A.Add(t.B).Add(t.C).Scale(1.0 / 3.0)
}

// Normal returns the (unnormalized) geometric normal.
func (t Triangle) Normal() Vec3 {
	return t.B.Sub(t.A).Cross(t.C.Sub(t.A))
}

// rayEpsilon guards against self-intersection and degenerate determinants.
const rayEpsilon = 1e-12

// IntersectRay performs the Möller–Trumbore test, returning the hit
// parameter and whether the ray hits the triangle within (tMin, tMax).
func (t Triangle) IntersectRay(r Ray, tMin, tMax float64) (float64, bool) {
	e1 := t.B.Sub(t.A)
	e2 := t.C.Sub(t.A)
	p := r.Dir.Cross(e2)
	det := e1.Dot(p)
	if det > -rayEpsilon && det < rayEpsilon {
		return 0, false // parallel or degenerate
	}
	inv := 1 / det
	s := r.Origin.Sub(t.A)
	u := s.Dot(p) * inv
	if u < 0 || u > 1 {
		return 0, false
	}
	q := s.Cross(e1)
	v := r.Dir.Dot(q) * inv
	if v < 0 || u+v > 1 {
		return 0, false
	}
	tt := e2.Dot(q) * inv
	if tt <= tMin || tt >= tMax {
		return 0, false
	}
	return tt, true
}
