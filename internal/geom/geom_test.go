package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func veq(a, b Vec3) bool {
	return math.Abs(a.X-b.X) < 1e-12 && math.Abs(a.Y-b.Y) < 1e-12 && math.Abs(a.Z-b.Z) < 1e-12
}

func TestVecOps(t *testing.T) {
	a, b := V(1, 2, 3), V(4, 5, 6)
	if !veq(a.Add(b), V(5, 7, 9)) {
		t.Error("Add")
	}
	if !veq(b.Sub(a), V(3, 3, 3)) {
		t.Error("Sub")
	}
	if !veq(a.Scale(2), V(2, 4, 6)) {
		t.Error("Scale")
	}
	if a.Dot(b) != 32 {
		t.Error("Dot")
	}
	if !veq(V(1, 0, 0).Cross(V(0, 1, 0)), V(0, 0, 1)) {
		t.Error("Cross handedness")
	}
	if V(3, 4, 0).Len() != 5 {
		t.Error("Len")
	}
	if !veq(V(0, 3, 4).Normalize(), V(0, 0.6, 0.8)) {
		t.Error("Normalize")
	}
	if !veq(V(0, 0, 0).Normalize(), V(0, 0, 0)) {
		t.Error("zero Normalize")
	}
}

func TestAxisAccess(t *testing.T) {
	v := V(1, 2, 3)
	for i, want := range []float64{1, 2, 3} {
		if v.Axis(i) != want {
			t.Errorf("Axis(%d) = %g", i, v.Axis(i))
		}
	}
	if got := v.SetAxis(1, 9); got.Y != 9 || v.Y != 2 {
		t.Error("SetAxis should copy")
	}
	defer func() {
		if recover() == nil {
			t.Error("Axis(3) did not panic")
		}
	}()
	v.Axis(3)
}

func TestMinMaxV(t *testing.T) {
	a, b := V(1, 5, 3), V(2, 4, 3)
	if !veq(MinV(a, b), V(1, 4, 3)) || !veq(MaxV(a, b), V(2, 5, 3)) {
		t.Error("MinV/MaxV")
	}
}

func TestRayAt(t *testing.T) {
	r := Ray{Origin: V(1, 0, 0), Dir: V(0, 2, 0)}
	if !veq(r.At(1.5), V(1, 3, 0)) {
		t.Error("Ray.At")
	}
}

func TestAABBBasics(t *testing.T) {
	e := EmptyAABB()
	if !e.Empty() || e.SurfaceArea() != 0 {
		t.Error("EmptyAABB not empty")
	}
	b := AABB{Min: V(0, 0, 0), Max: V(2, 3, 4)}
	if b.Empty() {
		t.Error("nonempty box reported empty")
	}
	if b.SurfaceArea() != 2*(6+12+8) {
		t.Errorf("SurfaceArea = %g", b.SurfaceArea())
	}
	if b.LongestAxis() != 2 {
		t.Error("LongestAxis")
	}
	u := e.Union(b)
	if !veq(u.Min, b.Min) || !veq(u.Max, b.Max) {
		t.Error("Union with empty is identity")
	}
	x := b.Extend(V(-1, 1, 5))
	if !veq(x.Min, V(-1, 0, 0)) || !veq(x.Max, V(2, 3, 5)) {
		t.Error("Extend")
	}
	if !b.Contains(V(1, 1, 1)) || b.Contains(V(3, 0, 0)) {
		t.Error("Contains")
	}
	if !veq(b.Diagonal(), V(2, 3, 4)) {
		t.Error("Diagonal")
	}
}

func TestAABBIntersectRay(t *testing.T) {
	b := AABB{Min: V(0, 0, 0), Max: V(1, 1, 1)}
	// Straight through the middle.
	t0, t1, hit := b.IntersectRay(Ray{V(-1, 0.5, 0.5), V(1, 0, 0)}, 0, 100)
	if !hit || math.Abs(t0-1) > 1e-12 || math.Abs(t1-2) > 1e-12 {
		t.Errorf("through: %g %g %v", t0, t1, hit)
	}
	// Miss.
	if _, _, hit := b.IntersectRay(Ray{V(-1, 2, 0.5), V(1, 0, 0)}, 0, 100); hit {
		t.Error("miss reported as hit")
	}
	// Parallel to an axis, inside the slab.
	if _, _, hit := b.IntersectRay(Ray{V(0.5, 0.5, -1), V(0, 0, 1)}, 0, 100); !hit {
		t.Error("axis-parallel hit missed")
	}
	// Parallel to an axis, outside the slab (zero direction component).
	if _, _, hit := b.IntersectRay(Ray{V(5, 0.5, -1), V(0, 0, 1)}, 0, 100); hit {
		t.Error("axis-parallel miss reported as hit")
	}
	// Clipped by tMax.
	if _, _, hit := b.IntersectRay(Ray{V(-1, 0.5, 0.5), V(1, 0, 0)}, 0, 0.5); hit {
		t.Error("tMax clipping failed")
	}
	// Origin inside the box.
	t0, _, hit = b.IntersectRay(Ray{V(0.5, 0.5, 0.5), V(1, 0, 0)}, 0, 100)
	if !hit || t0 != 0 {
		t.Errorf("inside origin: t0 = %g, hit %v", t0, hit)
	}
}

func TestTriangleBasics(t *testing.T) {
	tr := Triangle{A: V(0, 0, 0), B: V(2, 0, 0), C: V(0, 2, 0)}
	b := tr.Bounds()
	if !veq(b.Min, V(0, 0, 0)) || !veq(b.Max, V(2, 2, 0)) {
		t.Error("Bounds")
	}
	if !veq(tr.Centroid(), V(2.0/3, 2.0/3, 0)) {
		t.Error("Centroid")
	}
	if !veq(tr.Normal().Normalize(), V(0, 0, 1)) {
		t.Error("Normal")
	}
}

func TestTriangleIntersect(t *testing.T) {
	tr := Triangle{A: V(0, 0, 0), B: V(1, 0, 0), C: V(0, 1, 0)}
	// Straight hit at the centroid.
	hitT, ok := tr.IntersectRay(Ray{V(0.25, 0.25, -1), V(0, 0, 1)}, 0, 100)
	if !ok || math.Abs(hitT-1) > 1e-12 {
		t.Errorf("hit t = %g, ok %v", hitT, ok)
	}
	// Outside the triangle but inside the bounding box diagonal.
	if _, ok := tr.IntersectRay(Ray{V(0.9, 0.9, -1), V(0, 0, 1)}, 0, 100); ok {
		t.Error("hit outside barycentric range")
	}
	// Ray parallel to the plane.
	if _, ok := tr.IntersectRay(Ray{V(0, 0, 1), V(1, 0, 0)}, 0, 100); ok {
		t.Error("parallel ray hit")
	}
	// Behind the origin.
	if _, ok := tr.IntersectRay(Ray{V(0.25, 0.25, 1), V(0, 0, 1)}, 0, 100); ok {
		t.Error("backward hit")
	}
	// tMax clipping.
	if _, ok := tr.IntersectRay(Ray{V(0.25, 0.25, -1), V(0, 0, 1)}, 0, 0.5); ok {
		t.Error("tMax clip failed")
	}
	// Hits from both sides (no backface culling).
	if _, ok := tr.IntersectRay(Ray{V(0.25, 0.25, 1), V(0, 0, -1)}, 0, 100); !ok {
		t.Error("backface hit culled")
	}
}

// Property: a ray from a random origin through a random interior point of
// the triangle always hits.
func TestTriangleInteriorHitsProperty(t *testing.T) {
	tr := Triangle{A: V(0, 0, 0), B: V(3, 0, 1), C: V(1, 2, -1)}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		u := r.Float64() * 0.9
		v := r.Float64() * (0.9 - u)
		interior := tr.A.Add(tr.B.Sub(tr.A).Scale(u + 0.03)).Add(tr.C.Sub(tr.A).Scale(v + 0.03))
		origin := V(r.Float64()*10-5, r.Float64()*10-5, 5+r.Float64()*5)
		dir := interior.Sub(origin)
		_, ok := tr.IntersectRay(Ray{origin, dir}, 0, 2)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a triangle's bounds always contain its centroid, and the union
// of two boxes contains both.
func TestBoundsProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rv := func() Vec3 { return V(r.Float64()*10-5, r.Float64()*10-5, r.Float64()*10-5) }
		tr := Triangle{A: rv(), B: rv(), C: rv()}
		b := tr.Bounds()
		if !b.Contains(tr.Centroid()) {
			return false
		}
		b2 := Triangle{A: rv(), B: rv(), C: rv()}.Bounds()
		u := b.Union(b2)
		return u.Contains(b.Min) && u.Contains(b.Max) && u.Contains(b2.Min) && u.Contains(b2.Max) &&
			u.SurfaceArea() >= b.SurfaceArea()-1e-9 && u.SurfaceArea() >= b2.SurfaceArea()-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSetAxisPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetAxis(5) did not panic")
		}
	}()
	V(1, 2, 3).SetAxis(5, 0)
}
