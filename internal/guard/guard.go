// Package guard is the fault-tolerance layer of the autotuner. The paper
// (§II-A) assumes the tuned operation always returns a valid measurement;
// a production tuning loop cannot: algorithms crash on edge-case inputs,
// hang on pathological ones, and instrumentation occasionally emits
// NaN/Inf. Without protection a single panicking Measure call kills the
// whole loop, and one NaN sample silently poisons the phase-one
// strategies' comparisons forever.
//
// The package provides two composable pieces:
//
//   - Guard / SafeMeasure: a measurement decorator that recovers panics,
//     enforces a per-call deadline, validates samples, and converts every
//     failure into a typed Failure plus a finite penalty value, so the
//     search strategies steer away from crashing configurations instead
//     of dying.
//   - Quarantine: a nominal.Selector decorator implementing a per-arm
//     circuit breaker with exponential backoff and forced re-probes, so
//     persistently failing algorithms stop being run — without ever being
//     permanently excluded (the paper's strictly-positive-weight
//     invariant, extended to the failure domain).
//
// core.Tuner integrates both through its WithGuard option and a
// failure-rate watchdog (degradation mode); see core.FailureStats.
package guard

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/param"
)

// Kind classifies a measurement failure.
type Kind uint8

const (
	// Panic: the measurement function panicked and was recovered.
	Panic Kind = iota
	// Timeout: the measurement exceeded the guard's per-call deadline.
	Timeout
	// Invalid: the measurement returned but its sample failed validation
	// (NaN, ±Inf, or negative under the default validator).
	Invalid

	numKinds
)

// String returns "panic", "timeout" or "invalid".
func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Timeout:
		return "timeout"
	case Invalid:
		return "invalid"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// A Failure describes one failed measurement. It implements error.
type Failure struct {
	// Kind is the failure class.
	Kind Kind
	// Algo is the algorithm whose measurement failed.
	Algo int
	// Err carries the recovered panic value, the deadline, or the
	// validation error.
	Err error
	// Penalty is the finite value substituted for the failed sample.
	Penalty float64
}

// Error formats the failure.
func (f Failure) Error() string {
	return fmt.Sprintf("guard: algorithm %d %s: %v", f.Algo, f.Kind, f.Err)
}

// Default penalty policy constants.
const (
	// DefaultPenaltyFactor scales the worst valid observation into the
	// penalty substituted for failed measurements.
	DefaultPenaltyFactor = 10.0
	// DefaultFallbackPenalty is the penalty used before any valid
	// observation exists to scale from.
	DefaultFallbackPenalty = 1e6
)

// A Guard wraps raw measurement calls with panic recovery, an optional
// per-call deadline, and sample validation. Failed calls yield a penalty
// value instead of a valid sample: large enough that every strategy ranks
// the failing configuration last, finite so that no comparison is
// poisoned. A Guard is safe for concurrent use.
type Guard struct {
	timeout   time.Duration
	factor    float64
	fallback  float64
	validate  func(float64) error
	onFailure func(Failure)

	mu       sync.Mutex
	worst    float64
	total    int
	failures int
	kinds    [numKinds]int
	perAlgo  []algoStats
}

type algoStats struct{ total, failed int }

// Option configures a Guard.
type Option func(*Guard)

// WithTimeout sets the per-call deadline. Zero (the default) disables the
// deadline: a timed-out measurement cannot be killed — its goroutine keeps
// running detached until it returns on its own — so deadlines are opt-in.
func WithTimeout(d time.Duration) Option {
	return func(g *Guard) { g.timeout = d }
}

// WithPenaltyFactor sets the multiple of the worst valid observation used
// as the penalty for failed measurements. Values ≤ 1 are clamped to the
// default: a penalty below the worst observation would make failing
// configurations look competitive.
func WithPenaltyFactor(f float64) Option {
	return func(g *Guard) {
		if f > 1 && !math.IsInf(f, 0) && !math.IsNaN(f) {
			g.factor = f
		}
	}
}

// WithFallbackPenalty sets the penalty used before any valid observation
// exists. It must be positive and finite.
func WithFallbackPenalty(v float64) Option {
	return func(g *Guard) {
		if v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v) {
			g.fallback = v
		}
	}
}

// WithValidator replaces the default sample validator (reject NaN, ±Inf,
// negative). The validator returns a non-nil error for invalid samples.
func WithValidator(fn func(float64) error) Option {
	return func(g *Guard) {
		if fn != nil {
			g.validate = fn
		}
	}
}

// OnFailure installs a callback invoked (outside the guard's lock) for
// every failure, e.g. for logging.
func OnFailure(fn func(Failure)) Option {
	return func(g *Guard) { g.onFailure = fn }
}

// New creates a Guard with the default penalty policy.
func New(opts ...Option) *Guard {
	g := &Guard{
		factor:   DefaultPenaltyFactor,
		fallback: DefaultFallbackPenalty,
		validate: ValidateSample,
	}
	for _, o := range opts {
		o(g)
	}
	return g
}

// ValidateSample is the default validator: a sample must be finite and
// non-negative (the tuner minimizes a time-like quantity).
func ValidateSample(v float64) error {
	switch {
	case math.IsNaN(v):
		return fmt.Errorf("NaN sample")
	case math.IsInf(v, 0):
		return fmt.Errorf("infinite sample %g", v)
	case v < 0:
		return fmt.Errorf("negative sample %g", v)
	}
	return nil
}

// Invoke runs one measurement under the guard. On success it returns the
// sample and a nil Failure; on any failure it returns the penalty value
// and the Failure describing what happened (with Penalty filled in).
func (g *Guard) Invoke(m func(algo int, cfg param.Config) float64, algo int, cfg param.Config) (float64, *Failure) {
	v, fail := g.execute(m, algo, cfg)

	g.mu.Lock()
	g.grow(algo)
	g.total++
	if algo >= 0 {
		g.perAlgo[algo].total++
	}
	if fail == nil {
		if v > g.worst {
			g.worst = v
		}
		g.mu.Unlock()
		return v, nil
	}
	fail.Penalty = g.penaltyLocked()
	g.failures++
	g.kinds[fail.Kind]++
	if algo >= 0 {
		g.perAlgo[algo].failed++
	}
	cb := g.onFailure
	g.mu.Unlock()

	if cb != nil {
		cb(*fail)
	}
	return fail.Penalty, fail
}

// execute runs the raw measurement with panic recovery and the optional
// deadline, returning the raw sample or a Failure (without Penalty).
func (g *Guard) execute(m func(int, param.Config) float64, algo int, cfg param.Config) (float64, *Failure) {
	if g.timeout <= 0 {
		v, fail := call(m, algo, cfg)
		if fail != nil {
			return 0, fail
		}
		return g.check(algo, v)
	}

	type outcome struct {
		v    float64
		fail *Failure
	}
	// Buffer 1 so an abandoned (timed-out) measurement goroutine can
	// still complete its send and be collected instead of leaking blocked.
	ch := make(chan outcome, 1)
	go func() {
		v, fail := call(m, algo, cfg)
		ch <- outcome{v: v, fail: fail}
	}()
	timer := time.NewTimer(g.timeout)
	defer timer.Stop()
	select {
	case out := <-ch:
		if out.fail != nil {
			return 0, out.fail
		}
		return g.check(algo, out.v)
	case <-timer.C:
		return 0, &Failure{
			Kind: Timeout,
			Algo: algo,
			Err:  fmt.Errorf("measurement exceeded %v", g.timeout),
		}
	}
}

// call runs m with panic recovery.
func call(m func(int, param.Config) float64, algo int, cfg param.Config) (v float64, fail *Failure) {
	defer func() {
		if r := recover(); r != nil {
			fail = &Failure{Kind: Panic, Algo: algo, Err: fmt.Errorf("recovered panic: %v", r)}
		}
	}()
	return m(algo, cfg), nil
}

// check validates a returned sample.
func (g *Guard) check(algo int, v float64) (float64, *Failure) {
	if err := g.validate(v); err != nil {
		return 0, &Failure{Kind: Invalid, Algo: algo, Err: err}
	}
	return v, nil
}

// Penalty returns the value currently substituted for a failed
// measurement: the worst valid observation times the penalty factor, or
// the fallback penalty before any valid observation exists.
func (g *Guard) Penalty() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.penaltyLocked()
}

func (g *Guard) penaltyLocked() float64 {
	if g.worst > 0 {
		return g.worst * g.factor
	}
	return g.fallback
}

func (g *Guard) grow(algo int) {
	for algo >= 0 && len(g.perAlgo) <= algo {
		g.perAlgo = append(g.perAlgo, algoStats{})
	}
}

// Stats summarizes everything the guard has seen.
type Stats struct {
	// Total and Failures count guarded measurement calls.
	Total, Failures int
	// Panics, Timeouts, Invalids break the failures down by kind.
	Panics, Timeouts, Invalids int
	// Worst is the worst (largest) valid observation, 0 before any.
	Worst float64
	// PerAlgoMeasurements and PerAlgoFailures are indexed by algorithm.
	PerAlgoMeasurements, PerAlgoFailures []int
}

// Stats returns a snapshot of the guard's counters.
func (g *Guard) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := Stats{
		Total:    g.total,
		Failures: g.failures,
		Panics:   g.kinds[Panic],
		Timeouts: g.kinds[Timeout],
		Invalids: g.kinds[Invalid],
		Worst:    g.worst,
	}
	s.PerAlgoMeasurements = make([]int, len(g.perAlgo))
	s.PerAlgoFailures = make([]int, len(g.perAlgo))
	for i, a := range g.perAlgo {
		s.PerAlgoMeasurements[i] = a.total
		s.PerAlgoFailures[i] = a.failed
	}
	return s
}

// SafeMeasure wraps a raw measurement function so it can never crash or
// poison the tuning loop: failures come back as the guard's penalty
// value. The function type is assignable to core.Measure; ask/tell loops
// that need the failure itself (to call Tuner.ObserveFailure) should use
// Invoke instead.
func (g *Guard) SafeMeasure(m func(algo int, cfg param.Config) float64) func(algo int, cfg param.Config) float64 {
	return func(algo int, cfg param.Config) float64 {
		v, _ := g.Invoke(m, algo, cfg)
		return v
	}
}

// SafeMeasure is the package-level convenience: wrap m with a fresh Guard
// configured by opts.
func SafeMeasure(m func(algo int, cfg param.Config) float64, opts ...Option) func(algo int, cfg param.Config) float64 {
	return New(opts...).SafeMeasure(m)
}
