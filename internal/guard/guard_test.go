package guard

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/param"
)

func TestInvokeRecoversPanic(t *testing.T) {
	g := New()
	m := func(int, param.Config) float64 { panic("boom") }
	v, fail := g.Invoke(m, 2, nil)
	if fail == nil {
		t.Fatal("panic not converted into a Failure")
	}
	if fail.Kind != Panic || fail.Algo != 2 {
		t.Errorf("failure = %+v, want Kind=Panic Algo=2", fail)
	}
	if !strings.Contains(fail.Error(), "panic") {
		t.Errorf("Error() = %q", fail.Error())
	}
	if v != DefaultFallbackPenalty || fail.Penalty != v {
		t.Errorf("penalty before any valid sample = %g, want fallback %g", v, DefaultFallbackPenalty)
	}
}

func TestInvokeTimeout(t *testing.T) {
	g := New(WithTimeout(10 * time.Millisecond))
	m := func(int, param.Config) float64 {
		time.Sleep(200 * time.Millisecond)
		return 1
	}
	start := time.Now()
	_, fail := g.Invoke(m, 0, nil)
	if fail == nil || fail.Kind != Timeout {
		t.Fatalf("failure = %+v, want Timeout", fail)
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Errorf("Invoke blocked %v despite the 10ms deadline", elapsed)
	}
	// The abandoned goroutine must neither crash nor race when it later
	// completes while new measurements run (the race detector checks).
	for i := 0; i < 3; i++ {
		if v, fail := g.Invoke(func(int, param.Config) float64 { return 5 }, 0, nil); fail != nil || v != 5 {
			t.Fatalf("follow-up measurement = (%g, %v)", v, fail)
		}
	}
	time.Sleep(250 * time.Millisecond) // let the abandoned goroutine finish
}

func TestInvokeTimeoutPanicInGoroutine(t *testing.T) {
	// A panic inside the deadline goroutine must be recovered there, not
	// crash the process.
	g := New(WithTimeout(time.Second))
	_, fail := g.Invoke(func(int, param.Config) float64 { panic("async boom") }, 1, nil)
	if fail == nil || fail.Kind != Panic {
		t.Fatalf("failure = %+v, want Panic", fail)
	}
}

func TestInvokeValidatesSamples(t *testing.T) {
	cases := []struct {
		name string
		v    float64
		bad  bool
	}{
		{"nan", math.NaN(), true},
		{"+inf", math.Inf(1), true},
		{"-inf", math.Inf(-1), true},
		{"negative", -1, true},
		{"zero", 0, false},
		{"positive", 3.5, false},
	}
	for _, c := range cases {
		g := New()
		v, fail := g.Invoke(func(int, param.Config) float64 { return c.v }, 0, nil)
		if c.bad {
			if fail == nil || fail.Kind != Invalid {
				t.Errorf("%s: failure = %+v, want Invalid", c.name, fail)
			}
		} else {
			if fail != nil || v != c.v {
				t.Errorf("%s: (%g, %v), want (%g, nil)", c.name, v, fail, c.v)
			}
		}
	}
}

func TestPenaltyTracksWorstObservation(t *testing.T) {
	g := New()
	obs := func(v float64) {
		if _, fail := g.Invoke(func(int, param.Config) float64 { return v }, 0, nil); fail != nil {
			t.Fatalf("valid sample %g rejected: %v", v, fail)
		}
	}
	obs(10)
	obs(50)
	obs(20)
	if p := g.Penalty(); p != 50*DefaultPenaltyFactor {
		t.Errorf("penalty = %g, want worst(50) × %g", p, DefaultPenaltyFactor)
	}
	v, fail := g.Invoke(func(int, param.Config) float64 { panic("x") }, 0, nil)
	if fail == nil || v != 500 || fail.Penalty != 500 {
		t.Errorf("failed call returned (%g, %+v), want penalty 500", v, fail)
	}
}

func TestPenaltyOptions(t *testing.T) {
	g := New(WithPenaltyFactor(3), WithFallbackPenalty(42))
	if p := g.Penalty(); p != 42 {
		t.Errorf("fallback penalty = %g, want 42", p)
	}
	g.Invoke(func(int, param.Config) float64 { return 7 }, 0, nil)
	if p := g.Penalty(); p != 21 {
		t.Errorf("penalty = %g, want 7×3", p)
	}
	// Degenerate options are clamped to the defaults.
	d := New(WithPenaltyFactor(0.5), WithFallbackPenalty(-1))
	if d.factor != DefaultPenaltyFactor || d.fallback != DefaultFallbackPenalty {
		t.Errorf("degenerate options not clamped: factor=%g fallback=%g", d.factor, d.fallback)
	}
}

func TestCustomValidator(t *testing.T) {
	g := New(WithValidator(func(v float64) error {
		if v > 100 {
			return errOverBudget
		}
		return nil
	}))
	if _, fail := g.Invoke(func(int, param.Config) float64 { return 1000 }, 0, nil); fail == nil || fail.Kind != Invalid {
		t.Errorf("custom validator not applied: %+v", fail)
	}
	// The default rejections no longer apply once replaced.
	if _, fail := g.Invoke(func(int, param.Config) float64 { return -5 }, 0, nil); fail != nil {
		t.Errorf("replaced validator still rejects negatives: %v", fail)
	}
}

var errOverBudget = timeoutErr("over budget")

type timeoutErr string

func (e timeoutErr) Error() string { return string(e) }

func TestStatsAndOnFailure(t *testing.T) {
	var seen []Failure
	g := New(OnFailure(func(f Failure) { seen = append(seen, f) }))
	g.Invoke(func(int, param.Config) float64 { return 4 }, 0, nil)
	g.Invoke(func(int, param.Config) float64 { panic("p") }, 1, nil)
	g.Invoke(func(int, param.Config) float64 { return math.NaN() }, 1, nil)

	s := g.Stats()
	if s.Total != 3 || s.Failures != 2 || s.Panics != 1 || s.Invalids != 1 || s.Timeouts != 0 {
		t.Errorf("stats = %+v", s)
	}
	if s.Worst != 4 {
		t.Errorf("worst = %g, want 4", s.Worst)
	}
	if len(s.PerAlgoMeasurements) != 2 || s.PerAlgoMeasurements[1] != 2 || s.PerAlgoFailures[1] != 2 {
		t.Errorf("per-algo stats = %v / %v", s.PerAlgoMeasurements, s.PerAlgoFailures)
	}
	if len(seen) != 2 {
		t.Errorf("OnFailure saw %d failures, want 2", len(seen))
	}
}

func TestSafeMeasureNeverPanics(t *testing.T) {
	calls := 0
	m := SafeMeasure(func(algo int, _ param.Config) float64 {
		calls++
		if algo == 1 {
			panic("injected")
		}
		return float64(algo)
	})
	if v := m(0, nil); v != 0 {
		t.Errorf("pass-through = %g", v)
	}
	if v := m(1, nil); v != DefaultFallbackPenalty {
		t.Errorf("panicking call = %g, want fallback penalty", v)
	}
	if calls != 2 {
		t.Errorf("calls = %d", calls)
	}
}

func TestGuardConcurrentUse(t *testing.T) {
	// The guard itself must be race-clean under concurrent Invoke.
	g := New(WithTimeout(50 * time.Millisecond))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch i % 3 {
				case 0:
					g.Invoke(func(int, param.Config) float64 { return float64(i) }, w, nil)
				case 1:
					g.Invoke(func(int, param.Config) float64 { panic("c") }, w, nil)
				default:
					g.Invoke(func(int, param.Config) float64 { return math.NaN() }, w, nil)
				}
			}
		}(w)
	}
	wg.Wait()
	s := g.Stats()
	if s.Total != 200 {
		t.Errorf("total = %d, want 200", s.Total)
	}
}

func TestKindString(t *testing.T) {
	if Panic.String() != "panic" || Timeout.String() != "timeout" || Invalid.String() != "invalid" {
		t.Error("Kind.String labels wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind must still format")
	}
}
