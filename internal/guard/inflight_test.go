package guard

import (
	"math/rand"
	"testing"

	"repro/internal/nominal"
)

// TestQuarantineInterleavedFailureDepth checks the concurrent-completion
// fix: when several failed trials of the same arm are in flight, their
// ReportFailure/Report pairs interleave. The depth counter must consume
// one outstanding failure per Report — with the old boolean flag the
// second Report was misread as a success and reset the consecutive
// count, so the circuit never opened.
func TestQuarantineInterleavedFailureDepth(t *testing.T) {
	q := NewQuarantine(nominal.NewUniformRandom())
	q.K = 3
	q.Init(2)
	r := rand.New(rand.NewSource(1))

	// Three failed trials of arm 0 in flight at once: failures land
	// first, the penalty reports trail behind.
	for i := 0; i < 3; i++ {
		q.Select(r)
		q.ReportFailure(0, Failure{Kind: Panic})
	}
	for i := 0; i < 3; i++ {
		q.Report(0, 1e6) // penalty reports, none of them a success
	}
	if !q.Open(0) {
		t.Fatal("circuit did not open after 3 interleaved consecutive failures")
	}
	if q.Trips(0) != 1 {
		t.Fatalf("trips = %d, want 1", q.Trips(0))
	}
	// A real success after the penalties closes the circuit as usual.
	q.Report(0, 2.0)
	if q.Open(0) {
		t.Fatal("success did not close the circuit")
	}
}

// TestQuarantineSelectInFlightMasksSuspended checks the in-flight-aware
// draw path applies the same probe/mask logic as Select.
func TestQuarantineSelectInFlightMasksSuspended(t *testing.T) {
	q := NewQuarantine(nominal.NewEpsilonGreedy(0))
	q.K = 1
	q.Init(3)
	r := rand.New(rand.NewSource(2))
	inFlight := make([]int, 3)

	// Visit every arm once so the inner selector has an incumbent.
	for arm := 0; arm < 3; arm++ {
		q.SelectInFlight(r, inFlight)
		q.Report(arm, float64(1+arm))
	}
	// Make arm 0 (the incumbent) fail: its circuit opens immediately.
	q.SelectInFlight(r, inFlight)
	q.ReportFailure(0, Failure{Kind: Timeout})
	q.Report(0, 1e6)
	if !q.Suspended(0) {
		t.Fatal("arm 0 not suspended after K=1 failure")
	}
	for i := 0; i < 10; i++ {
		if arm := q.SelectInFlight(r, inFlight); q.Suspended(arm) {
			t.Fatalf("draw %d returned suspended arm %d", i, arm)
		}
	}
}
