package guard

import (
	"math/rand"

	"repro/internal/nominal"
)

// FailureAware is implemented by selectors that want to be told about
// measurement failures in addition to the plain value reports of the
// nominal.Selector interface. core.Tuner calls ReportFailure (before the
// matching Report, which carries the penalty value) whenever a guarded or
// sanitized measurement fails.
type FailureAware interface {
	ReportFailure(arm int, f Failure)
}

// Quarantine default tuning.
const (
	// DefaultQuarantineK is the consecutive-failure count that opens an
	// arm's circuit.
	DefaultQuarantineK = 3
	// DefaultMaxBackoffExp caps the exponential backoff: an arm is never
	// suspended for more than 2^DefaultMaxBackoffExp iterations, which
	// bounds the re-probe interval and guarantees no permanent exclusion.
	DefaultMaxBackoffExp = 8
)

// Quarantine decorates a nominal.Selector with a per-arm circuit breaker.
//
// State machine per arm:
//
//	closed    — selections flow through the inner selector unchanged.
//	open      — after K consecutive failures the arm is suspended for
//	            2^level iterations (level = consecutive circuit openings,
//	            capped at MaxExponent) and masked from the inner selector.
//	half-open — once the suspension elapses, the next Select force-probes
//	            the arm exactly once. A successful probe closes the
//	            circuit (level resets); a failed probe re-opens it with
//	            the backoff doubled.
//
// The cap on the backoff preserves the paper's strictly-positive-weight
// invariant in the failure domain: no arm is ever permanently excluded —
// a persistently failing arm is still probed every 2^MaxExponent
// iterations, so an algorithm whose crashes were environmental (e.g. a
// transient resource exhaustion) can rejoin.
//
// Quarantine only reacts to ReportFailure; used without a guard it is a
// transparent pass-through.
type Quarantine struct {
	// K is the number of consecutive failures that open an arm's circuit.
	K int
	// MaxExponent caps the backoff exponent (suspension ≤ 2^MaxExponent
	// iterations).
	MaxExponent int

	inner    nominal.Selector
	iter     int
	arms     []qarm
	reprobes int // cumulative forced re-probes of suspended arms
}

type qarm struct {
	consecutive    int  // consecutive failures, reset by any success
	level          int  // current backoff exponent, reset by any success
	trips          int  // cumulative circuit openings (never reset)
	open           bool // circuit open
	suspendedUntil int  // masked while iter <= suspendedUntil
	failureDepth   int  // ReportFailure calls whose penalty Report is still due
}

// NewQuarantine decorates inner with the default circuit-breaker
// parameters. Adjust K / MaxExponent before Init.
func NewQuarantine(inner nominal.Selector) *Quarantine {
	if inner == nil {
		panic("guard: NewQuarantine with nil inner selector")
	}
	return &Quarantine{K: DefaultQuarantineK, MaxExponent: DefaultMaxBackoffExp, inner: inner}
}

// Name returns e.g. "quarantine(egreedy(10%))".
func (q *Quarantine) Name() string { return "quarantine(" + q.inner.Name() + ")" }

// Inner exposes the wrapped selector.
func (q *Quarantine) Inner() nominal.Selector { return q.inner }

// Init prepares the decorator and the inner selector for n arms.
func (q *Quarantine) Init(n int) {
	if q.K < 1 {
		q.K = DefaultQuarantineK
	}
	if q.MaxExponent < 1 {
		q.MaxExponent = DefaultMaxBackoffExp
	}
	q.inner.Init(n)
	q.arms = make([]qarm, n)
	q.iter = 0
}

// suspended reports whether arm is currently masked.
func (q *Quarantine) suspended(arm int) bool {
	a := &q.arms[arm]
	return a.open && q.iter <= a.suspendedUntil
}

// Select returns the arm to run: a due re-probe if one exists, otherwise
// the inner selector's choice with suspended arms masked out.
func (q *Quarantine) Select(r *rand.Rand) int {
	return q.selectWith(r, func() int { return q.inner.Select(r) })
}

// SelectInFlight is Select with the inner selector's draw made in-flight
// aware (when it supports nominal.InFlightAware); the circuit-breaker
// probe and masking logic is identical. The concurrent trial engine
// calls this under its lock — Quarantine itself has no internal
// synchronization.
func (q *Quarantine) SelectInFlight(r *rand.Rand, inFlight []int) int {
	return q.selectWith(r, func() int {
		if ia, ok := q.inner.(nominal.InFlightAware); ok {
			return ia.SelectInFlight(r, inFlight)
		}
		return q.inner.Select(r)
	})
}

// selectWith implements the circuit-breaker selection around an
// arbitrary inner draw.
func (q *Quarantine) selectWith(r *rand.Rand, draw func() int) int {
	if q.arms == nil {
		panic("guard: Quarantine used before Init")
	}
	q.iter++

	// A suspension that has elapsed forces exactly one probe of that arm
	// (earliest-due first), making the re-probe schedule deterministic.
	probe, probeDue := -1, 0
	for i := range q.arms {
		a := &q.arms[i]
		if a.open && q.iter > a.suspendedUntil && (probe < 0 || a.suspendedUntil < probeDue) {
			probe, probeDue = i, a.suspendedUntil
		}
	}
	if probe >= 0 {
		q.reprobes++
		return probe
	}

	// Mask suspended arms from the inner selector by redrawing.
	attempts := 2*len(q.arms) + 2
	for i := 0; i < attempts; i++ {
		if a := draw(); !q.suspended(a) {
			return a
		}
	}
	// The inner selector is stuck on suspended arms (e.g. a greedy
	// incumbent under suspension): pick uniformly among healthy arms.
	healthy := make([]int, 0, len(q.arms))
	for i := range q.arms {
		if !q.suspended(i) {
			healthy = append(healthy, i)
		}
	}
	if len(healthy) > 0 {
		return healthy[r.Intn(len(healthy))]
	}
	// Every arm is suspended: run the one whose suspension expires
	// soonest (liveness — the loop must measure something).
	soonest := 0
	for i := range q.arms {
		if q.arms[i].suspendedUntil < q.arms[soonest].suspendedUntil {
			soonest = i
		}
	}
	return soonest
}

// Report records a measurement. A report not preceded by ReportFailure is
// a success and closes the arm's circuit; either way the value (the
// penalty, for failures) is forwarded to the inner selector so it also
// learns to avoid failing arms.
//
// The failure bookkeeping is a depth counter, not a flag: under the
// concurrent trial engine several failed trials of the same arm can be
// in flight at once, so their ReportFailure/Report pairs interleave —
// each Report consumes exactly one outstanding failure, and only a
// Report with none outstanding is a success.
func (q *Quarantine) Report(arm int, v float64) {
	if q.arms == nil {
		panic("guard: Quarantine used before Init")
	}
	a := &q.arms[arm]
	if a.failureDepth > 0 {
		a.failureDepth--
	} else {
		a.consecutive = 0
		a.level = 0
		a.open = false
		a.suspendedUntil = 0
	}
	q.inner.Report(arm, v)
}

// ReportFailure records that arm's pending measurement failed. After K
// consecutive failures the arm's circuit opens (or re-opens, from a
// failed probe) with exponentially growing suspension.
func (q *Quarantine) ReportFailure(arm int, _ Failure) {
	if q.arms == nil {
		panic("guard: Quarantine used before Init")
	}
	a := &q.arms[arm]
	a.failureDepth++
	a.consecutive++
	if a.consecutive < q.K {
		return
	}
	a.open = true
	a.trips++
	if a.level < q.MaxExponent {
		a.level++
	}
	a.suspendedUntil = q.iter + (1 << a.level)
}

// Suspended reports whether arm is currently masked from selection.
func (q *Quarantine) Suspended(arm int) bool { return q.suspended(arm) }

// Trips returns the cumulative number of times arm's circuit has opened.
func (q *Quarantine) Trips(arm int) int { return q.arms[arm].trips }

// Reprobes returns the cumulative number of forced re-probes: selections
// where an elapsed suspension overrode the inner selector to test a
// quarantined arm's recovery.
func (q *Quarantine) Reprobes() int { return q.reprobes }

// Decay forwards a drift discount to the inner selector. The circuit
// breaker's own state is deliberately untouched: a cost-distribution
// shift says nothing about whether an arm still crashes, so failure
// streaks and open circuits survive the reset.
func (q *Quarantine) Decay(keep float64) {
	if d, ok := q.inner.(nominal.Decayable); ok {
		d.Decay(keep)
	}
}

// Open reports whether arm's circuit is currently open (suspended or
// awaiting its re-probe).
func (q *Quarantine) Open(arm int) bool { return q.arms[arm].open }
