package guard

import (
	"math/rand"
	"testing"

	"repro/internal/nominal"
)

// stubSelector always proposes the same arm and records every report —
// the worst case for masking (a greedy selector stuck on a quarantined
// incumbent).
type stubSelector struct {
	favourite int
	n         int
	reports   []float64
	arms      []int
}

func (s *stubSelector) Name() string          { return "stub" }
func (s *stubSelector) Init(n int)            { s.n = n }
func (s *stubSelector) Select(*rand.Rand) int { return s.favourite }
func (s *stubSelector) Report(arm int, v float64) {
	s.arms = append(s.arms, arm)
	s.reports = append(s.reports, v)
}

func TestQuarantineBackoffAndReprobeSchedule(t *testing.T) {
	inner := &stubSelector{favourite: 1}
	q := NewQuarantine(inner)
	q.K = 2
	q.Init(2)
	r := rand.New(rand.NewSource(1))

	fail := func(arm int) {
		q.ReportFailure(arm, Failure{Kind: Panic, Algo: arm})
		q.Report(arm, 100) // the penalty report that follows every failure
	}
	ok := func(arm int) { q.Report(arm, 1) }

	// Scripted schedule with K=2 and the inner selector pinned on arm 1,
	// which fails until the second probe:
	//
	//	iter  1: arm 1, fail (1 consecutive)
	//	iter  2: arm 1, fail → trip #1, suspended 2^1 = 2 iterations
	//	iter  3: arm 0 (1 masked)      iter 4: arm 0 (1 masked)
	//	iter  5: forced re-probe of 1, fail → trip #2, suspended 2^2 = 4
	//	iter  6–9: arm 0 (1 masked)
	//	iter 10: forced re-probe of 1, success → circuit closes
	//	iter 11: arm 1 again (inner's favourite, no longer masked)
	want := []int{1, 1, 0, 0, 1, 0, 0, 0, 0, 1, 1}
	outcome := map[int]func(int){ // iteration → reporter
		1: fail, 2: fail, 5: fail,
	}
	for i, w := range want {
		iter := i + 1
		got := q.Select(r)
		if got != w {
			t.Fatalf("iteration %d selected arm %d, want %d", iter, got, w)
		}
		if rep, special := outcome[iter]; special {
			rep(got)
		} else {
			ok(got)
		}
	}
	if q.Trips(1) != 2 {
		t.Errorf("arm 1 tripped %d times, want 2", q.Trips(1))
	}
	if q.Open(1) || q.Suspended(1) {
		t.Error("successful probe did not close the circuit")
	}
	// Every report (including penalties) must reach the inner selector.
	if len(inner.reports) != len(want) {
		t.Errorf("inner selector saw %d reports, want %d", len(inner.reports), len(want))
	}
}

func TestQuarantineTransparentWithoutFailures(t *testing.T) {
	q := NewQuarantine(nominal.NewRoundRobin())
	q.Init(3)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 9; i++ {
		arm := q.Select(r)
		if arm != i%3 {
			t.Fatalf("iteration %d: arm %d, want round-robin %d", i, arm, i%3)
		}
		q.Report(arm, float64(arm+1))
	}
	if q.Name() != "quarantine(round-robin)" {
		t.Errorf("Name = %q", q.Name())
	}
	if q.Inner().Name() != "round-robin" {
		t.Errorf("Inner = %q", q.Inner().Name())
	}
}

func TestQuarantineNoPermanentExclusion(t *testing.T) {
	// The paper's invariant, extended to failures: even an arm that fails
	// on every single measurement keeps being probed — with gaps bounded
	// by the backoff cap — so it is never permanently excluded.
	inner := nominal.NewEpsilonGreedy(0.10)
	q := NewQuarantine(inner)
	q.K = 1
	q.MaxExponent = 4 // cap: suspensions of at most 16 iterations
	q.Init(3)
	r := rand.New(rand.NewSource(7))

	const iters = 2000
	const faulty = 2
	last, maxGap, selections := 0, 0, 0
	for i := 1; i <= iters; i++ {
		arm := q.Select(r)
		if arm == faulty {
			if gap := i - last; gap > maxGap {
				maxGap = gap
			}
			last = i
			selections++
			q.ReportFailure(faulty, Failure{Kind: Timeout, Algo: faulty})
			q.Report(faulty, 1000)
			continue
		}
		q.Report(arm, float64(arm+1))
	}
	if selections == 0 {
		t.Fatal("always-failing arm was never selected")
	}
	// Gap bound: suspension ≤ 2^4 = 16, probe on the following iteration.
	if maxGap > 17 {
		t.Errorf("max gap between selections of the failing arm = %d, want ≤ 17", maxGap)
	}
	if min := iters / 20; selections < min {
		t.Errorf("failing arm selected %d times in %d iterations, want ≥ %d (cap-bounded probing)", selections, iters, min)
	}
	if q.Trips(faulty) != selections {
		t.Errorf("with K=1 every selection must trip: trips=%d selections=%d", q.Trips(faulty), selections)
	}
	// The healthy arms keep the bulk of the traffic.
	if selections > iters/4 {
		t.Errorf("failing arm got %d of %d selections — quarantine not suppressing", selections, iters)
	}
}

func TestQuarantineAllArmsSuspended(t *testing.T) {
	// When every arm is suspended the loop must still run something: the
	// arm whose suspension expires soonest.
	q := NewQuarantine(nominal.NewRoundRobin())
	q.K = 1
	q.Init(2)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2; i++ {
		arm := q.Select(r)
		q.ReportFailure(arm, Failure{Kind: Panic, Algo: arm})
		q.Report(arm, 100)
	}
	// Both circuits are now open; Select must still return a valid arm.
	arm := q.Select(r)
	if arm < 0 || arm > 1 {
		t.Fatalf("Select returned %d with all arms suspended", arm)
	}
	q.Report(arm, 1)
}

func TestQuarantineGreedyInnerMasked(t *testing.T) {
	// A greedy inner selector stuck on a suspended favourite must be
	// redirected to a healthy arm, not loop forever.
	inner := &stubSelector{favourite: 0}
	q := NewQuarantine(inner)
	q.K = 1
	q.MaxExponent = 6
	q.Init(3)
	r := rand.New(rand.NewSource(3))

	arm := q.Select(r)
	q.ReportFailure(arm, Failure{Kind: Panic, Algo: arm})
	q.Report(arm, 100)
	if !q.Suspended(0) {
		t.Fatal("arm 0 not suspended after K=1 failure")
	}
	for i := 0; i < 2; i++ { // within the 2-iteration suspension window
		if got := q.Select(r); got == 0 {
			t.Fatalf("suspended arm selected while masked (iteration %d)", i)
		} else {
			q.Report(got, 1)
		}
	}
}

func TestQuarantineMisusePanics(t *testing.T) {
	q := NewQuarantine(nominal.NewRoundRobin())
	for name, fn := range map[string]func(){
		"Select": func() { q.Select(rand.New(rand.NewSource(1))) },
		"Report": func() { q.Report(0, 1) },
		"ReportFailure": func() {
			q.ReportFailure(0, Failure{})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s before Init did not panic", name)
				}
			}()
			fn()
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewQuarantine(nil) did not panic")
			}
		}()
		NewQuarantine(nil)
	}()
}
