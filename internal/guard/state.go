package guard

import (
	"encoding/json"
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/nominal"
)

// guardState is the serialized form of a Guard's counters. The worst
// valid observation is the load-bearing field: it determines the penalty
// substituted for failed measurements, so a restored tuner must compute
// the same penalties the crashed one would have.
type guardState struct {
	Worst    checkpoint.F `json:"worst"`
	Total    int          `json:"total"`
	Failures int          `json:"failures"`
	Kinds    []int        `json:"kinds"`
	PerAlgo  [][2]int     `json:"per_algo"` // [total, failed] per algorithm
}

// Export serializes the guard's penalty state and counters.
func (g *Guard) Export() ([]byte, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := guardState{
		Worst:    checkpoint.F(g.worst),
		Total:    g.total,
		Failures: g.failures,
		Kinds:    make([]int, numKinds),
		PerAlgo:  make([][2]int, len(g.perAlgo)),
	}
	for i := range g.kinds {
		st.Kinds[i] = g.kinds[i]
	}
	for i, a := range g.perAlgo {
		st.PerAlgo[i] = [2]int{a.total, a.failed}
	}
	return json.Marshal(st)
}

// Restore overwrites the guard's penalty state and counters.
func (g *Guard) Restore(data []byte) error {
	var st guardState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	if len(st.Kinds) > int(numKinds) {
		return fmt.Errorf("guard: Restore has %d failure kinds, this build knows %d", len(st.Kinds), numKinds)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.worst = float64(st.Worst)
	g.total = st.Total
	g.failures = st.Failures
	g.kinds = [numKinds]int{}
	copy(g.kinds[:], st.Kinds)
	g.perAlgo = make([]algoStats, len(st.PerAlgo))
	for i, a := range st.PerAlgo {
		g.perAlgo[i] = algoStats{total: a[0], failed: a[1]}
	}
	return nil
}

// KindFromString parses the String() form of a failure Kind, as stored
// in checkpoint journal records.
func KindFromString(s string) (Kind, bool) {
	switch s {
	case "panic":
		return Panic, true
	case "timeout":
		return Timeout, true
	case "invalid":
		return Invalid, true
	}
	return 0, false
}

// quarantineState is the serialized form of the circuit breaker,
// including the inner selector's state (which must be Stateful).
type quarantineState struct {
	Iter  int             `json:"iter"`
	Arms  []qarmState     `json:"arms"`
	Inner json.RawMessage `json:"inner"`
}

// qarmState keeps both failure-bookkeeping encodings: FailureDepth is
// the current counter (format version 2, supports multiple failed trials
// in flight); FailurePending is the version-1 flag, still written so old
// readers decode new snapshots, and still read so new code restores old
// snapshots (a true flag becomes depth 1 — a sequential tuner never had
// more than one outstanding).
type qarmState struct {
	Consecutive    int  `json:"consecutive"`
	Level          int  `json:"level"`
	Trips          int  `json:"trips"`
	Open           bool `json:"open"`
	SuspendedUntil int  `json:"suspended_until"`
	FailurePending bool `json:"failure_pending"`
	FailureDepth   int  `json:"failure_depth,omitempty"`
}

// Export serializes the circuit-breaker state and chains the inner
// selector's export.
func (q *Quarantine) Export() ([]byte, error) {
	if q.arms == nil {
		return nil, fmt.Errorf("guard: Quarantine.Export before Init")
	}
	s, ok := q.inner.(nominal.Stateful)
	if !ok {
		return nil, fmt.Errorf("guard: quarantined selector %s is not Stateful", q.inner.Name())
	}
	inner, err := s.Export()
	if err != nil {
		return nil, err
	}
	st := quarantineState{Iter: q.iter, Arms: make([]qarmState, len(q.arms)), Inner: inner}
	for i, a := range q.arms {
		st.Arms[i] = qarmState{
			Consecutive: a.consecutive, Level: a.level, Trips: a.trips,
			Open: a.open, SuspendedUntil: a.suspendedUntil,
			FailurePending: a.failureDepth > 0, FailureDepth: a.failureDepth,
		}
	}
	return json.Marshal(st)
}

// Restore overwrites the state of an Init'ed Quarantine, including the
// inner selector.
func (q *Quarantine) Restore(data []byte) error {
	if q.arms == nil {
		return fmt.Errorf("guard: Quarantine.Restore before Init")
	}
	var st quarantineState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	if len(st.Arms) != len(q.arms) {
		return fmt.Errorf("guard: Quarantine.Restore has %d arms, selector has %d", len(st.Arms), len(q.arms))
	}
	s, ok := q.inner.(nominal.Stateful)
	if !ok {
		return fmt.Errorf("guard: quarantined selector %s is not Stateful", q.inner.Name())
	}
	if err := s.Restore(st.Inner); err != nil {
		return err
	}
	q.iter = st.Iter
	for i, a := range st.Arms {
		depth := a.FailureDepth
		if depth == 0 && a.FailurePending {
			depth = 1
		}
		q.arms[i] = qarm{
			consecutive: a.Consecutive, level: a.Level, trips: a.Trips,
			open: a.Open, suspendedUntil: a.SuspendedUntil, failureDepth: depth,
		}
	}
	return nil
}
