package guard

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/nominal"
	"repro/internal/param"
)

// buildGuardState drives a guard through successes and every failure
// kind so all counters are non-trivial.
func buildGuardState(t *testing.T) *Guard {
	t.Helper()
	g := New(WithTimeout(20 * time.Millisecond))
	good := func(algo int, _ param.Config) float64 { return float64(10 + algo) }
	for algo := 0; algo < 3; algo++ {
		if _, f := g.Invoke(good, algo, nil); f != nil {
			t.Fatalf("clean call failed: %v", f)
		}
	}
	g.Invoke(func(int, param.Config) float64 { panic("boom") }, 1, nil)
	g.Invoke(func(int, param.Config) float64 { return math.NaN() }, 2, nil)
	g.Invoke(func(int, param.Config) float64 {
		time.Sleep(100 * time.Millisecond)
		return 1
	}, 0, nil)
	return g
}

func TestGuardStateRoundTrip(t *testing.T) {
	a := buildGuardState(t)
	data, err := a.Export()
	if err != nil {
		t.Fatal(err)
	}
	b := New(WithTimeout(20 * time.Millisecond))
	if err := b.Restore(data); err != nil {
		t.Fatal(err)
	}
	sa, sb := a.Stats(), b.Stats()
	if sa.Total != sb.Total || sa.Failures != sb.Failures ||
		sa.Panics != sb.Panics || sa.Timeouts != sb.Timeouts || sa.Invalids != sb.Invalids ||
		sa.Worst != sb.Worst {
		t.Errorf("stats diverged: %+v vs %+v", sa, sb)
	}
	if len(sa.PerAlgoMeasurements) != len(sb.PerAlgoMeasurements) {
		t.Fatalf("per-algo sizes diverged: %d vs %d", len(sa.PerAlgoMeasurements), len(sb.PerAlgoMeasurements))
	}
	for i := range sa.PerAlgoMeasurements {
		if sa.PerAlgoMeasurements[i] != sb.PerAlgoMeasurements[i] || sa.PerAlgoFailures[i] != sb.PerAlgoFailures[i] {
			t.Errorf("algo %d counters diverged", i)
		}
	}
	// The penalty is derived from worst — the load-bearing field.
	if a.Penalty() != b.Penalty() {
		t.Errorf("penalty diverged: %g vs %g", a.Penalty(), b.Penalty())
	}
}

func TestGuardRestoreRejectsBadState(t *testing.T) {
	g := New()
	if err := g.Restore([]byte(`{`)); err == nil {
		t.Error("restoring truncated JSON succeeded")
	}
	if err := g.Restore([]byte(`{"kinds":[1,2,3,4,5,6,7]}`)); err == nil {
		t.Error("restoring more failure kinds than this build knows succeeded")
	}
}

func TestKindFromString(t *testing.T) {
	for _, k := range []Kind{Panic, Timeout, Invalid} {
		got, ok := KindFromString(k.String())
		if !ok || got != k {
			t.Errorf("KindFromString(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := KindFromString("meteor"); ok {
		t.Error("unknown kind parsed")
	}
}

func TestQuarantineStateRoundTrip(t *testing.T) {
	const arms = 3
	mkQ := func() *Quarantine {
		q := NewQuarantine(nominal.NewEpsilonGreedy(0.2))
		q.K = 2
		q.Init(arms)
		return q
	}
	a := mkQ()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 60; i++ {
		arm := a.Select(rng)
		if arm == 2 {
			a.ReportFailure(arm, Failure{Kind: Panic, Algo: arm})
			a.Report(arm, 100) // penalty value, as the tuner reports it
		} else {
			a.Report(arm, float64(arm+1))
		}
	}
	data, err := a.Export()
	if err != nil {
		t.Fatal(err)
	}

	b := mkQ()
	if err := b.Restore(data); err != nil {
		t.Fatal(err)
	}
	for arm := 0; arm < arms; arm++ {
		if a.Open(arm) != b.Open(arm) || a.Trips(arm) != b.Trips(arm) || a.Suspended(arm) != b.Suspended(arm) {
			t.Errorf("arm %d circuit state diverged", arm)
		}
	}
	// Same streams, same future decisions — including backoff expiry and
	// re-probes of the tripped arm.
	rngA := rand.New(rand.NewSource(11))
	rngB := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		armA, armB := a.Select(rngA), b.Select(rngB)
		if armA != armB {
			t.Fatalf("selection %d diverged: %d vs %d", i, armA, armB)
		}
		if armA == 2 {
			a.ReportFailure(armA, Failure{Kind: Timeout, Algo: armA})
			b.ReportFailure(armB, Failure{Kind: Timeout, Algo: armB})
			a.Report(armA, 100)
			b.Report(armB, 100)
		} else {
			a.Report(armA, float64(armA+1))
			b.Report(armB, float64(armB+1))
		}
	}
}

func TestQuarantineRestoreRejectsBadState(t *testing.T) {
	q := NewQuarantine(nominal.NewEpsilonGreedy(0.2))
	if err := q.Restore([]byte(`{}`)); err == nil {
		t.Error("Restore before Init succeeded")
	}
	q.Init(3)
	if err := q.Restore([]byte(`{`)); err == nil {
		t.Error("restoring truncated JSON succeeded")
	}
	big := NewQuarantine(nominal.NewEpsilonGreedy(0.2))
	big.Init(5)
	data, err := big.Export()
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Restore(data); err == nil {
		t.Error("restoring a 5-arm quarantine into 3 arms succeeded")
	}
}
