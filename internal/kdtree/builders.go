package kdtree

import (
	"fmt"
	"sync"

	"repro/internal/geom"
)

// A Builder constructs a kD-tree over a triangle slice. Builders are
// stateless; their Build methods are safe for concurrent use.
type Builder interface {
	// Name identifies the construction algorithm as in the paper's
	// figures: Inplace, Lazy, Nested, Wald-Havran.
	Name() string
	// Build constructs the tree.
	Build(tris []geom.Triangle, p Params) *Tree
}

// NewBuilder returns the named builder: Inplace, Lazy, Nested, or
// Wald-Havran.
func NewBuilder(name string) (Builder, error) {
	switch name {
	case "Inplace":
		return InplaceBuilder{}, nil
	case "Lazy":
		return LazyBuilder{}, nil
	case "Nested":
		return NestedBuilder{}, nil
	case "Wald-Havran":
		return WaldHavranBuilder{}, nil
	default:
		return nil, fmt.Errorf("kdtree: unknown builder %q", name)
	}
}

// BuilderNames lists the four construction algorithms in the paper's
// order.
func BuilderNames() []string {
	return []string{"Inplace", "Lazy", "Nested", "Wald-Havran"}
}

// AllBuilders returns one instance of each builder in BuilderNames order.
func AllBuilders() []Builder {
	return []Builder{InplaceBuilder{}, LazyBuilder{}, NestedBuilder{}, WaldHavranBuilder{}}
}

// newTree sets up the shared tree skeleton.
func newTree(builder string, tris []geom.Triangle, p Params) (*Tree, []int32) {
	t := &Tree{Builder: builder, Tris: tris, params: p.sanitize(len(tris))}
	idx := make([]int32, len(tris))
	b := geom.EmptyAABB()
	for i := range tris {
		idx[i] = int32(i)
		b = b.Union(tris[i].Bounds())
	}
	t.Bounds = b
	return t, idx
}

// buildOpts selects the parallelization/deferral behaviour of the shared
// binned recursion.
type buildOpts struct {
	// tasks enables node-task parallelism down to Params.ParallelDepth.
	tasks bool
	// dataParallel enables parallel binning inside a node.
	dataParallel bool
	// lazyCutoff > 0 defers subtrees holding at most that many primitives.
	lazyCutoff int
}

// buildBinnedInto builds a binned-SAH subtree into node n.
func buildBinnedInto(n *Node, tris []geom.Triangle, idx []int32, nb geom.AABB, depth int, p Params, o buildOpts) {
	if len(idx) <= p.LeafSize || depth >= p.MaxDepth {
		makeLeaf(n, idx)
		return
	}
	if o.lazyCutoff > 0 && depth > 0 && len(idx) <= o.lazyCutoff {
		n.lazy = true
		n.pending = idx
		n.bounds = nb
		n.depth = depth
		n.Axis = -1
		return
	}
	workers := 1
	if o.dataParallel {
		workers = p.Workers
	}
	s, ok := bestSplitBinned(tris, idx, nb, p, workers)
	if !ok || s.cost >= leafCost(len(idx), p) {
		makeLeaf(n, idx)
		return
	}
	left, right := partition(tris, idx, s)
	if len(left) == len(idx) && len(right) == len(idx) {
		makeLeaf(n, idx)
		return
	}
	lb, rb := nb, nb
	lb.Max = lb.Max.SetAxis(s.axis, s.pos)
	rb.Min = rb.Min.SetAxis(s.axis, s.pos)

	n.Axis = s.axis
	n.Split = s.pos
	n.Left = &Node{}
	n.Right = &Node{}
	if o.tasks && depth < p.ParallelDepth {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			buildBinnedInto(n.Left, tris, left, lb, depth+1, p, o)
		}()
		buildBinnedInto(n.Right, tris, right, rb, depth+1, p, o)
		wg.Wait()
	} else {
		buildBinnedInto(n.Left, tris, left, lb, depth+1, p, o)
		buildBinnedInto(n.Right, tris, right, rb, depth+1, p, o)
	}
}

func makeLeaf(n *Node, idx []int32) {
	n.Axis = -1
	n.Tris = idx
}

// InplaceBuilder is the paper's "Inplace" construction algorithm: a
// binned-SAH build whose parallelism comes from data parallelism inside
// each node (parallel binning over primitive chunks), not from node tasks.
// The recursion itself is sequential, mirroring the original's in-place,
// data-parallel design.
type InplaceBuilder struct{}

// Name returns "Inplace".
func (InplaceBuilder) Name() string { return "Inplace" }

// Build constructs the tree.
func (InplaceBuilder) Build(tris []geom.Triangle, p Params) *Tree {
	t, idx := newTree("Inplace", tris, p)
	t.Root = &Node{}
	buildBinnedInto(t.Root, tris, idx, t.Bounds, 0, t.params, buildOpts{dataParallel: true})
	return t
}

// LazyBuilder is the paper's "Lazy" construction algorithm: the top of the
// tree is built eagerly (with node tasks), but subtrees at or below the
// EagerCutoff primitive count are deferred and constructed on first
// traversal. The tuner's measured frame time therefore includes whatever
// lazy construction the frame's rays actually trigger.
type LazyBuilder struct{}

// Name returns "Lazy".
func (LazyBuilder) Name() string { return "Lazy" }

// Build constructs the (partially deferred) tree.
func (LazyBuilder) Build(tris []geom.Triangle, p Params) *Tree {
	t, idx := newTree("Lazy", tris, p)
	t.Root = &Node{}
	buildBinnedInto(t.Root, tris, idx, t.Bounds, 0, t.params,
		buildOpts{tasks: true, lazyCutoff: t.params.EagerCutoff})
	return t
}

// NestedBuilder is the paper's "Nested" construction algorithm: nested
// parallelism combining node tasks (like Wald-Havran) with data-parallel
// binning inside large nodes (like Inplace).
type NestedBuilder struct{}

// Name returns "Nested".
func (NestedBuilder) Name() string { return "Nested" }

// Build constructs the tree.
func (NestedBuilder) Build(tris []geom.Triangle, p Params) *Tree {
	t, idx := newTree("Nested", tris, p)
	t.Root = &Node{}
	buildBinnedInto(t.Root, tris, idx, t.Bounds, 0, t.params,
		buildOpts{tasks: true, dataParallel: true})
	return t
}

// WaldHavranBuilder is the paper's "Wald-Havran" construction algorithm:
// the exact O(n log n) sweep-SAH build, parallelized by mapping tree nodes
// to tasks (goroutines) down to the tunable parallelization depth.
type WaldHavranBuilder struct{}

// Name returns "Wald-Havran".
func (WaldHavranBuilder) Name() string { return "Wald-Havran" }

// Build constructs the tree.
func (WaldHavranBuilder) Build(tris []geom.Triangle, p Params) *Tree {
	t, idx := newTree("Wald-Havran", tris, p)
	t.Root = &Node{}
	buildSweepInto(t.Root, tris, idx, t.Bounds, 0, t.params)
	return t
}

func buildSweepInto(n *Node, tris []geom.Triangle, idx []int32, nb geom.AABB, depth int, p Params) {
	if len(idx) <= p.LeafSize || depth >= p.MaxDepth {
		makeLeaf(n, idx)
		return
	}
	s, ok := bestSplitSweep(tris, idx, nb, p)
	if !ok || s.cost >= leafCost(len(idx), p) {
		makeLeaf(n, idx)
		return
	}
	left, right := partition(tris, idx, s)
	if len(left) == len(idx) && len(right) == len(idx) {
		makeLeaf(n, idx)
		return
	}
	lb, rb := nb, nb
	lb.Max = lb.Max.SetAxis(s.axis, s.pos)
	rb.Min = rb.Min.SetAxis(s.axis, s.pos)

	n.Axis = s.axis
	n.Split = s.pos
	n.Left = &Node{}
	n.Right = &Node{}
	if depth < p.ParallelDepth {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			buildSweepInto(n.Left, tris, left, lb, depth+1, p)
		}()
		buildSweepInto(n.Right, tris, right, rb, depth+1, p)
		wg.Wait()
	} else {
		buildSweepInto(n.Left, tris, left, lb, depth+1, p)
		buildSweepInto(n.Right, tris, right, rb, depth+1, p)
	}
}
