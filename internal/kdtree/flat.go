package kdtree

import (
	"math"

	"repro/internal/geom"
)

// FlatTree is a pointer-free encoding of a fully built kD-tree: nodes in
// one contiguous slice (left child adjacent to its parent, right child
// indexed), leaf triangle references in a second. Production raytracers
// ship this layout for cache locality and trivial serialization; the
// BenchmarkFlatVsPointerTraversal ablation quantifies the difference.
// FlatTree is immutable and safe for concurrent use.
type FlatTree struct {
	Tris   []geom.Triangle
	Bounds geom.AABB

	nodes    []flatNode
	leafTris []int32
}

// flatNode is 24 bytes: split plane, right-child index (interior) or leaf
// payload, and the axis tag (-1 for leaves).
type flatNode struct {
	split        float64
	right        int32 // interior: right child index (left is self+1)
	start, count int32 // leaf: range in leafTris
	axis         int8
}

// Flatten converts a tree to the flat encoding, forcing construction of
// any deferred (lazy) subtrees first.
func (t *Tree) Flatten() *FlatTree {
	t.ExpandAll()
	f := &FlatTree{Tris: t.Tris, Bounds: t.Bounds}
	if t.Root != nil {
		f.emit(t.Root)
	}
	return f
}

// emit appends the subtree rooted at n depth-first and returns its index.
func (f *FlatTree) emit(n *Node) int32 {
	idx := int32(len(f.nodes))
	f.nodes = append(f.nodes, flatNode{})
	if n.Leaf() {
		f.nodes[idx] = flatNode{
			axis:  -1,
			start: int32(len(f.leafTris)),
			count: int32(len(n.Tris)),
		}
		f.leafTris = append(f.leafTris, n.Tris...)
		return idx
	}
	f.emit(n.Left) // left lands at idx+1
	right := f.emit(n.Right)
	f.nodes[idx] = flatNode{
		axis:  int8(n.Axis),
		split: n.Split,
		right: right,
	}
	return idx
}

// NodeCount returns the number of encoded nodes.
func (f *FlatTree) NodeCount() int { return len(f.nodes) }

// flatStackItem is one deferred subtree during iterative traversal.
type flatStackItem struct {
	node   int32
	t0, t1 float64
}

// Intersect returns the nearest intersection in (tMin, tMax), equivalent
// to Tree.Intersect.
func (f *FlatTree) Intersect(r geom.Ray, tMin, tMax float64) (Hit, bool) {
	return f.traverse(r, tMin, tMax, false)
}

// Occluded reports whether any triangle blocks the ray in (tMin, tMax).
func (f *FlatTree) Occluded(r geom.Ray, tMin, tMax float64) bool {
	_, hit := f.traverse(r, tMin, tMax, true)
	return hit
}

func (f *FlatTree) traverse(r geom.Ray, tMin, tMax float64, anyHit bool) (Hit, bool) {
	if len(f.nodes) == 0 {
		return Hit{}, false
	}
	t0, t1, ok := f.Bounds.IntersectRay(r, tMin, tMax)
	if !ok {
		return Hit{}, false
	}
	best := Hit{T: tMax}
	found := false
	var stack [64]flatStackItem
	sp := 0
	cur := flatStackItem{node: 0, t0: t0, t1: t1}
	for {
		n := &f.nodes[cur.node]
		if cur.t0 > best.T {
			// Everything in this subtree is behind the incumbent.
			if sp == 0 {
				break
			}
			sp--
			cur = stack[sp]
			continue
		}
		if n.axis < 0 {
			for _, ti := range f.leafTris[n.start : n.start+n.count] {
				if ht, ok := f.Tris[ti].IntersectRay(r, cur.t0-1e-9, best.T); ok {
					best.T = ht
					best.Tri = int(ti)
					found = true
					if anyHit {
						return best, true
					}
				}
			}
			if sp == 0 {
				break
			}
			sp--
			cur = stack[sp]
			continue
		}

		axis := int(n.axis)
		o, d := r.Origin.Axis(axis), r.Dir.Axis(axis)
		near, far := cur.node+1, n.right
		if o > n.split || (o == n.split && d < 0) {
			near, far = far, near
		}
		if d == 0 {
			cur = flatStackItem{node: near, t0: cur.t0, t1: cur.t1}
			continue
		}
		tSplit := (n.split - o) / d
		switch {
		case tSplit >= cur.t1 || tSplit < 0:
			cur = flatStackItem{node: near, t0: cur.t0, t1: cur.t1}
		case tSplit <= cur.t0:
			cur = flatStackItem{node: far, t0: cur.t0, t1: cur.t1}
		default:
			if sp < len(stack) {
				stack[sp] = flatStackItem{node: far, t0: tSplit, t1: cur.t1}
				sp++
			} else {
				// Stack exhaustion cannot happen: depth is bounded by
				// MaxDepth ≤ 8 + 1.3·log₂(n) < 64 for any realistic n,
				// but degrade safely rather than corrupt state.
				h2, f2 := f.traverse(geom.Ray{Origin: r.At(tSplit), Dir: r.Dir}, 0, cur.t1-tSplit, anyHit)
				if f2 && h2.T+tSplit < best.T {
					best = Hit{T: h2.T + tSplit, Tri: h2.Tri}
					found = true
				}
			}
			cur = flatStackItem{node: near, t0: cur.t0, t1: tSplit}
		}
	}
	if !found {
		return Hit{T: math.Inf(1)}, false
	}
	return best, true
}
