package kdtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/scenegen"
)

func TestFlattenPreservesStructure(t *testing.T) {
	tris := scenegen.Cathedral(1).Triangles
	tree := NestedBuilder{}.Build(tris, DefaultParams())
	flat := tree.Flatten()
	s := tree.Stats()
	if flat.NodeCount() != s.Nodes {
		t.Errorf("flat has %d nodes, tree has %d", flat.NodeCount(), s.Nodes)
	}
	if len(flat.leafTris) != s.Tris {
		t.Errorf("flat has %d leaf refs, tree has %d", len(flat.leafTris), s.Tris)
	}
}

func TestFlatTraversalMatchesPointerTree(t *testing.T) {
	tris := scenegen.Cathedral(1).Triangles
	for _, b := range AllBuilders() {
		tree := b.Build(tris, DefaultParams())
		flat := tree.Flatten()
		rays := randomRays(tree.Bounds, 400, 11)
		for _, ray := range rays {
			want, wok := tree.Intersect(ray, 1e-9, 1e9)
			got, gok := flat.Intersect(ray, 1e-9, 1e9)
			if wok != gok || (wok && math.Abs(want.T-got.T) > 1e-9) {
				t.Fatalf("%s: flat traversal disagrees: %v/%v vs %v/%v",
					b.Name(), want, wok, got, gok)
			}
			if tree.Occluded(ray, 1e-9, 1e9) != flat.Occluded(ray, 1e-9, 1e9) {
				t.Fatalf("%s: occlusion disagrees", b.Name())
			}
		}
	}
}

func TestFlattenForcesLazyExpansion(t *testing.T) {
	tris := scenegen.Cathedral(1).Triangles
	p := DefaultParams()
	p.EagerCutoff = 128
	tree := LazyBuilder{}.Build(tris, p)
	if tree.Stats().Pending == 0 {
		t.Skip("lazy tree fully built at this size")
	}
	flat := tree.Flatten()
	if tree.Stats().Pending != 0 {
		t.Error("Flatten left pending subtrees")
	}
	// Flat traversal agrees with brute force.
	rays := randomRays(tree.Bounds, 100, 3)
	for _, ray := range rays {
		want, wok := bruteIntersect(tris, ray, 1e-9, 1e9)
		got, gok := flat.Intersect(ray, 1e-9, 1e9)
		if wok != gok || (wok && math.Abs(want.T-got.T) > 1e-9) {
			t.Fatal("flat lazy traversal mismatch")
		}
	}
}

func TestFlatEmptyScene(t *testing.T) {
	flat := (WaldHavranBuilder{}.Build(nil, DefaultParams())).Flatten()
	if _, hit := flat.Intersect(geom.Ray{Origin: geom.V(0, 0, 0), Dir: geom.V(1, 0, 0)}, 0, 10); hit {
		t.Error("hit in empty flat tree")
	}
	if flat.Occluded(geom.Ray{Origin: geom.V(0, 0, 0), Dir: geom.V(1, 0, 0)}, 0, 10) {
		t.Error("occlusion in empty flat tree")
	}
}

// Property: flat and pointer traversal agree on random scenes and rays.
func TestFlatEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tris := randomTriangles(r, 20+r.Intn(120))
		tree := InplaceBuilder{}.Build(tris, DefaultParams())
		flat := tree.Flatten()
		for k := 0; k < 30; k++ {
			ray := geom.Ray{
				Origin: geom.V(r.Float64()*40-20, r.Float64()*40-20, r.Float64()*40-20),
				Dir:    geom.V(r.Float64()*2-1, r.Float64()*2-1, r.Float64()*2-1).Normalize(),
			}
			want, wok := tree.Intersect(ray, 1e-9, 1e9)
			got, gok := flat.Intersect(ray, 1e-9, 1e9)
			if wok != gok || (wok && math.Abs(want.T-got.T) > 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
