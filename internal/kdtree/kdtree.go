// Package kdtree implements the SAH kD-tree at the heart of the paper's
// second case study, with the four parallel construction algorithms of
// Tillmann et al. ("Online-Autotuning of Parallel SAH kD-Trees", IPDPS
// 2016): Inplace, Lazy, Nested, and Wald-Havran.
//
// All four builders share the surface-area-heuristic cost model; they
// differ in how they find splits (exact sweep vs. binned) and in how they
// map work to threads (goroutines here, OpenMP in the original): node
// tasks in Wald-Havran, data parallelism in Inplace, both in Nested, and
// deferred on-demand construction in Lazy. The SAH parameters and the
// parallelization depth are the tunable parameters exposed to the
// autotuner; Lazy adds the eager-construction cutoff.
package kdtree

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/geom"
)

// Params are the tunable construction parameters. The zero value is not
// valid; use DefaultParams as a baseline (it is the "hand-crafted
// best-practices configuration" the paper's tuner starts from).
type Params struct {
	// TraversalCost is the SAH cost of traversing an interior node,
	// relative to IntersectCost.
	TraversalCost float64
	// IntersectCost is the SAH cost of one ray/triangle test.
	IntersectCost float64
	// LeafSize is the primitive count at or below which a node becomes a
	// leaf without attempting a split.
	LeafSize int
	// MaxDepth caps the tree depth; 0 derives the usual 8 + 1.3·log₂(n).
	MaxDepth int
	// ParallelDepth is the tree depth above which builders may run child
	// subtrees as parallel tasks (0 disables task parallelism).
	ParallelDepth int
	// Bins is the bin count of the binned-SAH builders (Inplace, Nested,
	// Lazy); the Wald-Havran sweep ignores it.
	Bins int
	// Workers bounds data-parallel helpers inside a node (Inplace,
	// Nested); 0 means GOMAXPROCS.
	Workers int
	// EagerCutoff is used by the Lazy builder only: subtrees holding at
	// most this many primitives are deferred and built on first traversal.
	EagerCutoff int
}

// DefaultParams returns the hand-crafted baseline configuration.
func DefaultParams() Params {
	return Params{
		TraversalCost: 1.0,
		IntersectCost: 1.5,
		LeafSize:      8,
		MaxDepth:      0,
		ParallelDepth: 3,
		Bins:          32,
		Workers:       0,
		EagerCutoff:   512,
	}
}

// sanitize clamps parameters to safe values.
func (p Params) sanitize(n int) Params {
	if p.TraversalCost <= 0 {
		p.TraversalCost = 1
	}
	if p.IntersectCost <= 0 {
		p.IntersectCost = 1
	}
	if p.LeafSize < 1 {
		p.LeafSize = 1
	}
	if p.MaxDepth <= 0 {
		d := 8
		if n > 0 {
			d = int(8 + 1.3*math.Log2(float64(n)))
		}
		p.MaxDepth = d
	}
	if p.Bins < 2 {
		p.Bins = 2
	}
	if p.Bins > 256 {
		p.Bins = 256
	}
	if p.Workers <= 0 {
		p.Workers = runtime.GOMAXPROCS(0)
	}
	if p.ParallelDepth < 0 {
		p.ParallelDepth = 0
	}
	if p.EagerCutoff < 0 {
		p.EagerCutoff = 0
	}
	return p
}

// Node is one kD-tree node. Interior nodes split space at Split along
// Axis; leaves hold triangle indices. A node built by the Lazy builder may
// instead hold a deferred primitive set that is expanded on first use.
type Node struct {
	// Axis is 0, 1, or 2 for interior nodes and -1 for leaves.
	Axis int
	// Split is the splitting plane coordinate (interior nodes).
	Split float64
	// Left and Right are the children (interior nodes).
	Left, Right *Node
	// Tris holds the leaf's triangle indices.
	Tris []int32

	// Deferred state for the Lazy builder. lazy is immutable after
	// construction; all access to a deferred node's contents goes through
	// once.Do, whose memory ordering makes the expansion visible to every
	// traversing goroutine.
	lazy    bool
	pending []int32
	bounds  geom.AABB
	depth   int
	once    sync.Once
}

// Leaf reports whether the node is (currently) a leaf.
func (n *Node) Leaf() bool { return n.Axis < 0 }

// Tree is an immutable (after construction, except for lazy expansion)
// kD-tree over a triangle slice. The triangle slice is referenced, not
// copied; it must not be mutated while the tree is in use.
type Tree struct {
	// Builder is the name of the algorithm that built the tree.
	Builder string
	Tris    []geom.Triangle
	Bounds  geom.AABB
	Root    *Node

	params Params // retained for lazy expansion
}

// Hit is a successful ray/scene intersection.
type Hit struct {
	// T is the ray parameter of the nearest intersection.
	T float64
	// Tri is the index of the intersected triangle.
	Tri int
}

// Intersect returns the nearest intersection of the ray with the scene in
// (tMin, tMax). It is safe for concurrent use, including on lazily built
// trees (expansion is synchronized per node).
func (t *Tree) Intersect(r geom.Ray, tMin, tMax float64) (Hit, bool) {
	t0, t1, ok := t.Bounds.IntersectRay(r, tMin, tMax)
	if !ok || t.Root == nil {
		return Hit{}, false
	}
	best := Hit{T: tMax}
	found := t.walk(t.Root, r, t0, t1, &best, false)
	return best, found
}

// Occluded reports whether any triangle blocks the ray in (tMin, tMax) —
// the cheap any-hit query used for ambient-occlusion rays.
func (t *Tree) Occluded(r geom.Ray, tMin, tMax float64) bool {
	t0, t1, ok := t.Bounds.IntersectRay(r, tMin, tMax)
	if !ok || t.Root == nil {
		return false
	}
	h := Hit{T: tMax}
	return t.walk(t.Root, r, t0, t1, &h, true)
}

// walk recursively traverses the node over the ray interval [t0, t1].
// With anyHit it returns on the first intersection found.
func (t *Tree) walk(n *Node, r geom.Ray, t0, t1 float64, best *Hit, anyHit bool) bool {
	if t0 > best.T {
		return false
	}
	n = t.expand(n)
	if n.Leaf() {
		found := false
		for _, ti := range n.Tris {
			if ht, ok := t.Tris[ti].IntersectRay(r, t0-1e-9, best.T); ok {
				best.T = ht
				best.Tri = int(ti)
				found = true
				if anyHit {
					return true
				}
			}
		}
		return found
	}

	o := r.Origin.Axis(n.Axis)
	d := r.Dir.Axis(n.Axis)
	near, far := n.Left, n.Right
	if o > n.Split || (o == n.Split && d < 0) {
		near, far = far, near
	}
	if d == 0 {
		// The ray never crosses the plane: only the near side matters.
		return t.walk(near, r, t0, t1, best, anyHit)
	}
	tSplit := (n.Split - o) / d
	switch {
	case tSplit >= t1 || tSplit < 0:
		return t.walk(near, r, t0, t1, best, anyHit)
	case tSplit <= t0:
		return t.walk(far, r, t0, t1, best, anyHit)
	default:
		found := t.walk(near, r, t0, tSplit, best, anyHit)
		if anyHit && found {
			return true
		}
		if best.T >= tSplit {
			if t.walk(far, r, tSplit, t1, best, anyHit) {
				found = true
			}
		}
		return found
	}
}

// expand builds a deferred (lazy) subtree on first touch and returns the
// node to traverse. Expansion is idempotent and goroutine safe.
func (t *Tree) expand(n *Node) *Node {
	if !n.lazy {
		return n
	}
	n.once.Do(func() {
		buildBinnedInto(n, t.Tris, n.pending, n.bounds, n.depth, t.params, buildOpts{})
		n.pending = nil
	})
	return n
}

// Stats summarizes a tree's shape; FullyBuilt is false while a lazy tree
// still has deferred subtrees.
type Stats struct {
	Nodes, Leaves, Pending int
	MaxDepth               int
	Tris                   int // total leaf references (with duplication)
	FullyBuilt             bool
}

// Stats walks the tree and reports its shape without expanding deferred
// subtrees.
func (t *Tree) Stats() Stats {
	var s Stats
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		if n == nil {
			return
		}
		s.Nodes++
		if depth > s.MaxDepth {
			s.MaxDepth = depth
		}
		if n.lazy && n.pending != nil {
			s.Pending++
			return
		}
		if n.Leaf() {
			s.Leaves++
			s.Tris += len(n.Tris)
			return
		}
		rec(n.Left, depth+1)
		rec(n.Right, depth+1)
	}
	rec(t.Root, 0)
	s.FullyBuilt = s.Pending == 0
	return s
}

// ExpandAll forces construction of every deferred subtree (lazy trees).
func (t *Tree) ExpandAll() {
	var rec func(n *Node)
	rec = func(n *Node) {
		if n == nil {
			return
		}
		n = t.expand(n)
		if !n.Leaf() {
			rec(n.Left)
			rec(n.Right)
		}
	}
	rec(t.Root)
}
