package kdtree

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/scenegen"
)

// bruteIntersect is the reference nearest-hit implementation.
func bruteIntersect(tris []geom.Triangle, r geom.Ray, tMin, tMax float64) (Hit, bool) {
	best := Hit{T: tMax}
	found := false
	for i, tr := range tris {
		if t, ok := tr.IntersectRay(r, tMin, best.T); ok {
			best = Hit{T: t, Tri: i}
			found = true
		}
	}
	return best, found
}

// randomRays generates rays aimed into the scene bounds.
func randomRays(b geom.AABB, n int, seed int64) []geom.Ray {
	r := rand.New(rand.NewSource(seed))
	d := b.Diagonal()
	rays := make([]geom.Ray, n)
	for i := range rays {
		// Origin on an inflated sphere around the scene, direction toward
		// a random point inside the bounds.
		origin := geom.V(
			b.Min.X+d.X*(r.Float64()*3-1),
			b.Min.Y+d.Y*(r.Float64()*3-1),
			b.Min.Z+d.Z*(r.Float64()*3-1),
		)
		target := geom.V(
			b.Min.X+d.X*r.Float64(),
			b.Min.Y+d.Y*r.Float64(),
			b.Min.Z+d.Z*r.Float64(),
		)
		rays[i] = geom.Ray{Origin: origin, Dir: target.Sub(origin).Normalize()}
	}
	return rays
}

func testScene() []geom.Triangle {
	return scenegen.Cathedral(1).Triangles // ~776 triangles
}

func TestAllBuildersMatchBruteForce(t *testing.T) {
	tris := testScene()
	rays := randomRays(boundsAll(tris), 400, 7)
	for _, b := range AllBuilders() {
		tree := b.Build(tris, DefaultParams())
		mismatches := 0
		for _, ray := range rays {
			want, wok := bruteIntersect(tris, ray, 1e-9, 1e9)
			got, gok := tree.Intersect(ray, 1e-9, 1e9)
			if wok != gok {
				mismatches++
				continue
			}
			if wok && math.Abs(want.T-got.T) > 1e-9 {
				// Different triangle at the same t (shared edges) is fine;
				// different t is not.
				mismatches++
			}
		}
		if mismatches > 0 {
			t.Errorf("%s: %d/%d rays disagree with brute force", b.Name(), mismatches, len(rays))
		}
	}
}

func boundsAll(tris []geom.Triangle) geom.AABB {
	b := geom.EmptyAABB()
	for _, tr := range tris {
		b = b.Union(tr.Bounds())
	}
	return b
}

func TestOccludedConsistentWithIntersect(t *testing.T) {
	tris := testScene()
	rays := randomRays(boundsAll(tris), 300, 13)
	for _, b := range AllBuilders() {
		tree := b.Build(tris, DefaultParams())
		for _, ray := range rays {
			_, hit := tree.Intersect(ray, 1e-9, 1e9)
			occ := tree.Occluded(ray, 1e-9, 1e9)
			if hit != occ {
				t.Errorf("%s: Intersect=%v but Occluded=%v", b.Name(), hit, occ)
			}
		}
	}
}

func TestLazyTreeDefersAndExpands(t *testing.T) {
	tris := scenegen.Cathedral(2).Triangles
	p := DefaultParams()
	p.EagerCutoff = 256
	tree := LazyBuilder{}.Build(tris, p)
	s := tree.Stats()
	if s.Pending == 0 {
		t.Fatalf("lazy tree has no deferred subtrees (stats %+v)", s)
	}
	if s.FullyBuilt {
		t.Error("FullyBuilt should be false with pending nodes")
	}
	// Traversal works despite deferral, and triggers expansion.
	rays := randomRays(boundsAll(tris), 200, 3)
	for _, ray := range rays {
		want, wok := bruteIntersect(tris, ray, 1e-9, 1e9)
		got, gok := tree.Intersect(ray, 1e-9, 1e9)
		if wok != gok || (wok && math.Abs(want.T-got.T) > 1e-9) {
			t.Fatalf("lazy traversal mismatch")
		}
	}
	after := tree.Stats()
	if after.Pending >= s.Pending {
		t.Errorf("traversal expanded nothing: %d → %d pending", s.Pending, after.Pending)
	}
	tree.ExpandAll()
	final := tree.Stats()
	if !final.FullyBuilt || final.Pending != 0 {
		t.Errorf("ExpandAll left %d pending", final.Pending)
	}
}

func TestLazyConcurrentExpansion(t *testing.T) {
	// Many goroutines traversing a lazy tree must agree with brute force;
	// run with -race to check the once-based synchronization.
	tris := scenegen.Cathedral(1).Triangles
	p := DefaultParams()
	p.EagerCutoff = 128
	tree := LazyBuilder{}.Build(tris, p)
	rays := randomRays(boundsAll(tris), 100, 5)
	errc := make(chan int, 8)
	for g := 0; g < 8; g++ {
		go func() {
			bad := 0
			for _, ray := range rays {
				want, wok := bruteIntersect(tris, ray, 1e-9, 1e9)
				got, gok := tree.Intersect(ray, 1e-9, 1e9)
				if wok != gok || (wok && math.Abs(want.T-got.T) > 1e-9) {
					bad++
				}
			}
			errc <- bad
		}()
	}
	for g := 0; g < 8; g++ {
		if bad := <-errc; bad != 0 {
			t.Errorf("concurrent lazy traversal: %d mismatches", bad)
		}
	}
}

func TestParamsRespected(t *testing.T) {
	tris := testScene()
	p := DefaultParams()
	p.MaxDepth = 4
	p.ParallelDepth = 0
	for _, b := range AllBuilders() {
		tree := b.Build(tris, p)
		tree.ExpandAll()
		if s := tree.Stats(); s.MaxDepth > 4 {
			t.Errorf("%s: depth %d exceeds MaxDepth 4", b.Name(), s.MaxDepth)
		}
	}
	// A huge leaf size yields a single-leaf tree.
	p = DefaultParams()
	p.LeafSize = len(tris)
	tree := WaldHavranBuilder{}.Build(tris, p)
	if s := tree.Stats(); s.Nodes != 1 || s.Leaves != 1 {
		t.Errorf("leaf-size cap ignored: %+v", s)
	}
}

func TestParallelDepthDoesNotChangeTree(t *testing.T) {
	tris := testScene()
	shape := func(pd int, b Builder) Stats {
		p := DefaultParams()
		p.ParallelDepth = pd
		tree := b.Build(tris, p)
		tree.ExpandAll()
		return tree.Stats()
	}
	for _, b := range AllBuilders() {
		s0 := shape(0, b)
		for _, pd := range []int{2, 5} {
			if s := shape(pd, b); s != s0 {
				t.Errorf("%s: tree shape differs with ParallelDepth %d: %+v vs %+v",
					b.Name(), pd, s, s0)
			}
		}
	}
}

func TestSweepVsBinnedQuality(t *testing.T) {
	// The exact sweep must never produce a worse tree (by SAH node count
	// heuristics) than a coarse binned build — loosely: both must beat the
	// single-leaf degenerate tree and produce plausible leaf sizes.
	tris := scenegen.Cathedral(2).Triangles
	for _, b := range AllBuilders() {
		tree := b.Build(tris, DefaultParams())
		tree.ExpandAll()
		s := tree.Stats()
		if s.Leaves < 10 {
			t.Errorf("%s: only %d leaves for %d triangles", b.Name(), s.Leaves, len(tris))
		}
		avg := float64(s.Tris) / float64(s.Leaves)
		if avg > 64 {
			t.Errorf("%s: average leaf holds %.1f triangles", b.Name(), avg)
		}
	}
}

func TestEmptyAndTinyScenes(t *testing.T) {
	for _, b := range AllBuilders() {
		empty := b.Build(nil, DefaultParams())
		if _, hit := empty.Intersect(geom.Ray{Origin: geom.V(0, 0, -1), Dir: geom.V(0, 0, 1)}, 0, 100); hit {
			t.Errorf("%s: hit in empty scene", b.Name())
		}
		one := []geom.Triangle{{A: geom.V(0, 0, 0), B: geom.V(1, 0, 0), C: geom.V(0, 1, 0)}}
		tree := b.Build(one, DefaultParams())
		hit, ok := tree.Intersect(geom.Ray{Origin: geom.V(0.2, 0.2, -1), Dir: geom.V(0, 0, 1)}, 0, 100)
		if !ok || math.Abs(hit.T-1) > 1e-12 || hit.Tri != 0 {
			t.Errorf("%s: single-triangle scene: %+v ok=%v", b.Name(), hit, ok)
		}
	}
}

func TestAxisAlignedRays(t *testing.T) {
	// Rays exactly parallel to split planes exercise the d == 0 branch.
	tris := scenegen.BoxGrid(3).Triangles
	for _, b := range AllBuilders() {
		tree := b.Build(tris, DefaultParams())
		for _, ray := range []geom.Ray{
			{Origin: geom.V(-5, 0.5, 0.5), Dir: geom.V(1, 0, 0)},
			{Origin: geom.V(0.5, -5, 0.5), Dir: geom.V(0, 1, 0)},
			{Origin: geom.V(0.5, 0.5, -5), Dir: geom.V(0, 0, 1)},
			{Origin: geom.V(10, 0.5, 0.5), Dir: geom.V(-1, 0, 0)},
		} {
			want, wok := bruteIntersect(tris, ray, 1e-9, 1e9)
			got, gok := tree.Intersect(ray, 1e-9, 1e9)
			if wok != gok || (wok && math.Abs(want.T-got.T) > 1e-9) {
				t.Errorf("%s: axis ray %+v mismatch (want %v/%v got %v/%v)",
					b.Name(), ray, want, wok, got, gok)
			}
		}
	}
}

func TestNewBuilderRegistry(t *testing.T) {
	for _, name := range BuilderNames() {
		b, err := NewBuilder(name)
		if err != nil {
			t.Errorf("NewBuilder(%q): %v", name, err)
			continue
		}
		if b.Name() != name {
			t.Errorf("NewBuilder(%q).Name() = %q", name, b.Name())
		}
	}
	if _, err := NewBuilder("BVH"); err == nil {
		t.Error("unknown builder did not error")
	}
}

func TestParamsSanitize(t *testing.T) {
	p := Params{}.sanitize(1000)
	if p.TraversalCost <= 0 || p.IntersectCost <= 0 || p.LeafSize < 1 ||
		p.MaxDepth <= 0 || p.Bins < 2 || p.Workers < 1 {
		t.Errorf("sanitize left invalid params: %+v", p)
	}
	// MaxDepth heuristic grows with n.
	small := Params{}.sanitize(10)
	big := Params{}.sanitize(1 << 20)
	if big.MaxDepth <= small.MaxDepth {
		t.Errorf("MaxDepth heuristic not monotone: %d vs %d", small.MaxDepth, big.MaxDepth)
	}
	if q := (Params{Bins: 10000}).sanitize(10); q.Bins > 256 {
		t.Errorf("Bins not capped: %d", q.Bins)
	}
}

func TestStatsCounts(t *testing.T) {
	tris := testScene()
	tree := InplaceBuilder{}.Build(tris, DefaultParams())
	s := tree.Stats()
	if s.Nodes != 2*s.Leaves-1 {
		t.Errorf("binary tree invariant violated: %d nodes, %d leaves", s.Nodes, s.Leaves)
	}
	if !s.FullyBuilt {
		t.Error("eager tree reported pending nodes")
	}
	if s.Tris < len(tris) {
		t.Errorf("leaves reference %d triangles, fewer than the %d in the scene", s.Tris, len(tris))
	}
}

// Every triangle must be reachable: rays straight at each triangle's
// centroid must hit something at or before the centroid distance.
func TestNoTriangleLost(t *testing.T) {
	tris := scenegen.SphereFlake(1, 6).Triangles
	for _, b := range AllBuilders() {
		tree := b.Build(tris, DefaultParams())
		lost := 0
		for _, tr := range tris {
			c := tr.Centroid()
			n := tr.Normal().Normalize()
			if n.Len() == 0 {
				continue
			}
			origin := c.Add(n.Scale(0.5))
			ray := geom.Ray{Origin: origin, Dir: n.Scale(-1)}
			want, wok := bruteIntersect(tris, ray, 1e-9, 1e9)
			got, gok := tree.Intersect(ray, 1e-9, 1e9)
			if wok != gok || (wok && math.Abs(want.T-got.T) > 1e-9) {
				lost++
			}
		}
		if lost > 0 {
			t.Errorf("%s: %d centroid rays disagree", b.Name(), lost)
		}
	}
}

func TestParallelBinningPath(t *testing.T) {
	// The data-parallel binning pass only engages above the size
	// threshold; build a >8192-primitive scene with multiple workers and
	// cross-validate traversal.
	r := rand.New(rand.NewSource(21))
	tris := randomTriangles(r, 10000)
	p := DefaultParams()
	p.Workers = 4
	for _, b := range []Builder{InplaceBuilder{}, NestedBuilder{}} {
		tree := b.Build(tris, p)
		for _, ray := range randomRays(tree.Bounds, 60, 2) {
			want, wok := bruteIntersect(tris, ray, 1e-9, 1e9)
			got, gok := tree.Intersect(ray, 1e-9, 1e9)
			if wok != gok || (wok && math.Abs(want.T-got.T) > 1e-9) {
				t.Fatalf("%s with parallel binning disagrees with oracle", b.Name())
			}
		}
	}
}
