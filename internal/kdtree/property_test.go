package kdtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// randomTriangles builds a small random scene: clusters of triangles with
// varied sizes, including degenerate-ish slivers, to stress SAH splits.
func randomTriangles(r *rand.Rand, n int) []geom.Triangle {
	tris := make([]geom.Triangle, n)
	for i := range tris {
		center := geom.V(r.Float64()*20-10, r.Float64()*20-10, r.Float64()*20-10)
		size := 0.05 + r.Float64()*3
		rv := func() geom.Vec3 {
			return center.Add(geom.V(
				(r.Float64()-0.5)*size,
				(r.Float64()-0.5)*size,
				(r.Float64()-0.5)*size,
			))
		}
		tris[i] = geom.Triangle{A: rv(), B: rv(), C: rv()}
	}
	return tris
}

// Property: for random scenes, random parameters, and random rays, every
// builder agrees with the brute-force oracle on the nearest hit distance.
func TestBuildersAgreeWithOracleProperty(t *testing.T) {
	builders := AllBuilders()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tris := randomTriangles(r, 20+r.Intn(150))
		p := Params{
			TraversalCost: 0.2 + r.Float64()*3,
			IntersectCost: 0.5 + r.Float64()*2,
			LeafSize:      1 + r.Intn(12),
			MaxDepth:      3 + r.Intn(15),
			ParallelDepth: r.Intn(4),
			Bins:          4 + r.Intn(40),
			EagerCutoff:   r.Intn(64),
		}
		b := builders[r.Intn(len(builders))]
		tree := b.Build(tris, p)
		for k := 0; k < 40; k++ {
			ray := geom.Ray{
				Origin: geom.V(r.Float64()*40-20, r.Float64()*40-20, r.Float64()*40-20),
				Dir: geom.V(r.Float64()*2-1, r.Float64()*2-1, r.Float64()*2-1).
					Normalize(),
			}
			if ray.Dir.Len() == 0 {
				continue
			}
			want, wok := bruteIntersect(tris, ray, 1e-9, 1e9)
			got, gok := tree.Intersect(ray, 1e-9, 1e9)
			if wok != gok {
				t.Logf("seed %d builder %s: hit disagreement", seed, b.Name())
				return false
			}
			if wok && math.Abs(want.T-got.T) > 1e-9 {
				t.Logf("seed %d builder %s: t %g vs %g", seed, b.Name(), want.T, got.T)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: tree stats satisfy structural invariants for any parameters.
func TestTreeInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tris := randomTriangles(r, 10+r.Intn(100))
		p := Params{
			LeafSize:    1 + r.Intn(8),
			MaxDepth:    2 + r.Intn(12),
			Bins:        4 + r.Intn(28),
			EagerCutoff: r.Intn(32),
		}
		for _, b := range AllBuilders() {
			tree := b.Build(tris, p)
			tree.ExpandAll()
			s := tree.Stats()
			// Binary tree: nodes = 2·leaves − 1; depth bounded; every
			// triangle referenced at least once.
			if s.Nodes != 2*s.Leaves-1 {
				return false
			}
			if s.MaxDepth > p.sanitize(len(tris)).MaxDepth {
				return false
			}
			if s.Tris < len(tris) {
				return false
			}
			if !s.FullyBuilt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: every triangle index stored in any leaf is valid and the
// triangle's bounds overlap the leaf's region (no stray references).
func TestLeafReferencesValidProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	tris := randomTriangles(r, 200)
	tree := NestedBuilder{}.Build(tris, DefaultParams())
	var walk func(n *Node, bounds geom.AABB) bool
	walk = func(n *Node, bounds geom.AABB) bool {
		if n.Leaf() {
			for _, ti := range n.Tris {
				if ti < 0 || int(ti) >= len(tris) {
					return false
				}
				tb := tris[ti].Bounds()
				// Overlap test with slack for boundary straddlers.
				for a := 0; a < 3; a++ {
					if tb.Min.Axis(a) > bounds.Max.Axis(a)+1e-9 ||
						tb.Max.Axis(a) < bounds.Min.Axis(a)-1e-9 {
						return false
					}
				}
			}
			return true
		}
		lb, rb := bounds, bounds
		lb.Max = lb.Max.SetAxis(n.Axis, n.Split)
		rb.Min = rb.Min.SetAxis(n.Axis, n.Split)
		return walk(n.Left, lb) && walk(n.Right, rb)
	}
	if !walk(tree.Root, tree.Bounds) {
		t.Error("leaf references escape their node regions")
	}
}
