package kdtree

import (
	"math"
	"sort"
	"sync"

	"repro/internal/geom"
)

// A split is a chosen SAH splitting plane.
type split struct {
	axis int
	pos  float64
	cost float64
}

// leafCost is the SAH cost of making the node a leaf.
func leafCost(n int, p Params) float64 { return p.IntersectCost * float64(n) }

// sahCost evaluates the SAH for a candidate plane given the node bounds
// and the left/right primitive counts.
func sahCost(nb geom.AABB, axis int, pos float64, nL, nR int, p Params) float64 {
	sa := nb.SurfaceArea()
	if sa == 0 {
		return math.Inf(1)
	}
	lb, rb := nb, nb
	lb.Max = lb.Max.SetAxis(axis, pos)
	rb.Min = rb.Min.SetAxis(axis, pos)
	cost := p.TraversalCost + p.IntersectCost*
		(lb.SurfaceArea()/sa*float64(nL)+rb.SurfaceArea()/sa*float64(nR))
	// Slightly favor splits that cut off empty space, as real SAH builders
	// do (Wald & Havran's empty-space bonus).
	if nL == 0 || nR == 0 {
		cost *= 0.8
	}
	return cost
}

// sweepEvent is one primitive boundary on an axis.
type sweepEvent struct {
	pos   float64
	start bool
}

// bestSplitSweep finds the exact SAH-optimal plane by sorting primitive
// boundaries per axis and sweeping — the O(n log n)-per-level strategy of
// the Wald-Havran builder.
func bestSplitSweep(tris []geom.Triangle, idx []int32, nb geom.AABB, p Params) (split, bool) {
	best := split{cost: math.Inf(1)}
	n := len(idx)
	events := make([]sweepEvent, 0, 2*n)
	for axis := 0; axis < 3; axis++ {
		lo, hi := nb.Min.Axis(axis), nb.Max.Axis(axis)
		if hi-lo <= 0 {
			continue
		}
		events = events[:0]
		for _, i := range idx {
			b := tris[i].Bounds()
			bmin := math.Max(b.Min.Axis(axis), lo)
			bmax := math.Min(b.Max.Axis(axis), hi)
			events = append(events, sweepEvent{bmin, true}, sweepEvent{bmax, false})
		}
		// Sort by position; at equal positions, end events first so a
		// primitive ending exactly at a plane is not counted on the right.
		sort.Slice(events, func(a, b int) bool {
			if events[a].pos != events[b].pos {
				return events[a].pos < events[b].pos
			}
			return !events[a].start && events[b].start
		})
		nL, nR := 0, n
		for k := 0; k < len(events); {
			pos := events[k].pos
			endsHere, startsHere := 0, 0
			for k < len(events) && events[k].pos == pos && !events[k].start {
				endsHere++
				k++
			}
			for k < len(events) && events[k].pos == pos && events[k].start {
				startsHere++
				k++
			}
			nR -= endsHere
			if pos > lo && pos < hi {
				c := sahCost(nb, axis, pos, nL, nR, p)
				if c < best.cost && !(nL == n && nR == n) {
					best = split{axis: axis, pos: pos, cost: c}
				}
			}
			nL += startsHere
		}
	}
	return best, !math.IsInf(best.cost, 1)
}

// binHists holds per-axis start/end histograms for binned SAH.
type binHists struct {
	start, end [3][]int
}

func newBinHists(bins int) *binHists {
	var h binHists
	for a := 0; a < 3; a++ {
		h.start[a] = make([]int, bins)
		h.end[a] = make([]int, bins)
	}
	return &h
}

func (h *binHists) add(o *binHists) {
	for a := 0; a < 3; a++ {
		for b := range h.start[a] {
			h.start[a][b] += o.start[a][b]
			h.end[a][b] += o.end[a][b]
		}
	}
}

// binIndex maps a coordinate to a bin in [0, bins).
func binIndex(x, lo, inv float64, bins int) int {
	b := int((x - lo) * inv)
	if b < 0 {
		b = 0
	}
	if b >= bins {
		b = bins - 1
	}
	return b
}

// binRange fills the histograms for idx[from:to].
func binTris(h *binHists, tris []geom.Triangle, idx []int32, nb geom.AABB, bins int) {
	var inv [3]float64
	for a := 0; a < 3; a++ {
		ext := nb.Max.Axis(a) - nb.Min.Axis(a)
		if ext > 0 {
			inv[a] = float64(bins) / ext
		}
	}
	for _, i := range idx {
		b := tris[i].Bounds()
		for a := 0; a < 3; a++ {
			if inv[a] == 0 {
				continue
			}
			lo := nb.Min.Axis(a)
			h.start[a][binIndex(b.Min.Axis(a), lo, inv[a], bins)]++
			h.end[a][binIndex(b.Max.Axis(a), lo, inv[a], bins)]++
		}
	}
}

// bestSplitBinned finds the best SAH plane among bin boundaries. With
// workers > 1 and enough primitives, the binning pass runs data-parallel —
// the Inplace builder's parallelization strategy.
func bestSplitBinned(tris []geom.Triangle, idx []int32, nb geom.AABB, p Params, workers int) (split, bool) {
	bins := p.Bins
	h := newBinHists(bins)
	const parallelThreshold = 8192
	if workers > 1 && len(idx) >= parallelThreshold {
		chunk := (len(idx) + workers - 1) / workers
		locals := make([]*binHists, 0, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			from := w * chunk
			if from >= len(idx) {
				break
			}
			to := from + chunk
			if to > len(idx) {
				to = len(idx)
			}
			lh := newBinHists(bins)
			locals = append(locals, lh)
			wg.Add(1)
			go func(lh *binHists, sub []int32) {
				defer wg.Done()
				binTris(lh, tris, sub, nb, bins)
			}(lh, idx[from:to])
		}
		wg.Wait()
		for _, lh := range locals {
			h.add(lh)
		}
	} else {
		binTris(h, tris, idx, nb, bins)
	}

	n := len(idx)
	best := split{cost: math.Inf(1)}
	for a := 0; a < 3; a++ {
		lo, hi := nb.Min.Axis(a), nb.Max.Axis(a)
		ext := hi - lo
		if ext <= 0 {
			continue
		}
		// Prefix sums over bins: a boundary after bin b−1 has
		// nL = Σ start[<b], nR = Σ end[≥b].
		nL := 0
		nR := n
		for b := 1; b < bins; b++ {
			nL += h.start[a][b-1]
			nR -= h.end[a][b-1]
			pos := lo + ext*float64(b)/float64(bins)
			c := sahCost(nb, a, pos, nL, nR, p)
			if c < best.cost && !(nL == n && nR == n) {
				best = split{axis: a, pos: pos, cost: c}
			}
		}
	}
	return best, !math.IsInf(best.cost, 1)
}

// partition splits idx into left/right lists for the plane. Primitives
// strictly left go left, strictly right go right, straddlers go to both.
// A primitive lying exactly on the plane with zero extent goes left.
func partition(tris []geom.Triangle, idx []int32, s split) (left, right []int32) {
	for _, i := range idx {
		b := tris[i].Bounds()
		bmin, bmax := b.Min.Axis(s.axis), b.Max.Axis(s.axis)
		switch {
		case bmax < s.pos:
			left = append(left, i)
		case bmin > s.pos:
			right = append(right, i)
		case bmin == s.pos && bmax == s.pos:
			left = append(left, i)
		default:
			if bmin < s.pos {
				left = append(left, i)
			}
			if bmax > s.pos {
				right = append(right, i)
			}
		}
	}
	return left, right
}
