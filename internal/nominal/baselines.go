package nominal

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// UniformRandom selects an arm uniformly at random each iteration. It is
// the behaviour the paper predicts for Gradient Weighted after all
// algorithms converge, and serves as the no-information baseline.
type UniformRandom struct {
	history
}

// NewUniformRandom creates a uniform random selector.
func NewUniformRandom() *UniformRandom { return &UniformRandom{} }

// Name returns "uniform-random".
func (u *UniformRandom) Name() string { return "uniform-random" }

// Init prepares the selector for n arms.
func (u *UniformRandom) Init(n int) { u.history.init(n) }

// Select returns a uniformly random arm.
func (u *UniformRandom) Select(r *rand.Rand) int {
	u.mustInit("UniformRandom.Select")
	return r.Intn(u.n())
}

// Report records the measurement.
func (u *UniformRandom) Report(arm int, v float64) {
	u.mustInit("UniformRandom.Report")
	u.report(arm, v)
}

// RoundRobin cycles deterministically through the arms. Over N·k
// iterations every arm runs exactly k times; it corresponds to exhaustive
// search repeated forever, which the paper notes "will also always select
// the worst configuration".
type RoundRobin struct {
	history
	next int
}

// NewRoundRobin creates a round-robin selector.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name returns "round-robin".
func (rr *RoundRobin) Name() string { return "round-robin" }

// Init prepares the selector for n arms.
func (rr *RoundRobin) Init(n int) {
	rr.history.init(n)
	rr.next = 0
}

// Select returns the next arm in cyclic order.
func (rr *RoundRobin) Select(*rand.Rand) int {
	rr.mustInit("RoundRobin.Select")
	a := rr.next
	rr.next = (rr.next + 1) % rr.n()
	return a
}

// Report records the measurement.
func (rr *RoundRobin) Report(arm int, v float64) {
	rr.mustInit("RoundRobin.Report")
	rr.report(arm, v)
}

// Softmax is the Gibbs/Boltzmann action-selection policy that the paper
// discusses as the common alternative to ε-Greedy in reinforcement
// learning, and explicitly chooses NOT to use: by suppressing bad
// algorithms it prevents them from improving through phase-one tuning.
// It is included as ablation A5. Arms are drawn with probability
// proportional to exp(−(best_A − best_min)/Temp).
type Softmax struct {
	history
	// Temp is the Gibbs temperature relative to the spread of best values;
	// smaller is greedier.
	Temp float64
}

// NewSoftmax creates a softmax selector with the given temperature.
func NewSoftmax(temp float64) *Softmax {
	if temp <= 0 || math.IsNaN(temp) {
		panic(fmt.Sprintf("nominal: softmax temperature %g must be positive", temp))
	}
	return &Softmax{Temp: temp}
}

// Name returns e.g. "softmax(0.1)".
func (s *Softmax) Name() string {
	return "softmax(" + strconv.FormatFloat(s.Temp, 'g', -1, 64) + ")"
}

// Init prepares the selector for n arms.
func (s *Softmax) Init(n int) { s.history.init(n) }

// Select draws an arm from the Gibbs distribution over best observed
// values; unvisited arms are treated as ties with the current best.
func (s *Softmax) Select(r *rand.Rand) int {
	s.mustInit("Softmax.Select")
	minBest := math.Inf(1)
	for i := range s.best {
		if s.best[i] < minBest {
			minBest = s.best[i]
		}
	}
	if math.IsInf(minBest, 1) {
		return r.Intn(s.n())
	}
	w := make([]float64, s.n())
	for i := range w {
		b := s.best[i]
		if math.IsInf(b, 1) {
			b = minBest // optimistic: unvisited ties the best
		}
		// Scale the gap by the best value so Temp is unitless.
		gap := (b - minBest) / math.Max(minBest, 1e-12)
		w[i] = math.Exp(-gap / s.Temp)
	}
	return weightedDraw(r, w)
}

// Report records the measurement.
func (s *Softmax) Report(arm int, v float64) {
	s.mustInit("Softmax.Report")
	s.report(arm, v)
}

// NewByName builds a selector from a name. Recognized names:
//
//	egreedy:<pct>  (e.g. egreedy:5, egreedy:10, egreedy:20)
//	greedygradient:<pct>  (the combined strategy of the paper's conclusion)
//	gradient, optimum, auc, random, roundrobin, ucb1, softmax:<temp>
func NewByName(name string) (Selector, error) {
	switch {
	case strings.HasPrefix(name, "egreedy:"):
		pct, err := strconv.ParseFloat(strings.TrimPrefix(name, "egreedy:"), 64)
		if err != nil {
			return nil, fmt.Errorf("nominal: bad ε in %q: %v", name, err)
		}
		return NewEpsilonGreedy(pct / 100), nil
	case strings.HasPrefix(name, "greedygradient:"):
		pct, err := strconv.ParseFloat(strings.TrimPrefix(name, "greedygradient:"), 64)
		if err != nil {
			return nil, fmt.Errorf("nominal: bad ε in %q: %v", name, err)
		}
		return NewGreedyGradient(pct / 100), nil
	case name == "gradient":
		return NewGradientWeighted(), nil
	case name == "optimum":
		return NewOptimumWeighted(), nil
	case name == "auc":
		return NewSlidingWindowAUC(), nil
	case name == "random":
		return NewUniformRandom(), nil
	case name == "roundrobin":
		return NewRoundRobin(), nil
	case name == "ucb1":
		return NewUCB1(), nil
	case strings.HasPrefix(name, "softmax:"):
		temp, err := strconv.ParseFloat(strings.TrimPrefix(name, "softmax:"), 64)
		if err != nil {
			return nil, fmt.Errorf("nominal: bad temperature in %q: %v", name, err)
		}
		return NewSoftmax(temp), nil
	default:
		return nil, fmt.Errorf("nominal: unknown selector %q", name)
	}
}

// PaperSet returns fresh instances of the six strategies evaluated in the
// paper's figures, in the paper's legend order: ε-Greedy (5%, 10%, 20%),
// Gradient Weighted, Optimum Weighted, Sliding-Window AUC.
func PaperSet() []Selector {
	return []Selector{
		NewEpsilonGreedy(0.05),
		NewEpsilonGreedy(0.10),
		NewEpsilonGreedy(0.20),
		NewGradientWeighted(),
		NewOptimumWeighted(),
		NewSlidingWindowAUC(),
	}
}

// UCB1 is the classical upper-confidence-bound bandit (Auer et al. 2002),
// included as the standard baseline from the reinforcement-learning
// literature the paper frames its strategies against. Costs are
// normalized into rewards on the observed [min, max] range (UCB1 assumes
// bounded rewards); each selection maximizes mean reward plus the
// exploration bonus C·sqrt(2·ln N / n_arm). Unvisited arms are selected
// first, in index order.
type UCB1 struct {
	history
	sums []float64
	// C scales the exploration bonus; 1 is the textbook value.
	C float64
}

// NewUCB1 creates a UCB1 selector with the textbook exploration constant.
func NewUCB1() *UCB1 { return &UCB1{C: 1} }

// Name returns "ucb1".
func (u *UCB1) Name() string { return "ucb1" }

// Init prepares the selector for n arms.
func (u *UCB1) Init(n int) {
	u.history.init(n)
	u.sums = make([]float64, n)
}

// Select returns the arm with the highest upper confidence bound.
func (u *UCB1) Select(r *rand.Rand) int {
	u.mustInit("UCB1.Select")
	for i := 0; i < u.n(); i++ {
		if u.visits(i) == 0 {
			return i
		}
	}
	// Observed cost range for normalization.
	lo, hi := math.Inf(1), math.Inf(-1)
	total := 0
	for i := 0; i < u.n(); i++ {
		total += u.visits(i)
		mean := u.sums[i] / float64(u.visits(i))
		lo = math.Min(lo, mean)
		hi = math.Max(hi, mean)
	}
	span := hi - lo
	if span <= 0 {
		return r.Intn(u.n())
	}
	best, bestScore := 0, math.Inf(-1)
	for i := 0; i < u.n(); i++ {
		n := float64(u.visits(i))
		mean := u.sums[i] / n
		reward := (hi - mean) / span // lower cost ⇒ higher reward in [0,1]
		score := reward + u.C*math.Sqrt(2*math.Log(float64(total))/n)
		if score > bestScore {
			bestScore = score
			best = i
		}
	}
	return best
}

// Report records the measurement.
func (u *UCB1) Report(arm int, v float64) {
	u.mustInit("UCB1.Report")
	u.report(arm, v)
	u.sums[arm] += v
}
