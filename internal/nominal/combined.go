package nominal

import (
	"fmt"
	"math"
	"math/rand"
)

// GreedyGradient is the combination the paper's conclusion anticipates
// ("we anticipate to be able to mitigate this drawback by combining the
// strategies we have presented here, in particular with the
// Gradient-Weighted method"): ε-Greedy exploitation, with the exploration
// draw biased toward algorithms whose performance is still improving
// instead of uniform.
//
// The effect addresses the §IV-C threat to validity directly: with
// probability 1−ε the incumbent runs (fast convergence, like ε-Greedy);
// the remaining ε of iterations flow preferentially to algorithms still
// making tuning progress, so an algorithm that would cross over after
// more tuning keeps receiving tuning budget instead of starving.
//
// The exploration weight deliberately differs from the paper's
// w = G + 2: that formula's constant offset swamps the gradient signal
// whenever improvements are small on the absolute 1/time scale (which is
// the common case — see GradientWeighted.Relative). Here the gradient is
// (a) relative (scale invariant) and (b) normalized per own sample of the
// arm rather than per global iteration (an arm must not look flat merely
// because it rarely runs), and the weight is exp(G/Tau), which amplifies
// small but persistent improvement into a clear selection bias while
// keeping every weight strictly positive — no algorithm is ever excluded,
// preserving the property the paper insists on.
type GreedyGradient struct {
	history
	// Eps is the exploration probability.
	Eps float64
	// Window is the per-arm sample window for the gradient; default 16.
	Window int
	// Tau is the exponential temperature for exploration weights; the
	// default 0.01 means "1% relative improvement per run doubles-ish an
	// arm's exploration odds".
	Tau float64
}

// NewGreedyGradient creates the combined strategy with the given ε, the
// paper's window size of 16, and Tau = 0.01.
func NewGreedyGradient(eps float64) *GreedyGradient {
	if eps < 0 || eps > 1 || math.IsNaN(eps) {
		panic(fmt.Sprintf("nominal: ε = %g outside [0,1]", eps))
	}
	return &GreedyGradient{Eps: eps, Window: DefaultWindow, Tau: 0.01}
}

// Name returns e.g. "greedy-gradient(10%)".
func (g *GreedyGradient) Name() string {
	return fmt.Sprintf("greedy-gradient(%g%%)", g.Eps*100)
}

// Init prepares the selector for n arms.
func (g *GreedyGradient) Init(n int) { g.history.init(n) }

// SetWindow adjusts the gradient window size.
func (g *GreedyGradient) SetWindow(w int) { g.Window = w }

// exploreWeight is exp(G/Tau) with G the relative improvement per own
// sample over the arm's window.
func (g *GreedyGradient) exploreWeight(arm int) float64 {
	win := g.window(arm, g.Window)
	if len(win) < 2 {
		return 1 // unvisited or fresh arms explore at baseline odds
	}
	first, last := win[0].value, win[len(win)-1].value
	if first <= 0 || last <= 0 {
		return 1
	}
	grad := (first/last - 1) / float64(len(win)-1)
	// Clamp the exponent so one noisy sample cannot monopolize
	// exploration.
	e := grad / g.Tau
	if e > 6 {
		e = 6
	}
	if e < -6 {
		e = -6
	}
	return math.Exp(e)
}

// Select returns the incumbent with probability 1−ε; otherwise it draws
// proportionally to the exploration weights. Initialization visits every
// arm once in deterministic order, as in ε-Greedy.
func (g *GreedyGradient) Select(r *rand.Rand) int {
	g.mustInit("GreedyGradient.Select")
	if r.Float64() < g.Eps {
		w := make([]float64, g.n())
		for i := range w {
			w[i] = g.exploreWeight(i)
		}
		return weightedDraw(r, w)
	}
	for i := 0; i < g.n(); i++ {
		if g.visits(i) == 0 {
			return i
		}
	}
	arm, _ := g.bestArm()
	return arm
}

// Report records the measurement.
func (g *GreedyGradient) Report(arm int, v float64) {
	g.mustInit("GreedyGradient.Report")
	g.report(arm, v)
}
