package nominal

import (
	"math"
	"math/rand"
	"testing"
)

func TestGreedyGradientInitialization(t *testing.T) {
	// ε = 0: pure exploitation — deterministic init order, then incumbent.
	s := NewGreedyGradient(0)
	r := rand.New(rand.NewSource(1))
	s.Init(4)
	costs := []float64{9, 3, 7, 5}
	for want := 0; want < 4; want++ {
		got := s.Select(r)
		if got != want {
			t.Fatalf("init selection %d = %d, want %d", want, got, want)
		}
		s.Report(got, costs[got])
	}
	for i := 0; i < 30; i++ {
		if got := s.Select(r); got != 1 {
			t.Fatalf("post-init selection = %d, want 1", got)
		}
		s.Report(1, 3)
	}
}

func TestGreedyGradientExploresImprovingArm(t *testing.T) {
	// Arm 0 is the static incumbent (cost 8); arm 1 improves 2% per own
	// sample from 30 toward 4. Uniform ε-Greedy at ε=0.2 gives arm 1 only
	// ~ε/n of the budget; GreedyGradient's exploration should concentrate
	// on it because its relative gradient is the only nonzero one.
	run := func(mk func() Selector, seed int64) (armShare float64, bestVal float64) {
		s := mk()
		s.Init(3)
		r := rand.New(rand.NewSource(seed))
		cost1 := 30.0
		best := math.Inf(1)
		counts := make([]int, 3)
		for i := 0; i < 300; i++ {
			a := s.Select(r)
			counts[a]++
			var v float64
			switch a {
			case 0:
				v = 8
			case 1:
				v = cost1
				if cost1 > 4 {
					cost1 *= 0.98
				}
			default:
				v = 20
			}
			if v < best {
				best = v
			}
			s.Report(a, v)
		}
		return float64(counts[1]) / 300, best
	}

	var ggShares, egShares []float64
	foundGG, foundEG := 0, 0
	for seed := int64(0); seed < 10; seed++ {
		gg, bestGG := run(func() Selector { return NewGreedyGradient(0.2) }, seed)
		eg, bestEG := run(func() Selector { return NewEpsilonGreedy(0.2) }, seed)
		ggShares = append(ggShares, gg)
		egShares = append(egShares, eg)
		if bestGG < 8 {
			foundGG++
		}
		if bestEG < 8 {
			foundEG++
		}
	}
	meanGG, meanEG := 0.0, 0.0
	for i := range ggShares {
		meanGG += ggShares[i]
		meanEG += egShares[i]
	}
	meanGG /= float64(len(ggShares))
	meanEG /= float64(len(egShares))
	if meanGG <= meanEG {
		t.Errorf("greedy-gradient explored the improving arm %.3f of the time vs ε-Greedy %.3f; want more",
			meanGG, meanEG)
	}
	if foundGG < foundEG {
		t.Errorf("greedy-gradient found the crossover in %d/10 runs vs ε-Greedy %d/10", foundGG, foundEG)
	}
}

func TestGreedyGradientName(t *testing.T) {
	if got := NewGreedyGradient(0.1).Name(); got != "greedy-gradient(10%)" {
		t.Errorf("Name = %q", got)
	}
}

func TestGreedyGradientPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad ε did not panic")
		}
	}()
	NewGreedyGradient(1.5)
}

func TestGreedyGradientBeforeInitPanics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	defer func() {
		if recover() == nil {
			t.Fatal("Select before Init did not panic")
		}
	}()
	NewGreedyGradient(0.1).Select(r)
}

func TestGreedyGradientSetWindow(t *testing.T) {
	g := NewGreedyGradient(0.1)
	g.SetWindow(4)
	if g.Window != 4 {
		t.Error("SetWindow ignored")
	}
}

func TestGreedyGradientExploreWeights(t *testing.T) {
	g := NewGreedyGradient(0.5)
	g.Init(3)
	// Arm 0: improving 10%/sample; arm 1: static; arm 2: unvisited.
	for i, v := range []float64{100, 90, 81, 72.9} {
		_ = i
		g.Report(0, v)
		g.Report(1, 50)
	}
	w0, w1, w2 := g.exploreWeight(0), g.exploreWeight(1), g.exploreWeight(2)
	if !(w0 > w1) {
		t.Errorf("improving arm weight %g not above static %g", w0, w1)
	}
	if w2 != 1 {
		t.Errorf("unvisited arm weight %g, want baseline 1", w2)
	}
	if w1 <= 0 || w0 <= 0 {
		t.Error("weights must stay strictly positive")
	}
	// A worsening arm still gets positive (but reduced) odds.
	g2 := NewGreedyGradient(0.5)
	g2.Init(1)
	g2.Report(0, 10)
	g2.Report(0, 100)
	if w := g2.exploreWeight(0); w <= 0 || w >= 1 {
		t.Errorf("worsening arm weight %g, want in (0, 1)", w)
	}
}

func TestGreedyGradientByName(t *testing.T) {
	s, err := NewByName("greedygradient:15")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "greedy-gradient(15%)" {
		t.Errorf("Name = %q", s.Name())
	}
	if _, err := NewByName("greedygradient:x"); err == nil {
		t.Error("bad ε did not error")
	}
}

func TestRelativeGradientScaleInvariance(t *testing.T) {
	// The relative gradient must produce the same weight whether times are
	// in microseconds or hours.
	weightFor := func(scale float64) float64 {
		g := NewGradientWeighted()
		g.Relative = true
		g.Init(1)
		g.Report(0, 10*scale)
		g.Report(0, 5*scale)
		return g.weight(0)
	}
	small, big := weightFor(1e-6), weightFor(3600)
	if math.Abs(small-big) > 1e-9 {
		t.Errorf("relative gradient not scale invariant: %g vs %g", small, big)
	}
	// The absolute (paper) gradient is scale sensitive by construction.
	absFor := func(scale float64) float64 {
		g := NewGradientWeighted()
		g.Init(1)
		g.Report(0, 10*scale)
		g.Report(0, 5*scale)
		return g.weight(0)
	}
	if math.Abs(absFor(1e-3)-absFor(1e3)) < 1e-9 {
		t.Error("absolute gradient unexpectedly scale invariant")
	}
}
