package nominal

import "math"

// Drift support: a Decayable selector can have its accumulated belief
// soft-discounted in place when the cost distribution shifts under it.
// Decay is the gentle alternative to re-initializing: instead of
// forgetting everything (and paying a full cold-start exploration
// round), the selector keeps a recent fraction of each arm's evidence —
// enough to stay decisive if the shift turns out to be small, little
// enough that a dethroned incumbent loses its stale record.
//
// All selectors in this package implement Decayable: most inherit the
// history implementation below, and UCB1 overrides it to keep its reward
// sums consistent with the discounted visit counts.

// Decayable is the optional interface for selectors whose state can be
// discounted when a change-point is detected (core's drift watchdog).
type Decayable interface {
	Selector
	// Decay discounts the selector's accumulated history, keeping
	// roughly a keep-fraction (in [0, 1)) of each arm's recent samples
	// and visit counts. Per-arm best records are recomputed from the
	// retained samples, so an arm whose evidence decays away entirely
	// returns to the unvisited state and is re-probed like a fresh arm.
	// keep ≥ 1 is a no-op; keep ≤ 0 forgets everything.
	Decay(keep float64)
}

// Compile-time checks: every selector is Decayable.
var (
	_ Decayable = (*EpsilonGreedy)(nil)
	_ Decayable = (*GradientWeighted)(nil)
	_ Decayable = (*OptimumWeighted)(nil)
	_ Decayable = (*SlidingWindowAUC)(nil)
	_ Decayable = (*UniformRandom)(nil)
	_ Decayable = (*RoundRobin)(nil)
	_ Decayable = (*Softmax)(nil)
	_ Decayable = (*UCB1)(nil)
	_ Decayable = (*GreedyGradient)(nil)
)

// Decay discounts the history in place; selectors inherit it from the
// embedded history. The retained per-arm tail is its most recent
// ⌊len·keep⌋ samples; visit counts shrink to max(retained, ⌊seen·keep⌋)
// so the checkpoint invariant (stored samples ≤ visits) survives any
// Export/Restore round trip mid-decay. The global iteration counter is
// NOT discounted — sample iteration stamps stay meaningful for the
// window- and gradient-based selectors.
func (h *history) Decay(keep float64) {
	h.mustInit("Decay")
	if math.IsNaN(keep) || keep >= 1 {
		return
	}
	if keep < 0 {
		keep = 0
	}
	for i := range h.arms {
		retain := int(float64(len(h.arms[i])) * keep)
		if retain > 0 {
			s := h.arms[i]
			copy(s, s[len(s)-retain:])
			h.arms[i] = s[:retain]
		} else {
			h.arms[i] = h.arms[i][:0]
		}
		decayedSeen := int(float64(h.seen[i]) * keep)
		if decayedSeen < retain {
			decayedSeen = retain
		}
		h.seen[i] = decayedSeen
		// The all-time best record is the stale incumbent's power base;
		// recompute it from what survived.
		h.best[i] = math.Inf(1)
		for _, s := range h.arms[i] {
			if s.value < h.best[i] {
				h.best[i] = s.value
			}
		}
	}
}

// Decay discounts the history and scales the per-arm reward sums to the
// new visit counts, keeping each arm's mean reward fixed across the
// discount (the sums accumulate ALL reported values, not just the
// stored tail, so they must shrink with seen, not with the samples).
func (u *UCB1) Decay(keep float64) {
	u.mustInit("Decay")
	oldSeen := append([]int(nil), u.seen...)
	u.history.Decay(keep)
	for i := range u.sums {
		if oldSeen[i] == 0 {
			u.sums[i] = 0
			continue
		}
		u.sums[i] *= float64(u.seen[i]) / float64(oldSeen[i])
	}
}
