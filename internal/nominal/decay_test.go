package nominal

import (
	"math"
	"math/rand"
	"testing"
)

// decayableSet returns one instance of every selector, all Decayable.
func decayableSet() []Decayable {
	return []Decayable{
		NewEpsilonGreedy(0.10),
		NewGradientWeighted(),
		NewOptimumWeighted(),
		NewSlidingWindowAUC(),
		NewUniformRandom(),
		NewRoundRobin(),
		NewSoftmax(0.1),
		NewUCB1(),
		NewGreedyGradient(0.10),
	}
}

func TestDecayShrinksHistory(t *testing.T) {
	for _, s := range decayableSet() {
		s.Init(3)
		r := rand.New(rand.NewSource(1))
		for i := 0; i < 60; i++ {
			arm := s.Select(r)
			s.Report(arm, 1+float64(arm))
		}
		before := visitsOf(s)
		s.Decay(0.25)
		after := visitsOf(s)
		for i := range after {
			if after[i] > before[i] {
				t.Errorf("%s: arm %d visits grew %d -> %d", s.Name(), i, before[i], after[i])
			}
			want := int(float64(before[i]) * 0.25)
			// Retained samples may floor the count upward by a few.
			if after[i] > want+historyTail/4 {
				t.Errorf("%s: arm %d visits %d, want about %d", s.Name(), i, after[i], want)
			}
		}
		// The selector must remain operational after the discount.
		for i := 0; i < 30; i++ {
			arm := s.Select(r)
			if arm < 0 || arm >= 3 {
				t.Fatalf("%s: post-decay Select returned %d", s.Name(), arm)
			}
			s.Report(arm, 2)
		}
	}
}

// visitsOf snapshots the per-arm visit counts.
func visitsOf(s Decayable) []int {
	h := historyOf(s)
	out := make([]int, h.n())
	for i := range out {
		out[i] = h.visits(i)
	}
	return out
}

// historyOf digs out the embedded history of any package selector.
func historyOf(s Decayable) *history {
	switch v := s.(type) {
	case *EpsilonGreedy:
		return &v.history
	case *GradientWeighted:
		return &v.history
	case *OptimumWeighted:
		return &v.history
	case *SlidingWindowAUC:
		return &v.history
	case *UniformRandom:
		return &v.history
	case *RoundRobin:
		return &v.history
	case *Softmax:
		return &v.history
	case *UCB1:
		return &v.history
	case *GreedyGradient:
		return &v.history
	}
	panic("unknown selector")
}

func TestDecayDethronesStaleIncumbent(t *testing.T) {
	e := NewEpsilonGreedy(0) // pure exploitation: incumbent rules forever
	e.Init(2)
	// Arm 0 once recorded a spectacular 0.1; since the (unobserved)
	// context change it measures 10, while arm 1 measures 1.
	e.Report(0, 0.1)
	for i := 0; i < 30; i++ {
		e.Report(0, 10)
		e.Report(1, 1)
	}
	r := rand.New(rand.NewSource(1))
	if got := e.Select(r); got != 0 {
		t.Fatalf("pre-decay incumbent should be arm 0 (stale record), got %d", got)
	}
	// Keep only the recent quarter: the 0.1 record (oldest sample) falls
	// out of every tail and arm 1 takes over.
	e.Decay(0.25)
	if got := e.Select(r); got != 1 {
		t.Fatalf("post-decay incumbent should be arm 1, got %d", got)
	}
}

func TestDecayToZeroReprobes(t *testing.T) {
	e := NewEpsilonGreedy(0)
	e.Init(3)
	for arm := 0; arm < 3; arm++ {
		for i := 0; i < 10; i++ {
			e.Report(arm, float64(1+arm))
		}
	}
	e.Decay(0)
	r := rand.New(rand.NewSource(1))
	// All evidence gone: the init round restarts (unvisited arms first,
	// in deterministic order).
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		arm := e.Select(r)
		if seen[arm] {
			t.Fatalf("arm %d probed twice during re-init round", arm)
		}
		seen[arm] = true
		e.Report(arm, 5)
	}
}

func TestDecayNoOpAtOne(t *testing.T) {
	e := NewEpsilonGreedy(0.1)
	e.Init(2)
	for i := 0; i < 20; i++ {
		e.Report(i%2, float64(i))
	}
	before, err := e.Export()
	if err != nil {
		t.Fatal(err)
	}
	e.Decay(1)
	e.Decay(math.NaN())
	after, err := e.Export()
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("Decay(1) / Decay(NaN) changed state")
	}
}

func TestDecayPreservesCheckpointInvariant(t *testing.T) {
	// After any decay, Export → Restore must succeed: stored samples per
	// arm never exceed the visit count.
	for _, keep := range []float64{0, 0.1, 0.25, 0.5, 0.9} {
		for _, s := range decayableSet() {
			s.Init(4)
			r := rand.New(rand.NewSource(7))
			for i := 0; i < 200; i++ {
				arm := s.Select(r)
				s.Report(arm, 1+r.Float64())
			}
			s.Decay(keep)
			st, err := s.(Stateful).Export()
			if err != nil {
				t.Fatalf("%s keep=%g: Export: %v", s.Name(), keep, err)
			}
			fresh := s.(Mergeable).Fork()
			if err := fresh.(Stateful).Restore(st); err != nil {
				t.Fatalf("%s keep=%g: Restore after decay: %v", s.Name(), keep, err)
			}
		}
	}
}

func TestUCB1DecayKeepsMeans(t *testing.T) {
	u := NewUCB1()
	u.Init(2)
	for i := 0; i < 40; i++ {
		u.Report(0, 2)
		u.Report(1, 4)
	}
	u.Decay(0.5)
	for i := 0; i < 2; i++ {
		if n := u.visits(i); n > 0 {
			mean := u.sums[i] / float64(n)
			want := float64(2 * (i + 1))
			if math.Abs(mean-want) > 1e-9 {
				t.Fatalf("arm %d mean %.3f after decay, want %.3f", i, mean, want)
			}
		}
	}
	u.Decay(0)
	for i := 0; i < 2; i++ {
		if u.sums[i] != 0 || u.visits(i) != 0 {
			t.Fatalf("arm %d not fully reset: sums=%g visits=%d", i, u.sums[i], u.visits(i))
		}
	}
	// A fully decayed UCB1 re-probes every arm like a fresh one.
	r := rand.New(rand.NewSource(1))
	if got := u.Select(r); got != 0 {
		t.Fatalf("first post-reset probe should be arm 0, got %d", got)
	}
}
