// Package nominal implements the paper's four probabilistic strategies for
// tuning nominal parameters — of which algorithmic choice is the canonical
// instance — plus the ε-Greedy × Gradient-Weighted combination its
// conclusion proposes as future work, and the baselines the paper
// discusses or invites: uniform random, round-robin, the soft-max policy
// it considers and rejects (§III-A), and UCB1 from the bandit literature.
//
// # The Selector contract
//
// A Selector is a multi-armed-bandit-style chooser over n "arms"
// (algorithms). The calling contract mirrors search.Strategy:
//
//   - Init(n) precedes everything and discards prior state. Every other
//     method panics before Init.
//   - Select(r) returns the arm to run, in [0, n). All randomness flows
//     through the passed *rand.Rand, so a caller with a seeded source
//     gets reproducible selection sequences.
//   - Report(arm, value) records one measurement (lower is better; time
//     in the paper). The sequential tuner strictly alternates
//     Select/Report; selectors must NOT rely on that alternation —
//     concurrent drivers issue several Selects before the matching
//     Reports arrive, and merge layers replay Report batches with no
//     Select at all.
//   - Failed iterations reach Report as penalty values (the tuner
//     substitutes its penalty for the failed measurement), so a selector
//     steers away from failing arms with no extra interface. Selectors
//     that want to distinguish real failures additionally implement
//     guard.FailureAware; the tuner calls ReportFailure BEFORE the
//     corresponding Report, so the failure context is in place when the
//     penalty value lands.
//
// # Optional capability interfaces
//
// Three optional interfaces extend the contract; the tuner layers detect
// them by type assertion:
//
//   - Stateful (state.go) — Export/Restore of the selection state, for
//     crash-safe checkpoints. Reward tails are bounded (historyTail), so
//     snapshots stay O(arms).
//   - InFlightAware (inflight.go) — SelectInFlight(r, inFlight) for
//     concurrent engines: the per-arm count of leased-but-unreported
//     trials spreads simultaneous draws across arms. Implementations
//     consume the same random draws as Select when nothing is in flight,
//     which is what makes a single-flight concurrent engine reproduce
//     the sequential decision sequence exactly.
//   - Mergeable (merge.go) — Fork/Merge of selector state for sharded
//     selection: each shard works on a forked replica and the engine
//     periodically folds shard observation deltas back into the
//     authoritative selector. Merge receives failures as penalties,
//     mirroring Report.
//
// All nine selectors in this package implement all of Stateful and
// Mergeable; the four paper strategies also implement InFlightAware.
// The compile-time checks below pin that matrix.
package nominal

// Compile-time interface-satisfaction checks for the full selector
// roster. Removing a method from any selector breaks the build here,
// not at a distant call site's type assertion.
var (
	_ Selector = (*EpsilonGreedy)(nil)
	_ Selector = (*GradientWeighted)(nil)
	_ Selector = (*OptimumWeighted)(nil)
	_ Selector = (*SlidingWindowAUC)(nil)
	_ Selector = (*UniformRandom)(nil)
	_ Selector = (*RoundRobin)(nil)
	_ Selector = (*Softmax)(nil)
	_ Selector = (*UCB1)(nil)
	_ Selector = (*GreedyGradient)(nil)

	_ Stateful = (*EpsilonGreedy)(nil)
	_ Stateful = (*GradientWeighted)(nil)
	_ Stateful = (*OptimumWeighted)(nil)
	_ Stateful = (*SlidingWindowAUC)(nil)
	_ Stateful = (*UniformRandom)(nil)
	_ Stateful = (*RoundRobin)(nil)
	_ Stateful = (*Softmax)(nil)
	_ Stateful = (*UCB1)(nil)
	_ Stateful = (*GreedyGradient)(nil)

	_ Mergeable = (*EpsilonGreedy)(nil)
	_ Mergeable = (*GradientWeighted)(nil)
	_ Mergeable = (*OptimumWeighted)(nil)
	_ Mergeable = (*SlidingWindowAUC)(nil)
	_ Mergeable = (*UniformRandom)(nil)
	_ Mergeable = (*RoundRobin)(nil)
	_ Mergeable = (*Softmax)(nil)
	_ Mergeable = (*UCB1)(nil)
	_ Mergeable = (*GreedyGradient)(nil)

	_ InFlightAware = (*EpsilonGreedy)(nil)
	_ InFlightAware = (*GradientWeighted)(nil)
	_ InFlightAware = (*OptimumWeighted)(nil)
	_ InFlightAware = (*SlidingWindowAUC)(nil)
)
