package nominal_test

import (
	"fmt"
	"math/rand"

	"repro/internal/nominal"
)

// Example demonstrates the bandit-style selector loop that phase two of
// the tuner runs: select an algorithm, observe its time, report it.
func Example() {
	sel := nominal.NewEpsilonGreedy(0) // ε = 0: deterministic for the example
	sel.Init(3)
	times := []float64{12, 7, 30}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		a := sel.Select(r)
		sel.Report(a, times[a])
	}
	// After trying everything once, ε-Greedy exploits algorithm 1.
	fmt.Println(sel.Select(r))
	// Output:
	// 1
}

// ExampleGradientWeighted shows the paper's weight formula on a single
// improving algorithm.
func ExampleGradientWeighted() {
	g := nominal.NewGradientWeighted()
	g.Init(1)
	g.Report(0, 2.0) // performance 1/2
	g.Report(0, 1.0) // performance 1 → gradient +0.5 per iteration
	r := rand.New(rand.NewSource(1))
	fmt.Println(g.Select(r)) // only one arm, but the weight is w = G+2 = 2.5
	// Output:
	// 0
}
