package nominal

import (
	"fmt"
	"math/rand"
)

// InFlightAware is implemented by selectors that can account for trials
// currently leased but not yet reported. Under the concurrent trial
// engine, Select alone systematically misbehaves: visit counts and
// windows only advance on Report, so a burst of concurrent leases all
// see the same statistics and pile onto one arm (ε-Greedy's
// deterministic initialization round is the worst case — sixteen workers
// would all probe arm 0). SelectInFlight receives the per-arm count of
// outstanding leases and spreads concurrent draws accordingly.
//
// inFlight is read-only and has exactly n entries; the engine calls
// SelectInFlight under its lock, so implementations need no internal
// synchronization beyond what Select already has.
type InFlightAware interface {
	Selector
	SelectInFlight(r *rand.Rand, inFlight []int) int
}

// checkInFlight validates the in-flight slice arity against the
// selector's arm count.
func checkInFlight(name string, n int, inFlight []int) {
	if len(inFlight) != n {
		panic(fmt.Sprintf("nominal: %s.SelectInFlight with %d in-flight counts for %d arms", name, len(inFlight), n))
	}
}

// leastLoaded returns the arm with the fewest in-flight trials, breaking
// ties uniformly at random. It is the fallback when no arm has any
// observed data to weight by.
func leastLoaded(r *rand.Rand, inFlight []int) int {
	minLoad := inFlight[0]
	ties := 1
	for _, f := range inFlight[1:] {
		if f < minLoad {
			minLoad = f
			ties = 1
		} else if f == minLoad {
			ties++
		}
	}
	pick := r.Intn(ties)
	for i, f := range inFlight {
		if f == minLoad {
			if pick == 0 {
				return i
			}
			pick--
		}
	}
	return 0 // unreachable
}

// discountInFlight scales each weight by 1/(1+inFlight), so an arm
// already holding k outstanding leases is proportionally less likely to
// receive another before any of them reports.
func discountInFlight(w []float64, inFlight []int) {
	for i := range w {
		w[i] /= float64(1 + inFlight[i])
	}
}

// SelectInFlight is Select with outstanding leases counted as visits
// during the initialization round, so concurrent workers probe distinct
// arms instead of all starting on arm 0. After initialization the
// incumbent logic is unchanged: exploitation deliberately concentrates
// on the best arm regardless of load.
func (e *EpsilonGreedy) SelectInFlight(r *rand.Rand, inFlight []int) int {
	e.mustInit("EpsilonGreedy.SelectInFlight")
	checkInFlight("EpsilonGreedy", e.n(), inFlight)
	if r.Float64() < e.Eps {
		return r.Intn(e.n())
	}
	for i := 0; i < e.n(); i++ {
		if e.visits(i)+inFlight[i] == 0 {
			return i
		}
	}
	if e.RecencyWindow > 0 {
		return e.bestArmWindowed(e.RecencyWindow)
	}
	if arm, ok := e.bestArm(); ok {
		return arm
	}
	// Every arm is leased out but none has reported yet: spread the load.
	return leastLoaded(r, inFlight)
}

// SelectInFlight draws with the gradient weights discounted by each
// arm's outstanding leases.
func (g *GradientWeighted) SelectInFlight(r *rand.Rand, inFlight []int) int {
	g.mustInit("GradientWeighted.SelectInFlight")
	checkInFlight("GradientWeighted", g.n(), inFlight)
	w := make([]float64, g.n())
	for i := range w {
		w[i] = g.weight(i)
	}
	discountInFlight(w, inFlight)
	return weightedDraw(r, w)
}

// SelectInFlight draws with the optimum weights discounted by each arm's
// outstanding leases; before any report it spreads across the least
// loaded arms instead of drawing uniformly.
func (o *OptimumWeighted) SelectInFlight(r *rand.Rand, inFlight []int) int {
	o.mustInit("OptimumWeighted.SelectInFlight")
	checkInFlight("OptimumWeighted", o.n(), inFlight)
	w := make([]float64, o.n())
	maxW := 0.0
	for i := range w {
		if b := o.best[i]; b > 0 && o.visits(i) > 0 {
			w[i] = 1 / b
			if w[i] > maxW {
				maxW = w[i]
			}
		}
	}
	if maxW == 0 {
		return leastLoaded(r, inFlight)
	}
	for i := range w {
		if o.visits(i) == 0 {
			w[i] = maxW
		}
	}
	discountInFlight(w, inFlight)
	return weightedDraw(r, w)
}

// SelectInFlight draws with the windowed-AUC weights discounted by each
// arm's outstanding leases; before any report it spreads across the
// least loaded arms instead of drawing uniformly.
func (s *SlidingWindowAUC) SelectInFlight(r *rand.Rand, inFlight []int) int {
	s.mustInit("SlidingWindowAUC.SelectInFlight")
	checkInFlight("SlidingWindowAUC", s.n(), inFlight)
	w := make([]float64, s.n())
	maxW := 0.0
	for i := range w {
		w[i] = s.weight(i)
		if w[i] > maxW {
			maxW = w[i]
		}
	}
	if maxW == 0 {
		return leastLoaded(r, inFlight)
	}
	for i := range w {
		if s.visits(i) == 0 {
			w[i] = maxW
		}
	}
	discountInFlight(w, inFlight)
	return weightedDraw(r, w)
}
