package nominal

import (
	"math/rand"
	"testing"
)

// TestEpsilonGreedyInFlightSpreadsInit checks the concurrent fix for
// ε-Greedy's deterministic initialization round: with outstanding leases
// counted, n concurrent draws before any report probe n distinct arms
// instead of all landing on arm 0.
func TestEpsilonGreedyInFlightSpreadsInit(t *testing.T) {
	const n = 8
	e := NewEpsilonGreedy(0) // no exploration noise: isolate the init round
	e.Init(n)
	r := rand.New(rand.NewSource(1))
	inFlight := make([]int, n)
	seen := make(map[int]bool)
	for i := 0; i < n; i++ {
		arm := e.SelectInFlight(r, inFlight)
		if seen[arm] {
			t.Fatalf("draw %d repeated arm %d before every arm was leased", i, arm)
		}
		seen[arm] = true
		inFlight[arm]++
	}
	// Every arm leased, none reported: the fallback spreads by load.
	arm := e.SelectInFlight(r, inFlight)
	if arm < 0 || arm >= n {
		t.Fatalf("post-init draw returned %d", arm)
	}
}

// TestEpsilonGreedyInFlightMatchesSelectWhenIdle checks the adapter
// guarantee: with zero trials in flight, SelectInFlight is the same
// decision function as Select (same RNG consumption, same arm).
func TestEpsilonGreedyInFlightMatchesSelectWhenIdle(t *testing.T) {
	mk := func() *EpsilonGreedy {
		e := NewEpsilonGreedy(0.2)
		e.Init(4)
		return e
	}
	a, b := mk(), mk()
	ra := rand.New(rand.NewSource(7))
	rb := rand.New(rand.NewSource(7))
	idle := make([]int, 4)
	for i := 0; i < 200; i++ {
		x := a.Select(ra)
		y := b.SelectInFlight(rb, idle)
		if x != y {
			t.Fatalf("iteration %d: Select = %d, idle SelectInFlight = %d", i, x, y)
		}
		v := float64(1 + x)
		a.Report(x, v)
		b.Report(y, v)
	}
}

// TestWeightedInFlightDiscount checks that a heavily leased arm receives
// proportionally fewer concurrent draws than an idle one with identical
// statistics.
func TestWeightedInFlightDiscount(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() InFlightAware
	}{
		{"gradient", func() InFlightAware { g := NewGradientWeighted(); g.Init(2); return g }},
		{"optimum", func() InFlightAware { o := NewOptimumWeighted(); o.Init(2); return o }},
		{"auc", func() InFlightAware { s := NewSlidingWindowAUC(); s.Init(2); return s }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sel := tc.mk()
			// Identical statistics on both arms.
			for i := 0; i < 8; i++ {
				sel.Report(0, 2.0)
				sel.Report(1, 2.0)
			}
			r := rand.New(rand.NewSource(42))
			inFlight := []int{9, 0} // arm 0 saturated, arm 1 idle
			picks := [2]int{}
			for i := 0; i < 2000; i++ {
				picks[sel.SelectInFlight(r, inFlight)]++
			}
			// Weights are w and w/10: arm 1 should get ~10× arm 0.
			if picks[1] < 5*picks[0] {
				t.Fatalf("loaded arm still drawn heavily: picks = %v", picks)
			}
		})
	}
}

// TestInFlightBeforeAnyReport checks the all-unvisited fallback of the
// weighted selectors: no data at all must spread by load, not crash or
// pile up.
func TestInFlightBeforeAnyReport(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() InFlightAware
	}{
		{"optimum", func() InFlightAware { o := NewOptimumWeighted(); o.Init(3); return o }},
		{"auc", func() InFlightAware { s := NewSlidingWindowAUC(); s.Init(3); return s }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sel := tc.mk()
			r := rand.New(rand.NewSource(3))
			inFlight := []int{2, 0, 2}
			for i := 0; i < 50; i++ {
				if arm := sel.SelectInFlight(r, inFlight); arm != 1 {
					t.Fatalf("draw %d picked arm %d; want the only idle arm 1", i, arm)
				}
			}
		})
	}
}
