package nominal

// Sharded selection support: a Mergeable selector can be forked into
// per-shard replicas that select locally, while the authoritative copy
// periodically absorbs each shard's observation delta. The merge algebra
// is deliberately the selector's own Report path — an observation folded
// via Merge is indistinguishable from one reported live — so a fork that
// merges the exact delta its parent saw reproduces the parent's
// exportable state bit for bit (merge_test.go pins this per selector).
//
// The same algebra carries degraded-mode workers across a process
// boundary: a worker partitioned from the tuning server keeps measuring
// against a cold fork (a fresh local selector) and accumulates its
// Observation stream; on reconnect the stream is replayed into the
// authoritative selector (core.ConcurrentTuner.Absorb), which is
// exactly a Merge of the delta the partition hid. Order within one
// worker's delta is preserved; interleaving across workers is arbitrary
// — the same relaxation shard folds already accept.

// Observation is one completed measurement, the unit of shard deltas.
// Failed observations carry the tuner's penalty as Value, mirroring how
// failures reach Report in the live path.
type Observation struct {
	Arm    int
	Value  float64
	Failed bool
}

// Mergeable is the optional interface for selectors whose state can be
// replicated across shards and reconciled by replaying observation
// deltas. Fork returns a deep, independent copy (with the same bounded
// per-arm sample tail a checkpoint would keep); Merge folds a delta of
// observations into the receiver in order. All selectors in this package
// implement Mergeable.
type Mergeable interface {
	Selector
	Stateful
	// NumArms reports the arm count the selector was Init'ed with.
	NumArms() int
	// Fork returns an independent deep copy of the selector.
	Fork() Selector
	// Merge folds the observations into the selector, in slice order.
	Merge(delta []Observation)
}

// NumArms reports the arm count; selectors inherit it from the embedded
// history.
func (h *history) NumArms() int { return len(h.arms) }

// cloneTail returns a deep copy of the history, keeping only the last
// historyTail samples per arm — the same bound checkpoints use, and more
// than any selector's window looks back — so forking stays O(arms) no
// matter how long the parent has been running.
func (h *history) cloneTail() history {
	c := history{
		arms: make([][]sample, len(h.arms)),
		seen: append([]int(nil), h.seen...),
		iter: h.iter,
		best: append([]float64(nil), h.best...),
		maxW: h.maxW,
	}
	for i, arm := range h.arms {
		tail := arm
		if len(tail) > historyTail {
			tail = tail[len(tail)-historyTail:]
		}
		c.arms[i] = append([]sample(nil), tail...)
	}
	return c
}

// Replay folds observations into any selector through its own Report
// path — the Merge algebra applied from outside the package. Contextual
// warm starts use it to bias a freshly forked replica toward a
// previously recorded per-context winner.
func Replay(s Selector, delta []Observation) { replayObservations(s, delta) }

// replayObservations is the shared Merge implementation: every
// observation goes through the selector's own Report method, so
// type-specific bookkeeping (UCB1 sums, windowed weights) stays in one
// place. Failures have already been converted to penalty values by the
// engine, exactly as in the live Report path.
func replayObservations(s Selector, delta []Observation) {
	for _, o := range delta {
		s.Report(o.Arm, o.Value)
	}
}

// Fork returns an independent deep copy.
func (e *EpsilonGreedy) Fork() Selector {
	c := *e
	c.history = e.history.cloneTail()
	return &c
}

// Merge folds a shard delta into the selector.
func (e *EpsilonGreedy) Merge(delta []Observation) { replayObservations(e, delta) }

// Fork returns an independent deep copy.
func (g *GradientWeighted) Fork() Selector {
	c := *g
	c.history = g.history.cloneTail()
	return &c
}

// Merge folds a shard delta into the selector.
func (g *GradientWeighted) Merge(delta []Observation) { replayObservations(g, delta) }

// Fork returns an independent deep copy.
func (o *OptimumWeighted) Fork() Selector {
	c := *o
	c.history = o.history.cloneTail()
	return &c
}

// Merge folds a shard delta into the selector.
func (o *OptimumWeighted) Merge(delta []Observation) { replayObservations(o, delta) }

// Fork returns an independent deep copy.
func (s *SlidingWindowAUC) Fork() Selector {
	c := *s
	c.history = s.history.cloneTail()
	return &c
}

// Merge folds a shard delta into the selector.
func (s *SlidingWindowAUC) Merge(delta []Observation) { replayObservations(s, delta) }

// Fork returns an independent deep copy.
func (u *UniformRandom) Fork() Selector {
	c := *u
	c.history = u.history.cloneTail()
	return &c
}

// Merge folds a shard delta into the selector.
func (u *UniformRandom) Merge(delta []Observation) { replayObservations(u, delta) }

// Fork returns an independent deep copy, including the cyclic cursor.
func (rr *RoundRobin) Fork() Selector {
	c := *rr
	c.history = rr.history.cloneTail()
	return &c
}

// Merge folds a shard delta into the selector.
func (rr *RoundRobin) Merge(delta []Observation) { replayObservations(rr, delta) }

// Fork returns an independent deep copy.
func (s *Softmax) Fork() Selector {
	c := *s
	c.history = s.history.cloneTail()
	return &c
}

// Merge folds a shard delta into the selector.
func (s *Softmax) Merge(delta []Observation) { replayObservations(s, delta) }

// Fork returns an independent deep copy, including the reward sums.
func (u *UCB1) Fork() Selector {
	c := *u
	c.history = u.history.cloneTail()
	c.sums = append([]float64(nil), u.sums...)
	return &c
}

// Merge folds a shard delta into the selector; Report keeps the reward
// sums consistent.
func (u *UCB1) Merge(delta []Observation) { replayObservations(u, delta) }

// Fork returns an independent deep copy.
func (g *GreedyGradient) Fork() Selector {
	c := *g
	c.history = g.history.cloneTail()
	return &c
}

// Merge folds a shard delta into the selector.
func (g *GreedyGradient) Merge(delta []Observation) { replayObservations(g, delta) }
