package nominal

import (
	"bytes"
	"math/rand"
	"testing"
)

// mergeRoster builds one instance of every selector in the package.
func mergeRoster() []Selector {
	return []Selector{
		NewEpsilonGreedy(0.10),
		NewGradientWeighted(),
		NewOptimumWeighted(),
		NewSlidingWindowAUC(),
		NewUniformRandom(),
		NewRoundRobin(),
		NewSoftmax(0.1),
		NewUCB1(),
		NewGreedyGradient(0.10),
	}
}

// TestForkMergeReproducesDirectReports pins the merge algebra: for every
// selector, forking and then merging the same observation delta the
// parent receives live must yield an identical exportable state.
func TestForkMergeReproducesDirectReports(t *testing.T) {
	const arms = 4
	for _, sel := range mergeRoster() {
		m, ok := sel.(Mergeable)
		if !ok {
			t.Fatalf("%s does not implement Mergeable", sel.Name())
		}
		m.Init(arms)
		if got := m.NumArms(); got != arms {
			t.Fatalf("%s: NumArms = %d, want %d", sel.Name(), got, arms)
		}
		rng := rand.New(rand.NewSource(7))
		// Warm the parent with some history before forking.
		for i := 0; i < 30; i++ {
			m.Report(rng.Intn(arms), 1+rng.Float64())
		}
		fork := m.Fork().(Mergeable)

		// The same delta, applied live to the parent and via Merge to
		// the fork.
		var delta []Observation
		for i := 0; i < 50; i++ {
			o := Observation{Arm: rng.Intn(arms), Value: 1 + rng.Float64(), Failed: i%9 == 0}
			delta = append(delta, o)
			m.Report(o.Arm, o.Value)
		}
		fork.Merge(delta)

		a, err := m.(Stateful).Export()
		if err != nil {
			t.Fatalf("%s: parent Export: %v", sel.Name(), err)
		}
		b, err := fork.(Stateful).Export()
		if err != nil {
			t.Fatalf("%s: fork Export: %v", sel.Name(), err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s: fork+merge state diverged from direct reports\nparent: %s\nfork:   %s",
				sel.Name(), a, b)
		}

		// After identical state, identical RNG streams must produce
		// identical selections.
		r1 := rand.New(rand.NewSource(99))
		r2 := rand.New(rand.NewSource(99))
		for i := 0; i < 20; i++ {
			got, want := fork.Select(r2), m.Select(r1)
			if got != want {
				t.Fatalf("%s: post-merge selection diverged at step %d: fork %d, parent %d",
					sel.Name(), i, got, want)
			}
			v := 1 + float64(i)*0.01
			m.Report(want, v)
			fork.Report(want, v)
		}
	}
}

// TestForkIsIndependent verifies a fork is a deep copy: reporting into
// the fork must not change the parent's exportable state.
func TestForkIsIndependent(t *testing.T) {
	for _, sel := range mergeRoster() {
		m := sel.(Mergeable)
		m.Init(3)
		for i := 0; i < 9; i++ {
			m.Report(i%3, float64(1+i))
		}
		before, err := m.(Stateful).Export()
		if err != nil {
			t.Fatalf("%s: Export: %v", sel.Name(), err)
		}
		fork := m.Fork().(Mergeable)
		for i := 0; i < 20; i++ {
			fork.Report(i%3, 0.5)
		}
		after, err := m.(Stateful).Export()
		if err != nil {
			t.Fatalf("%s: Export: %v", sel.Name(), err)
		}
		if !bytes.Equal(before, after) {
			t.Errorf("%s: reporting into the fork mutated the parent", sel.Name())
		}
	}
}
