// Package documentation lives in doc.go, together with the Selector
// contract and the compile-time interface-satisfaction checks.
package nominal

import (
	"fmt"
	"math"
	"math/rand"
)

// DefaultWindow is the iteration window size used by the Gradient Weighted
// and Sliding-Window AUC strategies in the paper's case studies.
const DefaultWindow = 16

// A Selector chooses one of n algorithms per tuning iteration.
//
// The calling contract mirrors search.Strategy: Init precedes everything;
// Select and Report then alternate, Report carrying the arm that Select
// returned together with its measured value.
type Selector interface {
	// Name identifies the strategy, e.g. "egreedy(10%)".
	Name() string
	// Init prepares the selector for n arms, discarding prior state.
	Init(n int)
	// Select returns the arm to run this iteration, in [0, n).
	Select(r *rand.Rand) int
	// Report records the measured value (lower is better) for an arm.
	Report(arm int, value float64)
}

// sample is one observation of one arm.
type sample struct {
	iter  int // global iteration number at which it was taken
	value float64
}

// history is the per-arm observation store shared by the selectors.
// seen counts reports per arm independently of the stored samples, so a
// checkpoint can persist only a bounded tail of each arm's samples (the
// selectors look at most DefaultWindow-sized windows back) without
// corrupting visit counts.
type history struct {
	arms [][]sample
	seen []int
	iter int
	best []float64 // per-arm minimum value, +Inf when unvisited
	maxW int       // largest window any caller has requested (see window)
}

func (h *history) init(n int) {
	if n <= 0 {
		panic(fmt.Sprintf("nominal: selector initialized with %d arms", n))
	}
	h.arms = make([][]sample, n)
	h.seen = make([]int, n)
	h.best = make([]float64, n)
	for i := range h.best {
		h.best[i] = math.Inf(1)
	}
	h.iter = 0
}

func (h *history) n() int { return len(h.arms) }

func (h *history) report(arm int, v float64) {
	if arm < 0 || arm >= len(h.arms) {
		panic(fmt.Sprintf("nominal: report for arm %d of %d", arm, len(h.arms)))
	}
	h.arms[arm] = append(h.arms[arm], sample{iter: h.iter, value: v})
	h.seen[arm]++
	h.iter++
	if v < h.best[arm] {
		h.best[arm] = v
	}
	// Amortized compaction: no selector looks further back than the
	// largest window it has ever requested (visit counts and the per-arm
	// minimum live in seen/best, checkpoints export at most historyTail
	// samples), so once an arm holds twice the needed tail the older half
	// is dropped in place. Memory stays constant over unbounded runs and
	// appends reuse the compacted array's spare capacity.
	if need := h.tailNeed(); len(h.arms[arm]) > 2*need {
		s := h.arms[arm]
		copy(s, s[len(s)-need:])
		h.arms[arm] = s[:need]
	}
}

// tailNeed returns how many trailing samples per arm must be retained:
// the largest window ever requested, floored at the checkpoint tail.
func (h *history) tailNeed() int {
	if h.maxW > historyTail {
		return h.maxW
	}
	return historyTail
}

func (h *history) visits(arm int) int { return h.seen[arm] }

// window returns the last w samples of an arm. The largest w ever
// requested is remembered so report's compaction never discards samples
// a selector still looks back at.
func (h *history) window(arm, w int) []sample {
	if w > h.maxW {
		h.maxW = w
	}
	s := h.arms[arm]
	if len(s) > w {
		s = s[len(s)-w:]
	}
	return s
}

func (h *history) mustInit(name string) {
	if h.arms == nil {
		panic("nominal: " + name + " used before Init")
	}
}

// bestArm returns the arm with the lowest best-observed value, ties broken
// toward the lower index; ok is false when no arm has been observed.
func (h *history) bestArm() (arm int, ok bool) {
	best := math.Inf(1)
	arm = -1
	for i, v := range h.best {
		if v < best {
			best = v
			arm = i
		}
	}
	return arm, arm >= 0
}

// weightedDraw samples an index proportionally to the (strictly positive)
// weights. It falls back to uniform when the weights are degenerate.
func weightedDraw(r *rand.Rand, w []float64) int {
	total := 0.0
	for _, x := range w {
		if x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x) {
			total += x
		}
	}
	if total <= 0 || math.IsInf(total, 0) || math.IsNaN(total) {
		return r.Intn(len(w))
	}
	t := r.Float64() * total
	acc := 0.0
	for i, x := range w {
		if x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x) {
			acc += x
			if t < acc {
				return i
			}
		}
	}
	return len(w) - 1
}

// EpsilonGreedy is the paper's ε-Greedy strategy (Section III-A): with
// probability 1−ε it exploits the algorithm with the best observed
// performance, otherwise it explores uniformly at random. Initialization
// tries every algorithm exactly once in deterministic order, still subject
// to the ε-randomness, exactly as described in the evaluation (the order is
// visible in the first seven samples of the paper's Figure 2).
type EpsilonGreedy struct {
	history
	// Eps is the exploration probability in [0, 1].
	Eps float64
	// RecencyWindow, when positive, makes "currently best performing" mean
	// the best value among each algorithm's last RecencyWindow samples
	// instead of its all-time best. The paper's formulation (all-time
	// best) assumes a fixed context; under context drift a stale record
	// keeps a no-longer-fast algorithm in power forever, which the
	// windowed variant corrects. Zero (the default) is paper-faithful.
	RecencyWindow int
}

// NewEpsilonGreedy creates an ε-Greedy selector. The paper evaluates
// ε ∈ {0.05, 0.10, 0.20}.
func NewEpsilonGreedy(eps float64) *EpsilonGreedy {
	if eps < 0 || eps > 1 || math.IsNaN(eps) {
		panic(fmt.Sprintf("nominal: ε = %g outside [0,1]", eps))
	}
	return &EpsilonGreedy{Eps: eps}
}

// Name returns e.g. "egreedy(10%)".
func (e *EpsilonGreedy) Name() string {
	return fmt.Sprintf("egreedy(%g%%)", e.Eps*100)
}

// Init prepares the selector for n arms.
func (e *EpsilonGreedy) Init(n int) { e.history.init(n) }

// Select returns the next arm: the first unvisited arm in deterministic
// order during initialization, afterwards the incumbent — in both cases
// subject to ε-exploration.
func (e *EpsilonGreedy) Select(r *rand.Rand) int {
	e.mustInit("EpsilonGreedy.Select")
	if r.Float64() < e.Eps {
		return r.Intn(e.n())
	}
	for i := 0; i < e.n(); i++ {
		if e.visits(i) == 0 {
			return i
		}
	}
	if e.RecencyWindow > 0 {
		return e.bestArmWindowed(e.RecencyWindow)
	}
	arm, _ := e.bestArm()
	return arm
}

// bestArmWindowed returns the arm with the lowest minimum over its last w
// samples.
func (e *EpsilonGreedy) bestArmWindowed(w int) int {
	best, bestVal := 0, math.Inf(1)
	for i := 0; i < e.n(); i++ {
		for _, s := range e.window(i, w) {
			if s.value < bestVal {
				bestVal = s.value
				best = i
			}
		}
	}
	return best
}

// Report records the measurement.
func (e *EpsilonGreedy) Report(arm int, v float64) {
	e.mustInit("EpsilonGreedy.Report")
	e.report(arm, v)
}

// GradientWeighted is the paper's Gradient Weighted strategy (Section
// III-B): each algorithm is drawn with probability proportional to a weight
// derived from the gradient of its performance (1/time) over its latest
// iteration window:
//
//	G_A = (1/m_{A,i1} − 1/m_{A,i0}) / (i1 − i0)
//	w_A = G_A + 2      if G_A ≥ −1
//	      −1 / G_A     otherwise
//
// The weight is always positive, so no algorithm is ever excluded. The
// paper motivates this method as a mitigation for ε-Greedy's weakness on
// tuning-profile crossovers: algorithms still making progress get selected
// more. Once all algorithms have converged all gradients vanish and the
// method degenerates to uniform random selection — the paper calls this
// out explicitly (Section IV-C).
type GradientWeighted struct {
	history
	// Window is the iteration window size; the paper uses 16.
	Window int
	// Relative switches the gradient to the scale-invariant relative
	// improvement rate G = (m_first/m_last − 1)/Δi. The paper's absolute
	// formula operates on 1/time, whose gradients vanish when times are
	// large regardless of relative progress; the relative form responds
	// to "improved by 30% this window" identically at every time scale.
	// Off by default (paper-faithful).
	Relative bool
}

// NewGradientWeighted creates a Gradient Weighted selector with the
// paper's window size of 16.
func NewGradientWeighted() *GradientWeighted {
	return &GradientWeighted{Window: DefaultWindow}
}

// Name returns "gradient-weighted".
func (g *GradientWeighted) Name() string { return "gradient-weighted" }

// Init prepares the selector for n arms.
func (g *GradientWeighted) Init(n int) { g.history.init(n) }

// weight computes w_A for one arm; arms with fewer than two samples have a
// zero gradient and hence weight 2.
func (g *GradientWeighted) weight(arm int) float64 {
	win := g.window(arm, g.Window)
	grad := 0.0
	if len(win) >= 2 {
		first, last := win[0], win[len(win)-1]
		di := last.iter - first.iter
		if di > 0 && first.value > 0 && last.value > 0 {
			if g.Relative {
				grad = (first.value/last.value - 1) / float64(di)
			} else {
				grad = (1/last.value - 1/first.value) / float64(di)
			}
		}
	}
	if grad >= -1 {
		return grad + 2
	}
	return -1 / grad
}

// Select draws an arm with probability proportional to its weight.
func (g *GradientWeighted) Select(r *rand.Rand) int {
	g.mustInit("GradientWeighted.Select")
	w := make([]float64, g.n())
	for i := range w {
		w[i] = g.weight(i)
	}
	return weightedDraw(r, w)
}

// Report records the measurement.
func (g *GradientWeighted) Report(arm int, v float64) {
	g.mustInit("GradientWeighted.Report")
	g.report(arm, v)
}

// OptimumWeighted is the paper's Optimum Weighted strategy (Section
// III-C): each algorithm is drawn with probability proportional to its
// best observed performance, w_A = max_i 1/m_{A,i} = 1/min_i m_{A,i}.
// Unvisited algorithms receive the current maximum weight (optimistic
// initialization) so that every algorithm is tried.
type OptimumWeighted struct {
	history
}

// NewOptimumWeighted creates an Optimum Weighted selector.
func NewOptimumWeighted() *OptimumWeighted { return &OptimumWeighted{} }

// Name returns "optimum-weighted".
func (o *OptimumWeighted) Name() string { return "optimum-weighted" }

// Init prepares the selector for n arms.
func (o *OptimumWeighted) Init(n int) { o.history.init(n) }

// Select draws an arm with probability proportional to 1/min(m).
func (o *OptimumWeighted) Select(r *rand.Rand) int {
	o.mustInit("OptimumWeighted.Select")
	w := make([]float64, o.n())
	maxW := 0.0
	for i := range w {
		if b := o.best[i]; !math.IsInf(b, 1) && b > 0 {
			w[i] = 1 / b
			if w[i] > maxW {
				maxW = w[i]
			}
		}
	}
	if maxW == 0 {
		return r.Intn(o.n())
	}
	for i := range w {
		if o.visits(i) == 0 {
			w[i] = maxW
		}
	}
	return weightedDraw(r, w)
}

// Report records the measurement.
func (o *OptimumWeighted) Report(arm int, v float64) {
	o.mustInit("OptimumWeighted.Report")
	o.report(arm, v)
}

// SlidingWindowAUC is the paper's Sliding-Window Area-Under-the-Curve
// strategy (Section III-D), motivated by the AUC bandit meta-heuristic of
// OpenTuner: each algorithm's weight is the area under its performance
// (1/time) curve within a sliding window of its last Window samples,
//
//	w_A = Σ_{i=i0}^{i1} (1/m_{A,i}) / (i1 − i0).
//
// Unvisited algorithms receive the current maximum weight.
type SlidingWindowAUC struct {
	history
	// Window is the sliding window size; the paper uses 16.
	Window int
}

// NewSlidingWindowAUC creates a Sliding-Window AUC selector with the
// paper's window size of 16.
func NewSlidingWindowAUC() *SlidingWindowAUC {
	return &SlidingWindowAUC{Window: DefaultWindow}
}

// Name returns "sliding-window-auc".
func (s *SlidingWindowAUC) Name() string { return "sliding-window-auc" }

// Init prepares the selector for n arms.
func (s *SlidingWindowAUC) Init(n int) { s.history.init(n) }

func (s *SlidingWindowAUC) weight(arm int) float64 {
	win := s.window(arm, s.Window)
	if len(win) == 0 {
		return 0
	}
	sum := 0.0
	for _, smp := range win {
		if smp.value > 0 {
			sum += 1 / smp.value
		}
	}
	return sum / float64(len(win))
}

// Select draws an arm with probability proportional to its windowed mean
// performance.
func (s *SlidingWindowAUC) Select(r *rand.Rand) int {
	s.mustInit("SlidingWindowAUC.Select")
	w := make([]float64, s.n())
	maxW := 0.0
	for i := range w {
		w[i] = s.weight(i)
		if w[i] > maxW {
			maxW = w[i]
		}
	}
	if maxW == 0 {
		return r.Intn(s.n())
	}
	for i := range w {
		if s.visits(i) == 0 {
			w[i] = maxW
		}
	}
	return weightedDraw(r, w)
}

// Report records the measurement.
func (s *SlidingWindowAUC) Report(arm int, v float64) {
	s.mustInit("SlidingWindowAUC.Report")
	s.report(arm, v)
}
