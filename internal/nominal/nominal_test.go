package nominal

import (
	"math"
	"math/rand"
	"testing"
)

// runBandit drives a selector for iters iterations against a fixed cost
// vector (plus optional noise) and returns the selection counts.
func runBandit(s Selector, costs []float64, iters int, seed int64, noise float64) []int {
	r := rand.New(rand.NewSource(seed))
	s.Init(len(costs))
	counts := make([]int, len(costs))
	for i := 0; i < iters; i++ {
		a := s.Select(r)
		counts[a]++
		v := costs[a]
		if noise > 0 {
			v += r.NormFloat64() * noise * v
			if v <= 0 {
				v = costs[a] * 0.01
			}
		}
		s.Report(a, v)
	}
	return counts
}

func argmax(xs []int) int {
	m := 0
	for i := range xs {
		if xs[i] > xs[m] {
			m = i
		}
	}
	return m
}

var fixedCosts = []float64{50, 20, 80, 35, 120} // arm 1 is optimal

func TestEpsilonGreedyInitializationOrder(t *testing.T) {
	// With ε = 0 the first n selections must be 0, 1, …, n−1 in order.
	s := NewEpsilonGreedy(0)
	r := rand.New(rand.NewSource(1))
	s.Init(5)
	for want := 0; want < 5; want++ {
		got := s.Select(r)
		if got != want {
			t.Fatalf("initialization selection %d = arm %d, want %d", want, got, want)
		}
		s.Report(got, fixedCosts[got])
	}
	// After initialization with ε = 0 only the best arm is selected.
	for i := 0; i < 50; i++ {
		got := s.Select(r)
		if got != 1 {
			t.Fatalf("post-init selection = arm %d, want 1", got)
		}
		s.Report(got, fixedCosts[got])
	}
}

func TestEpsilonGreedyConvergesToBest(t *testing.T) {
	for _, eps := range []float64{0.05, 0.10, 0.20} {
		s := NewEpsilonGreedy(eps)
		counts := runBandit(s, fixedCosts, 1000, 42, 0.02)
		if m := argmax(counts); m != 1 {
			t.Errorf("ε=%g: most selected arm %d (counts %v), want 1", eps, m, counts)
		}
		// Exploitation share should be roughly ≥ 1−ε minus init overhead.
		share := float64(counts[1]) / 1000
		if share < 1-eps-0.1 {
			t.Errorf("ε=%g: best-arm share %.2f too low", eps, share)
		}
	}
}

func TestEpsilonGreedyExploresAllArms(t *testing.T) {
	s := NewEpsilonGreedy(0.2)
	counts := runBandit(s, fixedCosts, 2000, 7, 0)
	for i, c := range counts {
		if c == 0 {
			t.Errorf("arm %d never selected with ε=0.2", i)
		}
	}
}

func TestEpsilonGreedyName(t *testing.T) {
	if got := NewEpsilonGreedy(0.05).Name(); got != "egreedy(5%)" {
		t.Errorf("Name = %q", got)
	}
}

func TestEpsilonGreedyPanicsOnBadEps(t *testing.T) {
	for _, eps := range []float64{-0.1, 1.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ε=%g did not panic", eps)
				}
			}()
			NewEpsilonGreedy(eps)
		}()
	}
}

func TestGradientWeightedPrefersImproving(t *testing.T) {
	// Arm 0 improves steadily, arm 1 is static. Gradient Weighted must
	// select the improving arm more often.
	// The weight formula operates on performance = 1/time, so it reacts to
	// improvements that are large relative to the absolute scale — the
	// paper observes (§IV-C) that similar tuning profiles make it unable
	// to differentiate. Here arm 0 improves geometrically (performance
	// keeps growing), arm 1 is static: the gradient of arm 0 dominates.
	s := NewGradientWeighted()
	r := rand.New(rand.NewSource(5))
	s.Init(2)
	cost0 := 1.0
	counts := make([]int, 2)
	for i := 0; i < 300; i++ {
		a := s.Select(r)
		counts[a]++
		if a == 0 {
			s.Report(0, cost0)
			cost0 *= 0.9 // keeps improving
		} else {
			s.Report(1, 1.0)
		}
	}
	if counts[0] <= counts[1]*2 {
		t.Errorf("improving arm selected %d times vs static %d; want a strong preference", counts[0], counts[1])
	}
}

func TestGradientWeightedDegeneratesToUniform(t *testing.T) {
	// With all arms static the gradients vanish and selection must be
	// (roughly) uniform — the paper's Section IV-C observation.
	s := NewGradientWeighted()
	counts := runBandit(s, []float64{50, 50, 50, 50}, 4000, 3, 0)
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("static arms: arm %d selected %d of 4000, want ≈1000", i, c)
		}
	}
}

func TestGradientWeightedWeightFormula(t *testing.T) {
	g := NewGradientWeighted()
	g.Init(1)
	// Two samples at iterations 0 and 1: m goes 2 → 1, so performance goes
	// 0.5 → 1, G = 0.5, w = 2.5.
	g.Report(0, 2)
	g.Report(0, 1)
	if w := g.weight(0); math.Abs(w-2.5) > 1e-12 {
		t.Errorf("weight = %g, want 2.5", w)
	}
	// Worsening: m goes 0.2 → 10 over one step: G = 1/10 − 1/0.2 = −4.9 <
	// −1, so w = −1/G = 1/4.9.
	g2 := NewGradientWeighted()
	g2.Init(1)
	g2.Report(0, 0.2)
	g2.Report(0, 10)
	if w := g2.weight(0); math.Abs(w-1/4.9) > 1e-12 {
		t.Errorf("worsening weight = %g, want %g", w, 1/4.9)
	}
	// Single sample: zero gradient, w = 2.
	g3 := NewGradientWeighted()
	g3.Init(1)
	g3.Report(0, 42)
	if w := g3.weight(0); w != 2 {
		t.Errorf("single-sample weight = %g, want 2", w)
	}
	// Unvisited: w = 2 as well (always positive, never excluded).
	g4 := NewGradientWeighted()
	g4.Init(2)
	if w := g4.weight(1); w != 2 {
		t.Errorf("unvisited weight = %g, want 2", w)
	}
}

func TestGradientWeightedWindowLimit(t *testing.T) {
	g := NewGradientWeighted()
	g.Window = 4
	g.Init(1)
	// Long worsening history followed by a short improving window: only
	// the window counts, so the weight must reflect improvement (> 2).
	for i := 0; i < 20; i++ {
		g.Report(0, float64(10+i))
	}
	for _, v := range []float64{10, 8, 6, 4} {
		g.Report(0, v)
	}
	if w := g.weight(0); w <= 2 {
		t.Errorf("windowed weight = %g, want > 2 (improvement inside window)", w)
	}
}

func TestOptimumWeightedProportions(t *testing.T) {
	// With best values 10 and 30, weights are 1/10 and 1/30: arm 0 should
	// be drawn about 75% of the time.
	s := NewOptimumWeighted()
	r := rand.New(rand.NewSource(9))
	s.Init(2)
	s.Report(0, 10)
	s.Report(1, 30)
	counts := make([]int, 2)
	for i := 0; i < 10000; i++ {
		counts[s.Select(r)]++
	}
	share := float64(counts[0]) / 10000
	if share < 0.72 || share > 0.78 {
		t.Errorf("arm-0 share %.3f, want ≈ 0.75", share)
	}
}

func TestOptimumWeightedVisitsAllArms(t *testing.T) {
	s := NewOptimumWeighted()
	counts := runBandit(s, fixedCosts, 500, 21, 0)
	for i, c := range counts {
		if c == 0 {
			t.Errorf("arm %d never visited", i)
		}
	}
	if m := argmax(counts); m != 1 {
		t.Errorf("most selected arm %d, want 1 (counts %v)", m, counts)
	}
}

func TestSlidingWindowAUCTracksRecentPerformance(t *testing.T) {
	// Arm 0 was good historically but turned bad; arm 1 is now better.
	// With a small window the AUC strategy must prefer arm 1.
	s := NewSlidingWindowAUC()
	s.Window = 4
	s.Init(2)
	for i := 0; i < 10; i++ {
		s.Report(0, 10) // good history…
	}
	for i := 0; i < 4; i++ {
		s.Report(0, 1000) // …but the window now holds only bad samples
		s.Report(1, 50)
	}
	r := rand.New(rand.NewSource(2))
	counts := make([]int, 2)
	for i := 0; i < 2000; i++ {
		counts[s.Select(r)]++
	}
	if counts[1] <= counts[0] {
		t.Errorf("AUC ignored the window: counts %v", counts)
	}
}

func TestSlidingWindowAUCConvergesToBest(t *testing.T) {
	s := NewSlidingWindowAUC()
	counts := runBandit(s, fixedCosts, 1000, 13, 0.02)
	if m := argmax(counts); m != 1 {
		t.Errorf("most selected arm %d (counts %v), want 1", m, counts)
	}
}

func TestUniformRandomIsUniform(t *testing.T) {
	s := NewUniformRandom()
	counts := runBandit(s, fixedCosts, 5000, 99, 0)
	for i, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("arm %d selected %d of 5000, want ≈1000", i, c)
		}
	}
}

func TestRoundRobinCycles(t *testing.T) {
	s := NewRoundRobin()
	s.Init(3)
	r := rand.New(rand.NewSource(1))
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := s.Select(r); got != w {
			t.Fatalf("selection %d = %d, want %d", i, got, w)
		}
		s.Report(w, 1)
	}
}

func TestSoftmaxGreedyAtLowTemperature(t *testing.T) {
	s := NewSoftmax(0.01)
	counts := runBandit(s, fixedCosts, 1000, 17, 0)
	// Low temperature ⇒ near-greedy on the best arm.
	if float64(counts[1])/1000 < 0.9 {
		t.Errorf("low-temp softmax best-arm share %v too low (counts %v)", counts[1], counts)
	}
}

func TestSoftmaxExploresAtHighTemperature(t *testing.T) {
	s := NewSoftmax(100)
	counts := runBandit(s, fixedCosts, 4000, 23, 0)
	for i, c := range counts {
		if c < 500 {
			t.Errorf("high-temp softmax arm %d selected only %d times (counts %v)", i, c, counts)
		}
	}
}

func TestSoftmaxPanicsOnBadTemp(t *testing.T) {
	for _, temp := range []float64{0, -1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("temperature %g did not panic", temp)
				}
			}()
			NewSoftmax(temp)
		}()
	}
}

func TestSelectorsPanicBeforeInit(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, s := range []Selector{
		NewEpsilonGreedy(0.1), NewGradientWeighted(), NewOptimumWeighted(),
		NewSlidingWindowAUC(), NewUniformRandom(), NewRoundRobin(), NewSoftmax(1),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s.Select before Init did not panic", s.Name())
				}
			}()
			s.Select(r)
		}()
	}
}

func TestInitPanicsOnZeroArms(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Init(0) did not panic")
		}
	}()
	NewEpsilonGreedy(0.1).Init(0)
}

func TestReportPanicsOnBadArm(t *testing.T) {
	s := NewEpsilonGreedy(0.1)
	s.Init(3)
	defer func() {
		if recover() == nil {
			t.Fatal("Report(7) did not panic")
		}
	}()
	s.Report(7, 1)
}

func TestNewByName(t *testing.T) {
	cases := map[string]string{
		"egreedy:5":   "egreedy(5%)",
		"egreedy:10":  "egreedy(10%)",
		"egreedy:20":  "egreedy(20%)",
		"gradient":    "gradient-weighted",
		"optimum":     "optimum-weighted",
		"auc":         "sliding-window-auc",
		"random":      "uniform-random",
		"roundrobin":  "round-robin",
		"softmax:0.5": "softmax(0.5)",
	}
	for arg, want := range cases {
		s, err := NewByName(arg)
		if err != nil {
			t.Errorf("NewByName(%q): %v", arg, err)
			continue
		}
		if s.Name() != want {
			t.Errorf("NewByName(%q).Name() = %q, want %q", arg, s.Name(), want)
		}
	}
	for _, bad := range []string{"nope", "egreedy:x", "softmax:y"} {
		if _, err := NewByName(bad); err == nil {
			t.Errorf("NewByName(%q) did not error", bad)
		}
	}
}

func TestPaperSet(t *testing.T) {
	set := PaperSet()
	wantNames := []string{
		"egreedy(5%)", "egreedy(10%)", "egreedy(20%)",
		"gradient-weighted", "optimum-weighted", "sliding-window-auc",
	}
	if len(set) != len(wantNames) {
		t.Fatalf("PaperSet has %d strategies, want %d", len(set), len(wantNames))
	}
	for i, s := range set {
		if s.Name() != wantNames[i] {
			t.Errorf("PaperSet[%d] = %q, want %q", i, s.Name(), wantNames[i])
		}
	}
}

func TestWeightedDrawDegenerate(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	// All-zero, NaN, and Inf weights must fall back to uniform without
	// panicking.
	for _, w := range [][]float64{
		{0, 0, 0},
		{math.NaN(), math.NaN()},
		{math.Inf(1), 1},
	} {
		for i := 0; i < 100; i++ {
			got := weightedDraw(r, w)
			if got < 0 || got >= len(w) {
				t.Fatalf("weightedDraw out of range: %d for %v", got, w)
			}
		}
	}
}

func TestWeightedDrawProportions(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	w := []float64{1, 3}
	counts := make([]int, 2)
	for i := 0; i < 10000; i++ {
		counts[weightedDraw(r, w)]++
	}
	share := float64(counts[1]) / 10000
	if share < 0.72 || share > 0.78 {
		t.Errorf("weight-3 share %.3f, want ≈ 0.75", share)
	}
}

// Property-style check: every selector, under any of several seeds, only
// returns arms in range and never gets stuck on an unvisited-arm panic.
func TestSelectorsStayInRange(t *testing.T) {
	mk := func() []Selector {
		return append(PaperSet(), NewUniformRandom(), NewRoundRobin(), NewSoftmax(0.5))
	}
	for seed := int64(0); seed < 5; seed++ {
		for _, s := range mk() {
			r := rand.New(rand.NewSource(seed))
			s.Init(3)
			for i := 0; i < 200; i++ {
				a := s.Select(r)
				if a < 0 || a >= 3 {
					t.Fatalf("%s returned arm %d", s.Name(), a)
				}
				s.Report(a, 1+float64(a))
			}
		}
	}
}

func TestEpsilonGreedyRecencyWindow(t *testing.T) {
	// Arm 0 was once fast (5) but turned slow (50); arm 1 is now the
	// faster one (10). With a recency window the stale record must not
	// keep arm 0 in power.
	feed := func(e *EpsilonGreedy) {
		e.Init(2)
		e.Report(0, 5) // stale record
		for i := 0; i < 20; i++ {
			e.Report(0, 50)
			e.Report(1, 10)
		}
	}
	r := rand.New(rand.NewSource(3))
	plain := NewEpsilonGreedy(0)
	feed(plain)
	if got := plain.Select(r); got != 0 {
		t.Errorf("plain ε-Greedy should exploit the stale record (arm 0), got %d", got)
	}
	windowed := NewEpsilonGreedy(0)
	windowed.RecencyWindow = 8
	feed(windowed)
	if got := windowed.Select(r); got != 1 {
		t.Errorf("windowed ε-Greedy should exploit the recent best (arm 1), got %d", got)
	}
}

func TestUCB1VisitsAllThenConverges(t *testing.T) {
	s := NewUCB1()
	r := rand.New(rand.NewSource(1))
	s.Init(5)
	// First n selections visit every arm once in order.
	for want := 0; want < 5; want++ {
		got := s.Select(r)
		if got != want {
			t.Fatalf("initial selection %d = %d", want, got)
		}
		s.Report(got, fixedCosts[got])
	}
	counts := runBandit(NewUCB1(), fixedCosts, 2000, 11, 0.02)
	if m := argmax(counts); m != 1 {
		t.Errorf("UCB1 most-selected arm %d (counts %v), want 1", m, counts)
	}
	// The exploration bonus guarantees every arm keeps being sampled.
	for i, c := range counts {
		if c < 5 {
			t.Errorf("arm %d sampled only %d times", i, c)
		}
	}
}

func TestUCB1DegenerateEqualCosts(t *testing.T) {
	counts := runBandit(NewUCB1(), []float64{5, 5, 5}, 900, 3, 0)
	for i, c := range counts {
		if c < 200 {
			t.Errorf("equal costs: arm %d selected %d of 900", i, c)
		}
	}
}

func TestUCB1ByName(t *testing.T) {
	s, err := NewByName("ucb1")
	if err != nil || s.Name() != "ucb1" {
		t.Fatalf("NewByName(ucb1): %v %v", s, err)
	}
}
