package nominal

import (
	"encoding/json"
	"fmt"

	"repro/internal/checkpoint"
)

// Stateful is the optional interface for selectors whose internal state
// can be checkpointed. Export serializes the selection state; Restore
// must be called on an instance that has been Init'ed with the same
// number of arms and overwrites it. Every selector constructed by
// NewByName implements Stateful — most inherit the implementation from
// the embedded history, and selectors with extra state (RoundRobin's
// cursor, UCB1's reward sums) override it.
type Stateful interface {
	Export() ([]byte, error)
	Restore([]byte) error
}

// historyTail bounds how many samples per arm a checkpoint keeps. The
// selectors only ever look DefaultWindow samples back (see window), so a
// tail of 64 preserves exact behavior for any window up to that size
// while keeping snapshots O(arms), not O(iterations).
const historyTail = 64

type sampleState struct {
	Iter  int          `json:"iter"`
	Value checkpoint.F `json:"value"`
}

type historyState struct {
	Arms [][]sampleState `json:"arms"`
	Seen []int           `json:"seen"`
	Iter int             `json:"iter"`
	Best []checkpoint.F  `json:"best"`
}

func (h *history) exportHist() historyState {
	st := historyState{
		Arms: make([][]sampleState, len(h.arms)),
		Seen: append([]int(nil), h.seen...),
		Iter: h.iter,
		Best: checkpoint.Floats(h.best),
	}
	for i, arm := range h.arms {
		tail := arm
		if len(tail) > historyTail {
			tail = tail[len(tail)-historyTail:]
		}
		ss := make([]sampleState, len(tail))
		for j, s := range tail {
			ss[j] = sampleState{Iter: s.iter, Value: checkpoint.F(s.value)}
		}
		st.Arms[i] = ss
	}
	return st
}

func (h *history) restoreHist(st historyState) error {
	if h.arms == nil {
		return fmt.Errorf("nominal: Restore before Init")
	}
	n := len(h.arms)
	if len(st.Arms) != n || len(st.Seen) != n || len(st.Best) != n {
		return fmt.Errorf("nominal: Restore state has %d arms, selector has %d", len(st.Arms), n)
	}
	for i, c := range st.Seen {
		if c < 0 || len(st.Arms[i]) > c {
			return fmt.Errorf("nominal: Restore arm %d has %d samples but %d visits", i, len(st.Arms[i]), c)
		}
	}
	arms := make([][]sample, n)
	for i, ss := range st.Arms {
		arm := make([]sample, len(ss))
		for j, s := range ss {
			arm[j] = sample{iter: s.Iter, value: float64(s.Value)}
		}
		arms[i] = arm
	}
	h.arms = arms
	h.seen = append([]int(nil), st.Seen...)
	h.iter = st.Iter
	h.best = checkpoint.Unfloats(st.Best)
	return nil
}

// Export serializes the selector's observation history; selectors whose
// whole state is the embedded history inherit this method.
func (h *history) Export() ([]byte, error) {
	if h.arms == nil {
		return nil, fmt.Errorf("nominal: Export before Init")
	}
	return json.Marshal(h.exportHist())
}

// Restore overwrites the history of an Init'ed selector.
func (h *history) Restore(data []byte) error {
	var st historyState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	return h.restoreHist(st)
}

// ---- RoundRobin ----

type roundRobinState struct {
	Hist historyState `json:"hist"`
	Next int          `json:"next"`
}

// Export serializes the history and the cyclic cursor.
func (rr *RoundRobin) Export() ([]byte, error) {
	if rr.arms == nil {
		return nil, fmt.Errorf("nominal: Export before Init")
	}
	return json.Marshal(roundRobinState{Hist: rr.exportHist(), Next: rr.next})
}

// Restore overwrites the state of an Init'ed selector.
func (rr *RoundRobin) Restore(data []byte) error {
	var st roundRobinState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	if err := rr.restoreHist(st.Hist); err != nil {
		return err
	}
	if st.Next < 0 || st.Next >= rr.n() {
		return fmt.Errorf("nominal: RoundRobin.Restore: cursor %d out of range", st.Next)
	}
	rr.next = st.Next
	return nil
}

// ---- UCB1 ----

type ucb1State struct {
	Hist historyState   `json:"hist"`
	Sums []checkpoint.F `json:"sums"`
}

// Export serializes the history and the per-arm reward sums.
func (u *UCB1) Export() ([]byte, error) {
	if u.arms == nil {
		return nil, fmt.Errorf("nominal: Export before Init")
	}
	return json.Marshal(ucb1State{Hist: u.exportHist(), Sums: checkpoint.Floats(u.sums)})
}

// Restore overwrites the state of an Init'ed selector.
func (u *UCB1) Restore(data []byte) error {
	var st ucb1State
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	if err := u.restoreHist(st.Hist); err != nil {
		return err
	}
	if len(st.Sums) != u.n() {
		return fmt.Errorf("nominal: UCB1.Restore: %d sums for %d arms", len(st.Sums), u.n())
	}
	u.sums = checkpoint.Unfloats(st.Sums)
	return nil
}
