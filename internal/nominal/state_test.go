package nominal

import (
	"math/rand"
	"testing"
)

var stateSelectorNames = []string{
	"egreedy:10", "greedygradient:10", "gradient", "optimum", "auc",
	"random", "roundrobin", "ucb1", "softmax:0.5",
}

// syntheticValue is a deterministic per-(arm, visit) measurement: arm 0
// is best, every arm improves slowly so gradient selectors see signal.
func syntheticValue(arm, visit int) float64 {
	return float64(arm+1)*10 - 0.05*float64(visit)
}

// TestSelectorStateRoundTrip: export mid-run, restore into a fresh
// Init'ed instance, and require identical selections forever after when
// both copies draw from identically seeded streams.
func TestSelectorStateRoundTrip(t *testing.T) {
	const arms = 4
	for _, name := range stateSelectorNames {
		for _, warm := range []int{0, 1, 5, 40, 200} {
			a, err := NewByName(name)
			if err != nil {
				t.Fatal(err)
			}
			a.Init(arms)
			visits := make([]int, arms)
			rng := rand.New(rand.NewSource(9))
			for i := 0; i < warm; i++ {
				arm := a.Select(rng)
				a.Report(arm, syntheticValue(arm, visits[arm]))
				visits[arm]++
			}
			data, err := a.(Stateful).Export()
			if err != nil {
				t.Fatalf("%s@%d: Export: %v", name, warm, err)
			}

			b, err := NewByName(name)
			if err != nil {
				t.Fatal(err)
			}
			b.Init(arms)
			if err := b.(Stateful).Restore(data); err != nil {
				t.Fatalf("%s@%d: Restore: %v", name, warm, err)
			}

			// Selection randomness is external; identical streams must
			// yield identical decisions.
			rngA := rand.New(rand.NewSource(77))
			rngB := rand.New(rand.NewSource(77))
			for i := 0; i < 100; i++ {
				armA, armB := a.Select(rngA), b.Select(rngB)
				if armA != armB {
					t.Fatalf("%s@%d: selection %d diverged: %d vs %d", name, warm, i, armA, armB)
				}
				v := syntheticValue(armA, visits[armA])
				visits[armA]++
				a.Report(armA, v)
				b.Report(armB, v)
			}
		}
	}
}

// TestSelectorRestoreRejectsBadState: corruption errors, never panics.
func TestSelectorRestoreRejectsBadState(t *testing.T) {
	for _, name := range stateSelectorNames {
		s, err := NewByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s.Init(3)
		st := s.(Stateful)
		if err := st.Restore([]byte(`{`)); err == nil {
			t.Errorf("%s: restoring truncated JSON succeeded", name)
		}
		if err := st.Restore([]byte(`[1,2,3]`)); err == nil {
			t.Errorf("%s: restoring a non-object succeeded", name)
		}
	}
}

// TestSelectorRestoreRejectsArmMismatch: a snapshot from a different arm
// count must be refused, not half-applied.
func TestSelectorRestoreRejectsArmMismatch(t *testing.T) {
	for _, name := range stateSelectorNames {
		a, _ := NewByName(name)
		a.Init(5)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 10; i++ {
			arm := a.Select(rng)
			a.Report(arm, float64(arm))
		}
		data, err := a.(Stateful).Export()
		if err != nil {
			t.Fatal(err)
		}
		b, _ := NewByName(name)
		b.Init(3)
		if err := b.(Stateful).Restore(data); err == nil {
			t.Errorf("%s: restoring a 5-arm snapshot into 3 arms succeeded", name)
		}
	}
}

// TestSelectorExportBeforeInitFails and restore likewise.
func TestSelectorStateBeforeInitFails(t *testing.T) {
	for _, name := range stateSelectorNames {
		s, _ := NewByName(name)
		if _, err := s.(Stateful).Export(); err == nil {
			t.Errorf("%s: Export before Init succeeded", name)
		}
		s2, _ := NewByName(name)
		if err := s2.(Stateful).Restore([]byte(`{}`)); err == nil {
			t.Errorf("%s: Restore before Init succeeded", name)
		}
	}
}

// TestHistoryTailPreservesVisitCounts: exports bound the stored samples
// per arm, but the visit counters must survive exactly — ε-greedy's
// unvisited-arm probing and UCB1's confidence terms depend on them.
func TestHistoryTailPreservesVisitCounts(t *testing.T) {
	a := NewEpsilonGreedy(0.1)
	a.Init(2)
	rng := rand.New(rand.NewSource(1))
	const runs = historyTail * 3
	for i := 0; i < runs; i++ {
		arm := a.Select(rng)
		a.Report(arm, float64(arm))
	}
	data, err := a.Export()
	if err != nil {
		t.Fatal(err)
	}
	b := NewEpsilonGreedy(0.1)
	b.Init(2)
	if err := b.Restore(data); err != nil {
		t.Fatal(err)
	}
	for arm := 0; arm < 2; arm++ {
		if got, want := b.visits(arm), a.visits(arm); got != want {
			t.Errorf("arm %d: restored %d visits, want %d", arm, got, want)
		}
		if len(b.arms[arm]) > historyTail {
			t.Errorf("arm %d: restored %d samples, tail bound is %d", arm, len(b.arms[arm]), historyTail)
		}
	}
}
