// Package param models tunable parameters following Stevens' typology of
// scales of measurement, as used by Pfaffe et al. to classify autotuning
// parameters (Table I of the paper): Nominal, Ordinal, Interval, and Ratio.
//
// Every class is characterized by a distinguishing property and subsumes the
// properties of all previous classes:
//
//	Nominal:  labels only (e.g. choice of algorithm)
//	Ordinal:  labels with an order (e.g. buffer size in {small, medium, large})
//	Interval: order plus a notion of distance (e.g. percentage of a maximum)
//	Ratio:    distance plus a natural zero (e.g. number of threads)
//
// Internally every parameter value is represented as a float64. For Nominal
// and Ordinal parameters the value is an index into the label list; for
// Interval and Ratio parameters it is the numeric value itself, optionally
// snapped to integers. The crucial semantic difference is surfaced through
// the HasDistance and HasOrder predicates: search strategies that require a
// metric (Nelder-Mead, particle swarm, differential evolution, hill
// climbing, simulated annealing) must refuse spaces containing parameters
// without one. This is the paper's central observation about why the
// classical autotuning toolbox cannot manipulate algorithmic choice.
package param

import (
	"fmt"
	"math"
	"strconv"
)

// Class identifies one of Stevens' four scales of measurement.
type Class int

// The four parameter classes, in subsumption order.
const (
	Nominal Class = iota
	Ordinal
	Interval
	Ratio
)

// String returns the conventional name of the class.
func (c Class) String() string {
	switch c {
	case Nominal:
		return "nominal"
	case Ordinal:
		return "ordinal"
	case Interval:
		return "interval"
	case Ratio:
		return "ratio"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// HasOrder reports whether values of this class are ordered.
func (c Class) HasOrder() bool { return c >= Ordinal }

// HasDistance reports whether a meaningful distance exists between values.
func (c Class) HasDistance() bool { return c >= Interval }

// HasNaturalZero reports whether the scale has a natural zero point, making
// ratios of values meaningful.
func (c Class) HasNaturalZero() bool { return c >= Ratio }

// A Parameter is a single tunable dimension of a search space.
type Parameter interface {
	// Name identifies the parameter within its space.
	Name() string
	// Class returns the Stevens class of the parameter.
	Class() Class
	// Lo and Hi bound the internal float64 representation (inclusive).
	Lo() float64
	Hi() float64
	// Clamp maps an arbitrary float64 onto a valid internal value, snapping
	// to indices or integers where the parameter is discrete.
	Clamp(x float64) float64
	// Cardinality returns the number of distinct values, or 0 when the
	// parameter is continuous.
	Cardinality() int
	// FormatValue renders an internal value for humans (e.g. the label of a
	// nominal value, or the number for numeric classes).
	FormatValue(x float64) string
}

// NominalParam is an unordered, label-valued parameter. Algorithmic choice
// is the canonical instance. It intentionally offers no notion of order or
// distance; its internal representation is the label index.
type NominalParam struct {
	name   string
	labels []string
}

// NewNominal creates a nominal parameter over the given labels.
// It panics if no labels are supplied, as an empty choice is meaningless.
func NewNominal(name string, labels ...string) *NominalParam {
	if len(labels) == 0 {
		panic("param: nominal parameter needs at least one label")
	}
	ls := make([]string, len(labels))
	copy(ls, labels)
	return &NominalParam{name: name, labels: ls}
}

// Name returns the parameter name.
func (p *NominalParam) Name() string { return p.name }

// Class returns Nominal.
func (p *NominalParam) Class() Class { return Nominal }

// Lo returns 0, the first label index.
func (p *NominalParam) Lo() float64 { return 0 }

// Hi returns the last label index.
func (p *NominalParam) Hi() float64 { return float64(len(p.labels) - 1) }

// Cardinality returns the number of labels.
func (p *NominalParam) Cardinality() int { return len(p.labels) }

// Clamp rounds to the nearest valid label index.
func (p *NominalParam) Clamp(x float64) float64 {
	return clampIndex(x, len(p.labels))
}

// Labels returns a copy of the label list.
func (p *NominalParam) Labels() []string {
	ls := make([]string, len(p.labels))
	copy(ls, p.labels)
	return ls
}

// Index returns the index of the given label, or -1 when absent.
func (p *NominalParam) Index(label string) int {
	for i, l := range p.labels {
		if l == label {
			return i
		}
	}
	return -1
}

// FormatValue returns the label at the (clamped) index x.
func (p *NominalParam) FormatValue(x float64) string {
	return p.labels[int(p.Clamp(x))]
}

// OrdinalParam is an ordered, label-valued parameter, such as a buffer size
// drawn from {small, medium, large}. Order is meaningful, distance is not.
type OrdinalParam struct {
	name   string
	labels []string
}

// NewOrdinal creates an ordinal parameter whose labels are given in
// ascending order. It panics if no labels are supplied.
func NewOrdinal(name string, ascending ...string) *OrdinalParam {
	if len(ascending) == 0 {
		panic("param: ordinal parameter needs at least one label")
	}
	ls := make([]string, len(ascending))
	copy(ls, ascending)
	return &OrdinalParam{name: name, labels: ls}
}

// Name returns the parameter name.
func (p *OrdinalParam) Name() string { return p.name }

// Class returns Ordinal.
func (p *OrdinalParam) Class() Class { return Ordinal }

// Lo returns 0, the first label index.
func (p *OrdinalParam) Lo() float64 { return 0 }

// Hi returns the last label index.
func (p *OrdinalParam) Hi() float64 { return float64(len(p.labels) - 1) }

// Cardinality returns the number of labels.
func (p *OrdinalParam) Cardinality() int { return len(p.labels) }

// Clamp rounds to the nearest valid label index.
func (p *OrdinalParam) Clamp(x float64) float64 {
	return clampIndex(x, len(p.labels))
}

// Labels returns a copy of the label list in ascending order.
func (p *OrdinalParam) Labels() []string {
	ls := make([]string, len(p.labels))
	copy(ls, p.labels)
	return ls
}

// FormatValue returns the label at the (clamped) index x.
func (p *OrdinalParam) FormatValue(x float64) string {
	return p.labels[int(p.Clamp(x))]
}

// IntervalParam is a numeric parameter with meaningful distances but no
// natural zero, such as "percentage of a maximum buffer size".
type IntervalParam struct {
	name    string
	lo, hi  float64
	integer bool
}

// NewInterval creates a continuous interval parameter on [lo, hi].
// It panics when the bounds are inverted or not finite.
func NewInterval(name string, lo, hi float64) *IntervalParam {
	checkBounds(lo, hi)
	return &IntervalParam{name: name, lo: lo, hi: hi}
}

// NewIntervalInt creates an integer-valued interval parameter on [lo, hi].
func NewIntervalInt(name string, lo, hi int) *IntervalParam {
	checkBounds(float64(lo), float64(hi))
	return &IntervalParam{name: name, lo: float64(lo), hi: float64(hi), integer: true}
}

// Name returns the parameter name.
func (p *IntervalParam) Name() string { return p.name }

// Class returns Interval.
func (p *IntervalParam) Class() Class { return Interval }

// Lo returns the lower bound.
func (p *IntervalParam) Lo() float64 { return p.lo }

// Hi returns the upper bound.
func (p *IntervalParam) Hi() float64 { return p.hi }

// Integer reports whether values snap to integers.
func (p *IntervalParam) Integer() bool { return p.integer }

// Cardinality returns the number of integers in range, or 0 if continuous.
func (p *IntervalParam) Cardinality() int {
	if !p.integer {
		return 0
	}
	return int(p.hi-p.lo) + 1
}

// Clamp restricts x to [lo, hi], rounding to an integer when applicable.
func (p *IntervalParam) Clamp(x float64) float64 {
	return clampNumeric(x, p.lo, p.hi, p.integer)
}

// FormatValue renders the (clamped) numeric value.
func (p *IntervalParam) FormatValue(x float64) string {
	return formatNumeric(p.Clamp(x), p.integer)
}

// RatioParam is a numeric parameter with a natural zero, such as a thread
// count or a cost weight. It behaves like IntervalParam but additionally
// requires a non-negative lower bound so ratios of values stay meaningful.
type RatioParam struct {
	name    string
	lo, hi  float64
	integer bool
}

// NewRatio creates a continuous ratio parameter on [lo, hi], lo ≥ 0.
func NewRatio(name string, lo, hi float64) *RatioParam {
	checkBounds(lo, hi)
	if lo < 0 {
		panic("param: ratio parameter requires a non-negative lower bound")
	}
	return &RatioParam{name: name, lo: lo, hi: hi}
}

// NewRatioInt creates an integer-valued ratio parameter on [lo, hi], lo ≥ 0.
func NewRatioInt(name string, lo, hi int) *RatioParam {
	if lo < 0 {
		panic("param: ratio parameter requires a non-negative lower bound")
	}
	checkBounds(float64(lo), float64(hi))
	return &RatioParam{name: name, lo: float64(lo), hi: float64(hi), integer: true}
}

// Name returns the parameter name.
func (p *RatioParam) Name() string { return p.name }

// Class returns Ratio.
func (p *RatioParam) Class() Class { return Ratio }

// Lo returns the lower bound.
func (p *RatioParam) Lo() float64 { return p.lo }

// Hi returns the upper bound.
func (p *RatioParam) Hi() float64 { return p.hi }

// Integer reports whether values snap to integers.
func (p *RatioParam) Integer() bool { return p.integer }

// Cardinality returns the number of integers in range, or 0 if continuous.
func (p *RatioParam) Cardinality() int {
	if !p.integer {
		return 0
	}
	return int(p.hi-p.lo) + 1
}

// Clamp restricts x to [lo, hi], rounding to an integer when applicable.
func (p *RatioParam) Clamp(x float64) float64 {
	return clampNumeric(x, p.lo, p.hi, p.integer)
}

// FormatValue renders the (clamped) numeric value.
func (p *RatioParam) FormatValue(x float64) string {
	return formatNumeric(p.Clamp(x), p.integer)
}

func clampIndex(x float64, n int) float64 {
	i := int(math.Round(x))
	if i < 0 || math.IsNaN(x) {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return float64(i)
}

func clampNumeric(x, lo, hi float64, integer bool) float64 {
	if math.IsNaN(x) {
		x = lo
	}
	if x < lo {
		x = lo
	}
	if x > hi {
		x = hi
	}
	if integer {
		x = math.Round(x)
		if x < lo {
			x = math.Ceil(lo)
		}
		if x > hi {
			x = math.Floor(hi)
		}
	}
	return x
}

func formatNumeric(x float64, integer bool) string {
	if integer {
		return strconv.FormatInt(int64(x), 10)
	}
	return strconv.FormatFloat(x, 'g', 6, 64)
}

func checkBounds(lo, hi float64) {
	if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		panic("param: bounds must be finite")
	}
	if lo > hi {
		panic(fmt.Sprintf("param: inverted bounds [%g, %g]", lo, hi))
	}
}
