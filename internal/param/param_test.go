package param

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClassPredicates(t *testing.T) {
	cases := []struct {
		class                    Class
		order, distance, natZero bool
		name                     string
	}{
		{Nominal, false, false, false, "nominal"},
		{Ordinal, true, false, false, "ordinal"},
		{Interval, true, true, false, "interval"},
		{Ratio, true, true, true, "ratio"},
	}
	for _, c := range cases {
		if c.class.HasOrder() != c.order {
			t.Errorf("%v.HasOrder() = %v, want %v", c.class, c.class.HasOrder(), c.order)
		}
		if c.class.HasDistance() != c.distance {
			t.Errorf("%v.HasDistance() = %v, want %v", c.class, c.class.HasDistance(), c.distance)
		}
		if c.class.HasNaturalZero() != c.natZero {
			t.Errorf("%v.HasNaturalZero() = %v, want %v", c.class, c.class.HasNaturalZero(), c.natZero)
		}
		if c.class.String() != c.name {
			t.Errorf("%v.String() = %q, want %q", c.class, c.class.String(), c.name)
		}
	}
	if got := Class(99).String(); got != "Class(99)" {
		t.Errorf("unknown class String() = %q", got)
	}
}

func TestNominalParam(t *testing.T) {
	p := NewNominal("algo", "a", "b", "c")
	if p.Name() != "algo" || p.Class() != Nominal {
		t.Fatalf("basic accessors wrong: %q %v", p.Name(), p.Class())
	}
	if p.Lo() != 0 || p.Hi() != 2 || p.Cardinality() != 3 {
		t.Fatalf("bounds/cardinality wrong: %g %g %d", p.Lo(), p.Hi(), p.Cardinality())
	}
	if p.Index("b") != 1 || p.Index("zzz") != -1 {
		t.Fatalf("Index lookup wrong")
	}
	if got := p.FormatValue(1.4); got != "b" {
		t.Errorf("FormatValue(1.4) = %q, want b", got)
	}
	if got := p.Clamp(-3); got != 0 {
		t.Errorf("Clamp(-3) = %g, want 0", got)
	}
	if got := p.Clamp(17); got != 2 {
		t.Errorf("Clamp(17) = %g, want 2", got)
	}
	if got := p.Clamp(math.NaN()); got != 0 {
		t.Errorf("Clamp(NaN) = %g, want 0", got)
	}
	ls := p.Labels()
	ls[0] = "mutated"
	if p.Labels()[0] != "a" {
		t.Errorf("Labels() exposed internal slice")
	}
}

func TestNominalPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewNominal with no labels did not panic")
		}
	}()
	NewNominal("empty")
}

func TestOrdinalParam(t *testing.T) {
	p := NewOrdinal("size", "small", "medium", "large")
	if p.Class() != Ordinal || !p.Class().HasOrder() || p.Class().HasDistance() {
		t.Fatalf("ordinal class properties wrong")
	}
	if p.Cardinality() != 3 || p.FormatValue(2) != "large" {
		t.Fatalf("ordinal basics wrong")
	}
	if got := p.Clamp(0.6); got != 1 {
		t.Errorf("Clamp(0.6) = %g, want 1", got)
	}
	if p.Labels()[1] != "medium" {
		t.Errorf("Labels order wrong")
	}
}

func TestIntervalParam(t *testing.T) {
	p := NewInterval("pct", 0.0, 100.0)
	if p.Class() != Interval || p.Integer() {
		t.Fatalf("interval basics wrong")
	}
	if p.Cardinality() != 0 {
		t.Fatalf("continuous cardinality should be 0, got %d", p.Cardinality())
	}
	if got := p.Clamp(55.5); got != 55.5 {
		t.Errorf("Clamp inside range changed value: %g", got)
	}
	if got := p.Clamp(-1); got != 0 {
		t.Errorf("Clamp(-1) = %g, want 0", got)
	}
	if got := p.Clamp(1e9); got != 100 {
		t.Errorf("Clamp(1e9) = %g, want 100", got)
	}

	q := NewIntervalInt("depth", 2, 6)
	if q.Cardinality() != 5 {
		t.Fatalf("integer interval cardinality = %d, want 5", q.Cardinality())
	}
	if got := q.Clamp(3.6); got != 4 {
		t.Errorf("Clamp(3.6) = %g, want 4", got)
	}
	if got := q.FormatValue(4.2); got != "4" {
		t.Errorf("FormatValue(4.2) = %q, want 4", got)
	}
}

func TestRatioParam(t *testing.T) {
	p := NewRatioInt("threads", 1, 8)
	if p.Class() != Ratio || !p.Class().HasNaturalZero() {
		t.Fatalf("ratio basics wrong")
	}
	if got := p.Clamp(0); got != 1 {
		t.Errorf("Clamp(0) = %g, want 1", got)
	}
	if got := p.Clamp(100); got != 8 {
		t.Errorf("Clamp(100) = %g, want 8", got)
	}
	c := NewRatio("weight", 0.5, 2.0)
	if c.Integer() || c.Cardinality() != 0 {
		t.Fatalf("continuous ratio basics wrong")
	}
}

func TestRatioPanicsOnNegativeLo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRatio with negative lo did not panic")
		}
	}()
	NewRatio("bad", -1, 1)
}

func TestBoundsPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewInterval("x", 2, 1) },
		func() { NewInterval("x", math.NaN(), 1) },
		func() { NewInterval("x", 0, math.Inf(1)) },
		func() { NewRatioInt("x", 5, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad bounds did not panic")
				}
			}()
			fn()
		}()
	}
}

// Property: Clamp is idempotent and always lands in [Lo, Hi] for every
// parameter kind and any input, including pathological floats.
func TestClampProperties(t *testing.T) {
	params := []Parameter{
		NewNominal("n", "a", "b", "c", "d"),
		NewOrdinal("o", "x", "y", "z"),
		NewInterval("i", -3.5, 12.25),
		NewIntervalInt("ii", -4, 9),
		NewRatio("r", 0, 7.5),
		NewRatioInt("ri", 2, 20),
	}
	for _, p := range params {
		p := p
		f := func(x float64) bool {
			v := p.Clamp(x)
			return v >= p.Lo() && v <= p.Hi() && p.Clamp(v) == v
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("parameter %q: %v", p.Name(), err)
		}
		// Explicit pathological cases quick.Check may not generate.
		for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -0.0} {
			v := p.Clamp(x)
			if math.IsNaN(v) || v < p.Lo() || v > p.Hi() {
				t.Errorf("parameter %q: Clamp(%v) = %v out of range", p.Name(), x, v)
			}
		}
	}
}

func testSpace() *Space {
	return NewSpace(
		NewNominal("algo", "bm", "kmp", "ssef"),
		NewRatioInt("threads", 1, 4),
		NewInterval("alpha", 0, 1),
	)
}

func TestSpaceBasics(t *testing.T) {
	s := testSpace()
	if s.Dim() != 3 {
		t.Fatalf("Dim = %d, want 3", s.Dim())
	}
	if !s.HasNominal() {
		t.Errorf("HasNominal should be true")
	}
	if s.MetricOnly() {
		t.Errorf("MetricOnly should be false with a nominal dimension")
	}
	if s.IndexOf("threads") != 1 || s.IndexOf("nope") != -1 {
		t.Errorf("IndexOf wrong")
	}
	if s.Cardinality() != 0 {
		t.Errorf("continuous space cardinality should be 0")
	}
	if s.Param(0).Name() != "algo" {
		t.Errorf("Param(0) wrong")
	}
	if len(s.Params()) != 3 {
		t.Errorf("Params() wrong length")
	}
}

func TestSpaceDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate parameter name did not panic")
		}
	}()
	NewSpace(NewRatioInt("x", 0, 1), NewInterval("x", 0, 1))
}

func TestSpaceClampAndValid(t *testing.T) {
	s := testSpace()
	c := s.Clamp(Config{-5, 99, 0.5})
	want := Config{0, 4, 0.5}
	if !c.Equal(want) {
		t.Fatalf("Clamp = %v, want %v", c, want)
	}
	if !s.Valid(c) {
		t.Errorf("clamped config should be valid")
	}
	if s.Valid(Config{0, 1}) {
		t.Errorf("wrong arity should be invalid")
	}
	if s.Valid(Config{0.5, 1, 0.5}) {
		t.Errorf("non-snapped nominal index should be invalid")
	}
	if s.Valid(Config{0, 1, math.NaN()}) {
		t.Errorf("NaN should be invalid")
	}
}

func TestSpaceClampArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	testSpace().Clamp(Config{1})
}

func TestSpaceCenterAndRandom(t *testing.T) {
	s := testSpace()
	c := s.Center()
	if !s.Valid(c) {
		t.Fatalf("Center() invalid: %v", c)
	}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		c := s.Random(r)
		if !s.Valid(c) {
			t.Fatalf("Random() produced invalid config %v", c)
		}
	}
}

func TestSpaceEnumerate(t *testing.T) {
	s := NewSpace(
		NewNominal("a", "x", "y"),
		NewRatioInt("b", 0, 2),
	)
	if s.Cardinality() != 6 {
		t.Fatalf("Cardinality = %d, want 6", s.Cardinality())
	}
	var got []Config
	if err := s.Enumerate(func(c Config) bool {
		got = append(got, c.Clone())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("enumerated %d configs, want 6", len(got))
	}
	// Lexicographic order, last dimension fastest.
	want := []Config{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("config %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Early stop.
	count := 0
	if err := s.Enumerate(func(Config) bool { count++; return count < 3 }); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("early stop after %d, want 3", count)
	}
	// Continuous space refuses.
	if err := testSpace().Enumerate(func(Config) bool { return true }); err == nil {
		t.Errorf("Enumerate on continuous space should error")
	}
}

func TestSpaceFormat(t *testing.T) {
	s := testSpace()
	got := s.Format(Config{1, 2, 0.25})
	want := "algo=kmp threads=2 alpha=0.25"
	if got != want {
		t.Errorf("Format = %q, want %q", got, want)
	}
	if s.Format(Config{1}) == want {
		t.Errorf("arity mismatch should not format normally")
	}
}

func TestSpaceNeighbors(t *testing.T) {
	s := NewSpace(NewRatioInt("a", 0, 3), NewInterval("b", 0, 1))
	c := s.Clamp(Config{1, 0.5})
	ns, err := s.Neighbors(c)
	if err != nil {
		t.Fatal(err)
	}
	// a: 0 and 2; b: 0.49 and 0.51 → 4 neighbours.
	if len(ns) != 4 {
		t.Fatalf("got %d neighbours, want 4: %v", len(ns), ns)
	}
	for _, n := range ns {
		if !s.Valid(n) {
			t.Errorf("invalid neighbour %v", n)
		}
		if n.Equal(c) {
			t.Errorf("neighbour equals origin")
		}
	}
	// At a boundary fewer neighbours exist.
	ns, err = s.Neighbors(s.Clamp(Config{0, 0}))
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 2 {
		t.Errorf("boundary config should have 2 neighbours, got %d", len(ns))
	}
	// Nominal dimension refuses.
	if _, err := testSpace().Neighbors(testSpace().Center()); err == nil {
		t.Errorf("Neighbors on nominal space should error")
	}
	// Invalid config refuses.
	if _, err := s.Neighbors(Config{0.5, 0.5}); err == nil {
		t.Errorf("Neighbors of invalid config should error")
	}
}

func TestConfigCloneEqual(t *testing.T) {
	c := Config{1, 2, 3}
	d := c.Clone()
	if !c.Equal(d) {
		t.Fatalf("clone not equal")
	}
	d[0] = 9
	if c.Equal(d) || c[0] != 1 {
		t.Fatalf("clone aliases original")
	}
	if c.Equal(Config{1, 2}) {
		t.Errorf("different lengths should not be equal")
	}
}

// Property: Space.Clamp is idempotent and produces valid configs for
// arbitrary inputs.
func TestSpaceClampProperty(t *testing.T) {
	s := testSpace()
	f := func(a, b, c float64) bool {
		cfg := s.Clamp(Config{a, b, c})
		return s.Valid(cfg) && cfg.Equal(s.Clamp(cfg))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
