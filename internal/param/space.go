package param

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// A Config is a point in a search space: one internal float64 value per
// parameter, in the space's parameter order. Configs are plain slices so
// search strategies can do arithmetic on the numeric dimensions; Space
// methods exist to clamp the result back onto the valid grid.
type Config []float64

// Clone returns an independent copy of the configuration.
func (c Config) Clone() Config {
	d := make(Config, len(c))
	copy(d, c)
	return d
}

// Equal reports whether two configurations hold identical values.
func (c Config) Equal(d Config) bool {
	if len(c) != len(d) {
		return false
	}
	for i := range c {
		if c[i] != d[i] {
			return false
		}
	}
	return true
}

// A Space is an ordered, immutable-after-construction list of parameters
// forming the Cartesian search space T = τ₀ × τ₁ × … × τⱼ of the paper.
type Space struct {
	params []Parameter
}

// NewSpace builds a space over the given parameters. Parameter names must
// be unique; NewSpace panics otherwise, as a duplicate name is always a
// programming error in space construction.
func NewSpace(params ...Parameter) *Space {
	seen := make(map[string]bool, len(params))
	for _, p := range params {
		if seen[p.Name()] {
			panic(fmt.Sprintf("param: duplicate parameter name %q", p.Name()))
		}
		seen[p.Name()] = true
	}
	ps := make([]Parameter, len(params))
	copy(ps, params)
	return &Space{params: ps}
}

// Dim returns the number of parameters (dimensions).
func (s *Space) Dim() int { return len(s.params) }

// Param returns the i-th parameter.
func (s *Space) Param(i int) Parameter { return s.params[i] }

// Params returns a copy of the parameter list.
func (s *Space) Params() []Parameter {
	ps := make([]Parameter, len(s.params))
	copy(ps, s.params)
	return ps
}

// IndexOf returns the index of the named parameter, or -1 when absent.
func (s *Space) IndexOf(name string) int {
	for i, p := range s.params {
		if p.Name() == name {
			return i
		}
	}
	return -1
}

// HasNominal reports whether the space contains any nominal parameter.
// Search strategies that rely on distance or direction must reject such
// spaces (the paper's Section II-B analysis).
func (s *Space) HasNominal() bool {
	for _, p := range s.params {
		if p.Class() == Nominal {
			return true
		}
	}
	return false
}

// MetricOnly reports whether every dimension offers a distance, i.e. the
// space is safe for metric search strategies such as Nelder-Mead.
func (s *Space) MetricOnly() bool {
	for _, p := range s.params {
		if !p.Class().HasDistance() {
			return false
		}
	}
	return true
}

// Cardinality returns the number of distinct configurations, or 0 when any
// dimension is continuous (infinite).
func (s *Space) Cardinality() int {
	total := 1
	for _, p := range s.params {
		c := p.Cardinality()
		if c == 0 {
			return 0
		}
		total *= c
	}
	return total
}

// Clamp maps an arbitrary point onto the nearest valid configuration.
// The input is not modified.
func (s *Space) Clamp(c Config) Config {
	if len(c) != len(s.params) {
		panic(fmt.Sprintf("param: config has %d values, space has %d dimensions", len(c), len(s.params)))
	}
	out := make(Config, len(c))
	for i, p := range s.params {
		out[i] = p.Clamp(c[i])
	}
	return out
}

// Valid reports whether c is a valid point of the space (correct arity and
// every value a fixed point of its parameter's Clamp).
func (s *Space) Valid(c Config) bool {
	if len(c) != len(s.params) {
		return false
	}
	for i, p := range s.params {
		if math.IsNaN(c[i]) || p.Clamp(c[i]) != c[i] {
			return false
		}
	}
	return true
}

// Center returns the configuration at the midpoint of every dimension,
// a deterministic starting point for strategies without a better prior.
func (s *Space) Center() Config {
	c := make(Config, len(s.params))
	for i, p := range s.params {
		c[i] = p.Clamp((p.Lo() + p.Hi()) / 2)
	}
	return c
}

// Random returns a uniformly random valid configuration.
func (s *Space) Random(r *rand.Rand) Config {
	c := make(Config, len(s.params))
	for i, p := range s.params {
		c[i] = p.Clamp(p.Lo() + r.Float64()*(p.Hi()-p.Lo()))
	}
	return c
}

// Enumerate calls fn for every configuration of a fully discrete space, in
// lexicographic order, stopping early if fn returns false. It returns an
// error when the space has a continuous dimension. The Config passed to fn
// is reused between calls; clone it to retain it.
func (s *Space) Enumerate(fn func(Config) bool) error {
	if s.Cardinality() == 0 && s.Dim() > 0 {
		return fmt.Errorf("param: cannot enumerate a space with continuous dimensions")
	}
	c := make(Config, len(s.params))
	for i, p := range s.params {
		c[i] = p.Clamp(p.Lo())
	}
	if s.Dim() == 0 {
		fn(c)
		return nil
	}
	for {
		if !fn(c) {
			return nil
		}
		// Odometer increment from the last dimension.
		i := len(s.params) - 1
		for i >= 0 {
			p := s.params[i]
			next := c[i] + 1
			if next <= p.Hi() {
				c[i] = p.Clamp(next)
				break
			}
			c[i] = p.Clamp(p.Lo())
			i--
		}
		if i < 0 {
			return nil
		}
	}
}

// Format renders a configuration as "name=value" pairs for humans.
func (s *Space) Format(c Config) string {
	if len(c) != len(s.params) {
		return fmt.Sprintf("<arity mismatch: %d values for %d dims>", len(c), len(s.params))
	}
	var b strings.Builder
	for i, p := range s.params {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(p.Name())
		b.WriteString("=")
		b.WriteString(p.FormatValue(c[i]))
	}
	return b.String()
}

// Neighbors returns the valid axis-aligned unit-step neighbours of c for
// fully discrete, ordered spaces (used by hill climbing and simulated
// annealing). It returns an error when the space contains a nominal or
// continuous dimension, for which "neighbour" is undefined — this encodes
// the paper's argument that neighbourhood-based methods cannot handle
// algorithmic choice.
func (s *Space) Neighbors(c Config) ([]Config, error) {
	if s.HasNominal() {
		return nil, fmt.Errorf("param: neighbourhood is undefined on nominal dimensions")
	}
	if !s.Valid(c) {
		return nil, fmt.Errorf("param: invalid configuration")
	}
	var out []Config
	for i, p := range s.params {
		step := 1.0
		if p.Cardinality() == 0 {
			// Continuous: use 1% of the range as the unit step.
			step = (p.Hi() - p.Lo()) / 100
			if step == 0 {
				continue
			}
		}
		for _, d := range []float64{-step, +step} {
			n := c.Clone()
			n[i] = p.Clamp(c[i] + d)
			if !n.Equal(c) {
				out = append(out, n)
			}
		}
	}
	return out, nil
}
