// Package ray implements the raytracing application of the paper's second
// case study: a two-stage rendering pipeline. Stage one constructs an SAH
// kD-tree over the scene with one of the four tunable construction
// algorithms (package kdtree); stage two casts one primary ray per pixel
// and, on a hit, a secondary ray toward the light source to test for
// occlusion, exactly as described in Section IV-B. Rendering rows are
// distributed over a goroutine pool.
//
// The render loop is the paper's tuning loop: every frame the online tuner
// picks a construction algorithm and a parameter configuration, and the
// measured frame time feeds the tuner.
package ray

import (
	"math"
	"sync"
	"time"

	"repro/internal/geom"
	"repro/internal/kdtree"
)

// Camera is a simple pinhole camera.
type Camera struct {
	// Eye is the camera position, LookAt the point it faces.
	Eye, LookAt geom.Vec3
	// Up is the world up direction; the zero value means +Y.
	Up geom.Vec3
	// FOV is the vertical field of view in degrees; 0 means 60.
	FOV float64
}

// basis returns the orthonormal camera frame.
func (c Camera) basis() (right, up, forward geom.Vec3) {
	forward = c.LookAt.Sub(c.Eye).Normalize()
	worldUp := c.Up
	if worldUp.Len() == 0 {
		worldUp = geom.V(0, 1, 0)
	}
	right = forward.Cross(worldUp).Normalize()
	if right.Len() == 0 {
		// Degenerate: forward parallel to up; pick another up.
		right = forward.Cross(geom.V(1, 0, 0)).Normalize()
	}
	up = right.Cross(forward)
	return right, up, forward
}

// Ray returns the primary ray through pixel (px, py) of a w×h image.
func (c Camera) Ray(px, py, w, h int) geom.Ray {
	right, up, forward := c.basis()
	fov := c.FOV
	if fov <= 0 {
		fov = 60
	}
	halfH := math.Tan(fov * math.Pi / 360)
	halfW := halfH * float64(w) / float64(h)
	// Pixel centers, y growing downward in image space.
	u := (2*(float64(px)+0.5)/float64(w) - 1) * halfW
	v := (1 - 2*(float64(py)+0.5)/float64(h)) * halfH
	dir := forward.Add(right.Scale(u)).Add(up.Scale(v)).Normalize()
	return geom.Ray{Origin: c.Eye, Dir: dir}
}

// Frame is a rendered grayscale image.
type Frame struct {
	Width, Height int
	// Pix holds Width*Height intensities in [0, 1], row major.
	Pix []float64
}

// At returns the intensity at (x, y).
func (f Frame) At(x, y int) float64 { return f.Pix[y*f.Width+x] }

// MeanIntensity returns the average pixel intensity.
func (f Frame) MeanIntensity() float64 {
	if len(f.Pix) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range f.Pix {
		s += p
	}
	return s / float64(len(f.Pix))
}

// Intersecter is any ray-acceleration structure usable by the renderer;
// both *kdtree.Tree (and its flat encoding via an adapter) and *bvh.Tree
// satisfy it. The shared Hit type carries the triangle index that the
// accompanying triangle slice resolves.
type Intersecter interface {
	Intersect(r geom.Ray, tMin, tMax float64) (kdtree.Hit, bool)
	Occluded(r geom.Ray, tMin, tMax float64) bool
}

// Render casts one primary ray per pixel into the tree and shades hits
// with Lambert shading plus a shadow ray toward the light. workers ≤ 0
// falls back to 1.
func Render(tree *kdtree.Tree, cam Camera, light geom.Vec3, w, h, workers int) Frame {
	return RenderWith(tree, tree.Tris, cam, light, w, h, workers)
}

// RenderWith renders through any acceleration structure; tris must be the
// triangle slice the structure's hit indices refer to. This is the entry
// point extension X5 uses to make the acceleration structure itself an
// algorithmic choice.
func RenderWith(acc Intersecter, tris []geom.Triangle, cam Camera, light geom.Vec3, w, h, workers int) Frame {
	if workers < 1 {
		workers = 1
	}
	f := Frame{Width: w, Height: h, Pix: make([]float64, w*h)}
	rows := make(chan int)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for y := range rows {
				renderRow(acc, tris, cam, light, w, h, y, f.Pix[y*w:(y+1)*w])
			}
		}()
	}
	for y := 0; y < h; y++ {
		rows <- y
	}
	close(rows)
	wg.Wait()
	return f
}

func renderRow(acc Intersecter, tris []geom.Triangle, cam Camera, light geom.Vec3, w, h, y int, out []float64) {
	const shadowBias = 1e-6
	for x := 0; x < w; x++ {
		r := cam.Ray(x, y, w, h)
		hit, ok := acc.Intersect(r, 1e-9, math.Inf(1))
		if !ok {
			out[x] = 0
			continue
		}
		p := r.At(hit.T)
		n := tris[hit.Tri].Normal().Normalize()
		// Face the normal toward the viewer.
		if n.Dot(r.Dir) > 0 {
			n = n.Scale(-1)
		}
		toLight := light.Sub(p)
		dist := toLight.Len()
		l := toLight.Normalize()
		intensity := 0.2 + 0.8*math.Max(0, n.Dot(l))
		// Secondary ray: ambient-occlusion/shadow test toward the light.
		shadow := geom.Ray{Origin: p.Add(n.Scale(shadowBias)), Dir: l}
		if acc.Occluded(shadow, shadowBias, dist) {
			intensity *= 0.3
		}
		out[x] = math.Min(1, intensity)
	}
}

// Pipeline is the complete two-stage rendering application: per frame it
// builds the acceleration structure with a chosen construction algorithm
// and configuration, then renders. This is the repeatedly executed,
// performance-central operation the online tuner wraps.
type Pipeline struct {
	// Tris is the scene geometry.
	Tris []geom.Triangle
	// Cam is the camera; Light the point light for secondary rays.
	Cam   Camera
	Light geom.Vec3
	// Width and Height set the image resolution.
	Width, Height int
	// Workers is the render goroutine count (≥ 1).
	Workers int
}

// Timing breaks a frame's cost into the two pipeline stages.
type Timing struct {
	Build, Render, Total time.Duration
}

// RenderFrame executes one frame: stage one builds the kD-tree with the
// given builder and parameters, stage two renders. It returns the frame
// and the stage timings. Note that for the Lazy builder part of the
// construction cost is incurred inside the render stage — exactly the
// trade the algorithm makes.
func (pl *Pipeline) RenderFrame(b kdtree.Builder, p kdtree.Params) (Frame, Timing) {
	start := time.Now()
	tree := b.Build(pl.Tris, p)
	afterBuild := time.Now()
	f := Render(tree, pl.Cam, pl.Light, pl.Width, pl.Height, pl.Workers)
	end := time.Now()
	return f, Timing{
		Build:  afterBuild.Sub(start),
		Render: end.Sub(afterBuild),
		Total:  end.Sub(start),
	}
}
