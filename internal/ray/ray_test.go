package ray

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bvh"
	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/scenegen"
)

func TestCameraRayGeometry(t *testing.T) {
	cam := Camera{Eye: geom.V(0, 0, -10), LookAt: geom.V(0, 0, 0), FOV: 90}
	// Center pixel looks straight ahead.
	r := cam.Ray(50, 50, 101, 101)
	if math.Abs(r.Dir.X) > 1e-9 || math.Abs(r.Dir.Y) > 1e-9 || r.Dir.Z <= 0 {
		t.Errorf("center ray dir %v, want +Z", r.Dir)
	}
	if r.Origin != cam.Eye {
		t.Error("ray origin should be the eye")
	}
	// Top-left pixel points up and left.
	tl := cam.Ray(0, 0, 101, 101)
	if tl.Dir.Y <= 0 {
		t.Errorf("top pixel ray should point up, got %v", tl.Dir)
	}
	// Directions are normalized.
	if math.Abs(tl.Dir.Len()-1) > 1e-12 {
		t.Error("ray direction not normalized")
	}
}

func TestCameraDegenerateUp(t *testing.T) {
	// Looking straight up with default +Y up must not produce NaNs.
	cam := Camera{Eye: geom.V(0, 0, 0), LookAt: geom.V(0, 10, 0)}
	r := cam.Ray(5, 5, 10, 10)
	if math.IsNaN(r.Dir.X) || r.Dir.Len() == 0 {
		t.Errorf("degenerate camera ray %v", r.Dir)
	}
}

func TestRenderSimpleScene(t *testing.T) {
	// A single large triangle in front of the camera, light behind the
	// camera: the triangle must be lit, the background black.
	tris := []geom.Triangle{{
		A: geom.V(-5, -5, 5), B: geom.V(5, -5, 5), C: geom.V(0, 5, 5),
	}}
	tree := kdtree.WaldHavranBuilder{}.Build(tris, kdtree.DefaultParams())
	cam := Camera{Eye: geom.V(0, 0, -5), LookAt: geom.V(0, 0, 5), FOV: 60}
	f := Render(tree, cam, geom.V(0, 0, -8), 64, 64, 2)
	center := f.At(32, 32)
	if center < 0.5 {
		t.Errorf("center pixel %g, want lit (≥ 0.5)", center)
	}
	corner := f.At(0, 0)
	if corner != 0 {
		t.Errorf("corner pixel %g, want background 0", corner)
	}
	if f.MeanIntensity() <= 0 {
		t.Error("mean intensity zero")
	}
}

func TestShadowRayDarkens(t *testing.T) {
	// Floor plane with a blocker between floor and light: the shadowed
	// region must be darker than the open region.
	var tris []geom.Triangle
	tris = scenegen.Quad(tris, geom.V(-10, 0, -10), geom.V(10, 0, -10), geom.V(10, 0, 10), geom.V(-10, 0, 10))
	tris = scenegen.Box(tris, geom.V(-1, 3, -1), geom.V(1, 4, 1)) // blocker under the light
	tree := kdtree.WaldHavranBuilder{}.Build(tris, kdtree.DefaultParams())
	cam := Camera{Eye: geom.V(0, 6, -12), LookAt: geom.V(0, 0, 0), FOV: 60}
	light := geom.V(0, 10, 0)
	const w, h = 96, 96
	f := Render(tree, cam, light, w, h, 2)
	// Project known world points into the image: the floor at the origin
	// lies in the blocker's shadow; the floor at x = 6 sees the light.
	project := func(p geom.Vec3) (int, int) {
		right, up, forward := cam.basis()
		d := p.Sub(cam.Eye)
		u := d.Dot(right) / d.Dot(forward)
		v := d.Dot(up) / d.Dot(forward)
		halfH := math.Tan(cam.FOV * math.Pi / 360)
		halfW := halfH * float64(w) / float64(h)
		px := int((u/halfW + 1) * float64(w) / 2)
		py := int((1 - v/halfH) * float64(h) / 2)
		return px, py
	}
	sx, sy := project(geom.V(0, 0, 0))
	lx, ly := project(geom.V(6, 0, 0))
	shadowed, lit := f.At(sx, sy), f.At(lx, ly)
	if !(shadowed < lit) {
		t.Errorf("shadow test: shadowed %g (at %d,%d) not darker than lit %g (at %d,%d)",
			shadowed, sx, sy, lit, lx, ly)
	}
}

func TestRenderWorkerCountInvariant(t *testing.T) {
	scene := scenegen.Cathedral(1)
	tree := kdtree.InplaceBuilder{}.Build(scene.Triangles, kdtree.DefaultParams())
	cam := Camera{Eye: scene.Eye, LookAt: scene.LookAt}
	base := Render(tree, cam, scene.Light, 48, 32, 1)
	for _, workers := range []int{2, 4, 7} {
		f := Render(tree, cam, scene.Light, 48, 32, workers)
		for i := range f.Pix {
			if f.Pix[i] != base.Pix[i] {
				t.Fatalf("workers=%d: pixel %d differs (%g vs %g)", workers, i, f.Pix[i], base.Pix[i])
			}
		}
	}
	// workers < 1 falls back to 1.
	f := Render(tree, cam, scene.Light, 48, 32, 0)
	if len(f.Pix) != 48*32 {
		t.Error("workers=0 render failed")
	}
}

func TestBuildersRenderSameImage(t *testing.T) {
	// All four construction algorithms index the same geometry, so frames
	// must agree (up to ties on shared edges, which flip at most a few
	// pixels).
	scene := scenegen.Cathedral(1)
	cam := Camera{Eye: scene.Eye, LookAt: scene.LookAt}
	pl := &Pipeline{
		Tris: scene.Triangles, Cam: cam, Light: scene.Light,
		Width: 64, Height: 48, Workers: 2,
	}
	var ref Frame
	for i, b := range kdtree.AllBuilders() {
		f, timing := pl.RenderFrame(b, kdtree.DefaultParams())
		if timing.Total <= 0 || timing.Build <= 0 {
			t.Errorf("%s: non-positive timing %+v", b.Name(), timing)
		}
		if i == 0 {
			ref = f
			continue
		}
		diff := 0
		for j := range f.Pix {
			if math.Abs(f.Pix[j]-ref.Pix[j]) > 1e-9 {
				diff++
			}
		}
		if diff*100 > len(f.Pix) {
			t.Errorf("%s: %d of %d pixels differ from reference", b.Name(), diff, len(f.Pix))
		}
	}
}

func TestPipelineLazyCostShift(t *testing.T) {
	// The Lazy builder must shift construction cost out of the build stage
	// (its build time should be well below an eager builder's on the same
	// scene); total correctness is covered by the image comparison above.
	scene := scenegen.Cathedral(3)
	cam := Camera{Eye: scene.Eye, LookAt: scene.LookAt}
	pl := &Pipeline{Tris: scene.Triangles, Cam: cam, Light: scene.Light, Width: 32, Height: 24, Workers: 2}
	p := kdtree.DefaultParams()
	p.EagerCutoff = 2048
	lazyBuild := int64(0)
	eagerBuild := int64(0)
	const reps = 3
	for i := 0; i < reps; i++ {
		_, tl := pl.RenderFrame(kdtree.LazyBuilder{}, p)
		_, te := pl.RenderFrame(kdtree.NestedBuilder{}, p)
		lazyBuild += tl.Build.Nanoseconds()
		eagerBuild += te.Build.Nanoseconds()
	}
	if lazyBuild >= eagerBuild {
		t.Errorf("lazy build %dns not cheaper than eager %dns", lazyBuild, eagerBuild)
	}
}

func TestFrameAccessors(t *testing.T) {
	f := Frame{Width: 2, Height: 2, Pix: []float64{0, 0.5, 1, 0.5}}
	if f.At(1, 0) != 0.5 || f.At(0, 1) != 1 {
		t.Error("At indexing wrong")
	}
	if f.MeanIntensity() != 0.5 {
		t.Errorf("MeanIntensity = %g", f.MeanIntensity())
	}
	if (Frame{}).MeanIntensity() != 0 {
		t.Error("empty frame mean should be 0")
	}
}

// Property: every camera ray is normalized, originates at the eye, and
// points into the forward half-space.
func TestCameraRaysProperty(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		cam := Camera{
			Eye:    geom.V(r.Float64()*20-10, r.Float64()*20-10, r.Float64()*20-10),
			LookAt: geom.V(r.Float64()*20-10, r.Float64()*20-10, r.Float64()*20-10),
			FOV:    20 + r.Float64()*120,
		}
		if cam.LookAt.Sub(cam.Eye).Len() < 1e-6 {
			continue
		}
		forward := cam.LookAt.Sub(cam.Eye).Normalize()
		w, h := 8+r.Intn(32), 8+r.Intn(32)
		for k := 0; k < 20; k++ {
			px, py := r.Intn(w), r.Intn(h)
			ray := cam.Ray(px, py, w, h)
			if ray.Origin != cam.Eye {
				t.Fatalf("ray origin %v != eye %v", ray.Origin, cam.Eye)
			}
			if math.Abs(ray.Dir.Len()-1) > 1e-9 {
				t.Fatalf("ray direction not normalized: %v", ray.Dir)
			}
			if ray.Dir.Dot(forward) <= 0 {
				t.Fatalf("ray points backward: %v vs forward %v", ray.Dir, forward)
			}
		}
	}
}

func TestRenderWithBVHMatchesKDTree(t *testing.T) {
	scene := scenegen.Cathedral(1)
	cam := Camera{Eye: scene.Eye, LookAt: scene.LookAt}
	tree := kdtree.NestedBuilder{}.Build(scene.Triangles, kdtree.DefaultParams())
	bv := bvh.Build(scene.Triangles, bvh.DefaultParams())
	a := Render(tree, cam, scene.Light, 64, 48, 2)
	b := RenderWith(bv, scene.Triangles, cam, scene.Light, 64, 48, 2)
	diff := 0
	for i := range a.Pix {
		if math.Abs(a.Pix[i]-b.Pix[i]) > 1e-9 {
			diff++
		}
	}
	if diff*100 > len(a.Pix) {
		t.Errorf("BVH image differs from kD-tree image in %d of %d pixels", diff, len(a.Pix))
	}
}
