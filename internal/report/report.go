// Package report renders experiment results as aligned ASCII tables,
// terminal line charts, boxplot rows, and CSV — the textual equivalents of
// the paper's tables and figures.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/stats"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; missing cells render empty.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Addf appends a row of formatted cells, alternating format/value pairs is
// not supported — it simply applies fmt.Sprint to each value.
func (t *Table) Addf(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = formatFloat(x)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(x float64) string {
	switch {
	case math.IsNaN(x):
		return "-"
	case x == math.Trunc(x) && math.Abs(x) < 1e9:
		return fmt.Sprintf("%.0f", x)
	case math.Abs(x) >= 100:
		return fmt.Sprintf("%.1f", x)
	default:
		return fmt.Sprintf("%.3f", x)
	}
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i := 0; i < len(widths); i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	writeRow(t.Headers)
	sep := make([]string, len(widths))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
}

// WriteCSV renders the table as CSV (simple quoting: cells containing
// commas or quotes are quoted).
func (t *Table) WriteCSV(w io.Writer) {
	writeCSVRow(w, t.Headers)
	for _, row := range t.Rows {
		writeCSVRow(w, row)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		if strings.ContainsAny(c, ",\"\n") {
			fmt.Fprintf(w, `"%s"`, strings.ReplaceAll(c, `"`, `""`))
		} else {
			fmt.Fprint(w, c)
		}
	}
	fmt.Fprintln(w)
}

// Series is one named curve of a chart.
type Series struct {
	Name   string
	Values []float64
}

// Chart is a set of curves over a shared integer x axis (iterations).
type Chart struct {
	Title, XLabel, YLabel string
	Series                []Series
}

// NewChart creates an empty chart.
func NewChart(title, xLabel, yLabel string) *Chart {
	return &Chart{Title: title, XLabel: xLabel, YLabel: yLabel}
}

// Add appends a named series.
func (c *Chart) Add(name string, values []float64) {
	vs := make([]float64, len(values))
	copy(vs, values)
	c.Series = append(c.Series, Series{Name: name, Values: vs})
}

// seriesMarks are the glyphs assigned to series in order.
const seriesMarks = "123456789abcdef"

// WriteASCII renders the chart as a width×height character grid with a
// y-axis scale and a legend. NaN values are skipped.
func (c *Chart) WriteASCII(w io.Writer, width, height int) {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	maxLen := 0
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
		for _, v := range s.Values {
			if math.IsNaN(v) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if c.Title != "" {
		fmt.Fprintln(w, c.Title)
	}
	if maxLen == 0 || math.IsInf(lo, 1) {
		fmt.Fprintln(w, "(no data)")
		return
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		for x, v := range s.Values {
			if math.IsNaN(v) {
				continue
			}
			col := 0
			if maxLen > 1 {
				col = x * (width - 1) / (maxLen - 1)
			}
			row := int((hi - v) / (hi - lo) * float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = mark
		}
	}
	for i, line := range grid {
		label := "          "
		switch i {
		case 0:
			label = fmt.Sprintf("%9.1f ", hi)
		case height - 1:
			label = fmt.Sprintf("%9.1f ", lo)
		case (height - 1) / 2:
			label = fmt.Sprintf("%9.1f ", (hi+lo)/2)
		}
		fmt.Fprintf(w, "%s|%s\n", label, string(line))
	}
	fmt.Fprintf(w, "%s+%s\n", strings.Repeat(" ", 10), strings.Repeat("-", width))
	fmt.Fprintf(w, "%s0 .. %d (%s)\n", strings.Repeat(" ", 11), maxLen-1, c.XLabel)
	for si, s := range c.Series {
		fmt.Fprintf(w, "  [%c] %s\n", seriesMarks[si%len(seriesMarks)], s.Name)
	}
}

// WriteCSV renders the chart as CSV: one column per series, one row per x.
func (c *Chart) WriteCSV(w io.Writer) {
	headers := []string{c.XLabel}
	maxLen := 0
	for _, s := range c.Series {
		headers = append(headers, s.Name)
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	writeCSVRow(w, headers)
	for x := 0; x < maxLen; x++ {
		row := []string{fmt.Sprint(x)}
		for _, s := range c.Series {
			if x < len(s.Values) && !math.IsNaN(s.Values[x]) {
				row = append(row, fmt.Sprintf("%g", s.Values[x]))
			} else {
				row = append(row, "")
			}
		}
		writeCSVRow(w, row)
	}
}

// BoxRow renders one boxplot as a fixed-width row spanning [lo, hi]:
// whiskers as '-', the box as '=', the median as '#'.
func BoxRow(label string, b stats.BoxPlot, lo, hi float64, width int) string {
	if width < 10 {
		width = 10
	}
	line := []byte(strings.Repeat(" ", width))
	if b.N > 0 && hi > lo {
		col := func(x float64) int {
			c := int((x - lo) / (hi - lo) * float64(width-1))
			if c < 0 {
				c = 0
			}
			if c >= width {
				c = width - 1
			}
			return c
		}
		for i := col(b.LowWhisker); i <= col(b.HighWhisker); i++ {
			line[i] = '-'
		}
		for i := col(b.Q1); i <= col(b.Q3); i++ {
			line[i] = '='
		}
		line[col(b.Median)] = '#'
	}
	return fmt.Sprintf("%-22s |%s| n=%d med=%s", label, string(line), b.N, formatFloat(b.Median))
}

// BoxTable renders a labeled set of boxplots on a shared scale.
func BoxTable(w io.Writer, title string, labels []string, boxes []stats.BoxPlot, unit string) {
	if title != "" {
		fmt.Fprintln(w, title)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, b := range boxes {
		if b.N == 0 {
			continue
		}
		lo = math.Min(lo, b.Min)
		hi = math.Max(hi, b.Max)
	}
	if math.IsInf(lo, 1) {
		fmt.Fprintln(w, "(no data)")
		return
	}
	for i, b := range boxes {
		fmt.Fprintln(w, BoxRow(labels[i], b, lo, hi, 50))
	}
	fmt.Fprintf(w, "%-22s  %-50s\n", "", fmt.Sprintf("scale: %s .. %s %s", formatFloat(lo), formatFloat(hi), unit))
}
