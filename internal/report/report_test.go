package report

import (
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Title", "name", "value")
	tb.Add("short", "1")
	tb.Add("a-much-longer-name", "22")
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	if len(lines[1]) != len(lines[2]) {
		t.Error("separator width mismatch")
	}
	if !strings.Contains(lines[3], "short") || !strings.Contains(lines[4], "22") {
		t.Error("rows missing")
	}
}

func TestTableAddf(t *testing.T) {
	tb := NewTable("", "a", "b", "c", "d")
	tb.Addf("x", 3.14159, 200.0, math.NaN())
	if got := tb.Rows[0]; got[1] != "3.142" || got[2] != "200" || got[3] != "-" {
		t.Errorf("Addf formatting: %v", got)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.Add("plain", `has "quotes", and comma`)
	var sb strings.Builder
	tb.WriteCSV(&sb)
	want := "a,b\nplain,\"has \"\"quotes\"\", and comma\"\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestChartASCII(t *testing.T) {
	c := NewChart("conv", "iteration", "ms")
	c.Add("fast", []float64{10, 5, 2, 1, 1, 1})
	c.Add("slow", []float64{10, 9, 8, 7, 6, 5})
	var sb strings.Builder
	c.WriteASCII(&sb, 30, 8)
	out := sb.String()
	if !strings.Contains(out, "conv") || !strings.Contains(out, "[1] fast") || !strings.Contains(out, "[2] slow") {
		t.Errorf("chart output missing pieces:\n%s", out)
	}
	if !strings.Contains(out, "10.0") || !strings.Contains(out, "1.0") {
		t.Errorf("y-axis labels missing:\n%s", out)
	}
	// Marks of both series must appear in the grid.
	if !strings.Contains(out, "1") || !strings.Contains(out, "2") {
		t.Error("series marks missing")
	}
}

func TestChartEmptyAndFlat(t *testing.T) {
	var sb strings.Builder
	NewChart("x", "i", "v").WriteASCII(&sb, 20, 5)
	if !strings.Contains(sb.String(), "(no data)") {
		t.Error("empty chart should say no data")
	}
	sb.Reset()
	c := NewChart("flat", "i", "v")
	c.Add("s", []float64{5, 5, 5})
	c.WriteASCII(&sb, 20, 5) // must not divide by zero
	if !strings.Contains(sb.String(), "[1] s") {
		t.Error("flat chart broken")
	}
	sb.Reset()
	c2 := NewChart("nan", "i", "v")
	c2.Add("s", []float64{math.NaN(), 1, math.NaN(), 3})
	c2.WriteASCII(&sb, 20, 5)
	if strings.Contains(sb.String(), "NaN") {
		t.Error("NaN leaked into chart")
	}
}

func TestChartCSV(t *testing.T) {
	c := NewChart("t", "iter", "ms")
	c.Add("a", []float64{1, 2})
	c.Add("b", []float64{3, math.NaN(), 5})
	var sb strings.Builder
	c.WriteCSV(&sb)
	want := "iter,a,b\n0,1,3\n1,2,\n2,,5\n"
	if sb.String() != want {
		t.Errorf("chart CSV = %q, want %q", sb.String(), want)
	}
}

func TestBoxRow(t *testing.T) {
	b := stats.NewBoxPlot([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	row := BoxRow("algo", b, 0, 10, 40)
	if !strings.Contains(row, "algo") || !strings.Contains(row, "#") ||
		!strings.Contains(row, "=") || !strings.Contains(row, "n=9") {
		t.Errorf("box row malformed: %q", row)
	}
	// Median mark sits right of the box start.
	if strings.Index(row, "#") <= strings.Index(row, "=") {
		t.Errorf("median left of box start: %q", row)
	}
	empty := BoxRow("none", stats.BoxPlot{}, 0, 1, 20)
	if !strings.Contains(empty, "n=0") {
		t.Errorf("empty box row: %q", empty)
	}
}

func TestBoxTable(t *testing.T) {
	var sb strings.Builder
	boxes := []stats.BoxPlot{
		stats.NewBoxPlot([]float64{1, 2, 3}),
		stats.NewBoxPlot([]float64{7, 8, 9}),
	}
	BoxTable(&sb, "Figure 1", []string{"a", "b"}, boxes, "ms")
	out := sb.String()
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "scale: 1 .. 9 ms") {
		t.Errorf("box table:\n%s", out)
	}
	sb.Reset()
	BoxTable(&sb, "empty", []string{}, nil, "ms")
	if !strings.Contains(sb.String(), "(no data)") {
		t.Error("empty box table should say no data")
	}
}
