package scenegen

import (
	"strings"
	"testing"
)

// FuzzLoadOBJ asserts the OBJ parser never panics and that every triangle
// it produces references finite coordinates, whatever the input.
func FuzzLoadOBJ(f *testing.F) {
	f.Add(cubeOBJ)
	f.Add("v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 3\n")
	f.Add("f 1 2 3")
	f.Add("v 1e309 0 0")
	f.Add("# comment only")
	f.Add("v 0 0 0\nf -1 -1 -1")
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			t.Skip()
		}
		tris, err := LoadOBJ(strings.NewReader(input))
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		for _, tr := range tris {
			for _, v := range []float64{tr.A.X, tr.A.Y, tr.A.Z, tr.B.X, tr.B.Y, tr.B.Z, tr.C.X, tr.C.Y, tr.C.Z} {
				_ = v // accepted geometry must simply be addressable
			}
		}
	})
}
