package scenegen

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/geom"
)

// LoadOBJ parses the triangle geometry of a Wavefront OBJ stream: `v`
// vertex positions and `f` faces (triangulated with a fan for polygons
// with more than three vertices). Texture/normal indices, materials,
// groups and all other statements are ignored — this is a geometry
// loader, not an asset pipeline. Negative (relative) indices are
// supported per the OBJ specification.
//
// The paper's raytracing case study renders the Sibenik cathedral; this
// repository substitutes a procedural stand-in (Cathedral), but users
// with the original mesh can load it here and run the identical
// experiments on it.
func LoadOBJ(r io.Reader) ([]geom.Triangle, error) {
	var verts []geom.Vec3
	var tris []geom.Triangle
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 64<<10), 1<<20)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "v":
			if len(fields) < 4 {
				return nil, fmt.Errorf("scenegen: line %d: vertex needs 3 coordinates", lineNo)
			}
			var xyz [3]float64
			for i := 0; i < 3; i++ {
				x, err := strconv.ParseFloat(fields[1+i], 64)
				if err != nil {
					return nil, fmt.Errorf("scenegen: line %d: %v", lineNo, err)
				}
				xyz[i] = x
			}
			verts = append(verts, geom.V(xyz[0], xyz[1], xyz[2]))
		case "f":
			if len(fields) < 4 {
				return nil, fmt.Errorf("scenegen: line %d: face needs at least 3 vertices", lineNo)
			}
			idx := make([]int, 0, len(fields)-1)
			for _, f := range fields[1:] {
				// "v", "v/vt", "v//vn", "v/vt/vn" — the vertex index is
				// the first component.
				head := f
				if k := strings.IndexByte(f, '/'); k >= 0 {
					head = f[:k]
				}
				i, err := strconv.Atoi(head)
				if err != nil {
					return nil, fmt.Errorf("scenegen: line %d: face index %q: %v", lineNo, f, err)
				}
				switch {
				case i > 0:
					i-- // OBJ is 1-based
				case i < 0:
					i += len(verts) // relative to the end
				default:
					return nil, fmt.Errorf("scenegen: line %d: face index 0 is invalid", lineNo)
				}
				if i < 0 || i >= len(verts) {
					return nil, fmt.Errorf("scenegen: line %d: face references vertex %d of %d", lineNo, i+1, len(verts))
				}
				idx = append(idx, i)
			}
			// Fan triangulation.
			for k := 1; k+1 < len(idx); k++ {
				tris = append(tris, geom.Triangle{
					A: verts[idx[0]], B: verts[idx[k]], C: verts[idx[k+1]],
				})
			}
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("scenegen: %v", err)
	}
	return tris, nil
}

// SceneFromOBJ loads OBJ geometry and derives a camera placement from the
// bounds: eye offset along the diagonal, looking at the centroid, light
// above.
func SceneFromOBJ(name string, r io.Reader) (Scene, error) {
	tris, err := LoadOBJ(r)
	if err != nil {
		return Scene{}, err
	}
	s := Scene{Name: name, Triangles: tris}
	b := s.Bounds()
	if b.Empty() {
		return s, nil
	}
	center := b.Min.Add(b.Max).Scale(0.5)
	d := b.Diagonal()
	s.LookAt = center
	s.Eye = center.Add(geom.V(d.X*0.8, d.Y*0.4, d.Z*0.8))
	s.Light = center.Add(geom.V(0, d.Y*0.45, 0))
	return s, nil
}
