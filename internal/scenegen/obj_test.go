package scenegen

import (
	"strings"
	"testing"

	"repro/internal/geom"
)

const cubeOBJ = `
# a unit cube
v 0 0 0
v 1 0 0
v 1 1 0
v 0 1 0
v 0 0 1
v 1 0 1
v 1 1 1
v 0 1 1
f 1 2 3 4
f 5 8 7 6
f 1 5 6 2
f 2 6 7 3
f 3 7 8 4
f 5 1 4 8
`

func TestLoadOBJCube(t *testing.T) {
	tris, err := LoadOBJ(strings.NewReader(cubeOBJ))
	if err != nil {
		t.Fatal(err)
	}
	// 6 quads fan into 12 triangles.
	if len(tris) != 12 {
		t.Fatalf("loaded %d triangles, want 12", len(tris))
	}
	b := geom.EmptyAABB()
	for _, tr := range tris {
		b = b.Union(tr.Bounds())
	}
	if b.Min != geom.V(0, 0, 0) || b.Max != geom.V(1, 1, 1) {
		t.Errorf("cube bounds %v", b)
	}
}

func TestLoadOBJIndexForms(t *testing.T) {
	obj := `
v 0 0 0
v 1 0 0
v 0 1 0
f 1/2/3 2//1 3/4
`
	tris, err := LoadOBJ(strings.NewReader(obj))
	if err != nil {
		t.Fatal(err)
	}
	if len(tris) != 1 {
		t.Fatalf("got %d triangles", len(tris))
	}
	if tris[0].B != geom.V(1, 0, 0) {
		t.Errorf("v/vt/vn parsing wrong: %+v", tris[0])
	}
}

func TestLoadOBJNegativeIndices(t *testing.T) {
	obj := `
v 0 0 0
v 1 0 0
v 0 1 0
f -3 -2 -1
`
	tris, err := LoadOBJ(strings.NewReader(obj))
	if err != nil {
		t.Fatal(err)
	}
	if len(tris) != 1 || tris[0].A != geom.V(0, 0, 0) || tris[0].C != geom.V(0, 1, 0) {
		t.Errorf("negative indices wrong: %+v", tris)
	}
}

func TestLoadOBJErrors(t *testing.T) {
	cases := []string{
		"v 1 2",            // too few coordinates
		"v a b c",          // bad float
		"v 0 0 0\nf 1 2",   // face too short
		"v 0 0 0\nf 1 1 9", // index out of range
		"v 0 0 0\nf 0 1 1", // zero index
		"v 0 0 0\nf 1 x 1", // bad index
	}
	for _, c := range cases {
		if _, err := LoadOBJ(strings.NewReader(c)); err == nil {
			t.Errorf("no error for %q", c)
		}
	}
}

func TestLoadOBJIgnoresOtherStatements(t *testing.T) {
	obj := `
mtllib scene.mtl
o Cube
v 0 0 0
v 1 0 0
v 0 1 0
vn 0 0 1
vt 0 0
usemtl stone
s off
f 1 2 3
`
	tris, err := LoadOBJ(strings.NewReader(obj))
	if err != nil {
		t.Fatal(err)
	}
	if len(tris) != 1 {
		t.Errorf("got %d triangles", len(tris))
	}
}

func TestSceneFromOBJ(t *testing.T) {
	s, err := SceneFromOBJ("cube", strings.NewReader(cubeOBJ))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "cube" || len(s.Triangles) != 12 {
		t.Fatalf("scene wrong: %s, %d tris", s.Name, len(s.Triangles))
	}
	if s.Eye == s.LookAt {
		t.Error("camera not derived")
	}
	if !(s.Light.Y > s.LookAt.Y) {
		t.Error("light should sit above the centroid")
	}
	// Empty stream: valid, empty scene.
	empty, err := SceneFromOBJ("none", strings.NewReader(""))
	if err != nil || len(empty.Triangles) != 0 {
		t.Errorf("empty OBJ: %v, %d tris", err, len(empty.Triangles))
	}
}
