// Package scenegen procedurally generates triangle scenes for the
// raytracing case study.
//
// The paper renders the Sibenik cathedral model. That mesh is not shipped
// here; Cathedral generates an architecturally similar stand-in — a nave
// with a floor, walls, two colonnades and vaulted ribs — whose triangle
// count and spatially non-uniform distribution give the SAH kD-tree
// builders comparable work. Additional generators (SphereFlake, BoxGrid)
// provide differently shaped distributions for tests and ablations.
package scenegen

import (
	"math"
	"math/rand"

	"repro/internal/geom"
)

// Quad appends the two triangles of quad (a, b, c, d), given in winding
// order.
func Quad(out []geom.Triangle, a, b, c, d geom.Vec3) []geom.Triangle {
	out = append(out, geom.Triangle{A: a, B: b, C: c})
	out = append(out, geom.Triangle{A: a, B: c, C: d})
	return out
}

// Box appends the 12 triangles of the axis-aligned box [min, max].
func Box(out []geom.Triangle, min, max geom.Vec3) []geom.Triangle {
	v := func(x, y, z float64) geom.Vec3 { return geom.V(x, y, z) }
	x0, y0, z0 := min.X, min.Y, min.Z
	x1, y1, z1 := max.X, max.Y, max.Z
	out = Quad(out, v(x0, y0, z0), v(x1, y0, z0), v(x1, y1, z0), v(x0, y1, z0)) // back
	out = Quad(out, v(x0, y0, z1), v(x0, y1, z1), v(x1, y1, z1), v(x1, y0, z1)) // front
	out = Quad(out, v(x0, y0, z0), v(x0, y1, z0), v(x0, y1, z1), v(x0, y0, z1)) // left
	out = Quad(out, v(x1, y0, z0), v(x1, y0, z1), v(x1, y1, z1), v(x1, y1, z0)) // right
	out = Quad(out, v(x0, y0, z0), v(x0, y0, z1), v(x1, y0, z1), v(x1, y0, z0)) // bottom
	out = Quad(out, v(x0, y1, z0), v(x1, y1, z0), v(x1, y1, z1), v(x0, y1, z1)) // top
	return out
}

// Column appends a vertical prism with `sides` faces, closed with a cap
// fan top and bottom.
func Column(out []geom.Triangle, center geom.Vec3, radius, height float64, sides int) []geom.Triangle {
	if sides < 3 {
		sides = 3
	}
	ring := func(y float64) []geom.Vec3 {
		ps := make([]geom.Vec3, sides)
		for i := 0; i < sides; i++ {
			a := 2 * math.Pi * float64(i) / float64(sides)
			ps[i] = geom.V(center.X+radius*math.Cos(a), y, center.Z+radius*math.Sin(a))
		}
		return ps
	}
	bot, top := ring(center.Y), ring(center.Y+height)
	for i := 0; i < sides; i++ {
		j := (i + 1) % sides
		out = Quad(out, bot[i], bot[j], top[j], top[i])
		// caps
		out = append(out, geom.Triangle{A: geom.V(center.X, center.Y, center.Z), B: bot[j], C: bot[i]})
		out = append(out, geom.Triangle{A: geom.V(center.X, center.Y+height, center.Z), B: top[i], C: top[j]})
	}
	return out
}

// Arch appends a semicircular ribbon (a vault rib) spanning from x0 to x1
// at depth z, with the given rise and ribbon width.
func Arch(out []geom.Triangle, x0, x1, baseY, rise, z, width float64, segments int) []geom.Triangle {
	if segments < 2 {
		segments = 2
	}
	cx := (x0 + x1) / 2
	r := (x1 - x0) / 2
	pt := func(i int, dz float64) geom.Vec3 {
		a := math.Pi * float64(i) / float64(segments)
		return geom.V(cx-r*math.Cos(a), baseY+rise*math.Sin(a), z+dz)
	}
	for i := 0; i < segments; i++ {
		out = Quad(out, pt(i, -width/2), pt(i+1, -width/2), pt(i+1, width/2), pt(i, width/2))
	}
	return out
}

// Scene is a generated triangle soup with a suggested camera.
type Scene struct {
	// Name identifies the generator and detail level.
	Name string
	// Triangles is the scene geometry.
	Triangles []geom.Triangle
	// Eye and LookAt suggest a camera placement covering the scene.
	Eye, LookAt geom.Vec3
	// Light is a point light position for ambient-occlusion rays.
	Light geom.Vec3
}

// Cathedral generates the Sibenik stand-in. detail ≥ 1 scales tessellation
// (column sides, arch segments, clutter count); detail 4 yields roughly
// 8.7k triangles, detail 8 roughly 33k.
func Cathedral(detail int) Scene {
	if detail < 1 {
		detail = 1
	}
	r := rand.New(rand.NewSource(1214)) // fixed: the scene is part of the benchmark
	var tris []geom.Triangle

	const (
		length = 40.0 // x extent (nave axis)
		width  = 16.0 // z extent
		height = 14.0
	)

	// Floor and ceiling slabs, walls.
	tris = Box(tris, geom.V(-1, -1, -width/2-1), geom.V(length+1, 0, width/2+1))            // floor
	tris = Box(tris, geom.V(-1, height, -width/2-1), geom.V(length+1, height+1, width/2+1)) // roof slab
	tris = Box(tris, geom.V(-1, 0, -width/2-1), geom.V(0, height, width/2+1))               // west wall
	tris = Box(tris, geom.V(length, 0, -width/2-1), geom.V(length+1, height, width/2+1))    // east wall
	tris = Box(tris, geom.V(-1, 0, -width/2-1), geom.V(length+1, height, -width/2))         // south wall
	tris = Box(tris, geom.V(-1, 0, width/2), geom.V(length+1, height, width/2+1))           // north wall

	// Two colonnades along the nave.
	sides := 4 * detail
	nCols := 2 + 2*detail
	for i := 0; i < nCols; i++ {
		x := length * (float64(i) + 0.5) / float64(nCols)
		for _, z := range []float64{-width / 4, width / 4} {
			tris = Column(tris, geom.V(x, 0, z), 0.7, height*0.6, sides)
			// Capital block on top of each column.
			tris = Box(tris,
				geom.V(x-1, height*0.6, z-1),
				geom.V(x+1, height*0.6+0.8, z+1))
		}
	}

	// Vault ribs between opposite columns and along the nave.
	segs := 6 * detail
	for i := 0; i < nCols; i++ {
		x := length * (float64(i) + 0.5) / float64(nCols)
		tris = Arch(tris, x-width/4, x+width/4, height*0.64, height*0.3, 0, 0.6, segs)
	}
	for _, z := range []float64{-width / 4, width / 4} {
		for i := 0; i+1 < nCols; i++ {
			x0 := length * (float64(i) + 0.5) / float64(nCols)
			x1 := length * (float64(i) + 1.5) / float64(nCols)
			tris = Arch(tris, x0, x1, height*0.64, height*0.25, z, 0.6, segs)
		}
	}

	// Clutter: pews and debris boxes with a non-uniform distribution —
	// the spatially uneven primitive density that makes SAH splits earn
	// their keep.
	nClutter := 30 * detail * detail
	for i := 0; i < nClutter; i++ {
		x := r.Float64() * length
		z := (r.Float64() - 0.5) * width * 0.8
		// Cluster the clutter toward the nave center.
		z *= 0.4 + 0.6*r.Float64()
		w := 0.2 + r.Float64()*0.8
		h := 0.2 + r.Float64()*1.2
		d := 0.2 + r.Float64()*0.8
		tris = Box(tris, geom.V(x-w/2, 0, z-d/2), geom.V(x+w/2, h, z+d/2))
	}

	return Scene{
		Name:      "cathedral",
		Triangles: tris,
		Eye:       geom.V(2, height*0.45, 0),
		LookAt:    geom.V(length*0.8, height*0.3, 0),
		Light:     geom.V(length*0.5, height*0.9, 0),
	}
}

// SphereFlake generates a recursive sphere-flake: a central tessellated
// sphere with child spheres on its surface, recursing to the given depth.
// It produces a highly clustered primitive distribution.
func SphereFlake(depth, tessellation int) Scene {
	if tessellation < 4 {
		tessellation = 4
	}
	var tris []geom.Triangle
	var recurse func(center geom.Vec3, radius float64, depth int)
	recurse = func(center geom.Vec3, radius float64, d int) {
		tris = appendSphere(tris, center, radius, tessellation)
		if d <= 0 {
			return
		}
		dirs := []geom.Vec3{
			geom.V(1, 0, 0), geom.V(-1, 0, 0),
			geom.V(0, 1, 0), geom.V(0, -1, 0),
			geom.V(0, 0, 1), geom.V(0, 0, -1),
		}
		for _, dir := range dirs {
			recurse(center.Add(dir.Scale(radius*1.5)), radius*0.45, d-1)
		}
	}
	recurse(geom.V(0, 0, 0), 1, depth)
	return Scene{
		Name:      "sphereflake",
		Triangles: tris,
		Eye:       geom.V(3.5, 2.5, 3.5),
		LookAt:    geom.V(0, 0, 0),
		Light:     geom.V(5, 8, 5),
	}
}

func appendSphere(out []geom.Triangle, c geom.Vec3, r float64, tess int) []geom.Triangle {
	// Latitude/longitude tessellation.
	pt := func(i, j int) geom.Vec3 {
		theta := math.Pi * float64(i) / float64(tess)
		phi := 2 * math.Pi * float64(j) / float64(tess)
		return geom.V(
			c.X+r*math.Sin(theta)*math.Cos(phi),
			c.Y+r*math.Cos(theta),
			c.Z+r*math.Sin(theta)*math.Sin(phi),
		)
	}
	for i := 0; i < tess; i++ {
		for j := 0; j < tess; j++ {
			a, b := pt(i, j), pt(i+1, j)
			cc, d := pt(i+1, j+1), pt(i, j+1)
			// Row tess is the bottom pole (b == cc), row 0 the top pole
			// (a == d); skip the triangle that would collapse.
			if i < tess-1 {
				out = append(out, geom.Triangle{A: a, B: b, C: cc})
			}
			if i > 0 {
				out = append(out, geom.Triangle{A: a, B: cc, C: d})
			}
		}
	}
	return out
}

// BoxGrid generates an n×n×n grid of unit boxes — a uniform distribution
// that SAH splits cannot improve much, useful as an ablation contrast.
func BoxGrid(n int) Scene {
	if n < 1 {
		n = 1
	}
	var tris []geom.Triangle
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			for z := 0; z < n; z++ {
				min := geom.V(float64(x)*2, float64(y)*2, float64(z)*2)
				tris = Box(tris, min, min.Add(geom.V(1, 1, 1)))
			}
		}
	}
	fn := float64(n)
	return Scene{
		Name:      "boxgrid",
		Triangles: tris,
		Eye:       geom.V(-2*fn, 3*fn, -2*fn),
		LookAt:    geom.V(fn, fn, fn),
		Light:     geom.V(fn, 6*fn, fn),
	}
}

// Bounds returns the bounding box of all triangles in the scene.
func (s Scene) Bounds() geom.AABB {
	b := geom.EmptyAABB()
	for _, t := range s.Triangles {
		b = b.Union(t.Bounds())
	}
	return b
}
