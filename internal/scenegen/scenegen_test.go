package scenegen

import (
	"testing"

	"repro/internal/geom"
)

func validTriangles(t *testing.T, tris []geom.Triangle) {
	t.Helper()
	degenerate := 0
	for _, tr := range tris {
		if tr.Normal().Len() == 0 {
			degenerate++
		}
	}
	// Cap fans can produce the odd degenerate triangle at poles; more than
	// 1% signals a generator bug.
	if degenerate*100 > len(tris) {
		t.Errorf("%d of %d triangles degenerate", degenerate, len(tris))
	}
}

func TestBoxTriangles(t *testing.T) {
	tris := Box(nil, geom.V(0, 0, 0), geom.V(1, 2, 3))
	if len(tris) != 12 {
		t.Fatalf("box has %d triangles, want 12", len(tris))
	}
	b := geom.EmptyAABB()
	for _, tr := range tris {
		b = b.Union(tr.Bounds())
	}
	if b.Min != geom.V(0, 0, 0) || b.Max != geom.V(1, 2, 3) {
		t.Errorf("box bounds %v", b)
	}
	validTriangles(t, tris)
}

func TestQuad(t *testing.T) {
	tris := Quad(nil, geom.V(0, 0, 0), geom.V(1, 0, 0), geom.V(1, 1, 0), geom.V(0, 1, 0))
	if len(tris) != 2 {
		t.Fatalf("quad has %d triangles", len(tris))
	}
}

func TestColumn(t *testing.T) {
	tris := Column(nil, geom.V(0, 0, 0), 1, 5, 8)
	// 8 side quads (2 tris) + 16 cap triangles.
	if len(tris) != 32 {
		t.Fatalf("column has %d triangles, want 32", len(tris))
	}
	b := geom.EmptyAABB()
	for _, tr := range tris {
		b = b.Union(tr.Bounds())
	}
	if b.Max.Y != 5 || b.Min.Y != 0 {
		t.Errorf("column height bounds %v", b)
	}
	// Degenerate side count clamps to 3.
	if got := Column(nil, geom.V(0, 0, 0), 1, 1, 1); len(got) != 12 {
		t.Errorf("clamped column has %d triangles, want 12", len(got))
	}
}

func TestArch(t *testing.T) {
	tris := Arch(nil, 0, 10, 2, 3, 0, 1, 8)
	if len(tris) != 16 {
		t.Fatalf("arch has %d triangles, want 16", len(tris))
	}
	b := geom.EmptyAABB()
	for _, tr := range tris {
		b = b.Union(tr.Bounds())
	}
	if b.Max.Y < 4.9 || b.Max.Y > 5.1 {
		t.Errorf("arch apex %g, want ≈ 5", b.Max.Y)
	}
}

func TestCathedralScales(t *testing.T) {
	small := Cathedral(1)
	large := Cathedral(4)
	if len(small.Triangles) < 500 {
		t.Errorf("detail-1 cathedral only %d triangles", len(small.Triangles))
	}
	if len(large.Triangles) <= 2*len(small.Triangles) {
		t.Errorf("detail scaling weak: %d vs %d", len(small.Triangles), len(large.Triangles))
	}
	validTriangles(t, large.Triangles)
	// Deterministic.
	again := Cathedral(4)
	if len(again.Triangles) != len(large.Triangles) {
		t.Fatal("cathedral not deterministic")
	}
	for i := range again.Triangles {
		if again.Triangles[i] != large.Triangles[i] {
			t.Fatal("cathedral triangles differ between runs")
		}
	}
	// Camera inside the scene bounds (it is an interior scene).
	if !large.Bounds().Contains(large.Eye) {
		t.Errorf("camera %v outside bounds %v", large.Eye, large.Bounds())
	}
}

func TestSphereFlake(t *testing.T) {
	s := SphereFlake(1, 6)
	// 1 + 6 spheres.
	if len(s.Triangles) < 7*30 {
		t.Errorf("sphereflake has %d triangles", len(s.Triangles))
	}
	validTriangles(t, s.Triangles)
	if s.Bounds().Empty() {
		t.Error("empty bounds")
	}
}

func TestBoxGrid(t *testing.T) {
	s := BoxGrid(3)
	if len(s.Triangles) != 27*12 {
		t.Fatalf("boxgrid has %d triangles, want %d", len(s.Triangles), 27*12)
	}
	if got := BoxGrid(0); len(got.Triangles) != 12 {
		t.Errorf("clamped grid has %d triangles", len(got.Triangles))
	}
}
