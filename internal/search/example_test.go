package search_test

import (
	"fmt"

	"repro/internal/param"
	"repro/internal/search"
)

// Example shows the ask/tell loop on the paper's phase-one strategy.
func Example() {
	space := param.NewSpace(param.NewInterval("x", 0, 10))
	nm := search.NewNelderMead()
	if err := nm.Start(space, param.Config{0}); err != nil {
		panic(err)
	}
	obj := func(c param.Config) float64 { d := c[0] - 7; return 2 + d*d }
	for i := 0; i < 80; i++ {
		c := nm.Propose()
		nm.Report(c, obj(c))
	}
	best, val := nm.Best()
	fmt.Printf("x=%.1f value=%.1f\n", best[0], val)
	// Output:
	// x=7.0 value=2.0
}

// Example_nominalRejection demonstrates the paper's §II-B point: metric
// strategies refuse spaces containing nominal parameters.
func Example_nominalRejection() {
	space := param.NewSpace(param.NewNominal("algo", "a", "b", "c"))
	err := search.NewNelderMead().Start(space, nil)
	fmt.Println(err)
	// Output:
	// search: nelder-mead cannot search space with nominal parameters (no order, distance, or neighbourhood)
}
