package search

import (
	"math"
	"math/rand"

	"repro/internal/param"
	"repro/internal/xrand"
)

// HillClimb is steepest-ascent hill climbing (descent, since we minimize):
// it evaluates all axis-aligned unit-step neighbours of the current point
// and greedily moves to the best improving one, converging when no
// neighbour improves. It requires a neighbourhood, so spaces with nominal
// parameters are rejected, exactly as the paper argues.
type HillClimb struct {
	recorder
	space     *param.Space
	cur       param.Config
	curVal    float64
	neighbors []param.Config
	idx       int
	bestN     param.Config
	bestNVal  float64
	done      bool
	curKnown  bool
}

// NewHillClimb creates an unstarted hill-climbing strategy.
func NewHillClimb() *HillClimb { return &HillClimb{} }

// Name returns "hillclimb".
func (h *HillClimb) Name() string { return "hillclimb" }

// Supports accepts spaces without nominal parameters.
func (h *HillClimb) Supports(space *param.Space) bool {
	return space != nil && !space.HasNominal()
}

// Start begins climbing from the initial configuration.
func (h *HillClimb) Start(space *param.Space, init param.Config) error {
	c, err := prepStart(space, init)
	if err != nil {
		return err
	}
	if !h.Supports(space) {
		return errUnsupported(h, space)
	}
	h.reset()
	h.space = space
	h.cur = c
	h.curKnown = false
	h.done = false
	h.neighbors = nil
	return nil
}

// Propose returns the current point if unevaluated, otherwise the next
// neighbour in the ring; after convergence it repeats the best point.
func (h *HillClimb) Propose() param.Config {
	h.mustStarted("HillClimb.Propose")
	if !h.curKnown {
		return h.cur.Clone()
	}
	if h.done || h.space.Dim() == 0 {
		return h.cur.Clone()
	}
	if h.neighbors == nil {
		h.loadNeighbors()
		if h.done {
			return h.cur.Clone()
		}
	}
	return h.neighbors[h.idx].Clone()
}

// Report consumes a measurement for the current point or a neighbour.
func (h *HillClimb) Report(c param.Config, v float64) {
	h.mustStarted("HillClimb.Report")
	h.record(c, v)
	if !h.curKnown {
		h.curVal = v
		h.curKnown = true
		if h.space.Dim() == 0 {
			h.done = true
		}
		return
	}
	if h.done {
		return
	}
	if v < h.bestNVal {
		h.bestNVal = v
		h.bestN = c.Clone()
	}
	h.idx++
	if h.idx >= len(h.neighbors) {
		// Ring complete: move or converge.
		if h.bestN != nil && h.bestNVal < h.curVal {
			h.cur = h.bestN
			h.curVal = h.bestNVal
			h.neighbors = nil
		} else {
			h.done = true
		}
	}
}

// Converged reports whether no neighbour improved on the current point.
func (h *HillClimb) Converged() bool { return h.done }

func (h *HillClimb) loadNeighbors() {
	ns, err := h.space.Neighbors(h.cur)
	if err != nil || len(ns) == 0 {
		h.done = true
		return
	}
	h.neighbors = ns
	h.idx = 0
	h.bestN = nil
	h.bestNVal = math.Inf(1)
}

// Anneal is simulated annealing: a random neighbour is proposed each step
// and accepted when better, or with probability exp(−Δ/T) when worse, the
// temperature T decaying geometrically. Like hill climbing it needs a
// neighbourhood, so nominal spaces are rejected.
type Anneal struct {
	recorder
	space  *param.Space
	rng    *rand.Rand
	src    *xrand.Source
	seed   int64
	cur    param.Config
	curVal float64
	known  bool

	// Temp is the current temperature; Cooling the geometric decay factor
	// applied after every acceptance decision; MinTemp the convergence
	// threshold.
	Temp    float64
	Cooling float64
	MinTemp float64

	initTemp float64
	pending  param.Config
}

// NewAnneal creates an annealing strategy with temperature 1.0, cooling
// 0.95 and minimum temperature 1e-3.
func NewAnneal(seed int64) *Anneal {
	return &Anneal{seed: seed, Temp: 1.0, Cooling: 0.95, MinTemp: 1e-3}
}

// Name returns "anneal".
func (a *Anneal) Name() string { return "anneal" }

// Supports accepts spaces without nominal parameters.
func (a *Anneal) Supports(space *param.Space) bool {
	return space != nil && !space.HasNominal()
}

// Start begins annealing from the initial configuration at full
// temperature.
func (a *Anneal) Start(space *param.Space, init param.Config) error {
	c, err := prepStart(space, init)
	if err != nil {
		return err
	}
	if !a.Supports(space) {
		return errUnsupported(a, space)
	}
	a.reset()
	a.space = space
	a.src = xrand.New(a.seed)
	a.rng = a.src.Rand()
	a.cur = c
	a.known = false
	if a.initTemp == 0 {
		a.initTemp = a.Temp
	}
	a.Temp = a.initTemp
	return nil
}

// Propose returns the current point if unevaluated, otherwise a uniformly
// chosen neighbour.
func (a *Anneal) Propose() param.Config {
	a.mustStarted("Anneal.Propose")
	if !a.known || a.space.Dim() == 0 || a.Converged() {
		a.pending = a.cur.Clone()
		return a.cur.Clone()
	}
	ns, err := a.space.Neighbors(a.cur)
	if err != nil || len(ns) == 0 {
		a.pending = a.cur.Clone()
		return a.cur.Clone()
	}
	a.pending = ns[a.rng.Intn(len(ns))]
	return a.pending.Clone()
}

// Report applies the Metropolis acceptance rule and cools the temperature.
func (a *Anneal) Report(c param.Config, v float64) {
	a.mustStarted("Anneal.Report")
	a.record(c, v)
	if !a.known {
		a.curVal = v
		a.known = true
		return
	}
	delta := v - a.curVal
	if delta <= 0 || (a.Temp > 0 && a.rng.Float64() < math.Exp(-delta/a.Temp)) {
		a.cur = c.Clone()
		a.curVal = v
	}
	a.Temp *= a.Cooling
}

// Converged reports whether the temperature has cooled below MinTemp.
func (a *Anneal) Converged() bool { return a.known && a.Temp < a.MinTemp }
