package search

import (
	"repro/internal/param"
)

// HookeJeeves is Hooke & Jeeves pattern search (1961), a staple of the
// autotuning literature (Active Harmony's PRO descends from it): an
// exploratory move probes ± step along each axis in turn; a successful
// round is followed by a pattern move that doubles down in the improving
// direction; failed rounds halve the step. It needs distances but no
// derivatives, so it accepts exactly the spaces Nelder-Mead accepts.
type HookeJeeves struct {
	recorder
	space *param.Space

	base     param.Config // best point of the previous round
	baseVal  float64
	cur      param.Config // working point of this round
	curVal   float64
	step     []float64
	axis     int
	dir      float64 // +1 then −1 per axis
	pending  param.Config
	havePat  bool
	pattern  param.Config // pattern-move candidate
	baseKnow bool

	// InitialStepFrac is the starting step as a fraction of each
	// dimension's range; Shrink the per-failure step multiplier; MinStep
	// the convergence threshold (fraction of range).
	InitialStepFrac float64
	Shrink          float64
	MinStepFrac     float64
}

// NewHookeJeeves creates a pattern-search strategy with steps starting at
// 25% of each range, halving on failure, converging below 0.1%.
func NewHookeJeeves() *HookeJeeves {
	return &HookeJeeves{InitialStepFrac: 0.25, Shrink: 0.5, MinStepFrac: 1e-3}
}

// Name returns "hooke-jeeves".
func (h *HookeJeeves) Name() string { return "hooke-jeeves" }

// Supports accepts only metric spaces.
func (h *HookeJeeves) Supports(space *param.Space) bool {
	return space != nil && space.MetricOnly()
}

// Start begins the search at the initial configuration.
func (h *HookeJeeves) Start(space *param.Space, init param.Config) error {
	c, err := prepStart(space, init)
	if err != nil {
		return err
	}
	if !h.Supports(space) {
		return errUnsupported(h, space)
	}
	h.reset()
	h.space = space
	h.base = c.Clone()
	h.cur = c.Clone()
	h.baseKnow = false
	h.step = make([]float64, space.Dim())
	for i := range h.step {
		p := space.Param(i)
		h.step[i] = (p.Hi() - p.Lo()) * h.InitialStepFrac
		if h.step[i] == 0 {
			h.step[i] = 1
		}
	}
	h.axis = 0
	h.dir = 1
	h.havePat = false
	return nil
}

// Propose returns the next probe point.
func (h *HookeJeeves) Propose() param.Config {
	h.mustStarted("HookeJeeves.Propose")
	if h.space.Dim() == 0 {
		return param.Config{}
	}
	if !h.baseKnow {
		h.pending = h.cur.Clone()
		return h.pending.Clone()
	}
	if h.havePat {
		h.pending = h.pattern.Clone()
		return h.pending.Clone()
	}
	probe := h.cur.Clone()
	probe[h.axis] = h.space.Param(h.axis).Clamp(probe[h.axis] + h.dir*h.step[h.axis])
	h.pending = probe
	return probe.Clone()
}

// Report consumes the probe's value and advances the exploratory /
// pattern state machine.
func (h *HookeJeeves) Report(c param.Config, v float64) {
	h.mustStarted("HookeJeeves.Report")
	h.record(c, v)
	if h.space.Dim() == 0 {
		return
	}
	if !h.baseKnow {
		h.baseKnow = true
		h.curVal = v
		h.baseVal = v
		return
	}
	if h.havePat {
		// Pattern move evaluated: accept as new working point when it
		// improves, else fall back to the exploratory result.
		h.havePat = false
		if v < h.curVal {
			h.cur = c.Clone()
			h.curVal = v
		}
		return
	}
	// Exploratory probe.
	if v < h.curVal && !c.Equal(h.cur) {
		h.cur = c.Clone()
		h.curVal = v
		h.advanceAxis()
		return
	}
	if h.dir > 0 {
		h.dir = -1 // try the other direction on the same axis
		return
	}
	h.dir = 1
	h.advanceAxis()
}

// advanceAxis moves to the next axis; a completed round either launches a
// pattern move (round improved) or shrinks the step (round failed).
func (h *HookeJeeves) advanceAxis() {
	h.axis++
	if h.axis < h.space.Dim() {
		return
	}
	h.axis = 0
	h.dir = 1
	if h.curVal < h.baseVal {
		// Pattern move: cur + (cur − base), clamped.
		pat := make(param.Config, h.space.Dim())
		for i := range pat {
			pat[i] = h.cur[i] + (h.cur[i] - h.base[i])
		}
		h.pattern = h.space.Clamp(pat)
		h.havePat = !h.pattern.Equal(h.cur)
		h.base = h.cur.Clone()
		h.baseVal = h.curVal
		return
	}
	for i := range h.step {
		h.step[i] *= h.Shrink
	}
}

// Converged reports whether every step has shrunk below MinStepFrac of
// its dimension's range.
func (h *HookeJeeves) Converged() bool {
	if !h.hasSpace {
		return false
	}
	if h.space.Dim() == 0 {
		return h.evals > 0
	}
	if !h.baseKnow {
		return false
	}
	for i, s := range h.step {
		p := h.space.Param(i)
		span := p.Hi() - p.Lo()
		if span == 0 {
			continue
		}
		if s/span > h.MinStepFrac {
			return false
		}
	}
	return true
}
