package search

import (
	"math"
	"sort"

	"repro/internal/param"
)

// Nelder-Mead transition coefficients (standard values from Nelder & Mead
// 1965): reflection α, expansion γ, contraction ρ, shrink σ.
const (
	nmAlpha = 1.0
	nmGamma = 2.0
	nmRho   = 0.5
	nmSigma = 0.5
)

// nmPhase is the state of the downhill-simplex state machine. The paper
// describes Nelder-Mead as "a small state-machine of simplex transitions";
// the ask/tell interface makes that state machine explicit.
type nmPhase int

const (
	nmInit        nmPhase = iota // evaluating the initial simplex vertices
	nmReflect                    // waiting for the reflection point value
	nmExpand                     // waiting for the expansion point value
	nmContractOut                // waiting for the outside contraction value
	nmContractIn                 // waiting for the inside contraction value
	nmShrink                     // evaluating shrunk vertices one at a time
)

type nmVertex struct {
	x param.Config
	f float64
}

// NelderMead is the downhill simplex method, the phase-one strategy used in
// both of the paper's case studies. It maintains a simplex of dim+1
// vertices and moves it through reflection, expansion, contraction, and
// shrink transitions. It requires a metric space: spaces containing nominal
// (or ordinal) parameters are rejected, because the simplex arithmetic
// needs distances and directions.
type NelderMead struct {
	recorder
	space   *param.Space
	simplex []nmVertex
	phase   nmPhase
	idx     int // vertex being evaluated during nmInit / nmShrink

	pending  param.Config // point awaiting a Report
	centroid param.Config // centroid of all but the worst vertex
	xr       param.Config // reflection point
	fr       float64      // reflection value

	// Tol is the convergence tolerance on the relative spread of vertex
	// values; the default is 1e-4.
	Tol float64
}

// NewNelderMead creates an unstarted Nelder-Mead strategy with the default
// tolerance.
func NewNelderMead() *NelderMead { return &NelderMead{Tol: 1e-4} }

// Name returns "nelder-mead".
func (n *NelderMead) Name() string { return "nelder-mead" }

// Supports accepts only spaces in which every dimension has a distance
// (Interval or Ratio). A space with zero dimensions is accepted and treated
// as trivially converged.
func (n *NelderMead) Supports(space *param.Space) bool {
	return space != nil && space.MetricOnly()
}

// Start builds the initial simplex around the initial configuration: the
// initial point plus one vertex per dimension displaced by 10% of that
// dimension's range (stepping inward when at the upper bound).
func (n *NelderMead) Start(space *param.Space, init param.Config) error {
	c, err := prepStart(space, init)
	if err != nil {
		return err
	}
	if !n.Supports(space) {
		return errUnsupported(n, space)
	}
	n.reset()
	n.space = space
	d := space.Dim()
	n.simplex = make([]nmVertex, 0, d+1)
	n.simplex = append(n.simplex, nmVertex{x: c.Clone(), f: math.NaN()})
	for i := 0; i < d; i++ {
		p := space.Param(i)
		step := (p.Hi() - p.Lo()) * 0.10
		if step == 0 {
			step = 1
		}
		v := c.Clone()
		moved := p.Clamp(v[i] + step)
		if moved == v[i] {
			moved = p.Clamp(v[i] - step)
		}
		v[i] = moved
		n.simplex = append(n.simplex, nmVertex{x: v, f: math.NaN()})
	}
	n.phase = nmInit
	n.idx = 0
	n.pending = nil
	return nil
}

// Propose returns the next point the simplex needs evaluated.
func (n *NelderMead) Propose() param.Config {
	n.mustStarted("NelderMead.Propose")
	if n.space.Dim() == 0 {
		return param.Config{}
	}
	switch n.phase {
	case nmInit, nmShrink:
		n.pending = n.simplex[n.idx].x.Clone()
	case nmReflect:
		n.computeCentroid()
		n.xr = n.combine(n.centroid, n.worst().x, nmAlpha)
		n.pending = n.xr.Clone()
	case nmExpand:
		xe := n.combine(n.centroid, n.worst().x, nmGamma)
		n.pending = xe
	case nmContractOut:
		// Outside contraction: centroid + ρ·(xr − centroid).
		xc := n.blend(n.centroid, n.xr, nmRho)
		n.pending = xc
	case nmContractIn:
		// Inside contraction: centroid − ρ·(centroid − worst).
		xc := n.blend(n.centroid, n.worst().x, nmRho)
		n.pending = xc
	}
	return n.pending.Clone()
}

// Report feeds a measured value back into the simplex state machine.
func (n *NelderMead) Report(c param.Config, f float64) {
	n.mustStarted("NelderMead.Report")
	n.record(c, f)
	if n.space.Dim() == 0 {
		return
	}
	switch n.phase {
	case nmInit:
		n.simplex[n.idx].f = f
		n.idx++
		if n.idx >= len(n.simplex) {
			n.sortSimplex()
			n.phase = nmReflect
		}
	case nmShrink:
		n.simplex[n.idx].f = f
		n.idx++
		if n.idx >= len(n.simplex) {
			n.sortSimplex()
			n.phase = nmReflect
		}
	case nmReflect:
		n.fr = f
		best, secondWorst := n.simplex[0].f, n.simplex[len(n.simplex)-2].f
		switch {
		case f < best:
			n.phase = nmExpand
		case f < secondWorst:
			n.replaceWorst(c, f)
			n.phase = nmReflect
		case f < n.worst().f:
			n.phase = nmContractOut
		default:
			n.phase = nmContractIn
		}
	case nmExpand:
		if f < n.fr {
			n.replaceWorst(c, f)
		} else {
			n.replaceWorst(n.xr, n.fr)
		}
		n.phase = nmReflect
	case nmContractOut:
		if f <= n.fr {
			n.replaceWorst(c, f)
			n.phase = nmReflect
		} else {
			n.startShrink()
		}
	case nmContractIn:
		if f < n.worst().f {
			n.replaceWorst(c, f)
			n.phase = nmReflect
		} else {
			n.startShrink()
		}
	}
}

// Converged reports whether the vertex values have collapsed to within the
// relative tolerance, or the vertices themselves have collapsed onto a
// single grid point (which happens on discrete dimensions).
func (n *NelderMead) Converged() bool {
	if !n.hasSpace {
		return false
	}
	if n.space.Dim() == 0 {
		return n.evals > 0
	}
	if n.phase == nmInit {
		return false
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range n.simplex {
		if math.IsNaN(v.f) {
			return false
		}
		lo = math.Min(lo, v.f)
		hi = math.Max(hi, v.f)
	}
	if hi-lo <= n.Tol*(math.Abs(lo)+n.Tol) {
		return true
	}
	for i := 1; i < len(n.simplex); i++ {
		if !n.simplex[i].x.Equal(n.simplex[0].x) {
			return false
		}
	}
	return true
}

// Simplex returns a copy of the current simplex configurations, ordered
// best to worst (primarily useful for tests and diagnostics).
func (n *NelderMead) Simplex() []param.Config {
	out := make([]param.Config, len(n.simplex))
	for i, v := range n.simplex {
		out[i] = v.x.Clone()
	}
	return out
}

func (n *NelderMead) worst() *nmVertex { return &n.simplex[len(n.simplex)-1] }

func (n *NelderMead) sortSimplex() {
	sort.SliceStable(n.simplex, func(i, j int) bool {
		fi, fj := n.simplex[i].f, n.simplex[j].f
		if math.IsNaN(fj) {
			return !math.IsNaN(fi)
		}
		if math.IsNaN(fi) {
			return false
		}
		return fi < fj
	})
}

func (n *NelderMead) replaceWorst(x param.Config, f float64) {
	w := n.worst()
	w.x = x.Clone()
	w.f = f
	n.sortSimplex()
}

func (n *NelderMead) computeCentroid() {
	d := n.space.Dim()
	cen := make(param.Config, d)
	for _, v := range n.simplex[:len(n.simplex)-1] {
		for i := 0; i < d; i++ {
			cen[i] += v.x[i]
		}
	}
	for i := 0; i < d; i++ {
		cen[i] /= float64(len(n.simplex) - 1)
	}
	n.centroid = cen
}

// combine returns clamp(centroid + coeff·(centroid − away)).
func (n *NelderMead) combine(centroid, away param.Config, coeff float64) param.Config {
	d := n.space.Dim()
	out := make(param.Config, d)
	for i := 0; i < d; i++ {
		out[i] = centroid[i] + coeff*(centroid[i]-away[i])
	}
	return n.space.Clamp(out)
}

// blend returns clamp(from + t·(to − from)).
func (n *NelderMead) blend(from, to param.Config, t float64) param.Config {
	d := n.space.Dim()
	out := make(param.Config, d)
	for i := 0; i < d; i++ {
		out[i] = from[i] + t*(to[i]-from[i])
	}
	return n.space.Clamp(out)
}

// startShrink moves every vertex except the best halfway toward the best
// and schedules their re-evaluation.
func (n *NelderMead) startShrink() {
	best := n.simplex[0].x
	for i := 1; i < len(n.simplex); i++ {
		n.simplex[i].x = n.blend(best, n.simplex[i].x, nmSigma)
		n.simplex[i].f = math.NaN()
	}
	n.phase = nmShrink
	n.idx = 1
}
