package search

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/param"
	"repro/internal/xrand"
)

// Default population sizes for the population-based strategies.
const (
	DefaultSwarmSize  = 10
	DefaultPopulation = 12
)

// ParticleSwarm is particle swarm optimization (Kennedy & Eberhart 1995):
// a set of particles moves through the space, each attracted to its own
// best and the global best position. Velocity arithmetic requires distance
// and direction, so nominal spaces are rejected.
type ParticleSwarm struct {
	recorder
	space *param.Space
	rng   *rand.Rand
	src   *xrand.Source
	seed  int64
	size  int

	pos, vel   []param.Config
	pBest      []param.Config
	pBestVal   []float64
	gBest      param.Config
	gBestVal   float64
	sweepBest  float64 // global best at the start of the current sweep
	idx        int     // particle awaiting evaluation
	stagnation int

	// Inertia, Cognitive and Social are the standard PSO coefficients.
	Inertia   float64
	Cognitive float64
	Social    float64
	// StagnationLimit is the number of full sweeps without global
	// improvement after which the swarm is considered converged.
	StagnationLimit int
}

// NewParticleSwarm creates a swarm of the given size (minimum 2) with
// standard coefficients ω=0.72, c1=c2=1.49.
func NewParticleSwarm(size int, seed int64) *ParticleSwarm {
	if size < 2 {
		size = 2
	}
	return &ParticleSwarm{
		size: size, seed: seed,
		Inertia: 0.72, Cognitive: 1.49, Social: 1.49,
		StagnationLimit: 8,
	}
}

// Name returns "pso".
func (p *ParticleSwarm) Name() string { return "pso" }

// Supports accepts only metric spaces.
func (p *ParticleSwarm) Supports(space *param.Space) bool {
	return space != nil && space.MetricOnly()
}

// Start scatters the swarm uniformly, placing particle 0 on the initial
// configuration.
func (p *ParticleSwarm) Start(space *param.Space, init param.Config) error {
	c, err := prepStart(space, init)
	if err != nil {
		return err
	}
	if !p.Supports(space) {
		return errUnsupported(p, space)
	}
	p.reset()
	p.space = space
	p.src = xrand.New(p.seed)
	p.rng = p.src.Rand()
	d := space.Dim()
	p.pos = make([]param.Config, p.size)
	p.vel = make([]param.Config, p.size)
	p.pBest = make([]param.Config, p.size)
	p.pBestVal = make([]float64, p.size)
	for i := range p.pos {
		if i == 0 {
			p.pos[i] = c.Clone()
		} else {
			p.pos[i] = space.Random(p.rng)
		}
		p.vel[i] = make(param.Config, d)
		for j := 0; j < d; j++ {
			pr := space.Param(j)
			span := pr.Hi() - pr.Lo()
			p.vel[i][j] = (p.rng.Float64()*2 - 1) * span * 0.1
		}
		p.pBestVal[i] = math.Inf(1)
	}
	p.gBest = nil
	p.gBestVal = math.Inf(1)
	p.sweepBest = math.Inf(1)
	p.idx = 0
	p.stagnation = 0
	return nil
}

// Propose returns the position of the particle currently awaiting
// evaluation.
func (p *ParticleSwarm) Propose() param.Config {
	p.mustStarted("ParticleSwarm.Propose")
	if p.space.Dim() == 0 {
		return param.Config{}
	}
	return p.pos[p.idx].Clone()
}

// Report records a particle's value; when the sweep completes, all
// velocities and positions update.
func (p *ParticleSwarm) Report(c param.Config, v float64) {
	p.mustStarted("ParticleSwarm.Report")
	p.record(c, v)
	if p.space.Dim() == 0 {
		return
	}
	i := p.idx
	if v < p.pBestVal[i] {
		p.pBestVal[i] = v
		p.pBest[i] = c.Clone()
	}
	if v < p.gBestVal {
		p.gBestVal = v
		p.gBest = c.Clone()
	}
	p.idx++
	if p.idx >= p.size {
		p.advance()
		p.idx = 0
	}
}

func (p *ParticleSwarm) advance() {
	d := p.space.Dim()
	for i := 0; i < p.size; i++ {
		for j := 0; j < d; j++ {
			r1, r2 := p.rng.Float64(), p.rng.Float64()
			cog := p.Cognitive * r1 * (p.pBest[i][j] - p.pos[i][j])
			soc := p.Social * r2 * (p.gBest[j] - p.pos[i][j])
			p.vel[i][j] = p.Inertia*p.vel[i][j] + cog + soc
			p.pos[i][j] += p.vel[i][j]
		}
		p.pos[i] = p.space.Clamp(p.pos[i])
	}
	if p.gBestVal >= p.sweepBest {
		p.stagnation++
	} else {
		p.stagnation = 0
	}
	p.sweepBest = p.gBestVal
}

// Converged reports whether the swarm has stagnated for StagnationLimit
// consecutive sweeps.
func (p *ParticleSwarm) Converged() bool {
	return p.hasSpace && p.stagnation >= p.StagnationLimit
}

// Genetic is a generational genetic algorithm with tournament selection,
// single-point crossover, and per-gene mutation. As the paper notes,
// genetic algorithms are the one classical method that can manipulate
// nominal parameters, because mutation and crossover need no order or
// distance — so Supports accepts every space. The paper equally notes
// that on a space consisting of one nominal parameter the method decays
// into random search.
type Genetic struct {
	recorder
	space *param.Space
	rng   *rand.Rand
	src   *xrand.Source
	seed  int64
	size  int

	pop    []param.Config
	vals   []float64
	idx    int
	gen    int
	stale  int
	prevTV float64

	// MutationRate is the per-gene mutation probability; CrossoverRate the
	// probability of crossover (vs. cloning); Elite the number of top
	// individuals copied unchanged; StagnationLimit the number of
	// generations without improvement considered converged.
	MutationRate    float64
	CrossoverRate   float64
	Elite           int
	StagnationLimit int
}

// NewGenetic creates a genetic algorithm with the given population size
// (minimum 4).
func NewGenetic(size int, seed int64) *Genetic {
	if size < 4 {
		size = 4
	}
	return &Genetic{
		size: size, seed: seed,
		MutationRate: 0.15, CrossoverRate: 0.9, Elite: 1, StagnationLimit: 10,
		prevTV: math.Inf(1),
	}
}

// Name returns "genetic".
func (g *Genetic) Name() string { return "genetic" }

// Supports accepts every space: mutation and crossover are defined on all
// parameter classes.
func (g *Genetic) Supports(space *param.Space) bool { return space != nil }

// Start seeds the population with the initial configuration plus uniform
// random individuals.
func (g *Genetic) Start(space *param.Space, init param.Config) error {
	c, err := prepStart(space, init)
	if err != nil {
		return err
	}
	g.reset()
	g.space = space
	g.src = xrand.New(g.seed)
	g.rng = g.src.Rand()
	g.pop = make([]param.Config, g.size)
	g.vals = make([]float64, g.size)
	for i := range g.pop {
		if i == 0 {
			g.pop[i] = c.Clone()
		} else {
			g.pop[i] = space.Random(g.rng)
		}
		g.vals[i] = math.NaN()
	}
	g.idx = 0
	g.gen = 0
	g.stale = 0
	g.prevTV = math.Inf(1)
	return nil
}

// Propose returns the next unevaluated individual.
func (g *Genetic) Propose() param.Config {
	g.mustStarted("Genetic.Propose")
	if g.space.Dim() == 0 {
		return param.Config{}
	}
	return g.pop[g.idx].Clone()
}

// Report records an individual's fitness; when the generation is fully
// evaluated, selection, crossover and mutation build the next one.
func (g *Genetic) Report(c param.Config, v float64) {
	g.mustStarted("Genetic.Report")
	g.record(c, v)
	if g.space.Dim() == 0 {
		return
	}
	g.vals[g.idx] = v
	g.idx++
	if g.idx >= g.size {
		g.evolve()
		g.idx = 0
		g.gen++
	}
}

func (g *Genetic) evolve() {
	d := g.space.Dim()
	// Track stagnation on the generation's best value.
	genBest := math.Inf(1)
	for _, v := range g.vals {
		genBest = math.Min(genBest, v)
	}
	if genBest < g.prevTV {
		g.prevTV = genBest
		g.stale = 0
	} else {
		g.stale++
	}

	order := make([]int, g.size)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return g.vals[order[a]] < g.vals[order[b]] })

	next := make([]param.Config, 0, g.size)
	for e := 0; e < g.Elite && e < g.size; e++ {
		next = append(next, g.pop[order[e]].Clone())
	}
	for len(next) < g.size {
		a := g.tournament()
		child := a.Clone()
		if g.rng.Float64() < g.CrossoverRate && d > 1 {
			b := g.tournament()
			// Single-point crossover at a random interior point.
			cut := 1 + g.rng.Intn(d-1)
			for j := cut; j < d; j++ {
				child[j] = b[j]
			}
		}
		for j := 0; j < d; j++ {
			if g.rng.Float64() < g.MutationRate {
				p := g.space.Param(j)
				child[j] = p.Clamp(p.Lo() + g.rng.Float64()*(p.Hi()-p.Lo()))
			}
		}
		next = append(next, g.space.Clamp(child))
	}
	g.pop = next
	for i := range g.vals {
		g.vals[i] = math.NaN()
	}
}

// tournament returns the better of two random individuals.
func (g *Genetic) tournament() param.Config {
	a, b := g.rng.Intn(g.size), g.rng.Intn(g.size)
	if g.vals[a] <= g.vals[b] {
		return g.pop[a]
	}
	return g.pop[b]
}

// Converged reports whether StagnationLimit generations passed without
// improvement.
func (g *Genetic) Converged() bool { return g.hasSpace && g.stale >= g.StagnationLimit }

// DiffEvo is differential evolution (Storn & Price 1997), scheme
// DE/rand/1/bin: each agent is challenged by a trial vector built from the
// scaled difference of two random agents added to a third. The difference
// arithmetic requires a metric, so nominal spaces are rejected.
type DiffEvo struct {
	recorder
	space *param.Space
	rng   *rand.Rand
	src   *xrand.Source
	seed  int64
	size  int

	pop          []param.Config
	vals         []float64
	trial        param.Config
	idx          int
	seeded       int // agents evaluated during initialization
	stale        int
	best         float64
	passImproved bool

	// F is the differential weight; CR the crossover probability;
	// StagnationLimit the number of full passes without improvement
	// considered converged.
	F               float64
	CR              float64
	StagnationLimit int
}

// NewDiffEvo creates a differential-evolution strategy with the given
// population size (minimum 4) and standard parameters F=0.8, CR=0.9.
func NewDiffEvo(size int, seed int64) *DiffEvo {
	if size < 4 {
		size = 4
	}
	return &DiffEvo{size: size, seed: seed, F: 0.8, CR: 0.9, StagnationLimit: 10, best: math.Inf(1)}
}

// Name returns "diffevo".
func (d *DiffEvo) Name() string { return "diffevo" }

// Supports accepts only metric spaces.
func (d *DiffEvo) Supports(space *param.Space) bool {
	return space != nil && space.MetricOnly()
}

// Start scatters the population, placing agent 0 on the initial
// configuration.
func (d *DiffEvo) Start(space *param.Space, init param.Config) error {
	c, err := prepStart(space, init)
	if err != nil {
		return err
	}
	if !d.Supports(space) {
		return errUnsupported(d, space)
	}
	d.reset()
	d.space = space
	d.src = xrand.New(d.seed)
	d.rng = d.src.Rand()
	d.pop = make([]param.Config, d.size)
	d.vals = make([]float64, d.size)
	for i := range d.pop {
		if i == 0 {
			d.pop[i] = c.Clone()
		} else {
			d.pop[i] = space.Random(d.rng)
		}
		d.vals[i] = math.NaN()
	}
	d.idx = 0
	d.seeded = 0
	d.stale = 0
	d.best = math.Inf(1)
	d.trial = nil
	return nil
}

// Propose returns an unevaluated agent during initialization, afterwards
// the trial vector challenging the current agent.
func (d *DiffEvo) Propose() param.Config {
	d.mustStarted("DiffEvo.Propose")
	if d.space.Dim() == 0 {
		return param.Config{}
	}
	if d.seeded < d.size {
		return d.pop[d.seeded].Clone()
	}
	d.trial = d.makeTrial(d.idx)
	return d.trial.Clone()
}

// Report records agent values during initialization; afterwards the trial
// vector replaces the challenged agent when it is at least as good.
func (d *DiffEvo) Report(c param.Config, v float64) {
	d.mustStarted("DiffEvo.Report")
	d.record(c, v)
	if d.space.Dim() == 0 {
		return
	}
	if d.seeded < d.size {
		d.vals[d.seeded] = v
		d.seeded++
		return
	}
	if v < d.best {
		d.best = v
		d.passImproved = true
	}
	if v <= d.vals[d.idx] {
		d.pop[d.idx] = c.Clone()
		d.vals[d.idx] = v
	}
	d.idx++
	if d.idx >= d.size {
		d.idx = 0
		if d.passImproved {
			d.stale = 0
		} else {
			d.stale++
		}
		d.passImproved = false
	}
}

func (d *DiffEvo) makeTrial(target int) param.Config {
	dim := d.space.Dim()
	// Three distinct agents, all different from the target.
	pick := func(exclude map[int]bool) int {
		for {
			i := d.rng.Intn(d.size)
			if !exclude[i] {
				return i
			}
		}
	}
	ex := map[int]bool{target: true}
	a := pick(ex)
	ex[a] = true
	b := pick(ex)
	ex[b] = true
	c := pick(ex)

	trial := d.pop[target].Clone()
	jrand := d.rng.Intn(dim)
	for j := 0; j < dim; j++ {
		if d.rng.Float64() < d.CR || j == jrand {
			trial[j] = d.pop[a][j] + d.F*(d.pop[b][j]-d.pop[c][j])
		}
	}
	return d.space.Clamp(trial)
}

// Converged reports whether StagnationLimit passes completed without a new
// global best.
func (d *DiffEvo) Converged() bool { return d.hasSpace && d.stale >= d.StagnationLimit }
