package search

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/param"
)

// randomMetricSpace builds a random 1–4 dimensional metric space.
func randomMetricSpace(r *rand.Rand) *param.Space {
	dims := 1 + r.Intn(4)
	ps := make([]param.Parameter, dims)
	for i := range ps {
		name := string(rune('a' + i))
		lo := r.Float64()*20 - 10
		hi := lo + 0.5 + r.Float64()*20
		if r.Intn(2) == 0 {
			ps[i] = param.NewInterval(name, lo, hi)
		} else {
			ilo := r.Intn(10)
			ps[i] = param.NewRatioInt(name, ilo, ilo+1+r.Intn(30))
		}
	}
	return param.NewSpace(ps...)
}

// Property: on any random metric space, every metric strategy proposes
// only valid configurations and its Best never exceeds the minimum
// reported value.
func TestStrategiesProposeValidConfigsProperty(t *testing.T) {
	mks := []func(seed int64) Strategy{
		func(int64) Strategy { return NewNelderMead() },
		func(s int64) Strategy { return NewParticleSwarm(6, s) },
		func(s int64) Strategy { return NewDiffEvo(6, s) },
		func(s int64) Strategy { return NewGenetic(6, s) },
		func(s int64) Strategy { return NewRandom(s) },
		func(s int64) Strategy { return NewRestarting(func() Strategy { return NewNelderMead() }, s) },
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		space := randomMetricSpace(r)
		obj := func(c param.Config) float64 {
			sum := 0.0
			for i, x := range c {
				d := x - space.Param(i).Lo()
				sum += d * d
			}
			return sum
		}
		s := mks[r.Intn(len(mks))](seed)
		if err := s.Start(space, space.Random(r)); err != nil {
			return false
		}
		minReported := math.Inf(1)
		for i := 0; i < 60; i++ {
			c := s.Propose()
			if !space.Valid(c) {
				t.Logf("seed %d: %s proposed invalid %v", seed, s.Name(), c)
				return false
			}
			v := obj(c)
			if v < minReported {
				minReported = v
			}
			s.Report(c, v)
			_, best := s.Best()
			if best > minReported+1e-12 {
				t.Logf("seed %d: %s Best %g exceeds min reported %g", seed, s.Name(), best, minReported)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: hill climbing and annealing on random fully-discrete ordered
// spaces always terminate at a point no worse than the start and propose
// only valid configurations.
func TestDiscreteStrategiesProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dims := 1 + r.Intn(3)
		ps := make([]param.Parameter, dims)
		for i := range ps {
			ps[i] = param.NewRatioInt(string(rune('a'+i)), 0, 3+r.Intn(8))
		}
		space := param.NewSpace(ps...)
		target := space.Random(r)
		obj := func(c param.Config) float64 {
			sum := 0.0
			for i := range c {
				d := c[i] - target[i]
				sum += d * d
			}
			return sum
		}
		for _, s := range []Strategy{NewHillClimb(), NewAnneal(seed)} {
			start := space.Random(r)
			if err := s.Start(space, start); err != nil {
				return false
			}
			startVal := obj(start)
			for i := 0; i < 150; i++ {
				c := s.Propose()
				if !space.Valid(c) {
					return false
				}
				s.Report(c, obj(c))
			}
			if _, best := s.Best(); best > startVal {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
