package search

import (
	"math"
	"math/rand"

	"repro/internal/param"
)

// Speculation tuning for Proposer. The fractions trade exploration
// against exploitation on the speculative (non-primary) proposals only;
// the wrapped strategy's own proposals are never altered.
const (
	// SpeculativeRandomFrac is the probability that a speculative
	// proposal is a uniform random point instead of an incumbent
	// perturbation, so concurrent workers keep exploring even when the
	// incumbent is stuck in a local basin.
	SpeculativeRandomFrac = 0.25
	// SpeculativeSigma is the per-dimension Gaussian perturbation width
	// of a speculative proposal, as a fraction of the parameter range.
	SpeculativeSigma = 0.10
	// speculativeNominalRedraw is the probability that a speculative
	// proposal redraws a nominal dimension uniformly (nominal labels
	// have no distance, so "perturbing" them means resampling).
	speculativeNominalRedraw = 0.3
)

// A Proposal is one configuration handed out by a Proposer. Primary
// marks a genuine strategy proposal: exactly one primary is outstanding
// at any time, and only its report is forwarded to the strategy's
// ask/tell state machine. Speculative proposals (Primary false) exist so
// concurrent callers never block on a sequential strategy; their reports
// update only the proposer-local incumbent.
type Proposal struct {
	Config  param.Config
	Primary bool
}

// A Proposer adapts a sequential ask/tell Strategy to concurrent,
// out-of-order callers. The Strategy interface is a strict alternation —
// one Propose, then exactly one Report — which cannot serve multiple
// trials in flight. The Proposer preserves that contract for the wrapped
// strategy while never refusing a caller: the first Propose after the
// previous primary's report hands out the strategy's genuine next point,
// and every Propose in between fabricates a speculative point by
// perturbing the best configuration known so far (or sampling the space
// uniformly, with probability SpeculativeRandomFrac).
//
// Speculative reports deliberately do not feed the strategy: a simplex
// or annealer told about points it never proposed would corrupt its
// state machine. They do advance the proposer's own incumbent, so later
// speculation exploits speculative discoveries, and callers (the trial
// engine) record them in their global best.
//
// A Proposer is not itself safe for concurrent use; the trial engine
// drives it under its lock.
type Proposer struct {
	strat Strategy
	space *param.Space
	rng   *rand.Rand

	primaryOut  bool // the strategy's genuine proposal is leased out
	outstanding int  // proposals handed out and not yet reported

	specBest    param.Config // best config seen via speculative reports
	specBestVal float64
}

// NewProposer wraps an already-Started strategy searching the given
// space. A nil space is treated as the empty space. The seed drives only
// the speculative perturbations, never the strategy.
func NewProposer(strat Strategy, space *param.Space, seed int64) *Proposer {
	if strat == nil {
		panic("search: NewProposer with nil strategy")
	}
	if space == nil {
		space = param.NewSpace()
	}
	return &Proposer{
		strat:       strat,
		space:       space,
		rng:         newRand(seed),
		specBestVal: math.Inf(1),
	}
}

// Propose returns the next configuration: the strategy's genuine
// proposal when none is outstanding, a speculative point otherwise. It
// never blocks and never fails.
func (p *Proposer) Propose() Proposal {
	p.outstanding++
	if !p.primaryOut {
		p.primaryOut = true
		return Proposal{Config: p.strat.Propose(), Primary: true}
	}
	return Proposal{Config: p.speculate()}
}

// ProposeN returns n proposals at once; at most the first is primary.
func (p *Proposer) ProposeN(n int) []Proposal {
	out := make([]Proposal, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, p.Propose())
	}
	return out
}

// Report completes one proposal with its measured value (lower is
// better; a penalty for failed trials). Primary reports are forwarded to
// the wrapped strategy, restoring its strict alternation; speculative
// reports update only the proposer-local incumbent.
func (p *Proposer) Report(pr Proposal, value float64) {
	if p.outstanding > 0 {
		p.outstanding--
	}
	if pr.Primary {
		if p.primaryOut {
			p.primaryOut = false
			p.strat.Report(pr.Config, value)
		}
		return
	}
	if value < p.specBestVal {
		p.specBestVal = value
		p.specBest = pr.Config.Clone()
	}
}

// Outstanding returns the number of unreported proposals.
func (p *Proposer) Outstanding() int { return p.outstanding }

// PrimaryOutstanding reports whether the strategy's genuine proposal is
// currently leased out.
func (p *Proposer) PrimaryOutstanding() bool { return p.primaryOut }

// Strategy exposes the wrapped strategy (for inspection).
func (p *Proposer) Strategy() Strategy { return p.strat }

// Best returns the best configuration and value observed through this
// proposer, merging the strategy's incumbent with speculative reports.
func (p *Proposer) Best() (param.Config, float64) {
	cfg, val := p.strat.Best()
	if p.specBest != nil && p.specBestVal < val {
		return p.specBest.Clone(), p.specBestVal
	}
	return cfg, val
}

// base is the point speculation perturbs: the best known configuration,
// falling back to the space center before any report.
func (p *Proposer) base() param.Config {
	cfg, _ := p.Best()
	if cfg == nil {
		return p.space.Center()
	}
	return cfg
}

// speculate fabricates a configuration near the incumbent (see perturb).
func (p *Proposer) speculate() param.Config {
	return perturb(p.rng, p.space, p.base())
}

// perturb is the shared speculative-proposal generator: a Gaussian
// perturbation of SpeculativeSigma × range of base per metric dimension,
// a uniform redraw of nominal dimensions with a small probability, and —
// with probability SpeculativeRandomFrac — a fully random point. The
// random draws happen in a fixed order, so equal RNG states yield equal
// proposals.
func perturb(rng *rand.Rand, space *param.Space, base param.Config) param.Config {
	if space.Dim() == 0 {
		return param.Config{}
	}
	if rng.Float64() < SpeculativeRandomFrac {
		return space.Random(rng)
	}
	out := base.Clone()
	for i := 0; i < space.Dim(); i++ {
		prm := space.Param(i)
		lo, hi := prm.Lo(), prm.Hi()
		if prm.Class() == param.Nominal {
			if rng.Float64() < speculativeNominalRedraw {
				out[i] = prm.Clamp(lo + rng.Float64()*(hi-lo))
			}
			continue
		}
		if span := hi - lo; span > 0 {
			out[i] += rng.NormFloat64() * SpeculativeSigma * span
		}
	}
	return space.Clamp(out)
}

// A Speculator generates speculative configurations detached from any
// strategy: the sharded trial engine gives each shard one per algorithm,
// so shards propose configurations without touching the authoritative
// phase-one state between merges. The base it perturbs is the best
// configuration it has been told about — SetBase rebroadcasts the
// authoritative incumbent at each merge, Observe adopts better local
// completions in between — falling back to the space center before any.
type Speculator struct {
	space   *param.Space
	rng     *rand.Rand
	base    param.Config
	baseVal float64
}

// NewSpeculator creates a speculator over the space (nil means empty).
func NewSpeculator(space *param.Space, seed int64) *Speculator {
	if space == nil {
		space = param.NewSpace()
	}
	return &Speculator{space: space, rng: newRand(seed), baseVal: math.Inf(1)}
}

// SetBase overwrites the incumbent with the authoritative one.
func (s *Speculator) SetBase(cfg param.Config, val float64) {
	if cfg == nil {
		return
	}
	s.base = cfg.Clone()
	s.baseVal = val
}

// Observe offers a locally completed configuration; it becomes the base
// when it beats the current one.
func (s *Speculator) Observe(cfg param.Config, val float64) {
	if val < s.baseVal {
		s.base = cfg.Clone()
		s.baseVal = val
	}
}

// Next fabricates the next speculative configuration.
func (s *Speculator) Next() param.Config {
	base := s.base
	if base == nil {
		base = s.space.Center()
	}
	return perturb(s.rng, s.space, base)
}
