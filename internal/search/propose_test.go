package search

import (
	"math"
	"testing"

	"repro/internal/param"
)

func proposerSpace() *param.Space {
	return param.NewSpace(
		param.NewRatio("x", 0, 10),
		param.NewInterval("y", -5, 5),
	)
}

func TestProposerSinglePrimaryOutstanding(t *testing.T) {
	sp := proposerSpace()
	nm := NewNelderMead()
	if err := nm.Start(sp, nil); err != nil {
		t.Fatal(err)
	}
	p := NewProposer(nm, sp, 1)

	props := p.ProposeN(4)
	if len(props) != 4 {
		t.Fatalf("ProposeN(4) returned %d proposals", len(props))
	}
	primaries := 0
	for i, pr := range props {
		if pr.Primary {
			primaries++
		}
		if !sp.Valid(pr.Config) {
			t.Errorf("proposal %d config %v is not a valid point of the space", i, pr.Config)
		}
	}
	if primaries != 1 || !props[0].Primary {
		t.Fatalf("want exactly the first proposal primary, got %d primaries", primaries)
	}
	if p.Outstanding() != 4 || !p.PrimaryOutstanding() {
		t.Fatalf("outstanding = %d, primaryOut = %v", p.Outstanding(), p.PrimaryOutstanding())
	}

	// Speculative reports must not advance the strategy.
	for _, pr := range props[1:] {
		p.Report(pr, 3.0)
	}
	if nm.Evaluations() != 0 {
		t.Fatalf("speculative reports reached the strategy: %d evaluations", nm.Evaluations())
	}
	// The primary report restores strict alternation for the strategy.
	p.Report(props[0], 7.0)
	if nm.Evaluations() != 1 {
		t.Fatalf("primary report lost: %d evaluations", nm.Evaluations())
	}
	if p.Outstanding() != 0 || p.PrimaryOutstanding() {
		t.Fatalf("after all reports: outstanding = %d, primaryOut = %v", p.Outstanding(), p.PrimaryOutstanding())
	}

	// The next propose hands out a genuine proposal again.
	if pr := p.Propose(); !pr.Primary {
		t.Fatal("next proposal after primary report should be primary")
	}
}

func TestProposerSpeculativeBest(t *testing.T) {
	sp := proposerSpace()
	nm := NewNelderMead()
	if err := nm.Start(sp, nil); err != nil {
		t.Fatal(err)
	}
	p := NewProposer(nm, sp, 2)

	prim := p.Propose()
	spec := p.Propose()
	if spec.Primary {
		t.Fatal("second concurrent proposal should be speculative")
	}
	p.Report(spec, 0.5) // better than anything the strategy has seen
	p.Report(prim, 9.0)
	cfg, val := p.Best()
	if val != 0.5 || !cfg.Equal(spec.Config) {
		t.Fatalf("merged best = (%v, %v), want the speculative discovery (%v, 0.5)", cfg, val, spec.Config)
	}
	// The strategy's own incumbent is untouched by the speculative win.
	if _, sv := nm.Best(); sv != 9.0 {
		t.Fatalf("strategy best = %v, want 9.0", sv)
	}
}

func TestProposerEmptySpace(t *testing.T) {
	sp := param.NewSpace()
	f := NewFixed()
	if err := f.Start(sp, nil); err != nil {
		t.Fatal(err)
	}
	p := NewProposer(f, sp, 3)
	for i := 0; i < 5; i++ {
		pr := p.Propose()
		if len(pr.Config) != 0 {
			t.Fatalf("proposal %d on the empty space has %d dims", i, len(pr.Config))
		}
	}
	if p.Outstanding() != 5 {
		t.Fatalf("outstanding = %d, want 5", p.Outstanding())
	}
}

func TestProposerSpeculationStaysInSpace(t *testing.T) {
	sp := proposerSpace()
	nm := NewNelderMead()
	if err := nm.Start(sp, nil); err != nil {
		t.Fatal(err)
	}
	p := NewProposer(nm, sp, 4)
	p.Propose() // take the primary out
	for i := 0; i < 200; i++ {
		pr := p.Propose()
		if pr.Primary {
			t.Fatal("primary handed out twice without a report")
		}
		if !sp.Valid(pr.Config) {
			t.Fatalf("speculative config %v escapes the space", pr.Config)
		}
		p.Report(pr, math.Inf(1)) // worst possible: never becomes specBest
	}
}
