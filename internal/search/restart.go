package search

import (
	"math/rand"

	"repro/internal/param"
	"repro/internal/xrand"
)

// Restarting wraps another strategy and restarts it whenever it
// converges, alternating between restarting from a jittered copy of the
// global best (local refinement) and from a uniformly random point
// (global exploration).
//
// Online tuning runs indefinitely — "we repeat this process indefinitely
// or until a user-defined termination criterion is met" (§III) — but the
// classical strategies it wraps do converge and would then propose the
// same point forever, blind to context drift (changing inputs, machine
// load). Restarting turns any of them into an anytime strategy: the
// incumbent is never lost (Best tracks the global best across restarts),
// and every convergence buys a fresh probe of the space.
type Restarting struct {
	recorder
	factory Factory
	inner   Strategy
	space   *param.Space
	rng     *rand.Rand
	src     *xrand.Source
	seed    int64

	restarts int
	fromBest bool // next restart style
	// JitterFrac scales the jitter applied to the best point when
	// restarting locally, as a fraction of each dimension's range.
	JitterFrac float64
}

// NewRestarting wraps the factory's strategy. The wrapper builds a fresh
// inner strategy at Start and after every inner convergence.
func NewRestarting(factory Factory, seed int64) *Restarting {
	if factory == nil {
		panic("search: NewRestarting with nil factory")
	}
	return &Restarting{factory: factory, seed: seed, JitterFrac: 0.05}
}

// Name returns "restarting(<inner>)".
func (r *Restarting) Name() string {
	inner := r.inner
	if inner == nil {
		inner = r.factory()
	}
	return "restarting(" + inner.Name() + ")"
}

// Supports defers to the wrapped strategy.
func (r *Restarting) Supports(space *param.Space) bool {
	return r.factory().Supports(space)
}

// Start initializes the first inner strategy.
func (r *Restarting) Start(space *param.Space, init param.Config) error {
	inner := r.factory()
	if err := inner.Start(space, init); err != nil {
		return err
	}
	r.reset()
	r.inner = inner
	r.space = space
	r.src = xrand.New(r.seed)
	r.rng = r.src.Rand()
	r.restarts = 0
	r.fromBest = true
	return nil
}

// Propose restarts the inner strategy if it has converged, then forwards.
func (r *Restarting) Propose() param.Config {
	r.mustStarted("Restarting.Propose")
	if r.inner.Converged() && r.space.Dim() > 0 {
		r.restart()
	}
	return r.inner.Propose()
}

func (r *Restarting) restart() {
	var init param.Config
	best, _ := r.Best()
	if r.fromBest && best != nil {
		init = best.Clone()
		for i := 0; i < r.space.Dim(); i++ {
			p := r.space.Param(i)
			span := p.Hi() - p.Lo()
			init[i] += (r.rng.Float64()*2 - 1) * span * r.JitterFrac
		}
		init = r.space.Clamp(init)
	} else {
		init = r.space.Random(r.rng)
	}
	inner := r.factory()
	if err := inner.Start(r.space, init); err != nil {
		// The space was accepted at Start, so a failure here is a
		// programming error in the wrapped strategy.
		panic("search: restart failed: " + err.Error())
	}
	r.inner = inner
	r.restarts++
	r.fromBest = !r.fromBest
}

// Restart forces an immediate restart of the inner strategy without
// waiting for convergence. core's drift watchdog calls this when a
// change-point is detected: the converged numeric configuration of the
// old context is a local optimum of a landscape that no longer exists,
// so the next restart probes fresh ground. The global best is kept (it
// still seeds the next local-refinement restart), and the alternating
// restart style advances exactly as for a convergence-triggered restart.
func (r *Restarting) Restart() {
	r.mustStarted("Restarting.Restart")
	if r.space.Dim() > 0 {
		r.restart()
	}
}

// Report forwards the measurement and tracks the global best.
func (r *Restarting) Report(c param.Config, v float64) {
	r.mustStarted("Restarting.Report")
	r.record(c, v)
	r.inner.Report(c, v)
}

// Converged is always false: the wrapper is an anytime strategy.
func (r *Restarting) Converged() bool { return false }

// Restarts returns how many times the inner strategy has been restarted.
func (r *Restarting) Restarts() int { return r.restarts }
