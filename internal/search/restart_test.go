package search

import (
	"testing"

	"repro/internal/param"
)

func TestRestartingNeverConverges(t *testing.T) {
	r := NewRestarting(func() Strategy { return NewNelderMead() }, 1)
	space := quadSpace()
	if err := r.Start(space, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		c := r.Propose()
		r.Report(c, quad(c))
		if r.Converged() {
			t.Fatal("restarting wrapper claimed convergence")
		}
	}
	if r.Restarts() == 0 {
		t.Error("inner Nelder-Mead never converged/restarted in 500 iterations")
	}
	_, val := r.Best()
	if val > 1.05 {
		t.Errorf("best value %g, want ≤ 1.05", val)
	}
}

func TestRestartingKeepsGlobalBestAcrossRestarts(t *testing.T) {
	r := NewRestarting(func() Strategy { return NewNelderMead() }, 3)
	space := quadSpace()
	if err := r.Start(space, param.Config{-8, 8}); err != nil {
		t.Fatal(err)
	}
	bestSeen := func() float64 { _, v := r.Best(); return v }
	prev := bestSeen()
	for i := 0; i < 600; i++ {
		c := r.Propose()
		r.Report(c, quad(c))
		if v := bestSeen(); v > prev+1e-12 {
			t.Fatalf("global best regressed at iteration %d: %g → %g", i, prev, v)
		} else {
			prev = v
		}
	}
	if r.Restarts() < 2 {
		t.Errorf("expected several restarts, got %d", r.Restarts())
	}
}

func TestRestartingEscapesLocalMinimum(t *testing.T) {
	// Two basins: a shallow local minimum (value 5 near x=-7) and the
	// global one (value 1 near x=7). Hill climbing from the left basin
	// converges locally; the restarting wrapper's random restarts must
	// eventually find the right basin.
	space := param.NewSpace(param.NewRatioInt("x", 0, 140))
	obj := func(c param.Config) float64 {
		x := c[0]/10 - 7 // map onto [-7, 7]
		a := 5 + (x+7)*(x+7)
		b := 1 + (x-7)*(x-7)
		if a < b {
			return a
		}
		return b
	}
	r := NewRestarting(func() Strategy { return NewHillClimb() }, 5)
	if err := r.Start(space, param.Config{0}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		c := r.Propose()
		r.Report(c, obj(c))
	}
	_, val := r.Best()
	if val > 1 {
		t.Errorf("stuck at local minimum: best %g, want 1", val)
	}
}

func TestRestartingName(t *testing.T) {
	r := NewRestarting(func() Strategy { return NewNelderMead() }, 1)
	if got := r.Name(); got != "restarting(nelder-mead)" {
		t.Errorf("Name = %q", got)
	}
}

func TestRestartingSupportsDefers(t *testing.T) {
	r := NewRestarting(func() Strategy { return NewNelderMead() }, 1)
	if r.Supports(nominalSpace()) {
		t.Error("restarting(nelder-mead) should not support nominal spaces")
	}
	if !r.Supports(quadSpace()) {
		t.Error("restarting(nelder-mead) should support metric spaces")
	}
}

func TestRestartingNilFactoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil factory did not panic")
		}
	}()
	NewRestarting(nil, 1)
}

func TestRestartingEmptySpace(t *testing.T) {
	r := NewRestarting(func() Strategy { return NewFixed() }, 1)
	if err := r.Start(param.NewSpace(), nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c := r.Propose()
		r.Report(c, 3)
	}
	if r.Restarts() != 0 {
		t.Errorf("empty space should never restart, got %d", r.Restarts())
	}
}
