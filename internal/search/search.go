// Package search implements the classical numeric ("phase one") search
// strategies reviewed in Section II of Pfaffe et al.: hill climbing,
// downhill simplex (Nelder-Mead), particle swarm, genetic algorithms,
// differential evolution, simulated annealing, and exhaustive and random
// search.
//
// All strategies share an ask/tell interface tailored to online autotuning:
// the application owns the tuning loop, repeatedly asking the strategy for
// the next configuration to try (Propose) and telling it the measured value
// (Report). The strategies minimize the reported value, which in the paper
// is a time measurement.
//
// Strategies that rely on a notion of distance, direction, or neighbourhood
// refuse to start on search spaces containing nominal parameters; their
// Supports method encodes the paper's Section II-B analysis of which
// methods can manipulate which parameter classes.
package search

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/param"
)

// A Strategy is an ask/tell minimizer over a parameter space.
//
// The calling contract is a strict alternation: after Start, each call to
// Propose must be followed by exactly one Report carrying the proposed
// configuration and its measured value before the next Propose. Configs
// returned by Propose are always valid points of the space.
type Strategy interface {
	// Name identifies the strategy (e.g. "nelder-mead").
	Name() string
	// Supports reports whether the strategy can search the given space.
	Supports(space *param.Space) bool
	// Start initializes the strategy on a space with an initial
	// configuration (clamped if necessary). It returns an error when the
	// space is unsupported.
	Start(space *param.Space, init param.Config) error
	// Propose returns the next configuration to evaluate.
	Propose() param.Config
	// Report supplies the measured value for a proposed configuration.
	// Lower is better.
	Report(c param.Config, value float64)
	// Converged reports whether the strategy considers the search finished.
	// Online tuners may keep calling Propose regardless; strategies then
	// keep proposing their best known configuration.
	Converged() bool
	// Best returns the best configuration observed so far and its value.
	// Before any Report it returns (nil, +Inf).
	Best() (param.Config, float64)
	// Evaluations returns the number of Report calls since Start.
	Evaluations() int
}

// recorder tracks the incumbent and evaluation count; strategies embed it.
type recorder struct {
	bestCfg  param.Config
	bestVal  float64
	evals    int
	hasSpace bool
}

func (r *recorder) reset() {
	r.bestCfg = nil
	r.bestVal = math.Inf(1)
	r.evals = 0
	r.hasSpace = true
}

func (r *recorder) record(c param.Config, v float64) {
	r.evals++
	if v < r.bestVal {
		r.bestVal = v
		r.bestCfg = c.Clone()
	}
}

// Best returns the incumbent configuration and value.
func (r *recorder) Best() (param.Config, float64) {
	if r.bestCfg == nil {
		return nil, math.Inf(1)
	}
	return r.bestCfg.Clone(), r.bestVal
}

// Evaluations returns the number of reported measurements.
func (r *recorder) Evaluations() int { return r.evals }

func (r *recorder) mustStarted(name string) {
	if !r.hasSpace {
		panic(fmt.Sprintf("search: %s used before Start", name))
	}
}

// prepStart validates and clamps the initial configuration.
func prepStart(space *param.Space, init param.Config) (param.Config, error) {
	if space == nil {
		return nil, fmt.Errorf("search: nil space")
	}
	if init == nil {
		init = space.Center()
	}
	if len(init) != space.Dim() {
		return nil, fmt.Errorf("search: init config has %d values for a %d-dimensional space", len(init), space.Dim())
	}
	return space.Clamp(init), nil
}

// Factory constructs a fresh, unstarted strategy instance. The two-phase
// tuner uses factories to give every algorithm an independent optimizer.
type Factory func() Strategy

// NewByName returns a factory for the named strategy with its default
// settings, or an error for unknown names. Recognized names: fixed, random,
// exhaustive, hillclimb, nelder-mead, hooke-jeeves, anneal, pso, genetic,
// diffevo.
func NewByName(name string, seed int64) (Factory, error) {
	switch name {
	case "fixed":
		return func() Strategy { return NewFixed() }, nil
	case "random":
		return func() Strategy { return NewRandom(seed) }, nil
	case "exhaustive":
		return func() Strategy { return NewExhaustive() }, nil
	case "hillclimb":
		return func() Strategy { return NewHillClimb() }, nil
	case "nelder-mead":
		return func() Strategy { return NewNelderMead() }, nil
	case "hooke-jeeves":
		return func() Strategy { return NewHookeJeeves() }, nil
	case "anneal":
		return func() Strategy { return NewAnneal(seed) }, nil
	case "pso":
		return func() Strategy { return NewParticleSwarm(DefaultSwarmSize, seed) }, nil
	case "genetic":
		return func() Strategy { return NewGenetic(DefaultPopulation, seed) }, nil
	case "diffevo":
		return func() Strategy { return NewDiffEvo(DefaultPopulation, seed) }, nil
	default:
		return nil, fmt.Errorf("search: unknown strategy %q", name)
	}
}

// NewByNameMust is NewByName with seed 0, panicking on unknown names; it
// exists for call sites whose name is a compile-time constant.
func NewByNameMust(name string) Factory {
	f, err := NewByName(name, 0)
	if err != nil {
		panic(err)
	}
	return f
}

// Names lists the strategy names understood by NewByName.
func Names() []string {
	return []string{"fixed", "random", "exhaustive", "hillclimb", "nelder-mead", "hooke-jeeves", "anneal", "pso", "genetic", "diffevo"}
}

func newRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
